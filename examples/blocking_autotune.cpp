// Block-size tuning walkthrough: probe the machine (STREAM bandwidth, RNG
// cost h, cache size), ask the §III-A model for (b_d, b_n), and verify the
// suggestion against a small empirical sweep.
//
//   ./blocking_autotune [--m 120000] [--n 6000] [--density 1e-3]
#include <cstdio>
#include <vector>

#include "analysis/machine.hpp"
#include "sketch/autotune.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "support/cli.hpp"

using namespace rsketch;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const index_t m = args.get_int("m", 120000);
  const index_t n = args.get_int("n", 6000);
  const double density = args.get_double("density", 1e-3);

  const auto a = random_sparse<float>(m, n, density, 5);
  const index_t d = 3 * n;

  // 1. Machine probes.
  const auto stream = stream_benchmark(1 << 22, 3);
  const double h = measure_h(Dist::Uniform, RngBackend::XoshiroBatch, stream);
  const std::size_t cache = detect_cache_bytes();
  std::printf("machine: copy bandwidth %.1f GB/s, cache %.0f KiB, "
              "measured h = %.3f\n",
              stream.copy_gbps, static_cast<double>(cache) / 1024.0, h);
  std::printf("(h < 1: generating a sample is cheaper than a DRAM access — "
              "on-the-fly regeneration pays off)\n\n");

  // 2. Model suggestion.
  const auto sug =
      suggest_blocks(m, n, d, density, cache, h, sizeof(float));
  std::printf("model suggestion: b_d = %lld, b_n = %lld (predicted CI %.1f)\n\n",
              static_cast<long long>(sug.block_d),
              static_cast<long long>(sug.block_n), sug.model_ci);

  // 3. Empirical check around the suggestion.
  std::printf("empirical sweep (Algorithm 3, GFlop/s):\n");
  std::printf("%10s %10s %10s\n", "b_d", "b_n", "GFlop/s");
  double best_gf = 0.0;
  index_t best_bd = 0, best_bn = 0;
  const std::vector<index_t> bds = {sug.block_d / 4, sug.block_d,
                                    std::min(d, sug.block_d * 4)};
  const std::vector<index_t> bns = {std::max<index_t>(1, sug.block_n / 4),
                                    sug.block_n,
                                    std::min(n, sug.block_n * 4)};
  for (index_t bd : bds) {
    for (index_t bn : bns) {
      SketchConfig cfg;
      cfg.d = d;
      cfg.dist = Dist::Uniform;
      cfg.block_d = std::max<index_t>(1, bd);
      cfg.block_n = bn;
      cfg.parallel = ParallelOver::Sequential;
      DenseMatrix<float> a_hat(d, n);
      const auto stats = sketch_into(cfg, a, a_hat);
      std::printf("%10lld %10lld %10.2f\n",
                  static_cast<long long>(cfg.block_d),
                  static_cast<long long>(cfg.block_n), stats.gflops);
      if (stats.gflops > best_gf) {
        best_gf = stats.gflops;
        best_bd = cfg.block_d;
        best_bn = cfg.block_n;
      }
    }
  }
  std::printf("\nempirical best: b_d = %lld, b_n = %lld (%.2f GFlop/s)\n",
              static_cast<long long>(best_bd),
              static_cast<long long>(best_bn), best_gf);

  // 4. One-call convenience API.
  SketchConfig cfg;
  cfg.d = d;
  autotune_blocks(cfg, a);
  std::printf("autotune_blocks() picked: b_d = %lld, b_n = %lld\n",
              static_cast<long long>(cfg.block_d),
              static_cast<long long>(cfg.block_n));
  return 0;
}
