// Sketch-and-precondition least squares (the paper's §V-C pipeline):
// solve min ||Ax - b|| for a very tall sparse A, comparing SAP against
// LSQR-D and the direct sparse QR on the same problem.
//
//   ./least_squares_solver [--m 60000] [--n 400] [--density 5e-3]
//                          [--svd] [--illcond]
#include <cstdio>

#include "solvers/least_squares.hpp"
#include "solvers/sap.hpp"
#include "solvers/sparse_qr.hpp"
#include "sparse/generate.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

using namespace rsketch;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const index_t m = args.get_int("m", 60000);
  const index_t n = args.get_int("n", 400);
  const double density = args.get_double("density", 5e-3);
  const bool use_svd = args.has("svd");
  const bool illcond = args.has("illcond");

  CscMatrix<double> a = random_sparse<double>(m, n, density, 11);
  if (illcond) {
    // Column scaling over 10 orders of magnitude: LSQR alone would crawl.
    a = scale_columns_log_uniform(a, -5.0, 5.0, 12);
    std::printf("(columns rescaled by 10^U(-5,5) to make the problem hard)\n");
  }
  const auto b = make_least_squares_rhs(a, 13);
  std::printf("problem: %lld x %lld, nnz = %lld\n\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(a.nnz()));

  // --- Sketch-and-precondition.
  SapOptions opt;
  opt.factor = use_svd ? SapFactor::SVD : SapFactor::QR;
  opt.gamma = 2.0;       // d = 2n, the paper's least-squares setting
  opt.dist = Dist::PmOne;
  const auto sap = sap_solve(a, b, opt);
  std::printf("SAP-%s : %8.3f s total (sketch %.3f, factor %.3f, LSQR %.3f)\n",
              use_svd ? "SVD" : "QR", sap.total_seconds, sap.sketch_seconds,
              sap.factor_seconds, sap.lsqr_seconds);
  std::printf("         %lld LSQR iterations, error metric %.2e, "
              "workspace %.1f MB\n\n",
              static_cast<long long>(sap.iterations),
              ls_error_metric(a, sap.x, b),
              static_cast<double>(sap.workspace_bytes) / 1e6);

  // --- Classical LSQR-D.
  LsqrOptions lo;
  lo.tol = 1e-14;
  lo.max_iter = 40000;
  Timer t;
  const auto lsqrd = lsqr_diag_precond(a, b, lo);
  std::printf("LSQR-D : %8.3f s, %lld iterations, error metric %.2e\n\n",
              t.seconds(), static_cast<long long>(lsqrd.iterations),
              ls_error_metric(a, lsqrd.x, b));

  // --- Direct sparse QR.
  t.reset();
  const auto direct = sparse_qr_least_squares(a, b.data());
  std::printf("direct : %8.3f s, R fill-in %lld nnz (%.1f MB), "
              "error metric %.2e\n",
              t.seconds(), static_cast<long long>(direct.r_nnz),
              static_cast<double>(direct.factor_bytes()) / 1e6,
              ls_error_metric(a, direct.x, b));

  // Solutions must agree.
  double max_diff = 0.0;
  for (index_t j = 0; j < n; ++j) {
    max_diff = std::max(max_diff, std::abs(sap.x[j] - direct.x[j]));
  }
  std::printf("\nmax |x_SAP - x_direct| = %.2e\n", max_diff);
  return 0;
}
