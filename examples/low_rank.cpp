// Randomized low-rank SVD of a sparse matrix using the on-the-fly
// right-sketch — one of the sketching applications the paper's introduction
// motivates. Also demonstrates the minimum-norm solver for underdetermined
// systems (paper §V-C footnote 2).
//
//   ./low_rank [--m 2000] [--n 800] [--rank 10] [--power 2]
#include <cmath>
#include <cstdio>

#include "solvers/minimum_norm.hpp"
#include "solvers/randomized_svd.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "support/cli.hpp"

using namespace rsketch;

namespace {

/// Sparse matrix with a planted spectrum: sum of `rank` sparse outer
/// products with geometrically decaying weights, plus light noise.
CscMatrix<double> planted_spectrum(index_t m, index_t n, index_t rank,
                                   std::uint64_t seed) {
  CooMatrix<double> coo(m, n);
  for (index_t t = 0; t < rank; ++t) {
    const double w = 100.0 * std::pow(0.6, static_cast<double>(t));
    const auto u = random_sparse<double>(m, 1, 0.05, seed + 2 * t);
    const auto v = random_sparse<double>(n, 1, 0.05, seed + 2 * t + 1);
    for (index_t p = 0; p < u.nnz(); ++p) {
      for (index_t q = 0; q < v.nnz(); ++q) {
        coo.push(u.row_idx()[p], v.row_idx()[q],
                 w * u.values()[p] * v.values()[q]);
      }
    }
  }
  return coo_to_csc(coo);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const index_t m = args.get_int("m", 2000);
  const index_t n = args.get_int("n", 800);
  const index_t rank = args.get_int("rank", 10);
  const int power = static_cast<int>(args.get_int("power", 2));

  const auto a = planted_spectrum(m, n, rank, 99);
  std::printf("A: %lld x %lld, nnz %lld, planted rank %lld\n\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(a.nnz()), static_cast<long long>(rank));

  RandomizedSvdOptions opt;
  opt.oversample = 8;
  opt.power_iterations = power;
  const auto svd = randomized_svd(a, rank, opt);

  std::printf("randomized SVD: %.3f s total (%.4f s in the sketch)\n",
              svd.total_seconds, svd.sketch_seconds);
  std::printf("leading singular value estimates (planted decay 0.6):\n ");
  for (index_t t = 0; t < rank; ++t) std::printf(" %.3g", svd.sigma[t]);
  std::printf("\nratio sigma[t+1]/sigma[t]:\n ");
  for (index_t t = 0; t + 1 < rank; ++t) {
    std::printf(" %.2f", svd.sigma[t + 1] / svd.sigma[t]);
  }
  std::printf("\n\n");

  // Second act: minimum-norm solve on a full-row-rank wide system (the
  // low-rank A above is rank-deficient, which the QR-based min-norm solver
  // rejects by design — so we build a fresh generic wide matrix).
  const auto wide =
      transpose(random_sparse<double>(m, n / 2, 0.02, 123));  // (n/2) x m
  {
    std::vector<double> x0(static_cast<std::size_t>(wide.cols()));
    for (std::size_t j = 0; j < x0.size(); ++j) x0[j] = std::sin(0.01 * static_cast<double>(j));
    std::vector<double> b(static_cast<std::size_t>(wide.rows()), 0.0);
    spmv(wide, x0.data(), b.data());

    SapOptions so;
    so.gamma = 3.0;
    so.lsqr_tol = 1e-12;
    so.lsqr_max_iter = 3000;
    const auto mn = sap_solve_minimum_norm(wide, b, so);
    double xnorm = 0.0, x0norm = 0.0, resid = 0.0;
    std::vector<double> ax(static_cast<std::size_t>(wide.rows()), 0.0);
    spmv(wide, mn.x.data(), ax.data());
    for (std::size_t i = 0; i < ax.size(); ++i) {
      const double d = ax[i] - b[i];
      resid += d * d;
    }
    for (double v : mn.x) xnorm += v * v;
    for (double v : x0) x0norm += v * v;
    std::printf("minimum-norm solve on the %lld x %lld transpose:\n",
                static_cast<long long>(wide.rows()),
                static_cast<long long>(wide.cols()));
    std::printf("  %lld LSQR iterations, ||Ax-b|| = %.2e\n",
                static_cast<long long>(mn.iterations), std::sqrt(resid));
    std::printf("  ||x_min|| = %.4f vs ||x_particular|| = %.4f (shorter!)\n",
                std::sqrt(xnorm), std::sqrt(x0norm));
  }
  return 0;
}
