// Quickstart: sketch a tall sparse matrix with Â = S·A where S is never
// materialized — the library's core operation in ~30 lines.
//
//   ./quickstart [--m 200000] [--n 4000] [--density 1e-3] [--gamma 3]
#include <cstdio>

#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "support/cli.hpp"

using namespace rsketch;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const index_t m = args.get_int("m", 200000);
  const index_t n = args.get_int("n", 4000);
  const double density = args.get_double("density", 1e-3);
  const double gamma = args.get_double("gamma", 3.0);

  // 1. A tall sparse matrix in CSC format (here synthetic; in a real
  //    application load one with read_matrix_market_file<float>(path)).
  const CscMatrix<float> a = random_sparse<float>(m, n, density, /*seed=*/7);
  std::printf("A: %lld x %lld, nnz = %lld (density %.2e)\n",
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.cols()),
              static_cast<long long>(a.nnz()), a.density());

  // 2. Describe the sketch: d = gamma*n rows of iid +-1 entries, generated
  //    on the fly inside the blocked kernel (Algorithm 3 of the paper).
  SketchConfig cfg;
  cfg.d = static_cast<index_t>(gamma * static_cast<double>(n));
  cfg.seed = 42;                    // fixes S exactly and reproducibly
  cfg.dist = Dist::PmOne;           // cheapest distribution (1 byte/sample)
  cfg.kernel = KernelVariant::Kji;  // pattern-oblivious kernel
  cfg.normalize = true;             // scale so S is an approximate isometry

  // 3. Compute Â = S·A. S (d x m, would be d*m*4 bytes dense) never exists.
  DenseMatrix<float> a_hat;
  const SketchStats stats = sketch_into(cfg, a, a_hat);

  std::printf("sketch: %lld x %lld computed in %.3f s (%.2f GFlop/s)\n",
              static_cast<long long>(a_hat.rows()),
              static_cast<long long>(a_hat.cols()), stats.total_seconds,
              stats.gflops);
  std::printf("samples generated on the fly: %llu (S dense would hold %lld)\n",
              static_cast<unsigned long long>(stats.samples_generated),
              static_cast<long long>(cfg.d * m));
  std::printf("memory for A_hat: %.1f MB; memory S would have needed: %.1f MB\n",
              static_cast<double>(a_hat.memory_bytes()) / 1e6,
              static_cast<double>(cfg.d) * m * sizeof(float) / 1e6);

  // 4. Sanity: sketched column norms approximate the original ones.
  double worst = 0.0;
  for (index_t j = 0; j < std::min<index_t>(8, n); ++j) {
    double orig = 0.0, sk = 0.0;
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      orig += static_cast<double>(a.values()[p]) * a.values()[p];
    }
    for (index_t i = 0; i < a_hat.rows(); ++i) {
      sk += static_cast<double>(a_hat(i, j)) * a_hat(i, j);
    }
    if (orig > 0) worst = std::max(worst, std::abs(std::sqrt(sk / orig) - 1.0));
  }
  std::printf("norm distortion on first columns: %.3f (expect << 1)\n", worst);
  return 0;
}
