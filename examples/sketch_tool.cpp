// Command-line utility: sketch or solve directly from Matrix Market files —
// the "downstream user" entry point that needs no C++ at all.
//
//   sketch_tool sketch --in A.mtx --out Ahat.mtx [--gamma 3] [--dist pm1]
//               [--kernel kji|jki] [--seed 42]
//   sketch_tool solve  --in A.mtx [--rhs b.txt] [--svd] [--gamma 2]
//               [--guarded] [--attempts N]
//   sketch_tool info   --in A.mtx
//
// Input validation (structure + NaN/Inf scan) is ON by default here — files
// come from outside the process, so corruption is a user-facing error, not a
// precondition violation. --no-check restores the library's raw hot path.
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dense/microkernel.hpp"
#include "perf/perf_events.hpp"
#include "perf/report.hpp"
#include "perf/trace.hpp"
#include "sketch/autotune.hpp"
#include "sketch/batch.hpp"
#include "sketch/schedule.hpp"
#include "sketch/sketch.hpp"
#include "sketch/tuner.hpp"
#include "solvers/guarded.hpp"
#include "solvers/least_squares.hpp"
#include "solvers/sap.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/ops.hpp"
#include "sparse/validate.hpp"
#include "support/cli.hpp"
#include "support/run_control.hpp"
#include "support/timer.hpp"

using namespace rsketch;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s sketch --in A.mtx --out Ahat.mtx [--gamma G] "
               "[--dist pm1|uniform|gauss] [--kernel kji|jki] [--seed S]\n"
               "            [--tune off|model|empirical|cached] "
               "[--isa auto|scalar|avx2|avx512] "
               "[--schedule auto|uniform|balanced]\n"
               "  %s solve  --in A.mtx [--rhs b.txt] [--svd] [--gamma G] "
               "[--guarded] [--attempts N]\n"
               "  %s info   --in A.mtx\n"
               "  %s batch  --manifest JOBS.txt [--workers N] [--gamma G] "
               "[--dist ...] [--kernel ...]\n"
               "            (or: --batch JOBS.txt; manifest lines are "
               "\"<matrix.mtx> <seed> <out.mtx>\", # comments ok;\n"
               "             docs/SERVING.md has the full format)\n"
               "common flags: --no-check disables the input validators "
               "(structure + NaN/Inf scan), on by default;\n"
               "  --tune selects block/kernel/backend autotuning "
               "(docs/AUTOTUNING.md; default: model blocks only)\n"
               "  --trace PATH records a Chrome-trace timeline to PATH "
               "(same as RSKETCH_TRACE=PATH; docs/OBSERVABILITY.md)\n"
               "  --deadline-ms T / --budget-mb M bound the run "
               "(same as RSKETCH_DEADLINE_MS / RSKETCH_BUDGET_MB)\n"
               "  --on-pressure fail|degrade picks the budget-pressure policy "
               "(default degrade; docs/ROBUSTNESS.md)\n"
               "  --block-d D / --block-n N pin the outer blocks "
               "(bypasses autotuning; for scripted, reproducible runs)\n"
               "  --schedule picks the block-to-thread schedule "
               "(same as RSKETCH_SCHEDULE; never changes a bit of the "
               "output; docs/DESIGN.md)\n"
               "exit codes: 0 ok, 1 I/O or internal error, 2 usage or input "
               "validation, 3 numeric failure, 4 deadline, 5 budget,\n"
               "  6 batch partial failure (some jobs failed; per-job status "
               "on stdout/stderr)\n",
               prog, prog, prog, prog);
  return 2;
}

Dist parse_dist(const std::string& s) {
  if (s == "pm1") return Dist::PmOne;
  if (s == "uniform") return Dist::Uniform;
  if (s == "gauss") return Dist::Gaussian;
  throw invalid_argument_error("unknown --dist '" + s + "'");
}

OnPressure parse_on_pressure(const std::string& s) {
  if (s == "fail") return OnPressure::Fail;
  if (s == "degrade") return OnPressure::Degrade;
  throw invalid_argument_error("unknown --on-pressure '" + s +
                               "' (want fail|degrade)");
}

std::vector<double> read_vector(const std::string& path, index_t expect) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open rhs file '" + path + "'");
  std::vector<double> v;
  double x = 0.0;
  while (in >> x) v.push_back(x);
  require(static_cast<index_t>(v.size()) == expect,
          "rhs length does not match the matrix row count");
  return v;
}

int cmd_info(const CliArgs& args, const CscMatrix<double>& a) {
  if (!args.has("no-check")) {
    const ValidationReport rep = validate_csc(a);
    std::printf("validate %s\n", rep.summary().c_str());
  }
  std::printf("rows     %lld\n", static_cast<long long>(a.rows()));
  std::printf("cols     %lld\n", static_cast<long long>(a.cols()));
  std::printf("nnz      %lld\n", static_cast<long long>(a.nnz()));
  std::printf("density  %.3e\n", a.density());
  std::printf("mem CSC  %.2f MB\n", static_cast<double>(a.memory_bytes()) / 1e6);
  std::printf("empty rows %lld, empty cols %lld\n",
              static_cast<long long>(count_empty_rows(a)),
              static_cast<long long>(count_empty_cols(a)));
  return 0;
}

int cmd_sketch(const CliArgs& args, const CscMatrix<double>& a) {
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "sketch: --out is required\n");
    return 2;
  }
  SketchConfig cfg;
  cfg.d = static_cast<index_t>(args.get_double("gamma", 3.0) *
                               static_cast<double>(a.cols()));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.dist = parse_dist(args.get("dist", "pm1"));
  cfg.kernel =
      args.get("kernel", "kji") == "jki" ? KernelVariant::Jki
                                         : KernelVariant::Kji;
  cfg.normalize = true;
  cfg.check_inputs = !args.has("no-check");
  cfg.deadline_ms = args.get_double("deadline-ms", 0.0);
  cfg.workspace_budget_bytes = static_cast<std::size_t>(
      args.get_double("budget-mb", 0.0) * 1e6);
  cfg.on_pressure = parse_on_pressure(args.get("on-pressure", "degrade"));
  const std::string isa = args.get("isa", "auto");
  require(microkernel::parse_isa(isa, &cfg.isa),
          "unknown --isa '" + isa + "' (want auto|scalar|avx2|avx512)");
  const std::string schedule = args.get("schedule", "auto");
  require(parse_schedule_mode(schedule, cfg.schedule),
          "unknown --schedule '" + schedule +
              "' (want auto|uniform|balanced)");
  TuneDecision decision;
  const std::string tune = args.get("tune", "");
  const index_t block_d_flag =
      static_cast<index_t>(args.get_int("block-d", 0));
  const index_t block_n_flag =
      static_cast<index_t>(args.get_int("block-n", 0));
  if (block_d_flag > 0 || block_n_flag > 0) {
    // Pinned blocks: model defaults fill whichever flag is absent, and the
    // (timing-dependent) empirical tuner is bypassed so scripted runs — the
    // degradation-ladder ctest in particular — are bitwise reproducible.
    autotune_blocks(cfg, a);
    if (block_d_flag > 0) cfg.block_d = block_d_flag;
    if (block_n_flag > 0) cfg.block_n = block_n_flag;
  } else if (tune.empty()) {
    // Historical default: model-suggested blocks, caller's kernel/backend.
    autotune_blocks(cfg, a);
  } else {
    cfg.tune = parse_tune_mode(tune);
    cfg = resolve_tuning(cfg, a, &decision);
    std::printf("tuner: %s -> %s", to_string(decision.source).c_str(),
                decision.choice.label().c_str());
    if (decision.candidates_timed > 0) {
      std::printf(" (%d candidates timed, winner pilot %.3f ms)",
                  decision.candidates_timed, decision.pilot_seconds * 1e3);
    }
    if (decision.source == TuneSource::Cache) std::printf(" (cache hit)");
    std::printf("\n");
  }
  std::printf(
      "sketching: d=%lld, dist=%s, kernel=%s, blocks=(%lld, %lld), isa=%s, "
      "schedule=%s\n",
      static_cast<long long>(cfg.d), to_string(cfg.dist).c_str(),
      to_string(cfg.kernel).c_str(), static_cast<long long>(cfg.block_d),
      static_cast<long long>(cfg.block_n),
      microkernel::to_string(microkernel::resolve(cfg.isa)),
      to_string(resolve_schedule_mode(cfg.schedule)).c_str());

  perf::ReportBuilder report("sketch_tool");
  report.config("in", args.get("in", ""));
  report.config("out", out_path);
  report.config("d", static_cast<long long>(cfg.d));
  report.config("dist", to_string(cfg.dist));
  report.config("kernel", to_string(cfg.kernel));
  report.config("block_d", static_cast<long long>(cfg.block_d));
  report.config("block_n", static_cast<long long>(cfg.block_n));
  report.config("isa", microkernel::to_string(microkernel::resolve(cfg.isa)));
  report.config("schedule", to_string(resolve_schedule_mode(cfg.schedule)));
  if (!tune.empty()) {
    report.config("tune", tune);
    report.config("tune_source", to_string(decision.source));
    report.config("tune_choice", decision.choice.label());
  }
  perf::PerfEventGroup hw;
  if (report.active()) hw.start();

  DenseMatrix<double> a_hat;
  const auto stats = sketch_into(cfg, a, a_hat);

  if (report.active()) {
    hw.stop();
    report.hardware(hw.read());
    report.timing("sketch", stats.total_seconds, stats);
  }
  std::printf("done in %.3f s (%.2f GFlop/s, %llu samples on the fly)\n",
              stats.total_seconds, stats.gflops,
              static_cast<unsigned long long>(stats.samples_generated));
  if (cfg.deadline_ms > 0.0 || cfg.workspace_budget_bytes > 0 ||
      env_deadline_ms() > 0.0 || env_budget_bytes() > 0) {
    // Run-control summary: scripted callers grep this line (and the JSON
    // counter below) to confirm the ladder engaged.
    std::printf("degradations=%llu\n",
                static_cast<unsigned long long>(stats.degradations));
  }
  if (report.active()) {
    report.counter("degradations", stats.degradations);
    std::printf("measured intensity: %.2f flops/element "
                "(%llu nonzeros processed)\n",
                stats.measured_intensity(),
                static_cast<unsigned long long>(stats.counters.nnz_processed));
    report.write();
  }

  // Emit the dense sketch in coordinate form for interoperability.
  CooMatrix<double> coo(a_hat.rows(), a_hat.cols());
  coo.reserve(a_hat.rows() * a_hat.cols());
  for (index_t j = 0; j < a_hat.cols(); ++j) {
    for (index_t i = 0; i < a_hat.rows(); ++i) {
      if (a_hat(i, j) != 0.0) coo.push(i, j, a_hat(i, j));
    }
  }
  write_matrix_market_file(out_path, coo_to_csc(coo));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int cmd_solve(const CliArgs& args, CscMatrix<double> a) {
  if (a.rows() < a.cols()) {
    std::printf("input is wide; solving with the transpose (paper's setup)\n");
    a = transpose(a);
  }
  const std::string rhs = args.get("rhs", "");
  const std::vector<double> b = rhs.empty()
                                    ? make_least_squares_rhs(a, 7)
                                    : read_vector(rhs, a.rows());
  SapOptions opt;
  opt.factor = args.has("svd") ? SapFactor::SVD : SapFactor::QR;
  opt.gamma = args.get_double("gamma", 2.0);

  SapResult<double> res;
  int attempts = 1;
  bool recovered = false;
  if (args.has("guarded")) {
    GuardedSapOptions gopt;
    gopt.base = opt;
    gopt.max_attempts = static_cast<int>(args.get_int("attempts", 3));
    gopt.check_inputs = !args.has("no-check");
    // The deadline spans ALL attempts (exactly-once semantics): an expired
    // clock stops the solve before the next attempt starts.
    gopt.deadline_ms = args.get_double("deadline-ms", 0.0);
    gopt.workspace_budget_bytes = static_cast<std::size_t>(
        args.get_double("budget-mb", 0.0) * 1e6);
    // Fault-injection aid (see docs/ROBUSTNESS.md): deliberately poison the
    // first N sketches so the recovery path is demonstrable end to end.
    gopt.poison_first_attempts = static_cast<int>(args.get_int("poison", 0));
    GuardedSapResult<double> g = guarded_sap_solve(a, b, gopt);
    attempts = g.attempts;
    recovered = g.recovered;
    for (const SapAttemptLog& log : g.log) {
      std::printf("attempt %d: %s (seed=%llu, d=%lld, cond~%.2e)\n",
                  log.attempt, to_string(log.outcome).c_str(),
                  static_cast<unsigned long long>(log.seed),
                  static_cast<long long>(log.d), log.cond_estimate);
    }
    if (recovered) {
      std::printf("recovered after %d attempt(s)\n", attempts);
    }
    res = std::move(g.result);
  } else {
    if (!args.has("no-check")) require_valid(a);
    res = sap_solve(a, b, opt);
  }
  // Peak workspace sits next to the phase timings so the numbers printed
  // here are the exact MemoryTracker accounting Table XI reports.
  std::printf("SAP-%s: %.3f s (sketch %.3f, factor %.3f, LSQR %.3f), "
              "%lld iterations, peak workspace %.2f MB\n",
              opt.factor == SapFactor::SVD ? "SVD" : "QR", res.total_seconds,
              res.sketch_seconds, res.factor_seconds, res.lsqr_seconds,
              static_cast<long long>(res.iterations),
              static_cast<double>(res.workspace_bytes) / 1e6);
  std::printf("error metric ||A'(Ax-b)||/(||A||_F ||Ax-b||) = %.3e\n",
              ls_error_metric(a, res.x, b));

  perf::ReportBuilder report("sketch_tool_solve");
  report.config("in", args.get("in", ""));
  report.config("factor", opt.factor == SapFactor::SVD ? "svd" : "qr");
  report.config("gamma", opt.gamma);
  report.config("guarded", args.has("guarded") ? 1LL : 0LL);
  report.timing("sketch", res.sketch_seconds);
  report.timing("factor", res.factor_seconds);
  report.timing("lsqr", res.lsqr_seconds);
  report.timing("total", res.total_seconds);
  report.counter("lsqr_iterations",
                 static_cast<std::uint64_t>(res.iterations));
  report.counter("peak_workspace_bytes", res.workspace_bytes);
  // Retry telemetry: the span table already carries guarded_sap/retry and
  // guarded_sap/attempt_ok entries; these counters make the totals greppable.
  report.counter("guarded_attempts", static_cast<std::uint64_t>(attempts));
  report.counter("guarded_recovered", recovered ? 1u : 0u);
  report.write();
  std::printf("x[0..%d] =", static_cast<int>(std::min<index_t>(5, a.cols())));
  for (index_t j = 0; j < std::min<index_t>(5, a.cols()); ++j) {
    std::printf(" %.6g", res.x[static_cast<std::size_t>(j)]);
  }
  std::printf(" ...\n");
  return 0;
}

/// Emit a dense sketch in coordinate Matrix Market form (interoperability —
/// same encoding cmd_sketch has always used).
void write_dense_mtx(const std::string& path, const DenseMatrix<double>& m) {
  CooMatrix<double> coo(m.rows(), m.cols());
  coo.reserve(m.rows() * m.cols());
  for (index_t j = 0; j < m.cols(); ++j) {
    for (index_t i = 0; i < m.rows(); ++i) {
      if (m(i, j) != 0.0) coo.push(i, j, m(i, j));
    }
  }
  write_matrix_market_file(path, coo_to_csc(coo));
}

struct ManifestJob {
  std::string matrix_path;
  std::uint64_t seed = 0;
  std::string out_path;
  int line = 0;
};

/// One job per line: "<matrix.mtx> <seed> <out.mtx>". Blank lines and
/// #-comments are skipped; anything else malformed is a usage error.
std::vector<ManifestJob> read_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open manifest '" + path + "'");
  std::vector<ManifestJob> jobs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream ss(line);
    std::string matrix;
    if (!(ss >> matrix) || matrix[0] == '#') continue;
    long long seed = 0;
    std::string out;
    if (!(ss >> seed >> out) || seed < 0) {
      throw invalid_argument_error(
          "manifest line " + std::to_string(lineno) +
          ": want \"<matrix.mtx> <seed> <out.mtx>\" (got '" + line + "')");
    }
    jobs.push_back(
        {matrix, static_cast<std::uint64_t>(seed), out, lineno});
  }
  if (jobs.empty()) {
    throw invalid_argument_error("manifest '" + path + "' lists no jobs");
  }
  return jobs;
}

int cmd_batch(const CliArgs& args) {
  std::string manifest_path = args.get("manifest", "");
  if (manifest_path.empty()) manifest_path = args.get("batch", "");
  if (manifest_path.empty()) {
    std::fprintf(stderr, "batch: --manifest FILE (or --batch FILE) is required\n");
    return 2;
  }
  const std::vector<ManifestJob> manifest = read_manifest(manifest_path);

  BatchOptions bopt;
  bopt.workers = static_cast<int>(args.get_int("workers", 0));
  bopt.deadline_ms = args.get_double("deadline-ms", 0.0);
  bopt.workspace_budget_bytes =
      static_cast<std::size_t>(args.get_double("budget-mb", 0.0) * 1e6);

  // Load every distinct matrix ONCE: manifests typically sketch one input
  // under many seeds, and sharing the parsed CSC across jobs is part of the
  // batch amortization story. unique_ptr keeps addresses stable while jobs
  // borrow them.
  std::map<std::string, std::unique_ptr<CscMatrix<double>>> matrices;
  for (const ManifestJob& job : manifest) {
    if (matrices.find(job.matrix_path) == matrices.end()) {
      matrices.emplace(job.matrix_path,
                       std::make_unique<CscMatrix<double>>(
                           read_matrix_market_file<double>(job.matrix_path)));
    }
  }

  const std::string tune = args.get("tune", "");
  SketchBatch batch(bopt);
  Timer wall;  // submit -> wait_all: the number a serving operator watches
  std::vector<DenseMatrix<double>> outs(manifest.size());  // sized up front:
  std::vector<JobHandle> handles;  // jobs hold pointers into `outs`
  handles.reserve(manifest.size());
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    const CscMatrix<double>& a = *matrices.at(manifest[i].matrix_path);
    SketchConfig cfg;
    cfg.d = static_cast<index_t>(args.get_double("gamma", 3.0) *
                                 static_cast<double>(a.cols()));
    cfg.seed = manifest[i].seed;
    cfg.dist = parse_dist(args.get("dist", "pm1"));
    cfg.kernel = args.get("kernel", "kji") == "jki" ? KernelVariant::Jki
                                                    : KernelVariant::Kji;
    cfg.normalize = true;
    cfg.check_inputs = !args.has("no-check");
    cfg.on_pressure = parse_on_pressure(args.get("on-pressure", "degrade"));
    const std::string isa = args.get("isa", "auto");
    require(microkernel::parse_isa(isa, &cfg.isa),
            "unknown --isa '" + isa + "' (want auto|scalar|avx2|avx512)");
    const std::string schedule = args.get("schedule", "auto");
    require(parse_schedule_mode(schedule, cfg.schedule),
            "unknown --schedule '" + schedule +
                "' (want auto|uniform|balanced)");
    if (!tune.empty()) {
      // Resolved through the batch's shared memo: one fingerprint pass (and
      // at most one pilot run) per distinct problem shape, not per job.
      cfg.tune = parse_tune_mode(tune);
    } else {
      autotune_blocks(cfg, a);
    }
    handles.push_back(batch.submit(cfg, a, outs[i]));
  }

  std::size_t failed = batch.wait_all();
  const double batch_seconds = wall.seconds();
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    const ManifestJob& m = manifest[i];
    if (handles[i].failed()) {
      try {
        std::rethrow_exception(handles[i].error());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "job %zu (line %d, %s seed=%llu): FAILED: %s\n",
                     i, m.line, m.matrix_path.c_str(),
                     static_cast<unsigned long long>(m.seed), e.what());
      }
      continue;
    }
    try {
      write_dense_mtx(m.out_path, outs[i]);
      std::printf("job %zu: %s seed=%llu -> %s (%.3f s)\n", i,
                  m.matrix_path.c_str(),
                  static_cast<unsigned long long>(m.seed), m.out_path.c_str(),
                  handles[i].stats().total_seconds);
    } catch (const std::exception& e) {
      // An unwritable output is THIS job's failure, not the batch's: the
      // remaining jobs' results still land, and the exit code says partial.
      ++failed;
      std::fprintf(stderr, "job %zu (line %d): cannot write %s: %s\n", i,
                   m.line, m.out_path.c_str(), e.what());
    }
  }

  const WorkspaceArena& arena = batch.arena();
  std::printf("batch: %zu job(s), %zu ok, %zu failed, workers=%d, "
              "steals=%llu, arena reuse %llu/%llu, arena held %.2f MB\n",
              manifest.size(), manifest.size() - failed, failed,
              batch.workers(),
              static_cast<unsigned long long>(batch.steals()),
              static_cast<unsigned long long>(arena.reuse_hits()),
              static_cast<unsigned long long>(arena.reuse_hits() +
                                              arena.slab_allocs()),
              static_cast<double>(arena.held_bytes()) / 1e6);

  perf::ReportBuilder report("sketch_tool_batch");
  if (report.active()) {
    report.config("manifest", manifest_path);
    report.config("workers", static_cast<long long>(batch.workers()));
    report.timing("batch/wall", batch_seconds);
    report.counter("jobs", static_cast<std::uint64_t>(manifest.size()));
    report.counter("jobs_failed", static_cast<std::uint64_t>(failed));
    report.counter("steals", batch.steals());
    report.counter("arena_reuse_hits", arena.reuse_hits());
    report.write();
  }
  return failed == 0 ? 0 : 6;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  // `--batch MANIFEST` with no positional command is shorthand for the
  // batch subcommand (the manifest replaces --in).
  if (args.positional().empty() && !args.has("batch")) return usage(argv[0]);
  const std::string cmd =
      args.positional().empty() ? "batch" : args.positional()[0];
  const std::string in_path = args.get("in", "");
  if (cmd != "batch" && in_path.empty()) return usage(argv[0]);

  // --trace PATH mirrors RSKETCH_TRACE=PATH; the at-exit exporter writes the
  // timeline after main returns, so every command is covered.
  if (const std::string trace_path = args.get("trace", "");
      !trace_path.empty()) {
    perf::trace::set_output(trace_path);
    perf::trace::arm();
  }

  // Distinct exit codes per failure class (documented in usage()): scripts
  // can tell a corrupt input (2) from a numeric failure (3) from a fired
  // deadline (4) or budget (5) without parsing stderr. The guarded-solve
  // attempt log is embedded in the exception messages, so printing what()
  // surfaces the full retry history on failure.
  try {
    if (cmd == "batch") return cmd_batch(args);
    CscMatrix<double> a = read_matrix_market_file<double>(in_path);
    if (cmd == "info") return cmd_info(args, a);
    if (cmd == "sketch") return cmd_sketch(args, a);
    if (cmd == "solve") return cmd_solve(args, std::move(a));
    return usage(argv[0]);
  } catch (const validation_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const invalid_argument_error& e) {
    // Bad flag values and malformed manifests are usage errors (exit 2, as
    // the usage text has always documented), not internal failures.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const run_stopped_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    switch (e.cause()) {
      case StopCause::DeadlineExceeded: return 4;
      case StopCause::BudgetExceeded: return 5;
      default: return 1;  // Cancelled: no signal handler wires this yet
    }
  } catch (const numeric_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
