// Sketch-quality study: how the oversampling factor γ = d/n controls the
// subspace-embedding distortion of S for range(A), and hence the condition
// number of the preconditioned system in SAP (paper §V intro: the
// preconditioned cond is bounded by (sqrt(γ)+1)/(sqrt(γ)-1)).
//
//   ./subspace_embedding [--m 40000] [--n 200] [--density 5e-3]
#include <cmath>
#include <cstdio>

#include "sketch/sketch.hpp"
#include "solvers/qr.hpp"
#include "solvers/svd.hpp"
#include "solvers/triangular.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"
#include "support/cli.hpp"

using namespace rsketch;

namespace {

/// Extreme singular values of A·R⁻¹ where R is the QR factor of Â = S·A.
/// For a good sketch these bracket 1 tightly.
std::pair<double, double> preconditioned_extremes(const CscMatrix<double>& a,
                                                  double gamma,
                                                  std::uint64_t seed) {
  const index_t n = a.cols();
  SketchConfig cfg;
  cfg.d = static_cast<index_t>(std::ceil(gamma * static_cast<double>(n)));
  cfg.seed = seed;
  cfg.dist = Dist::PmOne;
  cfg.normalize = true;
  auto a_hat = sketch(cfg, a);
  QrFactor<double> f = qr_factorize(std::move(a_hat));
  const auto r = extract_r(f);

  DenseMatrix<double> apre(a.rows(), n);
  std::vector<double> e(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), 0.0);
    e[static_cast<std::size_t>(j)] = 1.0;
    solve_upper(r, e.data());
    spmv(a, e.data(), apre.col(j));
  }
  const auto svd = jacobi_svd(std::move(apre));
  return {svd.sigma.front(), svd.sigma.back()};
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const index_t m = args.get_int("m", 40000);
  const index_t n = args.get_int("n", 200);
  const double density = args.get_double("density", 5e-3);

  const auto a = random_sparse<double>(m, n, density, 3);
  std::printf("A: %lld x %lld, nnz %lld\n\n", static_cast<long long>(m),
              static_cast<long long>(n), static_cast<long long>(a.nnz()));
  std::printf("%8s %14s %14s %12s %18s %22s\n", "gamma", "sigma_max", "sigma_min",
              "cond(AR^-1)", "theory bound", "LSQR iters to 1e-14 (est)");

  for (const double gamma : {1.5, 2.0, 3.0, 4.0, 6.0}) {
    const auto [smax, smin] = preconditioned_extremes(a, gamma, 99);
    const double cond = smax / smin;
    const double bound =
        (std::sqrt(gamma) + 1.0) / (std::sqrt(gamma) - 1.0);
    // LSQR error shrinks like ((cond-1)/(cond+1))^k.
    const double rate = (cond - 1.0) / (cond + 1.0);
    const double iters = std::log(1e-14) / std::log(rate);
    std::printf("%8.2f %14.4f %14.4f %12.3f %18.3f %22.0f\n", gamma, smax,
                smin, cond, bound, iters);
  }
  std::printf(
      "\nShape check: cond(A R^-1) tracks the (sqrt(g)+1)/(sqrt(g)-1) bound "
      "and larger sketches buy faster LSQR convergence — the paper's γ=2 "
      "choice lands near ~80-90 iterations at tol 1e-14.\n");
  return 0;
}
