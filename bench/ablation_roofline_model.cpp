// §III-A model study: computational intensity vs n₁ for several (h, ρ),
// the closed-form corner cases (Eqs. 5-7), the optimal block sizes, and the
// sqrt(M) advantage over the GEMM data-movement bound.
#include <cmath>
#include <cstdio>

#include "analysis/machine.hpp"
#include "analysis/roofline.hpp"
#include "bench_common.hpp"

using namespace rsketch;

int main() {
  bench::print_banner(
      "ABLATION — §III-A roofline model (Eqs. 4-7)",
      "CI = flops per element moved-or-generated; B = machine balance");

  const double cache_elems =
      static_cast<double>(detect_cache_bytes()) / 4.0;  // 32-bit elements
  const double balance = 40.0;  // representative flops-per-element balance

  std::printf("Model cache size M = %.3g elements (detected cache / 4 B)\n\n",
              cache_elems);

  Table ci_table("Optimal n1 and CI across the (h, rho) design space:");
  ci_table.set_header({"h", "rho", "optimal n1", "CI(n1*)", "CI(n1=1)",
                       "model d1", "model m1", "frac of peak"});
  for (const double h : {0.001, 0.01, 0.1, 0.5}) {
    for (const double rho : {1e-4, 1e-3, 1e-2, 0.5}) {
      RooflineParams p;
      p.cache_elems = cache_elems;
      p.rng_cost = h;
      p.density = rho;
      p.machine_balance = balance;
      const double n1 = optimal_n1(p, 1e6);
      const auto blocks = model_blocks(p, n1);
      ci_table.add_row(
          {fmt_fixed(h, 3), fmt_sci(rho), fmt_fixed(n1, 0),
           fmt_fixed(ci(p, n1), 1), fmt_fixed(ci(p, 1.0), 1),
           fmt_fixed(blocks.d1, 0), fmt_fixed(blocks.m1, 0),
           fmt_fixed(peak_fraction(ci(p, n1), balance), 3)});
    }
  }
  std::printf("%s\n", ci_table.render().c_str());

  Table corner("Closed-form corner cases vs GEMM bound:");
  corner.set_header({"quantity", "value"});
  corner.add_row({"Eq.5  CI (rho->0, n1=1, h=0.01)",
                  fmt_fixed(ci_small_rho(cache_elems, 0.01), 1)});
  corner.add_row({"Eq.5  CI (rho->0, n1=1, h=0)  = M/2",
                  fmt_fixed(ci_small_rho(cache_elems, 0.0), 1)});
  corner.add_row(
      {"GEMM CI bound = sqrt(M)", fmt_fixed(std::sqrt(cache_elems), 1)});
  corner.add_row(
      {"advantage over GEMM at h=0 (= sqrt(M)/2)",
       fmt_fixed(ci_small_rho(cache_elems, 0.0) / std::sqrt(cache_elems), 1)});
  RooflineParams dense;
  dense.cache_elems = cache_elems;
  dense.rng_cost = 0.25;
  dense.density = 1.0;
  dense.machine_balance = balance;
  corner.add_row({"Eq.7  frac of peak (rho=1, h=0.25)",
                  fmt_fixed(peak_fraction_large_rho(dense), 3)});
  corner.add_row({"GEMM frac of peak (same B)",
                  fmt_fixed(gemm_peak_fraction(cache_elems, balance), 3)});
  corner.set_footnote(
      "Headline (§III-A): with cheap RNG the scheme beats the GEMM "
      "data-movement bound by a factor of sqrt(M)/2.");
  std::printf("%s\n", corner.render().c_str());
  return 0;
}
