// Figure 4: percent of peak vs nonzero density for Algorithm 4 under five
// strategies for the entries of S: Gaussian on the fly, pre-generated S in
// memory (generation time excluded), (-1,1) on the fly, (-1,1) with the
// scaling trick, and ±1 on the fly.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dense/blas1.hpp"
#include "sketch/baselines.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"

using namespace rsketch;

namespace {

/// Achievable-peak calibration: sustained FMA throughput of the axpy kernel
/// on L1-resident data — the realistic ceiling for these kernels.
double estimate_peak_gflops() {
  constexpr index_t n = 2048;
  std::vector<float> x(n, 1.0f), y(n, 0.5f);
  const int iters = 40000;
  Timer t;
  for (int i = 0; i < iters; ++i) {
    axpy<float>(n, 1.000001f, x.data(), y.data());
  }
  const double secs = t.seconds();
  volatile float sink = y[0];
  (void)sink;
  return 2.0 * n * iters / secs / 1e9;
}

}  // namespace

int main() {
  bench::print_banner(
      "FIGURE 4 — percent of peak vs density, five RNG strategies (Alg. 4)",
      "Perlmutter CPU node; uniformly sparse A; 32-bit samples (8-bit +-1)");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  const index_t m = 120000 / scale;
  const index_t n = 12000 / scale;
  const index_t d = 3 * n;
  const double peak = estimate_peak_gflops();
  std::printf("Calibrated achievable peak (L1 axpy): %.2f GFlop/s\n\n", peak);

  auto report = bench::make_report("fig4_distributions");
  report.config("m", static_cast<long long>(m));
  report.config("n", static_cast<long long>(n));
  report.config("d", static_cast<long long>(d));
  report.config("kernel", "jki");
  report.derived("calibrated_peak_gflops", peak);
  bench::HwScope hw(report);

  const double densities[] = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2};

  Table t("Percent of calibrated peak (this repo; paper Fig. 4 shape):");
  t.set_header({"density", "Gaussian fly", "pregen S", "(-1,1) fly",
                "scaling trick", "+-1 fly"});
  for (const double rho : densities) {
    const auto a = random_sparse<float>(m, n, rho, 42);
    SketchConfig cfg;
    cfg.d = d;
    cfg.kernel = KernelVariant::Jki;
    cfg.block_d = 3000;
    cfg.block_n = 1200;
    cfg.parallel = ParallelOver::Sequential;
    const double flops = 2.0 * static_cast<double>(d) * a.nnz();

    auto run_fly = [&](Dist dist) {
      cfg.dist = dist;
      DenseMatrix<float> a_hat(d, n);
      SketchStats last;
      const double secs =
          bench::time_best(reps, [&] { last = sketch_into(cfg, a, a_hat); });
      report.timing("rho=" + fmt_sci(rho) + "/" + to_string(dist) + "_fly",
                    secs, last);
      return flops / secs / 1e9 / peak * 100.0;
    };

    const double p_gauss = run_fly(Dist::Gaussian);
    const double p_uniform = run_fly(Dist::Uniform);
    const double p_trick = run_fly(Dist::UniformScaled);
    const double p_pm1 = run_fly(Dist::PmOne);

    // Pre-generated S: generation excluded (as in the paper).
    cfg.dist = Dist::Uniform;
    const DenseMatrix<float> s = materialize_S<float>(cfg, m);
    DenseMatrix<float> out;
    const double secs_pre =
        bench::time_best(reps, [&] { baseline_eigen_style(s, a, out); });
    report.timing("rho=" + fmt_sci(rho) + "/pregen", secs_pre);
    const double p_pre = flops / secs_pre / 1e9 / peak * 100.0;

    t.add_row({fmt_sci(rho), fmt_fixed(p_gauss, 1), fmt_fixed(p_pre, 1),
               fmt_fixed(p_uniform, 1), fmt_fixed(p_trick, 1),
               fmt_fixed(p_pm1, 1)});
  }
  t.set_footnote(
      "Shape check (paper Fig. 4): Gaussian-on-the-fly is far below the "
      "rest; the three cheap on-the-fly strategies beat pre-generated S; "
      "+-1 is the fastest.");
  std::printf("%s\n", t.render().c_str());
  hw.finish();
  report.write();
  return 0;
}
