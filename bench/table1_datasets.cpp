// Table I: properties of the SpMM test data (d = 3n, dimensions of A, nnz,
// density) — printed for the scaled replicas next to the paper's originals.
#include <cstdio>

#include "bench_common.hpp"
#include "sparse/csc.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

int main() {
  bench::print_banner("TABLE I — properties of SpMM test data",
                      "SuiteSparse matrices; d = 3n rows in S");
  const index_t scale = bench_scale();

  Table paper("Paper (original matrices):");
  paper.set_header({"Matrices", "d", "m", "n", "nnz(A)", "density"});
  Table ours("This repo (synthetic replicas, scaled):");
  ours.set_header({"Matrices", "d", "m", "n", "nnz(A)", "density"});

  for (const auto& info : spmm_replica_infos()) {
    const double paper_density =
        static_cast<double>(info.nnz) /
        (static_cast<double>(info.m) * static_cast<double>(info.n));
    paper.add_row({info.name, fmt_int(info.d), fmt_int(info.m),
                   fmt_int(info.n), fmt_int(info.nnz),
                   fmt_sci(paper_density)});
    const auto a = make_spmm_replica<float>(info.name, scale);
    ours.add_row({info.name, fmt_int(spmm_replica_d(info.name, scale)),
                  fmt_int(a.rows()), fmt_int(a.cols()), fmt_int(a.nnz()),
                  fmt_sci(a.density())});
  }
  std::printf("%s\n", paper.render().c_str());
  std::printf("%s\n", ours.render().c_str());
  return 0;
}
