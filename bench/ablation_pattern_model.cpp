// Pattern-aware model validation (the paper's future-work item, implemented
// in analysis/pattern): predicted regeneration fractions vs the ACTUAL
// sample counts of Algorithm 4, across the Table I replicas and the Table VI
// abnormal patterns.
#include <cstdio>

#include "analysis/machine.hpp"
#include "analysis/pattern.hpp"
#include "bench_common.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

namespace {

/// Measured regeneration fraction: Alg4's generated samples / (d·m), from a
/// real run with vertical blocks of width bn.
double measured_regen_fraction(const CscMatrix<float>& a, index_t bn) {
  SketchConfig cfg;
  cfg.d = 64;  // small d: we only count samples, not time
  cfg.kernel = KernelVariant::Jki;
  cfg.block_d = 64;
  cfg.block_n = bn;
  cfg.parallel = ParallelOver::Sequential;
  DenseMatrix<float> a_hat(cfg.d, a.cols());
  const auto stats = sketch_into(cfg, a, a_hat);
  return static_cast<double>(stats.samples_generated) /
         (static_cast<double>(cfg.d) * static_cast<double>(a.rows()) *
          static_cast<double>(ceil_div(a.cols(), bn)));
}

void report(const std::string& name, const CscMatrix<float>& a, Table& t) {
  for (const index_t bn : {index_t{1}, index_t{32}, index_t{256}}) {
    const index_t bn_c = std::min<index_t>(bn, a.cols());
    const double model_pattern = expected_regen_fraction(a, static_cast<double>(bn_c));
    const double rho = a.density();
    const double model_uniform =
        1.0 - std::pow(1.0 - rho, static_cast<double>(bn_c));
    const double measured = measured_regen_fraction(a, bn_c);
    t.add_row({name, fmt_int(bn_c), fmt_fixed(measured, 4),
               fmt_fixed(model_pattern, 4), fmt_fixed(model_uniform, 4)});
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "ABLATION — pattern-aware regeneration model vs measured Alg4 samples",
      "future-work extension of §III-A to non-uniform sparsity");
  const index_t scale = bench_scale();

  Table t("Fraction of rows regenerated per vertical block of width b_n:");
  t.set_header({"matrix", "b_n", "measured", "pattern model", "uniform model"});
  for (const auto& info : spmm_replica_infos()) {
    report(info.name, make_spmm_replica<float>(info.name, scale), t);
    t.add_separator();
  }
  const index_t m = 100000 / scale, n = 10000 / scale;
  const index_t stride = std::min<index_t>(1000, std::max<index_t>(2, m / 4));
  report("Abnormal_A", abnormal_a<float>(m, n, stride, 1), t);
  t.add_separator();
  report("Abnormal_C", abnormal_c<float>(m, n, stride, 2), t);
  t.set_footnote(
      "Shape check: the pattern model tracks the measured fractions for the "
      "scattered patterns and is exact at b_n=1; it still overestimates "
      "banded matrices (mesh_deform), whose CONSECUTIVE blocks share rows — "
      "the random-block assumption is the remaining gap the paper's future "
      "work calls out. The uniform model is additionally wrong on "
      "Abnormal_A/C.");
  std::printf("%s\n", t.render().c_str());

  // Pattern-aware block suggestion for each replica.
  RooflineParams p;
  p.cache_elems = static_cast<double>(detect_cache_bytes()) / 4.0;
  p.rng_cost = 0.1;
  Table s("Pattern-aware optimal n1 (h=0.1, detected cache):");
  s.set_header({"matrix", "uniform n1*", "pattern n1*"});
  for (const auto& info : spmm_replica_infos()) {
    const auto a = make_spmm_replica<float>(info.name, scale);
    p.density = a.density();
    s.add_row({info.name,
               fmt_fixed(optimal_n1(p, static_cast<double>(a.cols())), 0),
               fmt_fixed(optimal_n1_for_matrix(a, p), 0)});
  }
  std::printf("%s\n", s.render().c_str());
  return 0;
}
