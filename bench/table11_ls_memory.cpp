// Table XI: workspace memory of SAP vs the direct sparse QR, next to the
// memory of A itself. The paper's headline: SAP needs 7-130x LESS memory
// than the direct method, despite working with a dense sketch.
#include <cstdio>

#include "bench_ls_common.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  double sap_mb, ss_mb, mem_a_mb;
};

constexpr PaperRow kPaper[] = {
    {"rail2586", 107.00, 15950.11, 135.57},
    {"spal_004", 1665.62, 49807.51, 741.26},
    {"rail4284", 293.64, 38959.24, 189.32},
    {"rail582", 5.42, 218.94, 6.89},
    {"specular", 33.27, 984.10, 122.37},
    {"connectus", 3.36, 769.55, 21.2},
    {"landmark", 116.99, 850.54, 18.37},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE XI — workspace memory (MBytes)",
      "SAP = sketch + factor + LSQR vectors; SuiteSparse = QR factors");

  Table paper("Paper:");
  paper.set_header({"A", "SAP", "SuiteSparse", "mem(A)"});
  for (const auto& r : kPaper) {
    paper.add_row({r.name, fmt_fixed(r.sap_mb, 2), fmt_fixed(r.ss_mb, 2),
                   fmt_fixed(r.mem_a_mb, 2)});
  }
  std::printf("%s\n", paper.render().c_str());

  const auto results = bench::run_ls_suite();
  Table ours("This repo:");
  ours.set_header(
      {"A", "SAP", "direct sparse QR", "mem(A)", "direct/SAP ratio"});
  for (const auto& r : results) {
    ours.add_row(
        {r.name, fmt_fixed(static_cast<double>(r.sap_bytes) / 1e6, 2),
         fmt_fixed(static_cast<double>(r.direct_bytes) / 1e6, 2),
         fmt_fixed(static_cast<double>(r.mem_a_bytes) / 1e6, 2),
         fmt_fixed(static_cast<double>(r.direct_bytes) /
                       static_cast<double>(r.sap_bytes),
                   1) +
             "x"});
  }
  ours.set_footnote(
      "Shape check: the direct solver's R factor fills in far beyond nnz(A); "
      "SAP's predictable d*n + n^2 workspace is much smaller. (Fill ratios "
      "are milder than the paper's because the replicas are scaled down — "
      "fill-in grows superlinearly with n.)");
  std::printf("%s\n", ours.render().c_str());
  return 0;
}
