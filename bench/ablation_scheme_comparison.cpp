// Cross-scheme ablation: every way this library can apply a random matrix —
// Algorithm 3 (kji), Algorithm 4 (jki), pylspack-style streaming, and the
// right-sketch A·Sᵀ — compared on time and, crucially, on SAMPLES GENERATED,
// the resource the paper's whole design space trades against memory traffic.
#include <cstdio>

#include "bench_common.hpp"
#include "sketch/sketch.hpp"
#include "sketch/sketch_right.hpp"
#include "sketch/streaming.hpp"
#include "sparse/convert.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

int main() {
  bench::print_banner(
      "ABLATION — sample economy across sketching schemes (shar_te2-b2)",
      "left sketches use d=3n; the right sketch compresses columns with "
      "l=n/2; (-1,1) entries");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  const auto a = make_spmm_replica<float>("shar_te2-b2", scale);
  const index_t d = spmm_replica_d("shar_te2-b2", scale);

  Table t("Scheme comparison:");
  t.set_header({"scheme", "output", "time (s)", "samples", "samples / d*nnz"});
  const double dnnz = static_cast<double>(d) * static_cast<double>(a.nnz());

  {
    SketchConfig cfg;
    cfg.d = d;
    cfg.block_d = 3000;
    cfg.block_n = 500;
    cfg.parallel = ParallelOver::Sequential;
    DenseMatrix<float> out(d, a.cols());
    SketchStats best;
    best.total_seconds = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto s = sketch_into(cfg, a, out);
      if (s.total_seconds < best.total_seconds) best = s;
    }
    t.add_row({"Alg 3 (kji, d-blocked)", "S*A", fmt_time(best.total_seconds),
               fmt_int(static_cast<long long>(best.samples_generated)),
               fmt_fixed(static_cast<double>(best.samples_generated) / dnnz,
                         3)});
  }
  {
    SketchConfig cfg;
    cfg.d = d;
    cfg.kernel = KernelVariant::Jki;
    cfg.block_d = 3000;
    cfg.block_n = 1200;
    cfg.parallel = ParallelOver::Sequential;
    DenseMatrix<float> out(d, a.cols());
    SketchStats best;
    best.total_seconds = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto s = sketch_into(cfg, a, out);
      if (s.total_seconds < best.total_seconds) best = s;
    }
    t.add_row({"Alg 4 (jki, blocked CSR)", "S*A",
               fmt_time(best.total_seconds),
               fmt_int(static_cast<long long>(best.samples_generated)),
               fmt_fixed(static_cast<double>(best.samples_generated) / dnnz,
                         3)});
  }
  {
    SketchConfig cfg;
    cfg.d = d;
    cfg.block_d = 3000;
    const auto a_csr = csc_to_csr(a);
    DenseMatrix<float> out;
    SketchStats best;
    best.total_seconds = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto s = streaming_sketch(cfg, a_csr, out);
      if (s.total_seconds < best.total_seconds) best = s;
    }
    t.add_row({"streaming (1,m,1)", "S*A", fmt_time(best.total_seconds),
               fmt_int(static_cast<long long>(best.samples_generated)),
               fmt_fixed(static_cast<double>(best.samples_generated) / dnnz,
                         3)});
  }
  {
    SketchConfig cfg;
    cfg.d = a.cols() / 2;  // row-space sketch: compresses the n dimension
    cfg.block_d = 3000;
    cfg.parallel = ParallelOver::Sequential;
    std::vector<float> out;
    SketchStats best;
    best.total_seconds = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto s = sketch_right_into(cfg, a, out);
      if (s.total_seconds < best.total_seconds) best = s;
    }
    const double lnnz =
        static_cast<double>(cfg.d) * static_cast<double>(a.nnz());
    t.add_row({"right sketch A*S^T (l=n/2)", "A*S'",
               fmt_time(best.total_seconds),
               fmt_int(static_cast<long long>(best.samples_generated)),
               fmt_fixed(static_cast<double>(best.samples_generated) / lnnz,
                         3)});
  }
  t.set_footnote(
      "Samples/(d*nnz)=1 is Alg 3's pattern-oblivious worst case; Alg 4 and "
      "streaming trade access regularity for fewer samples; the right sketch "
      "gets Alg-4-style reuse directly from CSC (one generated column per "
      "matrix column) without the blocked-CSR conversion.");
  std::printf("%s\n", t.render().c_str());
  return 0;
}
