// Table V: sample time vs total SpMM time for Algorithms 3 and 4 with the
// Perlmutter blocking (b_n=1200, b_d=3000) — the configuration where the
// paper sees Algorithm 4 overtake Algorithm 3.
#include <cstdio>

#include "bench_common.hpp"
#include "sketch/sketch.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  double total3, sample3, total4, sample4;
};

// Paper Table V (Perlmutter, seconds).
constexpr PaperRow kPaper[] = {
    {"mk-12", 0.0627, 0.034, 0.0520, 0.0142},
    {"ch7-9-b3", 7.37, 3.90, 6.60, 2.09},
    {"shar_te2-b2", 9.89, 5.40, 9.04, 3.64},
    {"mesh_deform", 7.68, 4.21, 5.73, 2.35},
    {"cis-n4c6-b4", 0.628, 0.312, 0.532, 0.120},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE V — sample vs total time, Perlmutter blocking",
      "Perlmutter, (-1,1) entries, b_n=1200, b_d=3000");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  Table paper("Paper (Perlmutter, seconds):");
  paper.set_header({"Matrices", "Algorithm", "total time", "sample time"});
  for (const auto& r : kPaper) {
    paper.add_row(
        {r.name, "Algorithm 3", fmt_time(r.total3), fmt_time(r.sample3)});
  }
  paper.add_separator();
  for (const auto& r : kPaper) {
    paper.add_row(
        {r.name, "Algorithm 4", fmt_time(r.total4), fmt_time(r.sample4)});
  }
  std::printf("%s\n", paper.render().c_str());

  Table ours("This repo (seconds, instrumented runs):");
  ours.set_header(
      {"Matrices", "Algorithm", "total time", "sample time", "sample frac"});
  for (const KernelVariant kernel : {KernelVariant::Kji, KernelVariant::Jki}) {
    for (const auto& info : spmm_replica_infos()) {
      const auto a = make_spmm_replica<float>(info.name, scale);
      SketchConfig cfg;
      cfg.d = spmm_replica_d(info.name, scale);
      cfg.dist = Dist::Uniform;
      cfg.kernel = kernel;
      cfg.block_d = 3000;
      cfg.block_n = 1200;
      cfg.parallel = ParallelOver::Sequential;
      DenseMatrix<float> a_hat(cfg.d, a.cols());

      SketchStats best;
      best.total_seconds = 1e300;
      for (int r = 0; r < reps; ++r) {
        const auto stats = sketch_into(cfg, a, a_hat, /*instrument=*/true);
        if (stats.total_seconds < best.total_seconds) best = stats;
      }
      ours.add_row(
          {info.name,
           kernel == KernelVariant::Kji ? "Algorithm 3" : "Algorithm 4",
           fmt_time(best.total_seconds), fmt_time(best.sample_seconds),
           fmt_fixed(best.sample_seconds / best.total_seconds, 2)});
    }
    if (kernel == KernelVariant::Kji) ours.add_separator();
  }
  ours.set_footnote(
      "Shape check: with wide vertical blocks (b_n=1200) Alg4's RNG-cost "
      "saving grows; on RNG-bound machines Alg4 wins overall.");
  std::printf("%s\n", ours.render().c_str());
  return 0;
}
