// Shared runner for the least-squares experiment family (Tables IX, X, XI
// and Figure 6): solves every Table VIII replica with LSQR-D, SAP (QR or
// SVD, as the paper pairs them), and the direct sparse Givens QR
// (SuiteSparseQR stand-in), collecting times, iterations, error metrics and
// workspace sizes.
#pragma once

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "solvers/least_squares.hpp"
#include "solvers/sap.hpp"
#include "solvers/sparse_qr.hpp"
#include "support/timer.hpp"
#include "testdata/replicas.hpp"

namespace rsketch::bench {

struct LsRunResult {
  std::string name;
  bool use_svd = false;
  // LSQR-D
  double lsqrd_seconds = 0.0;
  index_t lsqrd_iters = 0;
  double lsqrd_error = 0.0;
  // SAP
  double sap_sketch_seconds = 0.0;
  double sap_seconds = 0.0;
  index_t sap_iters = 0;
  double sap_error = 0.0;
  std::size_t sap_bytes = 0;
  // Direct sparse QR ("SuiteSparse")
  double direct_seconds = 0.0;
  double direct_error = 0.0;
  std::size_t direct_bytes = 0;
  // Problem
  std::size_t mem_a_bytes = 0;
  index_t m = 0, n = 0, nnz = 0;
};

/// Solve all seven Table VIII replicas with the three solver families.
inline std::vector<LsRunResult> run_ls_suite() {
  std::vector<LsRunResult> results;
  const index_t scale = ls_scale();
  for (const auto& info : ls_replica_infos()) {
    LsRunResult r;
    r.name = info.name;
    r.use_svd = info.use_svd;

    const CscMatrix<double> a = make_ls_replica(info.name, scale);
    r.m = a.rows();
    r.n = a.cols();
    r.nnz = a.nnz();
    r.mem_a_bytes = a.memory_bytes();
    const auto b = make_least_squares_rhs(a, 0xB0B + scale);

    // --- LSQR-D (tol 1e-14, like the paper's fair-comparison setting).
    {
      LsqrOptions lo;
      lo.tol = 1e-14;
      lo.max_iter = 40000;
      Timer t;
      const auto res = lsqr_diag_precond(a, b, lo);
      r.lsqrd_seconds = t.seconds();
      r.lsqrd_iters = res.iterations;
      r.lsqrd_error = ls_error_metric(a, res.x, b);
    }

    // --- SAP (QR for the benign matrices, SVD for the near-singular ones).
    {
      SapOptions so;
      so.factor = info.use_svd ? SapFactor::SVD : SapFactor::QR;
      so.gamma = 2.0;
      so.dist = Dist::Uniform;
      so.lsqr_tol = 1e-14;
      so.lsqr_max_iter = 2000;
      Timer t;
      const auto res = sap_solve(a, b, so);
      r.sap_seconds = t.seconds();
      r.sap_sketch_seconds = res.sketch_seconds;
      r.sap_iters = res.iterations;
      r.sap_error = ls_error_metric(a, res.x, b);
      r.sap_bytes = res.workspace_bytes;
    }

    // --- Direct sparse QR (SuiteSparseQR stand-in).
    {
      Timer t;
      const auto res = sparse_qr_least_squares(a, b.data());
      r.direct_seconds = t.seconds();
      r.direct_error = ls_error_metric(a, res.x, b);
      r.direct_bytes = res.factor_bytes();
    }

    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace rsketch::bench
