// §V-A closing note: replacing every generated entry of S with "junk"
// (computed by simple addition) upper-bounds the achievable speed and
// measures how much of the runtime is RNG cost. The paper saw ~2x headroom
// on shar_te2-b2, arguing for hardware RNG support.
#include <cstdio>

#include "bench_common.hpp"
#include "sketch/sketch.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

int main() {
  bench::print_banner(
      "ABLATION — 'junk' RNG upper bound (paper §V-A closing note)",
      "shar_te2-b2; Algorithm 3; paper saw ~2x headroom over (-1,1)");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  const auto a = make_spmm_replica<float>("shar_te2-b2", scale);
  SketchConfig cfg;
  cfg.d = spmm_replica_d("shar_te2-b2", scale);
  cfg.block_d = 3000;
  cfg.block_n = 500;
  cfg.parallel = ParallelOver::Sequential;

  Table t("Algorithm 3 on shar_te2-b2 (this repo):");
  t.set_header({"entry generator", "time (s)", "GFlop/s", "speedup vs (-1,1)"});
  double t_uniform = 0.0;
  struct Row {
    Dist dist;
    const char* label;
  };
  const Row rows[] = {
      {Dist::Gaussian, "Gaussian on the fly"},
      {Dist::Uniform, "(-1,1) on the fly"},
      {Dist::UniformScaled, "(-1,1) scaling trick"},
      {Dist::PmOne, "+-1 on the fly"},
      {Dist::Junk, "junk (upper bound)"},
  };
  DenseMatrix<float> a_hat(cfg.d, a.cols());
  const double flops = 2.0 * static_cast<double>(cfg.d) * a.nnz();
  for (const Row& r : rows) {
    cfg.dist = r.dist;
    const double secs =
        bench::time_best(reps, [&] { sketch_into(cfg, a, a_hat); });
    if (r.dist == Dist::Uniform) t_uniform = secs;
    t.add_row({r.label, fmt_time(secs), fmt_fixed(flops / secs / 1e9, 2),
               t_uniform > 0 ? fmt_fixed(t_uniform / secs, 2) + "x" : "-"});
  }
  t.set_footnote(
      "Shape check: junk > +-1 > scaling trick ~ (-1,1) >> Gaussian; the "
      "junk/(-1,1) gap is the headroom a hardware RNG could reclaim.");
  std::printf("%s\n", t.render().c_str());
  return 0;
}
