// Table IV: Algorithm 4 vs Julia/Eigen-style baselines with the Perlmutter
// blocking (b_n=1200, b_d=3000), plus the CSC→blocked-CSR conversion time.
#include <cstdio>

#include "bench_common.hpp"
#include "sketch/baselines.hpp"
#include "sketch/sketch.hpp"
#include "sparse/blocked_csr.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  double julia, eigen, alg4_u, alg4_pm, convert;
};

// Paper Table IV (Perlmutter, seconds).
constexpr PaperRow kPaper[] = {
    {"mk-12", 0.054, 0.0662, 0.0498, 0.0431, 0.0026},
    {"ch7-9-b3", 6.44, 7.72, 6.32, 5.40, 0.059},
    {"shar_te2-b2", 10.13, 11.75, 8.60, 7.10, 0.095},
    {"mesh_deform", 6.24, 7.40, 5.47, 4.47, 0.098},
    {"cis-n4c6-b4", 0.519, 0.623, 0.513, 0.453, 0.005},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE IV — Algorithm 4 vs baselines + format conversion",
      "Perlmutter (AMD Milan), b_n=1200, b_d=3000, 32-bit values");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  Table paper("Paper (Perlmutter, seconds):");
  paper.set_header({"Matrices", "Julia", "Eigen", "Alg4 (-1,1)", "Alg4 (+-1)",
                    "format conversion"});
  for (const auto& r : kPaper) {
    paper.add_row({r.name, fmt_time(r.julia), fmt_time(r.eigen),
                   fmt_time(r.alg4_u), fmt_time(r.alg4_pm),
                   fmt_time(r.convert)});
  }
  std::printf("%s\n", paper.render().c_str());

  Table ours("This repo (seconds):");
  ours.set_header({"Matrices", "Julia-style", "Eigen-style", "Alg4 (-1,1)",
                   "Alg4 (+-1)", "format conversion"});
  for (const auto& info : spmm_replica_infos()) {
    const auto a = make_spmm_replica<float>(info.name, scale);
    SketchConfig cfg;
    cfg.d = spmm_replica_d(info.name, scale);
    cfg.dist = Dist::Uniform;
    cfg.kernel = KernelVariant::Jki;
    cfg.block_d = 3000;
    cfg.block_n = 1200;
    cfg.parallel = ParallelOver::Sequential;

    const DenseMatrix<float> s = materialize_S<float>(cfg, a.rows());
    DenseMatrix<float> out;
    const double t_julia =
        bench::time_best(reps, [&] { baseline_julia_style(s, a, out); });
    const double t_eigen =
        bench::time_best(reps, [&] { baseline_eigen_style(s, a, out); });

    // Conversion timed separately; multiplication uses the prebuilt blocks
    // (mirrors the paper's separate "format conversion" column).
    const double t_convert = bench::time_best(
        reps, [&] { (void)BlockedCsr<float>::from_csc(a, cfg.block_n); });
    const auto ab = BlockedCsr<float>::from_csc(a, cfg.block_n);
    DenseMatrix<float> a_hat(cfg.d, a.cols());
    const double t_alg4_u = bench::time_best(
        reps, [&] { sketch_into_prepartitioned(cfg, ab, a_hat); });
    cfg.dist = Dist::PmOne;
    const double t_alg4_pm = bench::time_best(
        reps, [&] { sketch_into_prepartitioned(cfg, ab, a_hat); });

    ours.add_row({info.name, fmt_time(t_julia), fmt_time(t_eigen),
                  fmt_time(t_alg4_u), fmt_time(t_alg4_pm),
                  fmt_time(t_convert)});
  }
  ours.set_footnote(
      "Shape check: Alg4 beats the baselines; conversion is cheap relative "
      "to compute; +-1 beats (-1,1).");
  std::printf("%s\n", ours.render().c_str());
  return 0;
}
