// Table VIII: properties of the least-squares matrices — size, nnz,
// cond(A), cond(AD), CSC memory — paper originals next to scaled replicas.
#include <cstdio>

#include "bench_common.hpp"
#include "solvers/least_squares.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  long long m, n, nnz;
  double cond_a, cond_ad, mem_mb;
  double density;
};

// Paper Table VIII (dimensions BEFORE transposition in the paper; here we
// list the tall orientation used by the solvers).
constexpr PaperRow kPaper[] = {
    {"rail2586", 923269, 2586, 8011362, 496.00, 263.44, 135.57, 3.36e-3},
    {"spal_004", 321696, 10203, 46168124, 39389.87, 1147.79, 741.26, 1.41e-2},
    {"rail4284", 1096894, 4284, 11284032, 399.78, 333.87, 189.32, 2.40e-3},
    {"rail582", 56097, 582, 402290, 185.91, 180.49, 6.89, 1.23e-2},
    {"specular", 477976, 1442, 7647040, 2.31e14, 29.85, 122.37, 1.00e-2},
    {"connectus", 394792, 458, 1127525, 1.27e16, 1.28e16, 21.20, 5.58e-3},
    {"landmark", 71952, 2704, 1146848, 1.39e18, 2.30e17, 18.37, 5.89e-3},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE VIII — properties of least-squares matrices",
      "SuiteSparse matrices (tall orientation); cond via SVD");
  const index_t scale = ls_scale();

  Table paper("Paper:");
  paper.set_header({"A", "m", "n", "nnz(A)", "cond(A)", "cond(AD)", "mem(A) MB",
                    "density"});
  for (const auto& r : kPaper) {
    paper.add_row({r.name, fmt_int(r.m), fmt_int(r.n), fmt_int(r.nnz),
                   fmt_sci(r.cond_a), fmt_sci(r.cond_ad),
                   fmt_fixed(r.mem_mb, 2), fmt_sci(r.density)});
  }
  std::printf("%s\n", paper.render().c_str());

  Table ours("This repo (replicas; cond computed densely for n <= 500):");
  ours.set_header({"A", "m", "n", "nnz(A)", "cond(A)", "cond(AD)",
                   "mem(A) MB", "density"});
  for (const auto& info : ls_replica_infos()) {
    const auto a = make_ls_replica(info.name, scale);
    std::string cond_a = "-", cond_ad = "-";
    if (a.cols() <= 500) {
      cond_a = fmt_sci(cond_estimate(a));
      cond_ad = fmt_sci(cond_estimate(a, diag_precond_scales(a)));
    }
    ours.add_row({info.name, fmt_int(a.rows()), fmt_int(a.cols()),
                  fmt_int(a.nnz()), cond_a, cond_ad,
                  fmt_fixed(static_cast<double>(a.memory_bytes()) / 1e6, 2),
                  fmt_sci(a.density())});
  }
  ours.set_footnote(
      "Shape check: rail*/spal are benign; specular's huge cond(A) collapses "
      "under column scaling; connectus/landmark stay ill-conditioned.");
  std::printf("%s\n", ours.render().c_str());
  return 0;
}
