// Schema validator for BENCH_*.json telemetry reports (schema_version 1 or
// 2 — v2 adds span latency histograms and thread-imbalance fields).
// Used by the `smoke` ctest label to gate the emitter, and handy standalone:
//
//   validate_bench_json BENCH_fig4_distributions.json [more.json ...]
//
// Exit 0 when every file parses and validates; 1 otherwise, with one line
// per violation on stderr.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "perf/json.hpp"
#include "perf/report.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_*.json [more ...]\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const char* path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const auto doc = rsketch::perf::Json::parse(buf.str());
      const auto errs = rsketch::perf::validate_bench_report(doc);
      for (const auto& e : errs) {
        std::fprintf(stderr, "%s: %s\n", path, e.c_str());
      }
      if (!errs.empty()) {
        ++failures;
        continue;
      }
      const auto* version = doc.find("schema_version");
      std::printf("%s: valid (schema_version %lld, %zu timing rows)\n", path,
                  version != nullptr ? version->as_int() : 0,
                  doc.find("timings")->size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", path, e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
