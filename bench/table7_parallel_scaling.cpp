// Table VII: parallel scalability of Algorithms 3 and 4 on shar_te2-b2 with
// two blocking setups. Setup 2 uses the paper's heuristic (§V-B): larger
// b_d / smaller b_n offloads memory traffic onto the regenerated S and
// scales better.
#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "support/parallel.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  int threads;
  double t4_s1, g4_s1, t3_s1, g3_s1, t4_s2, g4_s2, t3_s2, g3_s2;
};

// Paper Table VII (shar_te2-b2, seconds and GFlop/s).
constexpr PaperRow kPaper[] = {
    {1, 8.66, 7.14, 9.00, 6.87, 8.42, 7.35, 8.88, 6.96},
    {2, 5.06, 12.23, 5.16, 11.98, 4.88, 12.68, 4.52, 13.68},
    {4, 2.72, 22.70, 2.63, 23.47, 2.51, 24.59, 2.50, 24.75},
    {8, 2.07, 29.89, 1.98, 31.22, 1.55, 39.88, 1.35, 45.80},
    {16, 2.34, 26.42, 1.14, 54.08, 1.37, 45.05, 0.83, 74.76},
    {32, 2.01, 30.74, 0.92, 67.33, 0.80, 77.22, 0.62, 100.29},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE VII — parallel scaling, two blocking setups (shar_te2-b2)",
      "threads 1..32; setup1 = (b_d=3000, b_n=1200), setup2 = (b_d=12000, "
      "b_n=300); (-1,1) entries");
  const index_t scale = bench_scale();
  const int reps = bench_reps();
  const int max_threads = bench_max_threads();

  Table paper("Paper:");
  paper.set_header({"threads", "Alg4 s1 (s)", "Alg4 s1 GF", "Alg3 s1 (s)",
                    "Alg3 s1 GF", "Alg4 s2 (s)", "Alg4 s2 GF", "Alg3 s2 (s)",
                    "Alg3 s2 GF"});
  for (const auto& r : kPaper) {
    paper.add_row({fmt_int(r.threads), fmt_time(r.t4_s1), fmt_fixed(r.g4_s1, 2),
                   fmt_time(r.t3_s1), fmt_fixed(r.g3_s1, 2),
                   fmt_time(r.t4_s2), fmt_fixed(r.g4_s2, 2),
                   fmt_time(r.t3_s2), fmt_fixed(r.g3_s2, 2)});
  }
  std::printf("%s\n", paper.render().c_str());

  const auto a = make_spmm_replica<float>("shar_te2-b2", scale);
  const index_t d = spmm_replica_d("shar_te2-b2", scale);

  auto report = bench::make_report("table7_parallel_scaling");
  report.config("matrix", "shar_te2-b2");
  report.config("d", static_cast<long long>(d));
  report.config("max_threads", static_cast<long long>(max_threads));
  bench::HwScope hw(report);

  struct Setup {
    index_t bd, bn;
  };
  const Setup setups[] = {{3000, 1200}, {12000, 300}};

  Table ours("This repo:");
  ours.set_header({"threads", "Alg4 s1 (s)", "Alg4 s1 GF", "Alg3 s1 (s)",
                   "Alg3 s1 GF", "Alg4 s2 (s)", "Alg4 s2 GF", "Alg3 s2 (s)",
                   "Alg3 s2 GF"});
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  for (int threads : thread_counts) {
    ThreadCountGuard guard(threads);
    std::vector<std::string> row{fmt_int(threads)};
    for (const auto& setup : setups) {
      for (const KernelVariant kernel :
           {KernelVariant::Jki, KernelVariant::Kji}) {
        SketchConfig cfg;
        cfg.d = d;
        cfg.dist = Dist::Uniform;
        cfg.kernel = kernel;
        cfg.block_d = setup.bd;
        cfg.block_n = setup.bn;
        cfg.parallel = ParallelOver::DBlocks;
        DenseMatrix<float> a_hat(d, a.cols());
        SketchStats best;
        best.total_seconds = 1e300;
        for (int r = 0; r < reps; ++r) {
          const auto st = sketch_into(cfg, a, a_hat);
          if (st.total_seconds < best.total_seconds) best = st;
        }
        report.timing("threads=" + std::to_string(threads) + "/bd=" +
                          std::to_string(setup.bd) + ",bn=" +
                          std::to_string(setup.bn) +
                          (kernel == KernelVariant::Jki ? "/alg4" : "/alg3"),
                      best.total_seconds, best);
        row.push_back(fmt_time(best.total_seconds));
        row.push_back(fmt_fixed(best.gflops, 2));
      }
    }
    ours.add_row(row);
  }
  char note[256];
  std::snprintf(note, sizeof note,
                "Host exposes %d hardware thread(s); counts beyond that run "
                "oversubscribed and show flat or degraded scaling. Shape "
                "check (multi-core hosts): setup2 scales further than "
                "setup1, Alg3 scales best.",
                omp_get_num_procs());
  ours.set_footnote(note);
  std::printf("%s\n", ours.render().c_str());

  // Skewed-nnz companion point: Abnormal_B concentrates 90% of the nonzeros
  // in the middle-third vertical block, so per-jb work is wildly uneven —
  // exactly the case the cost-model scheduler (sketch/schedule.hpp) exists
  // for. Uniform vs. balanced head-to-head: the uniform contiguous split
  // parks every thread behind the dense block's owner; the LPT schedule
  // spreads the dense block's (i,j) pairs across the team.
  {
    const index_t sm = std::max<index_t>(20000 / scale, 64);
    const index_t sn = std::max<index_t>(3000 / scale, 16);
    const auto skew = abnormal_b<float>(sm, sn, 2e-3, 0.9, 77);
    const index_t sd = sn;
    Table skewt(
        "Skewed nnz (Abnormal_B, 90% in middle third), Alg4 DBlocks, "
        "uniform vs balanced schedule:");
    skewt.set_header({"threads", "unif (s)", "unif imb", "bal (s)", "bal imb",
                      "bal est"});
    for (int threads : thread_counts) {
      ThreadCountGuard guard(threads);
      std::vector<std::string> row{fmt_int(threads)};
      SketchStats best_by_mode[2];
      for (const ScheduleMode mode :
           {ScheduleMode::Uniform, ScheduleMode::Balanced}) {
        SketchConfig cfg;
        cfg.d = sd;
        cfg.dist = Dist::Uniform;
        cfg.kernel = KernelVariant::Jki;
        // Several i-blocks per vertical block, so the partitioner has real
        // work units to place: LPT splits the dense middle block across the
        // team while the uniform split pins it on one thread — visible in
        // the imbalance columns and in the trace timeline.
        cfg.block_d = std::max<index_t>(sd / 8, 16);
        cfg.block_n = 300;
        cfg.parallel = ParallelOver::DBlocks;
        cfg.schedule = mode;
        DenseMatrix<float> a_hat(sd, skew.cols());
        SketchStats best;
        best.total_seconds = 1e300;
        for (int r = 0; r < reps; ++r) {
          const auto st = sketch_into(cfg, skew, a_hat);
          if (st.total_seconds < best.total_seconds) best = st;
        }
        report.timing("skewed/threads=" + std::to_string(threads) + "/alg4/" +
                          to_string(mode),
                      best.total_seconds, best);
        best_by_mode[mode == ScheduleMode::Balanced ? 1 : 0] = best;
      }
      const SketchStats& u = best_by_mode[0];
      const SketchStats& b = best_by_mode[1];
      row.push_back(fmt_time(u.total_seconds));
      row.push_back(u.thread_imbalance > 0.0 ? fmt_fixed(u.thread_imbalance, 2)
                                             : "-");
      row.push_back(fmt_time(b.total_seconds));
      row.push_back(b.thread_imbalance > 0.0 ? fmt_fixed(b.thread_imbalance, 2)
                                             : "-");
      row.push_back(b.schedule_imbalance_est > 0.0
                        ? fmt_fixed(b.schedule_imbalance_est, 2)
                        : "-");
      skewt.add_row(row);
    }
    skewt.set_footnote(
        "Shape check (multi-core hosts): the balanced columns should track "
        "the uniform setup2 scaling, not collapse to the dense block's "
        "serial time. Measured imbalance (max/mean thread busy; needs "
        "RSKETCH_PERF=1 or RSKETCH_TRACE) stays near 1 under the balanced "
        "LPT schedule and grows under uniform; 'bal est' is the cost "
        "model's predicted max/mean for the balanced partition. "
        "RSKETCH_JKI_SCHEDULE is a deprecated alias of RSKETCH_SCHEDULE "
        "(static -> uniform, dynamic -> balanced).");
    std::printf("%s\n", skewt.render().c_str());
  }

  hw.finish();
  report.write();
  return 0;
}
