// Table III: sample time (RNG) vs total SpMM time for Algorithms 3 and 4
// with (-1,1) entries, Frontera blocking (b_n=500, b_d=3000).
#include <cstdio>

#include "bench_common.hpp"
#include "sketch/sketch.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  double total3, sample3, total4, sample4;
};

// Paper Table III (Frontera, seconds).
constexpr PaperRow kPaper[] = {
    {"mk-12", 0.076, 0.036, 0.085, 0.02},
    {"ch7-9-b3", 8.34, 4.07, 11.06, 2.42},
    {"shar_te2-b2", 11.03, 5.63, 14.43, 3.84},
    {"mesh_deform", 9.26, 4.40, 8.14, 2.47},
    {"cis-n4c6-b4", 0.786, 0.325, 0.924, 0.157},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE III — sample time vs total SpMM time, Algorithms 3 & 4",
      "Frontera, (-1,1) entries, b_n=500, b_d=3000 (timer adds overhead)");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  Table paper("Paper (Frontera, seconds):");
  paper.set_header({"Matrices", "Algorithm", "total time", "sample time"});
  for (const auto& r : kPaper) {
    paper.add_row({r.name, "Algorithm 3", fmt_time(r.total3),
                   fmt_time(r.sample3)});
  }
  paper.add_separator();
  for (const auto& r : kPaper) {
    paper.add_row({r.name, "Algorithm 4", fmt_time(r.total4),
                   fmt_time(r.sample4)});
  }
  std::printf("%s\n", paper.render().c_str());

  auto report = bench::make_report("table3_sample_breakdown");
  bench::HwScope hw(report);

  Table ours("This repo (seconds, instrumented runs):");
  ours.set_header({"Matrices", "Algorithm", "total time", "sample time",
                   "samples generated"});
  for (const KernelVariant kernel : {KernelVariant::Kji, KernelVariant::Jki}) {
    for (const auto& info : spmm_replica_infos()) {
      const auto a = make_spmm_replica<float>(info.name, scale);
      SketchConfig cfg;
      cfg.d = spmm_replica_d(info.name, scale);
      cfg.dist = Dist::Uniform;
      cfg.kernel = kernel;
      cfg.block_d = 3000;
      cfg.block_n = 500;
      cfg.parallel = ParallelOver::Sequential;
      DenseMatrix<float> a_hat(cfg.d, a.cols());

      SketchStats best;
      best.total_seconds = 1e300;
      for (int r = 0; r < reps; ++r) {
        const auto stats = sketch_into(cfg, a, a_hat, /*instrument=*/true);
        if (stats.total_seconds < best.total_seconds) best = stats;
      }
      report.timing(std::string(info.name) +
                        (kernel == KernelVariant::Kji ? "/alg3" : "/alg4"),
                    best.total_seconds, best);
      ours.add_row({info.name,
                    kernel == KernelVariant::Kji ? "Algorithm 3"
                                                 : "Algorithm 4",
                    fmt_time(best.total_seconds),
                    fmt_time(best.sample_seconds),
                    fmt_int(static_cast<long long>(best.samples_generated))});
    }
    if (kernel == KernelVariant::Kji) ours.add_separator();
  }
  ours.set_footnote(
      "Shape check: Alg4's sample time is a small fraction of Alg3's "
      "(paper: ~2x fewer seconds, far fewer samples).");
  std::printf("%s\n", ours.render().c_str());
  hw.finish();
  report.write();
  return 0;
}
