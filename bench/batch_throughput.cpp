// Batch-serving throughput benchmark: jobs/sec of the persistent worker
// pool (sketch/batch.hpp) against the same jobs run back to back on one
// thread.
//
// The workload is PINNED like perf_smoke: a fixed 64-job mix of small
// sketches (48 kji jobs on one shape, 16 jki jobs on a second shape, fixed
// seeds throughout), so every software counter in the emitted
// BENCH_batch_throughput.json is an exact function of the workload and can
// be gated against bench/baselines/batch_throughput_baseline.json. The one
// exception is batch_steals — work stealing is scheduling-dependent by
// nature — so the baseline deliberately omits it (the gate only checks keys
// present in the baseline).
//
// Wall time and the derived jobs/sec numbers are advisory: the ≥1.5x
// speedup target needs actual cores (the pool cannot beat sequential on a
// single-CPU host), so a shortfall prints a warning instead of failing.
//
// Every batch output is compared bit for bit against its sequential
// counterpart before any number is reported — a throughput win that changes
// Â is a bug, not a result (exit 1).
//
// Knobs: RSKETCH_BATCH_WORKERS overrides the pool size (default 8, the
// acceptance configuration); RSKETCH_PERF_OUT picks the report directory.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dense/dense_matrix.hpp"
#include "perf/perf.hpp"
#include "perf/report.hpp"
#include "sketch/batch.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace rsketch;

namespace {

constexpr int kJobs = 64;
constexpr int kReps = 3;  // best-of; fixed so counters stay deterministic

/// One pinned job description. The mix interleaves two shapes so workers
/// see uneven job costs (the situation stealing exists for).
struct JobSpec {
  const CscMatrix<float>* a = nullptr;
  index_t d = 0;
  std::uint64_t seed = 0;
  KernelVariant kernel = KernelVariant::Kji;
};

int env_workers() {
  const char* s = std::getenv("RSKETCH_BATCH_WORKERS");
  if (s == nullptr || *s == '\0') return 8;
  const int v = std::atoi(s);
  return v > 0 ? v : 8;
}

SketchConfig make_config(const JobSpec& job) {
  SketchConfig cfg;
  cfg.d = job.d;
  cfg.seed = job.seed;
  cfg.dist = Dist::PmOne;
  cfg.backend = RngBackend::XoshiroBatch;
  cfg.kernel = job.kernel;
  cfg.block_d = 512;
  cfg.block_n = 128;
  // Pinned sequential per job on BOTH sides: that is what the batch runs
  // for cache-resident jobs, and it makes the two sides bit-comparable by
  // construction (parallel mode never changes Â's bits anyway).
  cfg.parallel = ParallelOver::Sequential;
  return cfg;
}

}  // namespace

int main() {
  perf::set_enabled(true);
  perf::reset();

  // Two pinned shapes, two matrices each (jobs alternate within a shape so
  // the stream touches more than one input). Footprints stay ~100-200 KB —
  // cache-resident on any host, so every job takes the whole-job-per-worker
  // path and the counter baseline is machine-independent.
  const auto a_small_0 = random_sparse<float>(2000, 160, 8e-3, 101);
  const auto a_small_1 = random_sparse<float>(2000, 160, 8e-3, 102);
  const auto a_mid_0 = random_sparse<float>(3000, 160, 1e-2, 201);
  const auto a_mid_1 = random_sparse<float>(3000, 160, 1e-2, 202);

  std::vector<JobSpec> jobs(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    JobSpec& job = jobs[i];
    job.seed = 7000 + static_cast<std::uint64_t>(i);
    if (i % 4 == 3) {  // 16 of 64: the heavier jki shape
      job.a = (i / 4) % 2 == 0 ? &a_mid_0 : &a_mid_1;
      job.d = 128;
      job.kernel = KernelVariant::Jki;
    } else {  // 48 of 64: the light kji shape
      job.a = i % 2 == 0 ? &a_small_0 : &a_small_1;
      job.d = 96;
      job.kernel = KernelVariant::Kji;
    }
  }

  const int workers = env_workers();
  std::printf("batch_throughput: pinned %d-job mix (48 kji + 16 jki), "
              "%d workers, best of %d\n\n", kJobs, workers, kReps);

  // --- Sequential side: the same 64 jobs, one after another, one thread.
  std::vector<DenseMatrix<float>> seq_out;
  seq_out.reserve(kJobs);
  for (const JobSpec& job : jobs) {
    seq_out.emplace_back(job.d, job.a->cols());
  }
  double seq_best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    for (int i = 0; i < kJobs; ++i) {
      sketch_into(make_config(jobs[i]), *jobs[i].a, seq_out[i]);
    }
    const double secs = timer.seconds();
    if (rep == 0 || secs < seq_best) seq_best = secs;
  }

  // --- Batch side: one persistent pool serving all reps, so later reps see
  // a warm arena (slab reuse) exactly like a long-lived server would.
  std::vector<DenseMatrix<float>> batch_out;
  batch_out.reserve(kJobs);
  for (const JobSpec& job : jobs) {
    batch_out.emplace_back(job.d, job.a->cols());
  }
  BatchOptions options;
  options.workers = workers;
  SketchBatch batch(options);
  double batch_best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    for (int i = 0; i < kJobs; ++i) {
      batch.submit(make_config(jobs[i]), *jobs[i].a, batch_out[i]);
    }
    if (batch.wait_all() != 0) {
      std::fprintf(stderr, "batch_throughput: a batch job failed\n");
      return 1;
    }
    const double secs = timer.seconds();
    if (rep == 0 || secs < batch_best) batch_best = secs;
  }

  // --- Bitwise check before reporting anything.
  for (int i = 0; i < kJobs; ++i) {
    const std::size_t bytes = static_cast<std::size_t>(seq_out[i].rows()) *
                              static_cast<std::size_t>(seq_out[i].cols()) *
                              sizeof(float);
    if (std::memcmp(seq_out[i].data(), batch_out[i].data(), bytes) != 0) {
      std::fprintf(stderr,
                   "batch_throughput: job %d output differs from the "
                   "sequential reference\n", i);
      return 1;
    }
  }

  const double seq_jps = kJobs / seq_best;
  const double batch_jps = kJobs / batch_best;
  const double speedup = seq_best / batch_best;

  Table t("batch throughput (bitwise-verified, advisory wall time):");
  t.set_header({"side", "seconds", "jobs/s"});
  t.add_row({"sequential", fmt_fixed(seq_best, 4), fmt_fixed(seq_jps, 1)});
  t.add_row({"batch", fmt_fixed(batch_best, 4), fmt_fixed(batch_jps, 1)});
  std::printf("%s\n", t.render().c_str());
  std::printf("speedup %.2fx with %d workers; steals %llu; arena reuse "
              "%llu/%llu, held %.1f MB\n",
              speedup, batch.workers(),
              static_cast<unsigned long long>(batch.steals()),
              static_cast<unsigned long long>(batch.arena().reuse_hits()),
              static_cast<unsigned long long>(batch.arena().slab_allocs() +
                                              batch.arena().reuse_hits()),
              batch.arena().held_bytes() / (1024.0 * 1024.0));
  if (speedup < 1.5) {
    std::printf("warning: batch speedup %.2fx below the 1.5x target "
                "(advisory: needs >= 2 real cores; this host may have "
                "fewer)\n", speedup);
  }

  perf::ReportBuilder report("batch_throughput");
  report.config("jobs", static_cast<long long>(kJobs));
  report.config("reps", static_cast<long long>(kReps));
  report.config("workers", static_cast<long long>(workers));
  report.config("mix", "48x kji 2000x160 d=96 + 16x jki 3000x160 d=128");
  report.config("pinned", "true");
  report.timing("sequential/64_jobs", seq_best);
  report.timing("batch/64_jobs", batch_best);
  report.derived("sequential_jobs_per_second", seq_jps);
  report.derived("batch_jobs_per_second", batch_jps);
  report.derived("batch_speedup_vs_sequential", speedup);
  report.derived("arena_reuse_hits", static_cast<double>(
      batch.arena().reuse_hits()));
  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "batch_throughput: failed to write report\n");
    return 1;
  }
  return 0;
}
