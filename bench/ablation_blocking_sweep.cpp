// §V-B ablation: empirical sweep over the outer blocking parameters
// (b_d, b_n) for both kernels, next to the §III-A model's suggestion —
// validating the heuristic "grow b_d, shrink b_n".
#include <cstdio>
#include <vector>

#include "analysis/machine.hpp"
#include "bench_common.hpp"
#include "sketch/autotune.hpp"
#include "sketch/sketch.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

int main() {
  bench::print_banner(
      "ABLATION — blocking parameter sweep (b_d, b_n), shar_te2-b2",
      "Algorithm 3 and 4 GFlop/s across the blocking grid; (-1,1) entries");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  const auto a = make_spmm_replica<float>("shar_te2-b2", scale);
  const index_t d = spmm_replica_d("shar_te2-b2", scale);

  const std::vector<index_t> bds = {500, 1500, 3000, 6000, 12000};
  const std::vector<index_t> bns = {100, 300, 500, 1200, 2400};

  for (const KernelVariant kernel : {KernelVariant::Kji, KernelVariant::Jki}) {
    Table t(std::string("GFlop/s, ") +
            (kernel == KernelVariant::Kji ? "Algorithm 3 (kji)"
                                          : "Algorithm 4 (jki)"));
    std::vector<std::string> header{"b_d \\ b_n"};
    for (index_t bn : bns) header.push_back(fmt_int(bn));
    t.set_header(header);
    for (index_t bd : bds) {
      std::vector<std::string> row{fmt_int(bd)};
      for (index_t bn : bns) {
        SketchConfig cfg;
        cfg.d = d;
        cfg.dist = Dist::Uniform;
        cfg.kernel = kernel;
        cfg.block_d = bd;
        cfg.block_n = bn;
        cfg.parallel = ParallelOver::Sequential;
        DenseMatrix<float> a_hat(d, a.cols());
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
          best = std::max(best, sketch_into(cfg, a, a_hat).gflops);
        }
        row.push_back(fmt_fixed(best, 2));
      }
      t.add_row(row);
    }
    std::printf("%s\n", t.render().c_str());
  }

  // Model suggestion for comparison.
  const auto stream = stream_benchmark(1 << 21, 2);
  const double h = measure_h(Dist::Uniform, RngBackend::XoshiroBatch, stream);
  const auto sug = suggest_blocks(a.rows(), a.cols(), d, a.density(),
                                  detect_cache_bytes(), h, sizeof(float));
  std::printf(
      "Model suggestion (measured h=%.3f): b_d=%lld, b_n=%lld, predicted "
      "CI=%.1f\n",
      h, static_cast<long long>(sug.block_d),
      static_cast<long long>(sug.block_n), sug.model_ci);
  std::printf(
      "Shape check (§V-B): performance improves toward larger b_d / smaller "
      "b_n until b_d-sized panels fall out of cache.\n");
  return 0;
}
