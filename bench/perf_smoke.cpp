// Perf-smoke suite: the CI performance gate's workload.
//
// Unlike the table/figure reproductions, this suite is deliberately PINNED:
// fixed sizes (no RSKETCH_SCALE), fixed seeds, pinned blocks, sequential
// execution, telemetry force-enabled. Every software counter it emits is an
// exact function of the sparse structure and the blocking — identical on
// every machine and every run — so CI can diff them against a committed
// baseline (bench/baselines/perf_smoke_baseline.json) and fail on real
// regressions in work or traffic, while wall time stays warn-only.
//
// Gate: tools/check_bench_regression.py BENCH_perf_smoke.json baseline.json
#include <cstdio>

#include "dense/microkernel.hpp"
#include "perf/perf.hpp"
#include "perf/report.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace rsketch;

namespace {

struct Case {
  const char* label;
  KernelVariant kernel;
  RngBackend backend;
  double density;
};

}  // namespace

int main() {
  // Force telemetry on: this binary exists to produce BENCH_perf_smoke.json;
  // requiring RSKETCH_PERF=1 would just be a way to run it uselessly.
  perf::set_enabled(true);
  perf::reset();

  constexpr index_t m = 10000;
  constexpr index_t n = 1000;
  constexpr index_t d = 1000;
  constexpr std::uint64_t seed_a = 42;   // matrix structure
  constexpr std::uint64_t seed_s = 7;    // sketch entries

  const Case cases[] = {
      {"kji/xoshiro_batch/rho=1e-3", KernelVariant::Kji,
       RngBackend::XoshiroBatch, 1e-3},
      {"jki/xoshiro_batch/rho=1e-3", KernelVariant::Jki,
       RngBackend::XoshiroBatch, 1e-3},
      {"jki/xoshiro_batch/rho=1e-2", KernelVariant::Jki,
       RngBackend::XoshiroBatch, 1e-2},
      {"kji/philox/rho=1e-3", KernelVariant::Kji, RngBackend::Philox, 1e-3},
  };

  std::printf("perf_smoke: pinned %lld x %lld, d=%lld, sequential, "
              "blocks=(512, 256)\n\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(d));

  perf::ReportBuilder report("perf_smoke");
  report.config("m", static_cast<long long>(m));
  report.config("n", static_cast<long long>(n));
  report.config("d", static_cast<long long>(d));
  report.config("block_d", 512LL);
  report.config("block_n", 256LL);
  report.config("parallel", "sequential");
  report.config("pinned", "true");

  Table t("perf_smoke cases (deterministic counters, advisory wall time):");
  t.set_header({"case", "seconds", "rng_samples", "bytes_moved", "flops"});
  for (const Case& c : cases) {
    const auto a = random_sparse<float>(m, n, c.density, seed_a);
    SketchConfig cfg;
    cfg.d = d;
    cfg.seed = seed_s;
    cfg.dist = Dist::PmOne;
    cfg.backend = c.backend;
    cfg.kernel = c.kernel;
    cfg.block_d = 512;
    cfg.block_n = 256;
    cfg.parallel = ParallelOver::Sequential;
    DenseMatrix<float> a_hat(d, n);
    Timer timer;
    const SketchStats stats = sketch_into(cfg, a, a_hat, true);
    const double secs = timer.seconds();
    report.timing(c.label, secs, stats);
    t.add_row({c.label, fmt_fixed(secs, 4),
               std::to_string(stats.counters.rng_samples),
               std::to_string(stats.counters.bytes_moved),
               std::to_string(stats.counters.flops)});
  }
  std::printf("%s\n", t.render().c_str());

  // SIMD micro-kernel ratio on the pinned jki case: scalar tier vs. auto
  // dispatch (best SIMD tier this build + CPU offer). Uninstrumented runs so
  // both sides take the production fast path; best-of-kReps wall time. The
  // labels are machine-neutral ("scalar"/"auto", not the resolved tier) so
  // the report shape is identical everywhere; the ratio itself is advisory
  // (wall time stays warn-only in CI), and the rep count is fixed so the
  // globally accumulated counters stay deterministic.
  {
    constexpr int kReps = 3;
    const auto a = random_sparse<float>(m, n, 1e-3, seed_a);
    double best[2] = {0.0, 0.0};  // best GFLOP/s: [0]=scalar, [1]=auto
    double best_secs[2] = {0.0, 0.0};
    const microkernel::Isa tiers[2] = {microkernel::Isa::Scalar,
                                       microkernel::Isa::Auto};
    for (int side = 0; side < 2; ++side) {
      for (int rep = 0; rep < kReps; ++rep) {
        SketchConfig cfg;
        cfg.d = d;
        cfg.seed = seed_s;
        cfg.dist = Dist::PmOne;
        cfg.backend = RngBackend::XoshiroBatch;
        cfg.kernel = KernelVariant::Jki;
        cfg.block_d = 512;
        cfg.block_n = 256;
        cfg.parallel = ParallelOver::Sequential;
        cfg.isa = tiers[side];
        DenseMatrix<float> a_hat(d, n);
        const SketchStats stats = sketch_into(cfg, a, a_hat);
        if (stats.gflops > best[side]) {
          best[side] = stats.gflops;
          best_secs[side] = stats.total_seconds;
        }
      }
    }
    report.timing("jki/xoshiro_batch/rho=1e-3/isa=scalar", best_secs[0]);
    report.timing("jki/xoshiro_batch/rho=1e-3/isa=auto", best_secs[1]);
    const double ratio = best[0] > 0.0 ? best[1] / best[0] : 0.0;
    report.derived("jki_simd_speedup_vs_scalar", ratio);
    std::printf("jki isa ratio (best of %d): scalar %.2f GF/s, auto %.2f GF/s"
                " -> %.2fx\n",
                kReps, best[0], best[1], ratio);
    if (ratio < 1.3) {
      std::printf("warning: SIMD speedup %.2fx below the 1.3x target "
                  "(advisory, machine-dependent)\n", ratio);
    }
    std::printf("\n");
  }

  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "perf_smoke: failed to write report\n");
    return 1;
  }
  return 0;
}
