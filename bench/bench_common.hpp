// Shared helpers for the table/figure reproduction binaries.
//
// Every binary honours:
//   RSKETCH_SCALE       dimension divisor vs. the paper (default 6; 1 = paper)
//   RSKETCH_REPS        timing repetitions, best-of (default 3)
//   RSKETCH_MAX_THREADS cap for thread-scaling sweeps
// and prints the paper's reference numbers next to the measured ones so the
// SHAPE of the comparison (who wins, by what factor) can be checked directly.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "perf/perf.hpp"
#include "perf/perf_events.hpp"
#include "perf/report.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace rsketch::bench {

/// Best-of-`reps` wall-clock timing of `fn`.
inline double time_best(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// JSON report (BENCH_<name>.json) pre-filled with the standard env config.
/// All methods no-op unless RSKETCH_PERF=1, so benches call them freely.
inline perf::ReportBuilder make_report(const std::string& name) {
  perf::ReportBuilder r(name);
  r.config("scale", static_cast<long long>(bench_scale()));
  r.config("reps", static_cast<long long>(bench_reps()));
  return r;
}

/// Hardware-counter bracket for a bench's measured section: counts the whole
/// process between construction (or start()) and finish(). Opens nothing and
/// does nothing when the report is inactive or perf_event_open is forbidden.
class HwScope {
 public:
  explicit HwScope(perf::ReportBuilder& report) : report_(report) {
    if (report_.active()) {
      group_ = std::make_unique<perf::PerfEventGroup>();
      group_->start();
    }
  }

  /// Stop counting and attach the reading to the report.
  void finish() {
    if (group_ == nullptr) return;
    group_->stop();
    report_.hardware(group_->read());
    group_.reset();
  }

  ~HwScope() { finish(); }

 private:
  perf::ReportBuilder& report_;
  std::unique_ptr<perf::PerfEventGroup> group_;
};

/// Standard banner: experiment id, what the paper measured, our scaling.
inline void print_banner(const std::string& experiment,
                         const std::string& paper_setup) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper setup: %s\n", paper_setup.c_str());
  std::printf(
      "This run: RSKETCH_SCALE=%lld (dimensions / %lld vs. paper), "
      "RSKETCH_REPS=%d\n",
      static_cast<long long>(bench_scale()),
      static_cast<long long>(bench_scale()), bench_reps());
  std::printf(
      "Absolute times differ from the paper (different machine & scale); "
      "compare SHAPES:\nwho wins, by roughly what factor, and where "
      "crossovers fall.\n");
  std::printf("==============================================================\n\n");
}

}  // namespace rsketch::bench
