// §IV-B ablation (google-benchmark): generation throughput of the three
// RNG backends across distributions, in the short-vector checkpointed
// regime the blocked kernels use. Verifies the paper's claims that
// counter-based generators (Philox/Random123) are several times slower than
// Xoshiro, and that Gaussian transformation dominates generation cost.
#include <benchmark/benchmark.h>

#include <vector>

#include "rng/distributions.hpp"

using namespace rsketch;

namespace {

void BM_Fill(benchmark::State& state, Dist dist, RngBackend backend) {
  const index_t n = state.range(0);
  SketchSampler<float> sampler(1234, dist, backend);
  std::vector<float> v(static_cast<std::size_t>(n));
  index_t col = 0;
  for (auto _ : state) {
    sampler.fill(0, col++, v.data(), n);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void Register() {
  struct Combo {
    const char* name;
    Dist dist;
    RngBackend backend;
  };
  const Combo combos[] = {
      {"pm1/xoshiro", Dist::PmOne, RngBackend::Xoshiro},
      {"pm1/xoshiro_x8", Dist::PmOne, RngBackend::XoshiroBatch},
      {"pm1/philox", Dist::PmOne, RngBackend::Philox},
      {"uniform/xoshiro", Dist::Uniform, RngBackend::Xoshiro},
      {"uniform/xoshiro_x8", Dist::Uniform, RngBackend::XoshiroBatch},
      {"uniform/philox", Dist::Uniform, RngBackend::Philox},
      {"scaled/xoshiro_x8", Dist::UniformScaled, RngBackend::XoshiroBatch},
      {"gaussian/xoshiro_x8", Dist::Gaussian, RngBackend::XoshiroBatch},
      {"gaussian/philox", Dist::Gaussian, RngBackend::Philox},
      {"junk/-", Dist::Junk, RngBackend::XoshiroBatch},
  };
  for (const Combo& c : combos) {
    benchmark::RegisterBenchmark(c.name, BM_Fill, c.dist, c.backend)
        ->Arg(3000)      // the b_d-sized fills of the blocked kernels
        ->Arg(10000);    // the paper's STREAM-comparison vector length
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
