// Table VI: Algorithms 3 and 4 on synthetic matrices with exotic sparsity
// patterns (Abnormal_A: dense rows; Abnormal_B: mass concentrated in the
// middle vertical block; Abnormal_C: dense columns). Shows Alg3's pattern
// obliviousness and Alg4's pattern sensitivity.
#include <cstdio>

#include "bench_common.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  double alg3_compute, alg4_convert, alg4_compute;
};

// Paper Table VI (seconds; m=100000, n=10000, density ~1e-3).
constexpr PaperRow kPaper[] = {
    {"Abnormal_A", 8.56, 0.035, 4.40},
    {"Abnormal_B", 8.51, 0.085, 6.10},
    {"Abnormal_C", 8.46, 0.056, 9.43},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE VI — exotic sparsity patterns, Algorithm 3 vs Algorithm 4",
      "m=100000, n=10000, density ~1e-3, entries iid (-1,1)");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  Table paper("Paper (seconds):");
  paper.set_header({"Problem", "Algorithm", "conversion time", "compute time"});
  for (const auto& r : kPaper) {
    paper.add_row({r.name, "Algorithm 3", "N/A", fmt_time(r.alg3_compute)});
    paper.add_row({r.name, "Algorithm 4", fmt_time(r.alg4_convert),
                   fmt_time(r.alg4_compute)});
  }
  std::printf("%s\n", paper.render().c_str());

  const index_t m = 100000 / scale;
  const index_t n = 10000 / scale;
  const index_t d = 3 * n;
  // Stride stays at the paper's 1000 for rows AND columns (preserves the
  // ~1e-3 density of all three patterns); the blocking parameters scale
  // with the matrix so the block-count geometry — which dense columns land
  // in which vertical block — matches the paper's.
  const index_t stride_rows = std::min<index_t>(1000, std::max<index_t>(2, m / 4));
  const index_t stride_cols = std::min<index_t>(1000, std::max<index_t>(2, n / 4));

  struct Problem {
    const char* name;
    CscMatrix<float> a;
  };
  const Problem problems[] = {
      {"Abnormal_A", abnormal_a<float>(m, n, stride_rows, 101)},
      {"Abnormal_B",
       abnormal_b<float>(m, n, 1e-3, 2998.0 / 3000.0, 102)},
      {"Abnormal_C", abnormal_c<float>(m, n, stride_cols, 103)},
  };

  Table ours("This repo (seconds):");
  ours.set_header({"Problem", "Algorithm", "conversion time", "compute time",
                   "nnz", "samples"});
  for (const auto& p : problems) {
    SketchConfig cfg;
    cfg.d = d;
    cfg.dist = Dist::Uniform;
    cfg.block_d = std::max<index_t>(64, 3000 / static_cast<index_t>(scale));
    cfg.block_n = std::max<index_t>(8, 1200 / static_cast<index_t>(scale));
    cfg.parallel = ParallelOver::Sequential;

    DenseMatrix<float> a_hat(d, n);
    SketchStats s3;
    s3.total_seconds = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto st = sketch_into(cfg, p.a, a_hat);
      if (st.total_seconds < s3.total_seconds) s3 = st;
    }
    ours.add_row({p.name, "Algorithm 3", "N/A", fmt_time(s3.total_seconds),
                  fmt_int(p.a.nnz()),
                  fmt_int(static_cast<long long>(s3.samples_generated))});

    cfg.kernel = KernelVariant::Jki;
    SketchStats s4;
    s4.total_seconds = 1e300;
    double convert = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto st = sketch_into(cfg, p.a, a_hat);
      if (st.total_seconds < s4.total_seconds) s4 = st;
      convert = std::min(convert, st.convert_seconds);
    }
    ours.add_row({p.name, "Algorithm 4", fmt_time(convert),
                  fmt_time(s4.total_seconds), fmt_int(p.a.nnz()),
                  fmt_int(static_cast<long long>(s4.samples_generated))});
  }
  ours.set_footnote(
      "Shape check: Alg3's time per nonzero is identical across patterns "
      "(pattern obliviousness; at RSKETCH_SCALE=1 the three nnz counts are "
      "equal and absolute times match too). Alg4 wins big on Abnormal_A "
      "(dense rows -> maximal reuse, ~100x fewer samples) but falls behind "
      "on Abnormal_C, where the spread dense columns force it to regenerate "
      "as many samples as Alg3 (see the samples column) while paying "
      "scattered updates on top.");
  std::printf("%s\n", ours.render().c_str());
  return 0;
}
