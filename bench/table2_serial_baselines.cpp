// Table II: serial timing of Algorithm 3 against library-style SpMM
// baselines that use a pre-generated S (MKL-style transposed CSR×dense,
// Eigen-style and Julia-style CSC dense×sparse). b_n = 500, b_d = 3000.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sketch/baselines.hpp"
#include "sketch/sketch.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  double mkl, eigen, julia, alg3_u, alg3_pm;
};

// Paper Table II (Frontera, seconds).
constexpr PaperRow kPaper[] = {
    {"mk-12", 0.137, 0.145, 0.118, 0.070, 0.0501},
    {"ch7-9-b3", 16.43, 16.58, 14.86, 7.74, 5.89},
    {"shar_te2-b2", 21.93, 22.05, 27.59, 10.20, 7.63},
    {"mesh_deform", 15.82, 16.08, 14.99, 8.65, 5.74},
    {"cis-n4c6-b4", 1.351, 1.36, 1.18, 0.74, 0.531},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE II — Algorithm 3 vs library SpMM baselines (serial)",
      "Frontera (Intel Cascade Lake), b_n=500, b_d=3000, 32-bit values");
  const index_t scale = bench_scale();
  const int reps = bench_reps();

  Table paper("Paper (Frontera, seconds):");
  paper.set_header(
      {"Matrices", "MKL", "Eigen", "Julia", "Alg3 (-1,1)", "Alg3 (+-1)"});
  for (const auto& r : kPaper) {
    paper.add_row({r.name, fmt_time(r.mkl), fmt_time(r.eigen),
                   fmt_time(r.julia), fmt_time(r.alg3_u),
                   fmt_time(r.alg3_pm)});
  }
  std::printf("%s\n", paper.render().c_str());

  auto report = bench::make_report("table2_serial_baselines");
  bench::HwScope hw(report);

  Table ours("This repo (seconds; S generation excluded for baselines):");
  ours.set_header({"Matrices", "MKL-style", "Eigen-style", "Julia-style",
                   "Alg3 (-1,1)", "Alg3 (+-1)", "Alg3 speedup vs best lib"});
  for (const auto& info : spmm_replica_infos()) {
    const auto a = make_spmm_replica<float>(info.name, scale);
    SketchConfig cfg;
    cfg.d = spmm_replica_d(info.name, scale);
    cfg.dist = Dist::Uniform;
    cfg.block_d = 3000;
    cfg.block_n = 500;
    cfg.parallel = ParallelOver::Sequential;

    // Pre-generated S shared by the three library baselines.
    const DenseMatrix<float> s = materialize_S<float>(cfg, a.rows());
    DenseMatrix<float> out;
    const double t_eigen =
        bench::time_best(reps, [&] { baseline_eigen_style(s, a, out); });
    const double t_julia =
        bench::time_best(reps, [&] { baseline_julia_style(s, a, out); });
    const auto st = pack_transposed_rowmajor(s);
    std::vector<float> out_t;
    const double t_mkl = bench::time_best(
        reps, [&] { baseline_mkl_style(st, a, cfg.d, out_t); });

    DenseMatrix<float> a_hat(cfg.d, a.cols());
    SketchStats last;
    const double t_alg3_u =
        bench::time_best(reps, [&] { last = sketch_into(cfg, a, a_hat); });
    report.timing(std::string(info.name) + "/alg3_uniform", t_alg3_u, last);
    cfg.dist = Dist::PmOne;
    const double t_alg3_pm =
        bench::time_best(reps, [&] { last = sketch_into(cfg, a, a_hat); });
    report.timing(std::string(info.name) + "/alg3_pm1", t_alg3_pm, last);
    report.timing(std::string(info.name) + "/mkl_style", t_mkl);
    report.timing(std::string(info.name) + "/eigen_style", t_eigen);
    report.timing(std::string(info.name) + "/julia_style", t_julia);

    const double best_lib = std::min({t_mkl, t_eigen, t_julia});
    ours.add_row({info.name, fmt_time(t_mkl), fmt_time(t_eigen),
                  fmt_time(t_julia), fmt_time(t_alg3_u), fmt_time(t_alg3_pm),
                  fmt_fixed(best_lib / t_alg3_pm, 2) + "x"});
  }
  ours.set_footnote(
      "Shape check: Alg3 beats every pre-generated-S baseline, and +-1 beats "
      "(-1,1) (paper sees 2-3x).");
  std::printf("%s\n", ours.render().c_str());
  hw.finish();
  report.write();
  return 0;
}
