// Table X: numerical error ‖Aᵀ(Ax−b)‖/(‖A‖_F‖Ax−b‖) of the computed
// least-squares solutions.
#include <cstdio>

#include "bench_ls_common.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  double lsqrd, sap, suitesparse;
};

constexpr PaperRow kPaper[] = {
    {"rail2586", 2.17e-14, 3.24e-15, 1.82e-15},
    {"spal_004", 3.36e-14, 1.29e-15, 1.03e-16},
    {"rail4284", 1.59e-14, 2.55e-15, 1.73e-15},
    {"rail582", 1.28e-14, 5.21e-15, 7.02e-16},
    {"specular", 7.16e-15, 3.30e-15, 1.62e-14},
    {"connectus", 2.80e-15, 5.33e-15, 4.48e-15},
    {"landmark", 5.65e-15, 2.64e-15, 5.30e-16},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE X — numerical error in computed least-squares solutions",
      "error metric ||A'(Ax-b)|| / (||A||_F ||Ax-b||), LSQR tol 1e-14");

  Table paper("Paper:");
  paper.set_header({"A", "LSQR-D", "SAP", "SuiteSparse"});
  for (const auto& r : kPaper) {
    paper.add_row(
        {r.name, fmt_sci(r.lsqrd), fmt_sci(r.sap), fmt_sci(r.suitesparse)});
  }
  std::printf("%s\n", paper.render().c_str());

  const auto results = bench::run_ls_suite();
  Table ours("This repo:");
  ours.set_header({"A", "LSQR-D", "SAP", "direct sparse QR"});
  for (const auto& r : results) {
    ours.add_row({r.name, fmt_sci(r.lsqrd_error), fmt_sci(r.sap_error),
                  fmt_sci(r.direct_error)});
  }
  ours.set_footnote(
      "Shape check: all three families reach ~1e-14 or better; SAP's "
      "accuracy varies the least across matrices.");
  std::printf("%s\n", ours.render().c_str());
  return 0;
}
