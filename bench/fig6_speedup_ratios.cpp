// Figure 6: SAP speedup ratios t1/t2 (LSQR-D / SAP) and t3/t2
// (SuiteSparse / SAP), rendered as an ASCII bar chart per matrix.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_ls_common.hpp"

using namespace rsketch;

namespace {

struct PaperRow {
  const char* name;
  double lsqrd_over_sap, ss_over_sap;
};

// Ratios derived from paper Table IX.
constexpr PaperRow kPaper[] = {
    {"rail2586", 24.23 / 4.78, 39.75 / 4.78},
    {"spal_004", 381.23 / 66.99, 508.41 / 66.99},
    {"rail4284", 63.00 / 11.52, 149.27 / 11.52},
    {"rail582", 0.34 / 0.18, 0.55 / 0.18},
    {"specular", 4.92 / 3.43, 2.04 / 3.43},
    {"connectus", 0.19 / 0.60, 1.46 / 0.60},
    {"landmark", 0.80 / 9.61, 3.74 / 9.61},
};

std::string bar(double ratio, double unit = 0.5) {
  const int len = std::min(60, static_cast<int>(ratio / unit + 0.5));
  return std::string(static_cast<std::size_t>(std::max(0, len)), '#');
}

}  // namespace

int main() {
  bench::print_banner(
      "FIGURE 6 — speedup of SAP over LSQR-D (t1/t2) and SuiteSparse (t3/t2)",
      "bars above 1.0 mean SAP wins; '|' marks ratio = 1");

  std::printf("Paper:\n");
  for (const auto& r : kPaper) {
    std::printf("  %-10s t1/t2 = %6.2f  %s\n", r.name, r.lsqrd_over_sap,
                bar(r.lsqrd_over_sap).c_str());
    std::printf("  %-10s t3/t2 = %6.2f  %s\n", "", r.ss_over_sap,
                bar(r.ss_over_sap).c_str());
  }

  const auto results = bench::run_ls_suite();
  std::printf("\nThis repo:\n");
  Table t("Ratios (>1 means SAP faster):");
  t.set_header({"A", "t1/t2 (LSQR-D/SAP)", "t3/t2 (direct/SAP)"});
  for (const auto& r : results) {
    std::printf("  %-10s t1/t2 = %6.2f  %s\n", r.name.c_str(),
                r.lsqrd_seconds / r.sap_seconds,
                bar(r.lsqrd_seconds / r.sap_seconds).c_str());
    std::printf("  %-10s t3/t2 = %6.2f  %s\n", "",
                r.direct_seconds / r.sap_seconds,
                bar(r.direct_seconds / r.sap_seconds).c_str());
    t.add_row({r.name, fmt_fixed(r.lsqrd_seconds / r.sap_seconds, 2),
               fmt_fixed(r.direct_seconds / r.sap_seconds, 2)});
  }
  std::printf("\n%s\n", t.render().c_str());
  std::printf(
      "Shape check: SAP wins big on the highly overdetermined rail/spal "
      "problems and can lose on the small/easy ones (paper: landmark).\n");
  return 0;
}
