// Table IX: runtime and iteration counts of the sparse least-squares solvers
// (LSQR-D, SAP-QR / SAP-SVD, direct sparse QR as the SuiteSparse stand-in).
#include <cstdio>

#include "bench_ls_common.hpp"

using namespace rsketch;
using bench::LsRunResult;

namespace {

struct PaperRow {
  const char* name;
  double lsqrd_t;
  int lsqrd_it;
  double sketch_t, sap_t;
  int sap_it;
  double ss_t;
};

// Paper Table IX (Perlmutter, seconds). Top: SAP-QR; bottom: SAP-SVD.
constexpr PaperRow kPaper[] = {
    {"rail2586", 24.23, 1412, 1.17, 4.78, 87, 39.75},
    {"spal_004", 381.23, 4830, 11.48, 66.99, 80, 508.41},
    {"rail4284", 63.00, 2562, 2.65, 11.52, 88, 149.27},
    {"rail582", 0.34, 477, 0.07, 0.18, 80, 0.55},
    {"specular", 4.92, 351, 0.35, 3.43, 79, 2.04},
    {"connectus", 0.19, 73, 0.13, 0.60, 77, 1.46},
    {"landmark", 0.80, 462, 0.11, 9.61, 80, 3.74},
};

}  // namespace

int main() {
  bench::print_banner(
      "TABLE IX — runtime & iterations for sparse least-squares solvers",
      "Perlmutter; LSQR tol 1e-14; SAP d=2n; SuiteSparseQR via backslash");

  Table paper("Paper (seconds / iterations):");
  paper.set_header({"A", "LSQR-D t", "LSQR-D it", "SAP sketch", "SAP t",
                    "SAP it", "SuiteSparse t"});
  for (const auto& r : kPaper) {
    paper.add_row({r.name, fmt_time(r.lsqrd_t), fmt_int(r.lsqrd_it),
                   fmt_time(r.sketch_t), fmt_time(r.sap_t), fmt_int(r.sap_it),
                   fmt_time(r.ss_t)});
  }
  std::printf("%s\n", paper.render().c_str());

  const auto results = bench::run_ls_suite();
  Table ours("This repo (direct sparse Givens QR stands in for SuiteSparse):");
  ours.set_header({"A", "factor", "LSQR-D t", "LSQR-D it", "SAP sketch",
                   "SAP t", "SAP it", "direct t"});
  for (const LsRunResult& r : results) {
    ours.add_row({r.name, r.use_svd ? "SAP-SVD" : "SAP-QR",
                  fmt_time(r.lsqrd_seconds), fmt_int(r.lsqrd_iters),
                  fmt_time(r.sap_sketch_seconds), fmt_time(r.sap_seconds),
                  fmt_int(r.sap_iters), fmt_time(r.direct_seconds)});
  }
  ours.set_footnote(
      "Shape check: SAP iteration counts are near-constant (~60-120) across "
      "matrices while LSQR-D's vary wildly; SAP beats the direct solver on "
      "the highly overdetermined rail/spal problems.");
  std::printf("%s\n", ours.render().c_str());
  return 0;
}
