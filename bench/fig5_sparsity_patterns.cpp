// Figure 5: sparsity patterns of shar_te2-b2, mesh_deform and cis-n4c6-b4 —
// rendered as ASCII density maps of the replicas.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "testdata/replicas.hpp"

using namespace rsketch;

namespace {

void render(const CscMatrix<float>& a, const std::string& name) {
  constexpr index_t kCols = 64, kRows = 28;
  std::vector<double> cell(static_cast<std::size_t>(kCols * kRows), 0.0);
  for (index_t j = 0; j < a.cols(); ++j) {
    const index_t cx = j * kCols / a.cols();
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      const index_t cy = a.row_idx()[p] * kRows / a.rows();
      cell[static_cast<std::size_t>(cy * kCols + cx)] += 1.0;
    }
  }
  double mx = 0.0;
  for (double v : cell) mx = std::max(mx, v);
  static const char* shades = " .:+*#@";
  std::printf("%s  (%lld x %lld, nnz %lld, density %.2e)\n", name.c_str(),
              static_cast<long long>(a.rows()),
              static_cast<long long>(a.cols()),
              static_cast<long long>(a.nnz()), a.density());
  for (index_t y = 0; y < kRows; ++y) {
    std::putchar('|');
    for (index_t x = 0; x < kCols; ++x) {
      const double v = cell[static_cast<std::size_t>(y * kCols + x)];
      const int idx =
          v == 0.0 ? 0
                   : 1 + static_cast<int>(v / mx * 5.999);
      std::putchar(shades[std::min(idx, 6)]);
    }
    std::printf("|\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_banner(
      "FIGURE 5 — sparsity patterns of selected test matrices",
      "shar_te2-b2 (uniform fixed-k columns), mesh_deform (banded), "
      "cis-n4c6-b4 (uniform fixed-k columns)");
  const index_t scale = bench_scale();
  for (const char* name : {"shar_te2-b2", "mesh_deform", "cis-n4c6-b4"}) {
    render(make_spmm_replica<float>(name, scale), name);
  }
  std::printf(
      "Shape check: mesh_deform shows the diagonal band; the boundary-matrix "
      "replicas are uniformly scattered, as in the paper's spy plots.\n");
  return 0;
}
