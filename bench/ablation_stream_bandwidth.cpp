// §V-A STREAM note: memory bandwidth (copy/scale/add/triad) and short-vector
// RNG rates, plus the measured h (RNG cost relative to a memory access) that
// drives the §III-A model and the Alg3↔Alg4 architecture dichotomy.
#include <cstdio>

#include "analysis/machine.hpp"
#include "bench_common.hpp"

using namespace rsketch;

int main() {
  bench::print_banner(
      "ABLATION — STREAM bandwidth & measured h",
      "STREAMBenchmark.jl-style probe + length-10000 RNG fills (paper §V-A)");
  const int reps = std::max(3, bench_reps());

  const auto stream = stream_benchmark(1 << 23, reps);
  Table st("STREAM bandwidth (this machine, GB/s):");
  st.set_header({"kernel", "GB/s"});
  st.add_row({"copy", fmt_fixed(stream.copy_gbps, 2)});
  st.add_row({"scale", fmt_fixed(stream.scale_gbps, 2)});
  st.add_row({"add", fmt_fixed(stream.add_gbps, 2)});
  st.add_row({"triad", fmt_fixed(stream.triad_gbps, 2)});
  std::printf("%s\n", st.render().c_str());

  Table rt("Short-vector RNG throughput (length 10000, checkpointed fills):");
  rt.set_header({"generator", "Gsamples/s", "measured h"});
  struct Row {
    const char* label;
    Dist dist;
    RngBackend backend;
  };
  const Row rows[] = {
      {"+-1, xoshiro x8", Dist::PmOne, RngBackend::XoshiroBatch},
      {"(-1,1), xoshiro x8", Dist::Uniform, RngBackend::XoshiroBatch},
      {"(-1,1), xoshiro scalar", Dist::Uniform, RngBackend::Xoshiro},
      {"(-1,1), philox", Dist::Uniform, RngBackend::Philox},
      {"Gaussian, xoshiro x8", Dist::Gaussian, RngBackend::XoshiroBatch},
  };
  for (const Row& r : rows) {
    const double rate = rng_throughput(r.dist, r.backend, 10000, 300);
    const double h = measure_h(r.dist, r.backend, stream);
    rt.add_row({r.label, fmt_fixed(rate / 1e9, 3), fmt_fixed(h, 3)});
  }
  rt.set_footnote(
      "h < 1 means generating a sample is cheaper than moving one from "
      "DRAM — the regime where on-the-fly regeneration wins (§III-A). "
      "Philox's h is several times Xoshiro's (paper §IV-B1: ~5x).");
  std::printf("%s\n", rt.render().c_str());

  std::printf("Detected cache: %.1f KiB\n",
              static_cast<double>(detect_cache_bytes()) / 1024.0);
  return 0;
}
