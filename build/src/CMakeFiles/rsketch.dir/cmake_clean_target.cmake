file(REMOVE_RECURSE
  "librsketch.a"
)
