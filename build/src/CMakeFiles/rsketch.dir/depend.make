# Empty dependencies file for rsketch.
# This may be replaced when dependencies are built.
