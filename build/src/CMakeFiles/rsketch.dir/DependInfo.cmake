
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/machine.cpp" "src/CMakeFiles/rsketch.dir/analysis/machine.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/analysis/machine.cpp.o.d"
  "/root/repo/src/analysis/pattern.cpp" "src/CMakeFiles/rsketch.dir/analysis/pattern.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/analysis/pattern.cpp.o.d"
  "/root/repo/src/analysis/roofline.cpp" "src/CMakeFiles/rsketch.dir/analysis/roofline.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/analysis/roofline.cpp.o.d"
  "/root/repo/src/dense/blas1.cpp" "src/CMakeFiles/rsketch.dir/dense/blas1.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/dense/blas1.cpp.o.d"
  "/root/repo/src/dense/gemm.cpp" "src/CMakeFiles/rsketch.dir/dense/gemm.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/dense/gemm.cpp.o.d"
  "/root/repo/src/rng/distributions.cpp" "src/CMakeFiles/rsketch.dir/rng/distributions.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/rng/distributions.cpp.o.d"
  "/root/repo/src/rng/philox.cpp" "src/CMakeFiles/rsketch.dir/rng/philox.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/rng/philox.cpp.o.d"
  "/root/repo/src/rng/xoshiro.cpp" "src/CMakeFiles/rsketch.dir/rng/xoshiro.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/rng/xoshiro.cpp.o.d"
  "/root/repo/src/rng/xoshiro_batch.cpp" "src/CMakeFiles/rsketch.dir/rng/xoshiro_batch.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/rng/xoshiro_batch.cpp.o.d"
  "/root/repo/src/sketch/autotune.cpp" "src/CMakeFiles/rsketch.dir/sketch/autotune.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/autotune.cpp.o.d"
  "/root/repo/src/sketch/baselines.cpp" "src/CMakeFiles/rsketch.dir/sketch/baselines.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/baselines.cpp.o.d"
  "/root/repo/src/sketch/kernel_jki.cpp" "src/CMakeFiles/rsketch.dir/sketch/kernel_jki.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/kernel_jki.cpp.o.d"
  "/root/repo/src/sketch/kernel_kji.cpp" "src/CMakeFiles/rsketch.dir/sketch/kernel_kji.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/kernel_kji.cpp.o.d"
  "/root/repo/src/sketch/outer_blocking.cpp" "src/CMakeFiles/rsketch.dir/sketch/outer_blocking.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/outer_blocking.cpp.o.d"
  "/root/repo/src/sketch/sketch.cpp" "src/CMakeFiles/rsketch.dir/sketch/sketch.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/sketch.cpp.o.d"
  "/root/repo/src/sketch/sketch_dense.cpp" "src/CMakeFiles/rsketch.dir/sketch/sketch_dense.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/sketch_dense.cpp.o.d"
  "/root/repo/src/sketch/sketch_right.cpp" "src/CMakeFiles/rsketch.dir/sketch/sketch_right.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/sketch_right.cpp.o.d"
  "/root/repo/src/sketch/streaming.cpp" "src/CMakeFiles/rsketch.dir/sketch/streaming.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sketch/streaming.cpp.o.d"
  "/root/repo/src/solvers/least_squares.cpp" "src/CMakeFiles/rsketch.dir/solvers/least_squares.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/least_squares.cpp.o.d"
  "/root/repo/src/solvers/lsqr.cpp" "src/CMakeFiles/rsketch.dir/solvers/lsqr.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/lsqr.cpp.o.d"
  "/root/repo/src/solvers/minimum_norm.cpp" "src/CMakeFiles/rsketch.dir/solvers/minimum_norm.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/minimum_norm.cpp.o.d"
  "/root/repo/src/solvers/qr.cpp" "src/CMakeFiles/rsketch.dir/solvers/qr.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/qr.cpp.o.d"
  "/root/repo/src/solvers/randomized_svd.cpp" "src/CMakeFiles/rsketch.dir/solvers/randomized_svd.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/randomized_svd.cpp.o.d"
  "/root/repo/src/solvers/sap.cpp" "src/CMakeFiles/rsketch.dir/solvers/sap.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/sap.cpp.o.d"
  "/root/repo/src/solvers/sparse_qr.cpp" "src/CMakeFiles/rsketch.dir/solvers/sparse_qr.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/sparse_qr.cpp.o.d"
  "/root/repo/src/solvers/svd.cpp" "src/CMakeFiles/rsketch.dir/solvers/svd.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/svd.cpp.o.d"
  "/root/repo/src/solvers/triangular.cpp" "src/CMakeFiles/rsketch.dir/solvers/triangular.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/solvers/triangular.cpp.o.d"
  "/root/repo/src/sparse/blocked_csr.cpp" "src/CMakeFiles/rsketch.dir/sparse/blocked_csr.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sparse/blocked_csr.cpp.o.d"
  "/root/repo/src/sparse/convert.cpp" "src/CMakeFiles/rsketch.dir/sparse/convert.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sparse/convert.cpp.o.d"
  "/root/repo/src/sparse/generate.cpp" "src/CMakeFiles/rsketch.dir/sparse/generate.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sparse/generate.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "src/CMakeFiles/rsketch.dir/sparse/matrix_market.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sparse/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/ops.cpp" "src/CMakeFiles/rsketch.dir/sparse/ops.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/sparse/ops.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/rsketch.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/env.cpp" "src/CMakeFiles/rsketch.dir/support/env.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/support/env.cpp.o.d"
  "/root/repo/src/support/memory_tracker.cpp" "src/CMakeFiles/rsketch.dir/support/memory_tracker.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/support/memory_tracker.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/rsketch.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/support/table.cpp.o.d"
  "/root/repo/src/testdata/replicas.cpp" "src/CMakeFiles/rsketch.dir/testdata/replicas.cpp.o" "gcc" "src/CMakeFiles/rsketch.dir/testdata/replicas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
