# Empty compiler generated dependencies file for table4_alg4_baselines.
# This may be replaced when dependencies are built.
