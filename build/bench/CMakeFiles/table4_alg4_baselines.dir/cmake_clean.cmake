file(REMOVE_RECURSE
  "CMakeFiles/table4_alg4_baselines.dir/table4_alg4_baselines.cpp.o"
  "CMakeFiles/table4_alg4_baselines.dir/table4_alg4_baselines.cpp.o.d"
  "table4_alg4_baselines"
  "table4_alg4_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_alg4_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
