# Empty dependencies file for ablation_scheme_comparison.
# This may be replaced when dependencies are built.
