# Empty dependencies file for table3_sample_breakdown.
# This may be replaced when dependencies are built.
