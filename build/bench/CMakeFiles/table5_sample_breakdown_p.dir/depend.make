# Empty dependencies file for table5_sample_breakdown_p.
# This may be replaced when dependencies are built.
