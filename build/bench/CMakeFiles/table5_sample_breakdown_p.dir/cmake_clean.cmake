file(REMOVE_RECURSE
  "CMakeFiles/table5_sample_breakdown_p.dir/table5_sample_breakdown_p.cpp.o"
  "CMakeFiles/table5_sample_breakdown_p.dir/table5_sample_breakdown_p.cpp.o.d"
  "table5_sample_breakdown_p"
  "table5_sample_breakdown_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_sample_breakdown_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
