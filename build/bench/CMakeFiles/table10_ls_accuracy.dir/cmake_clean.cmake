file(REMOVE_RECURSE
  "CMakeFiles/table10_ls_accuracy.dir/table10_ls_accuracy.cpp.o"
  "CMakeFiles/table10_ls_accuracy.dir/table10_ls_accuracy.cpp.o.d"
  "table10_ls_accuracy"
  "table10_ls_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_ls_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
