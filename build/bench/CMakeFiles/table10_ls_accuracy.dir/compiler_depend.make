# Empty compiler generated dependencies file for table10_ls_accuracy.
# This may be replaced when dependencies are built.
