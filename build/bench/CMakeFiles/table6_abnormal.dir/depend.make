# Empty dependencies file for table6_abnormal.
# This may be replaced when dependencies are built.
