file(REMOVE_RECURSE
  "CMakeFiles/table6_abnormal.dir/table6_abnormal.cpp.o"
  "CMakeFiles/table6_abnormal.dir/table6_abnormal.cpp.o.d"
  "table6_abnormal"
  "table6_abnormal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_abnormal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
