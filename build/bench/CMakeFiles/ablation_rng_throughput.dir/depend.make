# Empty dependencies file for ablation_rng_throughput.
# This may be replaced when dependencies are built.
