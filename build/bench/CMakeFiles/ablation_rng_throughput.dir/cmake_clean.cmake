file(REMOVE_RECURSE
  "CMakeFiles/ablation_rng_throughput.dir/ablation_rng_throughput.cpp.o"
  "CMakeFiles/ablation_rng_throughput.dir/ablation_rng_throughput.cpp.o.d"
  "ablation_rng_throughput"
  "ablation_rng_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rng_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
