file(REMOVE_RECURSE
  "CMakeFiles/table2_serial_baselines.dir/table2_serial_baselines.cpp.o"
  "CMakeFiles/table2_serial_baselines.dir/table2_serial_baselines.cpp.o.d"
  "table2_serial_baselines"
  "table2_serial_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_serial_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
