# Empty compiler generated dependencies file for table2_serial_baselines.
# This may be replaced when dependencies are built.
