# Empty dependencies file for ablation_blocking_sweep.
# This may be replaced when dependencies are built.
