file(REMOVE_RECURSE
  "CMakeFiles/ablation_blocking_sweep.dir/ablation_blocking_sweep.cpp.o"
  "CMakeFiles/ablation_blocking_sweep.dir/ablation_blocking_sweep.cpp.o.d"
  "ablation_blocking_sweep"
  "ablation_blocking_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blocking_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
