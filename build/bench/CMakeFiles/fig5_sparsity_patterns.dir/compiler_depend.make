# Empty compiler generated dependencies file for fig5_sparsity_patterns.
# This may be replaced when dependencies are built.
