file(REMOVE_RECURSE
  "CMakeFiles/fig5_sparsity_patterns.dir/fig5_sparsity_patterns.cpp.o"
  "CMakeFiles/fig5_sparsity_patterns.dir/fig5_sparsity_patterns.cpp.o.d"
  "fig5_sparsity_patterns"
  "fig5_sparsity_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sparsity_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
