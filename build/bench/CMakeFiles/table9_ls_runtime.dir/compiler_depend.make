# Empty compiler generated dependencies file for table9_ls_runtime.
# This may be replaced when dependencies are built.
