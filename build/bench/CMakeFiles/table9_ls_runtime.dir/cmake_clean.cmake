file(REMOVE_RECURSE
  "CMakeFiles/table9_ls_runtime.dir/table9_ls_runtime.cpp.o"
  "CMakeFiles/table9_ls_runtime.dir/table9_ls_runtime.cpp.o.d"
  "table9_ls_runtime"
  "table9_ls_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_ls_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
