# Empty compiler generated dependencies file for ablation_pattern_model.
# This may be replaced when dependencies are built.
