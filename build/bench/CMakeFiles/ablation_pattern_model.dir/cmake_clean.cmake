file(REMOVE_RECURSE
  "CMakeFiles/ablation_pattern_model.dir/ablation_pattern_model.cpp.o"
  "CMakeFiles/ablation_pattern_model.dir/ablation_pattern_model.cpp.o.d"
  "ablation_pattern_model"
  "ablation_pattern_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pattern_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
