# Empty compiler generated dependencies file for table7_parallel_scaling.
# This may be replaced when dependencies are built.
