# Empty compiler generated dependencies file for table11_ls_memory.
# This may be replaced when dependencies are built.
