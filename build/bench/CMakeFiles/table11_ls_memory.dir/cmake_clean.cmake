file(REMOVE_RECURSE
  "CMakeFiles/table11_ls_memory.dir/table11_ls_memory.cpp.o"
  "CMakeFiles/table11_ls_memory.dir/table11_ls_memory.cpp.o.d"
  "table11_ls_memory"
  "table11_ls_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_ls_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
