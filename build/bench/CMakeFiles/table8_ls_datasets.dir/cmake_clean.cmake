file(REMOVE_RECURSE
  "CMakeFiles/table8_ls_datasets.dir/table8_ls_datasets.cpp.o"
  "CMakeFiles/table8_ls_datasets.dir/table8_ls_datasets.cpp.o.d"
  "table8_ls_datasets"
  "table8_ls_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_ls_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
