# Empty dependencies file for table8_ls_datasets.
# This may be replaced when dependencies are built.
