# Empty dependencies file for ablation_stream_bandwidth.
# This may be replaced when dependencies are built.
