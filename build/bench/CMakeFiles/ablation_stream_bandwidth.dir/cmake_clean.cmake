file(REMOVE_RECURSE
  "CMakeFiles/ablation_stream_bandwidth.dir/ablation_stream_bandwidth.cpp.o"
  "CMakeFiles/ablation_stream_bandwidth.dir/ablation_stream_bandwidth.cpp.o.d"
  "ablation_stream_bandwidth"
  "ablation_stream_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
