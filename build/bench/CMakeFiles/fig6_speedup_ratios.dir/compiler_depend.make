# Empty compiler generated dependencies file for fig6_speedup_ratios.
# This may be replaced when dependencies are built.
