file(REMOVE_RECURSE
  "CMakeFiles/fig6_speedup_ratios.dir/fig6_speedup_ratios.cpp.o"
  "CMakeFiles/fig6_speedup_ratios.dir/fig6_speedup_ratios.cpp.o.d"
  "fig6_speedup_ratios"
  "fig6_speedup_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_speedup_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
