file(REMOVE_RECURSE
  "CMakeFiles/ablation_roofline_model.dir/ablation_roofline_model.cpp.o"
  "CMakeFiles/ablation_roofline_model.dir/ablation_roofline_model.cpp.o.d"
  "ablation_roofline_model"
  "ablation_roofline_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_roofline_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
