# Empty compiler generated dependencies file for ablation_roofline_model.
# This may be replaced when dependencies are built.
