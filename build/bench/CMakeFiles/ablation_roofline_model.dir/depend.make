# Empty dependencies file for ablation_roofline_model.
# This may be replaced when dependencies are built.
