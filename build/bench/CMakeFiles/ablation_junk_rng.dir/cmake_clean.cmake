file(REMOVE_RECURSE
  "CMakeFiles/ablation_junk_rng.dir/ablation_junk_rng.cpp.o"
  "CMakeFiles/ablation_junk_rng.dir/ablation_junk_rng.cpp.o.d"
  "ablation_junk_rng"
  "ablation_junk_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_junk_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
