# Empty dependencies file for ablation_junk_rng.
# This may be replaced when dependencies are built.
