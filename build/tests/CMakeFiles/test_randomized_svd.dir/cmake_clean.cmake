file(REMOVE_RECURSE
  "CMakeFiles/test_randomized_svd.dir/test_randomized_svd.cpp.o"
  "CMakeFiles/test_randomized_svd.dir/test_randomized_svd.cpp.o.d"
  "test_randomized_svd"
  "test_randomized_svd.pdb"
  "test_randomized_svd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_randomized_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
