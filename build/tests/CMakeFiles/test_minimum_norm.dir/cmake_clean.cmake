file(REMOVE_RECURSE
  "CMakeFiles/test_minimum_norm.dir/test_minimum_norm.cpp.o"
  "CMakeFiles/test_minimum_norm.dir/test_minimum_norm.cpp.o.d"
  "test_minimum_norm"
  "test_minimum_norm.pdb"
  "test_minimum_norm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimum_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
