# Empty compiler generated dependencies file for test_minimum_norm.
# This may be replaced when dependencies are built.
