file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_csc.dir/test_sparse_csc.cpp.o"
  "CMakeFiles/test_sparse_csc.dir/test_sparse_csc.cpp.o.d"
  "test_sparse_csc"
  "test_sparse_csc.pdb"
  "test_sparse_csc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_csc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
