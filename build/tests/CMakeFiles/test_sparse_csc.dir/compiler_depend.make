# Empty compiler generated dependencies file for test_sparse_csc.
# This may be replaced when dependencies are built.
