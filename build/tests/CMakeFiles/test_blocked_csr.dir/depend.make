# Empty dependencies file for test_blocked_csr.
# This may be replaced when dependencies are built.
