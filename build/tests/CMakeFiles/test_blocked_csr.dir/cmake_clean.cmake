file(REMOVE_RECURSE
  "CMakeFiles/test_blocked_csr.dir/test_blocked_csr.cpp.o"
  "CMakeFiles/test_blocked_csr.dir/test_blocked_csr.cpp.o.d"
  "test_blocked_csr"
  "test_blocked_csr.pdb"
  "test_blocked_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocked_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
