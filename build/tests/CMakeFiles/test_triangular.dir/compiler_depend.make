# Empty compiler generated dependencies file for test_triangular.
# This may be replaced when dependencies are built.
