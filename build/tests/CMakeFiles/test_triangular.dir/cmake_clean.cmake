file(REMOVE_RECURSE
  "CMakeFiles/test_triangular.dir/test_triangular.cpp.o"
  "CMakeFiles/test_triangular.dir/test_triangular.cpp.o.d"
  "test_triangular"
  "test_triangular.pdb"
  "test_triangular[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
