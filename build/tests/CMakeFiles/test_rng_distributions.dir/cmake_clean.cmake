file(REMOVE_RECURSE
  "CMakeFiles/test_rng_distributions.dir/test_rng_distributions.cpp.o"
  "CMakeFiles/test_rng_distributions.dir/test_rng_distributions.cpp.o.d"
  "test_rng_distributions"
  "test_rng_distributions.pdb"
  "test_rng_distributions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
