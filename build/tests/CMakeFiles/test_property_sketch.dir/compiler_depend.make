# Empty compiler generated dependencies file for test_property_sketch.
# This may be replaced when dependencies are built.
