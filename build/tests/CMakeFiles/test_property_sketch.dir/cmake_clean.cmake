file(REMOVE_RECURSE
  "CMakeFiles/test_property_sketch.dir/test_property_sketch.cpp.o"
  "CMakeFiles/test_property_sketch.dir/test_property_sketch.cpp.o.d"
  "test_property_sketch"
  "test_property_sketch.pdb"
  "test_property_sketch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
