file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_qr.dir/test_sparse_qr.cpp.o"
  "CMakeFiles/test_sparse_qr.dir/test_sparse_qr.cpp.o.d"
  "test_sparse_qr"
  "test_sparse_qr.pdb"
  "test_sparse_qr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
