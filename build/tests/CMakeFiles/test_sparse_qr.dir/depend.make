# Empty dependencies file for test_sparse_qr.
# This may be replaced when dependencies are built.
