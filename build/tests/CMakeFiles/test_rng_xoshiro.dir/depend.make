# Empty dependencies file for test_rng_xoshiro.
# This may be replaced when dependencies are built.
