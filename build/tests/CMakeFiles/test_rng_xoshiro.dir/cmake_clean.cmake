file(REMOVE_RECURSE
  "CMakeFiles/test_rng_xoshiro.dir/test_rng_xoshiro.cpp.o"
  "CMakeFiles/test_rng_xoshiro.dir/test_rng_xoshiro.cpp.o.d"
  "test_rng_xoshiro"
  "test_rng_xoshiro.pdb"
  "test_rng_xoshiro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_xoshiro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
