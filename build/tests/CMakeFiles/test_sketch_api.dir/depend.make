# Empty dependencies file for test_sketch_api.
# This may be replaced when dependencies are built.
