file(REMOVE_RECURSE
  "CMakeFiles/test_sketch_api.dir/test_sketch_api.cpp.o"
  "CMakeFiles/test_sketch_api.dir/test_sketch_api.cpp.o.d"
  "test_sketch_api"
  "test_sketch_api.pdb"
  "test_sketch_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
