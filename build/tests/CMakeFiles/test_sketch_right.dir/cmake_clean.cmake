file(REMOVE_RECURSE
  "CMakeFiles/test_sketch_right.dir/test_sketch_right.cpp.o"
  "CMakeFiles/test_sketch_right.dir/test_sketch_right.cpp.o.d"
  "test_sketch_right"
  "test_sketch_right.pdb"
  "test_sketch_right[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch_right.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
