# Empty compiler generated dependencies file for test_sketch_right.
# This may be replaced when dependencies are built.
