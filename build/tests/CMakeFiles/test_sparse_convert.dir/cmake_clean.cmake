file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_convert.dir/test_sparse_convert.cpp.o"
  "CMakeFiles/test_sparse_convert.dir/test_sparse_convert.cpp.o.d"
  "test_sparse_convert"
  "test_sparse_convert.pdb"
  "test_sparse_convert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
