file(REMOVE_RECURSE
  "CMakeFiles/test_rng_batch.dir/test_rng_batch.cpp.o"
  "CMakeFiles/test_rng_batch.dir/test_rng_batch.cpp.o.d"
  "test_rng_batch"
  "test_rng_batch.pdb"
  "test_rng_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
