file(REMOVE_RECURSE
  "CMakeFiles/test_rng_philox.dir/test_rng_philox.cpp.o"
  "CMakeFiles/test_rng_philox.dir/test_rng_philox.cpp.o.d"
  "test_rng_philox"
  "test_rng_philox.pdb"
  "test_rng_philox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_philox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
