# Empty dependencies file for test_rng_philox.
# This may be replaced when dependencies are built.
