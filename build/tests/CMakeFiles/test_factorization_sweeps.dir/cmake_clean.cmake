file(REMOVE_RECURSE
  "CMakeFiles/test_factorization_sweeps.dir/test_factorization_sweeps.cpp.o"
  "CMakeFiles/test_factorization_sweeps.dir/test_factorization_sweeps.cpp.o.d"
  "test_factorization_sweeps"
  "test_factorization_sweeps.pdb"
  "test_factorization_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factorization_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
