file(REMOVE_RECURSE
  "CMakeFiles/test_sketch_dense.dir/test_sketch_dense.cpp.o"
  "CMakeFiles/test_sketch_dense.dir/test_sketch_dense.cpp.o.d"
  "test_sketch_dense"
  "test_sketch_dense.pdb"
  "test_sketch_dense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
