# Empty dependencies file for test_sketch_dense.
# This may be replaced when dependencies are built.
