# Empty compiler generated dependencies file for blocking_autotune.
# This may be replaced when dependencies are built.
