file(REMOVE_RECURSE
  "CMakeFiles/blocking_autotune.dir/blocking_autotune.cpp.o"
  "CMakeFiles/blocking_autotune.dir/blocking_autotune.cpp.o.d"
  "blocking_autotune"
  "blocking_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
