# Empty compiler generated dependencies file for low_rank.
# This may be replaced when dependencies are built.
