file(REMOVE_RECURSE
  "CMakeFiles/low_rank.dir/low_rank.cpp.o"
  "CMakeFiles/low_rank.dir/low_rank.cpp.o.d"
  "low_rank"
  "low_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
