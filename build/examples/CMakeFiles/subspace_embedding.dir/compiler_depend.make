# Empty compiler generated dependencies file for subspace_embedding.
# This may be replaced when dependencies are built.
