file(REMOVE_RECURSE
  "CMakeFiles/subspace_embedding.dir/subspace_embedding.cpp.o"
  "CMakeFiles/subspace_embedding.dir/subspace_embedding.cpp.o.d"
  "subspace_embedding"
  "subspace_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subspace_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
