file(REMOVE_RECURSE
  "CMakeFiles/least_squares_solver.dir/least_squares_solver.cpp.o"
  "CMakeFiles/least_squares_solver.dir/least_squares_solver.cpp.o.d"
  "least_squares_solver"
  "least_squares_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/least_squares_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
