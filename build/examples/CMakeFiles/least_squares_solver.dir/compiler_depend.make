# Empty compiler generated dependencies file for least_squares_solver.
# This may be replaced when dependencies are built.
