#!/usr/bin/env python3
"""Gate a BENCH_*.json report against a committed baseline.

Deterministic software counters (samples generated, bytes moved, flops, ...)
must not regress by more than --tolerance; wall time is warn-only, because CI
runners are noisy but the counters are exact functions of the workload.
derived.thread_imbalance (schema_version 2) is likewise warn-only: scheduling
jitter moves it run to run, but a sustained jump is worth a look.

--imbalance-max turns imbalance into a hard gate: the run fails when the
gated thread_imbalance exceeds the threshold, or when the metric is missing
entirely (a silently-disabled probe must not pass the gate). By default the
gate reads derived.thread_imbalance (the report-wide worst); --imbalance-label
narrows it to the max over timing rows whose label contains the substring, so
a workload-specific bound (say, the skewed table7 row under the balanced
schedule) isn't polluted by unrelated rows.

Exit codes: 0 pass (warnings allowed), 1 counter regression or broken input.

Usage:
  check_bench_regression.py CURRENT BASELINE [--tolerance 0.10]
                            [--time-tolerance 0.50]
                            [--imbalance-max 1.25 [--imbalance-label SUBSTR]]

The baseline's "counters" object defines the gated set: every key present in
the baseline is checked in the current report. An intentional improvement
(counters dropping by more than the tolerance) warns and asks for a baseline
refresh rather than failing, so wins don't rot the gate.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)


def total_seconds(doc):
    return sum(
        row.get("seconds", 0.0)
        for row in doc.get("timings", [])
        if isinstance(row, dict)
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly produced BENCH_*.json")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max fractional counter increase before failing (default 0.10)",
    )
    ap.add_argument(
        "--time-tolerance",
        type=float,
        default=0.50,
        help="fractional wall-time increase that triggers a warning "
        "(default 0.50; never fails)",
    )
    ap.add_argument(
        "--imbalance-warn",
        type=float,
        default=2.0,
        help="derived.thread_imbalance above which to warn when the baseline "
        "carries no value of its own (default 2.0; never fails)",
    )
    ap.add_argument(
        "--imbalance-max",
        type=float,
        default=None,
        help="hard thread_imbalance ceiling: FAIL when the gated imbalance "
        "exceeds this, or when the metric is absent (default: advisory only)",
    )
    ap.add_argument(
        "--imbalance-label",
        default=None,
        help="gate the max thread_imbalance over timing rows whose label "
        "contains this substring instead of derived.thread_imbalance "
        "(only meaningful with --imbalance-max)",
    )
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    cur_counters = current.get("counters")
    base_counters = baseline.get("counters")
    if not isinstance(cur_counters, dict) or not isinstance(base_counters, dict):
        print("error: both reports need a 'counters' object", file=sys.stderr)
        return 1

    failures = 0
    warnings = 0
    width = max((len(k) for k in base_counters), default=10)
    print(f"{'counter':<{width}}  {'baseline':>15}  {'current':>15}  change")
    for key, base in sorted(base_counters.items()):
        if not isinstance(base, (int, float)):
            continue
        cur = cur_counters.get(key)
        if not isinstance(cur, (int, float)):
            print(f"{key:<{width}}  {base:>15}  {'MISSING':>15}  FAIL")
            failures += 1
            continue
        if base == 0:
            status = "ok" if cur == 0 else "FAIL (new work vs. zero baseline)"
            if cur != 0:
                failures += 1
            print(f"{key:<{width}}  {base:>15}  {cur:>15}  {status}")
            continue
        rel = (cur - base) / base
        if rel > args.tolerance:
            status = f"FAIL (+{rel:.1%} > {args.tolerance:.0%})"
            failures += 1
        elif rel < -args.tolerance:
            status = f"warn ({rel:.1%}; improvement — refresh the baseline)"
            warnings += 1
        else:
            status = f"ok ({rel:+.1%})"
        print(f"{key:<{width}}  {base:>15}  {cur:>15}  {status}")

    base_secs = total_seconds(baseline)
    cur_secs = total_seconds(current)
    if base_secs > 0:
        rel = (cur_secs - base_secs) / base_secs
        label = "warn" if rel > args.time_tolerance else "ok"
        if rel > args.time_tolerance:
            warnings += 1
        print(
            f"wall time (advisory): baseline {base_secs:.3f}s, "
            f"current {cur_secs:.3f}s ({rel:+.1%}) {label}"
        )

    # Thread imbalance (schema_version 2): advisory only. Against a baseline
    # value the counter tolerance applies; without one, an absolute threshold.
    cur_imb = current.get("derived", {}).get("thread_imbalance")
    base_imb = baseline.get("derived", {}).get("thread_imbalance")
    if isinstance(cur_imb, (int, float)):
        if isinstance(base_imb, (int, float)) and base_imb > 0:
            rel = (cur_imb - base_imb) / base_imb
            label = "warn" if rel > args.tolerance else "ok"
            if rel > args.tolerance:
                warnings += 1
            print(
                f"thread imbalance (advisory): baseline {base_imb:.2f}, "
                f"current {cur_imb:.2f} ({rel:+.1%}) {label}"
            )
        else:
            label = "warn" if cur_imb > args.imbalance_warn else "ok"
            if cur_imb > args.imbalance_warn:
                warnings += 1
            print(
                f"thread imbalance (advisory): current {cur_imb:.2f} "
                f"(threshold {args.imbalance_warn:.2f}) {label}"
            )

    # Hard imbalance gate (--imbalance-max): a missing metric fails too —
    # otherwise turning perf collection off would green the gate.
    if args.imbalance_max is not None:
        if args.imbalance_label is not None:
            gated = [
                row["thread_imbalance"]
                for row in current.get("timings", [])
                if isinstance(row, dict)
                and args.imbalance_label in str(row.get("label", ""))
                and isinstance(row.get("thread_imbalance"), (int, float))
            ]
            what = f"rows matching '{args.imbalance_label}'"
            gate_imb = max(gated) if gated else None
        else:
            what = "derived.thread_imbalance"
            gate_imb = cur_imb if isinstance(cur_imb, (int, float)) else None
        if gate_imb is None:
            print(
                f"thread imbalance gate: no {what} in {args.current}  FAIL",
                file=sys.stderr,
            )
            failures += 1
        elif gate_imb > args.imbalance_max:
            print(
                f"thread imbalance gate: {what} = {gate_imb:.2f} > "
                f"{args.imbalance_max:.2f}  FAIL",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"thread imbalance gate: {what} = {gate_imb:.2f} <= "
                f"{args.imbalance_max:.2f}  ok"
            )

    if failures:
        print(f"\nFAIL: {failures} gate failure(s)", file=sys.stderr)
        return 1
    print(f"\nPASS ({warnings} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
