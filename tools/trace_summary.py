#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON produced by RSKETCH_TRACE.

Prints a per-thread busy/idle table (busy = time inside top-level slices,
idle = trace wall span minus busy) and the top N slowest individual slices,
then reports drop accounting from otherData. Works on the "JSON object
format" the tracer writes ({"traceEvents": [...]}) and on a bare event array.

Well-formedness checks (always on): the file must parse, every event needs
name/ph/ts/tid, and B/E events must pair up per thread. Unmatched pairs are
warnings by default — ring wraparound legitimately drops old events — and
fatal under --strict, which the `trace` ctest uses on a drop-free trace.

Exit codes: 0 ok, 1 malformed trace (or unmatched pairs under --strict).

Usage:
  trace_summary.py TRACE.json [--top 10] [--strict]
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    if isinstance(doc, list):
        return doc, {}
    if isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list):
        return doc["traceEvents"], doc.get("otherData", {})
    print(f"error: {path} is not a Chrome trace document", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument(
        "--top", type=int, default=10, help="slowest slices to list (default 10)"
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="treat unmatched B/E pairs as errors instead of warnings",
    )
    args = ap.parse_args()

    events, other = load_events(args.trace)

    thread_names = {}
    stacks = defaultdict(list)  # tid -> [(name, ts)], open B slices
    busy = defaultdict(float)  # tid -> top-level busy microseconds
    slices = []  # (dur_us, name, tid, ts)
    t_min, t_max = None, None
    errors = 0
    unmatched = 0

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            print(f"error: event {i} is not an object", file=sys.stderr)
            errors += 1
            continue
        ph = ev.get("ph")
        name = ev.get("name")
        tid = ev.get("tid")
        if ph is None or name is None or tid is None:
            print(f"error: event {i} lacks ph/name/tid", file=sys.stderr)
            errors += 1
            continue
        if ph == "M":
            if name == "thread_name":
                thread_names[tid] = ev.get("args", {}).get("name", "")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            print(f"error: event {i} ({name}) lacks a numeric ts", file=sys.stderr)
            errors += 1
            continue
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = ts if t_max is None else max(t_max, ts)
        if ph == "B":
            stacks[tid].append((name, ts))
        elif ph == "E":
            if not stacks[tid]:
                unmatched += 1
                continue
            open_name, t0 = stacks[tid].pop()
            if open_name != name:
                print(
                    f"error: tid {tid}: E '{name}' closes B '{open_name}'",
                    file=sys.stderr,
                )
                errors += 1
                continue
            dur = ts - t0
            slices.append((dur, name, tid, t0))
            if not stacks[tid]:  # top-level slice: counts as busy time
                busy[tid] += dur
        elif ph == "X":
            dur = ev.get("dur", 0.0)
            if not isinstance(dur, (int, float)) or dur < 0:
                print(f"error: event {i} ({name}): bad dur", file=sys.stderr)
                errors += 1
                continue
            t_max = max(t_max, ts + dur)
            slices.append((dur, name, tid, ts))
            busy[tid] += dur
        # "i" and "C" events only contribute to the wall span.

    for tid, stack in sorted(stacks.items()):
        unmatched += len(stack)
        for name, _ in stack:
            print(f"warning: tid {tid}: B '{name}' never closed", file=sys.stderr)

    wall = (t_max - t_min) if t_min is not None else 0.0
    tids = sorted(set(busy) | set(thread_names) | set(stacks))
    print(f"threads: {len(tids)}, events: {len(events)}, wall: {wall / 1e3:.3f} ms")
    print(f"{'tid':>5}  {'thread':<20} {'busy ms':>10} {'idle ms':>10} {'busy %':>7}")
    for tid in tids:
        b = busy.get(tid, 0.0)
        idle = max(0.0, wall - b)
        pct = 100.0 * b / wall if wall > 0 else 0.0
        tname = thread_names.get(tid, f"thread-{tid}")
        print(f"{tid:>5}  {tname:<20} {b / 1e3:>10.3f} {idle / 1e3:>10.3f} {pct:>6.1f}%")

    slices.sort(key=lambda s: -s[0])
    if slices:
        print(f"\ntop {min(args.top, len(slices))} slowest slices:")
        print(f"{'dur ms':>10}  {'tid':>5}  name")
        for dur, name, tid, _ in slices[: args.top]:
            print(f"{dur / 1e3:>10.3f}  {tid:>5}  {name}")

    dropped = other.get("dropped_events", 0)
    print(f"\ndropped events: {dropped}, unmatched pairs: {unmatched}")

    if errors or (args.strict and unmatched):
        print(
            f"FAIL: {errors} error(s), {unmatched} unmatched pair(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
