// Triangular solves used by the SAP-QR preconditioner.
#include <gtest/gtest.h>

#include <vector>

#include "solvers/triangular.hpp"

namespace rsketch {
namespace {

DenseMatrix<double> upper_example() {
  // R = [2 1 3; 0 4 1; 0 0 5]
  DenseMatrix<double> r(3, 3);
  r(0, 0) = 2;
  r(0, 1) = 1;
  r(0, 2) = 3;
  r(1, 1) = 4;
  r(1, 2) = 1;
  r(2, 2) = 5;
  return r;
}

TEST(Triangular, SolveUpper) {
  const auto r = upper_example();
  // Pick x, form b = R x, solve back.
  std::vector<double> x = {1.0, -2.0, 3.0};
  std::vector<double> b = {2 * 1 + 1 * -2 + 3 * 3, 4 * -2 + 1 * 3, 5 * 3};
  solve_upper(r, b.data());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(b[i], x[i], 1e-14);
}

TEST(Triangular, SolveUpperTranspose) {
  const auto r = upper_example();
  std::vector<double> x = {0.5, 2.0, -1.0};
  // b = Rᵀ x.
  std::vector<double> b = {2 * 0.5, 1 * 0.5 + 4 * 2.0,
                           3 * 0.5 + 1 * 2.0 + 5 * -1.0};
  solve_upper_transpose(r, b.data());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(b[i], x[i], 1e-14);
}

TEST(Triangular, InverseRoundTrip) {
  const auto r = upper_example();
  std::vector<double> v = {1.0, 2.0, 3.0};
  std::vector<double> w = v;
  solve_upper(r, w.data());  // w = R⁻¹ v
  // Multiply back: R w should equal v.
  std::vector<double> back(3, 0.0);
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i <= j; ++i) back[i] += r(i, j) * w[j];
  }
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(back[i], v[i], 1e-13);
}

TEST(Triangular, AdjointConsistency) {
  // <R⁻¹u, v> == <u, R⁻ᵀv>
  const auto r = upper_example();
  std::vector<double> u = {1.0, -1.0, 2.0}, v = {3.0, 0.5, -2.0};
  std::vector<double> riu = u, rtv = v;
  solve_upper(r, riu.data());
  solve_upper_transpose(r, rtv.data());
  double lhs = 0, rhs = 0;
  for (int i = 0; i < 3; ++i) {
    lhs += riu[i] * v[i];
    rhs += u[i] * rtv[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

TEST(Triangular, SingularDiagonalThrows) {
  DenseMatrix<double> r(2, 2);
  r(0, 0) = 1.0;
  r(1, 1) = 0.0;
  std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW(solve_upper(r, b.data()), invalid_argument_error);
  EXPECT_THROW(solve_upper_transpose(r, b.data()), invalid_argument_error);
}

TEST(Triangular, OneByOne) {
  DenseMatrix<double> r(1, 1);
  r(0, 0) = 4.0;
  std::vector<double> b = {8.0};
  solve_upper(r, b.data());
  EXPECT_DOUBLE_EQ(b[0], 2.0);
}

}  // namespace
}  // namespace rsketch
