// Tests for the defensive sparse-format validators (sparse/validate.hpp):
// clean inputs validate, every corruption class is reported with the right
// issue code, and the validators never crash on adversarial structures.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sparse/blocked_csr.hpp"
#include "sparse/generate.hpp"
#include "sparse/validate.hpp"
#include "testdata/faults.hpp"

namespace rsketch {
namespace {

CscMatrix<double> clean_matrix() {
  return random_sparse<double>(40, 30, 0.2, 1234);
}

TEST(Validate, CleanCscPasses) {
  const auto a = clean_matrix();
  const ValidationReport rep = validate_csc(a);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.structurally_valid());
  EXPECT_EQ(rep.structure, "csc");
  EXPECT_EQ(rep.rows, 40);
  EXPECT_EQ(rep.cols, 30);
  EXPECT_EQ(rep.nnz, a.nnz());
  EXPECT_NO_THROW(require_valid(a));
}

TEST(Validate, CleanCsrPasses) {
  const auto a = clean_matrix();
  // Round-trip through the CSR builder used by the blocked conversion.
  std::vector<index_t> ptr(41, 0);
  std::vector<index_t> idx;
  std::vector<double> val;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(j)];
         p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      ++ptr[static_cast<std::size_t>(a.row_idx()[static_cast<std::size_t>(p)]) + 1];
    }
  }
  for (std::size_t i = 1; i < ptr.size(); ++i) ptr[i] += ptr[i - 1];
  idx.resize(static_cast<std::size_t>(a.nnz()));
  val.resize(static_cast<std::size_t>(a.nnz()));
  std::vector<index_t> next(ptr.begin(), ptr.end() - 1);
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(j)];
         p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t i = a.row_idx()[static_cast<std::size_t>(p)];
      const index_t q = next[static_cast<std::size_t>(i)]++;
      idx[static_cast<std::size_t>(q)] = j;
      val[static_cast<std::size_t>(q)] =
          a.values()[static_cast<std::size_t>(p)];
    }
  }
  const auto r = CsrMatrix<double>(40, 30, std::move(ptr), std::move(idx),
                                   std::move(val));
  EXPECT_TRUE(validate_csr(r).ok());
}

TEST(Validate, CleanBlockedCsrPasses) {
  const auto a = clean_matrix();
  const auto ab = BlockedCsr<double>::from_csc(a, 8);
  const ValidationReport rep = validate_blocked_csr(ab);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

struct FaultCase {
  faults::CscFault fault;
  ValidationIssue expect;
};

TEST(Validate, EveryCscFaultIsDetectedWithTheRightIssue) {
  const auto a = clean_matrix();
  const FaultCase cases[] = {
      {faults::CscFault::ShuffledColPtr, ValidationIssue::PointerNotMonotone},
      {faults::CscFault::PointerOverrun, ValidationIssue::PointerOutOfRange},
      {faults::CscFault::NegativeIndex, ValidationIssue::IndexOutOfRange},
      {faults::CscFault::IndexOutOfRange, ValidationIssue::IndexOutOfRange},
      {faults::CscFault::UnsortedIndices, ValidationIssue::IndexNotSorted},
      {faults::CscFault::NanPayload, ValidationIssue::NonFiniteValue},
      {faults::CscFault::InfPayload, ValidationIssue::NonFiniteValue},
  };
  // A shuffled pointer can make one column span many original columns, so a
  // single fault may fan out into dozens of findings; lift the retention cap
  // so the expected issue class is never suppressed out of `findings`.
  ValidateOptions opt;
  opt.max_findings = 1 << 20;
  for (const FaultCase& c : cases) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto bad = faults::corrupt_csc(a, c.fault, seed);
      const ValidationReport rep = validate_csc(bad, opt);
      EXPECT_FALSE(rep.ok()) << to_string(c.fault) << " seed " << seed;
      bool found = false;
      for (const ValidationFinding& f : rep.findings) {
        if (f.issue == c.expect) found = true;
      }
      EXPECT_TRUE(found) << to_string(c.fault) << " seed " << seed
                         << " did not report " << to_string(c.expect) << "\n"
                         << rep.summary();
      EXPECT_EQ(rep.structurally_valid(), faults::is_value_fault(c.fault))
          << to_string(c.fault);
      EXPECT_THROW(require_valid(bad), validation_error);
    }
  }
}

TEST(Validate, ValueScanCanBeDisabled) {
  const auto a = clean_matrix();
  const auto bad = faults::corrupt_csc(a, faults::CscFault::NanPayload, 3);
  ValidateOptions opt;
  opt.check_values = false;
  EXPECT_TRUE(validate_csc(bad, opt).ok());
  EXPECT_NO_THROW(require_valid(bad, opt));
}

TEST(Validate, FindingsAreCappedButCounted) {
  // All-NaN payload: every entry is a finding, only max_findings retained.
  auto a = clean_matrix();
  for (auto& v : a.values()) v = std::numeric_limits<double>::quiet_NaN();
  ValidateOptions opt;
  opt.max_findings = 4;
  const ValidationReport rep = validate_csc(a, opt);
  EXPECT_EQ(static_cast<index_t>(rep.findings.size()), 4);
  EXPECT_EQ(rep.findings_total, a.nnz());
  EXPECT_EQ(rep.non_finite_values, a.nnz());
}

TEST(Validate, ValidationErrorCarriesReport) {
  const auto bad = faults::corrupt_csc(clean_matrix(),
                                       faults::CscFault::NegativeIndex, 9);
  try {
    require_valid(bad);
    FAIL() << "expected validation_error";
  } catch (const validation_error& e) {
    EXPECT_FALSE(e.report().ok());
    EXPECT_NE(std::string(e.what()).find("csc"), std::string::npos);
  }
}

TEST(Validate, ValidationErrorIsAnInvalidArgumentError) {
  const auto bad = faults::corrupt_csc(clean_matrix(),
                                       faults::CscFault::PointerOverrun, 2);
  // Callers that only know the seed taxonomy still catch it.
  EXPECT_THROW(require_valid(bad), invalid_argument_error);
}

TEST(Validate, NanInSourcePropagatesIntoBlockedCsrReport) {
  auto a = clean_matrix();
  ASSERT_GT(a.nnz(), 0);
  a.values()[0] = std::numeric_limits<double>::quiet_NaN();
  const auto ab = BlockedCsr<double>::from_csc(a, 8);
  const ValidationReport rep = validate_blocked_csr(ab);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.structurally_valid()) << rep.summary();
  EXPECT_EQ(rep.structure, "blocked_csr");
  EXPECT_EQ(rep.non_finite_values, 1);
}

TEST(Validate, CountNonFinite) {
  const double vals[] = {1.0, std::numeric_limits<double>::infinity(), 2.0,
                         std::nan(""), -std::numeric_limits<double>::infinity()};
  EXPECT_EQ(count_non_finite(vals, 5), 3);
  EXPECT_EQ(count_non_finite(vals, 1), 0);
  EXPECT_EQ(count_non_finite<double>(nullptr, 0), 0);
}

}  // namespace
}  // namespace rsketch
