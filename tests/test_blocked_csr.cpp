// Tests for the Algorithm 4 auxiliary structure: vertical-block CSR
// partitioning of a CSC matrix, sequential and parallel construction.
#include <gtest/gtest.h>

#include "sparse/blocked_csr.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

TEST(BlockedCsr, PartitionsColumnsCorrectly) {
  const auto a = random_sparse<double>(30, 17, 0.2, 5);
  const auto ab = BlockedCsr<double>::from_csc(a, 5);
  EXPECT_EQ(ab.rows(), 30);
  EXPECT_EQ(ab.cols(), 17);
  EXPECT_EQ(ab.num_blocks(), 4);  // 5+5+5+2
  EXPECT_EQ(ab.block(0).col0, 0);
  EXPECT_EQ(ab.block(3).col0, 15);
  EXPECT_EQ(ab.block(3).csr.cols(), 2);
  EXPECT_EQ(ab.nnz(), a.nnz());
}

TEST(BlockedCsr, EntriesMatchOriginal) {
  const auto a = random_sparse<double>(25, 13, 0.3, 9);
  const auto ab = BlockedCsr<double>::from_csc(a, 4);
  for (index_t b = 0; b < ab.num_blocks(); ++b) {
    const auto& blk = ab.block(b);
    blk.csr.validate();
    for (index_t i = 0; i < blk.csr.rows(); ++i) {
      for (index_t jl = 0; jl < blk.csr.cols(); ++jl) {
        EXPECT_DOUBLE_EQ(blk.csr.at(i, jl), a.at(i, blk.col0 + jl));
      }
    }
  }
}

TEST(BlockedCsr, ParallelMatchesSequential) {
  const auto a = random_sparse<float>(200, 60, 0.05, 31);
  const auto seq = BlockedCsr<float>::from_csc(a, 7);
  const auto par = BlockedCsr<float>::from_csc_parallel(a, 7);
  ASSERT_EQ(seq.num_blocks(), par.num_blocks());
  for (index_t b = 0; b < seq.num_blocks(); ++b) {
    EXPECT_EQ(seq.block(b).col0, par.block(b).col0);
    EXPECT_EQ(seq.block(b).csr.row_ptr(), par.block(b).csr.row_ptr());
    EXPECT_EQ(seq.block(b).csr.col_idx(), par.block(b).csr.col_idx());
    EXPECT_EQ(seq.block(b).csr.values(), par.block(b).csr.values());
  }
}

TEST(BlockedCsr, BlockWiderThanMatrix) {
  const auto a = random_sparse<double>(10, 6, 0.4, 2);
  const auto ab = BlockedCsr<double>::from_csc(a, 100);
  EXPECT_EQ(ab.num_blocks(), 1);
  EXPECT_EQ(ab.block(0).csr.cols(), 6);
  EXPECT_EQ(ab.nnz(), a.nnz());
}

TEST(BlockedCsr, SingleColumnBlocks) {
  const auto a = random_sparse<double>(12, 5, 0.5, 3);
  const auto ab = BlockedCsr<double>::from_csc(a, 1);
  EXPECT_EQ(ab.num_blocks(), 5);
  for (index_t b = 0; b < 5; ++b) {
    EXPECT_EQ(ab.block(b).csr.cols(), 1);
  }
  EXPECT_EQ(ab.nnz(), a.nnz());
}

TEST(BlockedCsr, EmptyMatrix) {
  CscMatrix<double> a(8, 0);
  const auto ab = BlockedCsr<double>::from_csc(a, 3);
  EXPECT_EQ(ab.num_blocks(), 0);
  EXPECT_EQ(ab.nnz(), 0);
}

TEST(BlockedCsr, RowsWithinBlocksSorted) {
  const auto a = random_sparse<double>(50, 20, 0.15, 77);
  const auto ab = BlockedCsr<double>::from_csc(a, 6);
  for (index_t b = 0; b < ab.num_blocks(); ++b) {
    ab.block(b).csr.validate();  // enforces ascending local columns per row
  }
}

TEST(BlockedCsr, InvalidBlockColsThrows) {
  const auto a = random_sparse<double>(5, 5, 0.2, 1);
  EXPECT_THROW(BlockedCsr<double>::from_csc(a, 0), invalid_argument_error);
  EXPECT_THROW(BlockedCsr<double>::from_csc_parallel(a, -2),
               invalid_argument_error);
}

TEST(BlockedCsr, MemoryBytesPositive) {
  const auto a = random_sparse<double>(40, 12, 0.3, 8);
  const auto ab = BlockedCsr<double>::from_csc(a, 4);
  EXPECT_GT(ab.memory_bytes(), 0u);
}

}  // namespace
}  // namespace rsketch
