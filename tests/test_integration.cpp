// Cross-module integration tests: full pipelines exercising I/O, both
// sketching kernels, the dense factorizations, and the least-squares
// solvers end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rng/distributions.hpp"
#include "sketch/sketch.hpp"
#include "sketch/sketch_dense.hpp"
#include "solvers/least_squares.hpp"
#include "solvers/sap.hpp"
#include "solvers/sparse_qr.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/ops.hpp"
#include "support/parallel.hpp"
#include "testdata/replicas.hpp"

namespace rsketch {
namespace {

TEST(Integration, MtxRoundTripThenSketchIsInvariant) {
  // Serialize → parse → sketch must equal sketching the original.
  const auto a = random_sparse<double>(120, 40, 0.1, 1);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market<double>(ss);

  SketchConfig cfg;
  cfg.d = 30;
  const auto sa = sketch(cfg, a);
  const auto sb = sketch(cfg, b);
  EXPECT_LT(sa.max_abs_diff(sb), 1e-12);
}

TEST(Integration, SketchThenSolveOnReplica) {
  // The full paper pipeline on a scaled rail replica: sketch-precondition
  // solve reaches direct-method accuracy and direct/SAP agree.
  const auto a = make_ls_replica("rail582", 12);
  const auto b = make_least_squares_rhs(a, 2);

  SapOptions opt;
  opt.gamma = 2.0;
  opt.lsqr_max_iter = 2000;
  const auto sap = sap_solve(a, b, opt);
  const auto direct = sparse_qr_least_squares(a, b.data());

  EXPECT_LT(ls_error_metric(a, sap.x, b), 1e-11);
  EXPECT_LT(ls_error_metric(a, direct.x, b), 1e-11);
  for (index_t j = 0; j < a.cols(); ++j) {
    EXPECT_NEAR(sap.x[static_cast<std::size_t>(j)],
                direct.x[static_cast<std::size_t>(j)],
                1e-6 * (std::fabs(direct.x[static_cast<std::size_t>(j)]) + 1.0));
  }
}

TEST(Integration, KernelsAgreeOnEveryReplica) {
  // Alg3 and Alg4 produce the same sketch (same seed, same b_d) on all five
  // Table I replicas at an aggressive scale.
  for (const auto& info : spmm_replica_infos()) {
    const auto a = make_spmm_replica<double>(info.name, 24);
    SketchConfig cfg;
    cfg.d = spmm_replica_d(info.name, 24);
    cfg.block_d = 500;
    cfg.block_n = 100;
    const auto s3 = sketch(cfg, a);
    cfg.kernel = KernelVariant::Jki;
    const auto s4 = sketch(cfg, a);
    EXPECT_LT(s3.max_abs_diff(s4), 1e-9) << info.name;
  }
}

TEST(Integration, PhiloxSketchReproducibleAcrossEverything) {
  // Philox backend: kernel, blocking, parallel mode, and thread count all
  // leave the sketch bit-identical in exact terms — the RandBLAS contract.
  const auto a = random_sparse<double>(150, 60, 0.08, 3);
  std::vector<DenseMatrix<double>> results;
  for (const KernelVariant k : {KernelVariant::Kji, KernelVariant::Jki}) {
    for (const index_t bd : {index_t{48}, index_t{11}}) {
      for (const ParallelOver p :
           {ParallelOver::Sequential, ParallelOver::DBlocks}) {
        SketchConfig cfg;
        cfg.d = 48;
        cfg.backend = RngBackend::Philox;
        cfg.kernel = k;
        cfg.block_d = bd;
        cfg.block_n = 17;
        cfg.parallel = p;
        results.push_back(sketch(cfg, a));
      }
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LT(results[0].max_abs_diff(results[i]), 1e-10) << "config " << i;
  }
}

TEST(Integration, SketchOfRhsMatchesSketchTimesRhs) {
  // Consistency between the sparse kernel and the dense apply: S·(A x)
  // computed via sketch_dense equals (S·A)·x computed via the sparse kernel.
  const auto a = random_sparse<double>(100, 30, 0.15, 4);
  std::vector<double> x(30);
  for (index_t j = 0; j < 30; ++j) x[static_cast<std::size_t>(j)] = 0.2 * j - 3.0;
  std::vector<double> ax(100, 0.0);
  spmv(a, x.data(), ax.data());

  SketchConfig cfg;
  cfg.d = 40;
  const auto s_ax = sketch_dense_vector(cfg, ax.data(), 100);

  const auto a_hat = sketch(cfg, a);
  std::vector<double> sa_x(40, 0.0);
  for (index_t j = 0; j < 30; ++j) {
    for (index_t i = 0; i < 40; ++i) {
      sa_x[static_cast<std::size_t>(i)] += a_hat(i, j) * x[static_cast<std::size_t>(j)];
    }
  }
  for (index_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(s_ax[static_cast<std::size_t>(i)],
                sa_x[static_cast<std::size_t>(i)],
                1e-9 * (std::fabs(sa_x[static_cast<std::size_t>(i)]) + 1.0));
  }
}

TEST(Integration, ThreadCountGuardRestoresSetting) {
  const int before = max_threads();
  {
    ThreadCountGuard guard(std::max(1, before - 1));
    // Any sketch under the guard must still be correct.
    const auto a = random_sparse<double>(60, 20, 0.2, 5);
    SketchConfig cfg;
    cfg.d = 16;
    cfg.parallel = ParallelOver::DBlocks;
    const auto s = sketch(cfg, a);
    EXPECT_EQ(s.rows(), 16);
  }
  EXPECT_EQ(max_threads(), before);
}

TEST(Integration, TransposedProblemSolvesLikeThePaper) {
  // The paper transposes wide inputs before least squares; verify that the
  // transpose + SAP path gives the optimum of the tall problem.
  const auto wide = random_sparse<double>(25, 400, 0.1, 6);
  const auto tall = transpose(wide);
  const auto b = make_least_squares_rhs(tall, 7);
  SapOptions opt;
  opt.gamma = 2.0;
  opt.lsqr_max_iter = 2000;
  const auto res = sap_solve(tall, b, opt);
  EXPECT_LT(ls_error_metric(tall, res.x, b), 1e-11);
}

}  // namespace
}  // namespace rsketch
