// Pattern-aware §III-A model extension (the paper's future-work item).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/pattern.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

RooflineParams params(double m, double h, double rho) {
  RooflineParams p;
  p.cache_elems = m;
  p.rng_cost = h;
  p.density = rho;
  p.machine_balance = 40.0;
  return p;
}

TEST(PatternModel, HistogramCountsRows) {
  // 3 dense rows out of 30 (stride 10).
  const auto a = abnormal_a<double>(30, 8, 10, 1);
  const auto hist = row_degree_histogram(a);
  EXPECT_EQ(hist[0], 27);  // empty rows
  EXPECT_EQ(hist[8], 3);   // fully dense rows
}

TEST(PatternModel, UniformMatrixMatchesClosedForm) {
  const double rho = 0.02;
  const auto a = random_sparse<double>(4000, 500, rho, 2);
  for (double n1 : {1.0, 10.0, 50.0}) {
    const double empirical = expected_regen_fraction(a, n1);
    const double model = 1.0 - std::pow(1.0 - rho, n1);
    EXPECT_NEAR(empirical, model, 0.15 * model + 0.01) << "n1=" << n1;
  }
}

TEST(PatternModel, DenseRowsRegenFractionIndependentOfN1) {
  // Abnormal_A: the nonempty rows are fully dense, so they are regenerated
  // for ANY block width; the fraction is constant = dense-row share.
  const auto a = abnormal_a<double>(1000, 100, 10, 3);
  const double share = 0.1;
  for (double n1 : {1.0, 5.0, 50.0}) {
    EXPECT_NEAR(expected_regen_fraction(a, n1), share, 1e-9);
  }
}

TEST(PatternModel, DenseColumnsBehaveLikeUniformRows) {
  // Abnormal_C: every row has k = (#dense cols) entries spread uniformly.
  const auto a = abnormal_c<double>(200, 100, 10, 4);
  const double ki = 10.0 / 100.0;  // 10 dense columns
  for (double n1 : {1.0, 20.0}) {
    const double expect = 1.0 - std::pow(1.0 - ki, n1);
    EXPECT_NEAR(expected_regen_fraction(a, n1), expect, 1e-9);
  }
}

TEST(PatternModel, RegenFractionMonotoneInN1) {
  const auto a = random_sparse<double>(500, 200, 0.05, 5);
  double prev = 0.0;
  for (double n1 = 1.0; n1 <= 128.0; n1 *= 2.0) {
    const double f = expected_regen_fraction(a, n1);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_LE(prev, 1.0);
}

TEST(PatternModel, DenseRowPatternBeatsUniformModelPrediction) {
  // Abnormal_A's regeneration fraction stays at the dense-row share for any
  // n1, while the uniform model's 1-(1-rho)^{n1} saturates at 1 — so the
  // pattern-aware optimum achieves a strictly better (smaller) reciprocal
  // CI than the uniform model's own optimum evaluated on the true pattern.
  const auto dense_rows = abnormal_a<double>(2000, 200, 10, 6);
  const auto p = params(1e5, 0.5, dense_rows.density());
  const double n1_pattern = optimal_n1_for_matrix(dense_rows, p);
  const double n1_uniform = optimal_n1(p, 200.0);
  // True cost at the pattern-aware optimum <= true cost at the uniform pick.
  EXPECT_LE(inverse_ci_pattern(dense_rows, p, n1_pattern),
            inverse_ci_pattern(dense_rows, p, n1_uniform) + 1e-15);
  // And the uniform model OVERESTIMATES the cost of this pattern.
  EXPECT_LT(inverse_ci_pattern(dense_rows, p, n1_pattern),
            inverse_ci(p, n1_uniform));
}

TEST(PatternModel, UniformMatrixOptimumMatchesUniformModel) {
  const auto a = random_sparse<double>(3000, 300, 0.01, 7);
  const auto p = params(1e5, 0.3, 0.01);
  const double n1_pattern = optimal_n1_for_matrix(a, p);
  const double n1_uniform = optimal_n1(p, 300.0);
  // The empirical optimum should be in the same ballpark (within ~3x).
  EXPECT_LT(std::fabs(std::log(n1_pattern / n1_uniform)), std::log(3.0));
}

TEST(PatternModel, InverseCiPatternReciprocalSanity) {
  const auto a = random_sparse<double>(1000, 100, 0.02, 8);
  const auto p = params(1e5, 0.2, 0.02);
  for (double n1 : {1.0, 8.0, 64.0}) {
    EXPECT_GT(inverse_ci_pattern(a, p, n1), 0.0);
  }
}

TEST(PatternModel, EmptyMatrixSafe) {
  CscMatrix<double> a(0, 0);
  EXPECT_EQ(expected_regen_fraction(a, 5.0), 0.0);
}

}  // namespace
}  // namespace rsketch
