// Matrix Market I/O: round trips, symmetry/pattern handling, and failure
// injection on malformed inputs.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/generate.hpp"
#include "sparse/matrix_market.hpp"

namespace rsketch {
namespace {

TEST(MatrixMarket, WriteReadRoundTrip) {
  const auto a = random_sparse<double>(20, 15, 0.2, 11);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market<double>(ss);
  EXPECT_EQ(b.rows(), a.rows());
  EXPECT_EQ(b.cols(), a.cols());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      const index_t i = a.row_idx()[p];
      EXPECT_NEAR(b.at(i, j), a.at(i, j), 1e-12);
    }
  }
}

TEST(MatrixMarket, ParsesGeneralReal) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 2 3\n"
      "1 1 2.5\n"
      "3 1 -1.0\n"
      "2 2 4\n");
  const auto a = read_matrix_market<double>(ss);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 2);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(a.at(2, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
}

TEST(MatrixMarket, PatternEntriesBecomeOnes) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto a = read_matrix_market<float>(ss);
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 1.0f);
}

TEST(MatrixMarket, SymmetricMirrored) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const auto a = read_matrix_market<double>(ss);
  EXPECT_EQ(a.nnz(), 3);  // (2,1), mirror (1,2), diagonal (3,3) once
  EXPECT_DOUBLE_EQ(a.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 7.0);
}

TEST(MatrixMarket, SkewSymmetricNegated) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const auto a = read_matrix_market<double>(ss);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -3.0);
}

TEST(MatrixMarket, IntegerField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 -4\n");
  const auto a = read_matrix_market<double>(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -4.0);
}

TEST(MatrixMarket, MalformedInputsThrow) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return read_matrix_market<double>(ss);
  };
  EXPECT_THROW(parse(""), io_error);
  EXPECT_THROW(parse("not a banner\n1 1 0\n"), io_error);
  EXPECT_THROW(parse("%%MatrixMarket matrix array real general\n1 1\n1.0\n"),
               io_error);
  EXPECT_THROW(
      parse("%%MatrixMarket matrix coordinate complex general\n1 1 0\n"),
      io_error);
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"),
               io_error);  // missing size line
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\nx y z\n"),
               io_error);  // malformed size line
  EXPECT_THROW(
      parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n"),
      io_error);  // missing entry
  EXPECT_THROW(
      parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"),
      io_error);  // out-of-range index
  EXPECT_THROW(
      parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"),
      io_error);  // missing value for real field
}

TEST(MatrixMarket, CrlfLineEndingsParse) {
  // Files written on Windows end every line with \r\n; the trailing \r used
  // to leak into the symmetry token and blank-line checks.
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\r\n"
      "% comment\r\n"
      "3 3 2\r\n"
      "2 1 5.0\r\n"
      "3 3 7.0\r\n");
  const auto a = read_matrix_market<double>(ss);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 5.0);
}

TEST(MatrixMarket, BlankAndWhitespaceLinesTolerated) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "\n"
      "   \n"
      "2 2 2\n"
      "1 1 1.5\n"
      "  \n"
      "2 2 2.5\n"
      "\n"
      "   \n");
  const auto a = read_matrix_market<double>(ss);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 2.5);
}

TEST(MatrixMarket, DuplicateEntriesRejected) {
  // Silently summing duplicates turns a malformed file into a plausible but
  // wrong matrix; the reader must refuse instead.
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n"
      "2 2 2.0\n"
      "1 1 4.0\n");
  EXPECT_THROW(read_matrix_market<double>(ss), io_error);
}

TEST(MatrixMarket, SymmetricDiagonalIsNotADuplicate) {
  // Mirroring must not double the diagonal and then trip duplicate rejection.
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 3\n"
      "1 1 1.0\n"
      "2 1 5.0\n"
      "2 2 3.0\n");
  const auto a = read_matrix_market<double>(ss);
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 5.0);
}

TEST(MatrixMarket, FileRoundTripAndMissingFile) {
  const auto a = random_sparse<double>(10, 10, 0.3, 3);
  const std::string path = ::testing::TempDir() + "/rsketch_test.mtx";
  write_matrix_market_file(path, a);
  const auto b = read_matrix_market_file<double>(path);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_THROW(read_matrix_market_file<double>("/nonexistent/nope.mtx"),
               io_error);
}

}  // namespace
}  // namespace rsketch
