// Machine probes and the model-driven autotuner.
#include <gtest/gtest.h>

#include "analysis/machine.hpp"
#include "sketch/autotune.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

TEST(Stream, ReportsPositiveBandwidth) {
  const auto r = stream_benchmark(1 << 18, 2);
  EXPECT_GT(r.copy_gbps, 0.0);
  EXPECT_GT(r.scale_gbps, 0.0);
  EXPECT_GT(r.add_gbps, 0.0);
  EXPECT_GT(r.triad_gbps, 0.0);
}

TEST(Stream, InvalidArgsThrow) {
  EXPECT_THROW(stream_benchmark(0, 1), invalid_argument_error);
  EXPECT_THROW(stream_benchmark(100, 0), invalid_argument_error);
}

TEST(RngThroughput, PositiveAndOrderedByCost) {
  const double pm1 =
      rng_throughput(Dist::PmOne, RngBackend::XoshiroBatch, 10000, 20);
  const double gauss =
      rng_throughput(Dist::Gaussian, RngBackend::XoshiroBatch, 10000, 20);
  EXPECT_GT(pm1, 0.0);
  EXPECT_GT(gauss, 0.0);
  // ±1 extraction is far cheaper than Box–Muller.
  EXPECT_GT(pm1, gauss);
}

TEST(RngThroughput, InvalidArgsThrow) {
  EXPECT_THROW(rng_throughput(Dist::Uniform, RngBackend::Xoshiro, 0, 1),
               invalid_argument_error);
}

TEST(MeasureH, PositiveAndGaussianCostsMore) {
  const auto stream = stream_benchmark(1 << 18, 2);
  const double h_pm1 = measure_h(Dist::PmOne, RngBackend::XoshiroBatch, stream);
  const double h_gauss =
      measure_h(Dist::Gaussian, RngBackend::XoshiroBatch, stream);
  EXPECT_GT(h_pm1, 0.0);
  EXPECT_GT(h_gauss, h_pm1);
}

TEST(CacheDetect, ReturnsPlausibleSize) {
  const std::size_t bytes = detect_cache_bytes();
  EXPECT_GE(bytes, std::size_t{16} << 10);   // ≥ 16 KiB
  EXPECT_LE(bytes, std::size_t{1} << 31);    // ≤ 2 GiB
}

TEST(SuggestBlocks, ProducesValidBlocks) {
  const auto s = suggest_blocks(100000, 10000, 30000, 1e-3, 1 << 20, 0.1, 4);
  EXPECT_GE(s.block_d, 1);
  EXPECT_LE(s.block_d, 30000);
  EXPECT_GE(s.block_n, 1);
  EXPECT_LE(s.block_n, 10000);
  EXPECT_GT(s.model_ci, 0.0);
}

TEST(SuggestBlocks, CheapRngPrefersNarrowColumns) {
  // Small h pushes n₁ toward 1 (regenerate instead of reuse); large h pushes
  // n₁ up (amortize generation over wider blocks).
  const auto cheap = suggest_blocks(100000, 10000, 30000, 0.05, 1 << 20, 0.001, 4);
  const auto costly = suggest_blocks(100000, 10000, 30000, 0.05, 1 << 20, 0.9, 4);
  EXPECT_LE(cheap.block_n, costly.block_n);
}

TEST(SuggestBlocks, TinyProblemsStayClamped) {
  // Regression: for m < 64 the cache-constraint optimum lands beyond the
  // matrix, and the old code handed kernels block_d > d / block_n > n (or 0).
  for (const index_t m : {1, 2, 7, 33, 63}) {
    const auto s = suggest_blocks(m, m, m, 0.5, 1 << 20, 0.1, 8);
    EXPECT_GE(s.block_d, 1) << "m=" << m;
    EXPECT_LE(s.block_d, m) << "m=" << m;
    EXPECT_GE(s.block_n, 1) << "m=" << m;
    EXPECT_LE(s.block_n, m) << "m=" << m;
  }
  // Degenerate density: the intensity model divides by rho; the suggestion
  // must still come back clamped instead of overflowing through llround.
  const auto s = suggest_blocks(50, 10, 20, 1e-12, 1 << 20, 0.1, 8);
  EXPECT_GE(s.block_n, 1);
  EXPECT_LE(s.block_n, 10);
  EXPECT_GE(s.block_d, 1);
  EXPECT_LE(s.block_d, 20);
}

TEST(SuggestBlocks, InvalidArgsThrow) {
  EXPECT_THROW(suggest_blocks(10, 0, 5, 0.1, 1024, 0.1, 4),
               invalid_argument_error);
  EXPECT_THROW(suggest_blocks(10, 5, 5, 0.1, 1024, 0.1, 0),
               invalid_argument_error);
}

TEST(AutotuneBlocks, FillsConfig) {
  const auto a = random_sparse<float>(2000, 400, 0.01, 1);
  SketchConfig cfg;
  cfg.d = 1200;
  cfg.block_d = 0;  // will be overwritten
  cfg.block_n = 0;
  autotune_blocks(cfg, a);
  EXPECT_GE(cfg.block_d, 1);
  EXPECT_GE(cfg.block_n, 1);
  EXPECT_LE(cfg.block_n, 400);
}

}  // namespace
}  // namespace rsketch
