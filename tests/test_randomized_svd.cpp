// Randomized low-rank SVD on the fast right-sketch primitive.
#include <gtest/gtest.h>

#include <cmath>

#include "dense/gemm.hpp"
#include "solvers/randomized_svd.hpp"
#include "solvers/svd.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

/// Exactly rank-r sparse-ish matrix: sum of r outer products of sparse
/// vectors with prescribed weights.
CscMatrix<double> low_rank_matrix(index_t m, index_t n, index_t r,
                                  const std::vector<double>& weights,
                                  std::uint64_t seed) {
  CooMatrix<double> coo(m, n);
  for (index_t t = 0; t < r; ++t) {
    const auto u = random_sparse<double>(m, 1, 0.15, seed + 2 * t);
    const auto v = random_sparse<double>(n, 1, 0.15, seed + 2 * t + 1);
    for (index_t p = 0; p < u.nnz(); ++p) {
      for (index_t q = 0; q < v.nnz(); ++q) {
        coo.push(u.row_idx()[p], v.row_idx()[q],
                 weights[static_cast<std::size_t>(t)] * u.values()[p] *
                     v.values()[q]);
      }
    }
  }
  return coo_to_csc(coo);
}

DenseMatrix<double> densify(const CscMatrix<double>& a) {
  DenseMatrix<double> d(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      d(a.row_idx()[p], j) = a.values()[p];
    }
  }
  return d;
}

TEST(RandomizedSvd, RecoversExactLowRankMatrix) {
  const index_t r = 4;
  const auto a = low_rank_matrix(120, 80, r, {10.0, 5.0, 2.0, 1.0}, 1);
  RandomizedSvdOptions opt;
  opt.oversample = 6;
  opt.power_iterations = 1;
  const auto res = randomized_svd(a, r, opt);

  // Residual ‖A − UΣVᵀ‖_F must be negligible for an exactly rank-r input.
  DenseMatrix<double> us(120, r);
  for (index_t c = 0; c < r; ++c) {
    for (index_t i = 0; i < 120; ++i) us(i, c) = res.u(i, c) * res.sigma[c];
  }
  DenseMatrix<double> rec(120, 80);
  gemm(false, true, 1.0, us, res.v, 0.0, rec);
  const auto dense = densify(a);
  EXPECT_LT(rec.max_abs_diff(dense), 1e-8 * dense.frobenius_norm());
}

TEST(RandomizedSvd, SigmaMatchesDenseJacobi) {
  const auto a = random_sparse<double>(150, 60, 0.1, 2);
  RandomizedSvdOptions opt;
  opt.oversample = 10;
  opt.power_iterations = 3;
  const index_t r = 5;
  const auto res = randomized_svd(a, r, opt);

  const auto exact = jacobi_svd(densify(a));
  for (index_t t = 0; t < r; ++t) {
    EXPECT_NEAR(res.sigma[static_cast<std::size_t>(t)],
                exact.sigma[static_cast<std::size_t>(t)],
                0.05 * exact.sigma[0])
        << "sigma_" << t;
  }
}

TEST(RandomizedSvd, FactorsAreOrthonormal) {
  const auto a = random_sparse<double>(100, 70, 0.08, 3);
  const auto res = randomized_svd(a, 6);
  DenseMatrix<double> utu(6, 6), vtv(6, 6);
  gemm(true, false, 1.0, res.u, res.u, 0.0, utu);
  gemm(true, false, 1.0, res.v, res.v, 0.0, vtv);
  for (index_t i = 0; i < 6; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(utu(i, j), i == j ? 1.0 : 0.0, 1e-8);
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(RandomizedSvd, SigmaDescending) {
  const auto a = random_sparse<double>(90, 50, 0.12, 4);
  const auto res = randomized_svd(a, 8);
  for (std::size_t t = 1; t < res.sigma.size(); ++t) {
    EXPECT_GE(res.sigma[t - 1], res.sigma[t]);
  }
}

TEST(RandomizedSvd, DeterministicForSeed) {
  const auto a = random_sparse<double>(80, 40, 0.1, 5);
  const auto r1 = randomized_svd(a, 3);
  const auto r2 = randomized_svd(a, 3);
  for (int t = 0; t < 3; ++t) EXPECT_DOUBLE_EQ(r1.sigma[t], r2.sigma[t]);
}

TEST(RandomizedSvd, InvalidArgsThrow) {
  const auto a = random_sparse<double>(30, 20, 0.2, 6);
  EXPECT_THROW(randomized_svd(a, 0), invalid_argument_error);
  RandomizedSvdOptions opt;
  opt.oversample = 50;  // rank + oversample > min(m, n)
  EXPECT_THROW(randomized_svd(a, 5, opt), invalid_argument_error);
}

TEST(RandomizedSvd, PowerIterationsSharpenTail) {
  // With a slowly decaying spectrum, more power iterations should not make
  // the leading singular value estimate worse.
  const auto a = random_sparse<double>(200, 80, 0.05, 7);
  const auto exact = jacobi_svd(densify(a));
  RandomizedSvdOptions o0, o3;
  o0.power_iterations = 0;
  o3.power_iterations = 3;
  const auto r0 = randomized_svd(a, 3, o0);
  const auto r3 = randomized_svd(a, 3, o3);
  const double e0 = std::fabs(r0.sigma[0] - exact.sigma[0]);
  const double e3 = std::fabs(r3.sigma[0] - exact.sigma[0]);
  EXPECT_LE(e3, e0 + 0.02 * exact.sigma[0]);
}

}  // namespace
}  // namespace rsketch
