// Right-sketching B = A·Sᵀ: correctness against materialized S, blocking
// invariants, sample counting, parallel determinism.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sketch/sketch_right.hpp"
#include "sparse/generate.hpp"
#include "sparse/validate.hpp"
#include "testdata/faults.hpp"

namespace rsketch {
namespace {

/// Dense reference B = A·Sᵀ from the materialized right-sketch S (d×n).
std::vector<double> reference(const SketchConfig& cfg,
                              const CscMatrix<double>& a) {
  const auto s = materialize_right_S<double>(cfg, a.cols());
  std::vector<double> b(static_cast<std::size_t>(a.rows() * cfg.d), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t c = 0; c < cfg.d; ++c) {
      double acc = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) acc += a.at(i, k) * s(c, k);
      b[static_cast<std::size_t>(i * cfg.d + c)] = acc;
    }
  }
  return b;
}

using Combo = std::tuple<Dist, index_t, ParallelOver>;

class SketchRight : public ::testing::TestWithParam<Combo> {};

TEST_P(SketchRight, MatchesMaterializedProduct) {
  const auto [dist, bd, par] = GetParam();
  const auto a = random_sparse<double>(60, 45, 0.1, 77);
  SketchConfig cfg;
  cfg.d = 24;
  cfg.seed = 9;
  cfg.dist = dist;
  cfg.block_d = bd;
  cfg.parallel = par;

  std::vector<double> b;
  sketch_right_into(cfg, a, b);
  const auto expect = reference(cfg, a);
  ASSERT_EQ(b.size(), expect.size());
  double max_diff = 0.0;
  for (std::size_t p = 0; p < b.size(); ++p) {
    max_diff = std::max(max_diff, std::abs(b[p] - expect[p]));
  }
  const double tol = dist == Dist::UniformScaled ? 1e-7 : 1e-10;
  EXPECT_LT(max_diff, tol);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SketchRight,
    ::testing::Combine(::testing::Values(Dist::PmOne, Dist::Uniform,
                                         Dist::UniformScaled, Dist::Gaussian),
                       ::testing::Values(index_t{24}, index_t{7}, index_t{1}),
                       ::testing::Values(ParallelOver::Sequential,
                                         ParallelOver::DBlocks)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_bd" +
                         std::to_string(std::get<1>(info.param)) + "_" +
                         to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(SketchRight, SampleCountIsDTimesNonemptyColumnsPerBlock) {
  // Reuse across a CSC column means exactly d samples per nonempty column.
  const auto a = abnormal_c<double>(40, 30, 10, 3);  // 3 dense, 27 empty cols
  SketchConfig cfg;
  cfg.d = 16;
  cfg.block_d = 16;
  std::vector<double> b;
  const auto stats = sketch_right_into(cfg, a, b);
  EXPECT_EQ(stats.samples_generated, 16u * 3u);
}

TEST(SketchRight, ParallelMatchesSequentialExactly) {
  const auto a = random_sparse<double>(120, 80, 0.05, 5);
  SketchConfig cfg;
  cfg.d = 40;
  cfg.block_d = 8;
  cfg.parallel = ParallelOver::Sequential;
  std::vector<double> seq, par;
  sketch_right_into(cfg, a, seq);
  cfg.parallel = ParallelOver::DBlocks;
  sketch_right_into(cfg, a, par);
  EXPECT_EQ(seq, par);
}

TEST(SketchRight, PhiloxBlockingIndependent) {
  const auto a = random_sparse<double>(50, 35, 0.15, 6);
  SketchConfig cfg;
  cfg.d = 20;
  cfg.backend = RngBackend::Philox;
  cfg.block_d = 20;
  std::vector<double> b1, b2;
  sketch_right_into(cfg, a, b1);
  cfg.block_d = 3;
  sketch_right_into(cfg, a, b2);
  for (std::size_t p = 0; p < b1.size(); ++p) {
    ASSERT_NEAR(b1[p], b2[p], 1e-12);
  }
}

TEST(SketchRight, NormalizePreservesColumnNormsApproximately) {
  // Rows of B approximate rows of A in norm after normalization.
  const auto a = random_sparse<double>(30, 400, 0.1, 8);
  SketchConfig cfg;
  cfg.d = 320;
  cfg.dist = Dist::PmOne;
  cfg.normalize = true;
  std::vector<double> b;
  sketch_right_into(cfg, a, b);
  for (index_t i = 0; i < 10; ++i) {
    double orig = 0.0, sk = 0.0;
    for (index_t k = 0; k < a.cols(); ++k) orig += a.at(i, k) * a.at(i, k);
    for (index_t c = 0; c < cfg.d; ++c) {
      const double v = b[static_cast<std::size_t>(i * cfg.d + c)];
      sk += v * v;
    }
    if (orig == 0.0) continue;
    EXPECT_NEAR(std::sqrt(sk / orig), 1.0, 0.35) << "row " << i;
  }
}

TEST(SketchRight, EmptyAndInvalidInputs) {
  CscMatrix<double> empty(10, 0);
  SketchConfig cfg;
  cfg.d = 4;
  std::vector<double> b;
  sketch_right_into(cfg, empty, b);
  EXPECT_EQ(b.size(), 40u);
  for (double v : b) EXPECT_EQ(v, 0.0);

  const auto a = random_sparse<double>(5, 5, 0.5, 1);
  cfg.block_d = 0;
  EXPECT_THROW(sketch_right_into(cfg, a, b), invalid_argument_error);
}

TEST(SketchRight, CheckInputsRejectsCorruptInput) {
  const auto clean = random_sparse<double>(60, 20, 0.2, 5);
  // A value fault (not structural): safe to execute unvalidated, so the test
  // can show the default path really skips the scan.
  const auto bad = faults::corrupt_csc(clean, faults::CscFault::NanPayload, 1);
  SketchConfig cfg;
  cfg.d = 16;
  std::vector<double> b;
  // Off by default: the hot path never validates.
  EXPECT_NO_THROW(sketch_right_into(cfg, bad, b));
  cfg.check_inputs = true;
  EXPECT_THROW(sketch_right_into(cfg, bad, b), validation_error);
  EXPECT_NO_THROW(sketch_right_into(cfg, clean, b));
}

}  // namespace
}  // namespace rsketch
