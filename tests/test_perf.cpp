// Tests for the telemetry subsystem (src/perf/): thread-local counter merge
// across OpenMP threads, the disabled-mode zero-cost path, JSON round-trips,
// the BENCH_*.json report schema, and perf_event graceful fallback.
#include <gtest/gtest.h>
#include <omp.h>

#include <cstdint>
#include <string>

#include "perf/json.hpp"
#include "perf/perf.hpp"
#include "perf/perf_events.hpp"
#include "perf/report.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "support/timer.hpp"

namespace rsketch {
namespace {

// Forces a known toggle state for one test and restores "off, zeroed" after,
// so the tests are order-independent within this binary.
struct PerfToggle {
  explicit PerfToggle(bool on) {
    perf::set_enabled(on);
    perf::reset();
  }
  ~PerfToggle() {
    perf::set_enabled(false);
    perf::reset();
  }
};

void busy_wait(double seconds) {
  Timer t;
  while (t.seconds() < seconds) {
  }
}

TEST(PerfCore, DisabledAddsAreDropped) {
  PerfToggle toggle(false);
  EXPECT_FALSE(perf::enabled());
  perf::add(perf::Counter::RngSamples, 123);
  perf::add_span("dropped", 1.0);
  {
    perf::Span span("also_dropped");
    busy_wait(1e-4);
  }
  perf::KernelCounters kc;
  kc.flops = 42;
  perf::add(kc);
  const auto snap = perf::snapshot();
  for (int c = 0; c < perf::kNumCounters; ++c) {
    EXPECT_EQ(snap.counters[static_cast<std::size_t>(c)], 0u)
        << perf::counter_name(static_cast<perf::Counter>(c));
  }
  EXPECT_TRUE(snap.spans.empty());
}

TEST(PerfCore, CounterMergeAcrossOmpThreads) {
  PerfToggle toggle(true);
  const int threads = 4;  // oversubscription is fine for a merge test
#pragma omp parallel num_threads(threads)
  {
    perf::add(perf::Counter::RngSamples, 1000);
    perf::add(perf::Counter::Flops, 10);
    perf::add_span("omp_unit", 0.25);
    perf::KernelCounters kc;
    kc.nnz_processed = 7;
    perf::add(kc);
  }
  const auto snap = perf::snapshot();
  const auto n = static_cast<std::uint64_t>(threads);
  EXPECT_EQ(snap.get(perf::Counter::RngSamples), 1000u * n);
  EXPECT_EQ(snap.get(perf::Counter::Flops), 10u * n);
  EXPECT_EQ(snap.get(perf::Counter::NnzProcessed), 7u * n);
  ASSERT_EQ(snap.spans.count("omp_unit"), 1u);
  EXPECT_EQ(snap.spans.at("omp_unit").count, n);
  EXPECT_DOUBLE_EQ(snap.spans.at("omp_unit").seconds, 0.25 * threads);
}

TEST(PerfCore, ResetZeroesEverything) {
  PerfToggle toggle(true);
  perf::add(perf::Counter::BytesMoved, 99);
  perf::add_span("gone", 1.0);
  perf::reset();
  const auto snap = perf::snapshot();
  EXPECT_EQ(snap.get(perf::Counter::BytesMoved), 0u);
  EXPECT_TRUE(snap.spans.empty());
}

// The latency histogram buckets by power-of-two nanoseconds, so percentile
// estimates are correct within one octave and exact at the envelope: the
// invariants min <= p50 <= p95 <= p99 <= max must hold for any input.
TEST(PerfHistogram, PercentilesTrackReferenceWithinOneOctave) {
  perf::SpanStat st;
  // 1..1000 µs uniformly: true q-quantile is q * 1e-3 seconds.
  for (int i = 1; i <= 1000; ++i) st.record(static_cast<double>(i) * 1e-6);
  EXPECT_EQ(st.count, 1000u);
  EXPECT_DOUBLE_EQ(st.min_seconds, 1e-6);
  EXPECT_DOUBLE_EQ(st.max_seconds, 1e-3);
  EXPECT_NEAR(st.mean_seconds(), 500.5e-6, 1e-9);
  for (const double q : {0.50, 0.95, 0.99}) {
    const double ref = q * 1e-3;
    const double est = st.percentile(q);
    // One-octave bucket resolution: the estimate brackets the true quantile
    // by at most a factor of two either way.
    EXPECT_GE(est, ref / 2.0) << "q=" << q;
    EXPECT_LE(est, ref * 2.0) << "q=" << q;
  }
  EXPECT_LE(st.percentile(0.50), st.percentile(0.95));
  EXPECT_LE(st.percentile(0.95), st.percentile(0.99));
  EXPECT_LE(st.percentile(0.99), st.max_seconds);
  EXPECT_GE(st.percentile(0.0), st.min_seconds);
}

TEST(PerfHistogram, SingleValueAndMergeAreExact) {
  perf::SpanStat a;
  a.record(3e-6);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), 3e-6);  // clamped to the exact envelope
  perf::SpanStat b;
  b.record(40e-6, 4);  // 4 executions bucketed at their 10 µs mean
  EXPECT_EQ(b.count, 4u);
  EXPECT_DOUBLE_EQ(b.min_seconds, 10e-6);
  a.merge(b);
  EXPECT_EQ(a.count, 5u);
  EXPECT_DOUBLE_EQ(a.min_seconds, 3e-6);
  EXPECT_DOUBLE_EQ(a.max_seconds, 10e-6);
  EXPECT_DOUBLE_EQ(a.seconds, 43e-6);
  EXPECT_LE(a.percentile(0.5), a.percentile(0.99));
}

// Span names are interned at construction, so a dynamically built name may
// die before snapshot() resolves it — the old footgun this design removes.
TEST(PerfCore, DynamicSpanNamesOutliveTheirBuffers) {
  PerfToggle toggle(true);
  {
    std::string dynamic = "dyn_span_" + std::to_string(7);
    perf::Span span(dynamic.c_str());
    dynamic.assign(64, 'x');  // clobber the original buffer
  }
  {
    std::string dynamic = "dyn_add_" + std::to_string(9);
    perf::add_span(dynamic, 0.5);
  }
  const auto snap = perf::snapshot();
  EXPECT_EQ(snap.spans.count("dyn_span_7"), 1u);
  ASSERT_EQ(snap.spans.count("dyn_add_9"), 1u);
  EXPECT_DOUBLE_EQ(snap.spans.at("dyn_add_9").seconds, 0.5);
}

TEST(PerfCore, ParallelBusyComputesImbalance) {
  PerfToggle toggle(true);
  const double busy[4] = {3.0, 1.0, 1.0, 1.0};  // mean 1.5, max 3.0
  perf::add_parallel_busy("busy_region", 4, busy);
  const double even[4] = {1.0, 1.0, 1.0, 1.0};
  perf::add_parallel_busy("busy_region", 4, even);
  const auto snap = perf::snapshot();
  ASSERT_EQ(snap.busy.count("busy_region"), 1u);
  const auto& bs = snap.busy.at("busy_region");
  EXPECT_EQ(bs.calls, 2u);
  EXPECT_EQ(bs.thread_slots, 8u);
  EXPECT_DOUBLE_EQ(bs.busy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(bs.max_imbalance, 2.0);  // worst call, not the average
  EXPECT_DOUBLE_EQ(bs.mean_thread_busy(), 1.25);
}

TEST(PerfCore, SpanRecordsElapsedWallClock) {
  PerfToggle toggle(true);
  {
    perf::Span span("timed_region");
    busy_wait(5e-3);
  }
  const auto snap = perf::snapshot();
  ASSERT_EQ(snap.spans.count("timed_region"), 1u);
  EXPECT_EQ(snap.spans.at("timed_region").count, 1u);
  EXPECT_GE(snap.spans.at("timed_region").seconds, 4e-3);
}

// Instrumented runs collect per-sketch counters even with the global toggle
// off (Table III's code path), and the formulas must agree exactly with the
// sampler's own fill accounting: Alg. 3 regenerates d entries of S per
// nonzero, Alg. 4 one column of S per nonempty row per row-block.
TEST(PerfKernels, KjiCountersMatchSamplerAccounting) {
  PerfToggle toggle(false);
  const auto a = random_sparse<double>(300, 80, 0.05, 7);
  SketchConfig cfg;
  cfg.d = 96;
  cfg.block_d = 40;
  cfg.block_n = 17;
  cfg.kernel = KernelVariant::Kji;
  cfg.parallel = ParallelOver::Sequential;
  DenseMatrix<double> a_hat(cfg.d, a.cols());
  const auto stats = sketch_into(cfg, a, a_hat, /*instrument=*/true);

  const auto nnz = static_cast<std::uint64_t>(a.nnz());
  const auto d = static_cast<std::uint64_t>(cfg.d);
  // A is re-streamed once per block row of S, so nnz_processed counts
  // traffic (nnz x ceil(d / b_d)), not unique entries — that re-read factor
  // is exactly what the intensity model charges for.
  const auto d_blocks = static_cast<std::uint64_t>(ceil_div(cfg.d, cfg.block_d));
  EXPECT_EQ(stats.counters.rng_samples, stats.samples_generated);
  EXPECT_EQ(stats.counters.rng_samples, nnz * d);
  EXPECT_EQ(stats.counters.nnz_processed, nnz * d_blocks);
  EXPECT_EQ(stats.counters.flops, 2 * nnz * d);
  EXPECT_GT(stats.counters.kernel_blocks, 1u);  // blocks actually tiled
  EXPECT_GT(stats.measured_intensity(), 0.0);
  EXPECT_LT(stats.measured_intensity(), 2.0);  // flops / (elems + samples) < 2

  // Global catalog stays untouched: the toggle is off.
  EXPECT_EQ(perf::snapshot().get(perf::Counter::RngSamples), 0u);
}

TEST(PerfKernels, JkiReusesSamplesAcrossRows) {
  PerfToggle toggle(false);
  const auto a = random_sparse<double>(300, 80, 0.05, 11);
  SketchConfig cfg;
  cfg.d = 96;
  cfg.block_d = 40;
  cfg.block_n = 17;
  cfg.kernel = KernelVariant::Jki;
  cfg.parallel = ParallelOver::Sequential;
  DenseMatrix<double> a_hat(cfg.d, a.cols());
  const auto stats = sketch_into(cfg, a, a_hat, /*instrument=*/true);

  const auto nnz = static_cast<std::uint64_t>(a.nnz());
  const auto d = static_cast<std::uint64_t>(cfg.d);
  const auto d_blocks = static_cast<std::uint64_t>(ceil_div(cfg.d, cfg.block_d));
  EXPECT_EQ(stats.counters.rng_samples, stats.samples_generated);
  // The whole point of Algorithm 4: strictly fewer samples than Alg. 3
  // whenever any row holds more than one nonzero per column-block.
  EXPECT_LT(stats.counters.rng_samples, nnz * d);
  EXPECT_EQ(stats.counters.nnz_processed, nnz * d_blocks);
  EXPECT_EQ(stats.counters.flops, 2 * nnz * d);
}

TEST(PerfKernels, EnabledTogglePopulatesGlobalCatalog) {
  PerfToggle toggle(true);
  const auto a = random_sparse<double>(200, 60, 0.05, 3);
  SketchConfig cfg;
  cfg.d = 64;
  cfg.kernel = KernelVariant::Kji;
  cfg.parallel = ParallelOver::Sequential;
  DenseMatrix<double> a_hat(cfg.d, a.cols());
  const auto stats = sketch_into(cfg, a, a_hat);  // no instrument flag needed

  const auto snap = perf::snapshot();
  EXPECT_EQ(snap.get(perf::Counter::RngSamples), stats.counters.rng_samples);
  EXPECT_EQ(snap.get(perf::Counter::NnzProcessed),
            static_cast<std::uint64_t>(a.nnz()));
  EXPECT_EQ(snap.get(perf::Counter::SketchCalls), 1u);
  EXPECT_EQ(snap.spans.count("sketch_blocked_kji"), 1u);
}

TEST(PerfJson, DumpParseRoundTrip) {
  using perf::Json;
  Json doc = Json::object();
  doc["name"] = Json("bench \"quoted\" \\ and\nnewline");
  doc["big_int"] = Json(static_cast<std::uint64_t>(1) << 53);
  doc["negative"] = Json(-42);
  doc["pi"] = Json(3.14159265358979);
  doc["flag"] = Json(true);
  doc["nothing"] = Json();
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json("two"));
  Json nested = Json::object();
  nested["k"] = Json(7);
  arr.push_back(nested);
  doc["items"] = arr;

  const std::string text = doc.dump(2);
  const Json back = Json::parse(text);
  EXPECT_EQ(back.find("name")->as_string(), doc.find("name")->as_string());
  EXPECT_EQ(back.find("big_int")->as_int(),
            static_cast<long long>(1) << 53);
  EXPECT_EQ(back.find("negative")->as_int(), -42);
  EXPECT_DOUBLE_EQ(back.find("pi")->as_double(), 3.14159265358979);
  EXPECT_TRUE(back.find("flag")->as_bool());
  EXPECT_TRUE(back.find("nothing")->is_null());
  ASSERT_EQ(back.find("items")->size(), 3u);
  EXPECT_EQ(back.find("items")->at(2).find("k")->as_int(), 7);
  // Serialization is stable: a second trip reproduces the text exactly.
  EXPECT_EQ(Json::parse(text).dump(2), text);
}

TEST(PerfJson, ParseRejectsMalformedInput) {
  using perf::Json;
  EXPECT_THROW(Json::parse("{"), io_error);
  EXPECT_THROW(Json::parse("[1, 2,,]"), io_error);
  EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), io_error);
  EXPECT_THROW(Json::parse("\"unterminated"), io_error);
  // Unicode escapes decode to UTF-8.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(PerfReport, BuildPassesSchemaValidation) {
  PerfToggle toggle(true);
  const auto a = random_sparse<double>(150, 40, 0.08, 5);
  SketchConfig cfg;
  cfg.d = 48;
  cfg.parallel = ParallelOver::Sequential;
  DenseMatrix<double> a_hat(cfg.d, a.cols());
  const auto stats = sketch_into(cfg, a, a_hat, /*instrument=*/true);

  perf::ReportBuilder report("unit_test");
  EXPECT_TRUE(report.active());
  report.config("matrix", "random_sparse");
  report.config("d", static_cast<long long>(cfg.d));
  report.timing("sketch", stats.total_seconds, stats);
  report.counter("extra", 9);
  report.derived("speedup", 1.5);

  const perf::Json doc = report.build();
  const auto errs = perf::validate_bench_report(doc);
  for (const auto& e : errs) ADD_FAILURE() << e;
  EXPECT_TRUE(errs.empty());

  // The document survives a serialize/parse trip and still validates —
  // exactly what the validate_bench_json smoke gate exercises.
  const perf::Json back = perf::Json::parse(doc.dump(2));
  EXPECT_TRUE(perf::validate_bench_report(back).empty());
  EXPECT_EQ(back.find("counters")->find("rng_samples")->as_int(),
            static_cast<long long>(stats.counters.rng_samples));
  EXPECT_EQ(back.find("name")->as_string(), "unit_test");
}

TEST(PerfReport, InactiveBuilderIsInert) {
  PerfToggle toggle(false);
  perf::ReportBuilder report("should_not_exist");
  EXPECT_FALSE(report.active());
  report.config("k", "v");
  report.timing("t", 1.0);
  EXPECT_EQ(report.write(), "");
}

TEST(PerfReport, ValidatorFlagsMissingSections) {
  const auto errs = perf::validate_bench_report(perf::Json::object());
  EXPECT_FALSE(errs.empty());
  perf::Json half = perf::Json::object();
  half["schema_version"] = perf::Json(1);
  half["name"] = perf::Json("x");
  EXPECT_FALSE(perf::validate_bench_report(half).empty());
  half["schema_version"] = perf::Json(3);  // unknown version
  EXPECT_FALSE(perf::validate_bench_report(half).empty());
}

// schema_version 2 reports carry the latency summary per span and the
// thread-imbalance fields; the validator enforces their internal ordering.
TEST(PerfReport, SchemaV2SpansCarryConsistentHistograms) {
  PerfToggle toggle(true);
  for (int i = 0; i < 50; ++i) {
    perf::add_span("v2_span", 1e-5 * (1 + i % 7));
  }
  const double busy[2] = {2.0, 1.0};
  perf::add_parallel_busy("v2_region", 2, busy);

  perf::ReportBuilder report("v2_unit");
  report.timing("t", 0.001);
  perf::Json doc = report.build();
  EXPECT_EQ(doc.find("schema_version")->as_int(), 2);
  EXPECT_TRUE(perf::validate_bench_report(doc).empty());

  const perf::Json* span = doc.find("spans")->find("v2_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->find("count")->as_int(), 50);
  const double p50 = span->find("p50_seconds")->as_double();
  const double p95 = span->find("p95_seconds")->as_double();
  const double p99 = span->find("p99_seconds")->as_double();
  EXPECT_GE(p50, span->find("min_seconds")->as_double());
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, span->find("max_seconds")->as_double());

  const perf::Json* region = doc.find("spans")->find("v2_region");
  ASSERT_NE(region, nullptr);
  EXPECT_DOUBLE_EQ(region->find("thread_imbalance")->as_double(), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(doc.find("derived")->find("thread_imbalance")->as_double(),
                   4.0 / 3.0);

  // A percentile inversion or min > max must be rejected, not emitted.
  perf::Json broken = perf::Json::parse(doc.dump(2));
  broken["spans"]["v2_span"]["p50_seconds"] = perf::Json(1.0);
  EXPECT_FALSE(perf::validate_bench_report(broken).empty());
  perf::Json broken2 = perf::Json::parse(doc.dump(2));
  broken2["spans"]["v2_span"]["min_seconds"] = perf::Json(5.0);
  EXPECT_FALSE(perf::validate_bench_report(broken2).empty());
  perf::Json broken3 = perf::Json::parse(doc.dump(2));
  broken3["derived"]["thread_imbalance"] = perf::Json(0.5);
  EXPECT_FALSE(perf::validate_bench_report(broken3).empty());
}

// Legacy schema_version 1 documents ({count, seconds} spans) stay valid, so
// archived reports and old baselines keep passing the smoke gate.
TEST(PerfReport, SchemaV1DocumentsStillValidate) {
  PerfToggle toggle(true);
  perf::ReportBuilder report("v1_unit");
  report.timing("t", 0.5);
  perf::Json doc = report.build();
  doc["schema_version"] = perf::Json(1);
  // Strip the v2 span fields to mimic a genuine v1 document.
  perf::Json spans = perf::Json::object();
  doc["spans"] = spans;
  EXPECT_TRUE(perf::validate_bench_report(doc).empty());
}

// The hardware backend must be internally consistent whether or not the
// kernel grants perf_event access (containers typically deny it): available()
// true => a started/stopped group yields a valid reading with nonzero cycles;
// false => read() reports invalid and error() says why. Never crashes.
TEST(PerfEvents, GracefulFallbackIsConsistent) {
  perf::PerfEventGroup group;
  group.start();
  busy_wait(2e-3);
  group.stop();
  const perf::HwCounters hw = group.read();
  EXPECT_EQ(hw.valid, group.available());
  if (group.available()) {
    EXPECT_GT(hw.cycles, 0u);
    EXPECT_GT(hw.instructions, 0u);
    EXPECT_GT(hw.ipc(), 0.0);
    EXPECT_GT(hw.multiplex_scale, 0.0);
  } else {
    EXPECT_FALSE(group.error().empty());
    EXPECT_EQ(hw.cycles, 0u);
  }
  // Repeated start/stop cycles are safe in either mode.
  group.start();
  group.stop();
  (void)group.read();
}

}  // namespace
}  // namespace rsketch
