// Fault-injection suite: every deliberately corrupted input must end in a
// typed exception or a recovery — never a wrong answer, never a crash.
// Covers the CSC corruptors against sketch(), the Matrix Market stream
// corruptors against the reader, the allocation-failure hook, and the
// arithmetic-overflow guards.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <new>
#include <sstream>

#include "dense/dense_matrix.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/validate.hpp"
#include "support/aligned_buffer.hpp"
#include "testdata/faults.hpp"

namespace rsketch {
namespace {

CscMatrix<double> base_matrix() {
  return random_sparse<double>(50, 32, 0.15, 77);
}

SketchConfig checked_config(index_t n) {
  SketchConfig cfg;
  cfg.d = 2 * n;
  cfg.seed = 42;
  cfg.check_inputs = true;
  return cfg;
}

// --- CSC corruptions against the sketch entry point -------------------------

TEST(Faults, SketchRejectsEveryCorruptionWhenChecksOn) {
  const auto a = base_matrix();
  for (faults::CscFault fault : faults::all_csc_faults()) {
    const auto bad = faults::corrupt_csc(a, fault, 5);
    DenseMatrix<double> out;
    EXPECT_THROW(sketch_into(checked_config(a.cols()), bad, out),
                 validation_error)
        << "fault " << faults::to_string(fault) << " was not rejected";
  }
}

TEST(Faults, CorruptionIsDeterministicInTheSeed) {
  const auto a = base_matrix();
  for (faults::CscFault fault : faults::all_csc_faults()) {
    const auto x = faults::corrupt_csc(a, fault, 123);
    const auto y = faults::corrupt_csc(a, fault, 123);
    EXPECT_EQ(x.col_ptr(), y.col_ptr());
    EXPECT_EQ(x.row_idx(), y.row_idx());
    // Values compare bitwise-identical except NaN != NaN; compare the
    // reports instead, which count non-finite payloads.
    EXPECT_EQ(validate_csc(x).findings_total, validate_csc(y).findings_total);
  }
}

TEST(Faults, ValueFaultsPassWithChecksOffAndPropagateNonFinite) {
  // With checks off, a NaN payload is the caller's problem — but it must
  // surface as NaN in the sketch (garbage in, garbage out), never abort.
  const auto a = base_matrix();
  const auto bad = faults::corrupt_csc(a, faults::CscFault::NanPayload, 5);
  SketchConfig cfg = checked_config(a.cols());
  cfg.check_inputs = false;
  DenseMatrix<double> out;
  EXPECT_NO_THROW(sketch_into(cfg, bad, out));
  index_t non_finite = 0;
  for (index_t j = 0; j < out.cols(); ++j) {
    non_finite += count_non_finite(out.col(j), out.rows());
  }
  EXPECT_GT(non_finite, 0);
}

// --- Matrix Market stream corruptions ---------------------------------------

std::string sample_mm() {
  const auto a = base_matrix();
  std::ostringstream os;
  write_matrix_market(os, a);
  return os.str();
}

TEST(Faults, ToleratedStreamFaultsStillParse) {
  const std::string mm = sample_mm();
  const auto reference = [&] {
    std::istringstream is(mm);
    return read_matrix_market<double>(is);
  }();
  for (faults::StreamFault fault : faults::all_stream_faults()) {
    if (!faults::is_tolerated(fault)) continue;
    const std::string mangled = faults::corrupt_stream(mm, fault, 3);
    std::istringstream is(mangled);
    CscMatrix<double> got;
    ASSERT_NO_THROW(got = read_matrix_market<double>(is))
        << faults::to_string(fault);
    EXPECT_EQ(got.nnz(), reference.nnz()) << faults::to_string(fault);
    EXPECT_EQ(got.col_ptr(), reference.col_ptr()) << faults::to_string(fault);
  }
}

TEST(Faults, RejectedStreamFaultsThrowIoError) {
  const std::string mm = sample_mm();
  for (faults::StreamFault fault : faults::all_stream_faults()) {
    if (faults::is_tolerated(fault)) continue;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const std::string mangled = faults::corrupt_stream(mm, fault, seed);
      std::istringstream is(mangled);
      EXPECT_THROW(read_matrix_market<double>(is), io_error)
          << faults::to_string(fault) << " seed " << seed;
    }
  }
}

// --- Allocation-failure hook ------------------------------------------------

TEST(Faults, ArmedAllocationFailureThrowsBadAllocAndDisarms) {
  faults::ScopedAllocationFailure arm(1);
  EXPECT_TRUE(faults::allocation_failure_armed());
  EXPECT_THROW(AlignedBuffer<double>(16), std::bad_alloc);
  EXPECT_FALSE(faults::allocation_failure_armed());
  // Subsequent allocations succeed: the hook fired exactly once.
  EXPECT_NO_THROW(AlignedBuffer<double>(16));
}

TEST(Faults, CountdownSkipsEarlierAllocations) {
  faults::ScopedAllocationFailure arm(3);
  EXPECT_NO_THROW(AlignedBuffer<double>(8));
  EXPECT_NO_THROW(AlignedBuffer<double>(8));
  EXPECT_THROW(AlignedBuffer<double>(8), std::bad_alloc);
}

TEST(Faults, AllocationFailureLeavesBufferEmpty) {
  AlignedBuffer<double> buf;
  {
    faults::ScopedAllocationFailure arm(1);
    EXPECT_THROW(buf.reset(32), std::bad_alloc);
  }
  // The strong-ish guarantee: a failed reset leaves a released buffer, not a
  // size > 0 shell around a null pointer.
  EXPECT_EQ(buf.size(), 0);
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_NO_THROW(buf.reset(32));
  EXPECT_EQ(buf.size(), 32);
}

TEST(Faults, MidSketchAllocationFailurePropagatesCleanly) {
  // The sketch allocates its output panel; an allocation failure mid-call
  // must surface as bad_alloc, not a crash or a half-written result.
  const auto a = base_matrix();
  DenseMatrix<double> out;
  faults::ScopedAllocationFailure arm(1);
  EXPECT_THROW(out.reset(2 * a.cols(), a.cols()), std::bad_alloc);
}

// --- Overflow guards --------------------------------------------------------

TEST(Faults, AlignedBufferSizeOverflowIsRejected) {
  constexpr index_t kHuge = std::numeric_limits<index_t>::max() / 2;
  EXPECT_THROW(AlignedBuffer<double>{kHuge}, invalid_argument_error);
}

TEST(Faults, DenseMatrixProductOverflowIsRejected) {
  constexpr index_t kBig = index_t{1} << 32;  // kBig^2 wraps int64
  DenseMatrix<double> m;
  EXPECT_THROW(m.reset(kBig, kBig), invalid_argument_error);
}

}  // namespace
}  // namespace rsketch
