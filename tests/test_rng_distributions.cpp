// Tests for SketchSampler: distribution shapes, moments, determinism, and
// the reproducibility contracts of the Xoshiro (block-checkpoint) and Philox
// (per-entry) backends.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "rng/distributions.hpp"

namespace rsketch {
namespace {

using Combo = std::tuple<Dist, RngBackend>;

class SamplerMoments : public ::testing::TestWithParam<Combo> {};

TEST_P(SamplerMoments, MeanAndSecondMomentMatchTheory) {
  const auto [dist, backend] = GetParam();
  SketchSampler<float> s(321, dist, backend);
  const index_t n = 4000;
  std::vector<float> v(static_cast<std::size_t>(n));
  double sum = 0.0, sum2 = 0.0;
  const int cols = 25;
  for (int j = 0; j < cols; ++j) {
    s.fill(0, j, v.data(), n);
    for (float x : v) {
      sum += x;
      sum2 += static_cast<double>(x) * x;
    }
  }
  const double total = static_cast<double>(n) * cols;
  const double mean = sum / total;
  const double m2 = sum2 / total;
  const double expected_m2 = static_cast<double>(dist_second_moment<float>(dist));
  // Junk is a deterministic ablation filler; only require boundedness there.
  if (dist == Dist::Junk) {
    EXPECT_LT(std::fabs(mean), 1.0);
    return;
  }
  const double sd = std::sqrt(expected_m2);
  EXPECT_LT(std::fabs(mean), 4.0 * sd / std::sqrt(total)) << "mean off";
  EXPECT_NEAR(m2 / expected_m2, 1.0, 0.05) << "second moment off";
}

TEST_P(SamplerMoments, DeterministicPerCheckpoint) {
  const auto [dist, backend] = GetParam();
  SketchSampler<float> a(77, dist, backend), b(77, dist, backend);
  std::vector<float> va(257), vb(257);
  a.fill(1000, 42, va.data(), 257);
  // b draws other blocks first; checkpointed fill must still agree.
  b.fill(0, 0, vb.data(), 257);
  b.fill(1000, 42, vb.data(), 257);
  EXPECT_EQ(va, vb);
}

TEST_P(SamplerMoments, CountsSamples) {
  const auto [dist, backend] = GetParam();
  SketchSampler<float> s(1, dist, backend);
  std::vector<float> v(100);
  s.fill(0, 0, v.data(), 100);
  s.fill(0, 1, v.data(), 50);
  EXPECT_EQ(s.samples_generated(), 150u);
  s.reset_counter();
  EXPECT_EQ(s.samples_generated(), 0u);
  s.fill(0, 2, v.data(), 0);
  EXPECT_EQ(s.samples_generated(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SamplerMoments,
    ::testing::Combine(::testing::Values(Dist::PmOne, Dist::Uniform,
                                         Dist::UniformScaled, Dist::Gaussian,
                                         Dist::Junk),
                       ::testing::Values(RngBackend::Xoshiro,
                                         RngBackend::XoshiroBatch,
                                         RngBackend::Philox)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_" +
                         to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PmOne, ValuesAreExactlyPlusMinusOne) {
  for (RngBackend b : {RngBackend::Xoshiro, RngBackend::XoshiroBatch,
                       RngBackend::Philox}) {
    SketchSampler<float> s(5, Dist::PmOne, b);
    std::vector<float> v(1001);
    s.fill(3, 7, v.data(), 1001);
    int plus = 0;
    for (float x : v) {
      ASSERT_TRUE(x == 1.0f || x == -1.0f);
      plus += (x == 1.0f);
    }
    // Roughly balanced signs.
    EXPECT_NEAR(static_cast<double>(plus) / 1001.0, 0.5, 0.08);
  }
}

TEST(Uniform, ValuesInOpenInterval) {
  SketchSampler<float> s(5, Dist::Uniform, RngBackend::XoshiroBatch);
  std::vector<float> v(4096);
  s.fill(0, 0, v.data(), 4096);
  for (float x : v) {
    EXPECT_GE(x, -1.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(ScalingTrick, RawIntegersTimesFactorEqualUniform) {
  // The UniformScaled stream must be exactly the Uniform stream divided by
  // the 2^-31 factor (same underlying bits) — this is what makes
  // (Sf)(A/f) = SA exact.
  SketchSampler<float> u(99, Dist::Uniform, RngBackend::XoshiroBatch);
  SketchSampler<float> r(99, Dist::UniformScaled, RngBackend::XoshiroBatch);
  std::vector<float> vu(512), vr(512);
  u.fill(64, 3, vu.data(), 512);
  r.fill(64, 3, vr.data(), 512);
  for (int i = 0; i < 512; ++i) {
    EXPECT_FLOAT_EQ(vu[i],
                    vr[i] * static_cast<float>(kScalingTrickFactor))
        << i;
  }
}

TEST(Gaussian, RoughNormality) {
  SketchSampler<double> s(2024, Dist::Gaussian, RngBackend::XoshiroBatch);
  const index_t n = 60000;
  std::vector<double> v(static_cast<std::size_t>(n));
  s.fill(0, 0, v.data(), n);
  double m = 0, m2 = 0, m4 = 0;
  index_t within1 = 0;
  for (double x : v) {
    m += x;
    m2 += x * x;
    m4 += x * x * x * x;
    within1 += std::fabs(x) < 1.0;
  }
  m /= n;
  m2 /= n;
  m4 /= n;
  EXPECT_NEAR(m, 0.0, 0.02);
  EXPECT_NEAR(m2, 1.0, 0.03);
  EXPECT_NEAR(m4 / (m2 * m2), 3.0, 0.15);  // Gaussian kurtosis
  EXPECT_NEAR(static_cast<double>(within1) / n, 0.6827, 0.01);
}

TEST(Junk, BoundedAndCheap) {
  SketchSampler<float> s(1, Dist::Junk, RngBackend::XoshiroBatch);
  std::vector<float> v(3000);
  s.fill(9, 17, v.data(), 3000);
  for (float x : v) EXPECT_LT(std::fabs(x), 1.0f);
  // Junk is deterministic in (seed, r, j).
  std::vector<float> w(3000);
  s.fill(9, 17, w.data(), 3000);
  EXPECT_EQ(v, w);
}

TEST(PhiloxBackend, BlockingIndependentPerEntry) {
  // Splitting a column fill at any point must reproduce the same values —
  // the property that makes Philox sketches independent of b_d.
  for (Dist dist : {Dist::PmOne, Dist::Uniform, Dist::UniformScaled}) {
    SketchSampler<float> s(12, dist, RngBackend::Philox);
    std::vector<float> whole(200), split(200);
    s.fill(0, 9, whole.data(), 200);
    s.fill(0, 9, split.data(), 81);
    s.fill(81, 9, split.data() + 81, 119);
    EXPECT_EQ(whole, split) << to_string(dist);
  }
}

TEST(XoshiroBackend, BlockDependentByDesign) {
  // Documented behaviour: Xoshiro checkpoints are per-block, so splitting a
  // fill changes the values (the paper accepts this, §IV-B2).
  SketchSampler<float> s(12, Dist::Uniform, RngBackend::XoshiroBatch);
  std::vector<float> whole(200), split(200);
  s.fill(0, 9, whole.data(), 200);
  s.fill(0, 9, split.data(), 81);
  s.fill(81, 9, split.data() + 81, 119);
  EXPECT_NE(whole, split);
}

TEST(Sampler, DoubleSpecializationWorks) {
  SketchSampler<double> s(44, Dist::Uniform, RngBackend::Xoshiro);
  std::vector<double> v(101);
  s.fill(0, 0, v.data(), 101);
  for (double x : v) {
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace rsketch
