// Tests for the Philox4x32-10 counter-based generator, including the
// Random123 known-answer vectors and the per-entry addressing contract that
// makes Philox-backed sketches blocking-independent.
#include <gtest/gtest.h>

#include <vector>

#include "rng/philox.hpp"

namespace rsketch {
namespace {

TEST(Philox, KnownAnswerZero) {
  // Zero counter/key regression vector. The implementation is pinned to the
  // Random123 algorithm by the independent all-ones KAT below; this freezes
  // the zero-input output so any refactor that changes the stream fails.
  const auto out = Philox4x32::apply({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627E8D5u);
  EXPECT_EQ(out[1], 0xE169C58Du);
  EXPECT_EQ(out[2], 0xBC57AC4Cu);
  EXPECT_EQ(out[3], 0x9B00DBD8u);
}

TEST(Philox, KnownAnswerAllOnes) {
  // Random123 KAT: all-ff counter and key.
  const auto out = Philox4x32::apply(
      {0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu},
      {0xFFFFFFFFu, 0xFFFFFFFFu});
  EXPECT_EQ(out[0], 0x408F276Du);
  EXPECT_EQ(out[1], 0x41C83B0Eu);
  EXPECT_EQ(out[2], 0xA20BC7C6u);
  EXPECT_EQ(out[3], 0x6D5451FDu);
}

TEST(Philox, Deterministic) {
  const auto a = Philox4x32::apply({1, 2, 3, 4}, {5, 6});
  const auto b = Philox4x32::apply({1, 2, 3, 4}, {5, 6});
  EXPECT_EQ(a, b);
}

TEST(Philox, CounterSensitivity) {
  const auto a = Philox4x32::apply({1, 2, 3, 4}, {5, 6});
  const auto b = Philox4x32::apply({2, 2, 3, 4}, {5, 6});
  int same = 0;
  for (int i = 0; i < 4; ++i) same += (a[i] == b[i]);
  EXPECT_EQ(same, 0);
}

TEST(Philox, KeySensitivity) {
  const auto a = Philox4x32::apply({1, 2, 3, 4}, {5, 6});
  const auto b = Philox4x32::apply({1, 2, 3, 4}, {5, 7});
  int same = 0;
  for (int i = 0; i < 4; ++i) same += (a[i] == b[i]);
  EXPECT_EQ(same, 0);
}

TEST(PhiloxStream, AtMatchesFill) {
  PhiloxStream s(999);
  std::vector<std::uint32_t> buf(64);
  s.fill_u32(/*row0=*/0, /*col=*/5, buf.data(), 64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(buf[i], s.at(i, 5)) << "row " << i;
  }
}

TEST(PhiloxStream, UnalignedFillMatchesAt) {
  // Starting mid-quadruple must reproduce the same per-entry values.
  PhiloxStream s(999);
  for (std::uint64_t row0 : {1ull, 2ull, 3ull, 5ull, 17ull}) {
    std::vector<std::uint32_t> buf(23);
    s.fill_u32(row0, 7, buf.data(), 23);
    for (std::uint64_t i = 0; i < 23; ++i) {
      EXPECT_EQ(buf[i], s.at(row0 + i, 7)) << "row0=" << row0 << " i=" << i;
    }
  }
}

TEST(PhiloxStream, SplitFillEqualsWholeFill) {
  // Per-entry addressing: filling [0,100) equals filling [0,37)+[37,100).
  PhiloxStream s(31337);
  std::vector<std::uint32_t> whole(100), split(100);
  s.fill_u32(0, 11, whole.data(), 100);
  s.fill_u32(0, 11, split.data(), 37);
  s.fill_u32(37, 11, split.data() + 37, 63);
  EXPECT_EQ(whole, split);
}

TEST(PhiloxStream, ColumnsIndependent) {
  PhiloxStream s(1);
  std::vector<std::uint32_t> a(32), b(32);
  s.fill_u32(0, 0, a.data(), 32);
  s.fill_u32(0, 1, b.data(), 32);
  int same = 0;
  for (int i = 0; i < 32; ++i) same += (a[i] == b[i]);
  EXPECT_LE(same, 1);
}

TEST(PhiloxStream, SeedChangesStream) {
  PhiloxStream s1(1), s2(2);
  EXPECT_NE(s1.at(0, 0), s2.at(0, 0));
}

TEST(PhiloxStream, BitBalance) {
  PhiloxStream s(404);
  std::vector<std::uint32_t> buf(40000);
  s.fill_u32(0, 3, buf.data(), static_cast<index_t>(buf.size()));
  std::int64_t ones = 0;
  for (std::uint32_t w : buf) ones += __builtin_popcount(w);
  EXPECT_NEAR(static_cast<double>(ones) / (32.0 * buf.size()), 0.5, 0.01);
}

}  // namespace
}  // namespace rsketch
