// Correctness of the two compute kernels (Algorithms 3 and 4) against a
// dense reference product with the explicitly materialized S.
#include <gtest/gtest.h>

#include <vector>

#include "sketch/kernel_jki.hpp"
#include "sketch/kernel_kji.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

/// Dense reference: Â = S·A with S materialized under the same config.
DenseMatrix<double> reference_product(const SketchConfig& cfg,
                                      const CscMatrix<double>& a) {
  const DenseMatrix<double> s = materialize_S<double>(cfg, a.rows());
  DenseMatrix<double> out(cfg.d, a.cols());
  for (index_t k = 0; k < a.cols(); ++k) {
    for (index_t p = a.col_ptr()[k]; p < a.col_ptr()[k + 1]; ++p) {
      const index_t j = a.row_idx()[p];
      const double v = a.values()[p];
      for (index_t i = 0; i < cfg.d; ++i) out(i, k) += v * s(i, j);
    }
  }
  return out;
}

SketchConfig base_config(index_t d) {
  SketchConfig cfg;
  cfg.d = d;
  cfg.seed = 2468;
  cfg.dist = Dist::Uniform;
  cfg.backend = RngBackend::XoshiroBatch;
  cfg.block_d = d;  // single block: kernel tests drive one block pair
  cfg.block_n = 1000;
  cfg.parallel = ParallelOver::Sequential;
  return cfg;
}

TEST(KernelKji, SingleBlockMatchesReference) {
  const auto a = random_sparse<double>(60, 25, 0.15, 11);
  const auto cfg = base_config(40);
  const auto expect = reference_product(cfg, a);

  DenseMatrix<double> got(40, 25);
  SketchSampler<double> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<double> v(40);
  kernel_kji(got, 0, 40, 0, 25, a, sampler, v.data());
  EXPECT_LT(got.max_abs_diff(expect), 1e-12);
}

TEST(KernelKji, PartialColumnBlock) {
  const auto a = random_sparse<double>(60, 25, 0.15, 11);
  const auto cfg = base_config(40);
  const auto expect = reference_product(cfg, a);

  DenseMatrix<double> got(40, 25);
  SketchSampler<double> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<double> v(40);
  // Process columns [5, 17) only; the rest must stay zero.
  kernel_kji(got, 0, 40, 5, 12, a, sampler, v.data());
  for (index_t k = 5; k < 17; ++k) {
    for (index_t i = 0; i < 40; ++i) {
      EXPECT_NEAR(got(i, k), expect(i, k), 1e-12);
    }
  }
  for (index_t k : {0, 1, 17, 24}) {
    for (index_t i = 0; i < 40; ++i) EXPECT_EQ(got(i, k), 0.0);
  }
}

TEST(KernelKji, RowBlockOffsetUsesCheckpoint) {
  // Processing row block [16, 40) must reproduce exactly those rows of the
  // full product computed with b_d = 16 (checkpoints every 16 rows).
  const auto a = random_sparse<double>(30, 10, 0.3, 13);
  auto cfg = base_config(40);
  cfg.block_d = 16;
  const auto expect = reference_product(cfg, a);

  DenseMatrix<double> got(40, 10);
  SketchSampler<double> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<double> v(16);
  kernel_kji(got, 16, 16, 0, 10, a, sampler, v.data());
  for (index_t k = 0; k < 10; ++k) {
    for (index_t i = 16; i < 32; ++i) {
      EXPECT_NEAR(got(i, k), expect(i, k), 1e-12);
    }
  }
}

TEST(KernelKji, InstrumentationAccumulatesSampleTime) {
  const auto a = random_sparse<double>(100, 40, 0.2, 17);
  const auto cfg = base_config(64);
  DenseMatrix<double> got(64, 40);
  SketchSampler<double> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<double> v(64);
  AccumTimer timer;
  kernel_kji(got, 0, 64, 0, 40, a, sampler, v.data(), &timer);
  EXPECT_GT(timer.seconds(), 0.0);
  EXPECT_EQ(sampler.samples_generated(),
            64u * static_cast<std::uint64_t>(a.nnz()));
}

TEST(KernelJki, SingleBlockMatchesReference) {
  const auto a = random_sparse<double>(60, 25, 0.15, 11);
  const auto cfg = base_config(40);
  const auto expect = reference_product(cfg, a);

  const auto ab = BlockedCsr<double>::from_csc(a, 25);  // one vertical block
  DenseMatrix<double> got(40, 25);
  SketchSampler<double> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<double> v(40);
  kernel_jki(got, 0, 40, ab.block(0), sampler, v.data());
  EXPECT_LT(got.max_abs_diff(expect), 1e-12);
}

TEST(KernelJki, MultipleVerticalBlocksMatchReference) {
  const auto a = random_sparse<double>(80, 33, 0.1, 19);
  const auto cfg = base_config(48);
  const auto expect = reference_product(cfg, a);

  const auto ab = BlockedCsr<double>::from_csc(a, 7);
  DenseMatrix<double> got(48, 33);
  SketchSampler<double> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<double> v(48);
  for (index_t b = 0; b < ab.num_blocks(); ++b) {
    kernel_jki(got, 0, 48, ab.block(b), sampler, v.data());
  }
  EXPECT_LT(got.max_abs_diff(expect), 1e-12);
}

TEST(KernelJki, SkipsEmptyRowsEntirely) {
  // Abnormal_A-style input: only every 8th row nonzero. The jki kernel must
  // generate samples only for nonempty rows.
  const auto a = abnormal_a<double>(64, 10, 8, 23);
  const auto ab = BlockedCsr<double>::from_csc(a, 10);
  const auto cfg = base_config(32);
  DenseMatrix<double> got(32, 10);
  SketchSampler<double> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<double> v(32);
  kernel_jki(got, 0, 32, ab.block(0), sampler, v.data());
  EXPECT_EQ(sampler.samples_generated(), 32u * 8u);  // 8 nonempty rows
}

TEST(KernelsAgree, KjiEqualsJkiForMatchedBd) {
  // With the same seed and b_d, both kernels must produce bit-identical
  // results in exact-arithmetic terms (same generated values, same sums up
  // to FP reordering — the additions happen in a different order, so allow
  // a tiny tolerance).
  const auto a = random_sparse<double>(120, 40, 0.08, 29);
  auto cfg = base_config(60);
  cfg.block_d = 20;

  DenseMatrix<double> out_kji(60, 40);
  sketch_into(cfg, a, out_kji);
  cfg.kernel = KernelVariant::Jki;
  cfg.block_n = 9;
  DenseMatrix<double> out_jki(60, 40);
  sketch_into(cfg, a, out_jki);
  EXPECT_LT(out_kji.max_abs_diff(out_jki), 1e-10);
}

TEST(KernelJki, SampleCountFarBelowKji) {
  // §III-B: jki generates ~nnz-row-dependent samples, kji d×nnz.
  const auto a = random_sparse<double>(500, 100, 0.05, 31);
  const index_t d = 90;

  SketchConfig cfg = base_config(d);
  SketchSampler<double> s_kji(cfg.seed, cfg.dist, cfg.backend);
  DenseMatrix<double> out(d, 100);
  std::vector<double> v(static_cast<std::size_t>(d));
  kernel_kji(out, 0, d, 0, 100, a, s_kji, v.data());

  const auto ab = BlockedCsr<double>::from_csc(a, 100);
  SketchSampler<double> s_jki(cfg.seed, cfg.dist, cfg.backend);
  out.set_zero();
  kernel_jki(out, 0, d, ab.block(0), s_jki, v.data());

  EXPECT_LT(s_jki.samples_generated() * 2, s_kji.samples_generated());
}

}  // namespace
}  // namespace rsketch
