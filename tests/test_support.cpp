// Unit tests for the support substrate: aligned buffers, table rendering,
// env parsing, CLI parsing, memory tracking, and small utilities.
#include <gtest/gtest.h>

#include <cstdlib>

#include "support/aligned_buffer.hpp"
#include "support/cli.hpp"
#include "support/common.hpp"
#include "support/env.hpp"
#include "support/memory_tracker.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace rsketch {
namespace {

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_EQ(ceil_div(10, 3), 4);
}

TEST(Require, ThrowsOnFalse) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "boom"), invalid_argument_error);
}

TEST(AlignedBuffer, AllocatesAligned) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(buf.size(), 100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes,
            0u);
  buf[0] = 1.5f;
  buf[99] = 2.5f;
  EXPECT_EQ(buf[0], 1.5f);
  EXPECT_EQ(buf[99], 2.5f);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 42;
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0);
}

TEST(AlignedBuffer, EmptyAndReset) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  buf.reset(7);
  EXPECT_EQ(buf.size(), 7);
  buf.reset(0);
  EXPECT_TRUE(buf.empty());
  EXPECT_THROW(buf.reset(-1), invalid_argument_error);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  (void)sink;
}

TEST(AccumTimer, AccumulatesIntervals) {
  AccumTimer t;
  EXPECT_EQ(t.seconds(), 0.0);
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_GE(t.seconds(), 0.0);
  t.clear();
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(AccumTimer, StopWithoutStartIsNoop) {
  AccumTimer t;
  t.stop();
  EXPECT_EQ(t.seconds(), 0.0);
}

TEST(AccumTimer, DoubleStartKeepsOriginalInterval) {
  AccumTimer t;
  Timer wall;
  t.start();
  EXPECT_TRUE(t.running());
  while (wall.seconds() < 2e-3) {
  }
  t.start();  // must not restart the interval
  while (wall.seconds() < 4e-3) {
  }
  t.stop();
  EXPECT_FALSE(t.running());
  EXPECT_GE(t.seconds(), 3.5e-3);
}

TEST(AccumTimer, ScopedAccumStopsOnScopeExit) {
  AccumTimer t;
  {
    ScopedAccum scope(t);
    EXPECT_TRUE(t.running());
    Timer wall;
    while (wall.seconds() < 1e-3) {
    }
  }
  EXPECT_FALSE(t.running());
  EXPECT_GE(t.seconds(), 0.5e-3);
}

TEST(Table, RendersHeaderAndRows) {
  Table t("Title");
  t.set_header({"Matrix", "time"});
  t.add_row({"mk-12", "0.070"});
  t.add_row({"ch7-9-b3", "7.74"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("Matrix"), std::string::npos);
  EXPECT_NE(s.find("mk-12"), std::string::npos);
  EXPECT_NE(s.find("7.74"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, SeparatorNotCountedAsRow) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"y", "2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowCellCountMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), invalid_argument_error);
}

TEST(Table, Footnote) {
  Table t;
  t.set_header({"x"});
  t.add_row({"1"});
  t.set_footnote("note here");
  EXPECT_NE(t.render().find("note here"), std::string::npos);
}

TEST(TableFormat, Time) {
  EXPECT_EQ(fmt_time(0.0501), "0.0501");
  EXPECT_EQ(fmt_time(7.74), "7.740");
  EXPECT_EQ(fmt_time(508.41), "508.4");
}

TEST(TableFormat, SciAndInt) {
  EXPECT_EQ(fmt_sci(2.02e-3), "2.02e-03");
  EXPECT_EQ(fmt_int(41580), "41580");
  EXPECT_EQ(fmt_fixed(45.8, 1), "45.8");
}

TEST(Env, IntFallbacks) {
  ::unsetenv("RSKETCH_TEST_ENV");
  EXPECT_EQ(env_int("RSKETCH_TEST_ENV", 7), 7);
  ::setenv("RSKETCH_TEST_ENV", "42", 1);
  EXPECT_EQ(env_int("RSKETCH_TEST_ENV", 7), 42);
  ::setenv("RSKETCH_TEST_ENV", "notanint", 1);
  EXPECT_EQ(env_int("RSKETCH_TEST_ENV", 7), 7);
  ::unsetenv("RSKETCH_TEST_ENV");
}

TEST(Env, DoubleAndString) {
  ::setenv("RSKETCH_TEST_ENV2", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("RSKETCH_TEST_ENV2", 1.0), 2.5);
  EXPECT_EQ(env_string("RSKETCH_TEST_ENV2", "x"), "2.5");
  ::unsetenv("RSKETCH_TEST_ENV2");
  EXPECT_DOUBLE_EQ(env_double("RSKETCH_TEST_ENV2", 1.0), 1.0);
  EXPECT_EQ(env_string("RSKETCH_TEST_ENV2", "x"), "x");
}

TEST(Env, BenchScaleFloor) {
  ::setenv("RSKETCH_SCALE", "0", 1);
  EXPECT_EQ(bench_scale(), 1);
  ::setenv("RSKETCH_SCALE", "4", 1);
  EXPECT_EQ(bench_scale(), 4);
  ::unsetenv("RSKETCH_SCALE");
}

TEST(Env, PartiallyNumericValueFallsBack) {
  // strtoll would happily parse the "12" prefix of "12threads"; the reader
  // must treat the whole token as invalid instead.
  ::setenv("RSKETCH_TEST_ENV3", "12threads", 1);
  EXPECT_EQ(env_int("RSKETCH_TEST_ENV3", 5), 5);
  ::setenv("RSKETCH_TEST_ENV3", "1.5x", 1);
  EXPECT_DOUBLE_EQ(env_double("RSKETCH_TEST_ENV3", 0.25), 0.25);
  ::unsetenv("RSKETCH_TEST_ENV3");
}

TEST(Env, InvalidValueWarnsExactlyOnce) {
  ::setenv("RSKETCH_TEST_WARN", "garbage", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_int("RSKETCH_TEST_WARN", 3), 3);
  const std::string first = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("RSKETCH_TEST_WARN"), std::string::npos);
  EXPECT_NE(first.find("garbage"), std::string::npos);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_int("RSKETCH_TEST_WARN", 3), 3);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  ::unsetenv("RSKETCH_TEST_WARN");
}

TEST(Cli, ParsesKeyValueForms) {
  // Note: a bare token following `--flag` is consumed as the flag's value
  // (documented `--key value` form), so positionals precede flags here.
  const char* argv[] = {"prog", "pos1", "--alpha=3", "--beta", "4", "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  EXPECT_TRUE(args.has("flag"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, FallbacksAndDoubles) {
  const char* argv[] = {"prog", "--x=2.5", "--bad=zzz"};
  CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
  EXPECT_EQ(args.get_int("bad", -1), -1);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.program(), "prog");
}

TEST(MemoryTracker, TracksPeak) {
  MemoryTracker mt;
  mt.add("a", 100);
  mt.add("b", 50);
  EXPECT_EQ(mt.current_bytes(), 150u);
  EXPECT_EQ(mt.peak_bytes(), 150u);
  mt.release(100);
  EXPECT_EQ(mt.current_bytes(), 50u);
  EXPECT_EQ(mt.peak_bytes(), 150u);
  mt.add("c", 25);
  EXPECT_EQ(mt.peak_bytes(), 150u);
  EXPECT_EQ(mt.items().size(), 3u);
}

TEST(MemoryTracker, ReleaseClampsAtZero) {
  MemoryTracker mt;
  mt.add("a", 10);
  mt.release(1000);
  EXPECT_EQ(mt.current_bytes(), 0u);
}

TEST(MemoryTracker, ReleaseByLabel) {
  MemoryTracker mt;
  mt.add("sketch", 100);
  mt.add("factor", 50);
  mt.add("sketch", 30);
  EXPECT_EQ(mt.current_bytes(), 180u);
  mt.release("sketch");  // releases the most recent live "sketch" (30)
  EXPECT_EQ(mt.current_bytes(), 150u);
  mt.release("sketch");  // then the earlier one (100)
  EXPECT_EQ(mt.current_bytes(), 50u);
  mt.release("sketch");  // no live "sketch" left: no-op
  mt.release("missing");  // unknown label: no-op
  EXPECT_EQ(mt.current_bytes(), 50u);
  EXPECT_EQ(mt.peak_bytes(), 180u);
  EXPECT_EQ(mt.items().size(), 3u);  // the log of allocations is untouched
}

TEST(MemoryTracker, Clear) {
  MemoryTracker mt;
  mt.add("a", 10);
  mt.clear();
  EXPECT_EQ(mt.current_bytes(), 0u);
  EXPECT_EQ(mt.peak_bytes(), 0u);
  EXPECT_TRUE(mt.items().empty());
}

}  // namespace
}  // namespace rsketch
