// Conversion round-trip tests across COO/CSC/CSR and transposition,
// including parameterized sweeps over random matrices.
#include <gtest/gtest.h>

#include <tuple>

#include "sparse/convert.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

TEST(Convert, CooToCscSumsDuplicates) {
  CooMatrix<double> c(3, 2);
  c.push(1, 0, 2.0);
  c.push(1, 0, 3.0);  // duplicate coordinate
  c.push(0, 1, 1.0);
  c.push(2, 0, 4.0);
  const auto a = coo_to_csc(c);
  a.validate();
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
}

TEST(Convert, CooToCsrSumsDuplicates) {
  CooMatrix<double> c(2, 3);
  c.push(0, 2, 1.0);
  c.push(0, 2, -1.0);  // cancels to zero but stays stored as one entry
  c.push(1, 1, 7.0);
  const auto a = coo_to_csr(c);
  a.validate();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0 + a.at(0, 2));  // present entry
  EXPECT_DOUBLE_EQ(a.at(1, 1), 7.0);
}

TEST(Convert, CooUnsortedInputSorted) {
  CooMatrix<float> c(4, 4);
  c.push(3, 3, 1.0f);
  c.push(0, 0, 2.0f);
  c.push(2, 0, 3.0f);
  c.push(1, 0, 4.0f);
  const auto a = coo_to_csc(c);
  a.validate();  // validates ascending row order per column
  EXPECT_FLOAT_EQ(a.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(a.at(2, 0), 3.0f);
}

TEST(Convert, EmptyCoo) {
  CooMatrix<double> c(3, 3);
  const auto csc = coo_to_csc(c);
  EXPECT_EQ(csc.nnz(), 0);
  const auto csr = coo_to_csr(c);
  EXPECT_EQ(csr.nnz(), 0);
}

class ConvertRoundTrip
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, double>> {};

TEST_P(ConvertRoundTrip, CscCsrCscPreservesMatrix) {
  const auto [m, n, density] = GetParam();
  const auto a = random_sparse<double>(m, n, density, 42);
  const auto csr = csc_to_csr(a);
  csr.validate();
  EXPECT_EQ(csr.nnz(), a.nnz());
  const auto back = csr_to_csc(csr);
  back.validate();
  ASSERT_EQ(back.nnz(), a.nnz());
  EXPECT_EQ(back.col_ptr(), a.col_ptr());
  EXPECT_EQ(back.row_idx(), a.row_idx());
  EXPECT_EQ(back.values(), a.values());
}

TEST_P(ConvertRoundTrip, TransposeTwiceIsIdentity) {
  const auto [m, n, density] = GetParam();
  const auto a = random_sparse<double>(m, n, density, 7);
  const auto at = transpose(a);
  at.validate();
  EXPECT_EQ(at.rows(), n);
  EXPECT_EQ(at.cols(), m);
  EXPECT_EQ(at.nnz(), a.nnz());
  const auto att = transpose(at);
  EXPECT_EQ(att.col_ptr(), a.col_ptr());
  EXPECT_EQ(att.row_idx(), a.row_idx());
  EXPECT_EQ(att.values(), a.values());
}

TEST_P(ConvertRoundTrip, TransposeEntriesMatch) {
  const auto [m, n, density] = GetParam();
  const auto a = random_sparse<double>(m, n, density, 13);
  const auto at = transpose(a);
  // Spot-check a grid of entries.
  for (index_t i = 0; i < std::min<index_t>(m, 10); ++i) {
    for (index_t j = 0; j < std::min<index_t>(n, 10); ++j) {
      EXPECT_DOUBLE_EQ(a.at(i, j), at.at(j, i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvertRoundTrip,
    ::testing::Values(std::make_tuple<index_t, index_t, double>(1, 1, 1.0),
                      std::make_tuple<index_t, index_t, double>(50, 30, 0.1),
                      std::make_tuple<index_t, index_t, double>(200, 10, 0.02),
                      std::make_tuple<index_t, index_t, double>(10, 200, 0.02),
                      std::make_tuple<index_t, index_t, double>(64, 64, 0.5),
                      std::make_tuple<index_t, index_t, double>(100, 100,
                                                                0.0)));

TEST(Convert, CsrRoundTripStartingFromCsr) {
  const auto base = random_sparse<float>(40, 25, 0.15, 99);
  const auto csr = csc_to_csr(base);
  const auto csc = csr_to_csc(csr);
  const auto csr2 = csc_to_csr(csc);
  EXPECT_EQ(csr.row_ptr(), csr2.row_ptr());
  EXPECT_EQ(csr.col_idx(), csr2.col_idx());
  EXPECT_EQ(csr.values(), csr2.values());
}

}  // namespace
}  // namespace rsketch
