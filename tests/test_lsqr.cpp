// LSQR iterative solver: consistency with direct solutions, stopping
// behaviour, preconditioning effect, and degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "solvers/least_squares.hpp"
#include "solvers/lsqr.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"

namespace rsketch {
namespace {

TEST(Lsqr, SolvesConsistentSystem) {
  const auto a = random_sparse<double>(60, 20, 0.3, 1);
  std::vector<double> x_true(20);
  for (index_t j = 0; j < 20; ++j) x_true[j] = 0.5 * j - 4.0;
  std::vector<double> b(60, 0.0);
  spmv(a, x_true.data(), b.data());

  const auto op = csc_operator(a);
  LsqrOptions opt;
  opt.tol = 1e-14;
  const auto res = lsqr(op, b.data(), opt);
  EXPECT_TRUE(res.converged);
  for (index_t j = 0; j < 20; ++j) {
    EXPECT_NEAR(res.x[j], x_true[j], 1e-6) << "j=" << j;
  }
}

TEST(Lsqr, LeastSquaresOptimality) {
  const auto a = random_sparse<double>(100, 15, 0.25, 2);
  const auto b = make_least_squares_rhs(a, 77);
  const auto op = csc_operator(a);
  LsqrOptions opt;
  opt.tol = 1e-14;
  opt.max_iter = 3000;
  const auto res = lsqr(op, b.data(), opt);
  // The paper's error metric at the solution must be tiny.
  EXPECT_LT(ls_error_metric(a, res.x, b), 1e-10);
}

TEST(Lsqr, ZeroRhsGivesZeroSolution) {
  const auto a = random_sparse<double>(30, 10, 0.3, 3);
  std::vector<double> b(30, 0.0);
  const auto op = csc_operator(a);
  const auto res = lsqr(op, b.data());
  EXPECT_TRUE(res.converged);
  for (double v : res.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Lsqr, RhsOrthogonalToRange) {
  // A has only row 0 nonzero per column; b supported on other rows ⟂ range.
  CscMatrix<double> a(4, 2, {0, 1, 2}, {0, 0}, {1.0, 2.0});
  std::vector<double> b = {0.0, 1.0, 1.0, 1.0};
  const auto op = csc_operator(a);
  const auto res = lsqr(op, b.data());
  EXPECT_TRUE(res.converged);
  for (double v : res.x) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Lsqr, MissingCallbacksThrow) {
  LinearOperator<double> op;
  op.rows = 2;
  op.cols = 2;
  std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW(lsqr(op, b.data()), invalid_argument_error);
}

TEST(Lsqr, MaxIterCapsWork) {
  const auto a = random_sparse<double>(200, 50, 0.05, 4);
  const auto b = make_least_squares_rhs(a, 5);
  const auto op = csc_operator(a);
  LsqrOptions opt;
  opt.tol = 1e-30;  // unreachable
  opt.max_iter = 7;
  const auto res = lsqr(op, b.data(), opt);
  EXPECT_EQ(res.iterations, 7);
  EXPECT_FALSE(res.converged);
}

TEST(Lsqr, DiagPreconditionerReducesIterations) {
  // Badly column-scaled matrix: plain LSQR needs many iterations, LSQR-D few.
  auto base = random_sparse<double>(300, 30, 0.2, 6);
  const auto a = scale_columns_log_uniform(base, -4.0, 4.0, 7);
  const auto b = make_least_squares_rhs(a, 8);

  const auto op = csc_operator(a);
  LsqrOptions opt;
  opt.tol = 1e-12;
  opt.max_iter = 5000;
  const auto plain = lsqr(op, b.data(), opt);
  const auto precond = lsqr_diag_precond(a, b, opt);

  EXPECT_LT(precond.iterations, plain.iterations);
  EXPECT_LT(ls_error_metric(a, precond.x, b), 1e-8);
}

TEST(LsqrDiag, MatchesUnpreconditionedSolution) {
  const auto a = random_sparse<double>(80, 12, 0.3, 9);
  const auto b = make_least_squares_rhs(a, 10);
  LsqrOptions opt;
  opt.tol = 1e-14;
  opt.max_iter = 2000;
  const auto d = lsqr_diag_precond(a, b, opt);
  const auto op = csc_operator(a);
  const auto plain = lsqr(op, b.data(), opt);
  for (index_t j = 0; j < 12; ++j) {
    EXPECT_NEAR(d.x[j], plain.x[j], 1e-6 * (std::fabs(plain.x[j]) + 1.0));
  }
}

TEST(Lsqr, EmptyOperator) {
  LinearOperator<double> op;
  op.rows = 0;
  op.cols = 0;
  op.apply = [](const double*, double*) {};
  op.apply_adjoint = [](const double*, double*) {};
  const auto res = lsqr<double>(op, nullptr);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.x.empty());
}

}  // namespace
}  // namespace rsketch
