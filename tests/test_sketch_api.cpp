// End-to-end correctness of the public sketching API: every kernel ×
// distribution × backend × blocking × parallel mode must equal the explicit
// product with the materialized S; baselines and the streaming scheme must
// agree with the blocked kernels.
#include <gtest/gtest.h>

#include <tuple>

#include "sketch/baselines.hpp"
#include "sketch/sketch.hpp"
#include "sketch/streaming.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

/// Reference Â via the Eigen-style baseline against materialized S — an
/// independent code path from the on-the-fly kernels.
DenseMatrix<double> reference(const SketchConfig& cfg,
                              const CscMatrix<double>& a) {
  const DenseMatrix<double> s = materialize_S<double>(cfg, a.rows());
  DenseMatrix<double> out;
  baseline_eigen_style(s, a, out);
  return out;
}

using ApiCombo = std::tuple<KernelVariant, Dist, RngBackend, index_t, index_t,
                            ParallelOver>;

class SketchApi : public ::testing::TestWithParam<ApiCombo> {};

TEST_P(SketchApi, MatchesMaterializedProduct) {
  const auto [kernel, dist, backend, bd, bn, par] = GetParam();
  const auto a = random_sparse<double>(150, 60, 0.07, 99);
  SketchConfig cfg;
  cfg.d = 50;
  cfg.seed = 1357;
  cfg.dist = dist;
  cfg.backend = backend;
  cfg.kernel = kernel;
  cfg.block_d = bd;
  cfg.block_n = bn;
  cfg.parallel = par;

  DenseMatrix<double> got(cfg.d, a.cols());
  sketch_into(cfg, a, got);
  const auto expect = reference(cfg, a);

  // Tolerance scaled by the distribution's magnitude (the scaling trick's
  // raw values are ~2^31 before the post-scale).
  const double tol = dist == Dist::UniformScaled ? 1e-8 : 1e-10;
  EXPECT_LT(got.max_abs_diff(expect), tol * (a.density() * a.rows() + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    KernelsByConfig, SketchApi,
    ::testing::Combine(
        ::testing::Values(KernelVariant::Kji, KernelVariant::Jki),
        ::testing::Values(Dist::PmOne, Dist::Uniform, Dist::UniformScaled,
                          Dist::Gaussian),
        ::testing::Values(RngBackend::XoshiroBatch, RngBackend::Philox),
        ::testing::Values(index_t{50}, index_t{16}, index_t{7}),
        ::testing::Values(index_t{60}, index_t{13}),
        ::testing::Values(ParallelOver::Sequential, ParallelOver::DBlocks,
                          ParallelOver::NBlocks)),
    [](const ::testing::TestParamInfo<ApiCombo>& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_" +
                         to_string(std::get<1>(info.param)) + "_" +
                         to_string(std::get<2>(info.param)) + "_bd" +
                         std::to_string(std::get<3>(info.param)) + "_bn" +
                         std::to_string(std::get<4>(info.param)) + "_" +
                         to_string(std::get<5>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(SketchApi, SketchByValueEqualsInto) {
  const auto a = random_sparse<double>(80, 30, 0.1, 5);
  SketchConfig cfg;
  cfg.d = 24;
  cfg.block_d = 10;
  cfg.block_n = 8;
  const auto by_value = sketch(cfg, a);
  DenseMatrix<double> into;
  sketch_into(cfg, a, into);
  EXPECT_EQ(by_value.max_abs_diff(into), 0.0);
}

TEST(SketchApi, SeedChangesResult) {
  const auto a = random_sparse<double>(80, 30, 0.1, 5);
  SketchConfig cfg;
  cfg.d = 24;
  auto s1 = sketch(cfg, a);
  cfg.seed ^= 0xDEAD;
  auto s2 = sketch(cfg, a);
  EXPECT_GT(s1.max_abs_diff(s2), 1e-6);
}

TEST(SketchApi, NormalizeScalesOutput) {
  const auto a = random_sparse<double>(100, 20, 0.2, 6);
  SketchConfig cfg;
  cfg.d = 40;
  cfg.dist = Dist::PmOne;
  const auto raw = sketch(cfg, a);
  cfg.normalize = true;
  const auto normed = sketch(cfg, a);
  // PmOne second moment is 1 → scale is 1/sqrt(d).
  const double scale = 1.0 / std::sqrt(40.0);
  for (index_t j = 0; j < 20; ++j) {
    for (index_t i = 0; i < 40; ++i) {
      EXPECT_NEAR(normed(i, j), raw(i, j) * scale, 1e-12);
    }
  }
}

TEST(SketchApi, ScalingTrickMatchesUniformSketch) {
  // (Sf)(A) computed via UniformScaled + post-scale must equal the Uniform
  // sketch exactly (the 2^-31 factor is a power of two).
  const auto a = random_sparse<double>(90, 25, 0.12, 7);
  SketchConfig cfg;
  cfg.d = 30;
  cfg.dist = Dist::Uniform;
  const auto uniform = sketch(cfg, a);
  cfg.dist = Dist::UniformScaled;
  const auto trick = sketch(cfg, a);
  EXPECT_LT(uniform.max_abs_diff(trick), 1e-9);
}

TEST(SketchApi, JkiConversionTimeReported) {
  const auto a = random_sparse<double>(200, 80, 0.05, 8);
  SketchConfig cfg;
  cfg.d = 60;
  cfg.kernel = KernelVariant::Jki;
  cfg.block_n = 16;
  DenseMatrix<double> out;
  const SketchStats stats = sketch_into(cfg, a, out);
  EXPECT_GT(stats.convert_seconds, 0.0);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.samples_generated, 0u);
}

TEST(SketchApi, PrepartitionedMatchesOneShot) {
  const auto a = random_sparse<double>(150, 50, 0.08, 9);
  SketchConfig cfg;
  cfg.d = 45;
  cfg.kernel = KernelVariant::Jki;
  cfg.block_n = 11;
  cfg.block_d = 20;
  DenseMatrix<double> one_shot;
  sketch_into(cfg, a, one_shot);

  const auto ab = BlockedCsr<double>::from_csc(a, cfg.block_n);
  DenseMatrix<double> pre;
  sketch_into_prepartitioned(cfg, ab, pre);
  EXPECT_EQ(one_shot.max_abs_diff(pre), 0.0);
}

TEST(SketchApi, StreamingEqualsBlockedKernels) {
  const auto a = random_sparse<double>(120, 45, 0.1, 10);
  SketchConfig cfg;
  cfg.d = 36;
  cfg.block_d = 36;
  DenseMatrix<double> blocked;
  sketch_into(cfg, a, blocked);

  const auto a_csr = csc_to_csr(a);
  DenseMatrix<double> streamed;
  streaming_sketch(cfg, a_csr, streamed);
  EXPECT_LT(blocked.max_abs_diff(streamed), 1e-10);
}

TEST(SketchApi, PhiloxIsBlockingIndependent) {
  // With the Philox backend, two completely different blockings must produce
  // the SAME sketch — the RandBLAS-style reproducibility guarantee.
  const auto a = random_sparse<double>(100, 40, 0.1, 11);
  SketchConfig cfg;
  cfg.d = 32;
  cfg.backend = RngBackend::Philox;
  cfg.block_d = 32;
  cfg.block_n = 40;
  const auto s1 = sketch(cfg, a);
  cfg.block_d = 5;
  cfg.block_n = 3;
  const auto s2 = sketch(cfg, a);
  cfg.kernel = KernelVariant::Jki;
  cfg.block_d = 9;
  cfg.block_n = 7;
  const auto s3 = sketch(cfg, a);
  EXPECT_LT(s1.max_abs_diff(s2), 1e-10);
  EXPECT_LT(s1.max_abs_diff(s3), 1e-10);
}

TEST(SketchApi, XoshiroBlockingDependentByDesign) {
  const auto a = random_sparse<double>(100, 40, 0.1, 11);
  SketchConfig cfg;
  cfg.d = 32;
  cfg.block_d = 32;
  const auto s1 = sketch(cfg, a);
  cfg.block_d = 5;
  const auto s2 = sketch(cfg, a);
  EXPECT_GT(s1.max_abs_diff(s2), 1e-8);
}

TEST(SketchApi, ThreadCountInvariance) {
  // Parallel modes partition disjoint output blocks; results must not depend
  // on the number of threads.
  const auto a = random_sparse<double>(300, 90, 0.04, 12);
  SketchConfig cfg;
  cfg.d = 66;
  cfg.block_d = 16;
  cfg.block_n = 13;
  cfg.parallel = ParallelOver::DBlocks;
  const auto parallel = sketch(cfg, a);
  cfg.parallel = ParallelOver::Sequential;
  const auto serial = sketch(cfg, a);
  EXPECT_EQ(parallel.max_abs_diff(serial), 0.0);
}

TEST(Baselines, AllThreeAgree) {
  const auto a = random_sparse<double>(70, 35, 0.15, 13);
  SketchConfig cfg;
  cfg.d = 28;
  const auto s = materialize_S<double>(cfg, a.rows());

  DenseMatrix<double> eigen_out, julia_out;
  baseline_eigen_style(s, a, eigen_out);
  baseline_julia_style(s, a, julia_out);
  EXPECT_LT(eigen_out.max_abs_diff(julia_out), 1e-12);

  const auto st = pack_transposed_rowmajor(s);
  std::vector<double> mkl_out;
  baseline_mkl_style(st, a, cfg.d, mkl_out);
  for (index_t k = 0; k < a.cols(); ++k) {
    for (index_t i = 0; i < cfg.d; ++i) {
      EXPECT_NEAR(mkl_out[static_cast<std::size_t>(k * cfg.d + i)],
                  eigen_out(i, k), 1e-10);
    }
  }
}

TEST(SketchApi, EmptyMatrixAndZeroSketch) {
  CscMatrix<double> empty(50, 0);
  SketchConfig cfg;
  cfg.d = 10;
  DenseMatrix<double> out;
  sketch_into(cfg, empty, out);
  EXPECT_EQ(out.cols(), 0);

  const auto a = random_sparse<double>(20, 10, 0.3, 14);
  cfg.d = 0;
  sketch_into(cfg, a, out);
  EXPECT_EQ(out.rows(), 0);
}

TEST(SketchApi, InvalidConfigThrows) {
  const auto a = random_sparse<double>(20, 10, 0.3, 14);
  SketchConfig cfg;
  cfg.d = 8;
  cfg.block_d = 0;
  DenseMatrix<double> out;
  EXPECT_THROW(sketch_into(cfg, a, out), invalid_argument_error);
  cfg.block_d = 4;
  cfg.block_n = -1;
  EXPECT_THROW(sketch_into(cfg, a, out), invalid_argument_error);
}

TEST(SketchApi, GflopsReported) {
  const auto a = random_sparse<double>(400, 100, 0.05, 15);
  SketchConfig cfg;
  cfg.d = 64;
  DenseMatrix<double> out;
  const auto stats = sketch_into(cfg, a, out);
  EXPECT_GT(stats.gflops, 0.0);
}

}  // namespace
}  // namespace rsketch
