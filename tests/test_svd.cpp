// One-sided Jacobi SVD: known spectra, reconstruction, ordering, and the
// near-singular inputs SAP-SVD exists for.
#include <gtest/gtest.h>

#include <cmath>

#include "dense/gemm.hpp"
#include "rng/distributions.hpp"
#include "solvers/svd.hpp"

namespace rsketch {
namespace {

DenseMatrix<double> random_dense(index_t m, index_t n, std::uint64_t seed) {
  SketchSampler<double> s(seed, Dist::Uniform, RngBackend::Xoshiro);
  DenseMatrix<double> a(m, n);
  for (index_t j = 0; j < n; ++j) s.fill(0, j, a.col(j), m);
  return a;
}

TEST(Svd, DiagonalMatrixSpectrumExact) {
  DenseMatrix<double> a(6, 4);
  a(0, 0) = 3.0;
  a(1, 1) = 7.0;
  a(2, 2) = 1.0;
  a(3, 3) = 5.0;
  const auto svd = jacobi_svd(std::move(a));
  ASSERT_EQ(svd.sigma.size(), 4u);
  EXPECT_NEAR(svd.sigma[0], 7.0, 1e-12);
  EXPECT_NEAR(svd.sigma[1], 5.0, 1e-12);
  EXPECT_NEAR(svd.sigma[2], 3.0, 1e-12);
  EXPECT_NEAR(svd.sigma[3], 1.0, 1e-12);
}

TEST(Svd, SigmaDescending) {
  auto a = random_dense(40, 15, 7);
  const auto svd = jacobi_svd(std::move(a));
  for (std::size_t i = 1; i < svd.sigma.size(); ++i) {
    EXPECT_GE(svd.sigma[i - 1], svd.sigma[i]);
  }
}

TEST(Svd, VIsOrthogonal) {
  auto a = random_dense(30, 10, 8);
  const auto svd = jacobi_svd(std::move(a));
  DenseMatrix<double> vtv(10, 10);
  gemm(true, false, 1.0, svd.v, svd.v, 0.0, vtv);
  for (index_t i = 0; i < 10; ++i) {
    for (index_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Svd, ReconstructsWithU) {
  const index_t m = 25, n = 8;
  const auto orig = random_dense(m, n, 9);
  DenseMatrix<double> copy(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) copy(i, j) = orig(i, j);
  }
  const auto svd = jacobi_svd(std::move(copy), /*want_u=*/true);

  // A ≈ U Σ Vᵀ.
  DenseMatrix<double> us(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) us(i, j) = svd.u(i, j) * svd.sigma[j];
  }
  DenseMatrix<double> rec(m, n);
  gemm(false, true, 1.0, us, svd.v, 0.0, rec);
  EXPECT_LT(rec.max_abs_diff(orig), 1e-9);
}

TEST(Svd, UHasOrthonormalColumns) {
  auto a = random_dense(30, 6, 10);
  const auto svd = jacobi_svd(std::move(a), true);
  DenseMatrix<double> utu(6, 6);
  gemm(true, false, 1.0, svd.u, svd.u, 0.0, utu);
  for (index_t i = 0; i < 6; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(utu(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Svd, FrobeniusNormInvariant) {
  auto a = random_dense(50, 20, 11);
  const double fro = a.frobenius_norm();
  const auto svd = jacobi_svd(std::move(a));
  double s2 = 0.0;
  for (double s : svd.sigma) s2 += s * s;
  EXPECT_NEAR(std::sqrt(s2), fro, 1e-9);
}

TEST(Svd, DetectsNearSingularity) {
  // Duplicate a column with a tiny perturbation: σ_min collapses.
  DenseMatrix<double> a(20, 3);
  SketchSampler<double> s(12, Dist::Uniform, RngBackend::Xoshiro);
  s.fill(0, 0, a.col(0), 20);
  s.fill(0, 1, a.col(1), 20);
  for (index_t i = 0; i < 20; ++i) a(i, 2) = a(i, 0) * (1.0 + 1e-13);
  const auto svd = jacobi_svd(std::move(a));
  EXPECT_LT(svd.sigma[2] / svd.sigma[0], 1e-10);
  EXPECT_GT(svd.sigma[1] / svd.sigma[0], 1e-4);
}

TEST(Svd, RankOneMatrix) {
  DenseMatrix<double> a(10, 4);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i < 10; ++i) {
      a(i, j) = (i + 1.0) * (j + 1.0);
    }
  }
  const auto svd = jacobi_svd(std::move(a));
  EXPECT_GT(svd.sigma[0], 0.0);
  for (std::size_t k = 1; k < 4; ++k) {
    EXPECT_LT(svd.sigma[k] / svd.sigma[0], 1e-10);
  }
}

TEST(Svd, WideThrows) {
  DenseMatrix<double> a(3, 6);
  EXPECT_THROW(jacobi_svd(std::move(a)), invalid_argument_error);
}

TEST(Svd, ConvergesInFewSweeps) {
  auto a = random_dense(60, 25, 13);
  const auto svd = jacobi_svd(std::move(a));
  EXPECT_LE(svd.sweeps, 20);
}

}  // namespace
}  // namespace rsketch
