// Dense matrix container, BLAS-1 kernels, and the blocked reference GEMM.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "dense/blas1.hpp"
#include "dense/dense_matrix.hpp"
#include "dense/gemm.hpp"
#include "rng/xoshiro.hpp"

namespace rsketch {
namespace {

void fill_random(DenseMatrix<double>& a, std::uint64_t seed) {
  Xoshiro256pp g(seed);
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      a(i, j) = static_cast<double>(static_cast<std::int64_t>(g.next())) *
                (1.0 / 9223372036854775808.0);
    }
  }
}

TEST(DenseMatrix, ColumnsAlignedAndZeroInitialized) {
  DenseMatrix<float> a(33, 5);
  EXPECT_EQ(a.rows(), 33);
  EXPECT_EQ(a.cols(), 5);
  EXPECT_GE(a.ld(), 33);
  EXPECT_EQ(a.ld() % (64 / static_cast<index_t>(sizeof(float))), 0);
  for (index_t j = 0; j < 5; ++j) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.col(j)) % 64, 0u);
    for (index_t i = 0; i < 33; ++i) EXPECT_EQ(a(i, j), 0.0f);
  }
}

TEST(DenseMatrix, ElementAccess) {
  DenseMatrix<double> a(4, 3);
  a(2, 1) = 5.5;
  EXPECT_DOUBLE_EQ(a(2, 1), 5.5);
  EXPECT_DOUBLE_EQ(a.col(1)[2], 5.5);
}

TEST(DenseMatrix, FrobeniusAndDiff) {
  DenseMatrix<double> a(2, 2), b(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  b(0, 0) = 3.0;
  b(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
  DenseMatrix<double> c(3, 2);
  EXPECT_THROW(a.max_abs_diff(c), invalid_argument_error);
}

TEST(DenseMatrix, NegativeDimensionThrows) {
  EXPECT_THROW(DenseMatrix<double>(-1, 2), invalid_argument_error);
}

TEST(Blas1, AxpyDotNrm2Scal) {
  const index_t n = 1000;
  std::vector<double> x(n), y(n);
  for (index_t i = 0; i < n; ++i) {
    x[i] = 0.001 * i;
    y[i] = 1.0;
  }
  axpy(n, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[500], 1.0 + 2.0 * 0.5);

  const double d = dot(n, x.data(), x.data());
  double ref = 0.0;
  for (index_t i = 0; i < n; ++i) ref += x[i] * x[i];
  EXPECT_NEAR(d, ref, 1e-9);

  EXPECT_NEAR(nrm2(n, x.data()), std::sqrt(ref), 1e-9);

  scal(n, 0.5, y.data());
  EXPECT_DOUBLE_EQ(y[0], 0.5);
}

TEST(Blas1, ZeroLength) {
  axpy<double>(0, 1.0, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(dot<double>(0, nullptr, nullptr), 0.0);
  EXPECT_DOUBLE_EQ(nrm2<double>(0, nullptr), 0.0);
}

class GemmShapes : public ::testing::TestWithParam<
                       std::tuple<index_t, index_t, index_t, bool, bool>> {};

TEST_P(GemmShapes, MatchesNaiveTripleLoop) {
  const auto [m, n, k, ta, tb] = GetParam();
  DenseMatrix<double> a(ta ? k : m, ta ? m : k);
  DenseMatrix<double> b(tb ? n : k, tb ? k : n);
  fill_random(a, 1);
  fill_random(b, 2);
  DenseMatrix<double> c(m, n);
  fill_random(c, 3);
  DenseMatrix<double> c_ref(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) c_ref(i, j) = c(i, j);
  }

  const double alpha = 1.5, beta = -0.5;
  gemm(ta, tb, alpha, a, b, beta, c);

  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double av = ta ? a(p, i) : a(i, p);
        const double bv = tb ? b(j, p) : b(p, j);
        s += av * bv;
      }
      EXPECT_NEAR(c(i, j), beta * c_ref(i, j) + alpha * s, 1e-10)
          << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(
        std::make_tuple<index_t, index_t, index_t, bool, bool>(1, 1, 1, false,
                                                               false),
        std::make_tuple<index_t, index_t, index_t, bool, bool>(17, 13, 9,
                                                               false, false),
        std::make_tuple<index_t, index_t, index_t, bool, bool>(17, 13, 9, true,
                                                               false),
        std::make_tuple<index_t, index_t, index_t, bool, bool>(17, 13, 9,
                                                               false, true),
        std::make_tuple<index_t, index_t, index_t, bool, bool>(17, 13, 9, true,
                                                               true),
        std::make_tuple<index_t, index_t, index_t, bool, bool>(150, 140, 130,
                                                               false, false),
        std::make_tuple<index_t, index_t, index_t, bool, bool>(150, 140, 130,
                                                               true, false)));

TEST(Gemm, DimensionMismatchThrows) {
  DenseMatrix<double> a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(gemm(false, false, 1.0, a, b, 0.0, c), invalid_argument_error);
  DenseMatrix<double> b2(4, 2), c2(2, 2);
  EXPECT_THROW(gemm(false, false, 1.0, a, b2, 0.0, c2),
               invalid_argument_error);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  DenseMatrix<double> a(3, 3), b(3, 3), c(3, 3);
  fill_random(a, 4);
  fill_random(b, 5);
  c(1, 1) = 2.0;
  gemm(false, false, 0.0, a, b, 3.0, c);
  EXPECT_DOUBLE_EQ(c(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
}

}  // namespace
}  // namespace rsketch
