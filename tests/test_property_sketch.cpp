// Statistical properties of the sketch operator: Johnson–Lindenstrauss-style
// norm preservation and subspace embedding distortion — the properties that
// make Â = S·A usable inside the least-squares pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "dense/blas1.hpp"
#include "rng/distributions.hpp"
#include "sketch/sketch.hpp"
#include "sparse/validate.hpp"
#include "solvers/qr.hpp"
#include "solvers/svd.hpp"
#include "solvers/triangular.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"

namespace rsketch {
namespace {

class NormPreservation : public ::testing::TestWithParam<Dist> {};

TEST_P(NormPreservation, SketchedColumnNormsConcentrate) {
  // For a normalized sketch (E[s²]·d scaling), E‖S a‖² = ‖a‖², and for
  // d = 3n the deviation should be modest for every column.
  const Dist dist = GetParam();
  const auto a = random_sparse<double>(400, 40, 0.08, 21);
  SketchConfig cfg;
  cfg.d = 360;  // large d → tight concentration
  cfg.dist = dist;
  cfg.normalize = true;
  const auto a_hat = sketch(cfg, a);
  const auto norms = column_norms(a);
  for (index_t j = 0; j < a.cols(); ++j) {
    if (norms[j] == 0.0) continue;
    const double sk = nrm2(a_hat.rows(), a_hat.col(j));
    EXPECT_NEAR(sk / norms[j], 1.0, 0.35) << "column " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, NormPreservation,
                         ::testing::Values(Dist::PmOne, Dist::Uniform,
                                           Dist::UniformScaled,
                                           Dist::Gaussian),
                         [](const ::testing::TestParamInfo<Dist>& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(SubspaceEmbedding, SingularValuesWithinDistortionBound) {
  // Sketch-and-precondition theory: for Â = S·A with γ = d/n = 3 and S an
  // (approximate) isometry in expectation, the singular values of Â·R⁻¹
  // (equivalently, of Q of A measured through S) lie in
  // [1-ε, 1+ε] with ε ≈ 1/sqrt(γ) ≈ 0.58 — we verify a slightly looser box.
  const index_t m = 600, n = 30;
  const auto a = random_sparse<double>(m, n, 0.1, 33);
  SketchConfig cfg;
  cfg.d = 3 * n;
  cfg.dist = Dist::PmOne;
  cfg.normalize = true;
  auto a_hat = sketch(cfg, a);

  // Factor Â = QR, then form A·R⁻¹ densely and take its extreme singular
  // values: they measure the preconditioned condition number the paper
  // bounds by (sqrt(γ)+1)/(sqrt(γ)-1) ≈ 3.73 for γ = 3.
  QrFactor<double> f = qr_factorize(std::move(a_hat));
  DenseMatrix<double> r = extract_r(f);
  DenseMatrix<double> apre(m, n);
  // apre = A · R⁻¹: solve column-by-column.
  std::vector<double> e(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), 0.0);
    e[static_cast<std::size_t>(j)] = 1.0;
    solve_upper(r, e.data());
    spmv(a, e.data(), apre.col(j));
  }
  SvdResult<double> svd = jacobi_svd(std::move(apre));
  const double smax = svd.sigma.front();
  const double smin = svd.sigma.back();
  ASSERT_GT(smin, 0.0);
  const double cond = smax / smin;
  const double gamma = 3.0;
  const double bound = (std::sqrt(gamma) + 1.0) / (std::sqrt(gamma) - 1.0);
  EXPECT_LT(cond, 2.0 * bound) << "preconditioned cond too large";
}

TEST(SubspaceEmbedding, PairwiseInnerProductsPreserved) {
  // JL property on differences: ‖S(x−y)‖ ≈ ‖x−y‖ for sparse columns x, y.
  const auto a = random_sparse<double>(500, 10, 0.15, 44);
  SketchConfig cfg;
  cfg.d = 450;
  cfg.dist = Dist::Uniform;
  cfg.normalize = true;
  const auto a_hat = sketch(cfg, a);
  for (index_t x = 0; x < 9; ++x) {
    const index_t y = x + 1;
    double orig = 0.0, sk = 0.0;
    for (index_t i = 0; i < a.rows(); ++i) {
      const double dv = a.at(i, x) - a.at(i, y);
      orig += dv * dv;
    }
    for (index_t i = 0; i < a_hat.rows(); ++i) {
      const double dv = a_hat(i, x) - a_hat(i, y);
      sk += dv * dv;
    }
    ASSERT_GT(orig, 0.0);
    EXPECT_NEAR(std::sqrt(sk / orig), 1.0, 0.35) << "pair " << x;
  }
}

TEST(SketchMoments, EntriesOfSHaveUnitSecondMomentAfterNormalize) {
  SketchConfig cfg;
  cfg.d = 128;
  cfg.dist = Dist::Uniform;
  cfg.normalize = true;
  const auto s = materialize_S<double>(cfg, 64);
  double sum2 = 0.0;
  for (index_t j = 0; j < 64; ++j) {
    for (index_t i = 0; i < 128; ++i) sum2 += s(i, j) * s(i, j);
  }
  // After normalization each entry has variance 1/d, so the total is ≈ m.
  EXPECT_NEAR(sum2, 64.0, 64.0 * 0.15);
}

TEST(SketchNonFinite, ChecksOnThrowsChecksOffPropagatesColumnwise) {
  // Â[:, j] = S·A[:, j]: a non-finite payload in column j must either be
  // rejected up front (check_inputs on) or poison exactly column j of the
  // sketch — S is dense, so every entry of that column goes non-finite while
  // every other column stays clean.
  auto a = random_sparse<double>(200, 24, 0.15, 31);
  const index_t nan_col = 5, inf_col = 17;
  ASSERT_GT(a.col_nnz(nan_col), 0);
  ASSERT_GT(a.col_nnz(inf_col), 0);
  std::vector<double>& vals = a.values();
  vals[static_cast<std::size_t>(a.col_ptr()[nan_col])] = std::nan("");
  vals[static_cast<std::size_t>(a.col_ptr()[inf_col])] =
      std::numeric_limits<double>::infinity();

  SketchConfig cfg;
  cfg.d = 72;
  cfg.seed = 9;
  cfg.normalize = true;

  cfg.check_inputs = true;
  EXPECT_THROW(sketch(cfg, a), validation_error);

  cfg.check_inputs = false;
  const auto a_hat = sketch(cfg, a);
  for (index_t j = 0; j < a.cols(); ++j) {
    const index_t bad = count_non_finite(a_hat.col(j), a_hat.rows());
    if (j == nan_col || j == inf_col) {
      EXPECT_EQ(bad, a_hat.rows()) << "poisoned column " << j;
    } else {
      EXPECT_EQ(bad, 0) << "clean column " << j << " was contaminated";
    }
  }
}

}  // namespace
}  // namespace rsketch
