// Cost-model-driven block scheduler (sketch/schedule.hpp, DESIGN.md §5b).
//
// The load-bearing invariant: the schedule is a pure load-balance knob.
// Every mode executes every (i-block, j-block) exactly once into disjoint
// output panels, so Â must be bitwise identical between uniform and
// balanced schedules for every kernel × ISA tier × element type. The rest
// of the file pins the partitioner itself: LPT quality on random costs,
// determinism, mode resolution precedence (including the deprecated
// RSKETCH_JKI_SCHEDULE alias), the skew bias on block suggestions, and the
// pinning helpers degrading gracefully.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "dense/microkernel.hpp"
#include "sketch/autotune.hpp"
#include "sketch/schedule.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "support/parallel.hpp"
#include "support/run_control.hpp"

namespace rsketch {
namespace {

// ------------------------------------------------------------ resolution --

TEST(ScheduleResolve, ParseAcceptsExactlyThreeTokens) {
  ScheduleMode m = ScheduleMode::Auto;
  EXPECT_TRUE(parse_schedule_mode("auto", m));
  EXPECT_EQ(m, ScheduleMode::Auto);
  EXPECT_TRUE(parse_schedule_mode("uniform", m));
  EXPECT_EQ(m, ScheduleMode::Uniform);
  EXPECT_TRUE(parse_schedule_mode("balanced", m));
  EXPECT_EQ(m, ScheduleMode::Balanced);
  EXPECT_FALSE(parse_schedule_mode("", m));
  EXPECT_FALSE(parse_schedule_mode("static", m));
  EXPECT_FALSE(parse_schedule_mode("BALANCED", m));
}

TEST(ScheduleResolve, ExplicitRequestBeatsEveryEnv) {
  EXPECT_EQ(resolve_schedule_mode(ScheduleMode::Uniform, "balanced", "dynamic"),
            ScheduleMode::Uniform);
  EXPECT_EQ(resolve_schedule_mode(ScheduleMode::Balanced, "uniform", "static"),
            ScheduleMode::Balanced);
}

TEST(ScheduleResolve, EnvThenLegacyAliasThenBalancedDefault) {
  // RSKETCH_SCHEDULE wins over the deprecated alias.
  EXPECT_EQ(resolve_schedule_mode(ScheduleMode::Auto, "uniform", "dynamic"),
            ScheduleMode::Uniform);
  // "auto" in the env falls through to the alias / default.
  EXPECT_EQ(resolve_schedule_mode(ScheduleMode::Auto, "auto", "static"),
            ScheduleMode::Uniform);
  // Deprecated RSKETCH_JKI_SCHEDULE mapping: static → Uniform (the old
  // omp-static split), anything else → Balanced.
  EXPECT_EQ(resolve_schedule_mode(ScheduleMode::Auto, "", "static"),
            ScheduleMode::Uniform);
  EXPECT_EQ(resolve_schedule_mode(ScheduleMode::Auto, "", "dynamic"),
            ScheduleMode::Balanced);
  // Default is ON: no request, no env → balanced.
  EXPECT_EQ(resolve_schedule_mode(ScheduleMode::Auto, "", ""),
            ScheduleMode::Balanced);
  // Invalid RSKETCH_SCHEDULE warns and degrades to the default.
  EXPECT_EQ(resolve_schedule_mode(ScheduleMode::Auto, "bogus", ""),
            ScheduleMode::Balanced);
}

// ----------------------------------------------------------- partitioner --

/// Per-thread loads under `s` for the given cost vector (1.0 per item when
/// costs is empty), plus coverage bookkeeping.
std::vector<double> bin_loads(const BlockSchedule& s,
                              const std::vector<double>& costs) {
  std::vector<double> loads(static_cast<std::size_t>(s.threads()), 0.0);
  for (int t = 0; t < s.threads(); ++t) {
    for (index_t k = s.offsets[static_cast<std::size_t>(t)];
         k < s.offsets[static_cast<std::size_t>(t) + 1]; ++k) {
      const index_t item = s.items[static_cast<std::size_t>(k)];
      loads[static_cast<std::size_t>(t)] +=
          costs.empty() ? 1.0 : costs[static_cast<std::size_t>(item)];
    }
  }
  return loads;
}

/// Every item id in [0, n) appears exactly once, and each thread's list is
/// ascending (the locality contract).
void expect_valid_partition(const BlockSchedule& s, index_t n) {
  ASSERT_EQ(s.items.size(), static_cast<std::size_t>(n));
  ASSERT_GE(s.threads(), 1);
  EXPECT_EQ(s.offsets.front(), 0);
  EXPECT_EQ(s.offsets.back(), n);
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  for (int t = 0; t < s.threads(); ++t) {
    for (index_t k = s.offsets[static_cast<std::size_t>(t)];
         k < s.offsets[static_cast<std::size_t>(t) + 1]; ++k) {
      ++seen[static_cast<std::size_t>(s.items[static_cast<std::size_t>(k)])];
      if (k > s.offsets[static_cast<std::size_t>(t)]) {
        EXPECT_LT(s.items[static_cast<std::size_t>(k - 1)],
                  s.items[static_cast<std::size_t>(k)]);
      }
    }
  }
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1) << "item " << i;
  }
}

TEST(SchedulePartition, UniformSplitIsContiguousAndEven) {
  const BlockSchedule s = build_uniform_schedule(10, 4);
  expect_valid_partition(s, 10);
  EXPECT_EQ(s.threads(), 4);
  // 10 = 3 + 3 + 2 + 2, remainder to the first threads.
  const std::vector<index_t> want = {0, 3, 6, 8, 10};
  EXPECT_EQ(s.offsets, want);
  EXPECT_EQ(s.imbalance_est, 0.0);
}

TEST(SchedulePartition, LptQualityOnRandomCosts) {
  // Deterministic LCG: 256 costs in [0.5, 1.5] plus a handful of heavies —
  // the shape LPT is worst at. Greedy LPT guarantees max ≤ 4/3 · optimum;
  // with 256 items in 4 bins it should land well inside 1.2 × mean.
  std::vector<double> costs;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 256; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    costs.push_back(0.5 + static_cast<double>((x >> 33) & 0xffff) / 65536.0);
  }
  costs[7] = 40.0;
  costs[101] = 25.0;
  costs[202] = 25.0;

  const BlockSchedule s = build_balanced_schedule(costs, 4);
  expect_valid_partition(s, static_cast<index_t>(costs.size()));
  const std::vector<double> loads = bin_loads(s, costs);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  const double mean = total / static_cast<double>(loads.size());
  const double max = *std::max_element(loads.begin(), loads.end());
  EXPECT_LE(max, 1.2 * mean) << "LPT left a bin " << max / mean
                             << "x the mean load";
  EXPECT_NEAR(s.imbalance_est, max / mean, 1e-12);
}

TEST(SchedulePartition, BalancedIsolatesOneDominantItem) {
  // One item worth more than everything else combined: LPT must give it a
  // bin of its own while the uniform split would chain it with neighbors.
  std::vector<double> costs(32, 1.0);
  costs[5] = 100.0;
  const BlockSchedule s = build_balanced_schedule(costs, 4);
  expect_valid_partition(s, 32);
  for (int t = 0; t < s.threads(); ++t) {
    const index_t begin = s.offsets[static_cast<std::size_t>(t)];
    const index_t end = s.offsets[static_cast<std::size_t>(t) + 1];
    for (index_t k = begin; k < end; ++k) {
      if (s.items[static_cast<std::size_t>(k)] == 5) {
        EXPECT_EQ(end - begin, 1) << "dominant item shares a bin";
      }
    }
  }
}

TEST(SchedulePartition, DeterministicForFixedCosts) {
  std::vector<double> costs;
  for (int i = 0; i < 61; ++i) {
    costs.push_back(1.0 + static_cast<double>((i * 37) % 11));
  }
  const BlockSchedule a = build_balanced_schedule(costs, 3);
  const BlockSchedule b = build_balanced_schedule(costs, 3);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.imbalance_est, b.imbalance_est);
}

TEST(SchedulePartition, BuildShortCircuitsSequentialAndDegenerate) {
  int cost_calls = 0;
  const auto costs = [&] {
    ++cost_calls;
    return std::vector<double>(8, 1.0);
  };
  // nthreads <= 1: trivial split, the cost model is never consulted.
  BlockSchedule s = build_block_schedule(ScheduleMode::Balanced, 1, 8, costs);
  expect_valid_partition(s, 8);
  EXPECT_EQ(cost_calls, 0);
  // Uniform: still no cost-model call at any thread count.
  s = build_block_schedule(ScheduleMode::Uniform, 4, 8, costs);
  expect_valid_partition(s, 8);
  EXPECT_EQ(cost_calls, 0);
  // Balanced with a real team pays for the estimator exactly once.
  s = build_block_schedule(ScheduleMode::Balanced, 4, 8, costs);
  expect_valid_partition(s, 8);
  EXPECT_EQ(cost_calls, 1);
}

// ------------------------------------------------------- bitwise identity --

/// Bitwise equality over logical entries (padded tail rows excluded, as in
/// test_simd_equivalence.cpp).
template <typename T>
void expect_bitwise_equal(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    ASSERT_EQ(0, std::memcmp(a.col(j), b.col(j),
                             static_cast<std::size_t>(a.rows()) * sizeof(T)))
        << what << ": column " << j << " differs";
  }
}

std::vector<microkernel::Isa> supported_isas() {
  std::vector<microkernel::Isa> out = {microkernel::Isa::Scalar};
  if (microkernel::supported(microkernel::Isa::Avx2)) {
    out.push_back(microkernel::Isa::Avx2);
  }
  if (microkernel::supported(microkernel::Isa::Avx512)) {
    out.push_back(microkernel::Isa::Avx512);
  }
  return out;
}

template <typename T>
void check_balanced_matches_uniform(KernelVariant kernel, ParallelOver mode) {
  // Force a real team even on a small CI box: the scheduled walk is
  // team-shrink-safe, so asking for 4 threads is valid at any core count.
  ThreadCountGuard guard(4);
  const auto a = random_sparse<T>(150, 60, 0.08, 31);
  for (const microkernel::Isa isa : supported_isas()) {
    SketchConfig cfg;
    cfg.d = 96;
    cfg.seed = 777;
    cfg.kernel = kernel;
    cfg.parallel = mode;
    cfg.isa = isa;
    // Odd-ish blocks so block-boundary tails occur and the item count
    // comfortably exceeds the team size.
    cfg.block_d = 40;
    cfg.block_n = 17;

    SketchConfig uniform = cfg;
    uniform.schedule = ScheduleMode::Uniform;
    DenseMatrix<T> u(cfg.d, a.cols());
    const SketchStats us = sketch_into(uniform, a, u);

    SketchConfig balanced = cfg;
    balanced.schedule = ScheduleMode::Balanced;
    DenseMatrix<T> b(cfg.d, a.cols());
    const SketchStats bs = sketch_into(balanced, a, b);

    expect_bitwise_equal(
        u, b,
        std::string("kernel=") + to_string(kernel) + " isa=" +
            microkernel::to_string(isa));
    EXPECT_EQ(us.samples_generated > 0, bs.samples_generated > 0);
    // The balanced run consulted the cost model; uniform never does.
    EXPECT_EQ(us.schedule_imbalance_est, 0.0);
    EXPECT_GE(bs.schedule_imbalance_est, 0.0);
  }
}

TEST(ScheduleBitwise, KjiDBlocksFloat) {
  check_balanced_matches_uniform<float>(KernelVariant::Kji,
                                        ParallelOver::DBlocks);
}
TEST(ScheduleBitwise, KjiDBlocksDouble) {
  check_balanced_matches_uniform<double>(KernelVariant::Kji,
                                         ParallelOver::DBlocks);
}
TEST(ScheduleBitwise, KjiNBlocksDouble) {
  check_balanced_matches_uniform<double>(KernelVariant::Kji,
                                         ParallelOver::NBlocks);
}
TEST(ScheduleBitwise, JkiDBlocksFloat) {
  check_balanced_matches_uniform<float>(KernelVariant::Jki,
                                        ParallelOver::DBlocks);
}
TEST(ScheduleBitwise, JkiDBlocksDouble) {
  check_balanced_matches_uniform<double>(KernelVariant::Jki,
                                         ParallelOver::DBlocks);
}
TEST(ScheduleBitwise, JkiNBlocksDouble) {
  check_balanced_matches_uniform<double>(KernelVariant::Jki,
                                         ParallelOver::NBlocks);
}

TEST(ScheduleBitwise, SequentialMatchesParallelBalanced) {
  // The ladder invariant extends through the scheduler: thread count and
  // schedule together still never change a bit.
  ThreadCountGuard guard(4);
  const auto a = random_sparse<double>(200, 80, 0.05, 19);
  SketchConfig cfg;
  cfg.d = 64;
  cfg.seed = 99;
  cfg.block_d = 24;
  cfg.block_n = 13;
  cfg.parallel = ParallelOver::Sequential;
  DenseMatrix<double> seq(cfg.d, a.cols());
  sketch_into(cfg, a, seq);

  cfg.parallel = ParallelOver::DBlocks;
  cfg.schedule = ScheduleMode::Balanced;
  DenseMatrix<double> par(cfg.d, a.cols());
  sketch_into(cfg, a, par);
  expect_bitwise_equal(seq, par, "sequential vs balanced parallel");
}

// -------------------------------------------------------------- stopping --

TEST(ScheduleStop, CancelledRunLeavesOutputUntouched) {
  // A cancelled control must stop the scheduled walk at block granularity
  // with the complete-or-untouched guarantee intact (armed runs stage).
  ThreadCountGuard guard(4);
  const auto a = random_sparse<double>(300, 90, 0.05, 7);
  SketchConfig cfg;
  cfg.d = 80;
  cfg.block_d = 16;
  cfg.block_n = 16;
  cfg.parallel = ParallelOver::DBlocks;
  cfg.schedule = ScheduleMode::Balanced;
  RunControl rc;
  rc.request_cancel();
  cfg.control = &rc;

  DenseMatrix<double> out(cfg.d, a.cols());
  const double sentinel = -12345.5;
  for (index_t j = 0; j < out.cols(); ++j) {
    for (index_t i = 0; i < out.rows(); ++i) out.col(j)[i] = sentinel;
  }
  bool threw = false;
  try {
    sketch_into(cfg, a, out);
  } catch (const run_stopped_error& e) {
    threw = true;
    EXPECT_EQ(e.cause(), StopCause::Cancelled);
  }
  EXPECT_TRUE(threw);
  for (index_t j = 0; j < out.cols(); ++j) {
    for (index_t i = 0; i < out.rows(); ++i) {
      ASSERT_EQ(out.col(j)[i], sentinel) << "output touched at (" << i << ","
                                         << j << ")";
    }
  }
}

// ------------------------------------------------------------- skew bias --

TEST(ScheduleSkew, SingleDenseRowCapsBlockN) {
  // One dense row among otherwise empty ones: max degree = n while the mean
  // is n/m — far past the 8× trigger. The bias must shrink b_n so the dense
  // row's work splits into at least 4 blocks per thread.
  const index_t m = 100;
  const index_t n = 2000;
  std::vector<index_t> col_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> row_idx(static_cast<std::size_t>(n), 0);
  std::vector<double> values(static_cast<std::size_t>(n), 1.0);
  for (index_t j = 0; j <= n; ++j) {
    col_ptr[static_cast<std::size_t>(j)] = j;
  }
  const CscMatrix<double> a(m, n, std::move(col_ptr), std::move(row_idx),
                            std::move(values));
  const RowDegreeStats stats = row_degree_stats(a);
  EXPECT_GE(stats.max_fraction * static_cast<double>(n),
            kSkewBiasRatio * stats.mean);

  BlockSuggestion s;
  s.block_d = 64;
  s.block_n = n;  // model says "one big slab"
  const BlockSuggestion biased = bias_blocks_for_skew(s, stats, n, 4);
  EXPECT_LE(biased.block_n, ceil_div(n, index_t{16}));
  EXPECT_GE(biased.block_n, 1);
  EXPECT_EQ(biased.block_d, s.block_d);  // only b_n is biased

  // Sequential runs and balanced patterns are left alone.
  EXPECT_EQ(bias_blocks_for_skew(s, stats, n, 1).block_n, n);
  RowDegreeStats flat;
  flat.mean = 10.0;
  flat.max_fraction = 10.0 / static_cast<double>(n);
  EXPECT_EQ(bias_blocks_for_skew(s, flat, n, 4).block_n, n);
}

// --------------------------------------------------------------- pinning --

TEST(SchedulePin, OffNeverPinsAndOnDegradesGracefully) {
  EXPECT_FALSE(pin_this_thread(PinMode::Off, 0, 4));
  // Compact/scatter either pin (Linux) or report false (elsewhere); both
  // must be safe to call from any thread with any team geometry.
  (void)pin_this_thread(PinMode::Compact, 0, 1);
  (void)pin_this_thread(PinMode::Scatter, 3, 4);
  (void)pin_this_thread(PinMode::Scatter, 100, 4);  // id past the team
  SUCCEED();
}

}  // namespace
}  // namespace rsketch
