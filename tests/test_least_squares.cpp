// Least-squares utilities: error metric, diagonal scaling, rhs construction,
// condition estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "solvers/least_squares.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"

namespace rsketch {
namespace {

TEST(ErrorMetric, ZeroAtExactSolution) {
  // Integer-valued data keeps every FP operation exact, so the recomputed
  // residual is exactly zero and the metric returns its defined value 0.
  auto a = random_sparse<double>(40, 10, 0.3, 1);
  for (auto& v : a.values()) v = v > 0 ? 1.0 : -1.0;
  std::vector<double> x(10);
  for (index_t j = 0; j < 10; ++j) x[j] = static_cast<double>(j - 4);
  std::vector<double> b(40, 0.0);
  spmv(a, x.data(), b.data());
  EXPECT_DOUBLE_EQ(ls_error_metric(a, x, b), 0.0);
}

TEST(ErrorMetric, PositiveAwayFromOptimum) {
  const auto a = random_sparse<double>(40, 10, 0.3, 2);
  const auto b = make_least_squares_rhs(a, 3);
  std::vector<double> x(10, 0.0);  // not the minimizer
  EXPECT_GT(ls_error_metric(a, x, b), 1e-6);
}

TEST(ErrorMetric, DimensionMismatchThrows) {
  const auto a = random_sparse<double>(40, 10, 0.3, 4);
  std::vector<double> x(9, 0.0), b(40, 1.0);
  EXPECT_THROW(ls_error_metric(a, x, b), invalid_argument_error);
}

TEST(DiagScales, InverseColumnNorms) {
  const auto a = random_sparse<double>(60, 8, 0.4, 5);
  const auto scales = diag_precond_scales(a);
  const auto norms = column_norms(a);
  for (index_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(scales[j], 1.0 / norms[j], 1e-12);
  }
}

TEST(DiagScales, NegligibleColumnGetsUnitScale) {
  // One column with a single tiny entry far below the epsilon cutoff.
  CooMatrix<double> coo(10, 2);
  coo.push(0, 0, 1.0);
  coo.push(1, 0, 2.0);
  coo.push(5, 1, 1e-300);
  const auto a = coo_to_csc(coo);
  const auto scales = diag_precond_scales(a);
  EXPECT_DOUBLE_EQ(scales[1], 1.0);
}

TEST(MakeRhs, HasRangeAndNoiseComponents) {
  const auto a = random_sparse<double>(200, 12, 0.2, 6);
  const auto b = make_least_squares_rhs(a, 7);
  ASSERT_EQ(static_cast<index_t>(b.size()), 200);
  double norm = 0.0;
  for (double v : b) norm += v * v;
  EXPECT_GT(norm, 0.0);
  // Deterministic per seed.
  const auto b2 = make_least_squares_rhs(a, 7);
  EXPECT_EQ(b, b2);
  const auto b3 = make_least_squares_rhs(a, 8);
  EXPECT_NE(b, b3);
}

TEST(CondEstimate, DiagonalMatrixExact) {
  CooMatrix<double> coo(5, 3);
  coo.push(0, 0, 10.0);
  coo.push(1, 1, 2.0);
  coo.push(2, 2, 0.5);
  const auto a = coo_to_csc(coo);
  EXPECT_NEAR(cond_estimate(a), 20.0, 1e-9);
}

TEST(CondEstimate, ScalingFixesArtificialIllConditioning) {
  auto base = random_sparse<double>(300, 15, 0.3, 8);
  const auto bad = scale_columns_log_uniform(base, -6.0, 6.0, 9);
  const double cond_raw = cond_estimate(bad);
  const double cond_scaled = cond_estimate(bad, diag_precond_scales(bad));
  EXPECT_GT(cond_raw, 1e6);
  EXPECT_LT(cond_scaled, 1e4);
  EXPECT_LT(cond_scaled, cond_raw / 100.0);
}

TEST(CscOperator, AppliesMatrixAndAdjoint) {
  const auto a = random_sparse<double>(25, 10, 0.3, 10);
  const auto op = csc_operator(a);
  EXPECT_EQ(op.rows, 25);
  EXPECT_EQ(op.cols, 10);
  std::vector<double> x(10, 1.0), y(25, 0.0), ref(25, 0.0);
  op.apply(x.data(), y.data());
  spmv(a, x.data(), ref.data());
  EXPECT_EQ(y, ref);
}

}  // namespace
}  // namespace rsketch
