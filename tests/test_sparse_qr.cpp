// George–Heath sparse Givens QR (the SuiteSparseQR stand-in): solution
// accuracy against independent solvers, fill-in accounting, rank handling.
#include <gtest/gtest.h>

#include <cmath>

#include "solvers/least_squares.hpp"
#include "solvers/sparse_qr.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"

namespace rsketch {
namespace {

TEST(SparseQr, ExactOnConsistentSystem) {
  const auto a = random_sparse<double>(50, 15, 0.25, 1);
  std::vector<double> x_true(15);
  for (index_t j = 0; j < 15; ++j) x_true[j] = 1.0 + 0.3 * j;
  std::vector<double> b(50, 0.0);
  spmv(a, x_true.data(), b.data());

  const auto res = sparse_qr_least_squares(a, b.data());
  EXPECT_EQ(res.rank, 15);
  for (index_t j = 0; j < 15; ++j) EXPECT_NEAR(res.x[j], x_true[j], 1e-9);
}

TEST(SparseQr, LeastSquaresOptimality) {
  const auto a = random_sparse<double>(200, 25, 0.1, 2);
  const auto b = make_least_squares_rhs(a, 3);
  const auto res = sparse_qr_least_squares(a, b.data());
  // Direct method: error metric at machine-precision level.
  EXPECT_LT(ls_error_metric(a, res.x, b), 1e-12);
}

TEST(SparseQr, ReorderingPreservesSolution) {
  const auto a = random_sparse<double>(120, 20, 0.15, 4);
  const auto b = make_least_squares_rhs(a, 5);
  const auto with = sparse_qr_least_squares(a, b.data(), true);
  const auto without = sparse_qr_least_squares(a, b.data(), false);
  for (index_t j = 0; j < 20; ++j) {
    EXPECT_NEAR(with.x[j], without.x[j],
                1e-8 * (std::fabs(without.x[j]) + 1.0));
  }
}

TEST(SparseQr, FillInReported) {
  const auto a = random_sparse<double>(300, 40, 0.08, 6);
  const auto b = make_least_squares_rhs(a, 7);
  const auto res = sparse_qr_least_squares(a, b.data());
  EXPECT_GT(res.r_nnz, 0);
  EXPECT_GT(res.r_bytes, 0u);
  // R is n×n upper triangular at most.
  EXPECT_LE(res.r_nnz, 40 * 41 / 2);
  EXPECT_GT(res.factor_seconds, 0.0);
}

TEST(SparseQr, StructurallyDeficientColumnGetsZero) {
  // Column 2 entirely zero → basic solution with x[2] = 0.
  CooMatrix<double> coo(6, 3);
  coo.push(0, 0, 1.0);
  coo.push(1, 0, 2.0);
  coo.push(2, 1, 3.0);
  coo.push(3, 1, 1.0);
  const auto a = coo_to_csc(coo);
  std::vector<double> b = {1.0, 2.0, 3.0, 1.0, 0.0, 0.0};
  const auto res = sparse_qr_least_squares(a, b.data());
  EXPECT_EQ(res.rank, 2);
  EXPECT_DOUBLE_EQ(res.x[2], 0.0);
  EXPECT_NEAR(res.x[0], 1.0, 1e-12);
  EXPECT_NEAR(res.x[1], 1.0, 1e-12);
}

TEST(SparseQr, MatchesLsqrOnRandomProblem) {
  const auto a = random_sparse<double>(150, 18, 0.2, 8);
  const auto b = make_least_squares_rhs(a, 9);
  const auto direct = sparse_qr_least_squares(a, b.data());
  LsqrOptions opt;
  opt.tol = 1e-14;
  opt.max_iter = 5000;
  const auto iter = lsqr_diag_precond(a, b, opt);
  for (index_t j = 0; j < 18; ++j) {
    EXPECT_NEAR(direct.x[j], iter.x[j],
                1e-6 * (std::fabs(iter.x[j]) + 1.0));
  }
}

TEST(SparseQr, WideInputThrows) {
  const auto a = random_sparse<double>(5, 10, 0.3, 10);
  std::vector<double> b(5, 1.0);
  EXPECT_THROW(sparse_qr_least_squares(a, b.data()), invalid_argument_error);
}

TEST(SparseQr, DenseRowsCauseFill) {
  // Abnormal_A-like: a few dense rows make R dense — fill-in must show up.
  const auto a = abnormal_a<double>(100, 20, 10, 11);
  std::vector<double> b(100, 1.0);
  const auto res = sparse_qr_least_squares(a, b.data(), false);
  // Dense rows rotate into a fully dense R: n(n+1)/2 entries.
  EXPECT_GT(res.r_nnz, 20 * 21 / 4);
}

TEST(SparseQr, HandlesEmptyRows) {
  CooMatrix<double> coo(8, 2);
  coo.push(0, 0, 1.0);
  coo.push(7, 1, 2.0);
  const auto a = coo_to_csc(coo);
  std::vector<double> b = {3.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 4.0};
  const auto res = sparse_qr_least_squares(a, b.data());
  EXPECT_NEAR(res.x[0], 3.0, 1e-12);
  EXPECT_NEAR(res.x[1], 2.0, 1e-12);
}

}  // namespace
}  // namespace rsketch
