// §III-A model: the closed-form corner cases and the numeric optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/roofline.hpp"

namespace rsketch {
namespace {

RooflineParams params(double m, double h, double rho, double b = 100.0) {
  RooflineParams p;
  p.cache_elems = m;
  p.rng_cost = h;
  p.density = rho;
  p.machine_balance = b;
  return p;
}

TEST(Roofline, Eq5SmallRhoCiAtN1EqualsClosedForm) {
  // For ρ → 0 and n₁ = 1, CI must approach 2M/(4+Mh) (Eq. 5).
  const double m = 1e6, h = 0.1;
  const auto p = params(m, h, 1e-9);
  EXPECT_NEAR(ci(p, 1.0) / ci_small_rho(m, h), 1.0, 1e-6);
}

TEST(Roofline, OptimalN1IsOneForTinyRho) {
  const auto p = params(1e6, 0.2, 1e-10);
  EXPECT_DOUBLE_EQ(optimal_n1(p, 1e4), 1.0);
}

TEST(Roofline, OptimalN1MatchesClosedFormForDenseCase)
{
  // ρ → 1: n₁* = sqrt(hM)/(2 sqrt(ρ)) (§III-A2).
  const double m = 4e6, h = 0.25, rho = 0.9999999;
  const auto p = params(m, h, rho);
  const double expected = std::sqrt(h * m) / (2.0 * std::sqrt(rho));
  EXPECT_NEAR(optimal_n1(p, 1e7) / expected, 1.0, 0.01);
}

TEST(Roofline, Eq7LargeRhoFraction) {
  const double m = 1e6, h = 0.25, rho = 1.0, b = 50.0;
  const auto p = params(m, h, rho, b);
  const double expected = std::sqrt(m * rho) / (2.0 * b * std::sqrt(h));
  EXPECT_NEAR(peak_fraction_large_rho(p), std::min(1.0, expected), 1e-12);
}

TEST(Roofline, BeatsGemmBoundByRootMWhenHIsZero) {
  // The headline claim: with free RNG, CI = M/2 vs GEMM's sqrt(M) —
  // a factor of sqrt(M)/2 improvement.
  const double m = 1e6, b = 1e9;  // huge B so fractions stay < 1
  const double ours = ci_small_rho(m, 0.0);
  const double gemm_ci = std::sqrt(m);
  EXPECT_NEAR(ours / gemm_ci, std::sqrt(m) / 2.0, 1e-6);
  EXPECT_GT(peak_fraction(ours, b), gemm_peak_fraction(m, b));
}

TEST(Roofline, ExpensiveRngDegradesCi) {
  const double m = 1e6;
  EXPECT_GT(ci_small_rho(m, 0.01), ci_small_rho(m, 0.1));
  EXPECT_GT(ci_small_rho(m, 0.1), ci_small_rho(m, 1.0));
  // With Mh >> 4 the CI approaches 2/h, independent of M.
  EXPECT_NEAR(ci_small_rho(1e9, 0.5), 2.0 / 0.5, 0.1);
}

TEST(Roofline, ModelBlocksRespectCacheConstraint) {
  const auto p = params(1e6, 0.1, 1e-3);
  for (double n1 : {1.0, 10.0, 100.0}) {
    const auto b = model_blocks(p, n1);
    EXPECT_NEAR(b.d1 * n1 + b.m1 * n1 * p.density, p.cache_elems,
                1e-6 * p.cache_elems);
  }
}

TEST(Roofline, InverseCiIsReciprocalOfCi) {
  const auto p = params(5e5, 0.3, 1e-2);
  for (double n1 : {1.0, 7.0, 33.0}) {
    EXPECT_NEAR(ci(p, n1) * inverse_ci(p, n1), 1.0, 1e-12);
  }
}

TEST(Roofline, OptimizerBeatsNeighbors) {
  // Optimality check: n₁* must not be improved by ±1.
  const auto p = params(2e6, 0.15, 5e-3);
  const double n1 = optimal_n1(p, 1e5);
  const double f = inverse_ci(p, n1);
  EXPECT_LE(f, inverse_ci(p, n1 + 1.0) + 1e-15);
  if (n1 > 1.0) {
    EXPECT_LE(f, inverse_ci(p, n1 - 1.0) + 1e-15);
  }
}

TEST(Roofline, PeakFractionCapsAtOne) {
  EXPECT_DOUBLE_EQ(peak_fraction(1e12, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gemm_peak_fraction(4.0, 1e9), 2.0 / 1e9);
}

}  // namespace
}  // namespace rsketch
