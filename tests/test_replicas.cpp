// The synthetic dataset replicas behind the benchmark suite.
#include <gtest/gtest.h>

#include <cmath>

#include "solvers/least_squares.hpp"
#include "sparse/ops.hpp"
#include "testdata/replicas.hpp"

namespace rsketch {
namespace {

class SpmmReplicas : public ::testing::TestWithParam<std::string> {};

TEST_P(SpmmReplicas, ShapeTracksPaperDimensions) {
  const std::string name = GetParam();
  const index_t scale = 12;
  const auto a = make_spmm_replica<float>(name, scale);
  a.validate();
  const SpmmReplicaInfo* info = nullptr;
  for (const auto& i : spmm_replica_infos()) {
    if (i.name == name) info = &i;
  }
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(a.rows(), std::max<index_t>(1, info->m / scale));
  EXPECT_EQ(a.cols(), std::max<index_t>(1, info->n / scale));
  EXPECT_GT(a.nnz(), 0);
  EXPECT_EQ(spmm_replica_d(name, scale), 3 * a.cols());
}

TEST_P(SpmmReplicas, Deterministic) {
  const std::string name = GetParam();
  const auto a = make_spmm_replica<float>(name, 16);
  const auto b = make_spmm_replica<float>(name, 16);
  EXPECT_EQ(a.row_idx(), b.row_idx());
  EXPECT_EQ(a.values(), b.values());
}

TEST_P(SpmmReplicas, PerColumnStructureMatchesOriginalFamily) {
  const std::string name = GetParam();
  const auto a = make_spmm_replica<float>(name, 12);
  const SpmmReplicaInfo* info = nullptr;
  for (const auto& i : spmm_replica_infos()) {
    if (i.name == name) info = &i;
  }
  const index_t k = (info->nnz + info->n - 1) / info->n;
  if (name != "mesh_deform") {
    // Boundary-matrix style: every column has exactly k entries.
    for (index_t j = 0; j < a.cols(); ++j) EXPECT_EQ(a.col_nnz(j), k);
  } else {
    // Banded: entries are near the scaled diagonal.
    const index_t m = a.rows(), n = a.cols();
    const index_t band = std::max<index_t>(k, m / 50);
    for (index_t j = 0; j < n; j += 37) {
      const index_t center = static_cast<index_t>(
          (static_cast<double>(j) / (n - 1)) * (m - 1));
      for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
        EXPECT_LE(std::abs(a.row_idx()[p] - center), band);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, SpmmReplicas,
                         ::testing::Values("mk-12", "ch7-9-b3", "shar_te2-b2",
                                           "mesh_deform", "cis-n4c6-b4"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(SpmmReplicas, UnknownNameThrows) {
  EXPECT_THROW(make_spmm_replica<float>("nope", 4), invalid_argument_error);
  EXPECT_THROW(spmm_replica_d("nope", 4), invalid_argument_error);
  EXPECT_THROW(make_spmm_replica<float>("mk-12", 0), invalid_argument_error);
}

class LsReplicas : public ::testing::TestWithParam<std::string> {};

TEST_P(LsReplicas, TallShapeAndDensity) {
  const std::string name = GetParam();
  const index_t scale = 12;
  const auto a = make_ls_replica(name, scale);
  a.validate();
  EXPECT_GT(a.rows(), a.cols()) << "LS replicas must be tall";
  EXPECT_GT(a.nnz(), 0);
  const LsReplicaInfo* info = nullptr;
  for (const auto& i : ls_replica_infos()) {
    if (i.name == name) info = &i;
  }
  ASSERT_NE(info, nullptr);
  // The rail/spal replicas add a 3-nnz-per-column spectral band on top of
  // the random filler, which inflates density at aggressive scales — accept
  // a factor-2 bracket around the paper's density.
  const double paper_density =
      static_cast<double>(info->nnz) /
      (static_cast<double>(info->m) * static_cast<double>(info->n));
  EXPECT_GT(a.density(), paper_density / 2.0);
  EXPECT_LT(a.density(), paper_density * 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllSeven, LsReplicas,
                         ::testing::Values("rail2586", "spal_004", "rail4284",
                                           "rail582", "specular", "connectus",
                                           "landmark"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(LsReplicas, SpecularIllConditioningIsColumnScaling) {
  const auto a = make_ls_replica("specular", 16);
  const auto norms = column_norms(a);
  double lo = 1e300, hi = 0.0;
  for (double v : norms) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Column norms span many orders of magnitude (source of cond(A) ~ 1e14)...
  EXPECT_GT(hi / lo, 1e8);
  // ...and diagonal scaling fixes it (cond(AD) ≈ 30 in the paper).
  const double cond_scaled = cond_estimate(a, diag_precond_scales(a));
  EXPECT_LT(cond_scaled, 1e3);
}

TEST(LsReplicas, ConnectusStaysIllConditionedAfterScaling) {
  const auto a = make_ls_replica("connectus", 16);
  const double cond_scaled = cond_estimate(a, diag_precond_scales(a));
  EXPECT_GT(cond_scaled, 1e8) << "near-duplicate columns must survive scaling";
}

TEST(LsReplicas, UnknownNameThrows) {
  EXPECT_THROW(make_ls_replica("nope", 4), invalid_argument_error);
}

}  // namespace
}  // namespace rsketch
