// Tests for the synthetic sparse generators, including the Table VI
// Abnormal patterns and the conditioning-profile constructions.
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/generate.hpp"
#include "sparse/ops.hpp"

namespace rsketch {
namespace {

TEST(RandomSparse, DensityApproximatelyMatches) {
  const index_t m = 2000, n = 500;
  const double rho = 0.01;
  const auto a = random_sparse<double>(m, n, rho, 1);
  a.validate();
  const double got = a.density();
  EXPECT_NEAR(got, rho, 4.0 * std::sqrt(rho / (m * n)) + 0.002);
}

TEST(RandomSparse, Deterministic) {
  const auto a = random_sparse<double>(100, 50, 0.05, 42);
  const auto b = random_sparse<double>(100, 50, 0.05, 42);
  EXPECT_EQ(a.row_idx(), b.row_idx());
  EXPECT_EQ(a.values(), b.values());
  const auto c = random_sparse<double>(100, 50, 0.05, 43);
  EXPECT_NE(a.row_idx(), c.row_idx());
}

TEST(RandomSparse, ExtremeDensities) {
  const auto empty = random_sparse<double>(50, 20, 0.0, 1);
  EXPECT_EQ(empty.nnz(), 0);
  const auto full = random_sparse<double>(30, 10, 1.0, 1);
  EXPECT_EQ(full.nnz(), 300);
  full.validate();
}

TEST(RandomSparse, ValuesInRange) {
  const auto a = random_sparse<double>(200, 100, 0.05, 5);
  for (double v : a.values()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RandomSparse, InvalidArgsThrow) {
  EXPECT_THROW(random_sparse<double>(10, 10, -0.1, 1), invalid_argument_error);
  EXPECT_THROW(random_sparse<double>(10, 10, 1.5, 1), invalid_argument_error);
}

TEST(FixedNnzPerCol, ExactCounts) {
  const auto a = fixed_nnz_per_col<double>(100, 40, 7, 3);
  a.validate();
  EXPECT_EQ(a.nnz(), 280);
  for (index_t j = 0; j < 40; ++j) EXPECT_EQ(a.col_nnz(j), 7);
}

TEST(FixedNnzPerCol, DenseRegime) {
  // k close to m exercises the sweep-sampling branch.
  const auto a = fixed_nnz_per_col<double>(10, 5, 9, 3);
  a.validate();
  for (index_t j = 0; j < 5; ++j) EXPECT_EQ(a.col_nnz(j), 9);
}

TEST(FixedNnzPerCol, KEqualsM) {
  const auto a = fixed_nnz_per_col<double>(8, 3, 8, 3);
  EXPECT_EQ(a.nnz(), 24);
  for (index_t j = 0; j < 3; ++j) {
    for (index_t i = 0; i < 8; ++i) EXPECT_NE(a.at(i, j), 0.0);
  }
}

TEST(FixedNnzPerCol, InvalidKThrows) {
  EXPECT_THROW(fixed_nnz_per_col<double>(5, 2, 6, 1), invalid_argument_error);
  EXPECT_THROW(fixed_nnz_per_col<double>(5, 2, -1, 1), invalid_argument_error);
}

TEST(BandedSparse, EntriesWithinBand) {
  const index_t m = 500, n = 100, band = 30;
  const auto a = banded_sparse<double>(m, n, band, 0.02, 9);
  a.validate();
  for (index_t j = 0; j < n; ++j) {
    const index_t center = static_cast<index_t>(
        (static_cast<double>(j) / (n - 1)) * (m - 1));
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      EXPECT_LE(std::abs(a.row_idx()[p] - center), band);
    }
  }
}

TEST(AbnormalA, DenseRowsAtStride) {
  const index_t m = 100, n = 20, stride = 10;
  const auto a = abnormal_a<double>(m, n, stride, 4);
  a.validate();
  EXPECT_EQ(a.nnz(), (m / stride) * n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      EXPECT_EQ(a.row_idx()[p] % stride, 0);
    }
  }
}

TEST(AbnormalB, MassConcentratedInMiddleThird) {
  const index_t m = 1000, n = 300;
  const double rho = 1e-2, conc = 2998.0 / 3000.0;
  const auto a = abnormal_b<double>(m, n, rho, conc, 4);
  a.validate();
  index_t mid = 0;
  for (index_t j = n / 3; j < 2 * n / 3; ++j) mid += a.col_nnz(j);
  EXPECT_GT(static_cast<double>(mid) / a.nnz(), 0.95);
}

TEST(AbnormalC, DenseColumnsAtStride) {
  const index_t m = 60, n = 50, stride = 10;
  const auto a = abnormal_c<double>(m, n, stride, 4);
  a.validate();
  for (index_t j = 0; j < n; ++j) {
    if (j % stride == 0) {
      EXPECT_EQ(a.col_nnz(j), m);
    } else {
      EXPECT_EQ(a.col_nnz(j), 0);
    }
  }
}

TEST(ScaleColumnsLogUniform, ProducesWideNormSpread) {
  const auto base = random_sparse<double>(400, 60, 0.1, 8);
  const auto scaled = scale_columns_log_uniform(base, -6.0, 6.0, 9);
  EXPECT_EQ(scaled.nnz(), base.nnz());
  const auto norms = column_norms(scaled);
  double lo = 1e300, hi = 0.0;
  for (double v : norms) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 1e6);  // spread spans many orders of magnitude
}

TEST(AppendNearDuplicateCols, AddsNearlyParallelColumns) {
  const auto base = random_sparse<double>(300, 20, 0.1, 8);
  const auto aug = append_near_duplicate_cols(base, 5, 1e-12, 9);
  EXPECT_EQ(aug.cols(), 25);
  EXPECT_EQ(aug.rows(), 300);
  aug.validate();
  // Each appended column must be numerically parallel to some base column:
  // check its normalized inner product with the best base match.
  for (index_t dcol = 20; dcol < 25; ++dcol) {
    double best = 0.0;
    for (index_t j = 0; j < 20; ++j) {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (index_t i = 0; i < 300; ++i) {
        const double x = aug.at(i, dcol), y = aug.at(i, j);
        dot += x * y;
        na += x * x;
        nb += y * y;
      }
      if (na > 0 && nb > 0) {
        best = std::max(best, std::fabs(dot) / std::sqrt(na * nb));
      }
    }
    EXPECT_GT(best, 1.0 - 1e-9);
  }
}

}  // namespace
}  // namespace rsketch
