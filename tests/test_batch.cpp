// Tests for the batch-serving layer (sketch/batch.hpp + support/executor.hpp):
// batch outputs are bitwise-identical to direct sketch_into calls across
// kernels and ISA tiers, batch-level cancel/deadline fan out to every queued
// job exactly once with complete-or-untouched outputs, work stealing keeps
// its books straight under a deliberately skewed submit, the shared arena
// recycles slabs and respects the batch budget (degrading per the PR-7
// ladder), and pool workers retire their trace rings when they park instead
// of holding events (and thread names) hostage. The `parallel` label runs
// all of this under TSan in CI; the `batch` label gives the dedicated batch
// CI job a handle on it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dense/microkernel.hpp"
#include "perf/json.hpp"
#include "perf/perf.hpp"
#include "perf/trace.hpp"
#include "sketch/batch.hpp"
#include "sketch/sketch.hpp"
#include "solvers/least_squares.hpp"
#include "sparse/generate.hpp"
#include "support/executor.hpp"
#include "support/run_control.hpp"
#include "testdata/faults.hpp"

namespace rsketch {
namespace {

template <typename T>
void expect_bitwise_equal(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

/// Fill with a sentinel so "untouched" is distinguishable from "zeroed".
DenseMatrix<double> sentinel_matrix(index_t rows, index_t cols) {
  DenseMatrix<double> m(rows, cols);
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) m(i, j) = -123.25;
  }
  return m;
}

void expect_sentinel_intact(const DenseMatrix<double>& m) {
  for (index_t j = 0; j < m.cols(); ++j) {
    for (index_t i = 0; i < m.rows(); ++i) {
      ASSERT_EQ(m(i, j), -123.25) << "output mutated at (" << i << ", " << j
                                  << ") despite the stop";
    }
  }
}

// --------------------------------------------------------------- executor --

TEST(Executor, RunsEverySubmittedTaskOnce) {
  Executor exec(3);
  EXPECT_EQ(exec.workers(), 3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    exec.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  exec.wait_idle();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(exec.executed(), 64u);
  EXPECT_EQ(exec.queue_depth(), 0u);
}

TEST(Executor, SkewedPlacementForcesStealing) {
  // Every task lands on worker 0's queue; the wave's first task sleeps, so
  // the only way the rest can run before it wakes is for workers 1..3 to
  // steal them (sleeping releases the CPU, so this holds on one core too).
  // One wave can theoretically complete steal-free — e.g. the OS is slow
  // enough starting threads 1..3 that worker 0 drains everything — so the
  // test retries with fresh waves (by which point every thread is long
  // alive) instead of betting on a single 200 ms window.
  Executor exec(4);
  std::atomic<int> ran{0};
  int waves = 0;
  while (waves < 5 && exec.steals() == 0) {
    ++waves;
    exec.submit_to(0, [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    });
    for (int i = 0; i < 15; ++i) {
      exec.submit_to(0,
                     [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    exec.wait_idle();
  }
  EXPECT_EQ(ran.load(), 15 * waves);
  EXPECT_EQ(exec.executed(), static_cast<std::uint64_t>(16 * waves));
  EXPECT_GE(exec.steals(), 1u);
  EXPECT_EQ(exec.queue_depth(), 0u);
}

TEST(Executor, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    Executor exec(2);
    for (int i = 0; i < 32; ++i) {
      exec.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor must drain, not drop.
  }
  EXPECT_EQ(ran.load(), 32);
}

// ---------------------------------------------------------------- bitwise --

TEST(BatchBitwise, MatchesDirectCallAcrossKernelsAndIsaTiers) {
  const auto a = random_sparse<double>(1500, 120, 0.02, 321);
  const KernelVariant kernels[] = {KernelVariant::Kji, KernelVariant::Jki};
  const microkernel::Isa tiers[] = {microkernel::Isa::Scalar,
                                    microkernel::best_supported(),
                                    microkernel::Isa::Auto};
  BatchOptions options;
  options.workers = 2;
  SketchBatch batch(options);
  for (const KernelVariant kernel : kernels) {
    for (const microkernel::Isa isa : tiers) {
      SketchConfig cfg;
      cfg.d = 64;
      cfg.seed = 99;
      cfg.kernel = kernel;
      cfg.isa = isa;
      cfg.block_d = 32;
      cfg.block_n = 48;
      // Direct call keeps the default parallel mode; the batch forces small
      // jobs sequential — bitwise-equal outputs prove the invariant holds
      // through the pool, not just that both sides ran the same code path.
      DenseMatrix<double> expected;
      sketch_into(cfg, a, expected);
      DenseMatrix<double> out(cfg.d, a.cols());
      auto handle = batch.submit(cfg, a, out);
      EXPECT_NO_THROW(handle.stats());
      expect_bitwise_equal(expected, out);
    }
  }
}

TEST(BatchBitwise, MixedJobStreamMatchesSequentialReference) {
  const auto a0 = random_sparse<double>(1200, 96, 0.01, 11);
  const auto a1 = random_sparse<double>(2000, 128, 0.02, 12);
  constexpr int kJobs = 24;
  std::vector<DenseMatrix<double>> expected;
  std::vector<DenseMatrix<double>> out;
  std::vector<SketchConfig> cfgs;
  for (int i = 0; i < kJobs; ++i) {
    SketchConfig cfg;
    cfg.d = i % 3 == 0 ? 80 : 48;
    cfg.seed = 5000 + static_cast<std::uint64_t>(i);
    cfg.kernel = i % 2 == 0 ? KernelVariant::Kji : KernelVariant::Jki;
    cfgs.push_back(cfg);
    const auto& a = i % 2 == 0 ? a0 : a1;
    DenseMatrix<double> ref;
    sketch_into(cfg, a, ref);
    expected.push_back(std::move(ref));
    out.emplace_back(cfg.d, a.cols());
  }
  BatchOptions options;
  options.workers = 4;
  SketchBatch batch(options);
  for (int i = 0; i < kJobs; ++i) {
    batch.submit(cfgs[static_cast<std::size_t>(i)],
                 i % 2 == 0 ? a0 : a1, out[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(batch.wait_all(), 0u);
  EXPECT_EQ(batch.jobs_submitted(), static_cast<std::uint64_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    expect_bitwise_equal(expected[static_cast<std::size_t>(i)],
                         out[static_cast<std::size_t>(i)]);
  }
}

TEST(BatchBitwise, SharedTunerMemoMatchesDirectTunedCall) {
  const auto a = random_sparse<double>(1500, 120, 0.02, 77);
  SketchConfig cfg;
  cfg.d = 64;
  cfg.seed = 31;
  cfg.tune = TuneMode::Model;
  DenseMatrix<double> expected;
  sketch_into(cfg, a, expected);

  BatchOptions options;
  options.workers = 2;
  SketchBatch batch(options);
  constexpr int kJobs = 4;  // same shape: one memo entry serves all four
  std::vector<DenseMatrix<double>> out;
  for (int i = 0; i < kJobs; ++i) out.emplace_back(cfg.d, a.cols());
  for (int i = 0; i < kJobs; ++i) {
    batch.submit(cfg, a, out[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(batch.wait_all(), 0u);
  for (int i = 0; i < kJobs; ++i) {
    expect_bitwise_equal(expected, out[static_cast<std::size_t>(i)]);
  }
}

// ---------------------------------------------------------- cancel/deadline --

TEST(BatchControl, PreCancelledBatchFailsEveryJobUntouched) {
  const auto a = random_sparse<double>(1200, 96, 0.01, 21);
  BatchOptions options;
  options.workers = 2;
  SketchBatch batch(options);
  batch.cancel();
  constexpr int kJobs = 8;
  std::vector<DenseMatrix<double>> out;
  std::vector<JobHandle> handles;
  for (int i = 0; i < kJobs; ++i) out.push_back(sentinel_matrix(40, a.cols()));
  for (int i = 0; i < kJobs; ++i) {
    SketchConfig cfg;
    cfg.d = 40;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    handles.push_back(batch.submit(cfg, a, out[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(batch.wait_all(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    auto& h = handles[static_cast<std::size_t>(i)];
    EXPECT_TRUE(h.failed());
    try {
      h.stats();
      FAIL() << "stats() on a cancelled job must rethrow";
    } catch (const run_stopped_error& e) {
      EXPECT_EQ(e.cause(), StopCause::Cancelled);
    }
    expect_sentinel_intact(out[static_cast<std::size_t>(i)]);
  }
}

TEST(BatchControl, ExpiredDeadlineFansOutToEveryQueuedJob) {
  faults::ScheduledFault clock;
  const auto a = random_sparse<double>(1200, 96, 0.01, 22);
  BatchOptions options;
  options.workers = 2;
  options.deadline_ms = 10.0;
  SketchBatch batch(options);
  clock.advance_ms(20.0);  // the batch deadline passed before any submit
  constexpr int kJobs = 6;
  std::vector<DenseMatrix<double>> out;
  std::vector<JobHandle> handles;
  for (int i = 0; i < kJobs; ++i) out.push_back(sentinel_matrix(40, a.cols()));
  for (int i = 0; i < kJobs; ++i) {
    SketchConfig cfg;
    cfg.d = 40;
    cfg.seed = 200 + static_cast<std::uint64_t>(i);
    handles.push_back(batch.submit(cfg, a, out[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(batch.wait_all(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    try {
      handles[static_cast<std::size_t>(i)].stats();
      FAIL() << "stats() past the batch deadline must rethrow";
    } catch (const run_stopped_error& e) {
      EXPECT_EQ(e.cause(), StopCause::DeadlineExceeded);
    }
    expect_sentinel_intact(out[static_cast<std::size_t>(i)]);
  }
}

TEST(BatchControl, MidStreamCancelLeavesEveryJobCompleteOrUntouched) {
  // Cancel lands while the stream is in flight on one worker. Which jobs it
  // catches is inherently racy; what must hold is that every job ends up
  // EITHER bitwise-complete OR sentinel-untouched — never half-written —
  // and that completion + failure accounts for every job exactly once.
  const auto a = random_sparse<double>(2000, 128, 0.02, 23);
  SketchConfig cfg;
  cfg.d = 64;
  cfg.block_d = 8;  // many outer blocks -> many poll points mid-job
  cfg.block_n = 8;
  DenseMatrix<double> expected;
  sketch_into(cfg, a, expected);

  BatchOptions options;
  options.workers = 1;  // serial pool: a queued tail exists to be cancelled
  SketchBatch batch(options);
  constexpr int kJobs = 16;
  std::vector<DenseMatrix<double>> out;
  std::vector<JobHandle> handles;
  for (int i = 0; i < kJobs; ++i) {
    out.push_back(sentinel_matrix(cfg.d, a.cols()));
  }
  for (int i = 0; i < kJobs; ++i) {
    handles.push_back(batch.submit(cfg, a, out[static_cast<std::size_t>(i)]));
  }
  handles.front().wait();
  batch.cancel();
  const std::size_t failed = batch.wait_all();
  std::size_t completed = 0;
  for (int i = 0; i < kJobs; ++i) {
    auto& h = handles[static_cast<std::size_t>(i)];
    if (h.failed()) {
      try {
        std::rethrow_exception(h.error());
      } catch (const run_stopped_error& e) {
        EXPECT_EQ(e.cause(), StopCause::Cancelled);
      } catch (...) {
        FAIL() << "job " << i << " failed with something other than a stop";
      }
      expect_sentinel_intact(out[static_cast<std::size_t>(i)]);
    } else {
      ++completed;
      expect_bitwise_equal(expected, out[static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_EQ(completed + failed, static_cast<std::size_t>(kJobs));
  EXPECT_GE(completed, 1u);  // job 0 finished before the cancel
}

// ------------------------------------------------------------------ steals --

TEST(BatchSteals, SkewedSubmitKeepsCountersConsistent) {
  perf::set_enabled(true);
  perf::reset();
  const auto a = random_sparse<double>(1200, 96, 0.01, 24);
  BatchOptions options;
  options.workers = 4;
  options.submit_worker = 0;  // test hook: pin every job to worker 0's queue
  SketchBatch batch(options);
  constexpr int kJobs = 16;
  std::vector<DenseMatrix<double>> out;
  for (int i = 0; i < kJobs; ++i) out.emplace_back(40, a.cols());
  for (int i = 0; i < kJobs; ++i) {
    SketchConfig cfg;
    cfg.d = 40;
    cfg.seed = 300 + static_cast<std::uint64_t>(i);
    batch.submit(cfg, a, out[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(batch.wait_all(), 0u);
  const auto snap = perf::snapshot();
  EXPECT_EQ(snap.get(perf::Counter::BatchJobs),
            static_cast<std::uint64_t>(kJobs));
  // Stealing volume is scheduling-dependent; its books must balance anyway.
  EXPECT_EQ(snap.get(perf::Counter::BatchSteals), batch.steals());
  EXPECT_LE(batch.steals(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(batch.queue_depth(), 0u);
}

// ------------------------------------------------------------ arena/budget --

TEST(BatchArena, SlabsAreRecycledAcrossJobs) {
  const auto a = random_sparse<double>(2000, 128, 0.02, 25);
  BatchOptions options;
  options.workers = 1;  // serialize so job 2 sees job 1's released slabs
  SketchBatch batch(options);
  SketchConfig cfg;
  cfg.d = 64;
  cfg.kernel = KernelVariant::Jki;  // the conversion allocates real scratch
  DenseMatrix<double> out0(cfg.d, a.cols());
  DenseMatrix<double> out1(cfg.d, a.cols());
  batch.submit(cfg, a, out0).wait();
  EXPECT_GT(batch.arena().slab_allocs(), 0u);
  const std::uint64_t first_allocs = batch.arena().slab_allocs();
  batch.submit(cfg, a, out1).wait();
  EXPECT_EQ(batch.wait_all(), 0u);
  expect_bitwise_equal(out0, out1);  // same cfg + seed -> same sketch
  EXPECT_GT(batch.arena().reuse_hits(), 0u);
  // An identical job needs no new slabs at all.
  EXPECT_EQ(batch.arena().slab_allocs(), first_allocs);
  EXPECT_GT(batch.arena().held_bytes(), 0u);
  batch.arena().trim();
  EXPECT_EQ(batch.arena().held_bytes(), 0u);
}

TEST(BatchBudget, ExhaustionDegradesPerLadderBitwiseClean) {
  const auto a = random_sparse<double>(300, 120, 0.05, 26);
  SketchConfig cfg;
  cfg.d = 40;
  cfg.kernel = KernelVariant::Jki;
  cfg.block_n = 16;  // several vertical blocks -> the conversion has bulk
  cfg.parallel = ParallelOver::DBlocks;
  DenseMatrix<double> unbounded;
  sketch_into(cfg, a, unbounded);

  // Batch budget = exactly the kji/sequential floor: the job's ladder must
  // shed the thread team and the jki conversion (probing remaining_bytes()
  // through the job -> batch control chain), and Â must not move a bit.
  SketchConfig floor_cfg = cfg;
  floor_cfg.kernel = KernelVariant::Kji;
  floor_cfg.parallel = ParallelOver::Sequential;
  const std::size_t floor_bytes =
      sketch_workspace_estimate<double>(floor_cfg, a.rows(), a.cols(), a.nnz());
  BatchOptions options;
  options.workers = 1;
  options.workspace_budget_bytes = floor_bytes;
  options.large_job_flops = 1.0;  // force the large-job path: keep cfg as-is
  SketchBatch batch(options);
  DenseMatrix<double> degraded(cfg.d, a.cols());
  auto handle = batch.submit(cfg, a, degraded);
  const SketchStats& stats = handle.stats();
  EXPECT_GE(stats.degradations, 1u);
  expect_bitwise_equal(unbounded, degraded);
}

TEST(BatchBudget, OnPressureFailSurfacesBudgetExceeded) {
  const auto a = random_sparse<double>(300, 120, 0.05, 27);
  BatchOptions options;
  options.workers = 1;
  options.workspace_budget_bytes = 1;  // nothing fits
  SketchBatch batch(options);
  SketchConfig cfg;
  cfg.d = 40;
  cfg.on_pressure = OnPressure::Fail;
  auto out = sentinel_matrix(cfg.d, a.cols());
  auto handle = batch.submit(cfg, a, out);
  EXPECT_TRUE(handle.failed());
  try {
    handle.stats();
    FAIL() << "stats() must rethrow the budget stop";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::BudgetExceeded);
  }
  expect_sentinel_intact(out);
}

// ----------------------------------------------------------- guarded solve --

TEST(BatchGuarded, GuardedSolveRunsAsBatchJob) {
  const auto a = random_sparse<double>(120, 40, 0.3, 2024);
  const auto b = make_least_squares_rhs(a, 7);
  BatchOptions options;
  options.workers = 1;
  SketchBatch batch(options);
  GuardedSapOptions opt;
  GuardedSapResult<double> result;
  auto handle = batch.submit_guarded_solve(opt, a, b, result);
  handle.wait();
  EXPECT_FALSE(handle.failed());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_TRUE(result.result.converged);
  EXPECT_LT(ls_error_metric(a, result.result.x, b), 1e-8);
}

TEST(BatchGuarded, BatchCancelFansIntoGuardedSolve) {
  const auto a = random_sparse<double>(120, 40, 0.3, 2024);
  const auto b = make_least_squares_rhs(a, 7);
  BatchOptions options;
  options.workers = 1;
  SketchBatch batch(options);
  batch.cancel();  // before submit: the job must fail its first poll
  GuardedSapOptions opt;
  GuardedSapResult<double> result;
  auto handle = batch.submit_guarded_solve(opt, a, b, result);
  EXPECT_TRUE(handle.failed());
  try {
    std::rethrow_exception(handle.error());
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::Cancelled);
  }
  EXPECT_EQ(result.attempts, 1);  // default-constructed: never touched
  EXPECT_TRUE(result.log.empty());
}

// ------------------------------------------------------------------- trace --

TEST(BatchTrace, ParkedWorkersRetireRingsWithoutLosingSlices) {
  perf::trace::set_output("");
  perf::trace::arm(4096);
  perf::trace::clear();
  const auto a = random_sparse<double>(1200, 96, 0.01, 28);
  constexpr int kJobs = 4;
  {
    BatchOptions options;
    options.workers = 2;
    SketchBatch batch(options);
    std::vector<DenseMatrix<double>> out;
    for (int i = 0; i < kJobs; ++i) out.emplace_back(40, a.cols());
    for (int i = 0; i < kJobs; ++i) {
      SketchConfig cfg;
      cfg.d = 40;
      cfg.seed = 400 + static_cast<std::uint64_t>(i);
      batch.submit(cfg, a, out[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(batch.wait_all(), 0u);
    // Workers are idle (possibly parked, rings retired): the export must
    // still see every job slice exactly once — live and retired records for
    // the same thread must never double-count.
    const perf::Json doc = perf::trace::chrome_trace_json();
    const perf::Json* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t begins = 0;
    std::size_t ends = 0;
    bool worker_named = false;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const perf::Json& e = events->at(i);
      const perf::Json* name = e.find("name");
      const perf::Json* ph = e.find("ph");
      if (name == nullptr || ph == nullptr) continue;
      if (name->as_string() == "batch/job") {
        if (ph->as_string() == "B") ++begins;
        if (ph->as_string() == "E") ++ends;
      }
      if (name->as_string() == "thread_name" && ph->as_string() == "M") {
        const perf::Json* args = e.find("args");
        if (args != nullptr && args->find("name") != nullptr &&
            args->find("name")->as_string().rfind("pool-worker-", 0) == 0) {
          worker_named = true;
        }
      }
    }
    EXPECT_EQ(begins, static_cast<std::size_t>(kJobs));
    EXPECT_EQ(ends, static_cast<std::size_t>(kJobs));
    // Retiring a parked ring must keep the worker's thread_name metadata.
    EXPECT_TRUE(worker_named);
  }
  // After the pool is torn down the slices must still all be there (the
  // final holder-side retire merges into the same per-tid record instead of
  // duplicating it).
  const perf::Json doc = perf::trace::chrome_trace_json();
  std::size_t begins = 0;
  const perf::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (std::size_t i = 0; i < events->size(); ++i) {
    const perf::Json& e = events->at(i);
    const perf::Json* name = e.find("name");
    const perf::Json* ph = e.find("ph");
    if (name != nullptr && ph != nullptr && name->as_string() == "batch/job" &&
        ph->as_string() == "B") {
      ++begins;
    }
  }
  EXPECT_EQ(begins, static_cast<std::size_t>(kJobs));
  perf::trace::disarm();
  perf::trace::clear();
}

}  // namespace
}  // namespace rsketch
