// Tests for the guarded sketch-and-precondition driver (solvers/guarded.hpp):
// clean problems solve on the first attempt, a poisoned sketch triggers the
// re-sketch recovery path, exhausted retries raise numeric_error, and corrupt
// inputs are rejected up front.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "perf/perf.hpp"
#include "solvers/guarded.hpp"
#include "solvers/least_squares.hpp"
#include "sparse/generate.hpp"
#include "sparse/validate.hpp"
#include "testdata/faults.hpp"

namespace rsketch {
namespace {

CscMatrix<double> tall_matrix() {
  return random_sparse<double>(120, 40, 0.3, 2024);
}

TEST(Guarded, CleanProblemSolvesFirstTry) {
  const auto a = tall_matrix();
  const auto b = make_least_squares_rhs(a, 7);
  GuardedSapOptions opt;
  const auto g = guarded_sap_solve(a, b, opt);
  EXPECT_EQ(g.attempts, 1);
  EXPECT_FALSE(g.recovered);
  ASSERT_EQ(g.log.size(), 1u);
  EXPECT_EQ(g.log[0].outcome, SapAttemptOutcome::Success);
  EXPECT_TRUE(g.result.converged);
  EXPECT_LT(ls_error_metric(a, g.result.x, b), 1e-8);
}

TEST(Guarded, PoisonedFirstSketchRecoversOnRetry) {
  const auto a = tall_matrix();
  const auto b = make_least_squares_rhs(a, 7);
  GuardedSapOptions opt;
  opt.poison_first_attempts = 1;  // test hook: NaN into attempt 1's sketch
  const auto g = guarded_sap_solve(a, b, opt);
  EXPECT_EQ(g.attempts, 2);
  EXPECT_TRUE(g.recovered);
  ASSERT_EQ(g.log.size(), 2u);
  EXPECT_EQ(g.log[0].outcome, SapAttemptOutcome::SketchNonFinite);
  EXPECT_EQ(g.log[1].outcome, SapAttemptOutcome::Success);
  // The retry drew a different seed and escalated d.
  EXPECT_NE(g.log[1].seed, g.log[0].seed);
  EXPECT_GE(g.log[1].d, g.log[0].d);
  // And the recovered solve is still a correct solve.
  EXPECT_LT(ls_error_metric(a, g.result.x, b), 1e-8);
}

TEST(Guarded, RetriesAreVisibleInPerfSpans) {
  const auto a = tall_matrix();
  const auto b = make_least_squares_rhs(a, 7);
  perf::set_enabled(true);
  perf::reset();
  GuardedSapOptions opt;
  opt.poison_first_attempts = 1;
  const auto g = guarded_sap_solve(a, b, opt);
  EXPECT_TRUE(g.recovered);
  const perf::Snapshot snap = perf::snapshot();
  ASSERT_NE(snap.spans.find("guarded_sap/retry"), snap.spans.end());
  EXPECT_EQ(snap.spans.at("guarded_sap/retry").count, 1u);
  ASSERT_NE(snap.spans.find("guarded_sap/attempt_ok"), snap.spans.end());
  perf::set_enabled(false);
  perf::reset();
}

TEST(Guarded, ExhaustedRetriesThrowNumericError) {
  const auto a = tall_matrix();
  const auto b = make_least_squares_rhs(a, 7);
  GuardedSapOptions opt;
  opt.max_attempts = 2;
  opt.poison_first_attempts = 2;  // poison every allowed attempt
  try {
    guarded_sap_solve(a, b, opt);
    FAIL() << "expected numeric_error";
  } catch (const numeric_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("attempt"), std::string::npos);
    EXPECT_NE(msg.find("sketch_non_finite"), std::string::npos);
  }
}

TEST(Guarded, EscalatedDIsCappedAtFourN) {
  const auto a = tall_matrix();
  const auto b = make_least_squares_rhs(a, 7);
  GuardedSapOptions opt;
  opt.max_attempts = 8;
  opt.d_growth = 4.0;
  opt.poison_first_attempts = 7;
  const auto g = guarded_sap_solve(a, b, opt);
  EXPECT_TRUE(g.recovered);
  for (const SapAttemptLog& log : g.log) {
    EXPECT_LE(log.d, 4 * a.cols());
  }
}

TEST(Guarded, CorruptMatrixIsRejectedBeforeAnyAttempt) {
  const auto a = tall_matrix();
  const auto bad =
      faults::corrupt_csc(a, faults::CscFault::IndexOutOfRange, 11);
  const auto b = make_least_squares_rhs(a, 7);
  GuardedSapOptions opt;
  EXPECT_THROW(guarded_sap_solve(bad, b, opt), validation_error);
}

TEST(Guarded, NonFiniteRhsIsRejected) {
  const auto a = tall_matrix();
  auto b = make_least_squares_rhs(a, 7);
  b[3] = std::numeric_limits<double>::infinity();
  GuardedSapOptions opt;
  EXPECT_THROW(guarded_sap_solve(a, b, opt), numeric_error);
}

TEST(Guarded, NanPayloadWithChecksOffIsCaughtBySketchScan) {
  // With input validation off, the NaN still cannot escape: the per-attempt
  // sketch scan sees it on every attempt and the driver reports exhaustion
  // instead of returning a poisoned x.
  const auto a = tall_matrix();
  const auto bad = faults::corrupt_csc(a, faults::CscFault::NanPayload, 4);
  const auto b = make_least_squares_rhs(a, 7);
  GuardedSapOptions opt;
  opt.check_inputs = false;
  opt.max_attempts = 2;
  try {
    guarded_sap_solve(bad, b, opt);
    FAIL() << "expected numeric_error";
  } catch (const numeric_error& e) {
    EXPECT_NE(std::string(e.what()).find("sketch_non_finite"),
              std::string::npos);
  }
}

TEST(Guarded, SvdPathAlsoRecovers) {
  const auto a = tall_matrix();
  const auto b = make_least_squares_rhs(a, 7);
  GuardedSapOptions opt;
  opt.base.factor = SapFactor::SVD;
  opt.poison_first_attempts = 1;
  const auto g = guarded_sap_solve(a, b, opt);
  EXPECT_TRUE(g.recovered);
  EXPECT_LT(ls_error_metric(a, g.result.x, b), 1e-8);
}

TEST(Guarded, LsqrBreakdownFieldDefaultsFalseOnCleanSolve) {
  const auto a = tall_matrix();
  const auto b = make_least_squares_rhs(a, 7);
  SapOptions opt;
  const auto res = sap_solve(a, b, opt);
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace rsketch
