// Empirical autotuner: candidate generation, fingerprinting, the persistent
// tuning cache, and the resolve_tuning dispatch contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "analysis/machine.hpp"
#include "perf/perf.hpp"
#include "sketch/sketch.hpp"
#include "sketch/tuner.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

// Unique-per-test temp path under the system temp dir; removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_((std::filesystem::temp_directory_path() /
               ("rsketch_" + stem + ".json"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Point the tuner at an isolated cache file for the duration of a test.
class ScopedTuneCacheEnv {
 public:
  explicit ScopedTuneCacheEnv(const std::string& path) {
    ::setenv("RSKETCH_TUNE_CACHE", path.c_str(), 1);
  }
  ~ScopedTuneCacheEnv() { ::unsetenv("RSKETCH_TUNE_CACHE"); }
};

SketchConfig base_config(index_t d) {
  SketchConfig cfg;
  cfg.d = d;
  cfg.seed = 99;
  cfg.dist = Dist::PmOne;
  cfg.block_d = 128;
  cfg.block_n = 64;
  cfg.parallel = ParallelOver::Sequential;
  return cfg;
}

TEST(ParseTuneMode, AcceptsAllModes) {
  EXPECT_EQ(parse_tune_mode("off"), TuneMode::Off);
  EXPECT_EQ(parse_tune_mode("model"), TuneMode::Model);
  EXPECT_EQ(parse_tune_mode("empirical"), TuneMode::Empirical);
  EXPECT_EQ(parse_tune_mode("cached"), TuneMode::Cached);
}

TEST(ParseTuneMode, RejectsUnknown) {
  EXPECT_THROW(parse_tune_mode("fastest"), invalid_argument_error);
  EXPECT_THROW(parse_tune_mode(""), invalid_argument_error);
}

TEST(TunerCandidates, InBoundsDedupedBothKernels) {
  const auto a = random_sparse<float>(800, 200, 0.01, 5);
  const SketchConfig cfg = base_config(600);
  const auto cands = tuner_candidates(cfg, a);
  ASSERT_FALSE(cands.empty());
  std::set<std::string> labels;
  bool saw_kji = false, saw_jki = false;
  for (const TuneCandidate& c : cands) {
    EXPECT_GE(c.block_d, 1);
    EXPECT_LE(c.block_d, 600);
    EXPECT_GE(c.block_n, 1);
    EXPECT_LE(c.block_n, 200);
    EXPECT_TRUE(labels.insert(c.label()).second) << "duplicate " << c.label();
    saw_kji |= c.kernel == KernelVariant::Kji;
    saw_jki |= c.kernel == KernelVariant::Jki;
  }
  EXPECT_TRUE(saw_kji);
  EXPECT_TRUE(saw_jki);
}

TEST(MatrixFingerprint, DeterministicAndSensitiveToShape) {
  const auto a = random_sparse<double>(1000, 250, 0.005, 3);
  const auto b = random_sparse<double>(1000, 251, 0.005, 3);
  EXPECT_EQ(matrix_fingerprint(a, 750), matrix_fingerprint(a, 750));
  EXPECT_NE(matrix_fingerprint(a, 750), matrix_fingerprint(b, 750));
  // d lands in a log2 bucket: doubling d must move the fingerprint.
  EXPECT_NE(matrix_fingerprint(a, 750), matrix_fingerprint(a, 3000));
}

TEST(TuningCache, RoundTripPreservesDispatch) {
  TempFile file("cache_roundtrip");
  TuneCandidate cand;
  cand.kernel = KernelVariant::Jki;
  cand.backend = RngBackend::Philox;
  cand.block_d = 333;
  cand.block_n = 77;
  cand.isa = microkernel::Isa::Scalar;

  TuningCache cache = TuningCache::load(file.path());  // absent file: ok+empty
  EXPECT_TRUE(cache.ok());
  EXPECT_EQ(cache.size(), 0u);
  cache.store("machine#fp", cand, 1.5e-3);
  ASSERT_TRUE(cache.save(file.path()));

  const TuningCache reloaded = TuningCache::load(file.path());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.size(), 1u);
  TuneCandidate out;
  ASSERT_TRUE(reloaded.lookup("machine#fp", &out));
  EXPECT_EQ(out.kernel, cand.kernel);
  EXPECT_EQ(out.backend, cand.backend);
  EXPECT_EQ(out.block_d, cand.block_d);
  EXPECT_EQ(out.block_n, cand.block_n);
  EXPECT_EQ(out.isa, cand.isa);
  EXPECT_FALSE(reloaded.lookup("machine#other", &out));
}

TEST(TuningCache, MissingIsaFieldDecodesToAutoInvalidDropsEntry) {
  // Pre-micro-kernel cache entry (no "isa"): must decode as Auto. An entry
  // with an unknown isa token is stale and must be dropped individually.
  TempFile file("cache_isa_compat");
  std::ofstream(file.path())
      << "{\"schema_version\": 1, \"entries\": {"
         "\"k1\": {\"kernel\": \"jki\", \"backend\": \"xoshiro_batch\","
         " \"block_d\": 10, \"block_n\": 10, \"pilot_seconds\": 1e-3},"
         "\"k2\": {\"kernel\": \"kji\", \"backend\": \"philox\","
         " \"block_d\": 20, \"block_n\": 20, \"isa\": \"mmx\","
         " \"pilot_seconds\": 1e-3}}}";
  const TuningCache cache = TuningCache::load(file.path());
  EXPECT_TRUE(cache.ok());
  TuneCandidate out;
  ASSERT_TRUE(cache.lookup("k1", &out));
  EXPECT_EQ(out.isa, microkernel::Isa::Auto);
  EXPECT_FALSE(cache.lookup("k2", &out));
}

TEST(TuningCache, CorruptFileLoadsEmptyNotOk) {
  TempFile file("cache_corrupt");
  std::ofstream(file.path()) << "this is { not json";
  const TuningCache cache = TuningCache::load(file.path());
  EXPECT_FALSE(cache.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, WrongSchemaVersionLoadsEmptyNotOk) {
  TempFile file("cache_schema");
  std::ofstream(file.path()) << "{\"schema_version\": 99, \"entries\": {}}";
  const TuningCache cache = TuningCache::load(file.path());
  EXPECT_FALSE(cache.ok());
}

TEST(ResolveTuning, CachedModeWritesThenHitsWithoutRetiming) {
  TempFile file("resolve_cached");
  ScopedTuneCacheEnv env(file.path());
  const auto a = random_sparse<float>(600, 150, 0.01, 11);
  SketchConfig cfg = base_config(450);
  cfg.tune = TuneMode::Cached;

  perf::set_enabled(true);
  perf::reset();
  TuneDecision first;
  const SketchConfig eff1 = resolve_tuning(cfg, a, &first);
  EXPECT_EQ(first.source, TuneSource::Empirical);
  EXPECT_GT(first.candidates_timed, 0);
  EXPECT_EQ(eff1.tune, TuneMode::Off);

  TuneDecision second;
  const SketchConfig eff2 = resolve_tuning(cfg, a, &second);
  const perf::Snapshot snap = perf::snapshot();
  perf::set_enabled(false);

  // Second resolve is answered from the persisted cache: same dispatch,
  // zero pilot runs, and the hit is visible in the counter catalog.
  EXPECT_EQ(second.source, TuneSource::Cache);
  EXPECT_EQ(second.candidates_timed, 0);
  EXPECT_EQ(second.choice.label(), first.choice.label());
  EXPECT_EQ(eff2.kernel, eff1.kernel);
  EXPECT_EQ(eff2.backend, eff1.backend);
  EXPECT_EQ(eff2.block_d, eff1.block_d);
  EXPECT_EQ(eff2.block_n, eff1.block_n);
  EXPECT_EQ(snap.get(perf::Counter::TunerCacheHits), 1u);
  EXPECT_EQ(snap.get(perf::Counter::TunerCacheMisses), 1u);
  EXPECT_GT(snap.get(perf::Counter::TunerCandidatesTimed), 0u);
}

TEST(ResolveTuning, CorruptCacheFallsBackToModelAndPreservesFile) {
  TempFile file("resolve_corrupt");
  const std::string garbage = "{{{ definitely not a cache";
  std::ofstream(file.path()) << garbage;
  ScopedTuneCacheEnv env(file.path());

  const auto a = random_sparse<float>(600, 150, 0.01, 11);
  SketchConfig cfg = base_config(450);
  cfg.tune = TuneMode::Cached;
  TuneDecision decision;
  const SketchConfig eff = resolve_tuning(cfg, a, &decision);

  // Degrades to model tuning (no throw, no empirical pilot) and leaves the
  // corrupt file untouched for inspection instead of clobbering it.
  EXPECT_EQ(decision.source, TuneSource::Model);
  EXPECT_EQ(decision.candidates_timed, 0);
  EXPECT_GE(eff.block_d, 1);
  std::ifstream in(file.path());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, garbage);
}

TEST(ResolveTuning, EmpiricalWinnerSketchesBitwiseIdentical) {
  TempFile file("resolve_bitwise");
  ScopedTuneCacheEnv env(file.path());
  const auto a = random_sparse<float>(500, 120, 0.02, 21);
  SketchConfig cfg = base_config(360);
  cfg.tune = TuneMode::Empirical;

  TuneDecision decision;
  const SketchConfig effective = resolve_tuning(cfg, a, &decision);
  EXPECT_EQ(decision.source, TuneSource::Empirical);

  // Rebuild the winner's config by hand from the decision record: the pilot
  // timing must not leak into the numerics, so sketching with the resolved
  // config and with the hand-built one is bitwise identical.
  SketchConfig manual = base_config(360);
  manual.kernel = decision.choice.kernel;
  manual.backend = decision.choice.backend;
  manual.block_d = decision.choice.block_d;
  manual.block_n = decision.choice.block_n;

  DenseMatrix<float> via_tuner(effective.d, a.cols());
  DenseMatrix<float> via_manual(manual.d, a.cols());
  sketch_into(effective, a, via_tuner);
  sketch_into(manual, a, via_manual);
  for (index_t j = 0; j < via_tuner.cols(); ++j) {
    for (index_t i = 0; i < via_tuner.rows(); ++i) {
      ASSERT_EQ(via_tuner(i, j), via_manual(i, j))
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
}

TEST(ResolveTuning, DegenerateInputsPassThrough) {
  const CscMatrix<float> empty(40, 0);
  SketchConfig cfg = base_config(30);
  cfg.tune = TuneMode::Empirical;
  TuneDecision decision;
  const SketchConfig eff = resolve_tuning(cfg, empty, &decision);
  EXPECT_EQ(decision.source, TuneSource::Caller);
  EXPECT_EQ(eff.block_d, cfg.block_d);
  EXPECT_EQ(eff.block_n, cfg.block_n);
}

TEST(MachineSignature, StableWithinProcess) {
  const std::string sig = machine_signature();
  EXPECT_EQ(sig, machine_signature());
  EXPECT_NE(sig.find("cpus="), std::string::npos);
  EXPECT_NE(sig.find("cache="), std::string::npos);
}

}  // namespace
}  // namespace rsketch
