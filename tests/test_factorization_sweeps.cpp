// Parameterized shape sweeps for the dense factorizations: QR and SVD over
// a grid of aspect ratios, and LSQR consistency against QR across shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "dense/blas1.hpp"
#include "rng/distributions.hpp"
#include "solvers/lsqr.hpp"
#include "solvers/qr.hpp"
#include "solvers/svd.hpp"

namespace rsketch {
namespace {

DenseMatrix<double> random_dense(index_t m, index_t n, std::uint64_t seed) {
  SketchSampler<double> s(seed, Dist::Uniform, RngBackend::Xoshiro);
  DenseMatrix<double> a(m, n);
  for (index_t j = 0; j < n; ++j) s.fill(0, j, a.col(j), m);
  return a;
}

DenseMatrix<double> copy_of(const DenseMatrix<double>& a) {
  DenseMatrix<double> c(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) c(i, j) = a(i, j);
  }
  return c;
}

using Shape = std::tuple<index_t, index_t>;

class FactorizationShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(FactorizationShapes, QrResidualAndOrthogonality) {
  const auto [m, n] = GetParam();
  const auto a = random_dense(m, n, m * 131 + n);
  QrFactor<double> f = qr_factorize(copy_of(a));

  // Reconstruction residual per column.
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    std::vector<double> y(static_cast<std::size_t>(m), 0.0);
    for (index_t i = 0; i <= j; ++i) y[static_cast<std::size_t>(i)] = f.qr(i, j);
    apply_q(f, y.data());
    for (index_t i = 0; i < m; ++i) {
      worst = std::max(worst, std::fabs(y[static_cast<std::size_t>(i)] - a(i, j)));
    }
  }
  EXPECT_LT(worst, 1e-10 * std::sqrt(static_cast<double>(m)));

  // Q preserves norms.
  std::vector<double> e(static_cast<std::size_t>(m), 0.0);
  e[0] = 1.0;
  apply_q(f, e.data());
  EXPECT_NEAR(nrm2(m, e.data()), 1.0, 1e-12);
}

TEST_P(FactorizationShapes, SvdInvariantsHold) {
  const auto [m, n] = GetParam();
  const auto a = random_dense(m, n, m * 17 + n);
  const double fro = a.frobenius_norm();
  const auto svd = jacobi_svd(copy_of(a));

  double s2 = 0.0;
  for (std::size_t t = 0; t < svd.sigma.size(); ++t) {
    if (t > 0) {
      EXPECT_GE(svd.sigma[t - 1], svd.sigma[t]);
    }
    EXPECT_GE(svd.sigma[t], 0.0);
    s2 += static_cast<double>(svd.sigma[t]) * svd.sigma[t];
  }
  EXPECT_NEAR(std::sqrt(s2), fro, 1e-9 * (fro + 1.0));

  // V columns orthonormal.
  for (index_t j = 0; j < n; ++j) {
    EXPECT_NEAR(nrm2(n, svd.v.col(j)), 1.0, 1e-9);
    if (j > 0) {
      EXPECT_NEAR(dot(n, svd.v.col(j), svd.v.col(j - 1)), 0.0, 1e-8);
    }
  }
}

TEST_P(FactorizationShapes, LsqrMatchesQrLeastSquares) {
  const auto [m, n] = GetParam();
  const auto a = random_dense(m, n, m + 7 * n);
  SketchSampler<double> g(5, Dist::Uniform, RngBackend::Xoshiro);
  std::vector<double> b(static_cast<std::size_t>(m));
  g.fill(0, 4242, b.data(), m);

  QrFactor<double> f = qr_factorize(copy_of(a));
  const auto x_qr = qr_least_squares(f, b.data());

  LinearOperator<double> op;
  op.rows = m;
  op.cols = n;
  op.apply = [&a, m, n](const double* x, double* y) {
    for (index_t i = 0; i < m; ++i) y[i] = 0.0;
    for (index_t j = 0; j < n; ++j) axpy(m, x[j], a.col(j), y);
  };
  op.apply_adjoint = [&a, n](const double* x, double* y) {
    for (index_t j = 0; j < n; ++j) y[j] = dot(a.rows(), a.col(j), x);
  };
  LsqrOptions lo;
  lo.tol = 1e-14;
  lo.max_iter = 20000;
  const auto res = lsqr(op, b.data(), lo);

  for (index_t j = 0; j < n; ++j) {
    EXPECT_NEAR(res.x[static_cast<std::size_t>(j)],
                x_qr[static_cast<std::size_t>(j)],
                1e-7 * (std::fabs(x_qr[static_cast<std::size_t>(j)]) + 1.0))
        << "shape " << m << "x" << n << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FactorizationShapes,
    ::testing::Values(std::make_tuple<index_t, index_t>(1, 1),
                      std::make_tuple<index_t, index_t>(5, 1),
                      std::make_tuple<index_t, index_t>(8, 8),
                      std::make_tuple<index_t, index_t>(33, 7),
                      std::make_tuple<index_t, index_t>(64, 64),
                      std::make_tuple<index_t, index_t>(120, 40),
                      std::make_tuple<index_t, index_t>(257, 31),
                      std::make_tuple<index_t, index_t>(500, 3)),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace rsketch
