// Dense sketch application Y = S·X: consistency with the sparse kernels'
// virtual S, vector convenience API, parallel determinism.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "sketch/sketch.hpp"
#include "sketch/sketch_dense.hpp"
#include "sparse/generate.hpp"
#include "sparse/validate.hpp"

namespace rsketch {
namespace {

DenseMatrix<double> random_dense(index_t m, index_t k, std::uint64_t seed) {
  SketchSampler<double> g(seed, Dist::Uniform, RngBackend::Xoshiro);
  DenseMatrix<double> x(m, k);
  for (index_t c = 0; c < k; ++c) g.fill(0, c + 1000, x.col(c), m);
  return x;
}

TEST(SketchDense, MatchesMaterializedS) {
  const index_t m = 50, k = 7, d = 30;
  const auto x = random_dense(m, k, 1);
  SketchConfig cfg;
  cfg.d = d;
  cfg.block_d = 13;
  const auto s = materialize_S<double>(cfg, m);

  DenseMatrix<double> y;
  sketch_dense_into(cfg, x, y);
  for (index_t c = 0; c < k; ++c) {
    for (index_t i = 0; i < d; ++i) {
      double acc = 0.0;
      for (index_t j = 0; j < m; ++j) acc += s(i, j) * x(j, c);
      EXPECT_NEAR(y(i, c), acc, 1e-10) << i << "," << c;
    }
  }
}

TEST(SketchDense, ConsistentWithSparseSketchOfSameMatrix) {
  // Densifying A and sketching must agree with the sparse kernel.
  const auto a = random_sparse<double>(40, 12, 0.3, 2);
  SketchConfig cfg;
  cfg.d = 20;
  cfg.block_d = 9;
  DenseMatrix<double> a_dense(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_ptr()[j]; p < a.col_ptr()[j + 1]; ++p) {
      a_dense(a.row_idx()[p], j) = a.values()[p];
    }
  }
  DenseMatrix<double> from_dense;
  sketch_dense_into(cfg, a_dense, from_dense);
  DenseMatrix<double> from_sparse;
  sketch_into(cfg, a, from_sparse);
  EXPECT_LT(from_dense.max_abs_diff(from_sparse), 1e-10);
}

TEST(SketchDense, VectorConvenienceMatchesMatrixPath) {
  const index_t m = 33;
  std::vector<double> x(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i) x[static_cast<std::size_t>(i)] = 0.1 * i - 1.0;
  SketchConfig cfg;
  cfg.d = 14;
  const auto y = sketch_dense_vector(cfg, x.data(), m);

  DenseMatrix<double> xm(m, 1);
  for (index_t i = 0; i < m; ++i) xm(i, 0) = x[static_cast<std::size_t>(i)];
  DenseMatrix<double> ym;
  sketch_dense_into(cfg, xm, ym);
  for (index_t i = 0; i < cfg.d; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], ym(i, 0));
  }
}

TEST(SketchDense, ParallelMatchesSequential) {
  const auto x = random_dense(200, 5, 3);
  SketchConfig cfg;
  cfg.d = 64;
  cfg.block_d = 16;
  cfg.parallel = ParallelOver::Sequential;
  DenseMatrix<double> seq;
  sketch_dense_into(cfg, x, seq);
  cfg.parallel = ParallelOver::DBlocks;
  DenseMatrix<double> par;
  sketch_dense_into(cfg, x, par);
  EXPECT_EQ(seq.max_abs_diff(par), 0.0);
}

TEST(SketchDense, SampleCountIndependentOfK) {
  // One regenerated column per (block, row) regardless of X's width.
  const auto x1 = random_dense(100, 1, 4);
  const auto x8 = random_dense(100, 8, 4);
  SketchConfig cfg;
  cfg.d = 32;
  cfg.block_d = 32;
  DenseMatrix<double> y;
  const auto s1 = sketch_dense_into(cfg, x1, y);
  const auto s8 = sketch_dense_into(cfg, x8, y);
  EXPECT_EQ(s1.samples_generated, s8.samples_generated);
  EXPECT_EQ(s1.samples_generated, 32u * 100u);
}

TEST(SketchDense, NormPreservationWithNormalize) {
  const auto x = random_dense(300, 3, 5);
  SketchConfig cfg;
  cfg.d = 256;
  cfg.dist = Dist::PmOne;
  cfg.normalize = true;
  DenseMatrix<double> y;
  sketch_dense_into(cfg, x, y);
  for (index_t c = 0; c < 3; ++c) {
    double orig = 0.0, sk = 0.0;
    for (index_t i = 0; i < 300; ++i) orig += x(i, c) * x(i, c);
    for (index_t i = 0; i < 256; ++i) sk += y(i, c) * y(i, c);
    EXPECT_NEAR(std::sqrt(sk / orig), 1.0, 0.3);
  }
}

TEST(SketchDense, CheckInputsRejectsNonFiniteInput) {
  DenseMatrix<double> x(30, 4);
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) x(i, j) = 1.0;
  }
  x(7, 2) = std::numeric_limits<double>::quiet_NaN();
  SketchConfig cfg;
  cfg.d = 8;
  DenseMatrix<double> y;
  // Off by default: the hot path never scans.
  EXPECT_NO_THROW(sketch_dense_into(cfg, x, y));
  cfg.check_inputs = true;
  try {
    sketch_dense_into(cfg, x, y);
    FAIL() << "check_inputs must reject the NaN";
  } catch (const validation_error& e) {
    // The report attributes the finding to the offending column.
    EXPECT_NE(std::string(e.what()).find("column 2"), std::string::npos)
        << e.what();
  }
  x(7, 2) = 0.0;
  EXPECT_NO_THROW(sketch_dense_into(cfg, x, y));
}

}  // namespace
}  // namespace rsketch
