// Tests for the 8-lane batched Xoshiro generator.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/xoshiro_batch.hpp"

namespace rsketch {
namespace {

TEST(XoshiroBatch, Deterministic) {
  XoshiroBatch a(11), b(11);
  std::vector<std::uint64_t> va(64), vb(64);
  a.fill_u64(va.data(), 64);
  b.fill_u64(vb.data(), 64);
  EXPECT_EQ(va, vb);
}

TEST(XoshiroBatch, FillLanesMatchesNext8) {
  // fill_lanes must hand out exactly the batches next8 would, in order —
  // the SIMD micro-kernels consume this stream and the cross-ISA bitwise
  // guarantee depends on the order being pinned.
  XoshiroBatch a(29), b(29);
  constexpr index_t kBatches = 7;
  std::vector<std::uint64_t> lanes(kBatches * XoshiroBatch::kLanes);
  a.fill_lanes(lanes.data(), kBatches);
  for (index_t c = 0; c < kBatches; ++c) {
    std::uint64_t expect[XoshiroBatch::kLanes];
    b.next8(expect);
    for (int l = 0; l < XoshiroBatch::kLanes; ++l) {
      EXPECT_EQ(lanes[c * XoshiroBatch::kLanes + l], expect[l])
          << "batch " << c << " lane " << l;
    }
  }
  // Generator state advanced identically: the next batch agrees too.
  std::uint64_t na[XoshiroBatch::kLanes], nb[XoshiroBatch::kLanes];
  a.next8(na);
  b.next8(nb);
  for (int l = 0; l < XoshiroBatch::kLanes; ++l) EXPECT_EQ(na[l], nb[l]);
}

TEST(XoshiroBatch, CheckpointHistoryIndependent) {
  XoshiroBatch a(11), b(11);
  std::vector<std::uint64_t> junk(1024);
  a.fill_u64(junk.data(), 1024);
  a.set_state(2, 5);
  b.set_state(2, 5);
  std::vector<std::uint64_t> va(48), vb(48);
  a.fill_u64(va.data(), 48);
  b.fill_u64(vb.data(), 48);
  EXPECT_EQ(va, vb);
}

TEST(XoshiroBatch, PrefixProperty) {
  // Filling n from a checkpoint produces a prefix of filling n' > n — the
  // kernels rely on this when the tail block of Â is shorter than b_d.
  XoshiroBatch a(3), b(3);
  a.set_state(1, 1);
  b.set_state(1, 1);
  std::vector<std::uint64_t> va(100), vb(37);
  a.fill_u64(va.data(), 100);
  b.fill_u64(vb.data(), 37);
  for (int i = 0; i < 37; ++i) EXPECT_EQ(va[i], vb[i]) << i;
}

TEST(XoshiroBatch, LanesAreDistinct) {
  XoshiroBatch g(17);
  std::uint64_t out[XoshiroBatch::kLanes];
  g.next8(out);
  std::set<std::uint64_t> uniq(out, out + XoshiroBatch::kLanes);
  EXPECT_EQ(uniq.size(), static_cast<std::size_t>(XoshiroBatch::kLanes));
}

TEST(XoshiroBatch, DistinctCheckpointsDistinctStreams) {
  XoshiroBatch a(17), b(17);
  a.set_state(0, 0);
  b.set_state(0, 1);
  std::vector<std::uint64_t> va(64), vb(64);
  a.fill_u64(va.data(), 64);
  b.fill_u64(vb.data(), 64);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (va[i] == vb[i]);
  EXPECT_LE(same, 1);
}

TEST(XoshiroBatch, TailHandling) {
  // Non-multiple-of-8 fills must not read past the end.
  XoshiroBatch g(5);
  for (index_t n : {1, 3, 7, 9, 15, 63}) {
    std::vector<std::uint64_t> v(static_cast<std::size_t>(n) + 4, 0xDEADBEEF);
    g.set_state(0, 0);
    g.fill_u64(v.data(), n);
    for (std::size_t i = static_cast<std::size_t>(n); i < v.size(); ++i) {
      EXPECT_EQ(v[i], 0xDEADBEEFu) << "overwrote past n=" << n;
    }
  }
}

TEST(XoshiroBatch, BitBalance) {
  XoshiroBatch g(2025);
  std::vector<std::uint64_t> v(20000);
  g.fill_u64(v.data(), static_cast<index_t>(v.size()));
  std::int64_t ones = 0;
  for (std::uint64_t w : v) ones += __builtin_popcountll(w);
  EXPECT_NEAR(static_cast<double>(ones) / (64.0 * v.size()), 0.5, 0.01);
}

TEST(XoshiroBatch, SeedSensitivity) {
  XoshiroBatch a(1), b(2);
  std::vector<std::uint64_t> va(32), vb(32);
  a.fill_u64(va.data(), 32);
  b.fill_u64(vb.data(), 32);
  int same = 0;
  for (int i = 0; i < 32; ++i) same += (va[i] == vb[i]);
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace rsketch
