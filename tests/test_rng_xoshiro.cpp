// Tests for the scalar Xoshiro generators and the block-checkpoint seeking
// contract that underpins reproducible on-the-fly regeneration of S.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro.hpp"

namespace rsketch {
namespace {

TEST(SplitMix64, ReferenceStream) {
  // Reference values for seed 0 from the public splitmix64 implementation.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64_next(s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64_next(s), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64_next(s), 0x06C45D188009454FULL);
}

TEST(Mix3, DistinguishesCoordinates) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      outs.insert(mix3(42, r, j));
    }
  }
  EXPECT_EQ(outs.size(), 64u) << "nearby (r, j) must map to distinct mixes";
}

TEST(Mix3, SeedMatters) {
  EXPECT_NE(mix3(1, 5, 7), mix3(2, 5, 7));
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256pp a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256pp a(123), b(124);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256, SetStateIsHistoryIndependent) {
  // The checkpoint contract: after set_state(r, j) the stream depends only
  // on (seed, r, j), not on how many samples were drawn before.
  Xoshiro256pp a(7), b(7);
  for (int i = 0; i < 1000; ++i) a.next();  // perturb a's history
  a.set_state(3, 9);
  b.set_state(3, 9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SetStateDistinctBlocksDistinctStreams) {
  Xoshiro256pp a(7), b(7);
  a.set_state(3, 9);
  b.set_state(3, 10);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256, ReseedResetsEverything) {
  Xoshiro256pp a(7);
  a.set_state(1, 2);
  a.next();
  a.reseed(7);
  Xoshiro256pp fresh(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), fresh.next());
}

TEST(Xoshiro256, BitBalance) {
  // Monobit sanity: about half the bits over a long stream should be set.
  Xoshiro256pp g(2024);
  std::int64_t ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ones += __builtin_popcountll(g.next());
  const double frac = static_cast<double>(ones) / (64.0 * n);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256pp a(9), b(9);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256pp::min() == 0);
  static_assert(Xoshiro256pp::max() == ~std::uint64_t{0});
  Xoshiro256pp g(1);
  EXPECT_NE(g(), g());
}

TEST(Xoshiro128, DeterministicAndSeekable) {
  Xoshiro128pp a(55), b(55);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
  a.set_state(4, 4);
  for (int i = 0; i < 123; ++i) b.next();
  b.set_state(4, 4);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro128, BitBalance) {
  Xoshiro128pp g(77);
  std::int64_t ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += __builtin_popcount(g.next());
  EXPECT_NEAR(static_cast<double>(ones) / (32.0 * n), 0.5, 0.01);
}

}  // namespace
}  // namespace rsketch
