// The sketch-and-precondition pipeline (§V-C): accuracy, iteration counts,
// SVD path on near-singular problems, and workspace accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "solvers/least_squares.hpp"
#include "solvers/sap.hpp"
#include "solvers/sparse_qr.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "rng/xoshiro.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

SapOptions default_options() {
  SapOptions o;
  o.gamma = 2.0;
  o.block_d = 256;
  o.block_n = 64;
  o.lsqr_max_iter = 500;
  return o;
}

TEST(SapQr, ReachesDirectMethodAccuracy) {
  const auto a = random_sparse<double>(800, 40, 0.1, 1);
  const auto b = make_least_squares_rhs(a, 2);
  const auto res = sap_solve(a, b, default_options());
  EXPECT_TRUE(res.converged);
  EXPECT_LT(ls_error_metric(a, res.x, b), 1e-12);
}

/// Ill-conditioning that COLUMN scaling cannot repair and that has NO
/// spectral clustering for Krylov methods to exploit: a 1-D Laplacian
/// (second-difference) block, cond ≈ (2n/π)², all column norms equal, with
/// tall padding rows so the problem is overdetermined.
CscMatrix<double> laplacian_tall_matrix(index_t m, index_t n,
                                        std::uint64_t seed) {
  CooMatrix<double> coo(m, n);
  for (index_t j = 0; j < n; ++j) {
    if (j > 0) coo.push(j - 1, j, -1.0);
    coo.push(j, j, 2.0);
    if (j + 1 < n) coo.push(j + 1, j, -1.0);
  }
  // Tiny random entries in the padding rows keep the matrix tall without
  // changing the conditioning profile.
  Xoshiro256pp g(seed);
  for (index_t i = n; i < m; i += 7) {
    const index_t j = static_cast<index_t>(g.next() % static_cast<std::uint64_t>(n));
    coo.push(i, j, 1e-3);
  }
  return coo_to_csc(coo);
}

TEST(SapQr, IterationCountIsSmallAndPredictable) {
  // The paper (Table IX): SAP's LSQR converges in a near-constant number of
  // iterations regardless of the matrix, and far faster than LSQR-D on
  // problems whose conditioning diagonal scaling cannot repair.
  const auto hard = laplacian_tall_matrix(1500, 50, 3);
  const auto b = make_least_squares_rhs(hard, 5);

  const auto sap = sap_solve(hard, b, default_options());
  LsqrOptions lo;
  lo.tol = 1e-14;
  lo.max_iter = 20000;
  const auto lsqrd = lsqr_diag_precond(hard, b, lo);

  EXPECT_TRUE(sap.converged);
  EXPECT_LT(sap.iterations, 250);
  EXPECT_LT(sap.iterations * 2, lsqrd.iterations)
      << "SAP should need far fewer iterations than LSQR-D here";

  // Predictability: an easy problem needs a similar SAP iteration count.
  const auto easy = random_sparse<double>(1500, 50, 0.05, 7);
  const auto b2 = make_least_squares_rhs(easy, 8);
  const auto sap_easy = sap_solve(easy, b2, default_options());
  EXPECT_LT(std::abs(static_cast<long>(sap.iterations) -
                     static_cast<long>(sap_easy.iterations)),
            80);
}

TEST(SapQr, MatchesSparseQrSolution) {
  const auto a = random_sparse<double>(600, 30, 0.08, 6);
  const auto b = make_least_squares_rhs(a, 7);
  const auto sap = sap_solve(a, b, default_options());
  const auto direct = sparse_qr_least_squares(a, b.data());
  for (index_t j = 0; j < 30; ++j) {
    EXPECT_NEAR(sap.x[j], direct.x[j],
                1e-6 * (std::fabs(direct.x[j]) + 1.0));
  }
}

TEST(SapSvd, HandlesNearRankDeficiency) {
  // Near-duplicate columns defeat SAP-QR's triangular solve but SAP-SVD's
  // σ-truncation must still produce an optimal-residual solution.
  auto base = random_sparse<double>(700, 28, 0.1, 8);
  const auto a = append_near_duplicate_cols(base, 4, 1e-14, 9);
  const auto b = make_least_squares_rhs(a, 10);

  auto opt = default_options();
  opt.factor = SapFactor::SVD;
  const auto res = sap_solve(a, b, opt);
  EXPECT_LT(res.rank, a.cols()) << "truncation should have dropped columns";
  EXPECT_LT(ls_error_metric(a, res.x, b), 1e-10);
}

TEST(SapSvd, FullRankProblemKeepsAllColumns) {
  const auto a = random_sparse<double>(500, 20, 0.15, 11);
  const auto b = make_least_squares_rhs(a, 12);
  auto opt = default_options();
  opt.factor = SapFactor::SVD;
  const auto res = sap_solve(a, b, opt);
  EXPECT_EQ(res.rank, 20);
  EXPECT_LT(ls_error_metric(a, res.x, b), 1e-11);
}

TEST(Sap, TimingBreakdownAndWorkspaceReported) {
  const auto a = random_sparse<double>(900, 35, 0.06, 13);
  const auto b = make_least_squares_rhs(a, 14);
  const auto res = sap_solve(a, b, default_options());
  EXPECT_GT(res.sketch_seconds, 0.0);
  EXPECT_GT(res.factor_seconds, 0.0);
  EXPECT_GT(res.lsqr_seconds, 0.0);
  EXPECT_GE(res.total_seconds, res.sketch_seconds);
  // Workspace ≈ d·n sketch + n² factor: must dominate the tracker's floor.
  EXPECT_GT(res.workspace_bytes, static_cast<std::size_t>(70 * 35) * 8);
}

TEST(Sap, WorksWithJkiKernelAndPmOne) {
  const auto a = random_sparse<double>(600, 24, 0.1, 15);
  const auto b = make_least_squares_rhs(a, 16);
  auto opt = default_options();
  opt.kernel = KernelVariant::Jki;
  opt.dist = Dist::PmOne;
  const auto res = sap_solve(a, b, opt);
  EXPECT_LT(ls_error_metric(a, res.x, b), 1e-12);
}

TEST(Sap, InvalidInputsThrow) {
  const auto wide = random_sparse<double>(10, 20, 0.3, 17);
  std::vector<double> b(10, 1.0);
  EXPECT_THROW(sap_solve(wide, b, default_options()), invalid_argument_error);

  const auto tall = random_sparse<double>(30, 5, 0.3, 18);
  std::vector<double> short_b(10, 1.0);
  EXPECT_THROW(sap_solve(tall, short_b, default_options()),
               invalid_argument_error);

  std::vector<double> ok_b(30, 1.0);
  auto opt = default_options();
  opt.gamma = 0.9;
  EXPECT_THROW(sap_solve(tall, ok_b, opt), invalid_argument_error);
}

TEST(Sap, DeterministicForFixedSeed) {
  const auto a = random_sparse<double>(400, 16, 0.12, 19);
  const auto b = make_least_squares_rhs(a, 20);
  const auto r1 = sap_solve(a, b, default_options());
  const auto r2 = sap_solve(a, b, default_options());
  EXPECT_EQ(r1.iterations, r2.iterations);
  for (index_t j = 0; j < 16; ++j) EXPECT_DOUBLE_EQ(r1.x[j], r2.x[j]);
}

}  // namespace
}  // namespace rsketch
