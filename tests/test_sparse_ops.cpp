// Sparse BLAS-2 operations against dense references.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sparse/generate.hpp"
#include "sparse/ops.hpp"

namespace rsketch {
namespace {

/// Dense reference y = alpha*A*x + beta*y.
std::vector<double> ref_spmv(const CscMatrix<double>& a,
                             const std::vector<double>& x, double alpha,
                             double beta, std::vector<double> y) {
  for (index_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) s += a.at(i, j) * x[j];
    y[i] = beta * y[i] + alpha * s;
  }
  return y;
}

TEST(Spmv, MatchesDenseReference) {
  const auto a = random_sparse<double>(40, 25, 0.2, 1);
  std::vector<double> x(25), y(40, 0.5);
  for (index_t j = 0; j < 25; ++j) x[j] = 0.1 * j - 1.0;
  auto expect = ref_spmv(a, x, 2.0, 3.0, y);
  spmv(a, x.data(), y.data(), 2.0, 3.0);
  for (index_t i = 0; i < 40; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
}

TEST(Spmv, BetaZeroIgnoresInitialY) {
  const auto a = random_sparse<double>(10, 10, 0.3, 2);
  std::vector<double> x(10, 1.0);
  std::vector<double> y(10, std::nan(""));
  spmv(a, x.data(), y.data());  // beta = 0 must overwrite NaNs
  for (double v : y) EXPECT_FALSE(std::isnan(v));
}

TEST(SpmvTranspose, MatchesDenseReference) {
  const auto a = random_sparse<double>(30, 45, 0.15, 3);
  std::vector<double> x(30), y(45, -1.0);
  for (index_t i = 0; i < 30; ++i) x[i] = std::sin(i);
  std::vector<double> expect(45);
  for (index_t j = 0; j < 45; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < 30; ++i) s += a.at(i, j) * x[i];
    expect[j] = -1.0 * 0.5 + 1.5 * s;
  }
  for (auto& v : y) v = 0.5;
  spmv_transpose(a, x.data(), y.data(), 1.5, -1.0);
  for (index_t j = 0; j < 45; ++j) EXPECT_NEAR(y[j], expect[j], 1e-12);
}

TEST(SpmvAndTranspose, AdjointIdentity) {
  // <A x, y> == <x, Aᵀ y> for random vectors.
  const auto a = random_sparse<double>(50, 35, 0.1, 4);
  std::vector<double> x(35), y(50), ax(50), aty(35);
  for (index_t j = 0; j < 35; ++j) x[j] = 0.3 * j - 5.0;
  for (index_t i = 0; i < 50; ++i) y[i] = std::cos(i);
  spmv(a, x.data(), ax.data());
  spmv_transpose(a, y.data(), aty.data());
  double lhs = 0.0, rhs = 0.0;
  for (index_t i = 0; i < 50; ++i) lhs += ax[i] * y[i];
  for (index_t j = 0; j < 35; ++j) rhs += x[j] * aty[j];
  EXPECT_NEAR(lhs, rhs, 1e-10 * (std::fabs(lhs) + 1.0));
}

TEST(ColumnNorms, MatchesDense) {
  const auto a = random_sparse<double>(60, 12, 0.25, 5);
  const auto norms = column_norms(a);
  for (index_t j = 0; j < 12; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < 60; ++i) s += a.at(i, j) * a.at(i, j);
    EXPECT_NEAR(norms[j], std::sqrt(s), 1e-12);
  }
}

TEST(FrobeniusNorm, MatchesSumOfSquares) {
  const auto a = random_sparse<double>(30, 30, 0.2, 6);
  double s = 0.0;
  for (double v : a.values()) s += v * v;
  EXPECT_NEAR(frobenius_norm(a), std::sqrt(s), 1e-12);
}

TEST(EmptyRowsCols, CountAndDrop) {
  // Build a matrix with known empty row 1 and empty column 2.
  CscMatrix<double> a(4, 3, {0, 2, 4, 4}, {0, 2, 2, 3}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(count_empty_rows(a), 1);  // row 1
  EXPECT_EQ(count_empty_cols(a), 1);  // col 2

  const auto c = drop_empty_cols(a);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_EQ(c.nnz(), 4);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(3, 1), 4.0);

  const auto r = drop_empty_rows(a);
  EXPECT_EQ(r.rows(), 3);
  EXPECT_EQ(r.nnz(), 4);
  // Former row 2 becomes row 1, former row 3 becomes row 2.
  EXPECT_DOUBLE_EQ(r.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(r.at(2, 1), 4.0);
}

TEST(EmptyRowsCols, NoopWhenNoneEmpty) {
  const auto a = fixed_nnz_per_col<double>(10, 10, 10, 7);  // fully dense cols
  EXPECT_EQ(count_empty_rows(a), 0);
  EXPECT_EQ(count_empty_cols(a), 0);
  const auto c = drop_empty_cols(a);
  EXPECT_EQ(c.cols(), 10);
  const auto r = drop_empty_rows(a);
  EXPECT_EQ(r.rows(), 10);
}

TEST(Spmv, ZeroDimensionEdgeCases) {
  CscMatrix<double> a(0, 0);
  spmv<double>(a, nullptr, nullptr);  // must not crash
  CscMatrix<double> b(3, 0);
  std::vector<double> y(3, 1.0);
  spmv<double>(b, nullptr, y.data());
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);  // beta=0 zeroes y
}

}  // namespace
}  // namespace rsketch
