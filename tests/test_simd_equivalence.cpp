// Cross-ISA bitwise reproducibility of the micro-kernel layer
// (dense/microkernel.hpp): every compiled tier (scalar / AVX2 / AVX-512)
// must produce a bit-for-bit identical sketch Â. The tiers share one
// templated implementation compiled with -ffp-contract=off, so each entry
// is the same sequence of individually rounded mul+add operations at any
// vector width — equality here is exact, not tolerance-based.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dense/microkernel.hpp"
#include "rng/distributions.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"

namespace rsketch {
namespace {

/// Scalar plus every SIMD tier this build + CPU can actually run.
std::vector<microkernel::Isa> supported_isas() {
  std::vector<microkernel::Isa> out = {microkernel::Isa::Scalar};
  if (microkernel::supported(microkernel::Isa::Avx2)) {
    out.push_back(microkernel::Isa::Avx2);
  }
  if (microkernel::supported(microkernel::Isa::Avx512)) {
    out.push_back(microkernel::Isa::Avx512);
  }
  return out;
}

/// Bitwise equality over the logical entries (padded tail rows excluded —
/// they are zero-initialized but not part of the contract).
template <typename T>
void expect_bitwise_equal(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    ASSERT_EQ(0, std::memcmp(a.col(j), b.col(j),
                             static_cast<std::size_t>(a.rows()) * sizeof(T)))
        << what << ": column " << j << " differs";
  }
}

template <typename T>
SketchConfig isa_config(KernelVariant kernel, Dist dist) {
  SketchConfig cfg;
  cfg.d = 96;
  cfg.seed = 777;
  cfg.dist = dist;
  cfg.backend = RngBackend::XoshiroBatch;
  cfg.kernel = kernel;
  // Small odd-ish blocks so row/column block boundaries, jam tails (hi-lo
  // not a multiple of 4), and chunk tails (d1 % 16 != 0) all occur.
  cfg.block_d = 40;
  cfg.block_n = 17;
  cfg.parallel = ParallelOver::Sequential;
  return cfg;
}

template <typename T>
void check_all_isas(KernelVariant kernel, Dist dist) {
  const auto a = random_sparse<T>(150, 60, 0.08, 31);
  const std::vector<microkernel::Isa> isas = supported_isas();

  SketchConfig cfg = isa_config<T>(kernel, dist);
  cfg.isa = isas.front();  // Scalar reference
  DenseMatrix<T> ref(cfg.d, a.cols());
  const SketchStats ref_stats = sketch_into(cfg, a, ref);
  EXPECT_EQ(ref_stats.isa, microkernel::Isa::Scalar);

  for (std::size_t t = 1; t < isas.size(); ++t) {
    SketchConfig tier_cfg = isa_config<T>(kernel, dist);
    tier_cfg.isa = isas[t];
    DenseMatrix<T> got(tier_cfg.d, a.cols());
    const SketchStats stats = sketch_into(tier_cfg, a, got);
    EXPECT_EQ(stats.isa, isas[t]);
    EXPECT_EQ(stats.samples_generated, ref_stats.samples_generated)
        << "ISA tier must not change the RNG stream consumption";
    expect_bitwise_equal(ref, got,
                         std::string("isa=") +
                             microkernel::to_string(isas[t]) + " dist=" +
                             to_string(dist) + " kernel=" + to_string(kernel));
  }
}

TEST(SimdEquivalence, KjiAllDistsDouble) {
  for (Dist dist :
       {Dist::PmOne, Dist::Uniform, Dist::UniformScaled, Dist::Gaussian}) {
    check_all_isas<double>(KernelVariant::Kji, dist);
  }
}

TEST(SimdEquivalence, JkiAllDistsDouble) {
  for (Dist dist :
       {Dist::PmOne, Dist::Uniform, Dist::UniformScaled, Dist::Gaussian}) {
    check_all_isas<double>(KernelVariant::Jki, dist);
  }
}

TEST(SimdEquivalence, KjiAllDistsFloat) {
  for (Dist dist : {Dist::PmOne, Dist::Uniform, Dist::UniformScaled}) {
    check_all_isas<float>(KernelVariant::Kji, dist);
  }
}

TEST(SimdEquivalence, JkiAllDistsFloat) {
  for (Dist dist : {Dist::PmOne, Dist::Uniform, Dist::UniformScaled}) {
    check_all_isas<float>(KernelVariant::Jki, dist);
  }
}

// The kji fused generate-and-axpy path (taken when the run is not
// instrumented) must be bitwise identical to the buffered fill-then-axpy
// path (taken when sample timing is requested) and must consume the RNG
// stream in exactly the same order — samples_generated included.
TEST(SimdEquivalence, FusedMatchesBufferedKji) {
  const auto a = random_sparse<double>(120, 45, 0.1, 97);
  for (Dist dist : {Dist::PmOne, Dist::Uniform, Dist::UniformScaled}) {
    for (microkernel::Isa isa : supported_isas()) {
      SketchConfig cfg = isa_config<double>(KernelVariant::Kji, dist);
      cfg.isa = isa;

      DenseMatrix<double> fused(cfg.d, a.cols());
      const SketchStats fused_stats =
          sketch_into(cfg, a, fused, /*instrument=*/false);

      DenseMatrix<double> buffered(cfg.d, a.cols());
      const SketchStats buffered_stats =
          sketch_into(cfg, a, buffered, /*instrument=*/true);

      EXPECT_EQ(fused_stats.samples_generated,
                buffered_stats.samples_generated);
      expect_bitwise_equal(fused, buffered,
                           std::string("fused-vs-buffered isa=") +
                               microkernel::to_string(isa) + " dist=" +
                               to_string(dist));
    }
  }
}

// Direct sampler check: fill() output per (r, j) checkpoint is the same bit
// pattern on every tier, including non-chunked distributions that fall back
// to the shared generic path.
TEST(SimdEquivalence, SamplerFillMatchesAcrossIsas) {
  constexpr index_t kN = 53;  // not a multiple of any chunk size
  for (Dist dist :
       {Dist::PmOne, Dist::Uniform, Dist::UniformScaled, Dist::Gaussian}) {
    SketchSampler<double> ref(99, dist, RngBackend::XoshiroBatch,
                              microkernel::Isa::Scalar);
    std::vector<double> vref(kN);
    ref.fill(3, 7, vref.data(), kN);
    for (microkernel::Isa isa : supported_isas()) {
      SketchSampler<double> s(99, dist, RngBackend::XoshiroBatch, isa);
      std::vector<double> v(kN);
      s.fill(3, 7, v.data(), kN);
      EXPECT_EQ(0, std::memcmp(vref.data(), v.data(), kN * sizeof(double)))
          << "dist=" << to_string(dist)
          << " isa=" << microkernel::to_string(isa);
    }
  }
}

// Dispatch plumbing: resolve() honors explicit tiers, best_supported() is
// itself supported, and every supported tier has a populated ops table.
TEST(SimdEquivalence, DispatchInvariants) {
  EXPECT_TRUE(microkernel::supported(microkernel::Isa::Scalar));
  const microkernel::Isa best = microkernel::best_supported();
  EXPECT_TRUE(microkernel::supported(best));
  EXPECT_NE(best, microkernel::Isa::Auto);
  for (microkernel::Isa isa : supported_isas()) {
    EXPECT_EQ(microkernel::resolve(isa), isa);
    const auto& ops = microkernel::ops<double>(isa);
    EXPECT_NE(ops.axpy, nullptr);
    EXPECT_NE(ops.axpy_multi, nullptr);
    EXPECT_NE(ops.fill, nullptr);
    EXPECT_NE(ops.fused_axpy, nullptr);
    const auto& fops = microkernel::ops<float>(isa);
    EXPECT_NE(fops.axpy, nullptr);
    EXPECT_NE(fops.fused_axpy, nullptr);
  }
  microkernel::Isa parsed = microkernel::Isa::Auto;
  EXPECT_TRUE(microkernel::parse_isa("avx2", &parsed));
  EXPECT_EQ(parsed, microkernel::Isa::Avx2);
  EXPECT_TRUE(microkernel::parse_isa("auto", &parsed));
  EXPECT_EQ(parsed, microkernel::Isa::Auto);
  EXPECT_FALSE(microkernel::parse_isa("sse9", &parsed));
}

}  // namespace
}  // namespace rsketch
