// Tests for the trace timeline recorder (src/perf/trace.hpp): interning,
// ring wraparound accounting, multithreaded begin/end pairing (the parallel
// label runs this under TSan in the sanitizer CI job), Chrome-trace export
// shape, and the tracing-off bitwise-identity guarantee.
//
// The first arm() in this binary pins the ring capacity to kTestCapacity for
// every thread (capacity resolves once per process), so the wraparound test
// is deterministic no matter the test order.
#include <gtest/gtest.h>
#include <omp.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "perf/json.hpp"
#include "perf/perf.hpp"
#include "perf/trace.hpp"
#include "sketch/sketch.hpp"
#include "sparse/generate.hpp"
#include "support/parallel.hpp"

namespace rsketch {
namespace {

constexpr std::size_t kTestCapacity = 64;

/// Arms tracing (small rings, no at-exit output) for one test and restores
/// "disarmed, empty" after, so the tests are order-independent.
struct TraceGuard {
  TraceGuard() {
    perf::trace::set_output("");
    perf::trace::arm(kTestCapacity);
    perf::trace::clear();
  }
  ~TraceGuard() {
    perf::trace::disarm();
    perf::trace::clear();
  }
};

/// Events in the exported document matching (name, phase); empty name or
/// phase matches everything.
std::vector<const perf::Json*> find_events(const perf::Json& doc,
                                           const std::string& name,
                                           const std::string& ph) {
  std::vector<const perf::Json*> out;
  const perf::Json* events = doc.find("traceEvents");
  if (events == nullptr) return out;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const perf::Json& e = events->at(i);
    if (!name.empty() &&
        (e.find("name") == nullptr || e.find("name")->as_string() != name)) {
      continue;
    }
    if (!ph.empty() &&
        (e.find("ph") == nullptr || e.find("ph")->as_string() != ph)) {
      continue;
    }
    out.push_back(&e);
  }
  return out;
}

TEST(TraceIntern, StableIdsAndSafeTemporaries) {
  const std::uint32_t a = perf::trace::intern("trace_unit_name");
  const std::uint32_t b = perf::trace::intern("trace_unit_name");
  EXPECT_EQ(a, b);
  EXPECT_EQ(perf::trace::name_of(a), "trace_unit_name");
  {
    const std::string dynamic = "trace_dyn_" + std::to_string(42);
    const std::uint32_t id = perf::trace::intern(dynamic);
    // The table owns the string; the lookup outlives the temporary.
    EXPECT_EQ(perf::trace::name_of(id), "trace_dyn_42");
  }
  EXPECT_EQ(perf::trace::name_of(0xFFFFFFFFu), "?");
}

TEST(TraceRing, DisarmedRecordsNothing) {
  {
    TraceGuard guard;  // pins capacity; cleared on exit
  }
  EXPECT_FALSE(perf::trace::armed());
  const std::uint32_t id = perf::trace::intern("off_event");
  perf::trace::begin(id);
  perf::trace::end(id);
  perf::trace::instant(id);
  EXPECT_EQ(perf::trace::recorded_events(), 0u);
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  TraceGuard guard;
  const std::uint32_t id = perf::trace::intern("wrap_test");
  const std::size_t total = 3 * kTestCapacity + 5;
  for (std::size_t i = 0; i < total; ++i) {
    perf::trace::instant(id, static_cast<double>(i));
  }
  EXPECT_EQ(perf::trace::recorded_events(), total);
  EXPECT_EQ(perf::trace::dropped_events(), total - kTestCapacity);

  const perf::Json doc = perf::trace::chrome_trace_json();
  const auto kept = find_events(doc, "wrap_test", "i");
  ASSERT_EQ(kept.size(), kTestCapacity);
  // The survivors are exactly the newest events, still in order.
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const perf::Json* args = kept[k]->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->find("value")->as_double(),
                     static_cast<double>(total - kTestCapacity + k));
  }
  // The per-thread loss shows as a counter track next to otherData's total.
  EXPECT_FALSE(find_events(doc, "dropped_events", "C").empty());
  EXPECT_EQ(static_cast<std::size_t>(
                doc.find("otherData")->find("dropped_events")->as_int()),
            total - kTestCapacity);
}

TEST(TraceRing, BeginEndPairingAcrossOmpThreads) {
  TraceGuard guard;
  const int threads = 4;
  const int scopes = 8;  // 2*8 events per thread, well under kTestCapacity
  const std::uint32_t id = perf::trace::intern("omp_scope");
#pragma omp parallel num_threads(threads)
  {
    trace_name_omp_thread();
    for (int s = 0; s < scopes; ++s) {
      perf::trace::Scope scope(id);
    }
  }
  EXPECT_EQ(perf::trace::dropped_events(), 0u);
  const perf::Json doc = perf::trace::chrome_trace_json();
  const auto begins = find_events(doc, "omp_scope", "B");
  const auto ends = find_events(doc, "omp_scope", "E");
  EXPECT_EQ(begins.size(), static_cast<std::size_t>(threads * scopes));
  EXPECT_EQ(ends.size(), begins.size());
  // Every recording thread is named in the timeline metadata.
  std::size_t named = 0;
  for (const perf::Json* meta : find_events(doc, "thread_name", "M")) {
    const std::string tname = meta->find("args")->find("name")->as_string();
    if (tname.rfind("omp-worker-", 0) == 0) ++named;
  }
  EXPECT_GE(named, static_cast<std::size_t>(threads));
}

TEST(TraceExport, CompleteEventsCarryDuration) {
  TraceGuard guard;
  perf::add_span("trace_complete_span", 0.025);  // trace-only: perf is off
  const perf::Json doc = perf::trace::chrome_trace_json();
  const auto xs = find_events(doc, "trace_complete_span", "X");
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_NEAR(xs[0]->find("dur")->as_double(), 25000.0, 1.0);  // µs
  // ts may be negative: the slice is back-dated from "now", and the interval
  // can genuinely start before the trace epoch. Perfetto accepts that.
  ASSERT_NE(xs[0]->find("ts"), nullptr);
}

TEST(TraceExport, SketchEmitsKernelBlockEvents) {
  TraceGuard guard;
  const auto a = random_sparse<double>(200, 60, 0.05, 13);
  SketchConfig cfg;
  cfg.d = 64;
  cfg.block_d = 24;  // several i-blocks so multiple slices appear
  cfg.kernel = KernelVariant::Kji;
  cfg.parallel = ParallelOver::Sequential;
  DenseMatrix<double> a_hat(cfg.d, a.cols());
  sketch_into(cfg, a, a_hat);

  const perf::Json doc = perf::trace::chrome_trace_json();
  const auto blocks = find_events(doc, "kernel_kji/block", "B");
  EXPECT_GE(blocks.size(), 2u);
  EXPECT_EQ(find_events(doc, "kernel_kji/block", "E").size(), blocks.size());
  // The dispatch-tier marker rides along even without RSKETCH_PERF.
  std::size_t dispatch = 0;
  for (const perf::Json* e : find_events(doc, "", "i")) {
    const std::string n = e->find("name")->as_string();
    if (n.rfind("kernel_dispatch/", 0) == 0) ++dispatch;
  }
  EXPECT_EQ(dispatch, 1u);
}

TEST(TraceExport, WriteProducesLoadableJson) {
  TraceGuard guard;
  const std::uint32_t id = perf::trace::intern("file_event");
  perf::trace::begin(id);
  perf::trace::end(id);
  const std::string path = testing::TempDir() + "rsketch_trace_unit.json";
  ASSERT_EQ(perf::trace::write(path), path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  const perf::Json doc = perf::Json::parse(text);
  EXPECT_FALSE(find_events(doc, "file_event", "B").empty());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  EXPECT_GE(doc.find("otherData")->find("threads")->as_int(), 1);
}

// Tracing is observability, not computation: the sketch must be bitwise
// identical with the recorder armed and disarmed.
TEST(TraceOverhead, TracingOffAndOnAreBitwiseIdentical) {
  const auto a = random_sparse<double>(300, 80, 0.04, 29);
  SketchConfig cfg;
  cfg.d = 96;
  cfg.block_d = 40;
  cfg.kernel = KernelVariant::Jki;
  cfg.parallel = ParallelOver::DBlocks;

  DenseMatrix<double> plain(cfg.d, a.cols());
  sketch_into(cfg, a, plain);
  DenseMatrix<double> traced(cfg.d, a.cols());
  {
    TraceGuard guard;
    sketch_into(cfg, a, traced);
  }
  ASSERT_EQ(plain.rows(), traced.rows());
  ASSERT_EQ(plain.cols(), traced.cols());
  ASSERT_EQ(plain.ld(), traced.ld());
  EXPECT_EQ(std::memcmp(plain.data(), traced.data(),
                        sizeof(double) * static_cast<std::size_t>(
                                             plain.ld() * plain.cols())),
            0);
}

}  // namespace
}  // namespace rsketch
