// Structural tests for the CSC/CSR/COO containers.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace rsketch {
namespace {

CscMatrix<double> small_csc() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  return CscMatrix<double>(3, 3, {0, 2, 3, 5}, {0, 2, 1, 0, 2},
                           {1.0, 4.0, 3.0, 2.0, 5.0});
}

TEST(Csc, BasicAccessors) {
  const auto a = small_csc();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 5);
  EXPECT_DOUBLE_EQ(a.density(), 5.0 / 9.0);
  EXPECT_EQ(a.col_nnz(0), 2);
  EXPECT_EQ(a.col_nnz(1), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);
}

TEST(Csc, AtOutOfRangeThrows) {
  const auto a = small_csc();
  EXPECT_THROW(a.at(3, 0), invalid_argument_error);
  EXPECT_THROW(a.at(0, -1), invalid_argument_error);
}

TEST(Csc, EmptyMatrix) {
  CscMatrix<double> a(5, 4);
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 0.0);
  a.validate();
  CscMatrix<double> zero(0, 0);
  EXPECT_EQ(zero.nnz(), 0);
  EXPECT_DOUBLE_EQ(zero.density(), 0.0);
}

TEST(Csc, ValidateRejectsBadColPtr) {
  EXPECT_THROW(CscMatrix<double>(2, 2, {0, 2}, {0}, {1.0}),
               invalid_argument_error);  // col_ptr wrong size
  EXPECT_THROW(CscMatrix<double>(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               invalid_argument_error);  // non-monotone
  EXPECT_THROW(CscMatrix<double>(2, 2, {0, 1, 3}, {0, 1}, {1.0, 2.0}),
               invalid_argument_error);  // back != nnz
}

TEST(Csc, ValidateRejectsBadRowIndices) {
  EXPECT_THROW(CscMatrix<double>(2, 2, {0, 1, 2}, {0, 2}, {1.0, 2.0}),
               invalid_argument_error);  // row out of range
  EXPECT_THROW(
      CscMatrix<double>(3, 1, {0, 2}, {1, 1}, {1.0, 2.0}),
      invalid_argument_error);  // duplicate (not strictly ascending)
  EXPECT_THROW(CscMatrix<double>(3, 1, {0, 2}, {2, 0}, {1.0, 2.0}),
               invalid_argument_error);  // descending
}

TEST(Csc, ScaleMultipliesValues) {
  auto a = small_csc();
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 10.0);
}

TEST(Csc, MemoryBytes) {
  const auto a = small_csc();
  const std::size_t expected =
      4 * sizeof(index_t) + 5 * sizeof(index_t) + 5 * sizeof(double);
  EXPECT_EQ(a.memory_bytes(), expected);
}

TEST(Csr, BasicAccessorsAndValidate) {
  // Same small matrix, CSR layout.
  CsrMatrix<double> a(3, 3, {0, 2, 3, 5}, {0, 2, 1, 0, 2},
                      {1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(a.row_nnz(0), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 0.0);
  EXPECT_THROW(a.at(0, 5), invalid_argument_error);
}

TEST(Csr, ValidateRejectsBadStructure) {
  EXPECT_THROW(CsrMatrix<double>(2, 2, {0, 1}, {0}, {1.0}),
               invalid_argument_error);
  EXPECT_THROW(CsrMatrix<double>(2, 2, {0, 1, 2}, {0, 3}, {1.0, 2.0}),
               invalid_argument_error);
  EXPECT_THROW(CsrMatrix<double>(2, 3, {0, 2, 2}, {1, 1}, {1.0, 2.0}),
               invalid_argument_error);
}

TEST(Coo, PushAndBounds) {
  CooMatrix<float> c(4, 3);
  c.push(0, 0, 1.0f);
  c.push(3, 2, 2.0f);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_THROW(c.push(4, 0, 1.0f), invalid_argument_error);
  EXPECT_THROW(c.push(0, 3, 1.0f), invalid_argument_error);
  EXPECT_THROW(c.push(-1, 0, 1.0f), invalid_argument_error);
}

TEST(Coo, NegativeDimensionThrows) {
  EXPECT_THROW(CooMatrix<float>(-1, 2), invalid_argument_error);
}

}  // namespace
}  // namespace rsketch
