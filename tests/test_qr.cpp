// Householder QR: orthogonality, reconstruction, and least-squares solves.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dense/blas1.hpp"
#include "dense/gemm.hpp"
#include "rng/distributions.hpp"
#include "solvers/qr.hpp"

namespace rsketch {
namespace {

DenseMatrix<double> random_dense(index_t m, index_t n, std::uint64_t seed) {
  SketchSampler<double> s(seed, Dist::Uniform, RngBackend::Xoshiro);
  DenseMatrix<double> a(m, n);
  for (index_t j = 0; j < n; ++j) s.fill(0, j, a.col(j), m);
  return a;
}

TEST(Qr, ReconstructsA) {
  const index_t m = 40, n = 15;
  const auto a = random_dense(m, n, 1);
  DenseMatrix<double> copy(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) copy(i, j) = a(i, j);
  }
  QrFactor<double> f = qr_factorize(std::move(copy));

  // Rebuild A column by column: A e_j = Q (R e_j).
  for (index_t j = 0; j < n; ++j) {
    std::vector<double> y(static_cast<std::size_t>(m), 0.0);
    for (index_t i = 0; i <= j; ++i) y[static_cast<std::size_t>(i)] = f.qr(i, j);
    apply_q(f, y.data());
    for (index_t i = 0; i < m; ++i) {
      EXPECT_NEAR(y[static_cast<std::size_t>(i)], a(i, j), 1e-10);
    }
  }
}

TEST(Qr, QIsOrthonormal) {
  const index_t m = 30, n = 12;
  auto a = random_dense(m, n, 2);
  QrFactor<double> f = qr_factorize(std::move(a));
  // QᵀQ = I: push unit vectors through Q then Qᵀ.
  for (index_t j = 0; j < m; j += 7) {
    std::vector<double> e(static_cast<std::size_t>(m), 0.0);
    e[static_cast<std::size_t>(j)] = 1.0;
    apply_q(f, e.data());
    EXPECT_NEAR(nrm2(m, e.data()), 1.0, 1e-12);
    apply_qt(f, e.data());
    for (index_t i = 0; i < m; ++i) {
      EXPECT_NEAR(e[static_cast<std::size_t>(i)], i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Qr, RMatchesExtract) {
  auto a = random_dense(25, 10, 3);
  QrFactor<double> f = qr_factorize(std::move(a));
  const auto r = extract_r(f);
  EXPECT_EQ(r.rows(), 10);
  EXPECT_EQ(r.cols(), 10);
  for (index_t j = 0; j < 10; ++j) {
    for (index_t i = 0; i < 10; ++i) {
      if (i <= j) {
        EXPECT_DOUBLE_EQ(r(i, j), f.qr(i, j));
      } else {
        EXPECT_DOUBLE_EQ(r(i, j), 0.0);
      }
    }
  }
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  const index_t m = 50, n = 8;
  const auto a = random_dense(m, n, 4);
  SketchSampler<double> s(5, Dist::Uniform, RngBackend::Xoshiro);
  std::vector<double> b(static_cast<std::size_t>(m));
  s.fill(0, 999, b.data(), m);

  DenseMatrix<double> copy(m, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) copy(i, j) = a(i, j);
  }
  QrFactor<double> f = qr_factorize(std::move(copy));
  const auto x = qr_least_squares(f, b.data());

  // Optimality: Aᵀ(Ax − b) = 0.
  std::vector<double> r(b);
  for (index_t j = 0; j < n; ++j) {
    axpy(m, -x[static_cast<std::size_t>(j)], a.col(j), r.data());
  }
  for (index_t j = 0; j < n; ++j) {
    EXPECT_NEAR(dot(m, a.col(j), r.data()), 0.0, 1e-9);
  }
}

TEST(Qr, ExactSolveOnSquareSystem) {
  const index_t n = 12;
  const auto a = random_dense(n, n, 6);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) x_true[static_cast<std::size_t>(i)] = i - 5.0;
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    axpy(n, x_true[static_cast<std::size_t>(j)], a.col(j), b.data());
  }
  DenseMatrix<double> copy(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) copy(i, j) = a(i, j);
  }
  QrFactor<double> f = qr_factorize(std::move(copy));
  const auto x = qr_least_squares(f, b.data());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Qr, WideMatrixThrows) {
  DenseMatrix<double> a(3, 5);
  EXPECT_THROW(qr_factorize(std::move(a)), invalid_argument_error);
}

TEST(Qr, RankDeficientSolveThrows) {
  // A structurally zero column gives an exactly zero R diagonal entry.
  DenseMatrix<double> a(6, 2);
  for (index_t i = 0; i < 6; ++i) a(i, 0) = static_cast<double>(i + 1);
  QrFactor<double> f = qr_factorize(std::move(a));
  std::vector<double> b(6, 1.0);
  EXPECT_THROW(qr_least_squares(f, b.data()), invalid_argument_error);
}

TEST(Qr, AlreadyTriangularInput) {
  DenseMatrix<double> a(4, 4);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i <= j; ++i) a(i, j) = 1.0 + i + j;
  }
  QrFactor<double> f = qr_factorize(std::move(a));
  // tau = 0 for all reflectors (columns already collapsed).
  for (double t : f.tau) EXPECT_DOUBLE_EQ(t, 0.0);
}

}  // namespace
}  // namespace rsketch
