// Run-control layer (support/run_control.hpp): cooperative cancellation
// stops a sketch within one outer block and leaves the output untouched,
// deadlines fire deterministically on the fake clock, workspace budgets
// drive the degradation ladder to a bitwise-identical Â (or a clean
// BudgetExceeded under --on-pressure=fail), and charges never leak — not
// even across exceptions. Runs under TSan via the `parallel` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "perf/perf.hpp"
#include "sketch/sketch.hpp"
#include "sketch/streaming.hpp"
#include "solvers/guarded.hpp"
#include "solvers/least_squares.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"
#include "support/memory_tracker.hpp"
#include "support/run_control.hpp"
#include "testdata/faults.hpp"

namespace rsketch {
namespace {

// ---------------------------------------------------------------- handle --

TEST(RunControl, FreshHandleIsUnarmed) {
  RunControl rc;
  EXPECT_FALSE(rc.cancel_requested());
  EXPECT_FALSE(rc.has_deadline());
  EXPECT_FALSE(rc.has_budget());
  EXPECT_FALSE(rc.budget_armed());
  EXPECT_EQ(rc.stop_cause(), StopCause::None);
  EXPECT_NO_THROW(rc.poll());
  EXPECT_EQ(rc.remaining_bytes(), SIZE_MAX);
}

TEST(RunControl, CancelLatchesAndPollThrows) {
  RunControl rc;
  rc.request_cancel();
  EXPECT_EQ(rc.stop_cause(), StopCause::Cancelled);
  try {
    rc.poll();
    FAIL() << "poll() must throw after request_cancel()";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::Cancelled);
  }
}

TEST(RunControl, ChargeAgainstBudget) {
  RunControl rc;
  rc.set_budget_bytes(100);
  EXPECT_TRUE(rc.try_charge(60));
  EXPECT_EQ(rc.charged_bytes(), 60u);
  EXPECT_EQ(rc.remaining_bytes(), 40u);
  // Overcommit: nothing is charged, the budget-hit latch fires.
  EXPECT_FALSE(rc.try_charge(41));
  EXPECT_EQ(rc.charged_bytes(), 60u);
  EXPECT_EQ(rc.stop_cause(), StopCause::BudgetExceeded);
  rc.uncharge(60);
  EXPECT_EQ(rc.charged_bytes(), 0u);
}

TEST(RunControl, ChargePropagatesThroughChainWithRollback) {
  RunControl parent, child;
  parent.set_budget_bytes(100);
  child.set_budget_bytes(1000);  // child is looser than the parent
  child.set_parent(&parent);
  EXPECT_TRUE(child.budget_armed());
  // 150 fits the child but not the parent: the child's provisional charge
  // must be rolled back, or retries would shrink the pool it never got.
  EXPECT_FALSE(child.try_charge(150));
  EXPECT_EQ(child.charged_bytes(), 0u);
  EXPECT_EQ(parent.charged_bytes(), 0u);
  EXPECT_TRUE(child.try_charge(80));
  EXPECT_EQ(child.charged_bytes(), 80u);
  EXPECT_EQ(parent.charged_bytes(), 80u);
  // remaining_bytes reports the tightest control in the chain.
  EXPECT_EQ(child.remaining_bytes(), 20u);
  child.uncharge(80);
}

TEST(RunControl, ChildSeesParentStop) {
  RunControl parent, child;
  child.set_parent(&parent);
  EXPECT_EQ(child.stop_cause(), StopCause::None);
  parent.request_cancel();
  EXPECT_EQ(child.stop_cause(), StopCause::Cancelled);
}

TEST(RunControl, DeadlineOnFakeClock) {
  faults::ScheduledFault clock;
  RunControl rc;
  rc.set_deadline_ms(50.0);
  EXPECT_TRUE(rc.has_deadline());
  EXPECT_EQ(rc.stop_cause(), StopCause::None);
  EXPECT_NEAR(rc.deadline_remaining_ms(), 50.0, 1e-9);
  clock.advance_ms(49.0);
  EXPECT_EQ(rc.stop_cause(), StopCause::None);
  clock.advance_ms(2.0);
  EXPECT_EQ(rc.stop_cause(), StopCause::DeadlineExceeded);
  EXPECT_EQ(rc.deadline_remaining_ms(), 0.0);
}

TEST(RunControl, DeadlineRemainingIsTightestInChain) {
  faults::ScheduledFault clock;
  RunControl parent, child;
  parent.set_deadline_ms(30.0);
  child.set_deadline_ms(200.0);
  child.set_parent(&parent);
  EXPECT_NEAR(child.deadline_remaining_ms(), 30.0, 1e-9);
}

TEST(CooperativeStop, LatchesFirstCauseAndThrowsAfterJoin) {
  CooperativeStop stop;
  EXPECT_FALSE(stop.should_skip(nullptr));  // unarmed: never skips
  RunControl rc;
  EXPECT_FALSE(stop.should_skip(&rc));
  rc.request_cancel();
  EXPECT_TRUE(stop.should_skip(&rc));
  EXPECT_TRUE(stop.stopped());
  EXPECT_EQ(stop.cause(), StopCause::Cancelled);
  try {
    stop.throw_if_stopped("unit");
    FAIL() << "throw_if_stopped must throw after a latched stop";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::Cancelled);
  }
}

// ---------------------------------------------------------- sketch paths --

CscMatrix<double> test_matrix() {
  return random_sparse<double>(200, 60, 0.15, 7);
}

/// Exact elementwise equality — the run-control contract is bitwise, not
/// within-tolerance.
void expect_bitwise_equal(const DenseMatrix<double>& a,
                          const DenseMatrix<double>& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

/// Fill with a sentinel so "untouched" is distinguishable from "zeroed".
DenseMatrix<double> sentinel_matrix(index_t rows, index_t cols) {
  DenseMatrix<double> m(rows, cols);
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) m(i, j) = -123.25;
  }
  return m;
}

void expect_sentinel_intact(const DenseMatrix<double>& m) {
  for (index_t j = 0; j < m.cols(); ++j) {
    for (index_t i = 0; i < m.rows(); ++i) {
      ASSERT_EQ(m(i, j), -123.25) << "output mutated at (" << i << ", " << j
                                  << ") despite the stop";
    }
  }
}

TEST(RunControlSketch, PreCancelledRunLeavesOutputUntouched) {
  const auto a = test_matrix();
  SketchConfig cfg;
  cfg.d = 40;
  RunControl rc;
  rc.request_cancel();
  cfg.control = &rc;
  auto a_hat = sentinel_matrix(cfg.d, a.cols());
  try {
    sketch_into(cfg, a, a_hat);
    FAIL() << "cancelled sketch must throw";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::Cancelled);
  }
  expect_sentinel_intact(a_hat);
}

TEST(RunControlSketch, ExpiredDeadlineLeavesOutputUntouched) {
  faults::ScheduledFault clock;
  const auto a = test_matrix();
  RunControl rc;
  rc.set_deadline_ms(10.0);
  clock.advance_ms(20.0);  // the deadline passed before the sketch started
  SketchConfig cfg;
  cfg.d = 40;
  cfg.control = &rc;
  auto a_hat = sentinel_matrix(cfg.d, a.cols());
  try {
    sketch_into(cfg, a, a_hat);
    FAIL() << "expired deadline must stop the sketch";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::DeadlineExceeded);
  }
  expect_sentinel_intact(a_hat);
}

TEST(RunControlSketch, ArmedButUnhitBoundsAreBitwiseInvisible) {
  // A generous deadline and budget must not change a single bit of Â —
  // the armed path stages into a private buffer but computes identically.
  const auto a = test_matrix();
  SketchConfig cfg;
  cfg.d = 40;
  DenseMatrix<double> plain;
  sketch_into(cfg, a, plain);

  SketchConfig armed = cfg;
  armed.deadline_ms = 1e9;
  armed.workspace_budget_bytes = std::size_t{1} << 40;
  DenseMatrix<double> bounded;
  const auto stats = sketch_into(armed, a, bounded);
  EXPECT_EQ(stats.degradations, 0u);
  expect_bitwise_equal(plain, bounded);
}

TEST(RunControlSketch, SecondThreadCancellationStopsTheSketch) {
  // A watcher thread cancels while the sketch runs. Timing is inherently
  // racy, so a fast machine finishing cleanly is a pass too — what the test
  // pins down is that a mid-flight cancel is honored (within one outer
  // block) and honors clean-throw semantics when it lands.
  const auto a = random_sparse<double>(4000, 300, 0.10, 11);
  SketchConfig cfg;
  cfg.d = 900;
  cfg.block_d = 8;  // many outer blocks -> many poll points
  cfg.block_n = 8;
  RunControl rc;
  cfg.control = &rc;
  std::atomic<bool> started{false};
  std::thread watcher([&] {
    while (!started.load(std::memory_order_relaxed)) std::this_thread::yield();
    rc.request_cancel();
  });
  auto a_hat = sentinel_matrix(cfg.d, a.cols());
  bool threw = false;
  try {
    started.store(true, std::memory_order_relaxed);
    sketch_into(cfg, a, a_hat);
  } catch (const run_stopped_error& e) {
    threw = true;
    EXPECT_EQ(e.cause(), StopCause::Cancelled);
  }
  watcher.join();
  if (threw) {
    expect_sentinel_intact(a_hat);
  } else {
    // Sketch won the race: the output must then be the real sketch.
    DenseMatrix<double> expected;
    SketchConfig plain = cfg;
    plain.control = nullptr;
    sketch_into(plain, a, expected);
    expect_bitwise_equal(expected, a_hat);
  }
}

// ------------------------------------------------------- budget + ladder --

TEST(RunControlBudget, LadderDegradesToBitwiseIdenticalSketch) {
  const auto a = test_matrix();
  SketchConfig cfg;
  cfg.d = 40;
  cfg.kernel = KernelVariant::Jki;
  cfg.block_n = 16;  // several vertical blocks -> the conversion has bulk
  cfg.parallel = ParallelOver::DBlocks;
  DenseMatrix<double> unbounded;
  sketch_into(cfg, a, unbounded);

  // Budget exactly the kji/sequential footprint: the ladder must shed the
  // thread team and the jki conversion to fit, and the result must not
  // move a bit (kji/jki and thread count are bitwise-equivalent by design).
  SketchConfig floor_cfg = cfg;
  floor_cfg.kernel = KernelVariant::Kji;
  floor_cfg.parallel = ParallelOver::Sequential;
  const std::size_t floor_bytes =
      sketch_workspace_estimate<double>(floor_cfg, a.rows(), a.cols(), a.nnz());
  ASSERT_LT(floor_bytes, sketch_workspace_estimate<double>(cfg, a.rows(),
                                                           a.cols(), a.nnz()));

  SketchConfig tight = cfg;
  tight.workspace_budget_bytes = floor_bytes;
  DenseMatrix<double> degraded;
  const auto stats = sketch_into(tight, a, degraded);
  EXPECT_GE(stats.degradations, 1u);
  expect_bitwise_equal(unbounded, degraded);
}

TEST(RunControlBudget, PhiloxLadderMayHalveBlockD) {
  // Philox's sample stream is blocking-independent, so the ladder's last
  // rung (halving b_d) is available and still bitwise-clean.
  const auto a = test_matrix();
  SketchConfig cfg;
  cfg.d = 40;
  cfg.backend = RngBackend::Philox;
  cfg.kernel = KernelVariant::Kji;
  cfg.parallel = ParallelOver::Sequential;
  cfg.block_d = 64;
  DenseMatrix<double> unbounded;
  sketch_into(cfg, a, unbounded);

  SketchConfig quarter = cfg;
  quarter.block_d = 16;
  const std::size_t quarter_bytes = sketch_workspace_estimate<double>(
      quarter, a.rows(), a.cols(), a.nnz());
  SketchConfig tight = cfg;
  tight.workspace_budget_bytes = quarter_bytes;
  DenseMatrix<double> degraded;
  const auto stats = sketch_into(tight, a, degraded);
  EXPECT_GE(stats.degradations, 2u);  // two halvings: 64 -> 32 -> 16
  expect_bitwise_equal(unbounded, degraded);
}

TEST(RunControlBudget, OnPressureFailThrowsInsteadOfDegrading) {
  const auto a = test_matrix();
  SketchConfig cfg;
  cfg.d = 40;
  cfg.workspace_budget_bytes = 1;  // nothing fits
  cfg.on_pressure = OnPressure::Fail;
  auto a_hat = sentinel_matrix(cfg.d, a.cols());
  try {
    sketch_into(cfg, a, a_hat);
    FAIL() << "on_pressure=fail must throw at the first pressure";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::BudgetExceeded);
  }
  expect_sentinel_intact(a_hat);
}

TEST(RunControlBudget, ExhaustedLadderThrowsBudgetExceeded) {
  // Xoshiro backends cannot shrink b_d (blocking-dependent stream), so a
  // one-byte budget exhausts the ladder instead of looping forever.
  const auto a = test_matrix();
  SketchConfig cfg;
  cfg.d = 40;
  cfg.workspace_budget_bytes = 1;
  auto a_hat = sentinel_matrix(cfg.d, a.cols());
  try {
    sketch_into(cfg, a, a_hat);
    FAIL() << "an unsatisfiable budget must throw";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::BudgetExceeded);
    EXPECT_NE(std::string(e.what()).find("ladder exhausted"),
              std::string::npos);
  }
  expect_sentinel_intact(a_hat);
}

TEST(RunControlBudget, DegradationsAreCountedInPerf) {
  const auto a = test_matrix();
  perf::set_enabled(true);
  perf::reset();
  SketchConfig cfg;
  cfg.d = 40;
  cfg.kernel = KernelVariant::Jki;
  cfg.parallel = ParallelOver::DBlocks;
  SketchConfig floor_cfg = cfg;
  floor_cfg.kernel = KernelVariant::Kji;
  floor_cfg.parallel = ParallelOver::Sequential;
  cfg.workspace_budget_bytes =
      sketch_workspace_estimate<double>(floor_cfg, a.rows(), a.cols(), a.nnz());
  DenseMatrix<double> a_hat;
  const auto stats = sketch_into(cfg, a, a_hat);
  const auto snap = perf::snapshot();
  perf::set_enabled(false);
  EXPECT_GE(stats.degradations, 1u);
  EXPECT_EQ(snap.get(perf::Counter::RunDegradations), stats.degradations);
  const auto it = snap.spans.find("run_control/degrade");
  ASSERT_NE(it, snap.spans.end());
  EXPECT_EQ(it->second.count, stats.degradations);
}

// ------------------------------------------------------------- streaming --

TEST(RunControlStreaming, CancelledRunLeavesOutputUntouched) {
  const auto a = test_matrix();
  SketchConfig cfg;
  cfg.d = 24;
  cfg.block_d = 24;
  RunControl rc;
  rc.request_cancel();
  cfg.control = &rc;
  auto out = sentinel_matrix(cfg.d, a.cols());
  try {
    streaming_sketch(cfg, csc_to_csr(a), out);
    FAIL() << "cancelled streaming sketch must throw";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::Cancelled);
  }
  expect_sentinel_intact(out);
}

TEST(RunControlStreaming, ArmedButUnhitDeadlineIsBitwiseInvisible) {
  const auto a = test_matrix();
  SketchConfig cfg;
  cfg.d = 24;
  cfg.block_d = 24;
  DenseMatrix<double> plain;
  streaming_sketch(cfg, csc_to_csr(a), plain);
  SketchConfig armed = cfg;
  armed.deadline_ms = 1e9;
  DenseMatrix<double> bounded;
  streaming_sketch(armed, csc_to_csr(a), bounded);
  expect_bitwise_equal(plain, bounded);
}

// --------------------------------------------------------- guarded solve --

TEST(RunControlGuarded, StopIsLoggedOnceAndNeverBurnsAttempts) {
  const auto a = random_sparse<double>(120, 40, 0.3, 2024);
  const auto b = make_least_squares_rhs(a, 7);
  faults::ScheduledFault clock;
  RunControl rc;
  rc.set_deadline_ms(10.0);
  clock.advance_ms(20.0);  // dead before the solve starts
  GuardedSapOptions opt;
  opt.max_attempts = 5;
  opt.control = &rc;
  try {
    guarded_sap_solve(a, b, opt);
    FAIL() << "an expired deadline must stop the solve";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::DeadlineExceeded);
    // Exactly-once: the message logs one deadline_exceeded attempt, not
    // five timed-out ones.
    const std::string what = e.what();
    EXPECT_NE(what.find("attempt 1: deadline_exceeded"), std::string::npos)
        << what;
    EXPECT_EQ(what.find("attempt 2"), std::string::npos) << what;
  }
}

TEST(RunControlGuarded, CancelledControlStopsTheSolve) {
  const auto a = random_sparse<double>(120, 40, 0.3, 2024);
  const auto b = make_least_squares_rhs(a, 7);
  RunControl rc;
  rc.request_cancel();
  GuardedSapOptions opt;
  opt.control = &rc;
  try {
    guarded_sap_solve(a, b, opt);
    FAIL() << "a cancelled control must stop the solve";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::Cancelled);
  }
}

// -------------------------------------------------------- memory tracker --

TEST(RunControlTracker, AttachedTrackerEnforcesBudget) {
  RunControl rc;
  rc.set_budget_bytes(100);
  MemoryTracker mt;
  mt.attach(&rc);
  mt.add("a", 60);
  EXPECT_EQ(rc.charged_bytes(), 60u);
  try {
    mt.add("b", 50);
    FAIL() << "the attached budget must refuse the overcommit";
  } catch (const run_stopped_error& e) {
    EXPECT_EQ(e.cause(), StopCause::BudgetExceeded);
  }
  // Charge-before-commit: the refused allocation never entered the books.
  EXPECT_EQ(mt.current_bytes(), 60u);
  EXPECT_EQ(rc.charged_bytes(), 60u);
  mt.release("a");
  EXPECT_EQ(rc.charged_bytes(), 0u);
}

TEST(RunControlTracker, DestructorReturnsOutstandingCharges) {
  RunControl rc;
  rc.set_budget_bytes(1000);
  {
    MemoryTracker mt;
    mt.attach(&rc);
    mt.add("leaked by an exception path", 400);
    EXPECT_EQ(rc.charged_bytes(), 400u);
  }
  // The tracker died with live items; the budget must be whole again.
  EXPECT_EQ(rc.charged_bytes(), 0u);
}

TEST(RunControlTracker, ConcurrentAddReleaseBalances) {
  // Thread-safety hammer (meaningful under TSan): concurrent add/release
  // from many threads must serialize cleanly and balance to zero.
  MemoryTracker mt;
  RunControl rc;
  rc.set_budget_bytes(SIZE_MAX / 2);
  mt.attach(&rc);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&mt, t] {
      const std::string label = "thread " + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        mt.add(label, 64);
        mt.release(label);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mt.current_bytes(), 0u);
  EXPECT_EQ(rc.charged_bytes(), 0u);
  EXPECT_GE(mt.peak_bytes(), 64u);
}

// ------------------------------------------------------------- env knobs --

TEST(RunControlEnv, ScheduledFaultRestoresTheRealClock) {
  {
    faults::ScheduledFault clock;
    EXPECT_EQ(RunControl::now_ns(), 0);
    clock.advance_seconds(1.5);
    EXPECT_EQ(RunControl::now_ns(), 1'500'000'000LL);
    EXPECT_NEAR(clock.elapsed_ms(), 1500.0, 1e-9);
  }
  // Destructor re-arms the steady clock: time moves again.
  const long long t0 = RunControl::now_ns();
  EXPECT_GT(t0, 0);
}

}  // namespace
}  // namespace rsketch
