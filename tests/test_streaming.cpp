// The pylspack-style (1, m, 1) streaming scheme the paper contrasts against.
#include <gtest/gtest.h>

#include "sketch/sketch.hpp"
#include "sketch/streaming.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"
#include "sparse/validate.hpp"
#include "testdata/faults.hpp"

namespace rsketch {
namespace {

class StreamingDists : public ::testing::TestWithParam<Dist> {};

TEST_P(StreamingDists, MatchesBlockedKernel) {
  const auto a = random_sparse<double>(100, 35, 0.12, 1);
  SketchConfig cfg;
  cfg.d = 30;
  cfg.block_d = 30;
  cfg.dist = GetParam();
  DenseMatrix<double> blocked;
  sketch_into(cfg, a, blocked);
  DenseMatrix<double> streamed;
  streaming_sketch(cfg, csc_to_csr(a), streamed);
  const double tol = GetParam() == Dist::UniformScaled ? 1e-6 : 1e-10;
  EXPECT_LT(blocked.max_abs_diff(streamed), tol);
}

INSTANTIATE_TEST_SUITE_P(AllDists, StreamingDists,
                         ::testing::Values(Dist::PmOne, Dist::Uniform,
                                           Dist::UniformScaled,
                                           Dist::Gaussian),
                         [](const ::testing::TestParamInfo<Dist>& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(Streaming, SkipsEmptyRows) {
  // Only nonempty rows of A trigger generation of a column of S.
  const auto a = abnormal_a<double>(80, 12, 8, 2);  // 10 dense rows
  SketchConfig cfg;
  cfg.d = 24;
  cfg.block_d = 24;
  DenseMatrix<double> out;
  const auto stats = streaming_sketch(cfg, csc_to_csr(a), out);
  EXPECT_EQ(stats.samples_generated, 24u * 10u);
}

TEST(Streaming, SampleCountIsMinimal) {
  // (1, m, 1)-blocking generates at most d×(nonempty rows) — the memory-
  // optimal count, at the cost of touching all of Â per row.
  const auto a = random_sparse<double>(200, 50, 0.1, 3);
  SketchConfig cfg;
  cfg.d = 40;
  cfg.block_d = 40;
  DenseMatrix<double> out;
  const auto stats = streaming_sketch(cfg, csc_to_csr(a), out);
  EXPECT_LE(stats.samples_generated, 40u * 200u);

  // Algorithm 3 on the same problem generates d per NONZERO: strictly more.
  SketchSampler<double> probe(cfg.seed, cfg.dist, cfg.backend);
  EXPECT_LT(stats.samples_generated,
            static_cast<std::uint64_t>(40) *
                static_cast<std::uint64_t>(a.nnz()));
}

TEST(Streaming, EmptyMatrix) {
  CsrMatrix<double> a(50, 0);
  SketchConfig cfg;
  cfg.d = 8;
  DenseMatrix<double> out;
  const auto stats = streaming_sketch(cfg, a, out);
  EXPECT_EQ(out.cols(), 0);
  EXPECT_EQ(stats.samples_generated, 0u);
}

TEST(Streaming, StatsReportTimeAndGflops) {
  const auto a = random_sparse<double>(500, 80, 0.05, 4);
  SketchConfig cfg;
  cfg.d = 64;
  DenseMatrix<double> out;
  const auto stats = streaming_sketch(cfg, csc_to_csr(a), out);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.gflops, 0.0);
}

TEST(Streaming, CheckInputsRejectsNonFiniteInput) {
  const auto clean = random_sparse<double>(60, 20, 0.2, 5);
  const auto bad =
      csc_to_csr(faults::corrupt_csc(clean, faults::CscFault::NanPayload, 1));
  SketchConfig cfg;
  cfg.d = 16;
  DenseMatrix<double> out;
  // Off by default: the hot path never scans.
  EXPECT_NO_THROW(streaming_sketch(cfg, bad, out));
  cfg.check_inputs = true;
  EXPECT_THROW(streaming_sketch(cfg, bad, out), validation_error);
  // Clean input sails through with the validators on.
  EXPECT_NO_THROW(streaming_sketch(cfg, csc_to_csr(clean), out));
}

}  // namespace
}  // namespace rsketch
