// Underdetermined minimum-norm SAP solver (paper §V-C footnote 2).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "solvers/minimum_norm.hpp"
#include "solvers/qr.hpp"
#include "sparse/convert.hpp"
#include "sparse/generate.hpp"
#include "sparse/ops.hpp"

namespace rsketch {
namespace {

SapOptions options() {
  SapOptions o;
  o.gamma = 2.0;
  o.lsqr_tol = 1e-13;
  o.lsqr_max_iter = 2000;
  return o;
}

/// Dense reference minimum-norm solution: x = Aᵀ(AAᵀ)⁻¹b via QR of Aᵀ.
std::vector<double> reference_min_norm(const CscMatrix<double>& a,
                                       const std::vector<double>& b) {
  // Aᵀ = QR (tall). Then x = Q R⁻ᵀ b.
  const auto at = transpose(a);
  DenseMatrix<double> dense(at.rows(), at.cols());
  for (index_t j = 0; j < at.cols(); ++j) {
    for (index_t p = at.col_ptr()[j]; p < at.col_ptr()[j + 1]; ++p) {
      dense(at.row_idx()[p], j) = at.values()[p];
    }
  }
  QrFactor<double> f = qr_factorize(std::move(dense));
  // Solve Rᵀ y = b (forward substitution on the packed factor).
  std::vector<double> y(b);
  const index_t m = a.rows();
  for (index_t j = 0; j < m; ++j) {
    double s = y[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < j; ++i) {
      s -= f.qr(i, j) * y[static_cast<std::size_t>(i)];
    }
    y[static_cast<std::size_t>(j)] = s / f.qr(j, j);
  }
  // x = Q [y; 0].
  std::vector<double> x(static_cast<std::size_t>(a.cols()), 0.0);
  for (index_t i = 0; i < m; ++i) x[static_cast<std::size_t>(i)] = y[static_cast<std::size_t>(i)];
  apply_q(f, x.data());
  return x;
}

CscMatrix<double> wide_matrix(index_t m, index_t n, std::uint64_t seed) {
  // Wide, full row rank (each row guaranteed nonempty by density choice).
  auto at = random_sparse<double>(n, m, 0.25, seed);  // tall n×m then flip
  return transpose(at);
}

TEST(MinNorm, SatisfiesTheConstraints) {
  const auto a = wide_matrix(20, 150, 1);
  std::vector<double> x0(150);
  for (index_t j = 0; j < 150; ++j) x0[static_cast<std::size_t>(j)] = std::sin(0.3 * j);
  std::vector<double> b(20, 0.0);
  spmv(a, x0.data(), b.data());

  const auto res = sap_solve_minimum_norm(a, b, options());
  std::vector<double> ax(20, 0.0);
  spmv(a, res.x.data(), ax.data());
  for (index_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(ax[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)],
                1e-8 * (std::fabs(b[static_cast<std::size_t>(i)]) + 1.0));
  }
}

TEST(MinNorm, MatchesDenseReferenceSolution) {
  const auto a = wide_matrix(15, 90, 2);
  std::vector<double> b(15);
  for (index_t i = 0; i < 15; ++i) b[static_cast<std::size_t>(i)] = 1.0 + 0.2 * i;

  const auto res = sap_solve_minimum_norm(a, b, options());
  const auto ref = reference_min_norm(a, b);
  for (index_t j = 0; j < 90; ++j) {
    EXPECT_NEAR(res.x[static_cast<std::size_t>(j)],
                ref[static_cast<std::size_t>(j)],
                1e-7 * (std::fabs(ref[static_cast<std::size_t>(j)]) + 1.0));
  }
}

TEST(MinNorm, SolutionIsShorterThanAnyParticularSolution) {
  const auto a = wide_matrix(12, 80, 3);
  std::vector<double> x0(80, 0.0);
  for (index_t j = 0; j < 80; j += 3) x0[static_cast<std::size_t>(j)] = 1.0;
  std::vector<double> b(12, 0.0);
  spmv(a, x0.data(), b.data());

  const auto res = sap_solve_minimum_norm(a, b, options());
  double norm_min = 0.0, norm_x0 = 0.0;
  for (index_t j = 0; j < 80; ++j) {
    norm_min += res.x[static_cast<std::size_t>(j)] * res.x[static_cast<std::size_t>(j)];
    norm_x0 += x0[static_cast<std::size_t>(j)] * x0[static_cast<std::size_t>(j)];
  }
  EXPECT_LE(norm_min, norm_x0 + 1e-9);
}

TEST(MinNorm, IterationsFewForWellConditioned) {
  const auto a = wide_matrix(25, 300, 4);
  const std::vector<double> b(25, 1.0);
  // m = 25 is small, so the sketch distortion is far from its asymptotic
  // value; oversample more to keep the preconditioned cond tight.
  auto opt = options();
  opt.gamma = 4.0;
  const auto res = sap_solve_minimum_norm(a, b, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 400);
  EXPECT_GT(res.sketch_seconds, 0.0);
  EXPECT_GT(res.workspace_bytes, 0u);
}

TEST(MinNorm, InvalidInputsThrow) {
  const auto tall = random_sparse<double>(50, 10, 0.3, 5);
  std::vector<double> b(50, 1.0);
  EXPECT_THROW(sap_solve_minimum_norm(tall, b, options()),
               invalid_argument_error);

  const auto wide = wide_matrix(10, 60, 6);
  std::vector<double> short_b(5, 1.0);
  EXPECT_THROW(sap_solve_minimum_norm(wide, short_b, options()),
               invalid_argument_error);

  std::vector<double> ok_b(10, 1.0);
  auto bad = options();
  bad.factor = SapFactor::SVD;
  EXPECT_THROW(sap_solve_minimum_norm(wide, ok_b, bad),
               invalid_argument_error);
}

}  // namespace
}  // namespace rsketch
