// Byte-level workspace accounting used to reproduce the paper's Table XI
// (memory requirements of SAP vs. a direct sparse QR solver).
//
// Solvers report the peak extra workspace they allocate beyond the input
// matrix itself; we track that explicitly rather than hooking the allocator,
// so the numbers are deterministic and allocator-independent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rsketch {

/// Records named allocations and reports current / peak totals in bytes.
class MemoryTracker {
 public:
  /// Record an allocation of `bytes` under `label`.
  void add(const std::string& label, std::size_t bytes);

  /// Record that `bytes` previously added were released.
  void release(std::size_t bytes);

  /// Release the most recent still-live allocation recorded under `label`
  /// (no-op when no live item with that label exists). Keeps call sites
  /// honest: the solver frees what it named, without re-stating the size.
  void release(const std::string& label);

  std::size_t current_bytes() const { return current_; }
  std::size_t peak_bytes() const { return peak_; }
  double peak_mbytes() const { return static_cast<double>(peak_) / 1.0e6; }

  /// Itemized (label, bytes) pairs in insertion order.
  const std::vector<std::pair<std::string, std::size_t>>& items() const {
    return items_;
  }

  void clear();

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  std::vector<std::pair<std::string, std::size_t>> items_;
  std::vector<bool> live_;  ///< parallel to items_: not yet released by label
};

}  // namespace rsketch
