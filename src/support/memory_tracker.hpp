// Byte-level workspace accounting used to reproduce the paper's Table XI
// (memory requirements of SAP vs. a direct sparse QR solver).
//
// Solvers report the peak extra workspace they allocate beyond the input
// matrix itself; we track that explicitly rather than hooking the allocator,
// so the numbers are deterministic and allocator-independent.
//
// Thread-safe: a mutex serializes every mutation, so solvers may account
// from inside OpenMP regions. The arithmetic is unchanged from the original
// single-threaded tracker — Table XI numbers are bit-identical.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rsketch {

class RunControl;

/// Records named allocations and reports current / peak totals in bytes.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  /// Returns any outstanding charges to the attached RunControl, so a solve
  /// unwinding on an exception does not leak reserved budget into a caller-
  /// owned control that outlives it.
  ~MemoryTracker();
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Record an allocation of `bytes` under `label`. When a RunControl is
  /// attached, the bytes are charged against its budget first
  /// (charge-before-allocate) and the call throws
  /// run_stopped_error(BudgetExceeded) on exhaustion — before current/peak
  /// move, so the tracker never records an allocation the budget refused.
  void add(const std::string& label, std::size_t bytes);

  /// Record that `bytes` previously added were released.
  void release(std::size_t bytes);

  /// Release the most recent still-live allocation recorded under `label`
  /// (no-op when no live item with that label exists). Keeps call sites
  /// honest: the solver frees what it named, without re-stating the size.
  /// O(1) via the per-label live index (was a reverse scan over all items).
  void release(const std::string& label);

  /// Route subsequent add()/release() through `run`'s workspace budget
  /// (nullptr detaches). The control must outlive the tracker's use.
  void attach(RunControl* run);

  std::size_t current_bytes() const;
  std::size_t peak_bytes() const;
  double peak_mbytes() const {
    return static_cast<double>(peak_bytes()) / 1.0e6;
  }

  /// Itemized (label, bytes) pairs in insertion order. Not synchronized
  /// with concurrent mutation — read it after the workers joined.
  const std::vector<std::pair<std::string, std::size_t>>& items() const {
    return items_;
  }

  void clear();

 private:
  void release_locked(std::size_t bytes);

  mutable std::mutex mu_;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  std::vector<std::pair<std::string, std::size_t>> items_;
  std::vector<bool> live_;  ///< parallel to items_: not yet released by label
  /// Per-label stack of still-live item indices; the top is the most recent
  /// live allocation with that label — exactly what release(label) pops.
  std::unordered_map<std::string, std::vector<std::size_t>> live_by_label_;
  RunControl* run_ = nullptr;
};

}  // namespace rsketch
