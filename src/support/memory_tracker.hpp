// Byte-level workspace accounting used to reproduce the paper's Table XI
// (memory requirements of SAP vs. a direct sparse QR solver).
//
// Solvers report the peak extra workspace they allocate beyond the input
// matrix itself; we track that explicitly rather than hooking the allocator,
// so the numbers are deterministic and allocator-independent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rsketch {

/// Records named allocations and reports current / peak totals in bytes.
class MemoryTracker {
 public:
  /// Record an allocation of `bytes` under `label`.
  void add(const std::string& label, std::size_t bytes);

  /// Record that `bytes` previously added were released.
  void release(std::size_t bytes);

  std::size_t current_bytes() const { return current_; }
  std::size_t peak_bytes() const { return peak_; }
  double peak_mbytes() const { return static_cast<double>(peak_) / 1.0e6; }

  /// Itemized (label, bytes) pairs in insertion order.
  const std::vector<std::pair<std::string, std::size_t>>& items() const {
    return items_;
  }

  void clear();

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  std::vector<std::pair<std::string, std::size_t>> items_;
};

}  // namespace rsketch
