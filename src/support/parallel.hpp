// Thin OpenMP helpers so the rest of the library never touches raw OpenMP
// pragmas outside the hot kernels.
#pragma once

#include <omp.h>

#include <string>

#include "perf/trace.hpp"

namespace rsketch {

/// Number of threads the next parallel region will use.
inline int max_threads() { return omp_get_max_threads(); }

/// Label the calling OpenMP thread in the trace timeline ("omp-worker-3").
/// Call from inside a parallel region (or its loop body — one branch plus a
/// thread_local check per call once named). No-op while tracing is off, so
/// arming mid-run still names whichever workers touch a traced region next.
/// Threads that already carry a label keep it: an executor pool worker
/// running a kernel sequentially stays "pool-worker-N" in the timeline.
inline void trace_name_omp_thread() {
  if (!perf::trace::armed()) return;
  thread_local bool named = false;
  if (named) return;
  named = true;
  perf::trace::set_thread_name_if_unset("omp-worker-" +
                                        std::to_string(omp_get_thread_num()));
}

/// RAII override of the OpenMP thread count, restored on destruction.
/// Used by the parallel-scaling benches to sweep thread counts.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int nthreads) : saved_(omp_get_max_threads()) {
    if (nthreads >= 1) omp_set_num_threads(nthreads);
  }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

}  // namespace rsketch
