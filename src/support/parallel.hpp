// Thin OpenMP helpers so the rest of the library never touches raw OpenMP
// pragmas outside the hot kernels.
#pragma once

#include <omp.h>

namespace rsketch {

/// Number of threads the next parallel region will use.
inline int max_threads() { return omp_get_max_threads(); }

/// RAII override of the OpenMP thread count, restored on destruction.
/// Used by the parallel-scaling benches to sweep thread counts.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int nthreads) : saved_(omp_get_max_threads()) {
    if (nthreads >= 1) omp_set_num_threads(nthreads);
  }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

}  // namespace rsketch
