// Thin OpenMP helpers so the rest of the library never touches raw OpenMP
// pragmas outside the hot kernels.
#pragma once

#include <omp.h>

#ifdef __linux__
#include <sched.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <string>

#include "perf/trace.hpp"
#include "support/env.hpp"

namespace rsketch {

/// Number of threads the next parallel region will use.
inline int max_threads() { return omp_get_max_threads(); }

/// Thread-affinity placement policy (RSKETCH_PIN). Off by default: pinning
/// helps NUMA first-touch locality but fights external schedulers, so it is
/// strictly opt-in. See DESIGN.md §5b.
enum class PinMode {
  Off,      ///< leave placement to the OS / OpenMP runtime
  Compact,  ///< thread t on core t — adjacent threads share caches
  Scatter   ///< spread threads across the core range — maximize bandwidth
};

/// Cached read of RSKETCH_PIN (off | compact | scatter; warn-once otherwise).
inline PinMode pin_mode() {
  static const PinMode m = [] {
    const std::string v = env_string("RSKETCH_PIN", "off");
    if (v == "compact") return PinMode::Compact;
    if (v == "scatter") return PinMode::Scatter;
    if (v != "off") {
      env_warn_once("RSKETCH_PIN", v.c_str(),
                    "expected compact/scatter/off; pinning disabled");
    }
    return PinMode::Off;
  }();
  return m;
}

/// Best-effort affinity pin of the calling thread for a team of `team`
/// threads. Returns false (leaving placement untouched) when the mode is
/// Off, the platform has no affinity API, or the syscall is refused — the
/// schedule is correct either way, so failure only costs locality.
inline bool pin_this_thread(PinMode mode, int thread_num, int team) {
  if (mode == PinMode::Off) return false;
#ifdef __linux__
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  const int ncpu = online > 0 ? static_cast<int>(online) : 1;
  const int stride =
      mode == PinMode::Compact ? 1 : std::max(1, ncpu / std::max(1, team));
  const int cpu = (thread_num * stride) % ncpu;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof set, &set) == 0;
#else
  (void)thread_num;
  (void)team;
  return false;
#endif
}

/// Pin the calling OpenMP worker once per thread per process according to
/// RSKETCH_PIN. One cached-enum branch when pinning is off.
inline void maybe_pin_omp_thread(int team) {
  const PinMode m = pin_mode();
  if (m == PinMode::Off) return;
  thread_local bool pinned = false;
  if (pinned) return;
  pinned = true;
  pin_this_thread(m, omp_get_thread_num(), team);
}

/// Label the calling OpenMP thread in the trace timeline ("omp-worker-3").
/// Call from inside a parallel region (or its loop body — one branch plus a
/// thread_local check per call once named). No-op while tracing is off, so
/// arming mid-run still names whichever workers touch a traced region next.
/// Threads that already carry a label keep it: an executor pool worker
/// running a kernel sequentially stays "pool-worker-N" in the timeline.
inline void trace_name_omp_thread() {
  if (!perf::trace::armed()) return;
  thread_local bool named = false;
  if (named) return;
  named = true;
  perf::trace::set_thread_name_if_unset("omp-worker-" +
                                        std::to_string(omp_get_thread_num()));
}

/// RAII override of the OpenMP thread count, restored on destruction.
/// Used by the parallel-scaling benches to sweep thread counts.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int nthreads) : saved_(omp_get_max_threads()) {
    if (nthreads >= 1) omp_set_num_threads(nthreads);
  }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

}  // namespace rsketch
