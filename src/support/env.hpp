// Environment-variable driven benchmark configuration.
//
// All bench binaries scale the paper's problem sizes through RSKETCH_SCALE so
// the full suite runs on a laptop; RSKETCH_SCALE=1 reproduces paper-size
// problems (needs tens of GB and many cores).
#pragma once

#include <string>

#include "support/common.hpp"

namespace rsketch {

/// Read an integer environment variable, falling back to `fallback` when the
/// variable is unset or unparsable. An unparsable value additionally warns
/// once (per variable, per process) on stderr — a typo'd RSKETCH_* setting
/// should be visible, not a silently different benchmark configuration.
long long env_int(const char* name, long long fallback);

/// Read a floating-point environment variable with fallback.
double env_double(const char* name, double fallback);

/// Read a string environment variable with fallback.
std::string env_string(const char* name, const std::string& fallback);

/// Global dimension divisor for benchmark replicas (RSKETCH_SCALE, default 6).
index_t bench_scale();

/// Dimension divisor for the least-squares replicas (RSKETCH_LS_SCALE,
/// default = bench_scale()). The direct sparse QR baseline costs O(m·n²) in
/// the worst case, so LS problems sometimes need a larger divisor.
index_t ls_scale();

/// Repetitions per timing measurement (RSKETCH_REPS, default 3).
int bench_reps();

/// Maximum thread count exercised by scaling benches (RSKETCH_MAX_THREADS,
/// default: OpenMP's max).
int bench_max_threads();

/// Warn once per (process, variable) on stderr that `name` holds an invalid
/// value and which fallback is used instead. Subsequent calls for the same
/// variable are silent, so hot paths can call this unconditionally.
void env_warn_once(const char* name, const char* value,
                   const std::string& fallback_note);

}  // namespace rsketch
