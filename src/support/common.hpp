// Common index types, error handling, and small utilities shared by every
// rsketch module.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rsketch {

/// Signed index type used for all matrix dimensions and nonzero counts.
/// Signed so loop arithmetic (`j + b - 1`, reverse loops) is safe, 64-bit so
/// paper-scale matrices (nnz up to 4.6e7, products up to 1e12) never overflow.
using index_t = std::int64_t;

/// Exception thrown for structurally invalid inputs (dimension mismatches,
/// malformed sparse structures, bad configuration values).
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when a file cannot be parsed (Matrix Market I/O).
class io_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Exception thrown when a computation breaks down numerically and cannot be
/// recovered (NaN/Inf propagation, exhausted re-sketch attempts in the
/// guarded solver). Distinct from invalid_argument_error: the inputs were
/// structurally fine, the arithmetic went bad.
class numeric_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throw invalid_argument_error with `msg` unless `cond` holds.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw invalid_argument_error(msg);
}

/// Integer ceiling division for nonnegative values.
constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

}  // namespace rsketch
