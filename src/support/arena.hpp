// Workspace-arena hook: lets a batch scheduler recycle kernel scratch
// buffers across many sketch jobs instead of paying aligned_alloc/free per
// job.
//
// The hook mirrors the budget hook in run_control.hpp: a thread-local
// ArenaHook* is installed with ScopedArenaScope around the region whose
// AlignedBuffer allocations should be arena-backed (sketch/sketch.cpp wraps
// exactly the kernel-dispatch call — the staged output is allocated OUTSIDE
// the scope, because it is moved out to the caller and must outlive any
// arena). Because the scope is thread-local, OpenMP worker threads spawned
// inside an arena'd region allocate normally — only the calling thread's
// scratch (the per-thread ThreadCtx vector built before the parallel region)
// goes through the arena, which is exactly the allocation worth recycling.
#pragma once

#include <cstddef>

namespace rsketch {

/// Interface a workspace arena implements to serve AlignedBuffer
/// allocations. acquire either returns a 64-byte-aligned block of at least
/// `bytes` bytes or throws (std::bad_alloc / run_stopped_error when the
/// arena's budget control refuses the growth); release must accept exactly
/// the pointers acquire handed out, in any order, from any thread.
class ArenaHook {
 public:
  virtual ~ArenaHook() = default;
  virtual void* arena_acquire(std::size_t bytes) = 0;
  virtual void arena_release(void* p) noexcept = 0;
};

namespace detail {

/// Thread-local arena for the AlignedBuffer allocation hook. Install with
/// ScopedArenaScope; nullptr (the default) keeps allocations on the heap.
inline thread_local ArenaHook* arena_scope = nullptr;

}  // namespace detail

/// RAII: route AlignedBuffer allocations on this thread through `arena` for
/// the scope's lifetime. Nesting restores the previous scope on destruction;
/// installing nullptr is a no-op scope (so call sites can pass
/// `cfg.arena` unconditionally).
class ScopedArenaScope {
 public:
  explicit ScopedArenaScope(ArenaHook* arena) : previous_(detail::arena_scope) {
    detail::arena_scope = arena;
  }
  ~ScopedArenaScope() { detail::arena_scope = previous_; }
  ScopedArenaScope(const ScopedArenaScope&) = delete;
  ScopedArenaScope& operator=(const ScopedArenaScope&) = delete;

 private:
  ArenaHook* previous_;
};

}  // namespace rsketch
