#include "support/env.hpp"

#include <omp.h>

#include <cstdlib>
#include <string>

namespace rsketch {

long long env_int(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

index_t bench_scale() {
  long long s = env_int("RSKETCH_SCALE", 6);
  return s >= 1 ? static_cast<index_t>(s) : 1;
}

index_t ls_scale() {
  long long s = env_int("RSKETCH_LS_SCALE", bench_scale());
  return s >= 1 ? static_cast<index_t>(s) : 1;
}

int bench_reps() {
  long long r = env_int("RSKETCH_REPS", 3);
  return r >= 1 ? static_cast<int>(r) : 1;
}

int bench_max_threads() {
  long long t = env_int("RSKETCH_MAX_THREADS", omp_get_max_threads());
  return t >= 1 ? static_cast<int>(t) : 1;
}

}  // namespace rsketch
