#include "support/env.hpp"

#include <omp.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace rsketch {

void env_warn_once(const char* name, const char* value,
                   const std::string& fallback_note) {
  static std::mutex mu;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(mu);
  if (!warned.insert(name).second) return;
  std::fprintf(stderr, "rsketch: ignoring invalid %s='%s' (%s)\n", name,
               value == nullptr ? "" : value, fallback_note.c_str());
}

long long env_int(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == nullptr || *end != '\0' || end == v) {
    env_warn_once(name, v, "using default " + std::to_string(fallback));
    return fallback;
  }
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == nullptr || *end != '\0' || end == v) {
    env_warn_once(name, v, "using default " + std::to_string(fallback));
    return fallback;
  }
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

namespace {

/// Clamp an env-sourced count to >= 1, warning once when the user asked for
/// something nonsensical (zero or negative).
long long at_least_one(const char* name, long long value) {
  if (value >= 1) return value;
  env_warn_once(name, std::to_string(value).c_str(), "clamping to 1");
  return 1;
}

}  // namespace

index_t bench_scale() {
  return static_cast<index_t>(
      at_least_one("RSKETCH_SCALE", env_int("RSKETCH_SCALE", 6)));
}

index_t ls_scale() {
  return static_cast<index_t>(at_least_one(
      "RSKETCH_LS_SCALE", env_int("RSKETCH_LS_SCALE", bench_scale())));
}

int bench_reps() {
  return static_cast<int>(
      at_least_one("RSKETCH_REPS", env_int("RSKETCH_REPS", 3)));
}

int bench_max_threads() {
  return static_cast<int>(at_least_one(
      "RSKETCH_MAX_THREADS",
      env_int("RSKETCH_MAX_THREADS", omp_get_max_threads())));
}

}  // namespace rsketch
