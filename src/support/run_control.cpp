#include "support/run_control.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "support/env.hpp"

namespace rsketch {

std::string to_string(StopCause cause) {
  switch (cause) {
    case StopCause::None: return "none";
    case StopCause::Cancelled: return "cancelled";
    case StopCause::DeadlineExceeded: return "deadline_exceeded";
    case StopCause::BudgetExceeded: return "budget_exceeded";
  }
  return "?";
}

long long RunControl::now_ns() {
  const long long fake = detail::fake_clock_ns.load(std::memory_order_relaxed);
  if (fake >= 0) return fake;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RunControl::set_deadline_ms(double ms) {
  if (ms <= 0.0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  long long deadline = now_ns() + static_cast<long long>(ms * 1e6);
  // now() + ms could legitimately land on 0 only under the fake clock;
  // nudge off the "disarmed" sentinel.
  if (deadline == 0) deadline = 1;
  deadline_ns_.store(deadline, std::memory_order_relaxed);
}

void RunControl::set_budget_bytes(std::size_t bytes) {
  budget_.store(bytes, std::memory_order_relaxed);
}

bool RunControl::budget_armed() const {
  for (const RunControl* rc = this; rc != nullptr; rc = rc->parent_) {
    if (rc->has_budget()) return true;
  }
  return false;
}

StopCause RunControl::stop_cause() const {
  for (const RunControl* rc = this; rc != nullptr; rc = rc->parent_) {
    if (rc->cancel_.load(std::memory_order_relaxed)) {
      return StopCause::Cancelled;
    }
    if (rc->budget_hit_.load(std::memory_order_relaxed)) {
      return StopCause::BudgetExceeded;
    }
    const long long deadline =
        rc->deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 && now_ns() >= deadline) {
      return StopCause::DeadlineExceeded;
    }
  }
  return StopCause::None;
}

void RunControl::poll() const {
  const StopCause c = stop_cause();
  if (c != StopCause::None) {
    throw run_stopped_error(c, "run stopped: " + to_string(c));
  }
}

bool RunControl::try_charge(std::size_t bytes) {
  if (bytes == 0) return true;
  // Reserve against each budget-holding control from this one outward; on a
  // failure, roll back the controls already charged so nothing leaks.
  for (RunControl* rc = this; rc != nullptr; rc = rc->parent_) {
    const std::size_t budget = rc->budget_.load(std::memory_order_relaxed);
    if (budget == 0) continue;
    const std::size_t prev =
        rc->charged_.fetch_add(bytes, std::memory_order_relaxed);
    if (prev + bytes > budget) {
      rc->charged_.fetch_sub(bytes, std::memory_order_relaxed);
      rc->budget_hit_.store(true, std::memory_order_relaxed);
      // Roll back the controls charged before rc (walk again up to rc).
      for (RunControl* back = this; back != rc; back = back->parent_) {
        if (back->budget_.load(std::memory_order_relaxed) != 0) {
          back->charged_.fetch_sub(bytes, std::memory_order_relaxed);
        }
      }
      return false;
    }
  }
  return true;
}

void RunControl::charge(std::size_t bytes) {
  if (!try_charge(bytes)) {
    throw run_stopped_error(
        StopCause::BudgetExceeded,
        "workspace budget exceeded: charge of " + std::to_string(bytes) +
            " bytes over a " + std::to_string(budget_bytes()) +
            "-byte budget with " + std::to_string(charged_bytes()) +
            " bytes outstanding");
  }
}

void RunControl::uncharge(std::size_t bytes) noexcept {
  if (bytes == 0) return;
  for (RunControl* rc = this; rc != nullptr; rc = rc->parent_) {
    if (rc->budget_.load(std::memory_order_relaxed) == 0) continue;
    // Saturate rather than wrap if a caller ever double-releases.
    std::size_t cur = rc->charged_.load(std::memory_order_relaxed);
    while (true) {
      const std::size_t next = bytes > cur ? 0 : cur - bytes;
      if (rc->charged_.compare_exchange_weak(cur, next,
                                             std::memory_order_relaxed)) {
        break;
      }
    }
  }
}

double RunControl::deadline_remaining_ms() const {
  double remaining = std::numeric_limits<double>::infinity();
  for (const RunControl* rc = this; rc != nullptr; rc = rc->parent_) {
    const long long deadline = rc->deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == 0) continue;
    const double ms = static_cast<double>(deadline - now_ns()) / 1e6;
    remaining = std::min(remaining, ms > 0.0 ? ms : 0.0);
  }
  return remaining;
}

std::size_t RunControl::remaining_bytes() const {
  std::size_t remaining = std::numeric_limits<std::size_t>::max();
  for (const RunControl* rc = this; rc != nullptr; rc = rc->parent_) {
    const std::size_t budget = rc->budget_.load(std::memory_order_relaxed);
    if (budget == 0) continue;
    const std::size_t charged = rc->charged_.load(std::memory_order_relaxed);
    const std::size_t left = charged >= budget ? 0 : budget - charged;
    if (left < remaining) remaining = left;
  }
  return remaining;
}

double env_deadline_ms() {
  static const double ms = env_double("RSKETCH_DEADLINE_MS", 0.0);
  return ms > 0.0 ? ms : 0.0;
}

std::size_t env_budget_bytes() {
  static const std::size_t bytes = [] {
    const double mb = env_double("RSKETCH_BUDGET_MB", 0.0);
    return mb > 0.0 ? static_cast<std::size_t>(mb * 1e6) : std::size_t{0};
  }();
  return bytes;
}

ResolvedRunControl::ResolvedRunControl(RunControl* external, double deadline_ms,
                                       std::size_t budget_bytes) {
  if (deadline_ms <= 0.0) deadline_ms = env_deadline_ms();
  if (budget_bytes == 0) budget_bytes = env_budget_bytes();
  if (deadline_ms > 0.0 || budget_bytes > 0) {
    local_.set_parent(external);
    if (deadline_ms > 0.0) local_.set_deadline_ms(deadline_ms);
    if (budget_bytes > 0) local_.set_budget_bytes(budget_bytes);
    run_ = &local_;
  } else {
    run_ = external;
  }
}

void CooperativeStop::throw_if_stopped(const char* what) const {
  if (!stopped()) return;
  const StopCause c = cause();
  throw run_stopped_error(c, std::string(what) + ": run stopped between "
                                                 "outer blocks: " +
                                 to_string(c));
}

}  // namespace rsketch
