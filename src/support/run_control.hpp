// Cooperative run control: cancellation, wall-clock deadlines, and workspace
// byte budgets for the sketching and solver pipelines.
//
// A RunControl is a passive handle the caller owns; the pipelines poll it at
// block granularity (one relaxed atomic load per outer block, nothing at all
// when no handle is attached) and abandon the run with a run_stopped_error
// carrying the cause. Outputs follow clean-throw semantics: a stopped run
// leaves the caller's output untouched (the sketch paths stage into a private
// buffer and move it out only on success). Budgets are enforced
// charge-before-allocate through the AlignedBuffer hook below and through
// MemoryTracker::attach(); on budget pressure the sketch path can instead walk
// a degradation ladder (sketch/sketch.cpp) toward a configuration that fits.
// See docs/ROBUSTNESS.md ("Run control") for the semantics table.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace rsketch {

/// Why a controlled run stopped (None = still running / completed).
enum class StopCause {
  None = 0,
  Cancelled,         ///< RunControl::request_cancel() was called
  DeadlineExceeded,  ///< the wall-clock deadline passed
  BudgetExceeded,    ///< a workspace charge would exceed the byte budget
};

std::string to_string(StopCause cause);

/// Thrown when a controlled run is abandoned. Distinct from numeric_error
/// (the math was fine) and invalid_argument_error (the inputs were fine):
/// the caller's bound fired. what() carries context; cause() is machine-
/// readable for exit-code mapping (examples/sketch_tool.cpp).
class run_stopped_error : public std::runtime_error {
 public:
  run_stopped_error(StopCause cause, const std::string& msg)
      : std::runtime_error(msg), cause_(cause) {}
  StopCause cause() const { return cause_; }

 private:
  StopCause cause_;
};

namespace detail {

/// Fake monotonic clock for the deterministic deadline tests
/// (testdata/faults.hpp arms it via ScheduledFault): when >= 0, RunControl
/// reads this value as "now" in nanoseconds instead of the steady clock.
/// Negative = disarmed (the normal state); one relaxed load per deadline
/// check either way.
inline std::atomic<long long> fake_clock_ns{-1};

}  // namespace detail

/// Cooperative cancellation token + deadline + workspace budget.
///
/// Thread-safe: any thread may request_cancel() / charge() / poll()
/// concurrently. Controls can chain (set_parent): a child is considered
/// stopped when it or any ancestor is, and charges propagate to every
/// ancestor holding a budget — how the tuner's pilot sub-deadline composes
/// with the caller's outer bounds without ever loosening them.
class RunControl {
 public:
  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Arm a wall-clock deadline `ms` milliseconds from now (ms <= 0 disarms).
  void set_deadline_ms(double ms);

  /// Arm a workspace byte budget (0 disarms). Charges already outstanding
  /// are kept.
  void set_budget_bytes(std::size_t bytes);

  /// Request cooperative cancellation; pollers stop within one outer block.
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }
  bool has_budget() const {
    return budget_.load(std::memory_order_relaxed) != 0;
  }
  /// True when this control (or an ancestor) carries a budget.
  bool budget_armed() const;

  /// First stop cause found walking this control then its ancestors
  /// (None = keep running). Cancel and budget flags are one relaxed load
  /// each; the deadline costs one clock read only when armed.
  StopCause stop_cause() const;

  /// Throw run_stopped_error when stop_cause() != None.
  void poll() const;

  /// Try to reserve `bytes` of workspace against this control's and every
  /// ancestor's budget. On failure nothing is charged anywhere, the
  /// budget-exceeded latch is set (so pollers see BudgetExceeded), and
  /// false is returned.
  bool try_charge(std::size_t bytes);

  /// Reserve or throw run_stopped_error(BudgetExceeded).
  void charge(std::size_t bytes);

  /// Return `bytes` previously charged. noexcept: called from destructors.
  void uncharge(std::size_t bytes) noexcept;

  /// Milliseconds until the tightest deadline in the chain (clamped at 0;
  /// +infinity when no deadline is armed anywhere). The tuner slices pilot
  /// sub-deadlines off this.
  double deadline_remaining_ms() const;

  std::size_t budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
  }
  std::size_t charged_bytes() const {
    return charged_.load(std::memory_order_relaxed);
  }
  /// Uncommitted budget of the tightest budget-holding control in the chain
  /// (SIZE_MAX when no budget is armed anywhere).
  std::size_t remaining_bytes() const;

  /// Chain to an outer control (nullptr detaches). The parent must outlive
  /// this control. Not thread-safe against concurrent polls — set up the
  /// chain before handing the control to workers.
  void set_parent(RunControl* parent) { parent_ = parent; }
  const RunControl* parent() const { return parent_; }

  /// Monotonic "now" in nanoseconds — the fake clock when armed
  /// (detail::fake_clock_ns), the steady clock otherwise.
  static long long now_ns();

 private:
  std::atomic<bool> cancel_{false};
  std::atomic<bool> budget_hit_{false};
  std::atomic<long long> deadline_ns_{0};  ///< steady epoch ns; 0 = none
  std::atomic<std::size_t> budget_{0};     ///< 0 = none
  std::atomic<std::size_t> charged_{0};
  RunControl* parent_ = nullptr;
};

/// RSKETCH_DEADLINE_MS / RSKETCH_BUDGET_MB, read once per process (0 = unset).
/// They back-stop configs that set no explicit bound; an explicit
/// SketchConfig value always wins.
double env_deadline_ms();
std::size_t env_budget_bytes();

/// Stack-resolved effective control for one entry point: combines an
/// optional external handle with config/env deadline+budget knobs. When any
/// bound is set, owns a local RunControl chained to the external one;
/// otherwise passes the external handle (possibly nullptr) through, keeping
/// the unarmed path allocation- and atomics-free.
class ResolvedRunControl {
 public:
  ResolvedRunControl(RunControl* external, double deadline_ms,
                     std::size_t budget_bytes);

  /// Effective control to poll/charge, or nullptr when nothing is armed.
  RunControl* get() { return run_; }

 private:
  RunControl local_;
  RunControl* run_ = nullptr;
};

/// Shared stop latch for one parallel region: every thread calls
/// should_skip() once per outer block (one relaxed load when already
/// stopped, or when `run` is nullptr one branch and nothing else); after the
/// join the master calls throw_if_stopped(). This is how the OpenMP loops
/// convert a mid-region stop into a single post-join exception instead of
/// throwing across the parallel region (which would terminate).
class CooperativeStop {
 public:
  /// True when the block body must be skipped because the run stopped.
  bool should_skip(const RunControl* run) {
    if (run == nullptr) return false;
    if (stopped_.load(std::memory_order_relaxed)) return true;
    const StopCause c = run->stop_cause();
    if (c == StopCause::None) return false;
    int expected = 0;
    cause_.compare_exchange_strong(expected, static_cast<int>(c),
                                   std::memory_order_relaxed);
    stopped_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool stopped() const { return stopped_.load(std::memory_order_relaxed); }
  StopCause cause() const {
    return static_cast<StopCause>(cause_.load(std::memory_order_relaxed));
  }

  /// Throw run_stopped_error (with `what` as context) when any thread
  /// latched a stop. Call after the parallel region joined.
  void throw_if_stopped(const char* what) const;

 private:
  std::atomic<bool> stopped_{false};
  std::atomic<int> cause_{0};
};

namespace detail {

/// Thread-local charge target for the AlignedBuffer charge-before-allocate
/// hook. Install with ScopedBudgetScope; nullptr (the default) keeps
/// allocations untracked.
inline thread_local RunControl* budget_scope = nullptr;

}  // namespace detail

/// RAII: route AlignedBuffer allocations on this thread through
/// `run->charge()` for the scope's lifetime. Nesting restores the previous
/// scope on destruction.
class ScopedBudgetScope {
 public:
  explicit ScopedBudgetScope(RunControl* run)
      : previous_(detail::budget_scope) {
    detail::budget_scope = run;
  }
  ~ScopedBudgetScope() { detail::budget_scope = previous_; }
  ScopedBudgetScope(const ScopedBudgetScope&) = delete;
  ScopedBudgetScope& operator=(const ScopedBudgetScope&) = delete;

 private:
  RunControl* previous_;
};

/// RAII: charge `bytes` now (throwing on budget exhaustion), uncharge on
/// destruction. For workspace that is not AlignedBuffer-backed (std::vector
/// structures like the blocked-CSR conversion and the LSQR recurrence).
class ScopedCharge {
 public:
  ScopedCharge(RunControl* run, std::size_t bytes) : run_(run), bytes_(bytes) {
    if (run_ != nullptr) run_->charge(bytes_);
  }
  ~ScopedCharge() {
    if (run_ != nullptr) run_->uncharge(bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

 private:
  RunControl* run_;
  std::size_t bytes_;
};

}  // namespace rsketch
