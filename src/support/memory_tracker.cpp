#include "support/memory_tracker.hpp"

#include <algorithm>

namespace rsketch {

void MemoryTracker::add(const std::string& label, std::size_t bytes) {
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  items_.emplace_back(label, bytes);
  live_.push_back(true);
}

void MemoryTracker::release(std::size_t bytes) {
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

void MemoryTracker::release(const std::string& label) {
  for (std::size_t i = live_.size(); i-- > 0;) {
    if (live_[i] && items_[i].first == label) {
      live_[i] = false;
      release(items_[i].second);
      return;
    }
  }
}

void MemoryTracker::clear() {
  current_ = 0;
  peak_ = 0;
  items_.clear();
  live_.clear();
}

}  // namespace rsketch
