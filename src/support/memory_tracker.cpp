#include "support/memory_tracker.hpp"

#include <algorithm>

namespace rsketch {

void MemoryTracker::add(const std::string& label, std::size_t bytes) {
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  items_.emplace_back(label, bytes);
}

void MemoryTracker::release(std::size_t bytes) {
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

void MemoryTracker::clear() {
  current_ = 0;
  peak_ = 0;
  items_.clear();
}

}  // namespace rsketch
