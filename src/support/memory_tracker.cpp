#include "support/memory_tracker.hpp"

#include <algorithm>

#include "support/run_control.hpp"

namespace rsketch {

MemoryTracker::~MemoryTracker() {
  if (run_ != nullptr) run_->uncharge(current_);
}

void MemoryTracker::add(const std::string& label, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  // Charge the attached budget before the tracker commits: on exhaustion
  // this throws and the tracker state is untouched.
  if (run_ != nullptr) run_->charge(bytes);
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  items_.emplace_back(label, bytes);
  live_.push_back(true);
  live_by_label_[label].push_back(items_.size() - 1);
}

void MemoryTracker::release(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  release_locked(bytes);
}

void MemoryTracker::release_locked(std::size_t bytes) {
  if (run_ != nullptr) run_->uncharge(bytes);
  current_ = bytes > current_ ? 0 : current_ - bytes;
}

void MemoryTracker::release(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_by_label_.find(label);
  if (it == live_by_label_.end() || it->second.empty()) return;
  const std::size_t i = it->second.back();
  it->second.pop_back();
  live_[i] = false;
  release_locked(items_[i].second);
}

void MemoryTracker::attach(RunControl* run) {
  std::lock_guard<std::mutex> lock(mu_);
  run_ = run;
}

std::size_t MemoryTracker::current_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::size_t MemoryTracker::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

void MemoryTracker::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = 0;
  peak_ = 0;
  items_.clear();
  live_.clear();
  live_by_label_.clear();
}

}  // namespace rsketch
