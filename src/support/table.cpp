#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "support/common.hpp"

namespace rsketch {

namespace {
constexpr const char* kSeparatorSentinel = "\x01--";

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  return digits * 2 >= s.size();
}
}  // namespace

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  require(header_.empty() || row.size() == header_.size(),
          "Table::add_row: cell count does not match header");
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.push_back({kSeparatorSentinel}); }

std::size_t Table::row_count() const {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (!(r.size() == 1 && r[0] == kSeparatorSentinel)) ++n;
  }
  return n;
}

std::string Table::render() const {
  // Determine column count and widths.
  std::size_t ncol = header_.size();
  for (const auto& r : rows_) {
    if (r.size() == 1 && r[0] == kSeparatorSentinel) continue;
    ncol = std::max(ncol, r.size());
  }
  std::vector<std::size_t> width(ncol, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) {
    if (r.size() == 1 && r[0] == kSeparatorSentinel) continue;
    widen(r);
  }

  std::size_t total = ncol > 0 ? (ncol - 1) * 3 : 0;
  for (std::size_t w : width) total += w;

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  std::string rule(total, '-');
  auto emit_row = [&](const std::vector<std::string>& r, bool force_left) {
    for (std::size_t c = 0; c < ncol; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      const bool right = !force_left && c > 0 && looks_numeric(cell);
      if (c > 0) out << " | ";
      if (right) {
        out << std::string(width[c] - cell.size(), ' ') << cell;
      } else {
        out << cell << std::string(width[c] - cell.size(), ' ');
      }
    }
    out << "\n";
  };

  out << rule << "\n";
  if (!header_.empty()) {
    emit_row(header_, /*force_left=*/true);
    out << rule << "\n";
  }
  for (const auto& r : rows_) {
    if (r.size() == 1 && r[0] == kSeparatorSentinel) {
      out << rule << "\n";
    } else {
      emit_row(r, /*force_left=*/false);
    }
  }
  out << rule << "\n";
  if (!footnote_.empty()) out << footnote_ << "\n";
  return out.str();
}

std::string fmt_time(double seconds) {
  char buf[64];
  if (seconds >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.1f", seconds);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f", seconds);
  }
  return buf;
}

std::string fmt_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2e", v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

}  // namespace rsketch
