// Wall-clock timing utilities used by the benchmark harness and the
// sample-time instrumentation inside the sketching kernels.
#pragma once

#include <chrono>
#include <cstdint>

namespace rsketch {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer: total of explicitly bracketed intervals. Used to
/// separate "sample time" (RNG) from total SpMM time as in paper Tables
/// III/V without timing each inner call individually.
class AccumTimer {
 public:
  /// Begin an interval. Calling start() while already running is a no-op:
  /// the original interval keeps accumulating (a second start() used to
  /// silently drop everything since the first one).
  void start() {
    if (running_) return;
    t_.reset();
    running_ = true;
  }
  void stop() {
    if (running_) {
      total_ += t_.seconds();
      running_ = false;
    }
  }
  void clear() { total_ = 0.0; running_ = false; }
  bool running() const { return running_; }
  double seconds() const { return total_; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII bracket for an AccumTimer interval: starts on construction, stops on
/// destruction. The perf spans use this to guarantee balanced start/stop
/// around early returns and exceptions.
class ScopedAccum {
 public:
  explicit ScopedAccum(AccumTimer& t) : t_(t) { t_.start(); }
  ~ScopedAccum() { t_.stop(); }
  ScopedAccum(const ScopedAccum&) = delete;
  ScopedAccum& operator=(const ScopedAccum&) = delete;

 private:
  AccumTimer& t_;
};

}  // namespace rsketch
