// Plain-text table formatter that renders benchmark results in the style of
// the paper's tables (aligned columns, optional title and footnote).
#pragma once

#include <string>
#include <vector>

namespace rsketch {

/// Column alignment for Table cells.
enum class Align { Left, Right };

/// Accumulates rows of string cells and renders an aligned ASCII table.
///
/// Usage:
///   Table t("TABLE II: timing comparison");
///   t.set_header({"Matrix", "MKL-style", "Alg3 (-1,1)"});
///   t.add_row({"mk-12", fmt_time(a), fmt_time(b)});
///   std::cout << t.render();
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Horizontal separator line between row groups.
  void add_separator();
  void set_footnote(std::string note) { footnote_ = std::move(note); }

  /// Number of data rows added so far (separators excluded).
  std::size_t row_count() const;

  /// Render the table to a string, aligning numeric-looking cells right.
  std::string render() const;

 private:
  std::string title_;
  std::string footnote_;
  std::vector<std::string> header_;
  // A row with the single sentinel cell "\x01--" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with 4 significant digits (paper style, e.g. "0.0501").
std::string fmt_time(double seconds);
/// Format a double in fixed notation with `prec` digits.
std::string fmt_fixed(double v, int prec);
/// Format a double in scientific notation with 2 digits (e.g. "2.02e-03").
std::string fmt_sci(double v);
/// Format an integer with no grouping.
std::string fmt_int(long long v);

}  // namespace rsketch
