// Minimal command-line flag parser for the example executables and bench
// binaries (`--key=value` / `--key value` / boolean `--flag`).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rsketch {

/// Parses `--key=value`, `--key value`, and bare `--flag` arguments.
/// Positional arguments are collected in order.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace rsketch
