#include "support/cli.hpp"

#include <cstdlib>

namespace rsketch {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    // insert_or_assign with pre-built strings keeps basic_string::assign
    // (char*) out of the inline path; GCC 12 falsely flags that path with
    // -Wrestrict under -O2 (PR105329), which -Werror would make fatal.
    const std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      kv_.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_.insert_or_assign(body, std::string(argv[++i]));
    } else {
      kv_.insert_or_assign(body, std::string("1"));  // bare boolean flag
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

long long CliArgs::get_int(const std::string& key, long long fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

}  // namespace rsketch
