// Persistent worker-pool executor and a recycling workspace arena — the
// serving-layer substrate under sketch/batch.hpp.
//
// Executor keeps a fixed thread team alive for its whole lifetime (no thread
// spawn per job): each worker owns a deque, submits land round-robin, and an
// idle worker steals from the BACK of a victim's deque (the owner pops the
// front) so stolen work is the coldest queued task and owner/thief rarely
// contend on the same end. Workers park on a condition variable when every
// queue is empty — after flushing their trace ring (perf/trace.hpp
// retire_current_thread) so a drained pool leaves nothing buffered — and a
// single notify wakes one for new work. Destruction drains: every task
// already submitted runs before the threads join (cancellation is the job's
// concern — sketch jobs poll their RunControl and fail fast when their batch
// was cancelled).
//
// WorkspaceArena recycles the kernels' scratch blocks across jobs. It
// implements the ArenaHook AlignedBuffer hook (support/arena.hpp): acquire
// serves the smallest cached slab that fits or grows by one fresh slab —
// charged against the attached RunControl budget, so an arena under a batch
// budget creates back-pressure the per-job degradation ladder can see
// through parent chaining — and release caches the slab for the next job
// instead of freeing. Slabs stay charged while cached (that IS the reuse);
// trim() or destruction returns the bytes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/arena.hpp"
#include "support/run_control.hpp"

namespace rsketch {

/// Fixed-size worker pool with per-worker deques and work stealing.
/// Thread-safe: any thread (including a worker, for nested submission) may
/// submit concurrently. Tasks must not throw — wrap fallible work in its own
/// try/catch (SketchBatch stores the exception on the job).
class Executor {
 public:
  using Task = std::function<void()>;

  /// Spawn `workers` threads (0 = omp_get_max_threads()).
  explicit Executor(int workers = 0);

  /// Drains every submitted task, then joins the team.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue on the next worker round-robin.
  void submit(Task task);

  /// Enqueue on a specific worker's queue (tests use this to force a skewed
  /// placement and observe stealing).
  void submit_to(int worker, Task task);

  /// Block until every submitted task has finished (queues empty AND no
  /// worker mid-task).
  void wait_idle();

  int workers() const { return static_cast<int>(queues_.size()); }

  /// Tasks currently queued (not yet picked up).
  std::size_t queue_depth() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Tasks taken from another worker's queue, pool lifetime total.
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Tasks completed, pool lifetime total.
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void worker_loop(int self);
  bool try_pop(int self, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;  ///< guards stop_ and the park/idle handshakes
  std::condition_variable cv_;       ///< workers park here
  std::condition_variable idle_cv_;  ///< wait_idle() parks here
  bool stop_ = false;

  std::atomic<std::size_t> pending_{0};  ///< queued, not yet popped
  std::atomic<int> active_{0};           ///< workers not parked
  std::atomic<std::uint64_t> rr_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> executed_{0};
};

/// Slab-recycling allocator behind the AlignedBuffer arena hook. Blocks are
/// 64-byte-aligned whole slabs (no sub-allocation): the sketch kernels make
/// a handful of identically-sized scratch allocations per job, so exact-size
/// reuse hits almost always and fragmentation is structurally impossible.
/// Thread-safe; release may come from any thread.
class WorkspaceArena : public ArenaHook {
 public:
  /// `budget` (optional) is charged for every byte of slab the arena grows
  /// by and uncharged on trim/destruction; cached slabs stay charged.
  explicit WorkspaceArena(RunControl* budget = nullptr) : budget_(budget) {}

  /// Frees every cached slab. Outstanding (un-released) blocks are a caller
  /// bug; they are leaked deliberately rather than freed under the caller.
  ~WorkspaceArena() override;

  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  void* arena_acquire(std::size_t bytes) override;
  void arena_release(void* p) noexcept override;

  /// Free every cached (idle) slab and uncharge its bytes.
  void trim() noexcept;

  /// Acquisitions served from the cache without allocating.
  std::uint64_t reuse_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Fresh slab allocations (cache misses).
  std::uint64_t slab_allocs() const {
    return allocs_.load(std::memory_order_relaxed);
  }
  /// Total bytes across all slabs, cached and outstanding.
  std::size_t held_bytes() const {
    return held_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::multimap<std::size_t, void*> free_;   ///< cached slabs by size
  std::map<void*, std::size_t> out_;         ///< outstanding block -> size
  RunControl* budget_ = nullptr;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::size_t> held_{0};
};

}  // namespace rsketch
