// Cache-line / SIMD aligned heap buffer with RAII ownership.
//
// The sketching kernels stream through dense panels with vectorized axpy
// loops; 64-byte alignment lets the compiler emit aligned AVX-512 loads and
// keeps panels cache-line aligned so threads never false-share panel edges.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <utility>

#include "support/arena.hpp"
#include "support/common.hpp"
#include "support/run_control.hpp"

namespace rsketch {

inline constexpr std::size_t kCacheLineBytes = 64;

namespace detail {

/// Allocation-failure countdown for the fault-injection harness
/// (testdata/faults.hpp arms it): when armed with k ≥ 1, the k-th subsequent
/// AlignedBuffer allocation throws std::bad_alloc and the hook disarms
/// itself. Negative = disarmed (the normal state); the hot-path cost is one
/// relaxed atomic load.
inline std::atomic<long> alloc_fail_countdown{-1};

inline void maybe_fail_allocation() {
  if (alloc_fail_countdown.load(std::memory_order_relaxed) < 0) return;
  if (alloc_fail_countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
    alloc_fail_countdown.store(-1, std::memory_order_relaxed);  // disarm
    throw std::bad_alloc();
  }
}

}  // namespace detail

/// Owning, 64-byte-aligned, non-copyable buffer of trivially-copyable T.
/// Unlike std::vector it never default-constructs elements on resize-free
/// paths and guarantees alignment suitable for AVX-512.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(index_t n) { allocate(n); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        charged_to_(std::exchange(other.charged_to_, nullptr)),
        charged_bytes_(std::exchange(other.charged_bytes_, 0)),
        arena_(std::exchange(other.arena_, nullptr)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      charged_to_ = std::exchange(other.charged_to_, nullptr);
      charged_bytes_ = std::exchange(other.charged_bytes_, 0);
      arena_ = std::exchange(other.arena_, nullptr);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocate to hold `n` elements; contents are NOT preserved.
  void reset(index_t n) {
    release();
    allocate(n);
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  index_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](index_t i) noexcept { return data_[i]; }
  const T& operator[](index_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  void allocate(index_t n) {
    require(n >= 0, "AlignedBuffer: negative size");
    if (n == 0) {
      data_ = nullptr;
      size_ = 0;
      return;
    }
    // Refuse element counts whose byte size (including the alignment
    // round-up) would wrap around std::size_t — a wrapped `bytes` makes
    // aligned_alloc hand back a tiny buffer that every later write overruns.
    constexpr std::size_t kMaxBytes =
        std::numeric_limits<std::size_t>::max() - (kCacheLineBytes - 1);
    if (static_cast<std::size_t>(n) > kMaxBytes / sizeof(T)) {
      throw invalid_argument_error("AlignedBuffer: size overflows size_t");
    }
    detail::maybe_fail_allocation();
    // Round the byte count up to a multiple of the alignment as required by
    // std::aligned_alloc.
    std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);
    bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    // Arena path: when this thread is inside a ScopedArenaScope, the arena
    // serves (and on slab growth budget-charges) the block itself — no
    // double charge against the thread's budget scope.
    if (ArenaHook* const arena = detail::arena_scope; arena != nullptr) {
      data_ = static_cast<T*>(arena->arena_acquire(bytes));
      size_ = n;
      arena_ = arena;
      return;
    }
    // Charge-before-allocate against the thread's budget scope (if any):
    // the charge throws run_stopped_error(BudgetExceeded) before any memory
    // is requested, so a bounded run never overshoots its budget and then
    // apologizes. One thread-local load when no scope is installed.
    RunControl* const budget = detail::budget_scope;
    if (budget != nullptr) budget->charge(bytes);
    T* p = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (p == nullptr) {
      if (budget != nullptr) budget->uncharge(bytes);
      throw std::bad_alloc();
    }
    // Commit members only after the allocation succeeded, so a throw leaves
    // the buffer in its released (empty) state rather than size_ > 0 with a
    // null data_.
    data_ = p;
    size_ = n;
    charged_to_ = budget;
    charged_bytes_ = budget != nullptr ? bytes : 0;
  }

  void release() noexcept {
    if (arena_ != nullptr) {
      if (data_ != nullptr) arena_->arena_release(data_);
    } else {
      std::free(data_);
    }
    if (charged_to_ != nullptr) charged_to_->uncharge(charged_bytes_);
    data_ = nullptr;
    size_ = 0;
    charged_to_ = nullptr;
    charged_bytes_ = 0;
    arena_ = nullptr;
  }

  T* data_ = nullptr;
  index_t size_ = 0;
  /// Budget control this buffer's bytes are charged to (nullptr = none);
  /// release() returns the charge, moves transfer it.
  RunControl* charged_to_ = nullptr;
  std::size_t charged_bytes_ = 0;
  /// Arena that served data_ (nullptr = plain heap); release() returns the
  /// block there instead of freeing, moves transfer it. The arena must
  /// outlive the buffer — guaranteed because ScopedArenaScope is confined to
  /// the kernel-dispatch region and outputs are allocated outside it.
  ArenaHook* arena_ = nullptr;
};

}  // namespace rsketch
