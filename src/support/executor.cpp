#include "support/executor.hpp"

#include <cstdlib>
#include <new>
#include <string>
#include <utility>

#include "perf/perf.hpp"
#include "perf/trace.hpp"
#include "support/aligned_buffer.hpp"
#include "support/common.hpp"
#include "support/parallel.hpp"

namespace rsketch {

// ---- Executor --------------------------------------------------------------

Executor::Executor(int workers) {
  const int n = workers > 0 ? workers : max_threads();
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Executor::submit(Task task) {
  const auto w = static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                  queues_.size());
  submit_to(w, std::move(task));
}

void Executor::submit_to(int worker, Task task) {
  require(worker >= 0 && worker < workers(),
          "Executor::submit_to: worker index out of range");
  require(static_cast<bool>(task), "Executor::submit_to: empty task");
  {
    std::lock_guard<std::mutex> lock(queues_[static_cast<std::size_t>(worker)]->mu);
    queues_[static_cast<std::size_t>(worker)]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  // Notify under mu_: a worker that just evaluated its park predicate (under
  // mu_) either saw the new pending_ or is already blocked in wait() — so
  // the wakeup can never fall into the evaluate-then-block window.
  {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_one();
  }
}

bool Executor::try_pop(int self, Task& out) {
  {
    WorkerQueue& q = *queues_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  const int n = workers();
  for (int hop = 1; hop < n; ++hop) {
    WorkerQueue& q = *queues_[static_cast<std::size_t>((self + hop) % n)];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      perf::add(perf::Counter::BatchSteals, 1);
      return true;
    }
  }
  return false;
}

void Executor::worker_loop(int self) {
  // Named lazily so a pool created before tracing is armed still labels its
  // workers on the first wake that records anything.
  thread_local bool named = false;
  for (;;) {
    // active_ covers the whole pop-and-run window: wait_idle() must not see
    // pending_ == 0 while a task is between its queue and its execution.
    active_.fetch_add(1, std::memory_order_relaxed);
    if (!named && perf::trace::armed()) {
      named = true;
      perf::trace::set_thread_name("pool-worker-" + std::to_string(self));
    }
    Task task;
    while (try_pop(self, task)) {
      task();
      executed_.fetch_add(1, std::memory_order_relaxed);
      task = nullptr;  // drop captured state before the next pop
    }
    std::unique_lock<std::mutex> lock(mu_);
    active_.fetch_sub(1, std::memory_order_relaxed);
    if (pending_.load(std::memory_order_relaxed) == 0 &&
        active_.load(std::memory_order_relaxed) == 0) {
      idle_cv_.notify_all();
    }
    if (pending_.load(std::memory_order_relaxed) == 0) {
      if (stop_) return;
      // Flush this worker's trace ring before sleeping: a drained pool then
      // holds no events hostage, and the export never races a parked ring.
      perf::trace::retire_current_thread();
      cv_.wait(lock, [this] {
        return stop_ || pending_.load(std::memory_order_relaxed) > 0;
      });
      if (stop_ && pending_.load(std::memory_order_relaxed) == 0) return;
    }
  }
}

void Executor::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_relaxed) == 0 &&
           active_.load(std::memory_order_relaxed) == 0;
  });
}

// ---- WorkspaceArena --------------------------------------------------------

WorkspaceArena::~WorkspaceArena() { trim(); }

void* WorkspaceArena::arena_acquire(std::size_t bytes) {
  if (bytes == 0) bytes = kCacheLineBytes;
  bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Smallest cached slab that fits. Job scratch sizes repeat across a
    // batch, so this is almost always an exact-size hit.
    const auto it = free_.lower_bound(bytes);
    if (it != free_.end()) {
      void* p = it->second;
      out_.emplace(p, it->first);
      free_.erase(it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  // Grow by one slab, charge-before-allocate against the batch budget (a
  // refused charge throws run_stopped_error(BudgetExceeded) out through the
  // job, exactly like a direct AlignedBuffer charge would). The
  // alloc-failure fault hook is NOT re-run here: AlignedBuffer::allocate
  // already consumed one countdown tick before entering the arena.
  if (budget_ != nullptr) budget_->charge(bytes);
  void* p = std::aligned_alloc(kCacheLineBytes, bytes);
  if (p == nullptr) {
    if (budget_ != nullptr) budget_->uncharge(bytes);
    throw std::bad_alloc();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    out_.emplace(p, bytes);
  }
  held_.fetch_add(bytes, std::memory_order_relaxed);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void WorkspaceArena::arena_release(void* p) noexcept {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = out_.find(p);
  if (it == out_.end()) return;  // not ours — ignore rather than corrupt
  // Cache under the slab's TRUE size (the ledger's, not the requester's):
  // a later smaller request may reuse it, and trim/uncharge stay exact.
  free_.emplace(it->second, p);
  out_.erase(it);
}

void WorkspaceArena::trim() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [bytes, p] : free_) {
    std::free(p);
    if (budget_ != nullptr) budget_->uncharge(bytes);
    held_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  free_.clear();
}

}  // namespace rsketch
