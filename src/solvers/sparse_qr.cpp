#include "solvers/sparse_qr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sparse/convert.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// A sparse row: sorted (column, value) pairs, first entry on the diagonal.
template <typename T>
using SparseRow = std::vector<std::pair<index_t, T>>;

/// out := c·x + s·y over the union pattern of two sorted sparse rows,
/// dropping exact zeros. `skip_first_of_y` drops y's leading entry from the
/// combination where the rotation annihilates it by construction.
template <typename T>
void rotate_merge(const SparseRow<T>& x, const SparseRow<T>& y, double c,
                  double s, SparseRow<T>& out) {
  out.clear();
  out.reserve(x.size() + y.size());
  std::size_t i = 0, j = 0;
  while (i < x.size() || j < y.size()) {
    index_t cx = i < x.size() ? x[i].first : static_cast<index_t>(-1);
    index_t cy = j < y.size() ? y[j].first : static_cast<index_t>(-1);
    double v;
    index_t col;
    if (j >= y.size() || (i < x.size() && cx < cy)) {
      col = cx;
      v = c * static_cast<double>(x[i].second);
      ++i;
    } else if (i >= x.size() || cy < cx) {
      col = cy;
      v = s * static_cast<double>(y[j].second);
      ++j;
    } else {
      col = cx;
      v = c * static_cast<double>(x[i].second) +
          s * static_cast<double>(y[j].second);
      ++i;
      ++j;
    }
    if (v != 0.0) out.emplace_back(col, static_cast<T>(v));
  }
}

}  // namespace

template <typename T>
SparseQrResult<T> sparse_qr_least_squares(const CscMatrix<T>& a, const T* b,
                                          bool reorder_columns) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  require(m >= n, "sparse_qr_least_squares: matrix must be tall");

  // Fill-reducing column permutation: ascending column degree (COLAMD
  // stand-in). perm[k] = original column placed at position k.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  if (reorder_columns) {
    std::stable_sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
      return a.col_nnz(x) < a.col_nnz(y);
    });
  }
  std::vector<index_t> inv_perm(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    inv_perm[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] = k;
  }

  SparseQrResult<T> out;
  Timer timer;

  // Column equilibration: factor A·D with unit column norms so the rank
  // tolerance below is meaningful for badly scaled inputs, then unscale.
  std::vector<double> col_scale(static_cast<std::size_t>(n), 1.0);
  for (index_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(j)];
         p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      const double v = static_cast<double>(a.values()[static_cast<std::size_t>(p)]);
      s += v * v;
    }
    if (s > 0.0) col_scale[static_cast<std::size_t>(j)] = 1.0 / std::sqrt(s);
  }

  // Row stream of the permuted matrix.
  const CsrMatrix<T> rows = csc_to_csr(a);

  std::vector<SparseRow<T>> r(static_cast<std::size_t>(n));
  std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
  SparseRow<T> work, rot_r, rot_w;
  for (index_t i = 0; i < m; ++i) {
    const index_t lo = rows.row_ptr()[static_cast<std::size_t>(i)];
    const index_t hi = rows.row_ptr()[static_cast<std::size_t>(i) + 1];
    if (lo == hi) continue;
    work.clear();
    for (index_t p = lo; p < hi; ++p) {
      const index_t col = rows.col_idx()[static_cast<std::size_t>(p)];
      work.emplace_back(
          inv_perm[static_cast<std::size_t>(col)],
          static_cast<T>(static_cast<double>(
                             rows.values()[static_cast<std::size_t>(p)]) *
                         col_scale[static_cast<std::size_t>(col)]));
    }
    std::sort(work.begin(), work.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    double wrhs = static_cast<double>(b[i]);

    // Rotate the working row into R until it is absorbed or exhausted.
    while (!work.empty()) {
      const index_t j = work.front().first;
      SparseRow<T>& rj = r[static_cast<std::size_t>(j)];
      if (rj.empty()) {
        rj = work;
        rhs[static_cast<std::size_t>(j)] = wrhs;
        break;
      }
      const double rjj = static_cast<double>(rj.front().second);
      const double wj = static_cast<double>(work.front().second);
      const double rad = std::hypot(rjj, wj);
      const double c = rjj / rad;
      const double s = wj / rad;
      // R[j] := c·R[j] + s·w ; w := -s·R[j] + c·w (leading entry of the new
      // w vanishes by construction; drop it explicitly for robustness).
      ++out.q_rotations;
      rotate_merge(rj, work, c, s, rot_r);
      rotate_merge(rj, work, -s, c, rot_w);
      if (!rot_w.empty() && rot_w.front().first == j) {
        rot_w.erase(rot_w.begin());
      }
      rj = rot_r;
      work.swap(rot_w);
      const double old_rhs = rhs[static_cast<std::size_t>(j)];
      rhs[static_cast<std::size_t>(j)] = c * old_rhs + s * wrhs;
      wrhs = -s * old_rhs + c * wrhs;
    }
  }
  out.factor_seconds = timer.seconds();

  // Back substitution: R x' = rhs in permuted coordinates, with numerical
  // rank detection (SPQR-style): columns whose pivot falls below a relative
  // tolerance are treated as dependent and receive x_j = 0, which keeps the
  // basic solution's residual near-optimal on near-rank-deficient inputs.
  timer.reset();
  double max_diag = 0.0;
  for (index_t j = 0; j < n; ++j) {
    const SparseRow<T>& rj = r[static_cast<std::size_t>(j)];
    if (!rj.empty() && rj.front().first == j) {
      max_diag = std::max(max_diag,
                          std::fabs(static_cast<double>(rj.front().second)));
    }
  }
  const double pivot_tol = 1e-12 * max_diag;
  // Numerical rank detection (SPQR-style): pivots below the relative
  // tolerance mark dependent columns, which receive x_j = 0 (basic
  // solution); the seminormal refinement below then polishes the kept part.
  std::vector<double> xp(static_cast<std::size_t>(n), 0.0);
  for (index_t j = n - 1; j >= 0; --j) {
    const SparseRow<T>& rj = r[static_cast<std::size_t>(j)];
    if (rj.empty() || rj.front().first != j ||
        std::fabs(static_cast<double>(rj.front().second)) <= pivot_tol) {
      xp[static_cast<std::size_t>(j)] = 0.0;  // (numerically) dependent column
      continue;
    }
    ++out.rank;
    double s = rhs[static_cast<std::size_t>(j)];
    for (std::size_t p = 1; p < rj.size(); ++p) {
      s -= static_cast<double>(rj[p].second) *
           xp[static_cast<std::size_t>(rj[p].first)];
    }
    xp[static_cast<std::size_t>(j)] = s / static_cast<double>(rj.front().second);
  }
  out.solve_seconds = timer.seconds();

  // Corrected seminormal refinement (Björck): a couple of
  // RᵀR·dx = (AD)ᵀ(b − (AD)x) sweeps recover the accuracy a plain basic
  // solution loses on numerically rank-deficient inputs.
  {
    std::vector<double> resid(static_cast<std::size_t>(m));
    std::vector<double> g(static_cast<std::size_t>(n));
    std::vector<double> z(static_cast<std::size_t>(n));
    for (int sweep = 0; sweep < 2; ++sweep) {
      // resid = b − (AD)·xp  (scaled operator, permuted coords in xp).
      for (index_t i = 0; i < m; ++i) {
        resid[static_cast<std::size_t>(i)] = static_cast<double>(b[i]);
      }
      for (index_t k = 0; k < n; ++k) {
        const index_t orig = perm[static_cast<std::size_t>(k)];
        const double xk = xp[static_cast<std::size_t>(k)] *
                          col_scale[static_cast<std::size_t>(orig)];
        if (xk == 0.0) continue;
        for (index_t p = a.col_ptr()[static_cast<std::size_t>(orig)];
             p < a.col_ptr()[static_cast<std::size_t>(orig) + 1]; ++p) {
          resid[static_cast<std::size_t>(a.row_idx()[static_cast<std::size_t>(p)])] -=
              static_cast<double>(a.values()[static_cast<std::size_t>(p)]) * xk;
        }
      }
      // g = (AD)ᵀ resid in permuted coords.
      for (index_t k = 0; k < n; ++k) {
        const index_t orig = perm[static_cast<std::size_t>(k)];
        double s = 0.0;
        for (index_t p = a.col_ptr()[static_cast<std::size_t>(orig)];
             p < a.col_ptr()[static_cast<std::size_t>(orig) + 1]; ++p) {
          s += static_cast<double>(a.values()[static_cast<std::size_t>(p)]) *
               resid[static_cast<std::size_t>(a.row_idx()[static_cast<std::size_t>(p)])];
        }
        g[static_cast<std::size_t>(k)] =
            s * col_scale[static_cast<std::size_t>(orig)];
      }
      // Forward substitution Rᵀ z = g using row scatter, then back
      // substitution R dx = z; deficient coordinates stay zero.
      for (index_t j = 0; j < n; ++j) {
        const SparseRow<T>& rj = r[static_cast<std::size_t>(j)];
        if (rj.empty() || rj.front().first != j) {
          z[static_cast<std::size_t>(j)] = 0.0;
          continue;
        }
        if (std::fabs(static_cast<double>(rj.front().second)) <= pivot_tol) {
          z[static_cast<std::size_t>(j)] = 0.0;
          continue;
        }
        const double zj = g[static_cast<std::size_t>(j)] /
                          static_cast<double>(rj.front().second);
        z[static_cast<std::size_t>(j)] = zj;
        for (std::size_t p = 1; p < rj.size(); ++p) {
          g[static_cast<std::size_t>(rj[p].first)] -=
              static_cast<double>(rj[p].second) * zj;
        }
      }
      for (index_t j = n - 1; j >= 0; --j) {
        const SparseRow<T>& rj = r[static_cast<std::size_t>(j)];
        if (rj.empty() || rj.front().first != j ||
            std::fabs(static_cast<double>(rj.front().second)) <= pivot_tol) {
          continue;
        }
        double s = z[static_cast<std::size_t>(j)];
        for (std::size_t p = 1; p < rj.size(); ++p) {
          s -= static_cast<double>(rj[p].second) *
               z[static_cast<std::size_t>(rj[p].first)];
        }
        const double dx = s / static_cast<double>(rj.front().second);
        z[static_cast<std::size_t>(j)] = dx;
        xp[static_cast<std::size_t>(j)] += dx;
      }
    }
  }

  out.x.resize(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    const index_t orig = perm[static_cast<std::size_t>(k)];
    out.x[static_cast<std::size_t>(orig)] =
        static_cast<T>(xp[static_cast<std::size_t>(k)] *
                       col_scale[static_cast<std::size_t>(orig)]);
  }
  for (const auto& row : r) out.r_nnz += static_cast<index_t>(row.size());
  out.r_bytes = static_cast<std::size_t>(out.r_nnz) *
                    (sizeof(index_t) + sizeof(T)) +
                static_cast<std::size_t>(n) * sizeof(double);
  // One retained (c, s, row, row) record per rotation — what a stored-Q
  // direct factorization (SuiteSparseQR via backslash) keeps around.
  out.q_bytes = static_cast<std::size_t>(out.q_rotations) *
                (2 * sizeof(T) + 2 * sizeof(index_t));
  return out;
}

template struct SparseQrResult<float>;
template struct SparseQrResult<double>;
template SparseQrResult<float> sparse_qr_least_squares<float>(
    const CscMatrix<float>&, const float*, bool);
template SparseQrResult<double> sparse_qr_least_squares<double>(
    const CscMatrix<double>&, const double*, bool);

}  // namespace rsketch
