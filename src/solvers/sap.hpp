// Sketch-and-precondition (SAP) least-squares solver — the paper's §V-C
// pipeline: Â = S·A via the fast sketching kernels, a dense QR or SVD of Â
// to build a right preconditioner, then LSQR on the preconditioned system.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/config.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Which decomposition of Â supplies the preconditioner.
enum class SapFactor {
  QR,  ///< N = R⁻¹ — cheap; intended for numerically full-rank problems
  SVD  ///< N = V·Σ⁺ with σ < σ_max·sigma_drop discarded — for near-singular A
};

struct SapOptions {
  SapFactor factor = SapFactor::QR;
  double gamma = 2.0;            ///< sketch size d = ⌈γ·n⌉ (paper uses γ=2)
  std::uint64_t seed = 0xABCDEF;
  double lsqr_tol = 1e-14;
  index_t lsqr_max_iter = 0;     ///< 0 → LSQR default
  double sigma_drop = 1e-12;     ///< SVD truncation threshold (relative)
  /// Sketching engine settings (kernel/blocks/distribution/parallelism).
  Dist dist = Dist::Uniform;
  RngBackend backend = RngBackend::XoshiroBatch;
  KernelVariant kernel = KernelVariant::Kji;
  index_t block_d = 3000;
  index_t block_n = 500;
  ParallelOver parallel = ParallelOver::DBlocks;
};

template <typename T>
struct SapResult {
  std::vector<T> x;
  index_t iterations = 0;
  bool converged = false;
  index_t rank = 0;              ///< retained rank (SVD path; n for QR)
  double sketch_seconds = 0.0;   ///< time to form Â = S·A
  double factor_seconds = 0.0;   ///< QR / SVD time
  double lsqr_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t workspace_bytes = 0;  ///< Â + factor + iteration vectors
};

/// Solve min ‖Ax − b‖₂ by sketch-and-precondition. A must be tall (m ≥ n);
/// transpose underdetermined inputs first (as the paper does).
template <typename T>
SapResult<T> sap_solve(const CscMatrix<T>& a, const std::vector<T>& b,
                       const SapOptions& options);

extern template struct SapResult<float>;
extern template struct SapResult<double>;
extern template SapResult<float> sap_solve<float>(const CscMatrix<float>&,
                                                  const std::vector<float>&,
                                                  const SapOptions&);
extern template SapResult<double> sap_solve<double>(const CscMatrix<double>&,
                                                    const std::vector<double>&,
                                                    const SapOptions&);

}  // namespace rsketch
