// Sketch-and-precondition (SAP) least-squares solver — the paper's §V-C
// pipeline: Â = S·A via the fast sketching kernels, a dense QR or SVD of Â
// to build a right preconditioner, then LSQR on the preconditioned system.
//
// The pipeline stages (factor, preconditioned operator, solution recovery)
// are exposed individually so the guarded driver (solvers/guarded.hpp) can
// gate on preconditioner quality between stages and re-sketch on a bad draw.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "dense/dense_matrix.hpp"
#include "sketch/config.hpp"
#include "solvers/lsqr.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Which decomposition of Â supplies the preconditioner.
enum class SapFactor {
  QR,  ///< N = R⁻¹ — cheap; intended for numerically full-rank problems
  SVD  ///< N = V·Σ⁺ with σ < σ_max·sigma_drop discarded — for near-singular A
};

struct SapOptions {
  SapFactor factor = SapFactor::QR;
  double gamma = 2.0;            ///< sketch size d = ⌈γ·n⌉ (paper uses γ=2)
  std::uint64_t seed = 0xABCDEF;
  double lsqr_tol = 1e-14;
  index_t lsqr_max_iter = 0;     ///< 0 → LSQR default
  double sigma_drop = 1e-12;     ///< SVD truncation threshold (relative)
  /// Sketching engine settings (kernel/blocks/distribution/parallelism).
  Dist dist = Dist::Uniform;
  RngBackend backend = RngBackend::XoshiroBatch;
  KernelVariant kernel = KernelVariant::Kji;
  index_t block_d = 3000;
  index_t block_n = 500;
  ParallelOver parallel = ParallelOver::DBlocks;
};

template <typename T>
struct SapResult {
  std::vector<T> x;
  index_t iterations = 0;
  bool converged = false;
  index_t rank = 0;              ///< retained rank (SVD path; n for QR)
  double sketch_seconds = 0.0;   ///< time to form Â = S·A
  double factor_seconds = 0.0;   ///< QR / SVD time
  double lsqr_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t workspace_bytes = 0;  ///< Â + factor + iteration vectors
};

/// Solve min ‖Ax − b‖₂ by sketch-and-precondition. A must be tall (m ≥ n);
/// transpose underdetermined inputs first (as the paper does).
template <typename T>
SapResult<T> sap_solve(const CscMatrix<T>& a, const std::vector<T>& b,
                       const SapOptions& options);

/// Right preconditioner N built from the QR or SVD of the sketch Â, plus the
/// cheap quality estimate the guarded driver gates on.
template <typename T>
struct SapPreconditioner {
  SapFactor kind = SapFactor::QR;
  DenseMatrix<T> r;      ///< QR path: n×n upper triangular R (N = R⁻¹)
  DenseMatrix<T> n_mat;  ///< SVD path: n×rank, N = V·Σ⁺
  index_t n = 0;
  index_t rank = 0;      ///< retained rank (n on the QR path)
  /// Condition estimate of Â: max|r_ii|/min|r_ii| on the QR path (a cheap
  /// lower bound on cond₂) or σ_max/σ_min-retained on the SVD path. +inf
  /// when the factor diagonal is zero or non-finite.
  double cond_estimate = 0.0;
  /// Whether the LSQR stage can run against this factor at all.
  bool usable() const { return rank > 0 && std::isfinite(cond_estimate); }
};

/// Factor Â (consumed) into a right preconditioner. Unlike sap_solve, a
/// degenerate sketch does NOT throw here — it comes back with rank 0 or an
/// infinite cond_estimate so a guarded driver can re-sketch instead.
template <typename T>
SapPreconditioner<T> sap_build_preconditioner(DenseMatrix<T>&& a_hat,
                                              SapFactor kind,
                                              double sigma_drop);

/// The preconditioned operator A·N. `a`, `p`, and `scratch` (resized to
/// length n here) must all outlive the returned operator.
template <typename T>
LinearOperator<T> sap_preconditioned_operator(const CscMatrix<T>& a,
                                              const SapPreconditioner<T>& p,
                                              std::vector<T>& scratch);

/// x (length n) := N·y (y of length p.rank) — maps LSQR's solution back.
template <typename T>
void sap_recover_solution(const SapPreconditioner<T>& p, const T* y, T* x);

extern template struct SapResult<float>;
extern template struct SapResult<double>;
extern template struct SapPreconditioner<float>;
extern template struct SapPreconditioner<double>;
extern template SapPreconditioner<float> sap_build_preconditioner<float>(
    DenseMatrix<float>&&, SapFactor, double);
extern template SapPreconditioner<double> sap_build_preconditioner<double>(
    DenseMatrix<double>&&, SapFactor, double);
extern template LinearOperator<float> sap_preconditioned_operator<float>(
    const CscMatrix<float>&, const SapPreconditioner<float>&,
    std::vector<float>&);
extern template LinearOperator<double> sap_preconditioned_operator<double>(
    const CscMatrix<double>&, const SapPreconditioner<double>&,
    std::vector<double>&);
extern template void sap_recover_solution<float>(
    const SapPreconditioner<float>&, const float*, float*);
extern template void sap_recover_solution<double>(
    const SapPreconditioner<double>&, const double*, double*);
extern template SapResult<float> sap_solve<float>(const CscMatrix<float>&,
                                                  const std::vector<float>&,
                                                  const SapOptions&);
extern template SapResult<double> sap_solve<double>(const CscMatrix<double>&,
                                                    const std::vector<double>&,
                                                    const SapOptions&);

}  // namespace rsketch
