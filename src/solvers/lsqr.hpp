// LSQR (Paige & Saunders, TOMS 1982) on an abstract linear operator — the
// iterative core of both the SAP solver and the LSQR-D classical baseline.
// Right preconditioning is expressed by composing operators: LSQR solves
// min ‖(A·N)y - b‖ and the caller recovers x = N·y.
#pragma once

#include <functional>
#include <vector>

#include "support/common.hpp"

namespace rsketch {

class RunControl;

/// Matrix-free operator: y := Op·x and y := Opᵀ·x.
template <typename T>
struct LinearOperator {
  index_t rows = 0;
  index_t cols = 0;
  std::function<void(const T* x, T* y)> apply;          ///< y = Op x
  std::function<void(const T* x, T* y)> apply_adjoint;  ///< y = Opᵀ x
};

struct LsqrOptions {
  /// Stop when ‖Opᵀr‖ / (‖Op‖_F·‖r‖) ≤ tol (LSQR's internal estimate) —
  /// the paper runs to 1e-14 for fair comparison with a direct method.
  double tol = 1e-14;
  index_t max_iter = 0;  ///< 0 → 4·cols
  /// Polled once per iteration when non-null: a fired cancellation /
  /// deadline / budget throws run_stopped_error out of lsqr(), leaving no
  /// partial result behind (support/run_control.hpp). Not owned.
  const RunControl* control = nullptr;
};

template <typename T>
struct LsqrResult {
  std::vector<T> x;        ///< solution in the operator's column space
  index_t iterations = 0;
  bool converged = false;
  /// NaN/Inf appeared in the bidiagonalization scalars — the operator or b
  /// contains non-finite values, or the recurrence overflowed. x is the last
  /// iterate before the breakdown; converged is false. Detection is scalar
  /// checks only, so it costs nothing per iteration.
  bool breakdown = false;
  double arnorm_rel = 0.0;  ///< final ‖Opᵀr‖/(‖Op‖·‖r‖) estimate
  double rnorm = 0.0;       ///< final ‖r‖ estimate
};

/// Run LSQR on min ‖Op·x - b‖₂. b has length op.rows.
template <typename T>
LsqrResult<T> lsqr(const LinearOperator<T>& op, const T* b,
                   const LsqrOptions& options = {});

extern template struct LinearOperator<float>;
extern template struct LinearOperator<double>;
extern template LsqrResult<float> lsqr<float>(const LinearOperator<float>&,
                                              const float*,
                                              const LsqrOptions&);
extern template LsqrResult<double> lsqr<double>(const LinearOperator<double>&,
                                                const double*,
                                                const LsqrOptions&);

}  // namespace rsketch
