#include "solvers/least_squares.hpp"

#include <cmath>

#include "dense/blas1.hpp"
#include "dense/dense_matrix.hpp"
#include "rng/distributions.hpp"
#include "solvers/svd.hpp"
#include "sparse/ops.hpp"
#include "support/timer.hpp"

namespace rsketch {

template <typename T>
std::vector<T> make_least_squares_rhs(const CscMatrix<T>& a,
                                      std::uint64_t seed) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  SketchSampler<T> gauss(seed, Dist::Gaussian, RngBackend::Xoshiro);
  std::vector<T> w(static_cast<std::size_t>(n));
  gauss.fill(0, 0, w.data(), n);
  std::vector<T> b(static_cast<std::size_t>(m), T{0});
  spmv(a, w.data(), b.data());
  // Scale the range component to unit column scale so neither term dwarfs
  // the other, then add N(0, I) noise (the paper's construction).
  std::vector<T> noise(static_cast<std::size_t>(m));
  gauss.fill(0, 1, noise.data(), m);
  for (index_t i = 0; i < m; ++i) b[static_cast<std::size_t>(i)] += noise[static_cast<std::size_t>(i)];
  return b;
}

template <typename T>
double ls_error_metric(const CscMatrix<T>& a, const std::vector<T>& x,
                       const std::vector<T>& b) {
  require(static_cast<index_t>(x.size()) == a.cols() &&
              static_cast<index_t>(b.size()) == a.rows(),
          "ls_error_metric: dimension mismatch");
  std::vector<T> r(b);
  spmv(a, x.data(), r.data(), T{-1}, T{1});  // r = b - A x (sign irrelevant)
  const double rnorm = nrm2(a.rows(), r.data());
  if (rnorm == 0.0) return 0.0;
  std::vector<T> atr(static_cast<std::size_t>(a.cols()));
  spmv_transpose(a, r.data(), atr.data());
  const double atrnorm = nrm2(a.cols(), atr.data());
  const double afro = static_cast<double>(frobenius_norm(a));
  return afro > 0.0 ? atrnorm / (afro * rnorm) : 0.0;
}

template <typename T>
std::vector<T> diag_precond_scales(const CscMatrix<T>& a) {
  const std::vector<T> norms = column_norms(a);
  T max_norm{0};
  for (T v : norms) max_norm = std::max(max_norm, v);
  const double eps_cut =
      std::numeric_limits<T>::epsilon() *
      std::sqrt(static_cast<double>(a.cols())) * static_cast<double>(max_norm);
  std::vector<T> scales(norms.size());
  for (std::size_t j = 0; j < norms.size(); ++j) {
    scales[j] = static_cast<double>(norms[j]) <= eps_cut
                    ? T{1}
                    : static_cast<T>(1.0 / static_cast<double>(norms[j]));
  }
  return scales;
}

template <typename T>
IterativeSolveResult<T> lsqr_diag_precond(const CscMatrix<T>& a,
                                          const std::vector<T>& b,
                                          const LsqrOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows(),
          "lsqr_diag_precond: rhs length mismatch");
  const std::vector<T> scales = diag_precond_scales(a);
  const index_t n = a.cols();

  Timer timer;
  LinearOperator<T> op;
  op.rows = a.rows();
  op.cols = n;
  std::vector<T> scratch(static_cast<std::size_t>(n));
  op.apply = [&a, &scales, &scratch, n](const T* x, T* y) {
    for (index_t j = 0; j < n; ++j) {
      scratch[static_cast<std::size_t>(j)] =
          x[j] * scales[static_cast<std::size_t>(j)];
    }
    spmv(a, scratch.data(), y);
  };
  op.apply_adjoint = [&a, &scales, n](const T* x, T* y) {
    spmv_transpose(a, x, y);
    for (index_t j = 0; j < n; ++j) y[j] *= scales[static_cast<std::size_t>(j)];
  };

  LsqrResult<T> res = lsqr(op, b.data(), options);

  IterativeSolveResult<T> out;
  out.iterations = res.iterations;
  out.converged = res.converged;
  out.x.resize(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    out.x[static_cast<std::size_t>(j)] =
        res.x[static_cast<std::size_t>(j)] * scales[static_cast<std::size_t>(j)];
  }
  out.seconds = timer.seconds();
  return out;
}

template <typename T>
double cond_estimate(const CscMatrix<T>& a, const std::vector<T>& scales) {
  // Densify (small problems only) and take the Jacobi SVD extremes.
  DenseMatrix<T> dense(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    const T s = scales.empty() ? T{1} : scales[static_cast<std::size_t>(j)];
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(j)];
         p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      dense(a.row_idx()[static_cast<std::size_t>(p)], j) =
          a.values()[static_cast<std::size_t>(p)] * s;
    }
  }
  SvdResult<T> svd = jacobi_svd(std::move(dense));
  const double smax = static_cast<double>(svd.sigma.front());
  double smin = 0.0;
  for (auto it = svd.sigma.rbegin(); it != svd.sigma.rend(); ++it) {
    if (static_cast<double>(*it) > 0.0) {
      smin = static_cast<double>(*it);
      break;
    }
  }
  return smin > 0.0 ? smax / smin : std::numeric_limits<double>::infinity();
}

template <typename T>
LinearOperator<T> csc_operator(const CscMatrix<T>& a) {
  LinearOperator<T> op;
  op.rows = a.rows();
  op.cols = a.cols();
  const CscMatrix<T>* ap = &a;
  op.apply = [ap](const T* x, T* y) { spmv(*ap, x, y); };
  op.apply_adjoint = [ap](const T* x, T* y) { spmv_transpose(*ap, x, y); };
  return op;
}

#define RSKETCH_INSTANTIATE(T)                                              \
  template std::vector<T> make_least_squares_rhs<T>(const CscMatrix<T>&,    \
                                                    std::uint64_t);         \
  template double ls_error_metric<T>(const CscMatrix<T>&,                   \
                                     const std::vector<T>&,                 \
                                     const std::vector<T>&);                \
  template std::vector<T> diag_precond_scales<T>(const CscMatrix<T>&);      \
  template IterativeSolveResult<T> lsqr_diag_precond<T>(                    \
      const CscMatrix<T>&, const std::vector<T>&, const LsqrOptions&);      \
  template double cond_estimate<T>(const CscMatrix<T>&,                     \
                                   const std::vector<T>&);                  \
  template LinearOperator<T> csc_operator<T>(const CscMatrix<T>&);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
