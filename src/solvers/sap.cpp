#include "solvers/sap.hpp"

#include <cmath>

#include "dense/blas1.hpp"
#include "dense/dense_matrix.hpp"
#include "sketch/sketch.hpp"
#include "solvers/lsqr.hpp"
#include "solvers/qr.hpp"
#include "solvers/svd.hpp"
#include "solvers/triangular.hpp"
#include "sparse/ops.hpp"
#include "support/memory_tracker.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// y := M·x for a dense n×k matrix (column-major), x length k.
template <typename T>
void dense_matvec(const DenseMatrix<T>& m_mat, const T* x, T* y) {
  for (index_t i = 0; i < m_mat.rows(); ++i) y[i] = T{0};
  for (index_t j = 0; j < m_mat.cols(); ++j) {
    axpy(m_mat.rows(), x[j], m_mat.col(j), y);
  }
}

/// y := Mᵀ·x, x length n.
template <typename T>
void dense_matvec_t(const DenseMatrix<T>& m_mat, const T* x, T* y) {
  for (index_t j = 0; j < m_mat.cols(); ++j) {
    y[j] = dot(m_mat.rows(), m_mat.col(j), x);
  }
}

}  // namespace

template <typename T>
SapResult<T> sap_solve(const CscMatrix<T>& a, const std::vector<T>& b,
                       const SapOptions& options) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  require(m >= n, "sap_solve: A must be tall (m >= n); transpose first");
  require(static_cast<index_t>(b.size()) == m,
          "sap_solve: rhs length mismatch");
  require(options.gamma > 1.0, "sap_solve: gamma must exceed 1");

  SapResult<T> out;
  MemoryTracker mem;
  Timer total;

  // --- 1. Sketch: Â = S·A, d = ⌈γn⌉, normalized to an approximate isometry.
  SketchConfig cfg;
  cfg.d = static_cast<index_t>(std::ceil(options.gamma * static_cast<double>(n)));
  cfg.seed = options.seed;
  cfg.dist = options.dist;
  cfg.backend = options.backend;
  cfg.kernel = options.kernel;
  cfg.block_d = options.block_d;
  cfg.block_n = options.block_n;
  cfg.parallel = options.parallel;
  cfg.normalize = true;

  Timer phase;
  DenseMatrix<T> a_hat(cfg.d, n);
  sketch_into(cfg, a, a_hat);
  out.sketch_seconds = phase.seconds();
  mem.add("sketch A_hat", a_hat.memory_bytes());

  // --- 2. Factor Â into a right preconditioner N.
  phase.reset();
  DenseMatrix<T> r_mat;      // QR path: n×n upper triangular
  DenseMatrix<T> n_mat;      // SVD path: n×rank, N = V·Σ⁺
  index_t rank = n;
  if (options.factor == SapFactor::QR) {
    QrFactor<T> f = qr_factorize(std::move(a_hat));
    r_mat = extract_r(f);
    mem.add("R factor", r_mat.memory_bytes());
  } else {
    SvdResult<T> svd = jacobi_svd(std::move(a_hat));
    const double smax = static_cast<double>(svd.sigma.front());
    rank = 0;
    for (T s : svd.sigma) {
      if (static_cast<double>(s) > smax * options.sigma_drop) ++rank;
    }
    require(rank > 0, "sap_solve: sketch is numerically zero");
    n_mat.reset(n, rank);
    for (index_t j = 0; j < rank; ++j) {
      const T inv = static_cast<T>(
          1.0 / static_cast<double>(svd.sigma[static_cast<std::size_t>(j)]));
      const T* vj = svd.v.col(j);
      T* nj = n_mat.col(j);
      for (index_t i = 0; i < n; ++i) nj[i] = vj[i] * inv;
    }
    mem.add("V*Sigma^+ factor", n_mat.memory_bytes());
  }
  out.factor_seconds = phase.seconds();
  out.rank = rank;
  // Â's storage was consumed by the factorization (moved in, freed with the
  // factor object); the peak above already accounted for the overlap.
  mem.release("sketch A_hat");

  // --- 3. LSQR on the preconditioned operator A·N.
  phase.reset();
  LinearOperator<T> op;
  op.rows = m;
  op.cols = rank;
  std::vector<T> scratch_n(static_cast<std::size_t>(n));
  mem.add("LSQR workspace",
          static_cast<std::size_t>(2 * m + 4 * n) * sizeof(T));
  if (options.factor == SapFactor::QR) {
    op.apply = [&a, &r_mat, &scratch_n, n](const T* y, T* z) {
      for (index_t i = 0; i < n; ++i) scratch_n[static_cast<std::size_t>(i)] = y[i];
      solve_upper(r_mat, scratch_n.data());
      spmv(a, scratch_n.data(), z);
    };
    op.apply_adjoint = [&a, &r_mat, &scratch_n, n](const T* z, T* y) {
      spmv_transpose(a, z, scratch_n.data());
      solve_upper_transpose(r_mat, scratch_n.data());
      for (index_t i = 0; i < n; ++i) y[i] = scratch_n[static_cast<std::size_t>(i)];
    };
  } else {
    op.apply = [&a, &n_mat, &scratch_n](const T* y, T* z) {
      dense_matvec(n_mat, y, scratch_n.data());
      spmv(a, scratch_n.data(), z);
    };
    op.apply_adjoint = [&a, &n_mat, &scratch_n](const T* z, T* y) {
      spmv_transpose(a, z, scratch_n.data());
      dense_matvec_t(n_mat, scratch_n.data(), y);
    };
  }

  LsqrOptions lo;
  lo.tol = options.lsqr_tol;
  lo.max_iter = options.lsqr_max_iter;
  LsqrResult<T> res = lsqr(op, b.data(), lo);
  out.iterations = res.iterations;
  out.converged = res.converged;
  out.lsqr_seconds = phase.seconds();

  // --- 4. Recover x = N·y.
  out.x.assign(static_cast<std::size_t>(n), T{0});
  if (options.factor == SapFactor::QR) {
    for (index_t i = 0; i < n; ++i) {
      out.x[static_cast<std::size_t>(i)] = res.x[static_cast<std::size_t>(i)];
    }
    solve_upper(r_mat, out.x.data());
  } else {
    dense_matvec(n_mat, res.x.data(), out.x.data());
  }

  out.total_seconds = total.seconds();
  out.workspace_bytes = mem.peak_bytes();
  return out;
}

template struct SapResult<float>;
template struct SapResult<double>;
template SapResult<float> sap_solve<float>(const CscMatrix<float>&,
                                           const std::vector<float>&,
                                           const SapOptions&);
template SapResult<double> sap_solve<double>(const CscMatrix<double>&,
                                             const std::vector<double>&,
                                             const SapOptions&);

}  // namespace rsketch
