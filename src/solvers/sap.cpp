#include "solvers/sap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dense/blas1.hpp"
#include "sketch/sketch.hpp"
#include "solvers/qr.hpp"
#include "solvers/svd.hpp"
#include "solvers/triangular.hpp"
#include "sparse/ops.hpp"
#include "support/memory_tracker.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// y := M·x for a dense n×k matrix (column-major), x length k.
template <typename T>
void dense_matvec(const DenseMatrix<T>& m_mat, const T* x, T* y) {
  for (index_t i = 0; i < m_mat.rows(); ++i) y[i] = T{0};
  for (index_t j = 0; j < m_mat.cols(); ++j) {
    axpy(m_mat.rows(), x[j], m_mat.col(j), y);
  }
}

/// y := Mᵀ·x, x length n.
template <typename T>
void dense_matvec_t(const DenseMatrix<T>& m_mat, const T* x, T* y) {
  for (index_t j = 0; j < m_mat.cols(); ++j) {
    y[j] = dot(m_mat.rows(), m_mat.col(j), x);
  }
}

}  // namespace

template <typename T>
SapPreconditioner<T> sap_build_preconditioner(DenseMatrix<T>&& a_hat,
                                              SapFactor kind,
                                              double sigma_drop) {
  SapPreconditioner<T> p;
  p.kind = kind;
  p.n = a_hat.cols();
  if (kind == SapFactor::QR) {
    QrFactor<T> f = qr_factorize(std::move(a_hat));
    p.r = extract_r(f);
    p.rank = p.n;
    // Diagonal-ratio condition estimate: max|r_ii|/min|r_ii| lower-bounds
    // cond₂(Â); zero or non-finite diagonal ⇒ the triangular solve would
    // break down, reported as +inf rather than a throw.
    double dmin = 1e300, dmax = 0.0;
    bool bad = false;
    for (index_t i = 0; i < p.n; ++i) {
      const double d = std::fabs(static_cast<double>(p.r(i, i)));
      if (!std::isfinite(d) || d == 0.0) bad = true;
      dmin = std::min(dmin, d);
      dmax = std::max(dmax, d);
    }
    p.cond_estimate = (bad || p.n == 0)
                          ? (p.n == 0 ? 0.0 : std::numeric_limits<double>::infinity())
                          : dmax / dmin;
  } else {
    SvdResult<T> svd = jacobi_svd(std::move(a_hat));
    const double smax =
        svd.sigma.empty() ? 0.0 : static_cast<double>(svd.sigma.front());
    if (!std::isfinite(smax)) {
      p.cond_estimate = std::numeric_limits<double>::infinity();
      return p;  // rank 0: a non-finite sketch has no usable factor
    }
    index_t rank = 0;
    for (T s : svd.sigma) {
      if (static_cast<double>(s) > smax * sigma_drop) ++rank;
    }
    p.rank = rank;
    if (rank == 0) {
      p.cond_estimate = std::numeric_limits<double>::infinity();
      return p;
    }
    p.cond_estimate =
        smax / static_cast<double>(svd.sigma[static_cast<std::size_t>(rank - 1)]);
    p.n_mat.reset(p.n, rank);
    for (index_t j = 0; j < rank; ++j) {
      const T inv = static_cast<T>(
          1.0 / static_cast<double>(svd.sigma[static_cast<std::size_t>(j)]));
      const T* vj = svd.v.col(j);
      T* nj = p.n_mat.col(j);
      for (index_t i = 0; i < p.n; ++i) nj[i] = vj[i] * inv;
    }
  }
  return p;
}

template <typename T>
LinearOperator<T> sap_preconditioned_operator(const CscMatrix<T>& a,
                                              const SapPreconditioner<T>& p,
                                              std::vector<T>& scratch) {
  const index_t n = p.n;
  scratch.assign(static_cast<std::size_t>(n), T{0});
  LinearOperator<T> op;
  op.rows = a.rows();
  op.cols = p.rank;
  if (p.kind == SapFactor::QR) {
    op.apply = [&a, &p, &scratch, n](const T* y, T* z) {
      for (index_t i = 0; i < n; ++i) scratch[static_cast<std::size_t>(i)] = y[i];
      solve_upper(p.r, scratch.data());
      spmv(a, scratch.data(), z);
    };
    op.apply_adjoint = [&a, &p, &scratch, n](const T* z, T* y) {
      spmv_transpose(a, z, scratch.data());
      solve_upper_transpose(p.r, scratch.data());
      for (index_t i = 0; i < n; ++i) y[i] = scratch[static_cast<std::size_t>(i)];
    };
  } else {
    op.apply = [&a, &p, &scratch](const T* y, T* z) {
      dense_matvec(p.n_mat, y, scratch.data());
      spmv(a, scratch.data(), z);
    };
    op.apply_adjoint = [&a, &p, &scratch](const T* z, T* y) {
      spmv_transpose(a, z, scratch.data());
      dense_matvec_t(p.n_mat, scratch.data(), y);
    };
  }
  return op;
}

template <typename T>
void sap_recover_solution(const SapPreconditioner<T>& p, const T* y, T* x) {
  if (p.kind == SapFactor::QR) {
    for (index_t i = 0; i < p.n; ++i) x[i] = y[i];
    solve_upper(p.r, x);
  } else {
    dense_matvec(p.n_mat, y, x);
  }
}

template <typename T>
SapResult<T> sap_solve(const CscMatrix<T>& a, const std::vector<T>& b,
                       const SapOptions& options) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  require(m >= n, "sap_solve: A must be tall (m >= n); transpose first");
  require(static_cast<index_t>(b.size()) == m,
          "sap_solve: rhs length mismatch");
  require(options.gamma > 1.0, "sap_solve: gamma must exceed 1");

  SapResult<T> out;
  MemoryTracker mem;
  Timer total;

  // --- 1. Sketch: Â = S·A, d = ⌈γn⌉, normalized to an approximate isometry.
  SketchConfig cfg;
  cfg.d = static_cast<index_t>(std::ceil(options.gamma * static_cast<double>(n)));
  cfg.seed = options.seed;
  cfg.dist = options.dist;
  cfg.backend = options.backend;
  cfg.kernel = options.kernel;
  cfg.block_d = options.block_d;
  cfg.block_n = options.block_n;
  cfg.parallel = options.parallel;
  cfg.normalize = true;

  Timer phase;
  DenseMatrix<T> a_hat(cfg.d, n);
  sketch_into(cfg, a, a_hat);
  out.sketch_seconds = phase.seconds();
  mem.add("sketch A_hat", a_hat.memory_bytes());

  // --- 2. Factor Â into a right preconditioner N.
  phase.reset();
  SapPreconditioner<T> precond = sap_build_preconditioner(
      std::move(a_hat), options.factor, options.sigma_drop);
  require(precond.rank > 0, "sap_solve: sketch is numerically zero");
  mem.add(options.factor == SapFactor::QR ? "R factor" : "V*Sigma^+ factor",
          options.factor == SapFactor::QR ? precond.r.memory_bytes()
                                          : precond.n_mat.memory_bytes());
  out.factor_seconds = phase.seconds();
  out.rank = precond.rank;
  // Â's storage was consumed by the factorization (moved in, freed with the
  // factor object); the peak above already accounted for the overlap.
  mem.release("sketch A_hat");

  // --- 3. LSQR on the preconditioned operator A·N.
  phase.reset();
  std::vector<T> scratch_n;
  LinearOperator<T> op = sap_preconditioned_operator(a, precond, scratch_n);
  mem.add("LSQR workspace",
          static_cast<std::size_t>(2 * m + 4 * n) * sizeof(T));

  LsqrOptions lo;
  lo.tol = options.lsqr_tol;
  lo.max_iter = options.lsqr_max_iter;
  LsqrResult<T> res = lsqr(op, b.data(), lo);
  out.iterations = res.iterations;
  out.converged = res.converged;
  out.lsqr_seconds = phase.seconds();

  // --- 4. Recover x = N·y.
  out.x.assign(static_cast<std::size_t>(n), T{0});
  sap_recover_solution(precond, res.x.data(), out.x.data());

  out.total_seconds = total.seconds();
  out.workspace_bytes = mem.peak_bytes();
  return out;
}

#define RSKETCH_INSTANTIATE(T)                                               \
  template struct SapResult<T>;                                              \
  template struct SapPreconditioner<T>;                                      \
  template SapResult<T> sap_solve<T>(const CscMatrix<T>&,                    \
                                     const std::vector<T>&,                  \
                                     const SapOptions&);                     \
  template SapPreconditioner<T> sap_build_preconditioner<T>(                 \
      DenseMatrix<T>&&, SapFactor, double);                                  \
  template LinearOperator<T> sap_preconditioned_operator<T>(                 \
      const CscMatrix<T>&, const SapPreconditioner<T>&, std::vector<T>&);    \
  template void sap_recover_solution<T>(const SapPreconditioner<T>&,         \
                                        const T*, T*);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
