// Dense Householder QR of the tall sketch Â = S·A (d×n, d ≥ n) — the
// factorization step of SAP-QR (§V-C1).
#pragma once

#include <vector>

#include "dense/dense_matrix.hpp"

namespace rsketch {

/// Compact Householder QR: R in the upper triangle, reflectors below the
/// diagonal, scalar factors in tau.
template <typename T>
struct QrFactor {
  DenseMatrix<T> qr;   ///< d×n packed factor
  std::vector<T> tau;  ///< n Householder scalars
};

/// Factor A (d×n, d ≥ n) in place; A is consumed. OpenMP-parallel over the
/// trailing-panel update.
template <typename T>
QrFactor<T> qr_factorize(DenseMatrix<T>&& a);

/// y (length d) := Qᵀ·y, applying the n reflectors in order.
template <typename T>
void apply_qt(const QrFactor<T>& f, T* y);

/// y (length d) := Q·y (reflectors in reverse order).
template <typename T>
void apply_q(const QrFactor<T>& f, T* y);

/// Copy out the n×n upper-triangular R.
template <typename T>
DenseMatrix<T> extract_r(const QrFactor<T>& f);

/// Dense least-squares solve min ‖Ax-b‖ via this QR (for tests and as the
/// final small solve inside other pipelines). b has length d; returns x of
/// length n.
template <typename T>
std::vector<T> qr_least_squares(const QrFactor<T>& f, const T* b);

extern template struct QrFactor<float>;
extern template struct QrFactor<double>;
extern template QrFactor<float> qr_factorize<float>(DenseMatrix<float>&&);
extern template QrFactor<double> qr_factorize<double>(DenseMatrix<double>&&);
extern template void apply_qt<float>(const QrFactor<float>&, float*);
extern template void apply_qt<double>(const QrFactor<double>&, double*);
extern template void apply_q<float>(const QrFactor<float>&, float*);
extern template void apply_q<double>(const QrFactor<double>&, double*);
extern template DenseMatrix<float> extract_r<float>(const QrFactor<float>&);
extern template DenseMatrix<double> extract_r<double>(const QrFactor<double>&);
extern template std::vector<float> qr_least_squares<float>(
    const QrFactor<float>&, const float*);
extern template std::vector<double> qr_least_squares<double>(
    const QrFactor<double>&, const double*);

}  // namespace rsketch
