#include "solvers/lsqr.hpp"

#include <cmath>

#include "dense/blas1.hpp"
#include "support/run_control.hpp"

namespace rsketch {

template <typename T>
LsqrResult<T> lsqr(const LinearOperator<T>& op, const T* b,
                   const LsqrOptions& options) {
  require(static_cast<bool>(op.apply) && static_cast<bool>(op.apply_adjoint),
          "lsqr: operator callbacks must be set");
  const index_t m = op.rows;
  const index_t n = op.cols;
  const index_t max_iter =
      options.max_iter > 0 ? options.max_iter : 4 * std::max<index_t>(n, 1);

  LsqrResult<T> out;
  out.x.assign(static_cast<std::size_t>(n), T{0});
  if (m == 0 || n == 0) {
    out.converged = true;
    return out;
  }

  std::vector<T> u(b, b + m);
  std::vector<T> v(static_cast<std::size_t>(n), T{0});
  std::vector<T> w(static_cast<std::size_t>(n), T{0});
  std::vector<T> tmp_m(static_cast<std::size_t>(m), T{0});
  std::vector<T> tmp_n(static_cast<std::size_t>(n), T{0});

  // --- Golub–Kahan bidiagonalization initialization ---
  double beta = nrm2(m, u.data());
  if (!std::isfinite(beta)) {
    out.breakdown = true;  // b already contains NaN/Inf
    return out;
  }
  if (beta == 0.0) {
    out.converged = true;  // b = 0 → x = 0
    return out;
  }
  scal(m, static_cast<T>(1.0 / beta), u.data());
  op.apply_adjoint(u.data(), v.data());
  double alpha = nrm2(n, v.data());
  if (!std::isfinite(alpha)) {
    out.breakdown = true;  // operator produced NaN/Inf
    return out;
  }
  if (alpha == 0.0) {
    out.converged = true;  // b ⟂ range(Op)
    return out;
  }
  scal(n, static_cast<T>(1.0 / alpha), v.data());
  w = v;

  double phibar = beta;
  double rhobar = alpha;
  double anorm2 = alpha * alpha;
  // Stagnation guard: at very tight tolerances the arnorm estimate can
  // plateau at the rounding floor; stop burning iterations once it has not
  // improved for a long stretch.
  double best_arnorm_rel = 1e300;
  int stall = 0;

  for (index_t it = 1; it <= max_iter; ++it) {
    // One relaxed load (plus a clock read when a deadline is armed) per
    // iteration — negligible next to the two operator applications.
    if (options.control != nullptr) options.control->poll();
    // u := Op·v - alpha·u,  beta := ‖u‖
    op.apply(v.data(), tmp_m.data());
    for (index_t i = 0; i < m; ++i) {
      u[static_cast<std::size_t>(i)] =
          tmp_m[static_cast<std::size_t>(i)] -
          static_cast<T>(alpha) * u[static_cast<std::size_t>(i)];
    }
    beta = nrm2(m, u.data());
    if (beta > 0.0) scal(m, static_cast<T>(1.0 / beta), u.data());

    // v := Opᵀ·u - beta·v,  alpha := ‖v‖
    op.apply_adjoint(u.data(), tmp_n.data());
    for (index_t i = 0; i < n; ++i) {
      v[static_cast<std::size_t>(i)] =
          tmp_n[static_cast<std::size_t>(i)] -
          static_cast<T>(beta) * v[static_cast<std::size_t>(i)];
    }
    alpha = nrm2(n, v.data());
    if (alpha > 0.0) scal(n, static_cast<T>(1.0 / alpha), v.data());

    if (!std::isfinite(alpha) || !std::isfinite(beta)) {
      out.breakdown = true;  // NaN/Inf entered the recurrence this iteration
      out.iterations = it;
      break;
    }

    anorm2 += alpha * alpha + beta * beta;

    // Givens rotation eliminating beta from the lower bidiagonal.
    const double rho = std::hypot(rhobar, beta);
    const double c = rhobar / rho;
    const double s = beta / rho;
    const double theta = s * alpha;
    rhobar = -c * alpha;
    const double phi = c * phibar;
    phibar = s * phibar;

    // x := x + (phi/rho)·w;  w := v - (theta/rho)·w
    const T t1 = static_cast<T>(phi / rho);
    const T t2 = static_cast<T>(-theta / rho);
    for (index_t i = 0; i < n; ++i) {
      out.x[static_cast<std::size_t>(i)] += t1 * w[static_cast<std::size_t>(i)];
      w[static_cast<std::size_t>(i)] =
          v[static_cast<std::size_t>(i)] + t2 * w[static_cast<std::size_t>(i)];
    }

    out.iterations = it;
    out.rnorm = phibar;
    const double arnorm = phibar * alpha * std::fabs(c);
    const double anorm = std::sqrt(anorm2);
    out.arnorm_rel =
        (anorm > 0.0 && phibar > 0.0) ? arnorm / (anorm * phibar) : 0.0;
    if (out.arnorm_rel <= options.tol || phibar == 0.0) {
      out.converged = true;
      break;
    }
    if (out.arnorm_rel < 0.999 * best_arnorm_rel) {
      best_arnorm_rel = out.arnorm_rel;
      stall = 0;
    } else if (++stall > 200) {
      break;  // rounding floor reached; solution no longer improving
    }
  }
  return out;
}

template struct LinearOperator<float>;
template struct LinearOperator<double>;
template LsqrResult<float> lsqr<float>(const LinearOperator<float>&,
                                       const float*, const LsqrOptions&);
template LsqrResult<double> lsqr<double>(const LinearOperator<double>&,
                                         const double*, const LsqrOptions&);

}  // namespace rsketch
