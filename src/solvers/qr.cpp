#include "solvers/qr.hpp"

#include <cmath>

#include "dense/blas1.hpp"
#include "solvers/triangular.hpp"

namespace rsketch {

namespace {

/// Compute the Householder reflector for column vector x (length len) so
/// (I - tau v vᵀ) x = (beta, 0, ..., 0); v[0] = 1 implicit, v[1:] stored in
/// x[1:], beta stored in x[0]. Returns tau (0 when x is already collapsed).
template <typename T>
T make_householder(index_t len, T* x) {
  const double xnorm_tail = len > 1 ? nrm2(len - 1, x + 1) : 0.0;
  if (xnorm_tail == 0.0) return T{0};
  const double alpha = static_cast<double>(x[0]);
  double beta = -std::copysign(std::hypot(alpha, xnorm_tail), alpha);
  const T tau = static_cast<T>((beta - alpha) / beta);
  const T scale = static_cast<T>(1.0 / (alpha - beta));
  scal(len - 1, scale, x + 1);
  x[0] = static_cast<T>(beta);
  return tau;
}

/// w := (I - tau v vᵀ) w for reflector v packed in col (v[0]=1 implicit).
template <typename T>
void apply_reflector(index_t len, const T* v, T tau, T* w) {
  if (tau == T{0}) return;
  T s = w[0];
  s += dot(len - 1, v + 1, w + 1);
  s *= tau;
  w[0] -= s;
  axpy(len - 1, -s, v + 1, w + 1);
}

}  // namespace

template <typename T>
QrFactor<T> qr_factorize(DenseMatrix<T>&& a) {
  const index_t d = a.rows();
  const index_t n = a.cols();
  require(d >= n, "qr_factorize: matrix must be tall (rows >= cols)");
  QrFactor<T> f;
  f.qr = std::move(a);
  f.tau.assign(static_cast<std::size_t>(n), T{0});

  for (index_t k = 0; k < n; ++k) {
    const index_t len = d - k;
    T* colk = f.qr.col(k) + k;
    const T tau = make_householder(len, colk);
    f.tau[static_cast<std::size_t>(k)] = tau;
    if (tau == T{0}) continue;
    // Trailing update: columns k+1..n-1 are independent.
#pragma omp parallel for schedule(static) if (n - k > 32)
    for (index_t j = k + 1; j < n; ++j) {
      apply_reflector(len, colk, tau, f.qr.col(j) + k);
    }
  }
  return f;
}

template <typename T>
void apply_qt(const QrFactor<T>& f, T* y) {
  const index_t d = f.qr.rows();
  const index_t n = f.qr.cols();
  for (index_t k = 0; k < n; ++k) {
    apply_reflector(d - k, f.qr.col(k) + k, f.tau[static_cast<std::size_t>(k)],
                    y + k);
  }
}

template <typename T>
void apply_q(const QrFactor<T>& f, T* y) {
  const index_t d = f.qr.rows();
  const index_t n = f.qr.cols();
  for (index_t k = n - 1; k >= 0; --k) {
    apply_reflector(d - k, f.qr.col(k) + k, f.tau[static_cast<std::size_t>(k)],
                    y + k);
  }
}

template <typename T>
DenseMatrix<T> extract_r(const QrFactor<T>& f) {
  const index_t n = f.qr.cols();
  DenseMatrix<T> r(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) r(i, j) = f.qr(i, j);
  }
  return r;
}

template <typename T>
std::vector<T> qr_least_squares(const QrFactor<T>& f, const T* b) {
  const index_t d = f.qr.rows();
  const index_t n = f.qr.cols();
  std::vector<T> y(b, b + d);
  apply_qt(f, y.data());
  // Back substitution against R stored in the packed factor's upper triangle.
  for (index_t j = n - 1; j >= 0; --j) {
    require(f.qr(j, j) != T{0}, "qr_least_squares: rank-deficient R");
    y[static_cast<std::size_t>(j)] /= f.qr(j, j);
    const T xj = y[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < j; ++i) {
      y[static_cast<std::size_t>(i)] -= f.qr(i, j) * xj;
    }
  }
  y.resize(static_cast<std::size_t>(n));
  return y;
}

template struct QrFactor<float>;
template struct QrFactor<double>;
template QrFactor<float> qr_factorize<float>(DenseMatrix<float>&&);
template QrFactor<double> qr_factorize<double>(DenseMatrix<double>&&);
template void apply_qt<float>(const QrFactor<float>&, float*);
template void apply_qt<double>(const QrFactor<double>&, double*);
template void apply_q<float>(const QrFactor<float>&, float*);
template void apply_q<double>(const QrFactor<double>&, double*);
template DenseMatrix<float> extract_r<float>(const QrFactor<float>&);
template DenseMatrix<double> extract_r<double>(const QrFactor<double>&);
template std::vector<float> qr_least_squares<float>(const QrFactor<float>&,
                                                    const float*);
template std::vector<double> qr_least_squares<double>(const QrFactor<double>&,
                                                      const double*);

}  // namespace rsketch
