// Guarded sketch-and-precondition driver — the numeric-breakdown recovery
// layer over solvers/sap.hpp.
//
// Sketching guarantees are probabilistic: a bad draw of S (or a NaN/Inf that
// slipped into the pipeline) yields an ill-conditioned or non-finite Â whose
// factor then poisons every LSQR iterate. The guarded driver detects each of
// those states — non-finite sketch entries, a degenerate or ill-conditioned
// preconditioner, LSQR breakdown or stagnation — and recovers by re-sketching
// with a fresh seed and an escalated sketch size d (capped at the paper's
// d ≤ 4n bound), with bounded retries. Every attempt is logged and timed
// into the perf span table so BENCH_* reports show the retry history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solvers/sap.hpp"

namespace rsketch {

class RunControl;

/// How one guarded attempt ended.
enum class SapAttemptOutcome {
  Success,           ///< accepted: converged (or within accept_tol) and finite
  SketchNonFinite,   ///< Â contained NaN/Inf
  BadPreconditioner, ///< rank 0, non-finite factor, or cond above cond_limit
  LsqrBreakdown,     ///< NaN/Inf entered the LSQR recurrence
  NotConverged,      ///< LSQR stagnated/diverged above the acceptance bar
  Cancelled,         ///< stopped by cooperative cancellation (run control)
  DeadlineExceeded,  ///< stopped by the wall-clock deadline (run control)
  BudgetExceeded,    ///< stopped by the workspace budget (run control)
};

std::string to_string(SapAttemptOutcome outcome);

struct GuardedSapOptions {
  SapOptions base;
  int max_attempts = 3;
  /// Reject the preconditioner when its condition estimate exceeds this —
  /// LSQR on a preconditioned system this bad converges no faster than on
  /// the raw one, so the sketch draw was wasted.
  double cond_limit = 1e12;
  /// Escalate d by this factor on each retry, capped at 4n (the paper's
  /// largest useful oversampling).
  double d_growth = 1.5;
  /// Accept a non-converged LSQR run whose final relative residual estimate
  /// is at most this (tight stagnation at the rounding floor is success,
  /// not a reason to burn a retry).
  double accept_tol = 1e-10;
  /// Validate A (structure + NaN/Inf) before the first attempt, throwing
  /// validation_error on corrupt input.
  bool check_inputs = true;
  /// TEST HOOK for the fault-injection suite: deliberately write a NaN into
  /// the sketch of the first k attempts, forcing the recovery path.
  int poison_first_attempts = 0;

  // --- Run control (support/run_control.hpp; docs/ROBUSTNESS.md) ---------
  /// Wall-clock deadline over ALL attempts in milliseconds (0 = none;
  /// RSKETCH_DEADLINE_MS back-stops a zero). A fired deadline is checked
  /// before each attempt and polled inside the sketch and LSQR phases, and
  /// surfaces as run_stopped_error with the attempt log in the message —
  /// distinct from numeric_error, and never burning the remaining attempts.
  double deadline_ms = 0.0;
  /// Workspace byte budget across the solve's tracked allocations (0 = none;
  /// RSKETCH_BUDGET_MB back-stops). Enforced charge-before-allocate through
  /// the solve's MemoryTracker and the sketch workspace hooks.
  std::size_t workspace_budget_bytes = 0;
  /// Optional external cancellation/deadline/budget handle. Not owned; must
  /// outlive the call.
  RunControl* control = nullptr;
};

/// One row of the retry log.
struct SapAttemptLog {
  int attempt = 0;               ///< 1-based
  std::uint64_t seed = 0;
  index_t d = 0;
  double cond_estimate = 0.0;    ///< 0 when the attempt died before factoring
  SapAttemptOutcome outcome = SapAttemptOutcome::Success;
  index_t lsqr_iterations = 0;
  double seconds = 0.0;
};

template <typename T>
struct GuardedSapResult {
  SapResult<T> result;           ///< the accepted attempt's solve
  int attempts = 1;              ///< total attempts (1 = first try succeeded)
  bool recovered = false;        ///< success on a retry after ≥1 failure
  std::vector<SapAttemptLog> log;
};

/// Solve min ‖Ax − b‖₂ with breakdown detection and re-sketch recovery.
/// Throws validation_error on corrupt A (when check_inputs), and
/// numeric_error when every attempt fails.
template <typename T>
GuardedSapResult<T> guarded_sap_solve(const CscMatrix<T>& a,
                                      const std::vector<T>& b,
                                      const GuardedSapOptions& options);

extern template struct GuardedSapResult<float>;
extern template struct GuardedSapResult<double>;
extern template GuardedSapResult<float> guarded_sap_solve<float>(
    const CscMatrix<float>&, const std::vector<float>&,
    const GuardedSapOptions&);
extern template GuardedSapResult<double> guarded_sap_solve<double>(
    const CscMatrix<double>&, const std::vector<double>&,
    const GuardedSapOptions&);

}  // namespace rsketch
