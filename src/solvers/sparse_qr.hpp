// Sparse direct least-squares solver via George–Heath row-Givens QR — the
// from-scratch stand-in for SuiteSparseQR in the paper's §V-C comparison
// (see DESIGN.md §2 for the substitution rationale).
//
// Rows of A are rotated one at a time into a sparse upper-triangular R; the
// right-hand side is carried through the same rotations (Q is never formed).
// Fill-in accumulates in R exactly as in a real sparse QR, which is what
// drives the direct method's memory blowup in Table XI.
#pragma once

#include <vector>

#include "sparse/csc.hpp"

namespace rsketch {

template <typename T>
struct SparseQrResult {
  std::vector<T> x;            ///< least-squares solution
  index_t rank = 0;            ///< numerical rank of R used in the solve
  index_t r_nnz = 0;           ///< nonzeros stored in R (fill-in included)
  std::size_t r_bytes = 0;     ///< memory of R + carried rhs
  index_t q_rotations = 0;     ///< Givens rotations applied while factoring
  /// Memory a SuiteSparseQR-style factorization retains for Q (one (c, s,
  /// row-pair) record per rotation). Our solver itself runs Q-less by
  /// carrying the rhs, but the paper's Table XI measures the resulting
  /// factors of SuiteSparse's backslash, which include Q.
  std::size_t q_bytes = 0;
  double factor_seconds = 0.0;
  double solve_seconds = 0.0;

  std::size_t factor_bytes() const { return r_bytes + q_bytes; }
};

/// Solve min ‖Ax - b‖₂ directly. When `reorder_columns` is set, columns are
/// pre-permuted by ascending nonzero count (a cheap fill-reducing heuristic
/// standing in for COLAMD) and the solution is returned in original order.
/// Structurally rank-deficient columns receive x_j = 0 (basic solution).
template <typename T>
SparseQrResult<T> sparse_qr_least_squares(const CscMatrix<T>& a, const T* b,
                                          bool reorder_columns = true);

extern template struct SparseQrResult<float>;
extern template struct SparseQrResult<double>;
extern template SparseQrResult<float> sparse_qr_least_squares<float>(
    const CscMatrix<float>&, const float*, bool);
extern template SparseQrResult<double> sparse_qr_least_squares<double>(
    const CscMatrix<double>&, const double*, bool);

}  // namespace rsketch
