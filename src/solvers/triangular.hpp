// Triangular solves against the n×n upper factor R produced by QR — the
// per-iteration preconditioner application inside SAP-QR's LSQR loop.
#pragma once

#include "dense/dense_matrix.hpp"

namespace rsketch {

/// x := R⁻¹ x for upper-triangular R (back substitution).
/// Throws invalid_argument_error if a diagonal entry is exactly zero.
template <typename T>
void solve_upper(const DenseMatrix<T>& r, T* x);

/// x := R⁻ᵀ x for upper-triangular R (forward substitution on Rᵀ).
template <typename T>
void solve_upper_transpose(const DenseMatrix<T>& r, T* x);

extern template void solve_upper<float>(const DenseMatrix<float>&, float*);
extern template void solve_upper<double>(const DenseMatrix<double>&, double*);
extern template void solve_upper_transpose<float>(const DenseMatrix<float>&,
                                                  float*);
extern template void solve_upper_transpose<double>(const DenseMatrix<double>&,
                                                   double*);

}  // namespace rsketch
