#include "solvers/minimum_norm.hpp"

#include <cmath>

#include "sketch/sketch.hpp"
#include "solvers/lsqr.hpp"
#include "solvers/qr.hpp"
#include "solvers/triangular.hpp"
#include "sparse/convert.hpp"
#include "sparse/ops.hpp"
#include "support/memory_tracker.hpp"
#include "support/timer.hpp"

namespace rsketch {

template <typename T>
SapResult<T> sap_solve_minimum_norm(const CscMatrix<T>& a,
                                    const std::vector<T>& b,
                                    const SapOptions& options) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  require(m <= n, "sap_solve_minimum_norm: A must be wide (m <= n)");
  require(static_cast<index_t>(b.size()) == m,
          "sap_solve_minimum_norm: rhs length mismatch");
  require(options.gamma > 1.0, "sap_solve_minimum_norm: gamma must exceed 1");
  require(options.factor == SapFactor::QR,
          "sap_solve_minimum_norm: only the QR factor is supported");

  SapResult<T> out;
  MemoryTracker mem;
  Timer total;

  // --- 1. Sketch the tall transpose: Â = S·Aᵀ, d = ⌈γm⌉.
  Timer phase;
  const CscMatrix<T> at = transpose(a);
  SketchConfig cfg;
  cfg.d = static_cast<index_t>(std::ceil(options.gamma * static_cast<double>(m)));
  cfg.seed = options.seed;
  cfg.dist = options.dist;
  cfg.backend = options.backend;
  cfg.kernel = options.kernel;
  cfg.block_d = options.block_d;
  cfg.block_n = options.block_n;
  cfg.parallel = options.parallel;
  cfg.normalize = true;
  DenseMatrix<T> a_hat(cfg.d, m);
  sketch_into(cfg, at, a_hat);
  out.sketch_seconds = phase.seconds();
  mem.add("sketch of A^T", a_hat.memory_bytes());

  // --- 2. QR of the sketch: R preconditions the ROW space of A.
  phase.reset();
  QrFactor<T> f = qr_factorize(std::move(a_hat));
  const DenseMatrix<T> r_mat = extract_r(f);
  out.factor_seconds = phase.seconds();
  out.rank = m;
  mem.add("R factor", r_mat.memory_bytes());

  // --- 3. LSQR on M = R⁻ᵀA with rhs R⁻ᵀb. For a compatible system LSQR
  //        converges to the minimum-norm solution of Mx = R⁻ᵀb, which is
  //        the minimum-norm solution of Ax = b (row scaling by an
  //        invertible R⁻ᵀ preserves the solution set and the norm being
  //        minimized is still ‖x‖).
  phase.reset();
  LinearOperator<T> op;
  op.rows = m;
  op.cols = n;
  std::vector<T> scratch(static_cast<std::size_t>(m));
  op.apply = [&a, &r_mat, &scratch, m](const T* x, T* z) {
    spmv(a, x, scratch.data());
    for (index_t i = 0; i < m; ++i) z[i] = scratch[static_cast<std::size_t>(i)];
    solve_upper_transpose(r_mat, z);
  };
  op.apply_adjoint = [&a, &r_mat, &scratch, m](const T* z, T* x) {
    for (index_t i = 0; i < m; ++i) scratch[static_cast<std::size_t>(i)] = z[i];
    solve_upper(r_mat, scratch.data());
    spmv_transpose(a, scratch.data(), x);
  };

  std::vector<T> rhs(b);
  solve_upper_transpose(r_mat, rhs.data());
  mem.add("LSQR workspace",
          static_cast<std::size_t>(2 * n + 4 * m) * sizeof(T));

  LsqrOptions lo;
  lo.tol = options.lsqr_tol;
  lo.max_iter = options.lsqr_max_iter;
  LsqrResult<T> res = lsqr(op, rhs.data(), lo);
  out.iterations = res.iterations;
  out.converged = res.converged;
  out.lsqr_seconds = phase.seconds();
  out.x = std::move(res.x);

  out.total_seconds = total.seconds();
  out.workspace_bytes = mem.peak_bytes();
  return out;
}

template SapResult<float> sap_solve_minimum_norm<float>(
    const CscMatrix<float>&, const std::vector<float>&, const SapOptions&);
template SapResult<double> sap_solve_minimum_norm<double>(
    const CscMatrix<double>&, const std::vector<double>&, const SapOptions&);

}  // namespace rsketch
