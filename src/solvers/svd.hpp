// One-sided Jacobi SVD of the tall sketch Â — the factorization behind
// SAP-SVD (§V-C1), intended for inputs whose singular values may be near
// zero. Jacobi is chosen for its simplicity and its excellent relative
// accuracy on small singular values.
#pragma once

#include <vector>

#include "dense/dense_matrix.hpp"

namespace rsketch {

template <typename T>
struct SvdResult {
  std::vector<T> sigma;  ///< singular values, descending
  DenseMatrix<T> v;      ///< n×n right singular vectors
  DenseMatrix<T> u;      ///< d×n left singular vectors (empty if !want_u)
  int sweeps = 0;        ///< Jacobi sweeps until convergence
};

/// One-sided Jacobi SVD of a (d×n, d ≥ n, consumed). Columns are rotated
/// until all pairwise dot products fall below tol·‖aᵢ‖‖aⱼ‖.
template <typename T>
SvdResult<T> jacobi_svd(DenseMatrix<T>&& a, bool want_u = false,
                        double tol = 1e-10, int max_sweeps = 60);

extern template struct SvdResult<float>;
extern template struct SvdResult<double>;
extern template SvdResult<float> jacobi_svd<float>(DenseMatrix<float>&&, bool,
                                                   double, int);
extern template SvdResult<double> jacobi_svd<double>(DenseMatrix<double>&&,
                                                     bool, double, int);

}  // namespace rsketch
