#include "solvers/guarded.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "perf/perf.hpp"
#include "perf/trace.hpp"
#include "rng/splitmix64.hpp"
#include "sketch/sketch.hpp"
#include "sparse/validate.hpp"
#include "support/memory_tracker.hpp"
#include "support/run_control.hpp"
#include "support/timer.hpp"

namespace rsketch {

std::string to_string(SapAttemptOutcome outcome) {
  switch (outcome) {
    case SapAttemptOutcome::Success: return "success";
    case SapAttemptOutcome::SketchNonFinite: return "sketch_non_finite";
    case SapAttemptOutcome::BadPreconditioner: return "bad_preconditioner";
    case SapAttemptOutcome::LsqrBreakdown: return "lsqr_breakdown";
    case SapAttemptOutcome::NotConverged: return "not_converged";
    case SapAttemptOutcome::Cancelled: return "cancelled";
    case SapAttemptOutcome::DeadlineExceeded: return "deadline_exceeded";
    case SapAttemptOutcome::BudgetExceeded: return "budget_exceeded";
  }
  return "?";
}

namespace {

/// NaN/Inf scan over the logical entries of Â (skips the alignment padding
/// between columns).
template <typename T>
bool dense_all_finite(const DenseMatrix<T>& a) {
  for (index_t j = 0; j < a.cols(); ++j) {
    if (count_non_finite(a.col(j), a.rows()) > 0) return false;
  }
  return true;
}

template <typename T>
bool vector_all_finite(const std::vector<T>& v) {
  return count_non_finite(v.data(), static_cast<index_t>(v.size())) == 0;
}

SapAttemptOutcome outcome_of(StopCause cause) {
  switch (cause) {
    case StopCause::Cancelled: return SapAttemptOutcome::Cancelled;
    case StopCause::DeadlineExceeded:
      return SapAttemptOutcome::DeadlineExceeded;
    case StopCause::BudgetExceeded: return SapAttemptOutcome::BudgetExceeded;
    case StopCause::None: break;
  }
  return SapAttemptOutcome::Success;
}

/// Append the attempt history to a stop message so the failure is as
/// diagnosable as the numeric_error path (sketch_tool prints this verbatim).
std::string with_attempt_log(const std::string& msg,
                             const std::vector<SapAttemptLog>& log) {
  std::ostringstream os;
  os << "guarded_sap_solve: " << msg << ";";
  for (const SapAttemptLog& l : log) {
    os << " [attempt " << l.attempt << ": " << to_string(l.outcome)
       << ", d=" << l.d << ", cond~" << l.cond_estimate << "]";
  }
  return os.str();
}

void count_stop(StopCause cause) {
  switch (cause) {
    case StopCause::Cancelled:
      perf::add(perf::Counter::RunCancelled, 1);
      break;
    case StopCause::DeadlineExceeded:
      perf::add(perf::Counter::RunDeadlineHits, 1);
      break;
    case StopCause::BudgetExceeded:
      perf::add(perf::Counter::RunBudgetHits, 1);
      break;
    case StopCause::None:
      break;
  }
}

}  // namespace

template <typename T>
GuardedSapResult<T> guarded_sap_solve(const CscMatrix<T>& a,
                                      const std::vector<T>& b,
                                      const GuardedSapOptions& options) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const SapOptions& base = options.base;
  require(m >= n, "guarded_sap_solve: A must be tall (m >= n)");
  require(static_cast<index_t>(b.size()) == m,
          "guarded_sap_solve: rhs length mismatch");
  require(base.gamma > 1.0, "guarded_sap_solve: gamma must exceed 1");
  require(options.max_attempts >= 1,
          "guarded_sap_solve: max_attempts must be >= 1");
  require(options.d_growth >= 1.0,
          "guarded_sap_solve: d_growth must be >= 1");
  if (options.check_inputs) {
    perf::Span span("validate_inputs");
    require_valid(a);
    if (!vector_all_finite(b)) {
      throw numeric_error("guarded_sap_solve: rhs contains NaN/Inf");
    }
  }

  const index_t d0 =
      static_cast<index_t>(std::ceil(base.gamma * static_cast<double>(n)));
  const index_t d_cap = std::max(d0, 4 * n);  // paper's d ≤ 4n escalation bound

  ResolvedRunControl rrc(options.control, options.deadline_ms,
                         options.workspace_budget_bytes);
  RunControl* const run = rrc.get();

  GuardedSapResult<T> out;
  MemoryTracker mem;
  mem.attach(run);
  Timer total;
  double sketch_s = 0.0, factor_s = 0.0, lsqr_s = 0.0;

  int attempt_no = 0;
  try {
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      attempt_no = attempt + 1;
      // A fired bound stops the solve exactly once, BEFORE the attempt starts —
      // a dead clock or exhausted budget must not burn the remaining attempts
      // one timeout at a time. The poll's throw lands in the catch below,
      // which logs the stop as its own outcome and re-raises with the log.
      if (run != nullptr) run->poll();
      Timer attempt_timer;
      SapAttemptLog log;
      log.attempt = attempt + 1;
      // Timeline marker per attempt (value = 1-based attempt number) so retries
      // and d-escalations are visible between the sketch/factor/lsqr slices.
      if (perf::trace::armed()) {
        static const std::uint32_t attempt_id =
            perf::trace::intern("guarded_sap/attempt");
        perf::trace::instant(attempt_id, static_cast<double>(log.attempt));
      }

      // Fresh seed per retry (SplitMix-derived so nearby attempts are
      // uncorrelated), escalated d toward the 4n cap.
      log.seed = attempt == 0
                     ? base.seed
                     : mix3(base.seed, static_cast<std::uint64_t>(attempt),
                            0x9E3779B97F4A7C15ULL);
      log.d = std::min(
          d_cap, static_cast<index_t>(std::ceil(
                     static_cast<double>(d0) *
                     std::pow(options.d_growth, static_cast<double>(attempt)))));

      const auto fail = [&](SapAttemptOutcome outcome) {
        log.outcome = outcome;
        log.seconds = attempt_timer.seconds();
        perf::add_span("guarded_sap/retry", log.seconds);
        out.log.push_back(log);
      };

      SketchConfig cfg;
      cfg.d = log.d;
      cfg.seed = log.seed;
      cfg.dist = base.dist;
      cfg.backend = base.backend;
      cfg.kernel = base.kernel;
      cfg.block_d = base.block_d;
      cfg.block_n = base.block_n;
      cfg.parallel = base.parallel;
      cfg.normalize = true;
      // The sketch polls the same control between outer blocks and routes its
      // workspace through the same budget (deadline/budget fields stay zero —
      // they are already armed on `run`, re-arming would reset the clock).
      cfg.control = run;

      // --- Sketch, then scan it: a non-finite Â means A or the pipeline is
      // numerically broken and the factor stage would only launder the NaNs.
      Timer phase;
      DenseMatrix<T> a_hat(cfg.d, n);
      {
        perf::Span span("guarded_sap/sketch");
        sketch_into(cfg, a, a_hat);
      }
      if (attempt < options.poison_first_attempts && cfg.d > 0 && n > 0) {
        a_hat(0, 0) = std::numeric_limits<T>::quiet_NaN();
      }
      sketch_s += phase.seconds();
      mem.add("sketch A_hat", a_hat.memory_bytes());
      if (!dense_all_finite(a_hat)) {
        mem.release("sketch A_hat");
        fail(SapAttemptOutcome::SketchNonFinite);
        continue;
      }

      // --- Factor and gate on the condition estimate.
      phase.reset();
      SapPreconditioner<T> precond;
      {
        perf::Span span("guarded_sap/factor");
        precond = sap_build_preconditioner(std::move(a_hat), base.factor,
                                           base.sigma_drop);
      }
      factor_s += phase.seconds();
      log.cond_estimate = precond.cond_estimate;
      mem.release("sketch A_hat");  // consumed by the factorization
      if (!precond.usable() || precond.cond_estimate > options.cond_limit) {
        fail(SapAttemptOutcome::BadPreconditioner);
        continue;
      }
      mem.add("factor", precond.kind == SapFactor::QR
                            ? precond.r.memory_bytes()
                            : precond.n_mat.memory_bytes());

      // --- LSQR with breakdown detection.
      phase.reset();
      std::vector<T> scratch_n;
      LinearOperator<T> op = sap_preconditioned_operator(a, precond, scratch_n);
      mem.add("LSQR workspace",
              static_cast<std::size_t>(2 * m + 4 * n) * sizeof(T));
      LsqrOptions lo;
      lo.tol = base.lsqr_tol;
      lo.max_iter = base.lsqr_max_iter;
      lo.control = run;
      LsqrResult<T> res;
      {
        perf::Span span("guarded_sap/lsqr");
        res = lsqr(op, b.data(), lo);
      }
      lsqr_s += phase.seconds();
      log.lsqr_iterations = res.iterations;
      mem.release("LSQR workspace");
      if (res.breakdown) {
        mem.release("factor");
        fail(SapAttemptOutcome::LsqrBreakdown);
        continue;
      }
      if (!res.converged && res.arnorm_rel > options.accept_tol) {
        mem.release("factor");
        fail(SapAttemptOutcome::NotConverged);
        continue;
      }

      // --- Accept: recover x = N·y and double-check it is finite.
      std::vector<T> x(static_cast<std::size_t>(n), T{0});
      sap_recover_solution(precond, res.x.data(), x.data());
      if (!vector_all_finite(x)) {
        mem.release("factor");
        fail(SapAttemptOutcome::LsqrBreakdown);
        continue;
      }

      log.outcome = SapAttemptOutcome::Success;
      log.seconds = attempt_timer.seconds();
      perf::add_span("guarded_sap/attempt_ok", log.seconds);
      out.log.push_back(log);
      out.attempts = attempt + 1;
      out.recovered = attempt > 0;
      out.result.x = std::move(x);
      out.result.iterations = res.iterations;
      out.result.converged = res.converged || res.arnorm_rel <= options.accept_tol;
      out.result.rank = precond.rank;
      out.result.sketch_seconds = sketch_s;
      out.result.factor_seconds = factor_s;
      out.result.lsqr_seconds = lsqr_s;
      out.result.total_seconds = total.seconds();
      out.result.workspace_bytes = mem.peak_bytes();
      return out;
    }
  } catch (const run_stopped_error& e) {
    // Log the stop as its own outcome and re-raise with the attempt history
    // attached, so a stopped solve is as diagnosable as a failed one.
    SapAttemptLog stopped;
    stopped.attempt = attempt_no;
    stopped.outcome = outcome_of(e.cause());
    out.log.push_back(stopped);
    count_stop(e.cause());
    throw run_stopped_error(e.cause(), with_attempt_log(e.what(), out.log));
  }

  std::ostringstream os;
  os << "guarded_sap_solve: no usable solve in " << options.max_attempts
     << " attempt(s);";
  for (const SapAttemptLog& log : out.log) {
    os << " [attempt " << log.attempt << ": " << to_string(log.outcome)
       << ", d=" << log.d << ", cond~" << log.cond_estimate << "]";
  }
  throw numeric_error(os.str());
}

template struct GuardedSapResult<float>;
template struct GuardedSapResult<double>;
template GuardedSapResult<float> guarded_sap_solve<float>(
    const CscMatrix<float>&, const std::vector<float>&,
    const GuardedSapOptions&);
template GuardedSapResult<double> guarded_sap_solve<double>(
    const CscMatrix<double>&, const std::vector<double>&,
    const GuardedSapOptions&);

}  // namespace rsketch
