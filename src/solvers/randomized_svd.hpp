// Randomized low-rank SVD of a sparse matrix (Halko–Martinsson–Tropp range
// finder) built on the fast right-sketch primitive — one of the
// applications the paper's introduction motivates ("low-rank approximation,
// matrix decomposition, eigenvalue computation").
//
//   Y = A·Sᵀ            (m×l range sample via sketch_right, S never stored)
//   optional power iterations  Y ← A(AᵀY)
//   Y = QR               →  Q (m×l orthonormal)
//   B = QᵀA              (l×n, via l sparse transpose-products)
//   Bᵀ = W Σ Zᵀ          (small dense Jacobi SVD)
//   A ≈ (Q·Z) Σ Wᵀ       →  U = Q·Z, V = W, truncated to `rank`.
#pragma once

#include <cstdint>
#include <vector>

#include "dense/dense_matrix.hpp"
#include "sketch/config.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

template <typename T>
struct RandomizedSvdResult {
  DenseMatrix<T> u;       ///< m×rank, orthonormal columns
  std::vector<T> sigma;   ///< rank singular value estimates, descending
  DenseMatrix<T> v;       ///< n×rank, orthonormal columns
  double sketch_seconds = 0.0;
  double total_seconds = 0.0;
};

struct RandomizedSvdOptions {
  index_t oversample = 8;     ///< l = rank + oversample sketch columns
  int power_iterations = 1;   ///< subspace iterations for spectral decay
  std::uint64_t seed = 0xDECAF;
  Dist dist = Dist::Uniform;
  RngBackend backend = RngBackend::XoshiroBatch;
};

/// Rank-`rank` randomized SVD of A. Requires 1 ≤ rank and
/// rank + oversample ≤ min(m, n).
template <typename T>
RandomizedSvdResult<T> randomized_svd(const CscMatrix<T>& a, index_t rank,
                                      const RandomizedSvdOptions& options = {});

extern template RandomizedSvdResult<float> randomized_svd<float>(
    const CscMatrix<float>&, index_t, const RandomizedSvdOptions&);
extern template RandomizedSvdResult<double> randomized_svd<double>(
    const CscMatrix<double>&, index_t, const RandomizedSvdOptions&);

}  // namespace rsketch
