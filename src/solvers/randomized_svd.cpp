#include "solvers/randomized_svd.hpp"

#include <algorithm>

#include "dense/blas1.hpp"
#include "dense/gemm.hpp"
#include "sketch/sketch_right.hpp"
#include "solvers/qr.hpp"
#include "solvers/svd.hpp"
#include "sparse/ops.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// Orthonormalize the columns of y in place via Householder QR (y ← Q).
template <typename T>
void orthonormalize(DenseMatrix<T>& y) {
  const index_t m = y.rows();
  const index_t l = y.cols();
  QrFactor<T> f = qr_factorize(std::move(y));
  y.reset(m, l);
  for (index_t c = 0; c < l; ++c) {
    std::vector<T> e(static_cast<std::size_t>(m), T{0});
    e[static_cast<std::size_t>(c)] = T{1};
    apply_q(f, e.data());
    for (index_t i = 0; i < m; ++i) y(i, c) = e[static_cast<std::size_t>(i)];
  }
}

}  // namespace

template <typename T>
RandomizedSvdResult<T> randomized_svd(const CscMatrix<T>& a, index_t rank,
                                      const RandomizedSvdOptions& options) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  require(rank >= 1, "randomized_svd: rank must be >= 1");
  const index_t l = rank + options.oversample;
  require(l <= std::min(m, n),
          "randomized_svd: rank + oversample exceeds min(m, n)");

  RandomizedSvdResult<T> out;
  Timer total;

  // --- 1. Range sample Y = A·Sᵀ with the on-the-fly right-sketch.
  Timer phase;
  SketchConfig cfg;
  cfg.d = l;
  cfg.seed = options.seed;
  cfg.dist = options.dist;
  cfg.backend = options.backend;
  cfg.normalize = true;
  std::vector<T> y_rowmajor;
  sketch_right_into(cfg, a, y_rowmajor);
  out.sketch_seconds = phase.seconds();

  DenseMatrix<T> y(m, l);
  for (index_t i = 0; i < m; ++i) {
    for (index_t c = 0; c < l; ++c) {
      y(i, c) = y_rowmajor[static_cast<std::size_t>(i * l + c)];
    }
  }

  // --- 2. Power iterations with re-orthonormalization for stability.
  std::vector<T> tmp_n(static_cast<std::size_t>(n));
  for (int it = 0; it < options.power_iterations; ++it) {
    orthonormalize(y);
    for (index_t c = 0; c < l; ++c) {
      spmv_transpose(a, y.col(c), tmp_n.data());
      spmv(a, tmp_n.data(), y.col(c));
    }
  }
  orthonormalize(y);  // y is now Q (m×l, orthonormal)

  // --- 3. Project: Bᵀ = AᵀQ (n×l).
  DenseMatrix<T> bt(n, l);
  for (index_t c = 0; c < l; ++c) {
    spmv_transpose(a, y.col(c), bt.col(c));
  }

  // --- 4. Small dense SVD: Bᵀ = W Σ Zᵀ → A ≈ (Q·Z) Σ Wᵀ.
  DenseMatrix<T> bt_copy(n, l);
  for (index_t c = 0; c < l; ++c) {
    for (index_t i = 0; i < n; ++i) bt_copy(i, c) = bt(i, c);
  }
  SvdResult<T> svd = jacobi_svd(std::move(bt_copy), /*want_u=*/true);

  out.sigma.assign(svd.sigma.begin(),
                   svd.sigma.begin() + static_cast<std::ptrdiff_t>(rank));
  // V = leading `rank` columns of W (the left vectors of Bᵀ).
  out.v.reset(n, rank);
  for (index_t c = 0; c < rank; ++c) {
    for (index_t i = 0; i < n; ++i) out.v(i, c) = svd.u(i, c);
  }
  // U = Q · Z_rank.
  DenseMatrix<T> z(l, rank);
  for (index_t c = 0; c < rank; ++c) {
    for (index_t i = 0; i < l; ++i) z(i, c) = svd.v(i, c);
  }
  out.u.reset(m, rank);
  gemm(false, false, T{1}, y, z, T{0}, out.u);

  out.total_seconds = total.seconds();
  return out;
}

template RandomizedSvdResult<float> randomized_svd<float>(
    const CscMatrix<float>&, index_t, const RandomizedSvdOptions&);
template RandomizedSvdResult<double> randomized_svd<double>(
    const CscMatrix<double>&, index_t, const RandomizedSvdOptions&);

}  // namespace rsketch
