#include "solvers/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dense/blas1.hpp"

namespace rsketch {

template <typename T>
SvdResult<T> jacobi_svd(DenseMatrix<T>&& a, bool want_u, double tol,
                        int max_sweeps) {
  const index_t d = a.rows();
  const index_t n = a.cols();
  require(d >= n, "jacobi_svd: matrix must be tall (rows >= cols)");

  SvdResult<T> out;
  out.v.reset(n, n);
  for (index_t j = 0; j < n; ++j) out.v(j, j) = T{1};

  bool rotated = true;
  int sweep = 0;
  for (; sweep < max_sweeps && rotated; ++sweep) {
    rotated = false;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        T* ap = a.col(p);
        T* aq = a.col(q);
        const double alpha = static_cast<double>(dot(d, ap, ap));
        const double beta = static_cast<double>(dot(d, aq, aq));
        const double gamma = static_cast<double>(dot(d, ap, aq));
        if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            std::copysign(1.0, zeta) /
            (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        const T tc = static_cast<T>(c);
        const T ts = static_cast<T>(s);
        // Rotate the column pair in A and accumulate the same rotation in V.
#pragma omp simd
        for (index_t i = 0; i < d; ++i) {
          const T x = ap[i];
          const T y = aq[i];
          ap[i] = tc * x - ts * y;
          aq[i] = ts * x + tc * y;
        }
        T* vp = out.v.col(p);
        T* vq = out.v.col(q);
#pragma omp simd
        for (index_t i = 0; i < n; ++i) {
          const T x = vp[i];
          const T y = vq[i];
          vp[i] = tc * x - ts * y;
          vq[i] = ts * x + tc * y;
        }
      }
    }
  }
  out.sweeps = sweep;

  // Column norms are the singular values; sort descending.
  std::vector<double> norms(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    norms[static_cast<std::size_t>(j)] = nrm2(d, a.col(j));
  }
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return norms[static_cast<std::size_t>(x)] >
           norms[static_cast<std::size_t>(y)];
  });

  out.sigma.resize(static_cast<std::size_t>(n));
  DenseMatrix<T> v_sorted(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    out.sigma[static_cast<std::size_t>(j)] =
        static_cast<T>(norms[static_cast<std::size_t>(src)]);
    const T* vs = out.v.col(src);
    T* vd = v_sorted.col(j);
    for (index_t i = 0; i < n; ++i) vd[i] = vs[i];
  }
  out.v = std::move(v_sorted);

  if (want_u) {
    out.u.reset(d, n);
    for (index_t j = 0; j < n; ++j) {
      const index_t src = order[static_cast<std::size_t>(j)];
      const double nj = norms[static_cast<std::size_t>(src)];
      const T inv = nj > 0.0 ? static_cast<T>(1.0 / nj) : T{0};
      const T* as = a.col(src);
      T* ud = out.u.col(j);
      for (index_t i = 0; i < d; ++i) ud[i] = as[i] * inv;
    }
  }
  return out;
}

template struct SvdResult<float>;
template struct SvdResult<double>;
template SvdResult<float> jacobi_svd<float>(DenseMatrix<float>&&, bool, double,
                                            int);
template SvdResult<double> jacobi_svd<double>(DenseMatrix<double>&&, bool,
                                              double, int);

}  // namespace rsketch
