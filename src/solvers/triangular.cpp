#include "solvers/triangular.hpp"

namespace rsketch {

template <typename T>
void solve_upper(const DenseMatrix<T>& r, T* x) {
  const index_t n = r.cols();
  require(r.rows() >= n, "solve_upper: R must have at least n rows");
  for (index_t j = n - 1; j >= 0; --j) {
    require(r(j, j) != T{0}, "solve_upper: singular R");
    x[j] /= r(j, j);
    const T xj = x[j];
    const T* rj = r.col(j);
    for (index_t i = 0; i < j; ++i) x[i] -= rj[i] * xj;
  }
}

template <typename T>
void solve_upper_transpose(const DenseMatrix<T>& r, T* x) {
  const index_t n = r.cols();
  require(r.rows() >= n, "solve_upper_transpose: R must have at least n rows");
  for (index_t j = 0; j < n; ++j) {
    const T* rj = r.col(j);
    T s = x[j];
    for (index_t i = 0; i < j; ++i) s -= rj[i] * x[i];
    require(rj[j] != T{0}, "solve_upper_transpose: singular R");
    x[j] = s / rj[j];
  }
}

template void solve_upper<float>(const DenseMatrix<float>&, float*);
template void solve_upper<double>(const DenseMatrix<double>&, double*);
template void solve_upper_transpose<float>(const DenseMatrix<float>&, float*);
template void solve_upper_transpose<double>(const DenseMatrix<double>&,
                                            double*);

}  // namespace rsketch
