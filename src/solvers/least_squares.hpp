// Least-squares problem utilities shared by all three solver families of
// §V-C: right-hand-side construction, the paper's backward-error metric,
// and the classical LSQR-D baseline (diagonally preconditioned LSQR).
#pragma once

#include <cstdint>
#include <vector>

#include "solvers/lsqr.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// The paper's rhs: b = A·w (a vector in range(A)) plus N(0, I) noise.
template <typename T>
std::vector<T> make_least_squares_rhs(const CscMatrix<T>& a,
                                      std::uint64_t seed);

/// The paper's error metric: ‖Aᵀ(Ax − b)‖₂ / (‖A‖_F · ‖Ax − b‖₂).
/// Returns 0 when the residual is exactly zero.
template <typename T>
double ls_error_metric(const CscMatrix<T>& a, const std::vector<T>& x,
                       const std::vector<T>& b);

template <typename T>
struct IterativeSolveResult {
  std::vector<T> x;
  index_t iterations = 0;
  bool converged = false;
  double seconds = 0.0;
};

/// LSQR-D: LSQR with the diagonal column-norm preconditioner
/// D_ii = 1/‖A_i‖₂ (D_ii = 1 for negligible columns, as in §V-C1).
template <typename T>
IterativeSolveResult<T> lsqr_diag_precond(const CscMatrix<T>& a,
                                          const std::vector<T>& b,
                                          const LsqrOptions& options = {});

/// The diagonal scaling itself (exposed so Table VIII can report cond(AD)).
template <typename T>
std::vector<T> diag_precond_scales(const CscMatrix<T>& a);

/// Condition-number estimate of A·diag(scales) (or of A when scales is
/// empty) via dense Jacobi SVD of an explicitly formed matrix — only valid
/// for small test problems; cost O(m·n²).
template <typename T>
double cond_estimate(const CscMatrix<T>& a, const std::vector<T>& scales = {});

/// Plain (unpreconditioned) LSQR operator for a CSC matrix — building block
/// used by the baselines and tests.
template <typename T>
LinearOperator<T> csc_operator(const CscMatrix<T>& a);

}  // namespace rsketch
