// Underdetermined least squares (paper §V-C footnote 2: "underdetermined
// problems can be handled with minor modifications"): given a WIDE sparse
// A ∈ R^{m×n} (m < n) and a compatible b, find the minimum-norm solution
//   min ‖x‖₂  subject to  Ax = b.
//
// LSRN-style sketch-and-precondition: sketch the tall transpose,
// Â = S·Aᵀ (d = γm), factor Â = QR, and run LSQR on the row-preconditioned
// operator M = R⁻ᵀA with rhs R⁻ᵀb. M has near-orthonormal rows, and LSQR on
// a compatible underdetermined system converges to its minimum-norm
// solution — which equals the minimum-norm solution of the original system.
#pragma once

#include <vector>

#include "solvers/sap.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Solve min ‖x‖ s.t. Ax = b for wide A (m < n). Reuses SapOptions: gamma
/// scales the sketch of Aᵀ (d = ⌈γm⌉); factor must be SapFactor::QR.
template <typename T>
SapResult<T> sap_solve_minimum_norm(const CscMatrix<T>& a,
                                    const std::vector<T>& b,
                                    const SapOptions& options);

extern template SapResult<float> sap_solve_minimum_norm<float>(
    const CscMatrix<float>&, const std::vector<float>&, const SapOptions&);
extern template SapResult<double> sap_solve_minimum_norm<double>(
    const CscMatrix<double>&, const std::vector<double>&, const SapOptions&);

}  // namespace rsketch
