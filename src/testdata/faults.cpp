#include "testdata/faults.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>
#include <utility>

#include "rng/splitmix64.hpp"
#include "support/aligned_buffer.hpp"
#include "support/run_control.hpp"

namespace rsketch {
namespace faults {

std::string to_string(CscFault fault) {
  switch (fault) {
    case CscFault::ShuffledColPtr: return "shuffled_col_ptr";
    case CscFault::PointerOverrun: return "pointer_overrun";
    case CscFault::NegativeIndex: return "negative_index";
    case CscFault::IndexOutOfRange: return "index_out_of_range";
    case CscFault::UnsortedIndices: return "unsorted_indices";
    case CscFault::NanPayload: return "nan_payload";
    case CscFault::InfPayload: return "inf_payload";
  }
  return "?";
}

const std::vector<CscFault>& all_csc_faults() {
  static const std::vector<CscFault> kAll = {
      CscFault::ShuffledColPtr, CscFault::PointerOverrun,
      CscFault::NegativeIndex,  CscFault::IndexOutOfRange,
      CscFault::UnsortedIndices, CscFault::NanPayload,
      CscFault::InfPayload,
  };
  return kAll;
}

namespace {

/// Seeded pick from [0, n).
index_t pick(std::uint64_t seed, std::uint64_t salt, index_t n) {
  return static_cast<index_t>(mix3(seed, salt, 0x466175617473ULL) %
                              static_cast<std::uint64_t>(n));
}

}  // namespace

template <typename T>
CscMatrix<T> corrupt_csc(const CscMatrix<T>& a, CscFault fault,
                         std::uint64_t seed) {
  require(a.cols() >= 2 && a.nnz() >= 2,
          "corrupt_csc: need at least 2 columns and 2 stored entries");
  std::vector<index_t> ptr = a.col_ptr();
  std::vector<index_t> idx = a.row_idx();
  std::vector<T> val = a.values();

  switch (fault) {
    case CscFault::ShuffledColPtr: {
      // Swap two distinct interior pointer entries; if they happen to hold
      // the same value (empty columns), force a strict inversion instead.
      const index_t j = pick(seed, 1, a.cols() - 1) + 1;  // 1..n-1
      index_t k = pick(seed, 2, a.cols() - 1) + 1;
      if (k == j) k = (j == 1) ? 2 : j - 1;
      if (ptr[static_cast<std::size_t>(j)] == ptr[static_cast<std::size_t>(k)]) {
        ptr[static_cast<std::size_t>(std::min(j, k))] =
            ptr[static_cast<std::size_t>(std::max(j, k))] + 1;
      } else {
        std::swap(ptr[static_cast<std::size_t>(j)],
                  ptr[static_cast<std::size_t>(k)]);
      }
      break;
    }
    case CscFault::PointerOverrun:
      ptr.back() = a.nnz() + 1 + pick(seed, 3, 7);
      break;
    case CscFault::NegativeIndex:
      idx[static_cast<std::size_t>(pick(seed, 4, a.nnz()))] = -1;
      break;
    case CscFault::IndexOutOfRange:
      idx[static_cast<std::size_t>(pick(seed, 5, a.nnz()))] = a.rows();
      break;
    case CscFault::UnsortedIndices: {
      // Find a column with >= 2 entries, starting from a seeded column, and
      // reverse its first two indices (sorted ⇒ strictly increasing, so the
      // reversal is guaranteed out of order).
      const index_t start = pick(seed, 6, a.cols());
      index_t j = -1;
      for (index_t off = 0; off < a.cols(); ++off) {
        const index_t cand = (start + off) % a.cols();
        if (a.col_nnz(cand) >= 2) {
          j = cand;
          break;
        }
      }
      if (j < 0) {
        throw invalid_argument_error(
            "corrupt_csc: no column with >= 2 entries to unsort");
      }
      const std::size_t p = static_cast<std::size_t>(a.col_ptr()[j]);
      std::swap(idx[p], idx[p + 1]);
      std::swap(val[p], val[p + 1]);
      break;
    }
    case CscFault::NanPayload:
      val[static_cast<std::size_t>(pick(seed, 7, a.nnz()))] =
          std::numeric_limits<T>::quiet_NaN();
      break;
    case CscFault::InfPayload:
      val[static_cast<std::size_t>(pick(seed, 8, a.nnz()))] =
          std::numeric_limits<T>::infinity();
      break;
  }
  return CscMatrix<T>::adopt_unchecked(a.rows(), a.cols(), std::move(ptr),
                                       std::move(idx), std::move(val));
}

std::string to_string(StreamFault fault) {
  switch (fault) {
    case StreamFault::CrlfEndings: return "crlf_endings";
    case StreamFault::TrailingBlank: return "trailing_blank";
    case StreamFault::Truncated: return "truncated";
    case StreamFault::GarbageToken: return "garbage_token";
    case StreamFault::BadHeader: return "bad_header";
    case StreamFault::DuplicateEntry: return "duplicate_entry";
  }
  return "?";
}

const std::vector<StreamFault>& all_stream_faults() {
  static const std::vector<StreamFault> kAll = {
      StreamFault::CrlfEndings,  StreamFault::TrailingBlank,
      StreamFault::Truncated,    StreamFault::GarbageToken,
      StreamFault::BadHeader,    StreamFault::DuplicateEntry,
  };
  return kAll;
}

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

bool is_comment_or_blank(const std::string& line) {
  for (char c : line) {
    if (c == '%') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Index of the size line (first non-comment, non-blank line after the
/// banner). Data lines follow it.
std::size_t size_line_index(const std::vector<std::string>& lines) {
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (!is_comment_or_blank(lines[i])) return i;
  }
  throw invalid_argument_error("corrupt_stream: no size line found");
}

}  // namespace

std::string corrupt_stream(const std::string& mm_text, StreamFault fault,
                           std::uint64_t seed) {
  std::vector<std::string> lines = split_lines(mm_text);
  require(!lines.empty(), "corrupt_stream: empty input");
  const std::size_t size_line = size_line_index(lines);
  const std::size_t first_data = size_line + 1;
  const std::size_t n_data = lines.size() - first_data;

  switch (fault) {
    case StreamFault::CrlfEndings:
      for (std::string& l : lines) l += '\r';
      break;
    case StreamFault::TrailingBlank:
      lines.push_back("");
      lines.push_back("   ");
      lines.push_back("");
      break;
    case StreamFault::Truncated: {
      require(n_data >= 1, "corrupt_stream: no data lines to truncate");
      // Drop the tail: the header still advertises the full nnz.
      const std::size_t keep = static_cast<std::size_t>(
          pick(seed, 11, static_cast<index_t>(n_data)));
      lines.resize(first_data + keep);
      break;
    }
    case StreamFault::GarbageToken: {
      require(n_data >= 1, "corrupt_stream: no data lines to garble");
      const std::size_t line = first_data + static_cast<std::size_t>(pick(
                                                seed, 12,
                                                static_cast<index_t>(n_data)));
      lines[line] = "1 not_a_number 3.14";
      break;
    }
    case StreamFault::BadHeader:
      lines[0] = "%%MatrixMarket matrix coordinate real unsymmetric-ish";
      break;
    case StreamFault::DuplicateEntry: {
      require(n_data >= 1, "corrupt_stream: no data lines to duplicate");
      const std::size_t line = first_data + static_cast<std::size_t>(pick(
                                                seed, 13,
                                                static_cast<index_t>(n_data)));
      // Repeat an existing (i, j) coordinate and bump the advertised nnz so
      // the count stays consistent — the duplicate itself must be rejected.
      lines.push_back(lines[line]);
      std::istringstream is(lines[size_line]);
      long long m = 0, n = 0, nnz = 0;
      is >> m >> n >> nnz;
      std::ostringstream os;
      os << m << " " << n << " " << (nnz + 1);
      lines[size_line] = os.str();
      break;
    }
  }
  return join_lines(lines);
}

void arm_allocation_failure(long k) {
  require(k >= 1, "arm_allocation_failure: k must be >= 1");
  detail::alloc_fail_countdown.store(k, std::memory_order_relaxed);
}

void disarm_allocation_failure() {
  detail::alloc_fail_countdown.store(-1, std::memory_order_relaxed);
}

bool allocation_failure_armed() {
  return detail::alloc_fail_countdown.load(std::memory_order_relaxed) >= 0;
}

ScheduledFault::ScheduledFault() {
  detail::fake_clock_ns.store(0, std::memory_order_relaxed);
}

ScheduledFault::~ScheduledFault() {
  detail::fake_clock_ns.store(-1, std::memory_order_relaxed);
  disarm_allocation_failure();
}

void ScheduledFault::advance_ms(double ms) {
  require(ms >= 0.0, "ScheduledFault::advance_ms: time only moves forward");
  detail::fake_clock_ns.fetch_add(static_cast<long long>(ms * 1e6),
                                  std::memory_order_relaxed);
}

double ScheduledFault::elapsed_ms() const {
  return static_cast<double>(
             detail::fake_clock_ns.load(std::memory_order_relaxed)) /
         1e6;
}

template CscMatrix<float> corrupt_csc<float>(const CscMatrix<float>&, CscFault,
                                             std::uint64_t);
template CscMatrix<double> corrupt_csc<double>(const CscMatrix<double>&,
                                               CscFault, std::uint64_t);

}  // namespace faults
}  // namespace rsketch
