// Deterministic fault injectors for the robustness test suite.
//
// Every injector takes a seed and produces the same corruption for the same
// (input, fault, seed) triple, so a failing test names a reproducible case.
// Structural corruptions bypass the validating CscMatrix constructor via
// adopt_unchecked — exactly the path a buggy builder or a bit-flipped file
// would take — and are expected to be caught by sparse/validate.hpp, never
// by a crash. See docs/ROBUSTNESS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csc.hpp"

namespace rsketch {
namespace faults {

/// Structural / numeric corruptions of a CSC matrix.
enum class CscFault {
  ShuffledColPtr,   ///< two interior col_ptr entries swapped → non-monotone
  PointerOverrun,   ///< final col_ptr entry raised past nnz
  NegativeIndex,    ///< one row index set to -1
  IndexOutOfRange,  ///< one row index set to rows()
  UnsortedIndices,  ///< two indices inside one column swapped
  NanPayload,       ///< one stored value replaced by quiet NaN
  InfPayload,       ///< one stored value replaced by +Inf
};

std::string to_string(CscFault fault);

/// Every CscFault, for parameterized sweeps.
const std::vector<CscFault>& all_csc_faults();

/// True for the faults that only damage the numeric payload: the matrix stays
/// structurally valid and validate_csc reports structurally_valid() == true.
inline bool is_value_fault(CscFault fault) {
  return fault == CscFault::NanPayload || fault == CscFault::InfPayload;
}

/// Return a corrupted copy of `a`. The victim column/entry is chosen from
/// `seed`; requires a matrix with at least 2 columns and 2 stored entries
/// (and ≥2 entries in some column for UnsortedIndices — the chooser walks
/// from the seeded start to find one, throwing invalid_argument_error if the
/// matrix has no such column).
template <typename T>
CscMatrix<T> corrupt_csc(const CscMatrix<T>& a, CscFault fault,
                         std::uint64_t seed);

/// Corruptions of a Matrix Market text stream. The first two are tolerance
/// checks (the reader must PARSE them), the rest must be rejected with
/// io_error.
enum class StreamFault {
  CrlfEndings,     ///< every \n becomes \r\n — must still parse
  TrailingBlank,   ///< blank/whitespace lines appended — must still parse
  Truncated,       ///< stream cut off before the advertised nnz entries
  GarbageToken,    ///< a numeric token replaced with letters
  BadHeader,       ///< banner mangled
  DuplicateEntry,  ///< one coordinate line repeated — silent summing forbidden
};

std::string to_string(StreamFault fault);

const std::vector<StreamFault>& all_stream_faults();

/// True when the reader is expected to accept the corrupted stream.
inline bool is_tolerated(StreamFault fault) {
  return fault == StreamFault::CrlfEndings ||
         fault == StreamFault::TrailingBlank;
}

/// Return a corrupted copy of a Matrix Market text blob.
std::string corrupt_stream(const std::string& mm_text, StreamFault fault,
                           std::uint64_t seed);

/// Arm the AlignedBuffer allocation-failure hook: the k-th subsequent
/// allocation (k ≥ 1) throws std::bad_alloc, then the hook disarms itself.
void arm_allocation_failure(long k);

/// Disarm the hook without waiting for it to fire.
void disarm_allocation_failure();

bool allocation_failure_armed();

/// RAII guard: arms on construction, disarms on destruction (whether or not
/// the failure fired), so a throwing test body cannot leak an armed hook
/// into later tests.
class ScopedAllocationFailure {
 public:
  explicit ScopedAllocationFailure(long k) { arm_allocation_failure(k); }
  ~ScopedAllocationFailure() { disarm_allocation_failure(); }
  ScopedAllocationFailure(const ScopedAllocationFailure&) = delete;
  ScopedAllocationFailure& operator=(const ScopedAllocationFailure&) = delete;
};

/// RAII shim that puts the run-control layer on a deterministic schedule:
/// construction freezes RunControl's clock at t = 0 (every deadline check
/// reads the fake clock instead of the steady clock) and the test advances
/// time explicitly. fail_allocation(k) arms the same AlignedBuffer hook as
/// ScopedAllocationFailure. Destruction restores the real clock and disarms
/// the hook, so a throwing test body cannot leak either into later tests.
///
/// Not for concurrent use from multiple test threads: the underlying clock
/// and countdown are process-global.
class ScheduledFault {
 public:
  ScheduledFault();
  ~ScheduledFault();
  ScheduledFault(const ScheduledFault&) = delete;
  ScheduledFault& operator=(const ScheduledFault&) = delete;

  /// Move the fake clock forward; deadlines armed before the call expire
  /// once the cumulative advance passes them.
  void advance_ms(double ms);
  void advance_seconds(double s) { advance_ms(s * 1e3); }

  /// Current fake time since construction, in milliseconds.
  double elapsed_ms() const;

  /// The k-th subsequent AlignedBuffer allocation (k >= 1) throws
  /// std::bad_alloc, then the hook disarms itself.
  void fail_allocation(long k) { arm_allocation_failure(k); }
};

extern template CscMatrix<float> corrupt_csc<float>(const CscMatrix<float>&,
                                                    CscFault, std::uint64_t);
extern template CscMatrix<double> corrupt_csc<double>(const CscMatrix<double>&,
                                                      CscFault, std::uint64_t);

}  // namespace faults
}  // namespace rsketch
