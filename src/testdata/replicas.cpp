#include "testdata/replicas.hpp"

#include <algorithm>
#include <cmath>

#include "rng/xoshiro.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generate.hpp"

namespace rsketch {

namespace {

constexpr std::uint64_t kReplicaSeed = 0x5EED0DA7A;

index_t scaled(index_t v, index_t s, index_t floor_v = 1) {
  return std::max<index_t>(floor_v, v / s);
}

}  // namespace

const std::vector<SpmmReplicaInfo>& spmm_replica_infos() {
  static const std::vector<SpmmReplicaInfo> infos = {
      {"mk-12", 4455, 13860, 1485, 41580},
      {"ch7-9-b3", 52920, 105840, 17640, 423360},
      {"shar_te2-b2", 51480, 200200, 17160, 600600},
      {"mesh_deform", 28179, 234023, 9393, 853829},
      {"cis-n4c6-b4", 17910, 20058, 5970, 100290},
  };
  return infos;
}

template <typename T>
CscMatrix<T> make_spmm_replica(const std::string& name, index_t scale) {
  require(scale >= 1, "make_spmm_replica: scale must be >= 1");
  for (const auto& info : spmm_replica_infos()) {
    if (info.name != name) continue;
    const index_t m = scaled(info.m, scale);
    const index_t n = scaled(info.n, scale);
    // Per-column count of the original (simplicial boundary matrices have a
    // fixed entry count per column).
    const index_t k = std::max<index_t>(
        1, std::min(m, (info.nnz + info.n - 1) / info.n));
    if (name == "mesh_deform") {
      // Mesh deformation matrices are band-local; replicate with a band of
      // ~2% of the rows around the scaled diagonal.
      const index_t band = std::max<index_t>(k, m / 50);
      const double density = static_cast<double>(k) / static_cast<double>(m);
      return banded_sparse<T>(m, n, band, density, kReplicaSeed);
    }
    return fixed_nnz_per_col<T>(m, n, k, kReplicaSeed + info.d);
  }
  throw invalid_argument_error("make_spmm_replica: unknown dataset '" + name +
                               "'");
}

index_t spmm_replica_d(const std::string& name, index_t scale) {
  for (const auto& info : spmm_replica_infos()) {
    if (info.name == name) return 3 * scaled(info.n, scale);
  }
  throw invalid_argument_error("spmm_replica_d: unknown dataset '" + name +
                               "'");
}

const std::vector<LsReplicaInfo>& ls_replica_infos() {
  // Dimensions after the paper's transposition (m is the long axis).
  static const std::vector<LsReplicaInfo> infos = {
      {"rail2586", 923269, 2586, 8011362, 496.00, false},
      {"spal_004", 321696, 10203, 46168124, 39389.87, false},
      {"rail4284", 1096894, 4284, 11284032, 399.78, false},
      {"rail582", 56097, 582, 402290, 185.91, false},
      {"specular", 477976, 1442, 7647040, 2.31e14, true},
      {"connectus", 394792, 458, 1127525, 1.27e16, true},
      {"landmark", 71952, 2704, 1146848, 1.39e18, true},
  };
  return infos;
}

namespace {

/// The paper drops empty columns/rows from its test matrices ("we removed
/// 158 empty columns from specular"); the replicas instead guarantee every
/// column is structurally nonempty by injecting one entry where needed, so
/// the QR-based solvers stay well-posed at any scale.
CscMatrix<double> ensure_no_empty_cols(const CscMatrix<double>& a,
                                       std::uint64_t seed) {
  index_t empties = 0;
  for (index_t j = 0; j < a.cols(); ++j) empties += a.col_nnz(j) == 0;
  if (empties == 0) return a;
  Xoshiro256pp g(seed);
  CooMatrix<double> coo(a.rows(), a.cols());
  coo.reserve(a.nnz() + empties);
  for (index_t j = 0; j < a.cols(); ++j) {
    if (a.col_nnz(j) == 0) {
      const auto row = static_cast<index_t>(
          g.next() % static_cast<std::uint64_t>(a.rows()));
      const double v = static_cast<double>(static_cast<std::int64_t>(g.next())) *
                       (1.0 / 9223372036854775808.0);
      coo.push(row, j, v);
      continue;
    }
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(j)];
         p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      coo.push(a.row_idx()[static_cast<std::size_t>(p)], j,
               a.values()[static_cast<std::size_t>(p)]);
    }
  }
  return coo_to_csc(coo);
}

/// Tall matrix with a SMOOTHLY spread spectrum of condition number
/// ~cond_target that diagonal column scaling cannot repair — the property
/// that makes the rail/spal problems expensive for LSQR-D (Table IX: 477 to
/// 4830 iterations) while SAP's sketch preconditioner is indifferent to it.
/// Construction: a shifted 1-D Laplacian block (eigenvalues spread over
/// [γ, 4+γ], no clustering for Krylov methods to exploit) on the first n
/// rows, plus uniform random sparsity below to reach the target density.
CscMatrix<double> spread_spectrum_tall(index_t m, index_t n, double density,
                                       double cond_target,
                                       std::uint64_t seed) {
  const double gamma = 4.0 / std::max(cond_target - 1.0, 1.5);
  CooMatrix<double> coo(m, n);
  for (index_t j = 0; j < n; ++j) {
    if (j > 0) coo.push(j - 1, j, -1.0);
    coo.push(j, j, 2.0 + gamma);
    if (j + 1 < n) coo.push(j + 1, j, -1.0);
  }
  // Low-amplitude random filler in the remaining rows: supplies the nnz
  // budget and the tall aspect without disturbing the planted spectrum.
  // FᵀF adds ≈ k·a²/3 to every squared singular value (k = expected filler
  // nonzeros per column), so the amplitude a is chosen to keep that floor
  // two orders of magnitude below the planted σ²min = γ².
  if (m > n) {
    const double k =
        std::max(1.0, density * static_cast<double>(m - n));
    const double amplitude = gamma * std::sqrt(0.03 / k);
    const auto filler = random_sparse<double>(m - n, n, density, seed);
    for (index_t j = 0; j < n; ++j) {
      for (index_t p = filler.col_ptr()[static_cast<std::size_t>(j)];
           p < filler.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
        coo.push(n + filler.row_idx()[static_cast<std::size_t>(p)], j,
                 amplitude * filler.values()[static_cast<std::size_t>(p)]);
      }
    }
  }
  return coo_to_csc(coo);
}

}  // namespace

CscMatrix<double> make_ls_replica(const std::string& name, index_t scale) {
  require(scale >= 1, "make_ls_replica: scale must be >= 1");
  for (const auto& info : ls_replica_infos()) {
    if (info.name != name) continue;
    const index_t n = scaled(info.n, scale, /*floor=*/8);
    // Keep the problem strictly overdetermined at any scale.
    const index_t m =
        std::max(scaled(info.m, scale * scale, /*floor=*/64), 4 * n);
    const double density =
        static_cast<double>(info.nnz) /
        (static_cast<double>(info.m) * static_cast<double>(info.n));
    const std::uint64_t seed = kReplicaSeed ^ (info.m * 2654435761ULL);

    if (name == "specular") {
      // cond(A) ~ 1e14 entirely from column scaling: cond(AD) is benign.
      CscMatrix<double> base = ensure_no_empty_cols(
          random_sparse<double>(m, n, density, seed), seed + 9);
      return scale_columns_log_uniform(base, -7.0, 7.0, seed + 1);
    }
    if (name == "connectus") {
      // Near-duplicate columns: ill-conditioning survives diagonal scaling.
      const index_t ndup = std::max<index_t>(2, n / 8);
      CscMatrix<double> base = ensure_no_empty_cols(
          random_sparse<double>(m, n - ndup, density, seed), seed + 9);
      return append_near_duplicate_cols(base, ndup, 1e-14, seed + 1);
    }
    if (name == "landmark") {
      // Both pathologies: duplicates plus strong column scaling.
      const index_t ndup = std::max<index_t>(2, n / 10);
      CscMatrix<double> base = ensure_no_empty_cols(
          random_sparse<double>(m, n - ndup, density, seed), seed + 9);
      base = scale_columns_log_uniform(base, -4.0, 4.0, seed + 1);
      return append_near_duplicate_cols(base, ndup, 1e-13, seed + 2);
    }
    // rail* / spal_004: moderately conditioned but with a smoothly spread
    // spectrum (their Table VIII cond(AD) stays in the hundreds-thousands,
    // which is why LSQR-D needs 477-4830 iterations there).
    const double cond_ad =
        name == "rail2586" ? 263.44
        : name == "spal_004" ? 1147.79
        : name == "rail4284" ? 333.87
                             : 180.49;  // rail582
    return spread_spectrum_tall(m, n, density, cond_ad, seed);
  }
  throw invalid_argument_error("make_ls_replica: unknown dataset '" + name +
                               "'");
}

template CscMatrix<float> make_spmm_replica<float>(const std::string&,
                                                   index_t);
template CscMatrix<double> make_spmm_replica<double>(const std::string&,
                                                     index_t);

}  // namespace rsketch
