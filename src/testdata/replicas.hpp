// Synthetic replicas of the paper's SuiteSparse test matrices (Tables I and
// VIII). The originals are not shipped here; each replica matches the
// original's (scaled) shape, nonzero budget, and the structural property
// that drives its behaviour in the experiments — fixed per-column counts for
// the simplicial boundary matrices, banded locality for mesh_deform, extreme
// column scaling for specular, near-duplicate columns for connectus /
// landmark. See DESIGN.md §2.
//
// `scale` divides the paper's dimensions: SpMM replicas use (m/s, n/s) with
// the paper's density; least-squares replicas use (m/s², n/s) to keep the
// m ≫ n aspect while bounding direct-solver cost. scale=1 reproduces the
// paper-size problems.
#pragma once

#include <string>
#include <vector>

#include "sparse/csc.hpp"

namespace rsketch {

/// Paper-scale metadata of one SpMM benchmark matrix (Table I).
struct SpmmReplicaInfo {
  std::string name;
  index_t d = 0;  ///< sketch rows, d = 3n
  index_t m = 0;
  index_t n = 0;
  index_t nnz = 0;
};

/// The five Table I datasets, paper-scale metadata.
const std::vector<SpmmReplicaInfo>& spmm_replica_infos();

/// Build the (scaled) replica of the named Table I matrix. Deterministic.
template <typename T>
CscMatrix<T> make_spmm_replica(const std::string& name, index_t scale);

/// Sketch size for a replica at this scale (d = 3·n_scaled, as in Table I).
index_t spmm_replica_d(const std::string& name, index_t scale);

/// Paper-scale metadata of one least-squares matrix (Table VIII), after the
/// paper's transposition of wide inputs (m is always the long axis here).
struct LsReplicaInfo {
  std::string name;
  index_t m = 0;  ///< rows after transposition
  index_t n = 0;
  index_t nnz = 0;
  double paper_cond = 0.0;    ///< cond(A) reported in Table VIII
  bool use_svd = false;       ///< paper pairs this matrix with SAP-SVD
};

/// The seven Table VIII datasets, paper-scale metadata.
const std::vector<LsReplicaInfo>& ls_replica_infos();

/// Build the (scaled) replica of the named Table VIII matrix (double
/// precision — the conditioning profiles exceed float range).
CscMatrix<double> make_ls_replica(const std::string& name, index_t scale);

}  // namespace rsketch
