// Batched ("SIMD") Xoshiro256++: eight independent lanes stepped in lockstep
// inside plain loops the compiler auto-vectorizes (AVX2: 4×64-bit per vector;
// AVX-512: 8). This mirrors the SIMD Xoshiro the paper uses via
// RandomNumbers.jl / SIMDxorshift and is the fast path for filling the
// regenerated column v of S.
#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"
#include "support/common.hpp"

namespace rsketch {

/// Eight-lane Xoshiro256++ with structure-of-arrays state.
///
/// Lane l of the batch is an independent Xoshiro stream derived from
/// (seed, r, j, l); a bulk fill interleaves lane outputs, so the produced
/// stream is a pure function of (seed, r, j) — exactly the block-checkpoint
/// reproducibility contract of the scalar generator.
class XoshiroBatch {
 public:
  static constexpr int kLanes = 8;

  explicit XoshiroBatch(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    derive_state(mix3(seed_, 0, 0));
  }

  /// O(1) checkpoint seek; see Xoshiro256pp::set_state.
  void set_state(std::uint64_t r, std::uint64_t j) {
    derive_state(mix3(seed_, r, j));
  }

  /// Produce one 64-bit output per lane into out[0..kLanes).
  inline void next8(std::uint64_t* out) {
    // Plain elementwise loops over the 8 lanes; with -O2 -march=native GCC
    // vectorizes each into a couple of AVX instructions.
    for (int l = 0; l < kLanes; ++l) {
      out[l] = rotl(s0_[l] + s3_[l], 23) + s0_[l];
    }
    for (int l = 0; l < kLanes; ++l) {
      const std::uint64_t t = s1_[l] << 17;
      s2_[l] ^= s0_[l];
      s3_[l] ^= s1_[l];
      s1_[l] ^= s2_[l];
      s0_[l] ^= s3_[l];
      s2_[l] ^= t;
      s3_[l] = rotl(s3_[l], 45);
    }
  }

  /// Batch fill into caller-provided lanes: `nbatches` consecutive batch
  /// steps written raw (lane-interleaved, untransformed) into
  /// out[0 .. nbatches*kLanes). Exactly the words for_each_batch() hands its
  /// callback — the SIMD micro-kernels consume the callback form directly;
  /// this form serves callers that want the raw lane words (external
  /// transforms, tests pinning the stream-consumption order).
  void fill_lanes(std::uint64_t* out, index_t nbatches) {
    for_each_batch(nbatches, [&](const std::uint64_t* w, index_t c) {
      for (int l = 0; l < kLanes; ++l) out[c * kLanes + l] = w[l];
    });
  }

  /// Fill out[0..n) with 64-bit outputs (lane-interleaved); the tail of the
  /// final batch of 8 is discarded, keeping the stream a function of the
  /// checkpoint only (not of n's residue history).
  void fill_u64(std::uint64_t* out, index_t n) {
    const index_t full = n / kLanes;
    fill_lanes(out, full);
    if (full * kLanes < n) {
      std::uint64_t tail[kLanes];
      next8(tail);
      for (index_t i = full * kLanes, l = 0; i < n; ++i, ++l) {
        out[i] = tail[l];
      }
    }
  }

  /// Bulk generation hot path: run `count` batch steps with the lane state
  /// hoisted into locals (AVX-512: four zmm registers) instead of paying a
  /// 64-word memory round-trip per next8() call. fn(words, c) receives the
  /// c-th batch of 8 outputs. State is written back afterwards, so mixing
  /// with next8() stays consistent.
  template <typename Fn>
  inline void for_each_batch(index_t count, Fn&& fn) {
    alignas(64) std::uint64_t a0[kLanes], a1[kLanes], a2[kLanes], a3[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      a0[l] = s0_[l];
      a1[l] = s1_[l];
      a2[l] = s2_[l];
      a3[l] = s3_[l];
    }
    alignas(64) std::uint64_t out[kLanes];
    for (index_t c = 0; c < count; ++c) {
#pragma omp simd aligned(a0, a1, a2, a3, out : 64)
      for (int l = 0; l < kLanes; ++l) {
        out[l] = rotl(a0[l] + a3[l], 23) + a0[l];
        const std::uint64_t t = a1[l] << 17;
        a2[l] ^= a0[l];
        a3[l] ^= a1[l];
        a1[l] ^= a2[l];
        a0[l] ^= a3[l];
        a2[l] ^= t;
        a3[l] = rotl(a3[l], 45);
      }
      fn(static_cast<const std::uint64_t*>(out), c);
    }
    for (int l = 0; l < kLanes; ++l) {
      s0_[l] = a0[l];
      s1_[l] = a1[l];
      s2_[l] = a2[l];
      s3_[l] = a3[l];
    }
  }

 private:
  void derive_state(std::uint64_t base) {
    for (int l = 0; l < kLanes; ++l) {
      std::uint64_t sm = base + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(l + 1);
      s0_[l] = splitmix64_next(sm);
      s1_[l] = splitmix64_next(sm);
      s2_[l] = splitmix64_next(sm);
      s3_[l] = splitmix64_next(sm);
    }
  }

  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_ = 0;
  alignas(64) std::uint64_t s0_[kLanes] = {};
  alignas(64) std::uint64_t s1_[kLanes] = {};
  alignas(64) std::uint64_t s2_[kLanes] = {};
  alignas(64) std::uint64_t s3_[kLanes] = {};
};

}  // namespace rsketch
