// Distribution transforms and the SketchSampler — the component that turns a
// raw bit generator into columns of the virtual random matrix S (§III-C,
// §IV-B of the paper).
//
// The sketching kernels never see S as stored data; they ask the sampler to
// overwrite a small vector v with S[r : r+n, j]. The produced values are a
// pure function of (seed, r, j) for the Xoshiro backends (block-checkpoint
// reproducibility) and of (seed, row, j) per entry for the Philox backend
// (blocking-independent reproducibility, RandBLAS-style).
#pragma once

#include <cstdint>
#include <string>

#include "dense/microkernel.hpp"
#include "rng/philox.hpp"
#include "rng/xoshiro.hpp"
#include "rng/xoshiro_batch.hpp"
#include "support/common.hpp"

namespace rsketch {

/// Entry distribution for S (paper Fig. 4 studies all five).
enum class Dist {
  PmOne,          ///< iid uniform over {-1, +1}; cheapest (one byte per sample)
  Uniform,        ///< iid uniform over (-1, 1); int32 scaled by 2^-31
  UniformScaled,  ///< the "scaling trick": raw int32 values; A is pre-scaled
                  ///< by f = 2^-31 so (Sf)(A/f) = SA without per-sample scaling
  Gaussian,       ///< iid N(0,1) via Box–Muller; expensive on the fly
  Junk            ///< deterministic affine filler (h ~ 0); upper-bound ablation
};

/// Bit-generator backend used to realize the stream.
enum class RngBackend {
  Xoshiro,       ///< scalar Xoshiro256++, block checkpoints
  XoshiroBatch,  ///< 8-lane batched Xoshiro256++, block checkpoints (default)
  Philox         ///< Philox4x32-10 counter-based, per-entry addressing
};

std::string to_string(Dist d);
std::string to_string(RngBackend b);

/// Scale factor f for Dist::UniformScaled: the generated integer entries
/// represent S/f, so the caller multiplies A (or the final product) by f.
inline constexpr double kScalingTrickFactor = 1.0 / 2147483648.0;  // 2^-31

/// Column sampler over the virtual sketching matrix S ∈ R^{d×m}.
///
/// fill(r, j, v, n) overwrites v[0..n) with S[r : r+n, j]. Thread safety:
/// each thread owns its own SketchSampler (they are cheap, ~300 bytes).
template <typename T>
class SketchSampler {
 public:
  SketchSampler(std::uint64_t seed, Dist dist,
                RngBackend backend = RngBackend::XoshiroBatch,
                microkernel::Isa isa = microkernel::Isa::Auto)
      : dist_(dist),
        backend_(backend),
        seed_(seed),
        scalar_(seed),
        batch_(seed),
        philox_(seed),
        isa_(microkernel::resolve(isa)),
        ops_(&microkernel::ops<T>(isa_)) {}

  /// Overwrite v[0..n) with entries S[r : r+n, j].
  void fill(index_t r, index_t j, T* v, index_t n);

  /// True when this sampler's stream runs through the chunked micro-kernel
  /// transforms, i.e. fused_axpy() is available: the batched backend with a
  /// chunk-capable distribution. Gaussian (Box–Muller) and Junk stay on the
  /// generic paths.
  bool fused_eligible() const {
    return backend_ == RngBackend::XoshiroBatch &&
           (dist_ == Dist::PmOne || dist_ == Dist::Uniform ||
            dist_ == Dist::UniformScaled);
  }

  /// Fused generate-and-axpy: out[0..n) += a * S[r : r+n, j] without ever
  /// materializing the column — Algorithm 3's "never store S" argument taken
  /// all the way into registers. Requires fused_eligible(); bitwise
  /// identical to fill() into scratch followed by mk().axpy(), consuming the
  /// generator stream in the identical chunk order.
  void fused_axpy(index_t r, index_t j, T a, T* out, index_t n);

  Dist dist() const { return dist_; }
  RngBackend backend() const { return backend_; }
  std::uint64_t seed() const { return seed_; }

  /// Resolved micro-kernel ISA tier this sampler (and the kernels driving
  /// it) dispatch through. Never Auto.
  microkernel::Isa isa() const { return isa_; }

  /// The resolved dispatch table — the kernels take their axpy/axpy_multi
  /// from here so dense updates and RNG transforms ride the same tier.
  const microkernel::Ops<T>& mk() const { return *ops_; }

  /// Total samples produced since construction / reset_counter().
  std::uint64_t samples_generated() const { return count_; }
  void reset_counter() { count_ = 0; }

 private:
  void fill_xoshiro(index_t r, index_t j, T* v, index_t n);
  void fill_batch(index_t r, index_t j, T* v, index_t n);
  void fill_philox(index_t r, index_t j, T* v, index_t n);
  void fill_junk(index_t r, index_t j, T* v, index_t n);

  Dist dist_;
  RngBackend backend_;
  std::uint64_t seed_;
  Xoshiro256pp scalar_;
  XoshiroBatch batch_;
  PhiloxStream philox_;
  microkernel::Isa isa_;
  const microkernel::Ops<T>* ops_;
  std::uint64_t count_ = 0;
};

extern template class SketchSampler<float>;
extern template class SketchSampler<double>;

/// E[s^2] for entries produced under distribution `d` — needed to normalize
/// sketches (a subspace embedding wants E[s_ij^2] = 1) and by the tests.
template <typename T>
T dist_second_moment(Dist d);

}  // namespace rsketch
