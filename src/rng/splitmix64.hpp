// SplitMix64: the standard seeding/stream-splitting mixer recommended by the
// Xoshiro authors (Blackman & Vigna). Used to expand a (seed, row, column)
// checkpoint coordinate into full generator state.
#pragma once

#include <cstdint>

namespace rsketch {

/// One SplitMix64 step: advances `state` and returns a well-mixed 64-bit
/// output. Successive calls starting from any state produce a high-quality
/// stream, which makes it ideal for deriving Xoshiro state words.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of three 64-bit words into one, used to turn the
/// (seed, r, j) block checkpoint of the paper's `g.set_state(r, j)` into a
/// single seeding word. Each input is passed through its own SplitMix64
/// round so that nearby coordinates yield uncorrelated states.
inline std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t s = a;
  std::uint64_t out = splitmix64_next(s);
  s ^= b + 0x9E3779B97F4A7C15ULL;
  out ^= splitmix64_next(s);
  s ^= c + 0xD1B54A32D192ED03ULL;
  out ^= splitmix64_next(s);
  return out;
}

}  // namespace rsketch
