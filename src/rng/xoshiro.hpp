// Xoshiro256++ and Xoshiro128++ scalar generators (Blackman & Vigna, "Scrambled
// linear pseudorandom number generators", TOMS 2021) with the paper's
// block-checkpoint seeking: `set_state(r, j)` re-derives the full state from
// the sketch seed and a block coordinate in O(1), giving reproducible random
// access into the virtual matrix S at block granularity (§IV-B of the paper).
#pragma once

#include <cstdint>

#include "rng/splitmix64.hpp"

namespace rsketch {

/// Xoshiro256++ — 256 bits of state, 64-bit output, period 2^256 - 1.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    reseed(seed);
  }

  /// Reset the state deterministically from a single seed word.
  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64_next(sm);
  }

  /// Paper's checkpoint primitive: O(1) re-derivation of the state from the
  /// sketch seed and block coordinate (r, j). All of S's entries in the
  /// column block anchored at (r, j) are then produced by sequential next()
  /// calls, so the generated values depend only on (seed, r, j).
  void set_state(std::uint64_t r, std::uint64_t j) {
    std::uint64_t sm = mix3(seed_, r, j);
    for (auto& w : s_) w = splitmix64_next(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  result_type operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// 2^128-step jump, for partitioning one stream across threads.
  void jump();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_ = 0;
  std::uint64_t s_[4] = {};
};

/// Xoshiro128++ — 128 bits of state, 32-bit output. Matches the 32-bit
/// sample width the paper uses for uniform (-1,1) entries.
class Xoshiro128pp {
 public:
  using result_type = std::uint32_t;

  explicit Xoshiro128pp(std::uint64_t seed = 0x2545F4914F6CDD1DULL) {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (int i = 0; i < 4; i += 2) {
      std::uint64_t w = splitmix64_next(sm);
      s_[i] = static_cast<std::uint32_t>(w);
      s_[i + 1] = static_cast<std::uint32_t>(w >> 32);
    }
  }

  /// See Xoshiro256pp::set_state.
  void set_state(std::uint64_t r, std::uint64_t j) {
    std::uint64_t sm = mix3(seed_, r, j);
    for (int i = 0; i < 4; i += 2) {
      std::uint64_t w = splitmix64_next(sm);
      s_[i] = static_cast<std::uint32_t>(w);
      s_[i + 1] = static_cast<std::uint32_t>(w >> 32);
    }
  }

  std::uint32_t next() {
    const std::uint32_t result = rotl(s_[0] + s_[3], 7) + s_[0];
    const std::uint32_t t = s_[1] << 9;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 11);
    return result;
  }

  result_type operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

 private:
  static std::uint32_t rotl(std::uint32_t x, int k) {
    return (x << k) | (x >> (32 - k));
  }

  std::uint64_t seed_ = 0;
  std::uint32_t s_[4] = {};
};

}  // namespace rsketch
