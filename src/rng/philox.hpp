// Philox4x32-10 counter-based RNG (Salmon et al., "Parallel random numbers:
// as easy as 1, 2, 3", SC'11) — a from-scratch re-implementation of the
// Random123 generator the paper evaluates as the reproducibility-friendly
// alternative to Xoshiro (§IV-B1, §IV-C / RandBLAS policy).
//
// Being a pure function of (key, counter), Philox gives per-ENTRY random
// access into the virtual matrix S: S[i, j] depends only on (seed, i, j) and
// is therefore independent of blocking and thread count. The price is
// ~an order of magnitude more arithmetic per sample than Xoshiro.
#pragma once

#include <array>
#include <cstdint>

#include "support/common.hpp"

namespace rsketch {

/// Stateless Philox4x32-10 bijection: 128-bit counter + 64-bit key →
/// 128 bits of output (four 32-bit words).
struct Philox4x32 {
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static constexpr int kRounds = 10;
  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

  static Counter apply(Counter ctr, Key key) {
    for (int round = 0; round < kRounds; ++round) {
      ctr = one_round(ctr, key);
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }

 private:
  static Counter one_round(const Counter& ctr, const Key& key) {
    const std::uint64_t p0 =
        static_cast<std::uint64_t>(kMul0) * ctr[0];
    const std::uint64_t p1 =
        static_cast<std::uint64_t>(kMul1) * ctr[2];
    return Counter{
        static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ key[0],
        static_cast<std::uint32_t>(p1),
        static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ key[1],
        static_cast<std::uint32_t>(p0)};
  }
};

/// Counter-based column sampler over the virtual sketching matrix S.
///
/// Entry addressing: the 32-bit quadruple produced for counter
/// (j_lo, j_hi, i_chunk, 0) covers entries S[4*i_chunk .. 4*i_chunk+3, j],
/// so any aligned run of rows in one column can be generated independently.
class PhiloxStream {
 public:
  explicit PhiloxStream(std::uint64_t seed = 0x1BD11BDAA9FC1A22ULL)
      : key_{static_cast<std::uint32_t>(seed),
             static_cast<std::uint32_t>(seed >> 32)} {}

  /// Fill out[0..n) with the 32-bit words for rows [row0, row0+n) of virtual
  /// column `col`. Unaligned row0 is handled by regenerating the partially
  /// covered leading quadruple, preserving per-entry addressability.
  void fill_u32(std::uint64_t row0, std::uint64_t col, std::uint32_t* out,
                index_t n) const {
    index_t produced = 0;
    std::uint64_t row = row0;
    while (produced < n) {
      const std::uint64_t chunk = row >> 2;
      const int offset = static_cast<int>(row & 3);
      const auto words = Philox4x32::apply(
          {static_cast<std::uint32_t>(col),
           static_cast<std::uint32_t>(col >> 32),
           static_cast<std::uint32_t>(chunk),
           static_cast<std::uint32_t>(chunk >> 32)},
          key_);
      for (int w = offset; w < 4 && produced < n; ++w) {
        out[produced++] = words[w];
        ++row;
      }
    }
  }

  /// Single entry S-word at (row, col); used by tests to pin down the
  /// per-entry addressing contract.
  std::uint32_t at(std::uint64_t row, std::uint64_t col) const {
    const std::uint64_t chunk = row >> 2;
    const auto words = Philox4x32::apply(
        {static_cast<std::uint32_t>(col), static_cast<std::uint32_t>(col >> 32),
         static_cast<std::uint32_t>(chunk),
         static_cast<std::uint32_t>(chunk >> 32)},
        key_);
    return words[row & 3];
  }

 private:
  Philox4x32::Key key_;
};

}  // namespace rsketch
