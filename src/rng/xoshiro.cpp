#include "rng/xoshiro.hpp"

namespace rsketch {

void Xoshiro256pp::jump() {
  // Jump polynomial from the reference implementation (2^128 steps).
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t t[4] = {};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

}  // namespace rsketch
