// XoshiroBatch is fully inline (hot path); this translation unit exists to
// anchor the class and catch ODR issues early.
#include "rng/xoshiro_batch.hpp"

namespace rsketch {

static_assert(XoshiroBatch::kLanes == 8, "batch width fixed at 8 lanes");

}  // namespace rsketch
