// Philox is fully inline (hot path); this TU anchors the header.
#include "rng/philox.hpp"

namespace rsketch {

static_assert(Philox4x32::kRounds == 10,
              "Philox4x32-10 is the Random123 default strength");

}  // namespace rsketch
