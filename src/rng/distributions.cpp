#include "rng/distributions.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <numbers>
#include <vector>

namespace rsketch {

std::string to_string(Dist d) {
  switch (d) {
    case Dist::PmOne: return "+-1";
    case Dist::Uniform: return "(-1,1)";
    case Dist::UniformScaled: return "(-1,1) scaling trick";
    case Dist::Gaussian: return "Gaussian";
    case Dist::Junk: return "junk";
  }
  return "?";
}

std::string to_string(RngBackend b) {
  switch (b) {
    case RngBackend::Xoshiro: return "xoshiro256++";
    case RngBackend::XoshiroBatch: return "xoshiro256++ x8";
    case RngBackend::Philox: return "philox4x32-10";
  }
  return "?";
}

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr float kInv31f = 1.0f / 2147483648.0f;      // 2^-31
constexpr double kInv53 = 1.0 / 9007199254740992.0;  // 2^-53

/// Pulls 64-bit words one at a time from a scalar Xoshiro stream.
struct ScalarStream {
  Xoshiro256pp& g;
  std::uint64_t next() { return g.next(); }
};

/// Pulls 64-bit words from the 8-lane batch generator, buffering one batch.
struct BatchStream {
  explicit BatchStream(XoshiroBatch& gen) : g(gen) {}
  XoshiroBatch& g;
  std::uint64_t buf[XoshiroBatch::kLanes];
  int pos = XoshiroBatch::kLanes;
  std::uint64_t next() {
    if (pos == XoshiroBatch::kLanes) {
      g.next8(buf);
      pos = 0;
    }
    return buf[pos++];
  }
};

template <typename T, typename Stream>
void fill_uniform(Stream& s, T* v, index_t n) {
  // One int32 per sample in EVERY precision (the paper's samples are 32-bit,
  // §III-C), so that the Uniform stream is exactly the UniformScaled stream
  // times 2^-31 regardless of T — the identity the scaling trick relies on.
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t w = s.next();
    v[i] = static_cast<T>(static_cast<std::int32_t>(w)) *
           static_cast<T>(kInv31f);
    v[i + 1] = static_cast<T>(static_cast<std::int32_t>(w >> 32)) *
               static_cast<T>(kInv31f);
  }
  if (i < n) {
    v[i] = static_cast<T>(static_cast<std::int32_t>(s.next())) *
           static_cast<T>(kInv31f);
  }
}

template <typename T, typename Stream>
void fill_uniform_scaled(Stream& s, T* v, index_t n) {
  // Raw int32 values; the caller owns the global 2^-31 scale factor.
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t w = s.next();
    v[i] = static_cast<T>(static_cast<std::int32_t>(w));
    v[i + 1] = static_cast<T>(static_cast<std::int32_t>(w >> 32));
  }
  if (i < n) v[i] = static_cast<T>(static_cast<std::int32_t>(s.next()));
}

template <typename T, typename Stream>
void fill_pm1(Stream& s, T* v, index_t n) {
  // One byte of entropy per sample (the paper's 8-bit ±1 path).
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w = s.next();
    for (int b = 0; b < 8; ++b) {
      v[i + b] = (w & 1u) ? T{1} : T{-1};
      w >>= 8;
    }
  }
  if (i < n) {
    std::uint64_t w = s.next();
    for (; i < n; ++i) {
      v[i] = (w & 1u) ? T{1} : T{-1};
      w >>= 8;
    }
  }
}

template <typename T, typename Stream>
void fill_gaussian(Stream& s, T* v, index_t n) {
  // Box–Muller on pairs of (0,1] / [0,1) uniforms built from 53-bit words.
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double u1 = (static_cast<double>(s.next() >> 11) + 1.0) * kInv53;
    const double u2 = static_cast<double>(s.next() >> 11) * kInv53;
    const double rad = std::sqrt(-2.0 * std::log(u1));
    v[i] = static_cast<T>(rad * std::cos(kTwoPi * u2));
    v[i + 1] = static_cast<T>(rad * std::sin(kTwoPi * u2));
  }
  if (i < n) {
    const double u1 = (static_cast<double>(s.next() >> 11) + 1.0) * kInv53;
    const double u2 = static_cast<double>(s.next() >> 11) * kInv53;
    v[i] = static_cast<T>(std::sqrt(-2.0 * std::log(u1)) *
                          std::cos(kTwoPi * u2));
  }
}

template <typename T, typename Stream>
void fill_dispatch(Dist dist, Stream& s, T* v, index_t n) {
  switch (dist) {
    case Dist::PmOne: fill_pm1(s, v, n); break;
    case Dist::Uniform: fill_uniform(s, v, n); break;
    case Dist::UniformScaled: fill_uniform_scaled(s, v, n); break;
    case Dist::Gaussian: fill_gaussian(s, v, n); break;
    case Dist::Junk: break;  // handled separately (no stream needed)
  }
}

}  // namespace

template <typename T>
void SketchSampler<T>::fill_junk(index_t r, index_t j, T* v, index_t n) {
  // Affine filler with O(1) setup and one add per entry — models a free RNG
  // (h -> 0) for the §V-A upper-bound experiment. Values stay in (-1, 1).
  const auto mix = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(r) * 2654435761ULL +
      static_cast<std::uint64_t>(j) * 40503ULL + seed_);
  const T x0 = static_cast<T>(static_cast<std::int32_t>(mix)) *
               static_cast<T>(kInv31f) * T{0.5};
  const T delta = static_cast<T>(9.5367431640625e-07);  // 2^-20
#pragma omp simd
  for (index_t i = 0; i < n; ++i) {
    v[i] = x0 + static_cast<T>(i) * delta;
  }
}

template <typename T>
void SketchSampler<T>::fill_xoshiro(index_t r, index_t j, T* v, index_t n) {
  scalar_.set_state(static_cast<std::uint64_t>(r),
                    static_cast<std::uint64_t>(j));
  ScalarStream s{scalar_};
  fill_dispatch(dist_, s, v, n);
}

template <typename T>
void SketchSampler<T>::fill_batch(index_t r, index_t j, T* v, index_t n) {
  batch_.set_state(static_cast<std::uint64_t>(r),
                   static_cast<std::uint64_t>(j));
  switch (dist_) {
    case Dist::PmOne:
    case Dist::Uniform:
    case Dist::UniformScaled:
      // Bulk chunked transforms, one 8-word batch per fixed-size chunk,
      // compiled per ISA tier (sketch/kernel_simd_impl.hpp) and dispatched
      // through the resolved micro-kernel table — per-sample branching and
      // per-word function calls are the difference between ~0.4 and several
      // Gsamples/s, and the tier decides the vector width.
      ops_->fill(batch_, dist_, v, n);
      return;
    case Dist::Gaussian:
    case Dist::Junk: {
      // Gaussian stays on the generic path (Box–Muller dominates anyway —
      // which is exactly the paper's Fig. 4 point); Junk never reaches here.
      BatchStream s(batch_);
      fill_dispatch(dist_, s, v, n);
      return;
    }
  }
}

template <typename T>
void SketchSampler<T>::fused_axpy(index_t r, index_t j, T a, T* out,
                                  index_t n) {
  if (n <= 0) return;
  count_ += static_cast<std::uint64_t>(n);
  batch_.set_state(static_cast<std::uint64_t>(r),
                   static_cast<std::uint64_t>(j));
  ops_->fused_axpy(batch_, dist_, a, out, n);
}

template <typename T>
void SketchSampler<T>::fill_philox(index_t r, index_t j, T* v, index_t n) {
  // Per-entry addressing: sample i of this call is a function of
  // (seed, r + i, j) only — blocking independent.
  thread_local std::vector<std::uint32_t> scratch;
  scratch.resize(static_cast<std::size_t>(n));
  philox_.fill_u32(static_cast<std::uint64_t>(r),
                   static_cast<std::uint64_t>(j), scratch.data(), n);
  switch (dist_) {
    case Dist::PmOne:
      for (index_t i = 0; i < n; ++i) v[i] = (scratch[i] & 1u) ? T{1} : T{-1};
      break;
    case Dist::Uniform:
      for (index_t i = 0; i < n; ++i) {
        v[i] = static_cast<T>(static_cast<std::int32_t>(scratch[i])) *
               static_cast<T>(kInv31f);
      }
      break;
    case Dist::UniformScaled:
      for (index_t i = 0; i < n; ++i) {
        v[i] = static_cast<T>(static_cast<std::int32_t>(scratch[i]));
      }
      break;
    case Dist::Gaussian:
      // One word per entry to preserve per-entry addressing: split the word
      // into two 16-bit uniforms and take the cosine Box–Muller branch.
      // Slightly coarser tails than the 53-bit path; fine for sketching.
      for (index_t i = 0; i < n; ++i) {
        const double u1 = (static_cast<double>(scratch[i] & 0xFFFFu) + 1.0) /
                          65536.0;
        const double u2 = static_cast<double>(scratch[i] >> 16) / 65536.0;
        v[i] = static_cast<T>(std::sqrt(-2.0 * std::log(u1)) *
                              std::cos(kTwoPi * u2));
      }
      break;
    case Dist::Junk:
      break;  // unreachable; junk bypasses the backend
  }
}

template <typename T>
void SketchSampler<T>::fill(index_t r, index_t j, T* v, index_t n) {
  if (n <= 0) return;
  count_ += static_cast<std::uint64_t>(n);
  if (dist_ == Dist::Junk) {
    fill_junk(r, j, v, n);
    return;
  }
  switch (backend_) {
    case RngBackend::Xoshiro: fill_xoshiro(r, j, v, n); break;
    case RngBackend::XoshiroBatch: fill_batch(r, j, v, n); break;
    case RngBackend::Philox: fill_philox(r, j, v, n); break;
  }
}

template <typename T>
T dist_second_moment(Dist d) {
  switch (d) {
    case Dist::PmOne: return T{1};
    case Dist::Uniform: return static_cast<T>(1.0 / 3.0);
    case Dist::UniformScaled:
      // Var of uniform int32: (2^31)^2 / 3.
      return static_cast<T>(4611686018427387904.0 / 3.0);
    case Dist::Gaussian: return T{1};
    case Dist::Junk: return static_cast<T>(1.0 / 12.0);  // rough; ablation only
  }
  return T{1};
}

template class SketchSampler<float>;
template class SketchSampler<double>;
template float dist_second_moment<float>(Dist);
template double dist_second_moment<double>(Dist);

}  // namespace rsketch
