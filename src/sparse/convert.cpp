#include "sparse/convert.hpp"

#include <algorithm>
#include <numeric>

namespace rsketch {

namespace {

/// Shared bucket-sort core: scatter (major, minor, value) triplets into a
/// compressed structure with `nmajor` buckets, summing duplicates. Returns
/// the (ptr, idx, val) arrays with minor indices sorted within each bucket.
template <typename T>
void compress(index_t nmajor, const std::vector<index_t>& major,
              const std::vector<index_t>& minor, const std::vector<T>& val,
              std::vector<index_t>& ptr, std::vector<index_t>& idx,
              std::vector<T>& out_val) {
  const std::size_t nnz = val.size();
  ptr.assign(static_cast<std::size_t>(nmajor) + 1, 0);
  for (index_t mj : major) ++ptr[static_cast<std::size_t>(mj) + 1];
  std::partial_sum(ptr.begin(), ptr.end(), ptr.begin());

  idx.resize(nnz);
  out_val.resize(nnz);
  std::vector<index_t> cursor(ptr.begin(), ptr.end() - 1);
  for (std::size_t p = 0; p < nnz; ++p) {
    const index_t dst = cursor[static_cast<std::size_t>(major[p])]++;
    idx[static_cast<std::size_t>(dst)] = minor[p];
    out_val[static_cast<std::size_t>(dst)] = val[p];
  }

  // Sort minors within each bucket and sum duplicates in place.
  index_t write = 0;
  std::vector<std::pair<index_t, T>> bucket;
  std::vector<index_t> new_ptr(ptr.size());
  new_ptr[0] = 0;
  for (index_t b = 0; b < nmajor; ++b) {
    const index_t lo = ptr[static_cast<std::size_t>(b)];
    const index_t hi = ptr[static_cast<std::size_t>(b) + 1];
    bucket.clear();
    for (index_t p = lo; p < hi; ++p) {
      bucket.emplace_back(idx[static_cast<std::size_t>(p)],
                          out_val[static_cast<std::size_t>(p)]);
    }
    std::sort(bucket.begin(), bucket.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t q = 0; q < bucket.size(); ++q) {
      if (write > new_ptr[static_cast<std::size_t>(b)] &&
          idx[static_cast<std::size_t>(write - 1)] == bucket[q].first) {
        out_val[static_cast<std::size_t>(write - 1)] += bucket[q].second;
      } else {
        idx[static_cast<std::size_t>(write)] = bucket[q].first;
        out_val[static_cast<std::size_t>(write)] = bucket[q].second;
        ++write;
      }
    }
    new_ptr[static_cast<std::size_t>(b) + 1] = write;
  }
  ptr = std::move(new_ptr);
  idx.resize(static_cast<std::size_t>(write));
  out_val.resize(static_cast<std::size_t>(write));
}

}  // namespace

template <typename T>
CscMatrix<T> coo_to_csc(const CooMatrix<T>& coo) {
  std::vector<index_t> ptr, idx;
  std::vector<T> val;
  compress(coo.cols(), coo.col_indices(), coo.row_indices(), coo.values(),
           ptr, idx, val);
  return CscMatrix<T>(coo.rows(), coo.cols(), std::move(ptr), std::move(idx),
                      std::move(val));
}

template <typename T>
CsrMatrix<T> coo_to_csr(const CooMatrix<T>& coo) {
  std::vector<index_t> ptr, idx;
  std::vector<T> val;
  compress(coo.rows(), coo.row_indices(), coo.col_indices(), coo.values(),
           ptr, idx, val);
  return CsrMatrix<T>(coo.rows(), coo.cols(), std::move(ptr), std::move(idx),
                      std::move(val));
}

template <typename T>
CsrMatrix<T> csc_to_csr(const CscMatrix<T>& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t nnz = a.nnz();
  std::vector<index_t> ptr(static_cast<std::size_t>(m) + 1, 0);
  for (index_t p = 0; p < nnz; ++p) {
    ++ptr[static_cast<std::size_t>(a.row_idx()[static_cast<std::size_t>(p)]) +
          1];
  }
  std::partial_sum(ptr.begin(), ptr.end(), ptr.begin());

  std::vector<index_t> idx(static_cast<std::size_t>(nnz));
  std::vector<T> val(static_cast<std::size_t>(nnz));
  std::vector<index_t> cursor(ptr.begin(), ptr.end() - 1);
  // Walking columns in order makes the column indices within each output row
  // automatically ascending — no per-row sort needed.
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(j)];
         p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t i = a.row_idx()[static_cast<std::size_t>(p)];
      const index_t dst = cursor[static_cast<std::size_t>(i)]++;
      idx[static_cast<std::size_t>(dst)] = j;
      val[static_cast<std::size_t>(dst)] =
          a.values()[static_cast<std::size_t>(p)];
    }
  }
  return CsrMatrix<T>(m, n, std::move(ptr), std::move(idx), std::move(val));
}

template <typename T>
CscMatrix<T> csr_to_csc(const CsrMatrix<T>& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t nnz = a.nnz();
  std::vector<index_t> ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t p = 0; p < nnz; ++p) {
    ++ptr[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(p)]) +
          1];
  }
  std::partial_sum(ptr.begin(), ptr.end(), ptr.begin());

  std::vector<index_t> idx(static_cast<std::size_t>(nnz));
  std::vector<T> val(static_cast<std::size_t>(nnz));
  std::vector<index_t> cursor(ptr.begin(), ptr.end() - 1);
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = a.row_ptr()[static_cast<std::size_t>(i)];
         p < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++p) {
      const index_t j = a.col_idx()[static_cast<std::size_t>(p)];
      const index_t dst = cursor[static_cast<std::size_t>(j)]++;
      idx[static_cast<std::size_t>(dst)] = i;
      val[static_cast<std::size_t>(dst)] =
          a.values()[static_cast<std::size_t>(p)];
    }
  }
  return CscMatrix<T>(m, n, std::move(ptr), std::move(idx), std::move(val));
}

template <typename T>
CscMatrix<T> transpose(const CscMatrix<T>& a) {
  // CSC(A) arrays reinterpreted as CSR(Aᵀ) (rows of Aᵀ = columns of A),
  // then converted back to CSC.
  CsrMatrix<T> at(a.cols(), a.rows(), a.col_ptr(), a.row_idx(), a.values());
  return csr_to_csc(at);
}

#define RSKETCH_INSTANTIATE(T)                              \
  template CscMatrix<T> coo_to_csc<T>(const CooMatrix<T>&); \
  template CsrMatrix<T> coo_to_csr<T>(const CooMatrix<T>&); \
  template CsrMatrix<T> csc_to_csr<T>(const CscMatrix<T>&); \
  template CscMatrix<T> csr_to_csc<T>(const CsrMatrix<T>&); \
  template CscMatrix<T> transpose<T>(const CscMatrix<T>&);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
