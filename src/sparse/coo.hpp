// Coordinate (triplet) sparse matrix — the assembly and I/O format.
#pragma once

#include <vector>

#include "support/common.hpp"

namespace rsketch {

/// COO sparse matrix builder. Entries may be pushed in any order; duplicates
/// are summed when converting to CSC/CSR (Matrix-Market semantics).
template <typename T>
class CooMatrix {
 public:
  CooMatrix() = default;

  CooMatrix(index_t m, index_t n) : rows_(m), cols_(n) {
    require(m >= 0 && n >= 0, "CooMatrix: negative dimension");
  }

  void reserve(index_t nnz) {
    row_.reserve(static_cast<std::size_t>(nnz));
    col_.reserve(static_cast<std::size_t>(nnz));
    val_.reserve(static_cast<std::size_t>(nnz));
  }

  /// Append one entry. Throws if the coordinate is out of range.
  void push(index_t i, index_t j, T v) {
    require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
            "CooMatrix::push: index out of range");
    row_.push_back(i);
    col_.push_back(j);
    val_.push_back(v);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(val_.size()); }

  const std::vector<index_t>& row_indices() const { return row_; }
  const std::vector<index_t>& col_indices() const { return col_; }
  const std::vector<T>& values() const { return val_; }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_;
  std::vector<index_t> col_;
  std::vector<T> val_;
};

}  // namespace rsketch
