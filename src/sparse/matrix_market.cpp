#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "sparse/convert.hpp"
#include "sparse/coo.hpp"

namespace rsketch {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Strip a trailing '\r' so files written on Windows (CRLF endings) parse
/// identically to LF files — getline only eats the '\n'.
void chomp(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

bool is_blank(const std::string& line) {
  return std::all_of(line.begin(), line.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

struct MmHeader {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

MmHeader parse_banner(const std::string& line) {
  std::istringstream iss(line);
  std::string tag, object, format, field, symmetry;
  iss >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket") {
    throw io_error("MatrixMarket: missing %%MatrixMarket banner");
  }
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    throw io_error("MatrixMarket: only 'matrix coordinate' is supported");
  }
  const std::string f = lower(field);
  if (f != "real" && f != "integer" && f != "pattern") {
    throw io_error("MatrixMarket: unsupported field type '" + field + "'");
  }
  const std::string s = lower(symmetry);
  if (s != "general" && s != "symmetric" && s != "skew-symmetric") {
    throw io_error("MatrixMarket: unsupported symmetry '" + symmetry + "'");
  }
  MmHeader h;
  h.pattern = (f == "pattern");
  h.symmetric = (s == "symmetric" || s == "skew-symmetric");
  h.skew = (s == "skew-symmetric");
  return h;
}

}  // namespace

template <typename T>
CscMatrix<T> read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw io_error("MatrixMarket: empty stream");
  chomp(line);
  const MmHeader h = parse_banner(line);

  // Skip comments and blank lines to the size line.
  do {
    if (!std::getline(in, line)) {
      throw io_error("MatrixMarket: missing size line");
    }
    chomp(line);
  } while (is_blank(line) || line[0] == '%');

  index_t m = 0, n = 0, nnz = 0;
  {
    std::istringstream iss(line);
    if (!(iss >> m >> n >> nnz) || m < 0 || n < 0 || nnz < 0) {
      throw io_error("MatrixMarket: malformed size line: " + line);
    }
  }

  CooMatrix<T> coo(m, n);
  coo.reserve(h.symmetric ? 2 * nnz : nnz);
  for (index_t k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) {
      throw io_error("MatrixMarket: unexpected end of entries");
    }
    chomp(line);
    if (is_blank(line) || line[0] == '%') {
      --k;  // tolerate stray blank/comment lines between entries
      continue;
    }
    std::istringstream iss(line);
    index_t i = 0, j = 0;
    double v = 1.0;
    if (!(iss >> i >> j)) {
      throw io_error("MatrixMarket: malformed entry: " + line);
    }
    if (!h.pattern && !(iss >> v)) {
      throw io_error("MatrixMarket: entry missing value: " + line);
    }
    if (i < 1 || i > m || j < 1 || j > n) {
      throw io_error("MatrixMarket: entry index out of range: " + line);
    }
    coo.push(i - 1, j - 1, static_cast<T>(v));
    if (h.symmetric && i != j) {
      coo.push(j - 1, i - 1, static_cast<T>(h.skew ? -v : v));
    }
  }
  CscMatrix<T> csc = coo_to_csc(coo);
  // coo_to_csc sums coincident entries, so a shrunken nnz means the file
  // listed some (i, j) twice. Silently summing duplicates corrupts matrices
  // whose writers meant "overwrite" (and masks broken writers), so reject.
  if (csc.nnz() != coo.nnz()) {
    throw io_error("MatrixMarket: duplicate (i, j) entries in input");
  }
  return csc;
}

template <typename T>
CscMatrix<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("MatrixMarket: cannot open '" + path + "'");
  return read_matrix_market<T>(in);
}

template <typename T>
void write_matrix_market(std::ostream& out, const CscMatrix<T>& a) {
  out.precision(std::numeric_limits<T>::max_digits10);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << " " << a.cols() << " " << a.nnz() << "\n";
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(j)];
         p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      out << (a.row_idx()[static_cast<std::size_t>(p)] + 1) << " " << (j + 1)
          << " " << a.values()[static_cast<std::size_t>(p)] << "\n";
    }
  }
}

template <typename T>
void write_matrix_market_file(const std::string& path, const CscMatrix<T>& a) {
  std::ofstream out(path);
  if (!out) throw io_error("MatrixMarket: cannot open '" + path + "'");
  write_matrix_market(out, a);
}

#define RSKETCH_INSTANTIATE(T)                                       \
  template CscMatrix<T> read_matrix_market<T>(std::istream&);       \
  template CscMatrix<T> read_matrix_market_file<T>(const std::string&); \
  template void write_matrix_market<T>(std::ostream&, const CscMatrix<T>&); \
  template void write_matrix_market_file<T>(const std::string&,     \
                                            const CscMatrix<T>&);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
