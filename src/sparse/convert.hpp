// Format conversions between COO, CSC and CSR, including transposition.
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace rsketch {

/// COO → CSC with duplicate coordinates summed (Matrix-Market semantics).
template <typename T>
CscMatrix<T> coo_to_csc(const CooMatrix<T>& coo);

/// COO → CSR with duplicates summed.
template <typename T>
CsrMatrix<T> coo_to_csr(const CooMatrix<T>& coo);

/// CSC → CSR of the SAME matrix (bucket-sort by row; O(m + n + nnz)).
template <typename T>
CsrMatrix<T> csc_to_csr(const CscMatrix<T>& a);

/// CSR → CSC of the same matrix.
template <typename T>
CscMatrix<T> csr_to_csc(const CsrMatrix<T>& a);

/// Transpose: CSC of Aᵀ. (Structurally: reinterpret CSC(A) arrays as CSR(Aᵀ)
/// and convert back; exposed as one call because the solvers need it.)
template <typename T>
CscMatrix<T> transpose(const CscMatrix<T>& a);

}  // namespace rsketch
