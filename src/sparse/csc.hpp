// Compressed Sparse Column matrix — the paper's default input format for A.
#pragma once

#include <utility>
#include <vector>

#include "support/common.hpp"

namespace rsketch {

/// CSC sparse matrix: column j's nonzeros live at positions
/// [col_ptr[j], col_ptr[j+1]) of row_idx / values, with row indices sorted
/// ascending within each column (enforced by validate()).
template <typename T>
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Empty (all-zero) m×n matrix.
  CscMatrix(index_t m, index_t n)
      : rows_(m), cols_(n), col_ptr_(static_cast<std::size_t>(n) + 1, 0) {
    require(m >= 0 && n >= 0, "CscMatrix: negative dimension");
  }

  /// Adopt raw CSC arrays. Throws invalid_argument_error on structural
  /// inconsistency (see validate()).
  CscMatrix(index_t m, index_t n, std::vector<index_t> col_ptr,
            std::vector<index_t> row_idx, std::vector<T> values)
      : rows_(m),
        cols_(n),
        col_ptr_(std::move(col_ptr)),
        row_idx_(std::move(row_idx)),
        values_(std::move(values)) {
    validate();
  }

  /// Adopt raw arrays WITHOUT validation. For internal builders whose output
  /// is correct by construction, and for the fault-injection harness (which
  /// deliberately assembles broken structures to exercise the validators in
  /// sparse/validate.hpp). Anything else should use the checked constructor.
  static CscMatrix adopt_unchecked(index_t m, index_t n,
                                   std::vector<index_t> col_ptr,
                                   std::vector<index_t> row_idx,
                                   std::vector<T> values) {
    CscMatrix a;
    a.rows_ = m;
    a.cols_ = n;
    a.col_ptr_ = std::move(col_ptr);
    a.row_idx_ = std::move(row_idx);
    a.values_ = std::move(values);
    return a;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  double density() const {
    return rows_ == 0 || cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     (static_cast<double>(rows_) * static_cast<double>(cols_));
  }

  const std::vector<index_t>& col_ptr() const { return col_ptr_; }
  const std::vector<index_t>& row_idx() const { return row_idx_; }
  const std::vector<T>& values() const { return values_; }
  std::vector<T>& values() { return values_; }

  /// Number of nonzeros in column j.
  index_t col_nnz(index_t j) const { return col_ptr_[j + 1] - col_ptr_[j]; }

  /// O(col_nnz) random access; intended for tests and small problems.
  T at(index_t i, index_t j) const {
    require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
            "CscMatrix::at: index out of range");
    for (index_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      if (row_idx_[p] == i) return values_[p];
    }
    return T{0};
  }

  /// Multiply every stored value by `s` in place (used by the scaling trick).
  void scale(T s) {
    for (auto& v : values_) v *= s;
  }

  /// Bytes needed for this CSC representation (paper Table VIII "mem(A)").
  std::size_t memory_bytes() const {
    return col_ptr_.size() * sizeof(index_t) +
           row_idx_.size() * sizeof(index_t) + values_.size() * sizeof(T);
  }

  /// Structural validation: monotone col_ptr covering all values, in-range
  /// strictly-ascending row indices per column. Throws on violation.
  void validate() const {
    require(rows_ >= 0 && cols_ >= 0, "CscMatrix: negative dimension");
    require(static_cast<index_t>(col_ptr_.size()) == cols_ + 1,
            "CscMatrix: col_ptr size must be cols+1");
    require(col_ptr_.front() == 0, "CscMatrix: col_ptr[0] must be 0");
    require(col_ptr_.back() == static_cast<index_t>(row_idx_.size()),
            "CscMatrix: col_ptr back must equal nnz");
    require(row_idx_.size() == values_.size(),
            "CscMatrix: row_idx/values size mismatch");
    for (index_t j = 0; j < cols_; ++j) {
      require(col_ptr_[j] <= col_ptr_[j + 1],
              "CscMatrix: col_ptr not monotone");
      for (index_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
        require(row_idx_[p] >= 0 && row_idx_[p] < rows_,
                "CscMatrix: row index out of range");
        require(p == col_ptr_[j] || row_idx_[p - 1] < row_idx_[p],
                "CscMatrix: row indices must be strictly ascending");
      }
    }
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> col_ptr_{0};
  std::vector<index_t> row_idx_;
  std::vector<T> values_;
};

}  // namespace rsketch
