// Synthetic sparse matrix generators: the uniform-density model of §III-A,
// the Abnormal_A/B/C patterns of Table VI, and the structured constructions
// used to replicate the SuiteSparse test matrices (see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "sparse/csc.hpp"

namespace rsketch {

/// iid-Bernoulli(density) sparsity with U(-1,1) values — the uniformly
/// distributed sparse model the paper's analysis assumes. Deterministic in
/// `seed`. Uses geometric skip sampling, O(nnz) time.
template <typename T>
CscMatrix<T> random_sparse(index_t m, index_t n, double density,
                           std::uint64_t seed);

/// Exactly `k` nonzeros per column at distinct random rows (the structure of
/// simplicial boundary matrices such as mk-12 / ch7-9-b3 / cis-n4c6-b4,
/// which have a fixed entry count per column). Values U(-1,1).
template <typename T>
CscMatrix<T> fixed_nnz_per_col(index_t m, index_t n, index_t k,
                               std::uint64_t seed);

/// Band-limited random sparsity: nonzeros of column j fall within
/// `bandwidth` rows of the column's diagonal position scaled to m/n
/// (mesh-like locality, used for the mesh_deform replica).
template <typename T>
CscMatrix<T> banded_sparse(index_t m, index_t n, index_t bandwidth,
                           double density, std::uint64_t seed);

/// Table VI Abnormal_A: every `stride`-th row is fully dense, all other rows
/// are zero.
template <typename T>
CscMatrix<T> abnormal_a(index_t m, index_t n, index_t stride,
                        std::uint64_t seed);

/// Table VI Abnormal_B: a `concentration` fraction of the nonzeros lies in
/// the middle-third vertical block of columns; the remainder is uniform.
template <typename T>
CscMatrix<T> abnormal_b(index_t m, index_t n, double density,
                        double concentration, std::uint64_t seed);

/// Table VI Abnormal_C: every `stride`-th column is fully dense, all other
/// columns are zero.
template <typename T>
CscMatrix<T> abnormal_c(index_t m, index_t n, index_t stride,
                        std::uint64_t seed);

/// Rescale each column by 10^u, u ~ U(min_log10, max_log10): produces the
/// "terrible cond(A), benign cond(AD)" profile of the specular matrix.
template <typename T>
CscMatrix<T> scale_columns_log_uniform(const CscMatrix<T>& base,
                                       double min_log10, double max_log10,
                                       std::uint64_t seed);

/// Append `ndup` near-duplicate columns (existing column + eps·noise):
/// produces genuine near-rank-deficiency that survives diagonal scaling
/// (the connectus / landmark profile).
template <typename T>
CscMatrix<T> append_near_duplicate_cols(const CscMatrix<T>& base, index_t ndup,
                                        double eps, std::uint64_t seed);

}  // namespace rsketch
