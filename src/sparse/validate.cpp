#include "sparse/validate.hpp"

#include <cmath>
#include <sstream>

namespace rsketch {

const char* to_string(ValidationIssue issue) {
  switch (issue) {
    case ValidationIssue::NegativeDimension: return "negative dimension";
    case ValidationIssue::PointerSizeMismatch: return "pointer size mismatch";
    case ValidationIssue::PointerNotZeroBased: return "pointer not zero-based";
    case ValidationIssue::PointerNotMonotone: return "pointer not monotone";
    case ValidationIssue::PointerOutOfRange: return "pointer out of range";
    case ValidationIssue::PointerNnzMismatch: return "pointer/nnz mismatch";
    case ValidationIssue::ArraySizeMismatch: return "array size mismatch";
    case ValidationIssue::IndexOutOfRange: return "index out of range";
    case ValidationIssue::IndexNotSorted: return "indices not sorted";
    case ValidationIssue::NonFiniteValue: return "non-finite value";
    case ValidationIssue::BlockInconsistent: return "block inconsistent";
  }
  return "?";
}

std::string ValidationReport::summary() const {
  std::ostringstream os;
  os << structure << " " << rows << "x" << cols << " (nnz " << nnz << "): ";
  if (ok()) {
    os << "valid";
    return os.str();
  }
  os << findings_total << " violation(s)";
  if (non_finite_values > 0) {
    os << ", " << non_finite_values << " non-finite value(s)";
  }
  for (const ValidationFinding& f : findings) {
    os << "\n  [" << to_string(f.issue) << "] ";
    if (f.location >= 0) os << "at " << f.location << ": ";
    os << f.detail;
  }
  if (findings_total > static_cast<index_t>(findings.size())) {
    os << "\n  ... " << (findings_total - static_cast<index_t>(findings.size()))
       << " further finding(s) suppressed";
  }
  return os.str();
}

validation_error::validation_error(ValidationReport report)
    : invalid_argument_error(report.summary()), report_(std::move(report)) {}

template <typename T>
index_t count_non_finite(const T* values, index_t n) {
  index_t count = 0;
  for (index_t i = 0; i < n; ++i) {
    if (!std::isfinite(static_cast<double>(values[i]))) ++count;
  }
  return count;
}

namespace {

void record(ValidationReport& report, const ValidateOptions& opt,
            ValidationIssue issue, index_t location, std::string detail) {
  ++report.findings_total;
  if (static_cast<index_t>(report.findings.size()) < opt.max_findings) {
    report.findings.push_back({issue, location, std::move(detail)});
  }
}

std::string fmt2(const char* what, index_t got, const char* vs, index_t want) {
  std::ostringstream os;
  os << what << " " << got << " " << vs << " " << want;
  return os.str();
}

/// Shared core for CSC and CSR: `nmajor` compressed segments over indices in
/// [0, nminor). `major_name` labels findings ("column" / "row").
template <typename T>
void validate_compressed(ValidationReport& report, const ValidateOptions& opt,
                         index_t nmajor, index_t nminor,
                         const std::vector<index_t>& ptr,
                         const std::vector<index_t>& idx,
                         const std::vector<T>& val, const char* major_name) {
  if (report.rows < 0 || report.cols < 0) {
    record(report, opt, ValidationIssue::NegativeDimension, -1,
           fmt2("rows", report.rows, "cols", report.cols));
    return;  // nothing below is meaningful
  }
  if (idx.size() != val.size()) {
    record(report, opt, ValidationIssue::ArraySizeMismatch, -1,
           fmt2("index array", static_cast<index_t>(idx.size()),
                "vs value array", static_cast<index_t>(val.size())));
  }
  const index_t stored = static_cast<index_t>(idx.size());
  if (static_cast<index_t>(ptr.size()) != nmajor + 1) {
    record(report, opt, ValidationIssue::PointerSizeMismatch, -1,
           fmt2("pointer array size", static_cast<index_t>(ptr.size()),
                "expected", nmajor + 1));
    // A wrong-sized pointer array cannot be walked segment by segment; scan
    // values directly so NaN findings are still reported, then stop.
    if (opt.check_values) {
      report.non_finite_values =
          count_non_finite(val.data(), static_cast<index_t>(val.size()));
      for (index_t k = 0; k < report.non_finite_values; ++k) {
        record(report, opt, ValidationIssue::NonFiniteValue, -1,
               "non-finite stored value");
      }
    }
    return;
  }
  if (!ptr.empty() && ptr.front() != 0) {
    record(report, opt, ValidationIssue::PointerNotZeroBased, 0,
           fmt2("ptr[0]", ptr.front(), "expected", 0));
  }
  if (!ptr.empty() && ptr.back() != stored) {
    record(report, opt, ValidationIssue::PointerNnzMismatch, nmajor,
           fmt2("ptr back", ptr.back(), "vs stored entries", stored));
  }
  for (index_t k = 0; k < nmajor; ++k) {
    const index_t lo = ptr[static_cast<std::size_t>(k)];
    const index_t hi = ptr[static_cast<std::size_t>(k) + 1];
    if (lo < 0 || lo > stored || hi < 0 || hi > stored) {
      record(report, opt, ValidationIssue::PointerOutOfRange, k,
             fmt2("segment", lo, "..", hi));
      continue;  // cannot safely walk this segment
    }
    if (lo > hi) {
      record(report, opt, ValidationIssue::PointerNotMonotone, k,
             fmt2("ptr", lo, "> next", hi));
      continue;
    }
    for (index_t p = lo; p < hi; ++p) {
      const index_t i = idx[static_cast<std::size_t>(p)];
      if (i < 0 || i >= nminor) {
        record(report, opt, ValidationIssue::IndexOutOfRange, k,
               fmt2(major_name, k, "stores index", i));
      } else if (p > lo && idx[static_cast<std::size_t>(p - 1)] >= i) {
        record(report, opt, ValidationIssue::IndexNotSorted, k,
               fmt2(major_name, k, "index not ascending at position", p));
      }
      if (opt.check_values && p < static_cast<index_t>(val.size()) &&
          !std::isfinite(static_cast<double>(val[static_cast<std::size_t>(p)]))) {
        ++report.non_finite_values;
        record(report, opt, ValidationIssue::NonFiniteValue, k,
               fmt2(major_name, k, "non-finite value at position", p));
      }
    }
  }
}

}  // namespace

template <typename T>
ValidationReport validate_csc(const CscMatrix<T>& a,
                              const ValidateOptions& opt) {
  ValidationReport report;
  report.structure = "csc";
  report.rows = a.rows();
  report.cols = a.cols();
  report.nnz = static_cast<index_t>(a.values().size());
  validate_compressed(report, opt, a.cols(), a.rows(), a.col_ptr(),
                      a.row_idx(), a.values(), "column");
  return report;
}

template <typename T>
ValidationReport validate_csr(const CsrMatrix<T>& a,
                              const ValidateOptions& opt) {
  ValidationReport report;
  report.structure = "csr";
  report.rows = a.rows();
  report.cols = a.cols();
  report.nnz = static_cast<index_t>(a.values().size());
  validate_compressed(report, opt, a.rows(), a.cols(), a.row_ptr(),
                      a.col_idx(), a.values(), "row");
  return report;
}

template <typename T>
ValidationReport validate_blocked_csr(const BlockedCsr<T>& a,
                                      const ValidateOptions& opt) {
  ValidationReport report;
  report.structure = "blocked_csr";
  report.rows = a.rows();
  report.cols = a.cols();
  report.nnz = a.nnz();
  if (a.rows() < 0 || a.cols() < 0) {
    record(report, opt, ValidationIssue::NegativeDimension, -1,
           fmt2("rows", a.rows(), "cols", a.cols()));
    return report;
  }
  index_t covered = 0;
  for (index_t b = 0; b < a.num_blocks(); ++b) {
    const auto& blk = a.block(b);
    if (blk.col0 != covered) {
      record(report, opt, ValidationIssue::BlockInconsistent, b,
             fmt2("block col0", blk.col0, "expected", covered));
    }
    if (blk.csr.rows() != a.rows()) {
      record(report, opt, ValidationIssue::BlockInconsistent, b,
             fmt2("block rows", blk.csr.rows(), "vs matrix rows", a.rows()));
    }
    covered = blk.col0 + blk.csr.cols();
    // The conversion-time metadata feeds the jki kernel's counter
    // accounting; stale values would silently skew the telemetry.
    if (blk.nnz != blk.csr.nnz()) {
      record(report, opt, ValidationIssue::BlockInconsistent, b,
             fmt2("block nnz metadata", blk.nnz, "vs csr nnz",
                  blk.csr.nnz()));
    }
    const auto& rp = blk.csr.row_ptr();
    if (rp.size() == static_cast<std::size_t>(blk.csr.rows()) + 1) {
      index_t nonempty = 0;
      for (index_t i = 0; i < blk.csr.rows(); ++i) {
        nonempty += rp[static_cast<std::size_t>(i) + 1] >
                            rp[static_cast<std::size_t>(i)]
                        ? 1
                        : 0;
      }
      if (blk.nonempty_rows != nonempty) {
        record(report, opt, ValidationIssue::BlockInconsistent, b,
               fmt2("block nonempty_rows metadata", blk.nonempty_rows,
                    "vs recount", nonempty));
      }
    }
    ValidationReport inner;
    inner.rows = blk.csr.rows();
    inner.cols = blk.csr.cols();
    validate_compressed(inner, opt, blk.csr.rows(), blk.csr.cols(),
                        blk.csr.row_ptr(), blk.csr.col_idx(),
                        blk.csr.values(), "row");
    report.non_finite_values += inner.non_finite_values;
    report.findings_total += inner.findings_total;
    for (ValidationFinding& f : inner.findings) {
      if (static_cast<index_t>(report.findings.size()) < opt.max_findings) {
        f.detail = "block " + std::to_string(b) + ": " + f.detail;
        report.findings.push_back(std::move(f));
      }
    }
  }
  if (covered != a.cols()) {
    record(report, opt, ValidationIssue::BlockInconsistent, a.num_blocks(),
           fmt2("blocks cover", covered, "of", a.cols()));
  }
  return report;
}

namespace {

template <typename M>
void require_valid_impl(const M& a, const ValidateOptions& opt,
                        ValidationReport (*validator)(const M&,
                                                      const ValidateOptions&)) {
  ValidationReport report = validator(a, opt);
  if (!report.ok()) throw validation_error(std::move(report));
}

}  // namespace

template <typename T>
void require_valid(const CscMatrix<T>& a, const ValidateOptions& opt) {
  require_valid_impl(a, opt, &validate_csc<T>);
}
template <typename T>
void require_valid(const CsrMatrix<T>& a, const ValidateOptions& opt) {
  require_valid_impl(a, opt, &validate_csr<T>);
}
template <typename T>
void require_valid(const BlockedCsr<T>& a, const ValidateOptions& opt) {
  require_valid_impl(a, opt, &validate_blocked_csr<T>);
}

#define RSKETCH_INSTANTIATE(T)                                               \
  template index_t count_non_finite<T>(const T*, index_t);                   \
  template ValidationReport validate_csc<T>(const CscMatrix<T>&,             \
                                            const ValidateOptions&);         \
  template ValidationReport validate_csr<T>(const CsrMatrix<T>&,             \
                                            const ValidateOptions&);         \
  template ValidationReport validate_blocked_csr<T>(const BlockedCsr<T>&,    \
                                                    const ValidateOptions&); \
  template void require_valid<T>(const CscMatrix<T>&,                        \
                                 const ValidateOptions&);                    \
  template void require_valid<T>(const CsrMatrix<T>&,                        \
                                 const ValidateOptions&);                    \
  template void require_valid<T>(const BlockedCsr<T>&,                       \
                                 const ValidateOptions&);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
