#include "sparse/blocked_csr.hpp"

#include <algorithm>
#include <numeric>

namespace rsketch {

template <typename T>
typename BlockedCsr<T>::Block BlockedCsr<T>::build_block(const CscMatrix<T>& a,
                                                         index_t col0,
                                                         index_t width) {
  const index_t m = a.rows();
  const index_t nnz_lo = a.col_ptr()[static_cast<std::size_t>(col0)];
  const index_t nnz_hi = a.col_ptr()[static_cast<std::size_t>(col0 + width)];
  const index_t bnnz = nnz_hi - nnz_lo;

  // Count entries per row — the O(m) per-block memory the paper notes.
  std::vector<index_t> ptr(static_cast<std::size_t>(m) + 1, 0);
  for (index_t p = nnz_lo; p < nnz_hi; ++p) {
    ++ptr[static_cast<std::size_t>(a.row_idx()[static_cast<std::size_t>(p)]) +
          1];
  }
  std::partial_sum(ptr.begin(), ptr.end(), ptr.begin());

  std::vector<index_t> idx(static_cast<std::size_t>(bnnz));
  std::vector<T> val(static_cast<std::size_t>(bnnz));
  std::vector<index_t> cursor(ptr.begin(), ptr.end() - 1);
  // Column-order scatter keeps each row's local column indices ascending.
  for (index_t j = 0; j < width; ++j) {
    const index_t gj = col0 + j;
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(gj)];
         p < a.col_ptr()[static_cast<std::size_t>(gj) + 1]; ++p) {
      const index_t i = a.row_idx()[static_cast<std::size_t>(p)];
      const index_t dst = cursor[static_cast<std::size_t>(i)]++;
      idx[static_cast<std::size_t>(dst)] = j;  // block-local column
      val[static_cast<std::size_t>(dst)] =
          a.values()[static_cast<std::size_t>(p)];
    }
  }
  Block blk;
  blk.col0 = col0;
  blk.nnz = bnnz;
  // The row-count pass already touched every row; fold the nonempty count
  // into the same conversion instead of re-walking row_ptr per kernel call.
  for (index_t i = 0; i < m; ++i) {
    blk.nonempty_rows += ptr[static_cast<std::size_t>(i) + 1] >
                                 ptr[static_cast<std::size_t>(i)]
                             ? 1
                             : 0;
  }
  // Correct by construction from a valid CSC — skip the checked constructor's
  // O(nnz) scan, which would otherwise sit inside the timed conversion that
  // sketch_into reports as convert_seconds. Callers who distrust the source
  // validate via validate_blocked_csr() (SketchConfig::check_inputs).
  blk.csr = CsrMatrix<T>::adopt_unchecked(m, width, std::move(ptr),
                                          std::move(idx), std::move(val));
  return blk;
}

template <typename T>
BlockedCsr<T> BlockedCsr<T>::from_csc(const CscMatrix<T>& a,
                                      index_t block_cols) {
  require(block_cols >= 1, "BlockedCsr: block_cols must be >= 1");
  BlockedCsr out;
  out.rows_ = a.rows();
  out.cols_ = a.cols();
  out.block_cols_ = block_cols;
  const index_t nblocks = a.cols() == 0 ? 0 : ceil_div(a.cols(), block_cols);
  out.blocks_.reserve(static_cast<std::size_t>(nblocks));
  for (index_t b = 0; b < nblocks; ++b) {
    const index_t col0 = b * block_cols;
    const index_t width = std::min(block_cols, a.cols() - col0);
    out.blocks_.push_back(build_block(a, col0, width));
  }
  return out;
}

template <typename T>
BlockedCsr<T> BlockedCsr<T>::from_csc_parallel(const CscMatrix<T>& a,
                                               index_t block_cols) {
  require(block_cols >= 1, "BlockedCsr: block_cols must be >= 1");
  BlockedCsr out;
  out.rows_ = a.rows();
  out.cols_ = a.cols();
  out.block_cols_ = block_cols;
  const index_t nblocks = a.cols() == 0 ? 0 : ceil_div(a.cols(), block_cols);
  out.blocks_.resize(static_cast<std::size_t>(nblocks));
#pragma omp parallel for schedule(dynamic)
  for (index_t b = 0; b < nblocks; ++b) {
    const index_t col0 = b * block_cols;
    const index_t width = std::min(block_cols, a.cols() - col0);
    out.blocks_[static_cast<std::size_t>(b)] = build_block(a, col0, width);
  }
  return out;
}

template <typename T>
index_t BlockedCsr<T>::nnz() const {
  index_t total = 0;
  for (const auto& b : blocks_) total += b.csr.nnz();
  return total;
}

template <typename T>
std::size_t BlockedCsr<T>::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.csr.memory_bytes();
  return total;
}

template class BlockedCsr<float>;
template class BlockedCsr<double>;

}  // namespace rsketch
