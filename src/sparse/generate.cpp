#include "sparse/generate.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "rng/xoshiro.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"

namespace rsketch {

namespace {

double uniform01(Xoshiro256pp& g) {
  return static_cast<double>(g.next() >> 11) * (1.0 / 9007199254740992.0);
}

template <typename T>
T uniform_pm(Xoshiro256pp& g) {
  return static_cast<T>(static_cast<std::int64_t>(g.next()) *
                        (1.0 / 9223372036854775808.0));
}

/// Uniform integer in [0, bound) without modulo bias (rejection from the top).
index_t uniform_below(Xoshiro256pp& g, index_t bound) {
  const std::uint64_t b = static_cast<std::uint64_t>(bound);
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % b;
  std::uint64_t x;
  do {
    x = g.next();
  } while (x >= limit);
  return static_cast<index_t>(x % b);
}

/// Sample `k` distinct sorted values in [0, m).
std::vector<index_t> sample_distinct_sorted(Xoshiro256pp& g, index_t k,
                                            index_t m) {
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (2 * k >= m) {
    // Dense regime: reservoir-style selection sweep.
    index_t needed = k;
    for (index_t i = 0; i < m && needed > 0; ++i) {
      const index_t remaining = m - i;
      if (uniform_below(g, remaining) < needed) {
        out.push_back(i);
        --needed;
      }
    }
  } else {
    std::unordered_set<index_t> seen;
    seen.reserve(static_cast<std::size_t>(2 * k));
    while (static_cast<index_t>(out.size()) < k) {
      const index_t r = uniform_below(g, m);
      if (seen.insert(r).second) out.push_back(r);
    }
    std::sort(out.begin(), out.end());
  }
  return out;
}

}  // namespace

template <typename T>
CscMatrix<T> random_sparse(index_t m, index_t n, double density,
                           std::uint64_t seed) {
  require(m >= 0 && n >= 0, "random_sparse: negative dimension");
  require(density >= 0.0 && density <= 1.0,
          "random_sparse: density must be in [0,1]");
  Xoshiro256pp g(seed);
  std::vector<index_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> row_idx;
  std::vector<T> values;
  row_idx.reserve(static_cast<std::size_t>(density * static_cast<double>(m) *
                                           static_cast<double>(n) * 1.1) +
                  16);

  const double log1mp = density < 1.0 ? std::log1p(-density) : 0.0;
  for (index_t j = 0; j < n; ++j) {
    if (density >= 1.0) {
      for (index_t i = 0; i < m; ++i) {
        row_idx.push_back(i);
        values.push_back(uniform_pm<T>(g));
      }
    } else if (density > 0.0) {
      // Geometric skip sampling: exact iid Bernoulli(density) per entry with
      // rows emitted in ascending order, O(nnz) work.
      double i = std::floor(std::log(1.0 - uniform01(g)) / log1mp);
      while (i < static_cast<double>(m)) {
        row_idx.push_back(static_cast<index_t>(i));
        values.push_back(uniform_pm<T>(g));
        i += 1.0 + std::floor(std::log(1.0 - uniform01(g)) / log1mp);
      }
    }
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<index_t>(row_idx.size());
  }
  values.resize(row_idx.size());
  return CscMatrix<T>(m, n, std::move(col_ptr), std::move(row_idx),
                      std::move(values));
}

template <typename T>
CscMatrix<T> fixed_nnz_per_col(index_t m, index_t n, index_t k,
                               std::uint64_t seed) {
  require(k >= 0 && k <= m, "fixed_nnz_per_col: need 0 <= k <= m");
  Xoshiro256pp g(seed);
  std::vector<index_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> row_idx;
  std::vector<T> values;
  row_idx.reserve(static_cast<std::size_t>(k * n));
  values.reserve(static_cast<std::size_t>(k * n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t r : sample_distinct_sorted(g, k, m)) {
      row_idx.push_back(r);
      values.push_back(uniform_pm<T>(g));
    }
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<index_t>(row_idx.size());
  }
  return CscMatrix<T>(m, n, std::move(col_ptr), std::move(row_idx),
                      std::move(values));
}

template <typename T>
CscMatrix<T> banded_sparse(index_t m, index_t n, index_t bandwidth,
                           double density, std::uint64_t seed) {
  require(bandwidth >= 1, "banded_sparse: bandwidth must be >= 1");
  require(density >= 0.0 && density <= 1.0,
          "banded_sparse: density must be in [0,1]");
  Xoshiro256pp g(seed);
  // Per column, k = density * m nonzeros drawn inside the band around the
  // column's scaled diagonal position.
  const index_t k = std::max<index_t>(
      1, static_cast<index_t>(std::llround(density * static_cast<double>(m))));
  std::vector<index_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> row_idx;
  std::vector<T> values;
  for (index_t j = 0; j < n; ++j) {
    const index_t center =
        n <= 1 ? 0
               : static_cast<index_t>((static_cast<double>(j) /
                                       static_cast<double>(n - 1)) *
                                      static_cast<double>(m - 1));
    const index_t lo = std::max<index_t>(0, center - bandwidth);
    const index_t hi = std::min<index_t>(m, center + bandwidth + 1);
    const index_t width = hi - lo;
    const index_t kk = std::min(k, width);
    for (index_t r : sample_distinct_sorted(g, kk, width)) {
      row_idx.push_back(lo + r);
      values.push_back(uniform_pm<T>(g));
    }
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<index_t>(row_idx.size());
  }
  return CscMatrix<T>(m, n, std::move(col_ptr), std::move(row_idx),
                      std::move(values));
}

template <typename T>
CscMatrix<T> abnormal_a(index_t m, index_t n, index_t stride,
                        std::uint64_t seed) {
  require(stride >= 1, "abnormal_a: stride must be >= 1");
  Xoshiro256pp g(seed);
  std::vector<index_t> dense_rows;
  for (index_t i = 0; i < m; i += stride) dense_rows.push_back(i);
  std::vector<index_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> row_idx;
  std::vector<T> values;
  row_idx.reserve(dense_rows.size() * static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i : dense_rows) {
      row_idx.push_back(i);
      values.push_back(uniform_pm<T>(g));
    }
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<index_t>(row_idx.size());
  }
  return CscMatrix<T>(m, n, std::move(col_ptr), std::move(row_idx),
                      std::move(values));
}

template <typename T>
CscMatrix<T> abnormal_b(index_t m, index_t n, double density,
                        double concentration, std::uint64_t seed) {
  require(concentration >= 0.0 && concentration <= 1.0,
          "abnormal_b: concentration must be in [0,1]");
  Xoshiro256pp g(seed);
  const double total =
      density * static_cast<double>(m) * static_cast<double>(n);
  const index_t mid_lo = n / 3;
  const index_t mid_hi = 2 * n / 3;
  const double mid_cols = static_cast<double>(mid_hi - mid_lo);
  const double out_cols = static_cast<double>(n) - mid_cols;
  const double dens_mid =
      mid_cols > 0
          ? std::min(1.0, concentration * total / (mid_cols *
                                                   static_cast<double>(m)))
          : 0.0;
  const double dens_out =
      out_cols > 0 ? std::min(1.0, (1.0 - concentration) * total /
                                       (out_cols * static_cast<double>(m)))
                   : 0.0;
  std::vector<index_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> row_idx;
  std::vector<T> values;
  for (index_t j = 0; j < n; ++j) {
    const double d = (j >= mid_lo && j < mid_hi) ? dens_mid : dens_out;
    const index_t k = std::min<index_t>(
        m, static_cast<index_t>(std::llround(d * static_cast<double>(m))));
    for (index_t r : sample_distinct_sorted(g, k, m)) {
      row_idx.push_back(r);
      values.push_back(uniform_pm<T>(g));
    }
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<index_t>(row_idx.size());
  }
  return CscMatrix<T>(m, n, std::move(col_ptr), std::move(row_idx),
                      std::move(values));
}

template <typename T>
CscMatrix<T> abnormal_c(index_t m, index_t n, index_t stride,
                        std::uint64_t seed) {
  require(stride >= 1, "abnormal_c: stride must be >= 1");
  Xoshiro256pp g(seed);
  std::vector<index_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> row_idx;
  std::vector<T> values;
  for (index_t j = 0; j < n; ++j) {
    if (j % stride == 0) {
      for (index_t i = 0; i < m; ++i) {
        row_idx.push_back(i);
        values.push_back(uniform_pm<T>(g));
      }
    }
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<index_t>(row_idx.size());
  }
  return CscMatrix<T>(m, n, std::move(col_ptr), std::move(row_idx),
                      std::move(values));
}

template <typename T>
CscMatrix<T> scale_columns_log_uniform(const CscMatrix<T>& base,
                                       double min_log10, double max_log10,
                                       std::uint64_t seed) {
  Xoshiro256pp g(seed);
  std::vector<index_t> col_ptr = base.col_ptr();
  std::vector<index_t> row_idx = base.row_idx();
  std::vector<T> values = base.values();
  for (index_t j = 0; j < base.cols(); ++j) {
    const double u = min_log10 + (max_log10 - min_log10) * uniform01(g);
    const T s = static_cast<T>(std::pow(10.0, u));
    for (index_t p = col_ptr[static_cast<std::size_t>(j)];
         p < col_ptr[static_cast<std::size_t>(j) + 1]; ++p) {
      values[static_cast<std::size_t>(p)] *= s;
    }
  }
  return CscMatrix<T>(base.rows(), base.cols(), std::move(col_ptr),
                      std::move(row_idx), std::move(values));
}

template <typename T>
CscMatrix<T> append_near_duplicate_cols(const CscMatrix<T>& base, index_t ndup,
                                        double eps, std::uint64_t seed) {
  require(base.cols() > 0 || ndup == 0,
          "append_near_duplicate_cols: base has no columns to duplicate");
  Xoshiro256pp g(seed);
  CooMatrix<T> coo(base.rows(), base.cols() + ndup);
  coo.reserve(base.nnz() + ndup * (base.nnz() / std::max<index_t>(1, base.cols()) + 1));
  for (index_t j = 0; j < base.cols(); ++j) {
    for (index_t p = base.col_ptr()[static_cast<std::size_t>(j)];
         p < base.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      coo.push(base.row_idx()[static_cast<std::size_t>(p)], j,
               base.values()[static_cast<std::size_t>(p)]);
    }
  }
  for (index_t d = 0; d < ndup; ++d) {
    const index_t src = uniform_below(g, base.cols());
    for (index_t p = base.col_ptr()[static_cast<std::size_t>(src)];
         p < base.col_ptr()[static_cast<std::size_t>(src) + 1]; ++p) {
      const T noise = static_cast<T>(eps) * uniform_pm<T>(g);
      coo.push(base.row_idx()[static_cast<std::size_t>(p)], base.cols() + d,
               base.values()[static_cast<std::size_t>(p)] * (T{1} + noise));
    }
  }
  return coo_to_csc(coo);
}

#define RSKETCH_INSTANTIATE(T)                                              \
  template CscMatrix<T> random_sparse<T>(index_t, index_t, double,          \
                                         std::uint64_t);                    \
  template CscMatrix<T> fixed_nnz_per_col<T>(index_t, index_t, index_t,     \
                                             std::uint64_t);                \
  template CscMatrix<T> banded_sparse<T>(index_t, index_t, index_t, double, \
                                         std::uint64_t);                    \
  template CscMatrix<T> abnormal_a<T>(index_t, index_t, index_t,            \
                                      std::uint64_t);                       \
  template CscMatrix<T> abnormal_b<T>(index_t, index_t, double, double,     \
                                      std::uint64_t);                       \
  template CscMatrix<T> abnormal_c<T>(index_t, index_t, index_t,            \
                                      std::uint64_t);                       \
  template CscMatrix<T> scale_columns_log_uniform<T>(                       \
      const CscMatrix<T>&, double, double, std::uint64_t);                  \
  template CscMatrix<T> append_near_duplicate_cols<T>(                      \
      const CscMatrix<T>&, index_t, double, std::uint64_t);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
