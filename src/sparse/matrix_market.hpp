// Matrix Market (.mtx) coordinate I/O — enough of the format to load the
// SuiteSparse collection matrices the paper benchmarks (coordinate
// real/integer/pattern, general or symmetric).
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csc.hpp"

namespace rsketch {

/// Parse a Matrix Market coordinate stream into CSC. Supports field types
/// real/integer/pattern (pattern entries become 1.0) and symmetry
/// general/symmetric/skew-symmetric (mirrored entries are materialized).
/// Throws io_error on malformed input.
template <typename T>
CscMatrix<T> read_matrix_market(std::istream& in);

/// Load a .mtx file from disk. Throws io_error if the file cannot be opened
/// or parsed.
template <typename T>
CscMatrix<T> read_matrix_market_file(const std::string& path);

/// Write CSC as "matrix coordinate real general" with 1-based indices.
template <typename T>
void write_matrix_market(std::ostream& out, const CscMatrix<T>& a);

template <typename T>
void write_matrix_market_file(const std::string& path, const CscMatrix<T>& a);

}  // namespace rsketch
