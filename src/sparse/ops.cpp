#include "sparse/ops.hpp"

#include <cmath>

namespace rsketch {

template <typename T>
void spmv(const CscMatrix<T>& a, const T* x, T* y, T alpha, T beta) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (beta == T{0}) {
    for (index_t i = 0; i < m; ++i) y[i] = T{0};
  } else if (beta != T{1}) {
    for (index_t i = 0; i < m; ++i) y[i] *= beta;
  }
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_idx();
  const auto& vv = a.values();
  for (index_t j = 0; j < n; ++j) {
    const T ax = alpha * x[j];
    if (ax == T{0}) continue;
    for (index_t p = cp[static_cast<std::size_t>(j)];
         p < cp[static_cast<std::size_t>(j) + 1]; ++p) {
      y[ri[static_cast<std::size_t>(p)]] +=
          ax * vv[static_cast<std::size_t>(p)];
    }
  }
}

template <typename T>
void spmv_transpose(const CscMatrix<T>& a, const T* x, T* y, T alpha, T beta) {
  const index_t n = a.cols();
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_idx();
  const auto& vv = a.values();
#pragma omp parallel for schedule(static)
  for (index_t j = 0; j < n; ++j) {
    T dot{0};
    for (index_t p = cp[static_cast<std::size_t>(j)];
         p < cp[static_cast<std::size_t>(j) + 1]; ++p) {
      dot += vv[static_cast<std::size_t>(p)] * x[ri[static_cast<std::size_t>(p)]];
    }
    y[j] = (beta == T{0} ? T{0} : beta * y[j]) + alpha * dot;
  }
}

template <typename T>
std::vector<T> column_norms(const CscMatrix<T>& a) {
  std::vector<T> norms(static_cast<std::size_t>(a.cols()), T{0});
  for (index_t j = 0; j < a.cols(); ++j) {
    // Accumulate in double to avoid float underflow/overflow on the wildly
    // scaled columns used in the conditioning experiments.
    double s = 0.0;
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(j)];
         p < a.col_ptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      const double v = static_cast<double>(a.values()[static_cast<std::size_t>(p)]);
      s += v * v;
    }
    norms[static_cast<std::size_t>(j)] = static_cast<T>(std::sqrt(s));
  }
  return norms;
}

template <typename T>
T frobenius_norm(const CscMatrix<T>& a) {
  double s = 0.0;
  for (const T v : a.values()) {
    s += static_cast<double>(v) * static_cast<double>(v);
  }
  return static_cast<T>(std::sqrt(s));
}

template <typename T>
index_t count_empty_rows(const CscMatrix<T>& a) {
  std::vector<bool> seen(static_cast<std::size_t>(a.rows()), false);
  for (index_t r : a.row_idx()) seen[static_cast<std::size_t>(r)] = true;
  index_t empty = 0;
  for (bool s : seen) empty += s ? 0 : 1;
  return empty;
}

template <typename T>
index_t count_empty_cols(const CscMatrix<T>& a) {
  index_t empty = 0;
  for (index_t j = 0; j < a.cols(); ++j) {
    if (a.col_nnz(j) == 0) ++empty;
  }
  return empty;
}

template <typename T>
CscMatrix<T> drop_empty_cols(const CscMatrix<T>& a) {
  std::vector<index_t> col_ptr{0};
  for (index_t j = 0; j < a.cols(); ++j) {
    if (a.col_nnz(j) > 0) {
      col_ptr.push_back(a.col_ptr()[static_cast<std::size_t>(j) + 1]);
    }
  }
  // row_idx/values are untouched: removing empty columns only collapses
  // duplicate col_ptr entries.
  const index_t ncols = static_cast<index_t>(col_ptr.size()) - 1;
  return CscMatrix<T>(a.rows(), ncols, std::move(col_ptr), a.row_idx(),
                      a.values());
}

template <typename T>
CscMatrix<T> drop_empty_rows(const CscMatrix<T>& a) {
  std::vector<index_t> remap(static_cast<std::size_t>(a.rows()), -1);
  for (index_t r : a.row_idx()) remap[static_cast<std::size_t>(r)] = 0;
  index_t next = 0;
  for (auto& r : remap) {
    if (r == 0) r = next++;
  }
  std::vector<index_t> row_idx(a.row_idx().size());
  for (std::size_t p = 0; p < row_idx.size(); ++p) {
    row_idx[p] = remap[static_cast<std::size_t>(a.row_idx()[p])];
  }
  return CscMatrix<T>(next, a.cols(), a.col_ptr(), std::move(row_idx),
                      a.values());
}

#define RSKETCH_INSTANTIATE(T)                                          \
  template void spmv<T>(const CscMatrix<T>&, const T*, T*, T, T);       \
  template void spmv_transpose<T>(const CscMatrix<T>&, const T*, T*, T, \
                                  T);                                   \
  template std::vector<T> column_norms<T>(const CscMatrix<T>&);         \
  template T frobenius_norm<T>(const CscMatrix<T>&);                    \
  template index_t count_empty_rows<T>(const CscMatrix<T>&);            \
  template index_t count_empty_cols<T>(const CscMatrix<T>&);            \
  template CscMatrix<T> drop_empty_cols<T>(const CscMatrix<T>&);        \
  template CscMatrix<T> drop_empty_rows<T>(const CscMatrix<T>&);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
