// Sparse BLAS-2 style operations used by the least-squares solvers
// (LSQR needs y += A·x and x += Aᵀ·y) plus norm/structure queries.
#pragma once

#include <vector>

#include "sparse/csc.hpp"

namespace rsketch {

/// y := beta*y + alpha*A*x, A in CSC. x has length A.cols(), y A.rows().
/// OpenMP-parallel over columns is racy for CSC*vec, so this parallelizes
/// only the scaling; the per-column scatter is sequential (LSQR's SpMV is
/// not the bottleneck the paper targets).
template <typename T>
void spmv(const CscMatrix<T>& a, const T* x, T* y, T alpha = T{1},
          T beta = T{0});

/// y := beta*y + alpha*Aᵀ*x, A in CSC (gather per column — parallel-safe).
template <typename T>
void spmv_transpose(const CscMatrix<T>& a, const T* x, T* y, T alpha = T{1},
                    T beta = T{0});

/// Euclidean norm of each column of A.
template <typename T>
std::vector<T> column_norms(const CscMatrix<T>& a);

/// Frobenius norm of A.
template <typename T>
T frobenius_norm(const CscMatrix<T>& a);

/// Number of rows with no nonzero entries.
template <typename T>
index_t count_empty_rows(const CscMatrix<T>& a);

/// Number of columns with no nonzero entries.
template <typename T>
index_t count_empty_cols(const CscMatrix<T>& a);

/// Remove empty columns (paper removed 158 empty columns from "specular").
template <typename T>
CscMatrix<T> drop_empty_cols(const CscMatrix<T>& a);

/// Remove empty rows (paper removed 54 empty rows from "connectus").
template <typename T>
CscMatrix<T> drop_empty_rows(const CscMatrix<T>& a);

}  // namespace rsketch
