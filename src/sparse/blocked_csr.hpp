// Blocked CSR: the auxiliary structure required by Algorithm 4 (§II-B2,
// §III-B of the paper). The matrix is partitioned into vertical blocks of
// b_n columns; within each block the entries are stored in CSR so the kernel
// can walk nonempty rows and reuse one regenerated column of S across the
// whole row.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace rsketch {

/// Vertical-block partition of an m×n CSC matrix with per-block CSR storage.
template <typename T>
class BlockedCsr {
 public:
  /// One vertical slab A[:, col0 : col0 + csr.cols()).
  struct Block {
    index_t col0 = 0;       ///< first global column covered by this block
    CsrMatrix<T> csr;       ///< m × width slab in CSR (local column indices)
    /// Structure metadata precomputed at conversion so the jki kernel's
    /// counter accounting never re-walks row_ptr (it used to cost a second
    /// full O(m) pass per block per i-block).
    index_t nnz = 0;            ///< stored entries in this slab
    index_t nonempty_rows = 0;  ///< rows with >= 1 entry (columns of S the
                                ///< kernel regenerates per i-block)
  };

  BlockedCsr() = default;

  /// Sequential construction; cost O(⌈n/b_n⌉·m + nnz) as analyzed in §III-B.
  static BlockedCsr from_csc(const CscMatrix<T>& a, index_t block_cols);

  /// Parallel construction: blocks are built independently, one per task.
  static BlockedCsr from_csc_parallel(const CscMatrix<T>& a,
                                      index_t block_cols);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t block_cols() const { return block_cols_; }
  index_t num_blocks() const { return static_cast<index_t>(blocks_.size()); }
  const Block& block(index_t b) const {
    return blocks_[static_cast<std::size_t>(b)];
  }

  /// Cost-model metadata of block b (sketch/schedule.hpp): everything the
  /// per-block work estimator needs without touching the CSR arrays.
  index_t block_nnz(index_t b) const { return block(b).nnz; }
  index_t block_nonempty_rows(index_t b) const {
    return block(b).nonempty_rows;
  }
  index_t block_width(index_t b) const { return block(b).csr.cols(); }

  index_t nnz() const;
  std::size_t memory_bytes() const;

 private:
  static Block build_block(const CscMatrix<T>& a, index_t col0, index_t width);

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t block_cols_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace rsketch
