// Structural and numeric validators for the sparse input formats.
//
// The checked CscMatrix/CsrMatrix constructors throw on the first structural
// violation, which is right for library-internal builders but useless for
// diagnosing a bad file or a hostile producer: they stop at one finding and
// say nothing about NaN/Inf payloads. These validators instead walk the whole
// structure defensively (never dereferencing through a pointer array that has
// not itself been bounds-checked), collect every class of violation into a
// structured ValidationReport, and optionally scan values for non-finite
// entries. They are wired into sketch() behind SketchConfig::check_inputs
// (opt-in, zero cost when off) and into sketch_tool (on by default).
#pragma once

#include <string>
#include <vector>

#include "sparse/blocked_csr.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace rsketch {

/// One class of structural or numeric violation.
enum class ValidationIssue {
  NegativeDimension,    ///< rows or cols < 0
  PointerSizeMismatch,  ///< ptr array is not (major dimension)+1 long
  PointerNotZeroBased,  ///< ptr[0] != 0
  PointerNotMonotone,   ///< ptr[k] > ptr[k+1]
  PointerOutOfRange,    ///< ptr entry outside [0, index array size]
  PointerNnzMismatch,   ///< ptr.back() != index array size
  ArraySizeMismatch,    ///< index and value arrays differ in length
  IndexOutOfRange,      ///< stored index outside [0, minor dimension)
  IndexNotSorted,       ///< indices within a segment not strictly ascending
  NonFiniteValue,       ///< NaN or ±Inf payload
  BlockInconsistent,    ///< blocked-CSR partition does not tile the matrix
};

const char* to_string(ValidationIssue issue);

/// One concrete violation: which class, where (major index: column for CSC,
/// row for CSR, block for blocked CSR; -1 when not attributable), and a
/// human-readable detail line.
struct ValidationFinding {
  ValidationIssue issue;
  index_t location = -1;
  std::string detail;
};

/// Outcome of validating one sparse structure. `findings` is capped at
/// ValidateOptions::max_findings so a thoroughly corrupt input cannot balloon
/// the report; `findings_total` counts everything.
struct ValidationReport {
  std::string structure;  ///< "csc" | "csr" | "blocked_csr"
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;
  index_t findings_total = 0;       ///< uncapped violation count
  index_t non_finite_values = 0;    ///< NaN/Inf payloads found (subset)
  std::vector<ValidationFinding> findings;

  bool ok() const { return findings_total == 0; }
  /// True when the *structure* is sound (pointers/indices), even if values
  /// contain NaN/Inf — the kernels can safely run, garbage in garbage out.
  bool structurally_valid() const {
    return findings_total == non_finite_values;
  }
  /// One-line verdict plus one line per retained finding.
  std::string summary() const;
};

struct ValidateOptions {
  bool check_values = true;      ///< scan for NaN/Inf payloads
  index_t max_findings = 16;     ///< retained findings cap (total still counted)
};

/// Thrown by the require_valid_* helpers; carries the full report.
class validation_error : public invalid_argument_error {
 public:
  explicit validation_error(ValidationReport report);
  const ValidationReport& report() const { return report_; }

 private:
  ValidationReport report_;
};

/// Defensive full-structure validation. Never throws, never reads out of
/// bounds, even on adversarially corrupt inputs (e.g. built through
/// adopt_unchecked or memory corruption).
template <typename T>
ValidationReport validate_csc(const CscMatrix<T>& a,
                              const ValidateOptions& opt = {});
template <typename T>
ValidationReport validate_csr(const CsrMatrix<T>& a,
                              const ValidateOptions& opt = {});
template <typename T>
ValidationReport validate_blocked_csr(const BlockedCsr<T>& a,
                                      const ValidateOptions& opt = {});

/// Validate-or-throw wrappers: throw validation_error (an
/// invalid_argument_error) carrying the report when not ok().
template <typename T>
void require_valid(const CscMatrix<T>& a, const ValidateOptions& opt = {});
template <typename T>
void require_valid(const CsrMatrix<T>& a, const ValidateOptions& opt = {});
template <typename T>
void require_valid(const BlockedCsr<T>& a, const ValidateOptions& opt = {});

/// NaN/Inf scan over a raw value range (shared by the validators and the
/// guarded solver's sketch checks). Returns the count of non-finite entries.
template <typename T>
index_t count_non_finite(const T* values, index_t n);

}  // namespace rsketch
