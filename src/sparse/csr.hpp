// Compressed Sparse Row matrix — used by the MKL-style baseline (which works
// on the transposed operation) and as the per-block format inside BlockedCsr.
#pragma once

#include <utility>
#include <vector>

#include "support/common.hpp"

namespace rsketch {

/// CSR sparse matrix: row i's nonzeros live at positions
/// [row_ptr[i], row_ptr[i+1]) of col_idx / values, column indices sorted
/// ascending within each row.
template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  CsrMatrix(index_t m, index_t n)
      : rows_(m), cols_(n), row_ptr_(static_cast<std::size_t>(m) + 1, 0) {
    require(m >= 0 && n >= 0, "CsrMatrix: negative dimension");
  }

  CsrMatrix(index_t m, index_t n, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<T> values)
      : rows_(m),
        cols_(n),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    validate();
  }

  /// Adopt raw arrays WITHOUT validation — for builders whose output is
  /// correct by construction (the blocked-CSR conversion builds thousands of
  /// small CSR slabs on the sketch hot path; validating each would put an
  /// O(nnz) scan inside the timed conversion) and for the fault-injection
  /// harness. Everything else should use the checked constructor.
  static CsrMatrix adopt_unchecked(index_t m, index_t n,
                                   std::vector<index_t> row_ptr,
                                   std::vector<index_t> col_idx,
                                   std::vector<T> values) {
    CsrMatrix a;
    a.rows_ = m;
    a.cols_ = n;
    a.row_ptr_ = std::move(row_ptr);
    a.col_idx_ = std::move(col_idx);
    a.values_ = std::move(values);
    return a;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }

  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& col_idx() const { return col_idx_; }
  const std::vector<T>& values() const { return values_; }

  index_t row_nnz(index_t i) const { return row_ptr_[i + 1] - row_ptr_[i]; }

  /// O(row_nnz) random access; for tests and small problems.
  T at(index_t i, index_t j) const {
    require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
            "CsrMatrix::at: index out of range");
    for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      if (col_idx_[p] == j) return values_[p];
    }
    return T{0};
  }

  std::size_t memory_bytes() const {
    return row_ptr_.size() * sizeof(index_t) +
           col_idx_.size() * sizeof(index_t) + values_.size() * sizeof(T);
  }

  void validate() const {
    require(rows_ >= 0 && cols_ >= 0, "CsrMatrix: negative dimension");
    require(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
            "CsrMatrix: row_ptr size must be rows+1");
    require(row_ptr_.front() == 0, "CsrMatrix: row_ptr[0] must be 0");
    require(row_ptr_.back() == static_cast<index_t>(col_idx_.size()),
            "CsrMatrix: row_ptr back must equal nnz");
    require(col_idx_.size() == values_.size(),
            "CsrMatrix: col_idx/values size mismatch");
    for (index_t i = 0; i < rows_; ++i) {
      require(row_ptr_[i] <= row_ptr_[i + 1],
              "CsrMatrix: row_ptr not monotone");
      for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
        require(col_idx_[p] >= 0 && col_idx_[p] < cols_,
                "CsrMatrix: column index out of range");
        require(p == row_ptr_[i] || col_idx_[p - 1] < col_idx_[p],
                "CsrMatrix: column indices must be strictly ascending");
      }
    }
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<T> values_;
};

}  // namespace rsketch
