#include "dense/microkernel.hpp"

#include <cstdlib>

#include "support/env.hpp"

namespace rsketch::microkernel {

// Per-tier factories exported by the kernel_simd_*.cpp translation units.
// Each TU compiles the shared template body (sketch/kernel_simd_impl.hpp)
// under its own -m flags and hands back a table of function pointers; only
// the tiers the build actually produced are declared here.
namespace scalar_impl {
template <typename T>
Ops<T> make_ops();
}
#ifdef RSKETCH_MICROKERNEL_AVX2
namespace avx2_impl {
template <typename T>
Ops<T> make_ops();
}
#endif
#ifdef RSKETCH_MICROKERNEL_AVX512
namespace avx512_impl {
template <typename T>
Ops<T> make_ops();
}
#endif

bool compiled(Isa isa) {
  switch (isa) {
    case Isa::Auto:
    case Isa::Scalar:
      return true;
    case Isa::Avx2:
#ifdef RSKETCH_MICROKERNEL_AVX2
      return true;
#else
      return false;
#endif
    case Isa::Avx512:
#ifdef RSKETCH_MICROKERNEL_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

namespace {

/// Does the host CPU advertise the features a tier's code was built with?
/// The library is built without -march=native in CI, so this is a genuine
/// runtime decision, not a compile-time constant.
bool cpu_has(Isa isa) {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case Isa::Avx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::Avx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw");
    default:
      return true;
  }
#else
  return isa == Isa::Auto || isa == Isa::Scalar;
#endif
}

/// RSKETCH_ISA override, parsed once per process. Invalid or unsupported
/// values warn once (support/env.hpp machinery) and resolve to Auto.
Isa env_override() {
  static const Isa cached = [] {
    const char* v = std::getenv("RSKETCH_ISA");
    if (v == nullptr || *v == '\0') return Isa::Auto;
    Isa parsed = Isa::Auto;
    if (!parse_isa(v, &parsed)) {
      env_warn_once("RSKETCH_ISA", v,
                    "expected auto|scalar|avx2|avx512; using auto dispatch");
      return Isa::Auto;
    }
    if (!supported(parsed)) {
      env_warn_once("RSKETCH_ISA", v,
                    "ISA not supported by this build/CPU; using auto dispatch");
      return Isa::Auto;
    }
    return parsed;
  }();
  return cached;
}

}  // namespace

bool supported(Isa isa) {
  if (isa == Isa::Auto || isa == Isa::Scalar) return true;
  return compiled(isa) && cpu_has(isa);
}

Isa best_supported() {
  if (supported(Isa::Avx512)) return Isa::Avx512;
  if (supported(Isa::Avx2)) return Isa::Avx2;
  return Isa::Scalar;
}

Isa resolve(Isa requested) {
  if (requested != Isa::Auto) {
    if (supported(requested)) return requested;
    env_warn_once("SketchConfig::isa", to_string(requested),
                  "ISA not supported by this build/CPU; dispatching the best "
                  "supported tier");
    return best_supported();
  }
  const Isa env = env_override();
  return env == Isa::Auto ? best_supported() : env;
}

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::Auto: return "auto";
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "?";
}

bool parse_isa(const std::string& s, Isa* out) {
  if (s == "auto") *out = Isa::Auto;
  else if (s == "scalar") *out = Isa::Scalar;
  else if (s == "avx2") *out = Isa::Avx2;
  else if (s == "avx512") *out = Isa::Avx512;
  else return false;
  return true;
}

template <typename T>
const Ops<T>& ops(Isa resolved) {
  static const Ops<T> scalar_ops = scalar_impl::make_ops<T>();
#ifdef RSKETCH_MICROKERNEL_AVX2
  static const Ops<T> avx2_ops = avx2_impl::make_ops<T>();
#endif
#ifdef RSKETCH_MICROKERNEL_AVX512
  static const Ops<T> avx512_ops = avx512_impl::make_ops<T>();
#endif
  switch (resolved) {
#ifdef RSKETCH_MICROKERNEL_AVX2
    case Isa::Avx2:
      return avx2_ops;
#endif
#ifdef RSKETCH_MICROKERNEL_AVX512
    case Isa::Avx512:
      return avx512_ops;
#endif
    default:
      return scalar_ops;
  }
}

template const Ops<float>& ops<float>(Isa);
template const Ops<double>& ops<double>(Isa);

}  // namespace rsketch::microkernel
