// Column-major dense matrix with 64-byte aligned, padded column stride.
// This is the container for the sketch Â = S·A and for the dense factors
// (QR, SVD) in the least-squares pipeline.
#pragma once

#include <cmath>
#include <limits>

#include "support/aligned_buffer.hpp"
#include "support/common.hpp"

namespace rsketch {

/// Column-major dense matrix. Columns are contiguous; the leading dimension
/// (`ld`) is padded to a multiple of 16 elements so every column starts
/// 64-byte aligned — the axpy kernels rely on this.
template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;

  DenseMatrix(index_t rows, index_t cols) { reset(rows, cols); }

  /// Reallocate to rows×cols and zero-fill.
  void reset(index_t rows, index_t cols) {
    require(rows >= 0 && cols >= 0, "DenseMatrix: negative dimension");
    const index_t ld = pad(rows);
    // ld * cols is computed in index_t (int64): guard the product before it
    // wraps into a small or negative element count. AlignedBuffer re-checks
    // the byte count, but only an unwrapped product reaches it.
    if (cols > 0 && ld > std::numeric_limits<index_t>::max() / cols) {
      throw invalid_argument_error("DenseMatrix: rows*cols overflows index_t");
    }
    rows_ = rows;
    cols_ = cols;
    ld_ = ld;
    buf_.reset(ld_ * cols);
    set_zero();
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }

  T* data() { return buf_.data(); }
  const T* data() const { return buf_.data(); }

  T* col(index_t j) { return buf_.data() + j * ld_; }
  const T* col(index_t j) const { return buf_.data() + j * ld_; }

  T& operator()(index_t i, index_t j) { return buf_[i + j * ld_]; }
  const T& operator()(index_t i, index_t j) const { return buf_[i + j * ld_]; }

  void set_zero() {
    for (index_t p = 0; p < buf_.size(); ++p) buf_[p] = T{0};
  }

  /// Frobenius norm (accumulated in double).
  double frobenius_norm() const {
    double s = 0.0;
    for (index_t j = 0; j < cols_; ++j) {
      const T* c = col(j);
      for (index_t i = 0; i < rows_; ++i) {
        s += static_cast<double>(c[i]) * static_cast<double>(c[i]);
      }
    }
    return std::sqrt(s);
  }

  /// max |this - other| over all entries; requires equal shapes.
  double max_abs_diff(const DenseMatrix& other) const {
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "max_abs_diff: shape mismatch");
    double mx = 0.0;
    for (index_t j = 0; j < cols_; ++j) {
      const T* x = col(j);
      const T* y = other.col(j);
      for (index_t i = 0; i < rows_; ++i) {
        const double d = std::fabs(static_cast<double>(x[i]) -
                                   static_cast<double>(y[i]));
        if (d > mx) mx = d;
      }
    }
    return mx;
  }

  std::size_t memory_bytes() const {
    return static_cast<std::size_t>(buf_.size()) * sizeof(T);
  }

 private:
  static index_t pad(index_t rows) {
    constexpr index_t kPad = 64 / sizeof(T);
    return rows == 0 ? 0 : ceil_div(rows, kPad) * kPad;
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
  AlignedBuffer<T> buf_;
};

}  // namespace rsketch
