#include "dense/blas1.hpp"

#include <cmath>

namespace rsketch {

template <typename T>
void axpy(index_t n, T a, const T* __restrict x, T* __restrict y) {
#pragma omp simd
  for (index_t i = 0; i < n; ++i) y[i] += a * x[i];
}

template <typename T>
T dot(index_t n, const T* x, const T* y) {
  T s{0};
#pragma omp simd reduction(+ : s)
  for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

template <typename T>
double nrm2(index_t n, const T* x) {
  double s = 0.0;
#pragma omp simd reduction(+ : s)
  for (index_t i = 0; i < n; ++i) {
    s += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return std::sqrt(s);
}

template <typename T>
void scal(index_t n, T a, T* x) {
#pragma omp simd
  for (index_t i = 0; i < n; ++i) x[i] *= a;
}

template void axpy<float>(index_t, float, const float*, float*);
template void axpy<double>(index_t, double, const double*, double*);
template float dot<float>(index_t, const float*, const float*);
template double dot<double>(index_t, const double*, const double*);
template double nrm2<float>(index_t, const float*);
template double nrm2<double>(index_t, const double*);
template void scal<float>(index_t, float, float*);
template void scal<double>(index_t, double, double*);

}  // namespace rsketch
