// Runtime-dispatched SIMD micro-kernel layer (DESIGN.md "SIMD micro-kernels").
//
// The sketching kernels' inner loops — the axpy against a regenerated column
// of S, the unroll-and-jam rank-1 update of Algorithm 4, and the fused
// generate-and-axpy of Algorithm 3 — are compiled once per ISA tier
// (portable scalar, AVX2+FMA, AVX-512) in dedicated translation units
// (sketch/kernel_simd_*.cpp) and selected at startup through a cpuid-based
// dispatch table, overridable with RSKETCH_ISA for testing.
//
// Every tier is built with floating-point contraction pinned OFF: the
// elementwise mul + add sequence rounds identically at any vector width, so
// scalar, AVX2, and AVX-512 dispatch produce bitwise-identical Â
// (tests/test_simd_equivalence.cpp asserts this). The speedup comes from
// vector width and register blocking, not from FMA fusion.
#pragma once

#include <string>

#include "support/common.hpp"

namespace rsketch {

class XoshiroBatch;  // rng/xoshiro_batch.hpp
enum class Dist;     // rng/distributions.hpp

namespace microkernel {

/// Instruction-set tier of the micro-kernel translation units.
enum class Isa {
  Auto,    ///< resolve at runtime: RSKETCH_ISA override, else best supported
  Scalar,  ///< portable baseline (compiled at the base architecture)
  Avx2,    ///< AVX2 + FMA hardware, 256-bit vectors
  Avx512   ///< AVX-512 F/VL/DQ/BW hardware, 512-bit vectors
};

/// Register-blocking factor of the jki unroll-and-jam: one regenerated
/// column v of S is applied to up to kMaxJam destination columns of Â per
/// sweep, so v is loaded once per kMaxJam nonzeros instead of once per
/// nonzero. 4 accumulator columns × 2 vectors each stays comfortably inside
/// 16 ymm / 32 zmm architectural registers.
inline constexpr index_t kMaxJam = 4;

/// Dispatch table of one ISA tier. All entries implement plain mul + add
/// (no contraction) so the produced bits are tier-independent.
template <typename T>
struct Ops {
  /// y[i] += a * x[i]; x and y must not alias.
  void (*axpy)(index_t n, T a, const T* x, T* y) = nullptr;
  /// ys[c][i] += alphas[c] * v[i] for c in [0, ncols), ncols <= kMaxJam.
  /// The ys must be mutually distinct and must not alias v.
  void (*axpy_multi)(index_t n, const T* v, const T* alphas, T* const* ys,
                     index_t ncols) = nullptr;
  /// v[0..n) := the chunked distribution transform of g's stream, for the
  /// batch-chunked distributions (PmOne, Uniform, UniformScaled) only; the
  /// caller positions g with set_state() first.
  void (*fill)(XoshiroBatch& g, Dist dist, T* v, index_t n) = nullptr;
  /// Fused generate-and-axpy: out[i] += a * s_i where s_i is the same stream
  /// fill() would have produced — the column of S goes straight from the
  /// generator lanes into the update without a scratch buffer. Same
  /// distribution restriction and bitwise contract as fill().
  void (*fused_axpy)(XoshiroBatch& g, Dist dist, T a, T* out,
                     index_t n) = nullptr;
};

/// True when the translation unit for `isa` was compiled into this binary
/// (the build gates the AVX TUs on compiler flag support and x86 targets).
bool compiled(Isa isa);

/// compiled(isa) && the host CPU advertises the required features.
/// Scalar and Auto are always supported.
bool supported(Isa isa);

/// Highest supported tier on this host (never Auto; Scalar at worst).
Isa best_supported();

/// Concrete tier for a requested one. Auto resolves through the RSKETCH_ISA
/// environment override (parsed once per process, invalid or unsupported
/// values warn once and fall back) and then to best_supported(). An explicit
/// unsupported request warns once and degrades to best_supported() rather
/// than crashing on illegal instructions.
Isa resolve(Isa requested);

/// "auto" | "scalar" | "avx2" | "avx512".
const char* to_string(Isa isa);

/// Parse the to_string() tokens; false (and *out untouched) on anything else.
bool parse_isa(const std::string& s, Isa* out);

/// Dispatch table for a concrete tier; call resolve() first. Requesting a
/// tier that is not compiled in returns the scalar table.
template <typename T>
const Ops<T>& ops(Isa resolved);

extern template const Ops<float>& ops<float>(Isa);
extern template const Ops<double>& ops<double>(Isa);

}  // namespace microkernel
}  // namespace rsketch
