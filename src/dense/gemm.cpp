#include "dense/gemm.hpp"

#include <algorithm>

#include "dense/blas1.hpp"

namespace rsketch {

namespace {

// Cache blocking sizes tuned loosely for L1/L2; correctness is what matters
// here, performance only needs to be adequate for n×n factors with n ≲ 4000.
constexpr index_t kBlockM = 128;
constexpr index_t kBlockN = 128;
constexpr index_t kBlockK = 256;

template <typename T>
T element(const DenseMatrix<T>& x, bool trans, index_t i, index_t j) {
  return trans ? x(j, i) : x(i, j);
}

}  // namespace

template <typename T>
void gemm(bool trans_a, bool trans_b, T alpha, const DenseMatrix<T>& a,
          const DenseMatrix<T>& b, T beta, DenseMatrix<T>& c) {
  const index_t m = trans_a ? a.cols() : a.rows();
  const index_t k = trans_a ? a.rows() : a.cols();
  const index_t kb = trans_b ? b.cols() : b.rows();
  const index_t n = trans_b ? b.rows() : b.cols();
  require(k == kb, "gemm: inner dimension mismatch");
  require(c.rows() == m && c.cols() == n, "gemm: output shape mismatch");

  if (beta == T{0}) {
    c.set_zero();
  } else if (beta != T{1}) {
    for (index_t j = 0; j < n; ++j) scal(m, beta, c.col(j));
  }
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) return;

  // Fast path: op(A) plain, op(B) anything — axpy down columns of C.
  if (!trans_a) {
#pragma omp parallel for schedule(static) if (n >= 64)
    for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
      const index_t j1 = std::min(n, j0 + kBlockN);
      for (index_t p0 = 0; p0 < k; p0 += kBlockK) {
        const index_t p1 = std::min(k, p0 + kBlockK);
        for (index_t j = j0; j < j1; ++j) {
          T* cj = c.col(j);
          for (index_t p = p0; p < p1; ++p) {
            const T bpj = alpha * element(b, trans_b, p, j);
            if (bpj != T{0}) axpy(m, bpj, a.col(p), cj);
          }
        }
      }
    }
    return;
  }

  // op(A) = Aᵀ: C[i,j] = dot(A.col(i), op(B) column j); gather with dot.
#pragma omp parallel for schedule(static) if (n >= 64)
  for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
    const index_t j1 = std::min(n, j0 + kBlockN);
    for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
      const index_t i1 = std::min(m, i0 + kBlockM);
      for (index_t j = j0; j < j1; ++j) {
        for (index_t i = i0; i < i1; ++i) {
          T s{0};
          if (!trans_b) {
            s = dot(k, a.col(i), b.col(j));
          } else {
            for (index_t p = 0; p < k; ++p) s += a(p, i) * b(j, p);
          }
          c(i, j) += alpha * s;
        }
      }
    }
  }
}

template void gemm<float>(bool, bool, float, const DenseMatrix<float>&,
                          const DenseMatrix<float>&, float,
                          DenseMatrix<float>&);
template void gemm<double>(bool, bool, double, const DenseMatrix<double>&,
                           const DenseMatrix<double>&, double,
                           DenseMatrix<double>&);

}  // namespace rsketch
