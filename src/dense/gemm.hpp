// Blocked reference GEMM. Used by the dense QR/SVD factorizations in the
// least-squares pipeline and by tests as an independent reference for the
// sketch product. Not intended to compete with vendor BLAS — the paper's
// point is precisely that the sketching product should NOT be computed as a
// GEMM against a materialized S.
#pragma once

#include "dense/dense_matrix.hpp"

namespace rsketch {

/// C := beta*C + alpha * op_a(A) * op_b(B), column-major. transX selects
/// op_X(X) = X or Xᵀ. Shapes are checked against the operated dimensions.
template <typename T>
void gemm(bool trans_a, bool trans_b, T alpha, const DenseMatrix<T>& a,
          const DenseMatrix<T>& b, T beta, DenseMatrix<T>& c);

extern template void gemm<float>(bool, bool, float, const DenseMatrix<float>&,
                                 const DenseMatrix<float>&, float,
                                 DenseMatrix<float>&);
extern template void gemm<double>(bool, bool, double,
                                  const DenseMatrix<double>&,
                                  const DenseMatrix<double>&, double,
                                  DenseMatrix<double>&);

}  // namespace rsketch
