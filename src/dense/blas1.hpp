// Vectorizable BLAS-1 kernels. The inner loop of the paper's Algorithm 3/4
// is exactly `axpy` over a regenerated column v of S; these free functions
// are written so GCC auto-vectorizes them with FMA at -O2 -march=native.
#pragma once

#include "support/common.hpp"

namespace rsketch {

/// y[i] += a * x[i] for i in [0, n). Pointers must not alias.
template <typename T>
void axpy(index_t n, T a, const T* __restrict x, T* __restrict y);

/// Dot product (accumulated in T).
template <typename T>
T dot(index_t n, const T* x, const T* y);

/// Euclidean norm, accumulated in double for stability.
template <typename T>
double nrm2(index_t n, const T* x);

/// x[i] *= a.
template <typename T>
void scal(index_t n, T a, T* x);

extern template void axpy<float>(index_t, float, const float*, float*);
extern template void axpy<double>(index_t, double, const double*, double*);
extern template float dot<float>(index_t, const float*, const float*);
extern template double dot<double>(index_t, const double*, const double*);
extern template double nrm2<float>(index_t, const float*);
extern template double nrm2<double>(index_t, const double*);
extern template void scal<float>(index_t, float, float*);
extern template void scal<double>(index_t, double, double*);

}  // namespace rsketch
