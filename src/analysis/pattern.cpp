#include "analysis/pattern.hpp"

#include <algorithm>
#include <cmath>

namespace rsketch {

template <typename T>
std::vector<index_t> row_degree_histogram(const CscMatrix<T>& a) {
  std::vector<index_t> per_row(static_cast<std::size_t>(a.rows()), 0);
  for (index_t r : a.row_idx()) ++per_row[static_cast<std::size_t>(r)];
  std::vector<index_t> hist(static_cast<std::size_t>(a.cols()) + 1, 0);
  for (index_t k : per_row) {
    ++hist[static_cast<std::size_t>(std::min(k, a.cols()))];
  }
  return hist;
}

template <typename T>
RowDegreeStats row_degree_stats(const CscMatrix<T>& a) {
  RowDegreeStats s;
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m == 0 || n == 0) return s;
  std::vector<index_t> per_row(static_cast<std::size_t>(m), 0);
  for (index_t r : a.row_idx()) ++per_row[static_cast<std::size_t>(r)];
  double sum = 0.0, sum_sq = 0.0;
  index_t empty = 0, max_deg = 0;
  for (index_t k : per_row) {
    sum += static_cast<double>(k);
    sum_sq += static_cast<double>(k) * static_cast<double>(k);
    if (k == 0) ++empty;
    max_deg = std::max(max_deg, k);
  }
  s.mean = sum / static_cast<double>(m);
  const double var =
      std::max(0.0, sum_sq / static_cast<double>(m) - s.mean * s.mean);
  s.cv = s.mean > 0.0 ? std::sqrt(var) / s.mean : 0.0;
  s.empty_fraction = static_cast<double>(empty) / static_cast<double>(m);
  s.max_fraction = static_cast<double>(max_deg) / static_cast<double>(n);
  return s;
}

template <typename T>
double expected_regen_fraction(const CscMatrix<T>& a, double n1) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m == 0 || n == 0) return 0.0;
  const auto hist = row_degree_histogram(a);
  double regen = 0.0;
  for (std::size_t k = 1; k < hist.size(); ++k) {
    if (hist[k] == 0) continue;
    const double miss =
        std::pow(1.0 - static_cast<double>(k) / static_cast<double>(n), n1);
    regen += static_cast<double>(hist[k]) * (1.0 - miss);
  }
  return regen / static_cast<double>(m);
}

template <typename T>
double inverse_ci_pattern(const CscMatrix<T>& a, const RooflineParams& p,
                          double n1) {
  // Same normalization as inverse_ci(): cache term 2n₁/M plus the
  // generation term h·regen/(2ρ·n₁) with regen from the empirical pattern.
  const double rho = std::max(p.density, 1e-300);
  const double regen = expected_regen_fraction(a, n1);
  return 2.0 * n1 / p.cache_elems + p.rng_cost * regen / (2.0 * rho * n1);
}

template <typename T>
double optimal_n1_for_matrix(const CscMatrix<T>& a, const RooflineParams& p) {
  const double n1_max = std::max<double>(1.0, static_cast<double>(a.cols()));
  constexpr double kGolden = 0.6180339887498949;
  double lo = 1.0, hi = n1_max;
  double x1 = hi - kGolden * (hi - lo);
  double x2 = lo + kGolden * (hi - lo);
  double f1 = inverse_ci_pattern(a, p, x1);
  double f2 = inverse_ci_pattern(a, p, x2);
  for (int it = 0; it < 90 && hi - lo > 0.5; ++it) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kGolden * (hi - lo);
      f1 = inverse_ci_pattern(a, p, x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kGolden * (hi - lo);
      f2 = inverse_ci_pattern(a, p, x2);
    }
  }
  const double cont = 0.5 * (lo + hi);
  double best = std::clamp(std::floor(cont), 1.0, n1_max);
  double best_f = inverse_ci_pattern(a, p, best);
  const double up = std::clamp(std::ceil(cont), 1.0, n1_max);
  if (inverse_ci_pattern(a, p, up) < best_f) best = up;
  return best;
}

#define RSKETCH_INSTANTIATE(T)                                             \
  template std::vector<index_t> row_degree_histogram<T>(                   \
      const CscMatrix<T>&);                                                \
  template RowDegreeStats row_degree_stats<T>(const CscMatrix<T>&);        \
  template double expected_regen_fraction<T>(const CscMatrix<T>&, double); \
  template double inverse_ci_pattern<T>(const CscMatrix<T>&,               \
                                        const RooflineParams&, double);    \
  template double optimal_n1_for_matrix<T>(const CscMatrix<T>&,            \
                                           const RooflineParams&);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
