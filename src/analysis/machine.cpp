#include "analysis/machine.hpp"

#include <omp.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/timer.hpp"

namespace rsketch {

namespace {

/// Defeat dead-code elimination of benchmark loops.
volatile double g_sink = 0.0;

}  // namespace

StreamResult stream_benchmark(index_t elems, int reps) {
  require(elems > 0 && reps > 0, "stream_benchmark: invalid parameters");
  std::vector<double> a(static_cast<std::size_t>(elems), 1.0);
  std::vector<double> b(static_cast<std::size_t>(elems), 2.0);
  std::vector<double> c(static_cast<std::size_t>(elems), 0.0);
  const double scalar = 3.0;
  const double bytes = static_cast<double>(elems) * sizeof(double);

  StreamResult r;
  double t_copy = 1e300, t_scale = 1e300, t_add = 1e300, t_triad = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    Timer t;
#pragma omp parallel for schedule(static)
    for (index_t i = 0; i < elems; ++i) c[i] = a[i];
    t_copy = std::min(t_copy, t.seconds());

    t.reset();
#pragma omp parallel for schedule(static)
    for (index_t i = 0; i < elems; ++i) b[i] = scalar * c[i];
    t_scale = std::min(t_scale, t.seconds());

    t.reset();
#pragma omp parallel for schedule(static)
    for (index_t i = 0; i < elems; ++i) c[i] = a[i] + b[i];
    t_add = std::min(t_add, t.seconds());

    t.reset();
#pragma omp parallel for schedule(static)
    for (index_t i = 0; i < elems; ++i) a[i] = b[i] + scalar * c[i];
    t_triad = std::min(t_triad, t.seconds());
  }
  g_sink = a[0] + b[0] + c[0];

  r.copy_gbps = 2.0 * bytes / t_copy / 1e9;
  r.scale_gbps = 2.0 * bytes / t_scale / 1e9;
  r.add_gbps = 3.0 * bytes / t_add / 1e9;
  r.triad_gbps = 3.0 * bytes / t_triad / 1e9;
  return r;
}

const StreamResult& cached_stream_result() {
  static const StreamResult r = stream_benchmark(index_t{1} << 21, 2);
  return r;
}

double rng_throughput(Dist dist, RngBackend backend, index_t vec_len,
                      int reps) {
  require(vec_len > 0 && reps > 0, "rng_throughput: invalid parameters");
  SketchSampler<float> sampler(12345, dist, backend);
  std::vector<float> v(static_cast<std::size_t>(vec_len));
  // Warm-up fill, then time `reps` checkpointed fills — the exact access
  // pattern the blocked kernels exercise (reseek + short-vector fill).
  sampler.fill(0, 0, v.data(), vec_len);
  Timer t;
  for (int rep = 0; rep < reps; ++rep) {
    sampler.fill(0, static_cast<index_t>(rep), v.data(), vec_len);
  }
  const double secs = t.seconds();
  g_sink = static_cast<double>(v[0]);
  return static_cast<double>(vec_len) * reps / secs;
}

double measure_h(Dist dist, RngBackend backend, const StreamResult& stream,
                 index_t vec_len) {
  const double samples_per_sec = rng_throughput(dist, backend, vec_len, 200);
  const double elems_per_sec = stream.copy_gbps * 1e9 / 4.0;  // 32-bit loads
  return elems_per_sec / samples_per_sec;
}

std::size_t detect_cache_bytes() {
  long size = 0;
#ifdef _SC_LEVEL2_CACHE_SIZE
  size = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
  if (size <= 0) {
#ifdef _SC_LEVEL3_CACHE_SIZE
    size = sysconf(_SC_LEVEL3_CACHE_SIZE);
#endif
  }
  return size > 0 ? static_cast<std::size_t>(size) : std::size_t{1} << 20;
}

std::string machine_signature() {
  char host[256] = {0};
  if (gethostname(host, sizeof host - 1) != 0) host[0] = '\0';
  std::string sig(host[0] == '\0' ? "unknown" : host);
  sig += "|cpus=" + std::to_string(sysconf(_SC_NPROCESSORS_ONLN));
  sig += "|omp=" + std::to_string(omp_get_max_threads());
  sig += "|cache=" + std::to_string(detect_cache_bytes());
  return sig;
}

}  // namespace rsketch
