// §III-A of the paper: roofline-style model of the data-movement /
// recomputation trade-off. Implements the optimization problem (4), its
// closed-form corner cases (5)–(7), and a numeric optimizer for the block
// size n₁ in between.
//
// Units: the cache size M is measured in matrix ELEMENTS (as in the paper's
// one-layer cache model), h is the cost of generating one random number
// relative to one memory access, and machine balance B is peak FLOP/s
// divided by memory bandwidth in elements/s.
#pragma once

#include "support/common.hpp"

namespace rsketch {

/// Inputs of the §III-A model.
struct RooflineParams {
  double cache_elems = 0.0;      ///< M
  double rng_cost = 0.0;         ///< h (h < 1 is the interesting regime)
  double density = 0.0;          ///< ρ of the uniformly sparse model
  double machine_balance = 0.0;  ///< B = peak flops / bandwidth (elements/s)
};

/// Block sizes implied by a choice of n₁ under the cache constraint
/// d₁n₁ + m₁n₁ρ ≤ M with the paper's balanced split d₁n₁ = m₁n₁ρ = M/2.
struct ModelBlocks {
  double n1 = 0.0;
  double d1 = 0.0;
  double m1 = 0.0;
};

/// d₁ = M/(2n₁), m₁ = M/(2n₁ρ).
ModelBlocks model_blocks(const RooflineParams& p, double n1);

/// Reciprocal computational intensity at block size n₁, normalized per flop:
/// (4n₁ρ/M + h(1-(1-ρ)^{n₁})/n₁) / (2ρ). Minimizing this maximizes CI.
double inverse_ci(const RooflineParams& p, double n1);

/// Computational intensity at n₁ (flops per element moved or generated).
double ci(const RooflineParams& p, double n1);

/// Numerically minimize inverse_ci over n₁ ∈ [1, n1_max] (golden-section on
/// the unimodal objective plus an integer-neighborhood polish).
double optimal_n1(const RooflineParams& p, double n1_max);

/// Closed forms from the paper:
/// Eq. (5): CI for ρ → 0 at n₁ = 1:  2M / (4 + Mh).
double ci_small_rho(double cache_elems, double rng_cost);

/// Eq. (6)-style theoretical fraction of peak = CI / B (capped at 1).
double peak_fraction(double ci_value, double machine_balance);

/// Eq. (7): fraction of peak for ρ → 1: sqrt(Mρ) / (2B·sqrt(h)).
double peak_fraction_large_rho(const RooflineParams& p);

/// Classic GEMM roofline fraction sqrt(M)/B — the bound the paper's scheme
/// beats by a factor of sqrt(M) when h is small.
double gemm_peak_fraction(double cache_elems, double machine_balance);

}  // namespace rsketch
