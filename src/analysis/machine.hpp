// Machine characterization probes: STREAM-style bandwidth (the paper used
// STREAMBenchmark.jl), RNG throughput (to measure h, the cost of one random
// sample relative to one memory access), and cache size discovery.
#pragma once

#include <cstddef>
#include <string>

#include "rng/distributions.hpp"
#include "support/common.hpp"

namespace rsketch {

/// Results of the four STREAM kernels, in GB/s.
struct StreamResult {
  double copy_gbps = 0.0;
  double scale_gbps = 0.0;
  double add_gbps = 0.0;
  double triad_gbps = 0.0;
};

/// Run STREAM copy/scale/add/triad over `elems` doubles, `reps` repetitions,
/// reporting the best bandwidth (standard STREAM methodology).
StreamResult stream_benchmark(index_t elems, int reps);

/// Process-wide memoized stream_benchmark(1<<21, 2) — the probe the model
/// tuner and the block scheduler share, so calibration is paid once no
/// matter how many consumers ask.
const StreamResult& cached_stream_result();

/// Generation throughput of one (distribution, backend) pair in
/// samples/second, measured by repeatedly filling a `vec_len` buffer — the
/// short-vector regime the blocked kernels operate in (paper §V-A).
double rng_throughput(Dist dist, RngBackend backend, index_t vec_len,
                      int reps);

/// Measured h: (seconds per generated sample) / (seconds per element moved),
/// using the STREAM copy bandwidth for the denominator and 4-byte elements.
double measure_h(Dist dist, RngBackend backend, const StreamResult& stream,
                 index_t vec_len = 10000);

/// Last-level data cache size in bytes (sysconf, with a 1 MiB fallback).
std::size_t detect_cache_bytes();

/// Stable, human-readable signature of this host for keying tuning results:
/// "<hostname>|cpus=<N>|omp=<M>|cache=<bytes>". Deliberately excludes
/// anything that changes run to run (load, frequency); includes the OpenMP
/// thread budget because the best schedule depends on it.
std::string machine_signature();

}  // namespace rsketch
