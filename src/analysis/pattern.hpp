// Pattern-aware extension of the §III-A model (the paper's stated future
// work: "extend our theoretical analysis to sparse matrices with non-uniform
// sparsity patterns").
//
// The uniform model charges Algorithm 4 h·d₁·m₁·(1-(1-ρ)^{n₁}) generation
// cost per block because a row is regenerated iff it intersects the block.
// For a real matrix the intersection probability depends on each row's
// degree: row i with kᵢ nonzeros among n columns hits a random n₁-column
// block with probability 1-(1-kᵢ/n)^{n₁}. Plugging the empirical row-degree
// distribution into the objective yields a per-matrix optimal n₁ — exact
// for the Abnormal_A/C extremes of Table VI.
#pragma once

#include <vector>

#include "analysis/roofline.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Histogram of row degrees: counts[k] = number of rows with exactly k
/// stored entries (k capped at A.cols()).
template <typename T>
std::vector<index_t> row_degree_histogram(const CscMatrix<T>& a);

/// Summary statistics of the row-degree distribution — the pattern features
/// the tuner's matrix fingerprint buckets on (sketch/tuner.hpp). `cv` is the
/// coefficient of variation (std/mean, 0 for uniform patterns and empty
/// matrices); `empty_fraction` the share of all-zero rows; `max_fraction`
/// the densest row's degree over n (1.0 for an Abnormal_A-style dense row).
struct RowDegreeStats {
  double mean = 0.0;
  double cv = 0.0;
  double empty_fraction = 0.0;
  double max_fraction = 0.0;
};

template <typename T>
RowDegreeStats row_degree_stats(const CscMatrix<T>& a);

/// Expected fraction of rows that must be regenerated for a random vertical
/// block of n1 columns, under the empirical row-degree distribution:
///   (1/m) Σ_i [1 - (1 - kᵢ/n)^{n₁}].
/// Equals 1-(1-ρ)^{n₁} for the uniform model; equals the dense-row fraction
/// (independent of n₁) for Abnormal_A-type patterns.
template <typename T>
double expected_regen_fraction(const CscMatrix<T>& a, double n1);

/// Reciprocal computational intensity with the empirical pattern replacing
/// the (1-(1-ρ)^{n₁}) term of Eq. (4). p.density is still used for the
/// cache-constraint term (it sets m₁).
template <typename T>
double inverse_ci_pattern(const CscMatrix<T>& a, const RooflineParams& p,
                          double n1);

/// Pattern-aware optimal n₁ ∈ [1, A.cols()], by golden-section search with
/// an integer polish (the empirical objective is still unimodal: a linear
/// cache term plus a decreasing amortization term).
template <typename T>
double optimal_n1_for_matrix(const CscMatrix<T>& a, const RooflineParams& p);

extern template std::vector<index_t> row_degree_histogram<float>(
    const CscMatrix<float>&);
extern template std::vector<index_t> row_degree_histogram<double>(
    const CscMatrix<double>&);
extern template RowDegreeStats row_degree_stats<float>(const CscMatrix<float>&);
extern template RowDegreeStats row_degree_stats<double>(
    const CscMatrix<double>&);
extern template double expected_regen_fraction<float>(const CscMatrix<float>&,
                                                      double);
extern template double expected_regen_fraction<double>(
    const CscMatrix<double>&, double);
extern template double inverse_ci_pattern<float>(const CscMatrix<float>&,
                                                 const RooflineParams&,
                                                 double);
extern template double inverse_ci_pattern<double>(const CscMatrix<double>&,
                                                  const RooflineParams&,
                                                  double);
extern template double optimal_n1_for_matrix<float>(const CscMatrix<float>&,
                                                    const RooflineParams&);
extern template double optimal_n1_for_matrix<double>(const CscMatrix<double>&,
                                                     const RooflineParams&);

}  // namespace rsketch
