#include "analysis/roofline.hpp"

#include <algorithm>
#include <cmath>

namespace rsketch {

ModelBlocks model_blocks(const RooflineParams& p, double n1) {
  ModelBlocks b;
  b.n1 = n1;
  b.d1 = p.cache_elems / (2.0 * n1);
  b.m1 = p.density > 0.0 ? p.cache_elems / (2.0 * n1 * p.density) : 0.0;
  return b;
}

double inverse_ci(const RooflineParams& p, double n1) {
  // Objective of problem (4) normalized by the flop count 2ρ·dmn:
  //   (4n₁ρ/M + h(1-(1-ρ)^{n₁})/n₁) / (2ρ)
  const double rho = p.density;
  const double regen = 1.0 - std::pow(1.0 - rho, n1);
  return 2.0 * n1 / p.cache_elems + p.rng_cost * regen / (2.0 * rho * n1);
}

double ci(const RooflineParams& p, double n1) {
  return 1.0 / inverse_ci(p, n1);
}

double optimal_n1(const RooflineParams& p, double n1_max) {
  n1_max = std::max(1.0, n1_max);
  // Golden-section search; the objective is a sum of an increasing linear
  // term and a decreasing term, hence unimodal on [1, n1_max].
  constexpr double kGolden = 0.6180339887498949;
  double lo = 1.0, hi = n1_max;
  double x1 = hi - kGolden * (hi - lo);
  double x2 = lo + kGolden * (hi - lo);
  double f1 = inverse_ci(p, x1);
  double f2 = inverse_ci(p, x2);
  for (int it = 0; it < 120 && hi - lo > 1e-9 * n1_max; ++it) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kGolden * (hi - lo);
      f1 = inverse_ci(p, x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kGolden * (hi - lo);
      f2 = inverse_ci(p, x2);
    }
  }
  const double cont = 0.5 * (lo + hi);
  // Integer polish: block sizes are integers in practice.
  double best = std::clamp(std::floor(cont), 1.0, n1_max);
  double best_f = inverse_ci(p, best);
  for (double cand : {std::ceil(cont), cont}) {
    cand = std::clamp(cand, 1.0, n1_max);
    const double f = inverse_ci(p, cand);
    if (f < best_f) {
      best = cand;
      best_f = f;
    }
  }
  return best;
}

double ci_small_rho(double cache_elems, double rng_cost) {
  return 2.0 * cache_elems / (4.0 + cache_elems * rng_cost);
}

double peak_fraction(double ci_value, double machine_balance) {
  return std::min(1.0, ci_value / machine_balance);
}

double peak_fraction_large_rho(const RooflineParams& p) {
  return std::min(1.0, std::sqrt(p.cache_elems * p.density) /
                           (2.0 * p.machine_balance * std::sqrt(p.rng_cost)));
}

double gemm_peak_fraction(double cache_elems, double machine_balance) {
  return std::min(1.0, std::sqrt(cache_elems) / machine_balance);
}

}  // namespace rsketch
