#include "perf/perf.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "perf/trace.hpp"
#include "support/env.hpp"

namespace rsketch::perf {

namespace {

bool env_toggle() {
  const char* v = std::getenv("RSKETCH_PERF");
  if (v == nullptr || *v == '\0') return false;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "on" || s == "yes") return true;
  if (s == "0" || s == "false" || s == "off" || s == "no") return false;
  // A typo'd toggle must not silently flip telemetry on or off.
  env_warn_once("RSKETCH_PERF", v, "expected 0/1/on/off; telemetry disabled");
  return false;
}

std::atomic<bool> g_enabled{env_toggle()};

/// Live Span census backing the reset() precondition assert. Relaxed RMW per
/// armed Span construction/destruction — Spans bracket whole sketches and
/// solver phases, never per-nonzero work, so this is far off the hot path.
std::atomic<long> g_live_spans{0};

/// One thread's private accumulation state. Plain (non-atomic) fields: only
/// the owning thread writes, and snapshot()/reset() run when no instrumented
/// region is active (documented contract). Spans and busy stats are keyed by
/// interned name id (perf/trace.hpp) — snapshot() resolves ids to strings.
struct ThreadRecord {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::map<std::uint32_t, SpanStat> spans;
  std::map<std::uint32_t, BusyStat> busy;

  void merge_into(Snapshot& out) const {
    for (int i = 0; i < kNumCounters; ++i) out.counters[static_cast<std::size_t>(i)] += counters[static_cast<std::size_t>(i)];
    for (const auto& [id, st] : spans) out.spans[trace::name_of(id)].merge(st);
    for (const auto& [id, bs] : busy) out.busy[trace::name_of(id)].merge(bs);
  }

  void merge_from(const ThreadRecord& other) {
    for (int i = 0; i < kNumCounters; ++i) {
      counters[static_cast<std::size_t>(i)] +=
          other.counters[static_cast<std::size_t>(i)];
    }
    for (const auto& [id, st] : other.spans) spans[id].merge(st);
    for (const auto& [id, bs] : other.busy) busy[id].merge(bs);
  }

  void clear() {
    counters.fill(0);
    spans.clear();
    busy.clear();
  }
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadRecord*> live;
  // Counts merged from threads that have already exited.
  ThreadRecord retired;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

/// Registers the thread's record on first use; merges it into `retired` and
/// deregisters on thread exit (merge-on-join).
struct ThreadRecordHolder {
  ThreadRecord rec;

  ThreadRecordHolder() {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.push_back(&rec);
  }

  ~ThreadRecordHolder() {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.retired.merge_from(rec);
    reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), &rec),
                   reg.live.end());
  }
};

ThreadRecord& local_record() {
  thread_local ThreadRecordHolder holder;
  return holder.rec;
}

/// Log-bucket index for a duration: floor(log2(ns)), clamped to the table.
inline int bucket_index(double secs) {
  const double ns = secs * 1e9;
  if (!(ns >= 1.0)) return 0;  // sub-ns, zero, and NaN all land in bucket 0
  const auto u = static_cast<std::uint64_t>(ns);
  const int idx = std::bit_width(u) - 1;
  return std::min(idx, SpanStat::kHistogramBuckets - 1);
}

}  // namespace

void SpanStat::record(double secs, std::uint64_t n) {
  if (n == 0) return;
  const double each = secs / static_cast<double>(n);
  if (count == 0 || each < min_seconds) min_seconds = each;
  if (each > max_seconds) max_seconds = each;
  count += n;
  seconds += secs;
  buckets[static_cast<std::size_t>(bucket_index(each))] += n;
}

void SpanStat::merge(const SpanStat& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min_seconds < min_seconds) {
    min_seconds = other.min_seconds;
  }
  if (other.max_seconds > max_seconds) max_seconds = other.max_seconds;
  count += other.count;
  seconds += other.seconds;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    buckets[static_cast<std::size_t>(b)] +=
        other.buckets[static_cast<std::size_t>(b)];
  }
}

double SpanStat::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    const auto prev = static_cast<double>(cum);
    cum += in_bucket;
    if (static_cast<double>(cum) >= target) {
      // Linear interpolation across the bucket's [2^b, 2^(b+1)) ns range.
      const double lo = std::ldexp(1.0, b) / 1e9;
      const double hi = std::ldexp(1.0, b + 1) / 1e9;
      const double frac =
          std::min(1.0, std::max(0.0, (target - prev) /
                                          static_cast<double>(in_bucket)));
      const double est = lo + (hi - lo) * frac;
      // The histogram knows octaves; the exact envelope is tighter.
      return std::min(max_seconds, std::max(min_seconds, est));
    }
  }
  return max_seconds;
}

void BusyStat::merge(const BusyStat& other) {
  calls += other.calls;
  thread_slots += other.thread_slots;
  busy_seconds += other.busy_seconds;
  max_thread_busy += other.max_thread_busy;
  max_imbalance = std::max(max_imbalance, other.max_imbalance);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::RngSamples: return "rng_samples";
    case Counter::NnzProcessed: return "nnz_processed";
    case Counter::Flops: return "flops";
    case Counter::ElemsMoved: return "elems_moved";
    case Counter::BytesMoved: return "bytes_moved";
    case Counter::BytesGenerated: return "bytes_generated";
    case Counter::KernelBlocks: return "kernel_blocks";
    case Counter::SketchCalls: return "sketch_calls";
    case Counter::TunerCacheHits: return "tuner_cache_hits";
    case Counter::TunerCacheMisses: return "tuner_cache_misses";
    case Counter::TunerCandidatesTimed: return "tuner_candidates_timed";
    case Counter::KernelDispatches: return "kernel_dispatch";
    case Counter::RunDegradations: return "run_degradations";
    case Counter::RunCancelled: return "run_cancelled";
    case Counter::RunDeadlineHits: return "run_deadline_hits";
    case Counter::RunBudgetHits: return "run_budget_hits";
    case Counter::BatchJobs: return "batch_jobs";
    case Counter::BatchSteals: return "batch_steals";
    case Counter::ScheduleBuilds: return "schedule_builds";
    case Counter::ScheduleBlocks: return "schedule_blocks";
    case Counter::ScheduleImbalanceEstMilli:
      return "schedule_imbalance_est_milli";
    case Counter::kCount: break;
  }
  return "?";
}

void add(Counter c, std::uint64_t v) {
  if (!enabled()) return;
  local_record().counters[static_cast<std::size_t>(c)] += v;
}

void add(const KernelCounters& kc) {
  if (!enabled()) return;
  auto& counters = local_record().counters;
  counters[static_cast<std::size_t>(Counter::RngSamples)] += kc.rng_samples;
  counters[static_cast<std::size_t>(Counter::NnzProcessed)] += kc.nnz_processed;
  counters[static_cast<std::size_t>(Counter::Flops)] += kc.flops;
  counters[static_cast<std::size_t>(Counter::ElemsMoved)] += kc.elems_moved;
  counters[static_cast<std::size_t>(Counter::BytesMoved)] += kc.bytes_moved;
  counters[static_cast<std::size_t>(Counter::BytesGenerated)] +=
      kc.bytes_generated;
  counters[static_cast<std::size_t>(Counter::KernelBlocks)] += kc.kernel_blocks;
}

void add_parallel_busy(const std::string& name, int nthreads,
                       const double* busy_seconds) {
  if (!enabled() || nthreads <= 0) return;
  BusyStat call;
  call.calls = 1;
  call.thread_slots = static_cast<std::uint64_t>(nthreads);
  double max_busy = 0.0;
  for (int t = 0; t < nthreads; ++t) {
    call.busy_seconds += busy_seconds[t];
    max_busy = std::max(max_busy, busy_seconds[t]);
  }
  call.max_thread_busy = max_busy;
  const double mean = call.busy_seconds / static_cast<double>(nthreads);
  call.max_imbalance = mean > 0.0 ? max_busy / mean : 1.0;
  local_record().busy[trace::intern(name)].merge(call);
}

void add_span(const std::string& name, double seconds, std::uint64_t count) {
  const bool perf_on = enabled();
  const bool trace_on = trace::armed();
  if (!perf_on && !trace_on) return;
  const std::uint32_t id = trace::intern(name);
  if (perf_on) local_record().spans[id].record(seconds, count);
  if (trace_on) trace::complete(id, seconds);
}

Span::Span(const char* name)
    : name_id_(0), armed_(enabled()), trace_armed_(trace::armed()) {
  if (!armed_ && !trace_armed_) return;
  name_id_ = trace::intern(name);
  if (armed_) {
    g_live_spans.fetch_add(1, std::memory_order_relaxed);
    start_ = std::chrono::steady_clock::now();
  }
  if (trace_armed_) trace::begin(name_id_);
}

Span::~Span() {
  if (trace_armed_) trace::end(name_id_);
  if (!armed_) return;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  local_record().spans[name_id_].record(secs);
  g_live_spans.fetch_sub(1, std::memory_order_relaxed);
}

Snapshot snapshot() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  Snapshot out;
  reg.retired.merge_into(out);
  for (const ThreadRecord* rec : reg.live) rec->merge_into(out);
  return out;
}

void reset() {
  // Resetting under a live Span would let its destructor re-post a partial
  // duration into the "zeroed" table — a torn reset. Documented contract;
  // enforced where it's cheap.
  assert(g_live_spans.load(std::memory_order_relaxed) == 0 &&
         "perf::reset() called while a perf::Span is live");
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired.clear();
  for (ThreadRecord* rec : reg.live) rec->clear();
}

}  // namespace rsketch::perf
