#include "perf/perf.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "support/env.hpp"

namespace rsketch::perf {

namespace {

bool env_toggle() {
  const char* v = std::getenv("RSKETCH_PERF");
  if (v == nullptr || *v == '\0') return false;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "on" || s == "yes") return true;
  if (s == "0" || s == "false" || s == "off" || s == "no") return false;
  // A typo'd toggle must not silently flip telemetry on or off.
  env_warn_once("RSKETCH_PERF", v, "expected 0/1/on/off; telemetry disabled");
  return false;
}

std::atomic<bool> g_enabled{env_toggle()};

/// One thread's private accumulation state. Plain (non-atomic) fields: only
/// the owning thread writes, and snapshot()/reset() run when no instrumented
/// region is active (documented contract).
struct ThreadRecord {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::map<std::string, SpanStat> spans;

  void merge_into(Snapshot& out) const {
    for (int i = 0; i < kNumCounters; ++i) out.counters[static_cast<std::size_t>(i)] += counters[static_cast<std::size_t>(i)];
    for (const auto& [name, st] : spans) {
      auto& dst = out.spans[name];
      dst.count += st.count;
      dst.seconds += st.seconds;
    }
  }

  void clear() {
    counters.fill(0);
    spans.clear();
  }
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadRecord*> live;
  // Counts merged from threads that have already exited.
  ThreadRecord retired;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

/// Registers the thread's record on first use; merges it into `retired` and
/// deregisters on thread exit (merge-on-join).
struct ThreadRecordHolder {
  ThreadRecord rec;

  ThreadRecordHolder() {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.push_back(&rec);
  }

  ~ThreadRecordHolder() {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (int i = 0; i < kNumCounters; ++i) {
      reg.retired.counters[static_cast<std::size_t>(i)] +=
          rec.counters[static_cast<std::size_t>(i)];
    }
    for (const auto& [name, st] : rec.spans) {
      auto& dst = reg.retired.spans[name];
      dst.count += st.count;
      dst.seconds += st.seconds;
    }
    reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), &rec),
                   reg.live.end());
  }
};

ThreadRecord& local_record() {
  thread_local ThreadRecordHolder holder;
  return holder.rec;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::RngSamples: return "rng_samples";
    case Counter::NnzProcessed: return "nnz_processed";
    case Counter::Flops: return "flops";
    case Counter::ElemsMoved: return "elems_moved";
    case Counter::BytesMoved: return "bytes_moved";
    case Counter::BytesGenerated: return "bytes_generated";
    case Counter::KernelBlocks: return "kernel_blocks";
    case Counter::SketchCalls: return "sketch_calls";
    case Counter::TunerCacheHits: return "tuner_cache_hits";
    case Counter::TunerCacheMisses: return "tuner_cache_misses";
    case Counter::TunerCandidatesTimed: return "tuner_candidates_timed";
    case Counter::KernelDispatches: return "kernel_dispatch";
    case Counter::kCount: break;
  }
  return "?";
}

void add(Counter c, std::uint64_t v) {
  if (!enabled()) return;
  local_record().counters[static_cast<std::size_t>(c)] += v;
}

void add(const KernelCounters& kc) {
  if (!enabled()) return;
  auto& counters = local_record().counters;
  counters[static_cast<std::size_t>(Counter::RngSamples)] += kc.rng_samples;
  counters[static_cast<std::size_t>(Counter::NnzProcessed)] += kc.nnz_processed;
  counters[static_cast<std::size_t>(Counter::Flops)] += kc.flops;
  counters[static_cast<std::size_t>(Counter::ElemsMoved)] += kc.elems_moved;
  counters[static_cast<std::size_t>(Counter::BytesMoved)] += kc.bytes_moved;
  counters[static_cast<std::size_t>(Counter::BytesGenerated)] +=
      kc.bytes_generated;
  counters[static_cast<std::size_t>(Counter::KernelBlocks)] += kc.kernel_blocks;
}

void add_span(const std::string& name, double seconds, std::uint64_t count) {
  if (!enabled()) return;
  auto& st = local_record().spans[name];
  st.count += count;
  st.seconds += seconds;
}

Span::Span(const char* name) : name_(name), armed_(enabled()) {
  if (armed_) start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!armed_) return;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  auto& st = local_record().spans[name_];
  st.count += 1;
  st.seconds += secs;
}

Snapshot snapshot() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  Snapshot out;
  reg.retired.merge_into(out);
  for (const ThreadRecord* rec : reg.live) rec->merge_into(out);
  return out;
}

void reset() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired.clear();
  for (ThreadRecord* rec : reg.live) rec->clear();
}

}  // namespace rsketch::perf
