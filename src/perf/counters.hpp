// Plain software-counter aggregate filled by the sketch kernels.
//
// Kept separate from perf.hpp so low-level headers (sketch/config.hpp) can
// embed it without pulling in the thread-local registry machinery. All fields
// are exact counts derived from the sparse structure — the kernels compute
// them per outer-block call (outside the nonzero loop), so collecting them
// costs O(block columns) extra work, not O(nnz·d).
#pragma once

#include <cstdint>

namespace rsketch::perf {

/// Exact work/traffic accounting for one or more kernel invocations.
///
/// `elems_moved` counts matrix elements of A and Â read or written (the unit
/// of the paper's one-layer cache model, §III-A); `rng_samples` counts
/// entries of S generated on the fly (never loaded from memory). The
/// measured computational intensity comparable to `roofline.cpp`'s modeled
/// CI is therefore flops / (elems_moved + rng_samples).
struct KernelCounters {
  std::uint64_t rng_samples = 0;      ///< entries of S generated on the fly
  std::uint64_t nnz_processed = 0;    ///< stored entries of A consumed
  std::uint64_t flops = 0;            ///< 2·d1 per consumed nonzero (axpy)
  std::uint64_t elems_moved = 0;      ///< elements of A and Â read or written
  std::uint64_t bytes_moved = 0;      ///< the same traffic in bytes (values + indices)
  std::uint64_t bytes_generated = 0;  ///< bytes of S produced (never stored)
  std::uint64_t kernel_blocks = 0;    ///< kernel invocations (outer block pairs)

  void merge(const KernelCounters& o) {
    rng_samples += o.rng_samples;
    nnz_processed += o.nnz_processed;
    flops += o.flops;
    elems_moved += o.elems_moved;
    bytes_moved += o.bytes_moved;
    bytes_generated += o.bytes_generated;
    kernel_blocks += o.kernel_blocks;
  }

  /// Measured CI in the paper's units: flops per element moved or generated.
  double intensity_per_element() const {
    const double denom =
        static_cast<double>(elems_moved) + static_cast<double>(rng_samples);
    return denom > 0.0 ? static_cast<double>(flops) / denom : 0.0;
  }

  /// Measured CI against actual memory traffic only (flops per byte) — the
  /// number to put on a DRAM roofline next to hardware counters.
  double intensity_per_byte() const {
    return bytes_moved > 0
               ? static_cast<double>(flops) / static_cast<double>(bytes_moved)
               : 0.0;
  }

  bool empty() const {
    return rng_samples == 0 && nnz_processed == 0 && flops == 0 &&
           elems_moved == 0 && kernel_blocks == 0;
  }
};

}  // namespace rsketch::perf
