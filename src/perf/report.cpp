#include "perf/report.hpp"

#include <omp.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "analysis/machine.hpp"
#include "analysis/roofline.hpp"
#include "support/env.hpp"

namespace rsketch::perf {

namespace {

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

Json machine_info_json(bool probe_bandwidth) {
  Json m = Json::object();
  char host[256] = {0};
  if (gethostname(host, sizeof host - 1) != 0) host[0] = '\0';
  m["hostname"] = std::string(host);
  m["logical_cpus"] = static_cast<long long>(sysconf(_SC_NPROCESSORS_ONLN));
  m["omp_max_threads"] = static_cast<long long>(omp_get_max_threads());
  m["cache_bytes"] = static_cast<long long>(detect_cache_bytes());
#ifdef __VERSION__
  m["compiler"] = std::string(__VERSION__);
#endif
#ifdef __linux__
  m["os"] = "linux";
#endif
  if (probe_bandwidth || env_int("RSKETCH_PERF_MACHINE", 0) != 0) {
    // Small STREAM pass (cache-busting but quick) + the paper's h for the
    // default sampler, so reports carry what the roofline model needs.
    const StreamResult& stream = cached_stream_result();
    m["stream_copy_gbps"] = stream.copy_gbps;
    m["stream_triad_gbps"] = stream.triad_gbps;
    m["h_uniform_xoshiro_batch"] =
        measure_h(Dist::Uniform, RngBackend::XoshiroBatch, stream);
    m["h_pm1_xoshiro_batch"] =
        measure_h(Dist::PmOne, RngBackend::XoshiroBatch, stream);
  }
  return m;
}

ReportBuilder::ReportBuilder(std::string name)
    : active_(enabled()), name_(std::move(name)) {}

void ReportBuilder::config(const std::string& key, const std::string& value) {
  if (active_) config_[key] = value;
}
void ReportBuilder::config(const std::string& key, const char* value) {
  if (active_) config_[key] = std::string(value);
}
void ReportBuilder::config(const std::string& key, double value) {
  if (active_) config_[key] = value;
}
void ReportBuilder::config(const std::string& key, long long value) {
  if (active_) config_[key] = value;
}

void ReportBuilder::timing(const std::string& label, double seconds) {
  if (!active_) return;
  Json row = Json::object();
  row["label"] = label;
  row["seconds"] = seconds;
  timings_.push_back(std::move(row));
}

void ReportBuilder::timing(const std::string& label, double seconds,
                           const SketchStats& stats) {
  if (!active_) return;
  totals_.merge(stats.counters);
  Json row = Json::object();
  row["label"] = label;
  row["seconds"] = seconds;
  row["sample_seconds"] = stats.sample_seconds;
  row["convert_seconds"] = stats.convert_seconds;
  row["gflops"] = stats.gflops;
  row["rng_samples"] = stats.samples_generated;
  row["nnz_processed"] = stats.counters.nnz_processed;
  row["intensity_flops_per_elem"] = stats.counters.intensity_per_element();
  if (stats.thread_imbalance > 0.0) {
    row["threads_used"] = static_cast<long long>(stats.threads_used);
    row["thread_imbalance"] = stats.thread_imbalance;
  }
  if (stats.schedule_imbalance_est > 0.0) {
    row["schedule_imbalance_est"] = stats.schedule_imbalance_est;
  }
  timings_.push_back(std::move(row));
}

void ReportBuilder::add_counters(const KernelCounters& kc) {
  if (active_) totals_.merge(kc);
}

void ReportBuilder::counter(const std::string& name, std::uint64_t value) {
  if (active_) extra_counters_[name] = static_cast<unsigned long long>(value);
}

void ReportBuilder::derived(const std::string& key, double value) {
  if (active_) extra_derived_[key] = value;
}

void ReportBuilder::hardware(const HwCounters& hw) {
  if (!active_) return;
  hw_ = hw;
  have_hw_ = true;
}

Json ReportBuilder::build() const {
  Json doc = Json::object();
  doc["schema_version"] = 2;
  doc["name"] = name_;
  doc["timestamp"] = iso8601_utc_now();
  const Json machine = machine_info_json();
  doc["machine"] = machine;
  doc["config"] = config_;

  // Counter totals: explicit per-run aggregates merged with the global
  // catalog snapshot (spans included) taken now.
  const Snapshot snap = snapshot();
  KernelCounters totals = totals_;
  if (totals.empty()) {
    // Benchmarks that never threaded SketchStats through timing() still get
    // the globally accumulated kernel counters.
    totals.rng_samples = snap.get(Counter::RngSamples);
    totals.nnz_processed = snap.get(Counter::NnzProcessed);
    totals.flops = snap.get(Counter::Flops);
    totals.elems_moved = snap.get(Counter::ElemsMoved);
    totals.bytes_moved = snap.get(Counter::BytesMoved);
    totals.bytes_generated = snap.get(Counter::BytesGenerated);
    totals.kernel_blocks = snap.get(Counter::KernelBlocks);
  }
  Json counters = Json::object();
  counters["rng_samples"] = totals.rng_samples;
  counters["nnz_processed"] = totals.nnz_processed;
  counters["flops"] = totals.flops;
  counters["elems_moved"] = totals.elems_moved;
  counters["bytes_moved"] = totals.bytes_moved;
  counters["bytes_generated"] = totals.bytes_generated;
  counters["kernel_blocks"] = totals.kernel_blocks;
  counters["sketch_calls"] = snap.get(Counter::SketchCalls);
  counters["tuner_cache_hits"] = snap.get(Counter::TunerCacheHits);
  counters["tuner_cache_misses"] = snap.get(Counter::TunerCacheMisses);
  counters["tuner_candidates_timed"] = snap.get(Counter::TunerCandidatesTimed);
  counters["kernel_dispatch"] = snap.get(Counter::KernelDispatches);
  counters["run_degradations"] = snap.get(Counter::RunDegradations);
  counters["run_cancelled"] = snap.get(Counter::RunCancelled);
  counters["run_deadline_hits"] = snap.get(Counter::RunDeadlineHits);
  counters["run_budget_hits"] = snap.get(Counter::RunBudgetHits);
  counters["batch_jobs"] = snap.get(Counter::BatchJobs);
  counters["batch_steals"] = snap.get(Counter::BatchSteals);
  counters["schedule_builds"] = snap.get(Counter::ScheduleBuilds);
  counters["schedule_blocks"] = snap.get(Counter::ScheduleBlocks);
  counters["schedule_imbalance_est_milli"] =
      snap.get(Counter::ScheduleImbalanceEstMilli);
  for (const auto& [k, v] : extra_counters_.members()) counters[k] = v;
  doc["counters"] = std::move(counters);

  // schema_version 2 span shape: totals plus the log-bucket latency summary,
  // and — for names that ran as parallel regions — the thread-busy split.
  Json spans = Json::object();
  for (const auto& [name, st] : snap.spans) {
    Json s = Json::object();
    s["count"] = st.count;
    s["seconds"] = st.seconds;
    s["min_seconds"] = st.min_seconds;
    s["max_seconds"] = st.max_seconds;
    s["mean_seconds"] = st.mean_seconds();
    s["p50_seconds"] = st.percentile(0.50);
    s["p95_seconds"] = st.percentile(0.95);
    s["p99_seconds"] = st.percentile(0.99);
    spans[name] = std::move(s);
  }
  double worst_imbalance = 0.0;
  for (const auto& [name, bs] : snap.busy) {
    Json& s = spans[name];  // creates a busy-only entry if the span is absent
    if (s.is_null()) {
      s = Json::object();
      s["count"] = bs.calls;
      s["seconds"] = bs.busy_seconds;
    }
    s["parallel_calls"] = bs.calls;
    s["thread_slots"] = bs.thread_slots;
    s["busy_seconds"] = bs.busy_seconds;
    s["max_thread_busy_seconds"] = bs.max_thread_busy;
    s["mean_thread_busy_seconds"] = bs.mean_thread_busy();
    s["thread_imbalance"] = bs.max_imbalance;
    worst_imbalance = std::max(worst_imbalance, bs.max_imbalance);
  }
  doc["spans"] = std::move(spans);

  Json hardware = Json::object();
  hardware["available"] = have_hw_ && hw_.valid;
  if (have_hw_ && hw_.valid) {
    hardware["cycles"] = hw_.cycles;
    hardware["instructions"] = hw_.instructions;
    hardware["cache_references"] = hw_.cache_references;
    hardware["cache_misses"] = hw_.cache_misses;
    hardware["ipc"] = hw_.ipc();
    hardware["multiplex_scale"] = hw_.multiplex_scale;
  }
  doc["hardware"] = std::move(hardware);

  Json derived = Json::object();
  derived["measured_intensity_flops_per_elem"] = totals.intensity_per_element();
  derived["measured_intensity_flops_per_byte"] = totals.intensity_per_byte();
  if (totals.nnz_processed > 0) {
    derived["samples_per_nnz"] = static_cast<double>(totals.rng_samples) /
                                 static_cast<double>(totals.nnz_processed);
  }
  // When the machine probe measured h, put the modeled Eq. (5) intensity
  // 2M/(4+Mh) next to the measurement so measured-vs-modeled is one diff.
  if (const Json* h = machine.find("h_uniform_xoshiro_batch")) {
    const Json* cache = machine.find("cache_bytes");
    const double m_elems = cache != nullptr ? cache->as_double() / 4.0 : 0.0;
    if (m_elems > 0.0) {
      derived["modeled_ci_small_rho"] = ci_small_rho(m_elems, h->as_double());
    }
  }
  if (worst_imbalance > 0.0) derived["thread_imbalance"] = worst_imbalance;
  for (const auto& [k, v] : extra_derived_.members()) derived[k] = v;
  doc["derived"] = std::move(derived);

  doc["timings"] = timings_;
  return doc;
}

std::string ReportBuilder::write() const {
  if (!active_) return "";
  const std::string dir = env_string("RSKETCH_PERF_OUT", ".");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort; open reports
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "perf: cannot write %s\n", path.c_str());
    return "";
  }
  out << build().dump(2) << "\n";
  out.close();
  std::printf("perf report: %s\n", path.c_str());
  return path;
}

namespace {

void check_counter(const Json& counters, const char* key,
                   std::vector<std::string>& errs) {
  const Json* v = counters.find(key);
  if (v == nullptr || !v->is_number() || v->as_double() < 0.0) {
    errs.push_back(std::string("counters.") + key +
                   " missing or not a nonnegative number");
  }
}

}  // namespace

std::vector<std::string> validate_bench_report(const Json& doc) {
  std::vector<std::string> errs;
  if (!doc.is_object()) {
    errs.push_back("document is not a JSON object");
    return errs;
  }
  const Json* version = doc.find("schema_version");
  long long schema = 0;
  if (version == nullptr || !version->is_int() ||
      (version->as_int() != 1 && version->as_int() != 2)) {
    errs.push_back("schema_version missing or not in {1, 2}");
  } else {
    schema = version->as_int();
  }
  const Json* name = doc.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    errs.push_back("name missing or empty");
  }

  const Json* machine = doc.find("machine");
  if (machine == nullptr || !machine->is_object()) {
    errs.push_back("machine section missing");
  } else {
    for (const char* key : {"logical_cpus", "omp_max_threads", "cache_bytes"}) {
      const Json* v = machine->find(key);
      if (v == nullptr || !v->is_number() || v->as_double() <= 0.0) {
        errs.push_back(std::string("machine.") + key +
                       " missing or not positive");
      }
    }
  }

  if (const Json* config = doc.find("config"); config == nullptr || !config->is_object()) {
    errs.push_back("config section missing");
  }

  const Json* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    errs.push_back("counters section missing");
  } else {
    check_counter(*counters, "rng_samples", errs);
    check_counter(*counters, "nnz_processed", errs);
    check_counter(*counters, "flops", errs);
    check_counter(*counters, "elems_moved", errs);
  }

  // Span entries: v1 carries {count, seconds}; v2 adds the latency-histogram
  // summary, which must be internally consistent (a malformed histogram or a
  // percentile inversion means the aggregation itself is broken).
  if (const Json* spans = doc.find("spans");
      spans != nullptr && spans->is_object()) {
    for (const auto& [sname, s] : spans->members()) {
      if (!s.is_object()) {
        errs.push_back("spans." + sname + " is not an object");
        continue;
      }
      for (const char* key : {"count", "seconds"}) {
        const Json* v = s.find(key);
        if (v == nullptr || !v->is_number() || v->as_double() < 0.0) {
          errs.push_back("spans." + sname + "." + key +
                         " missing or not a nonnegative number");
        }
      }
      if (schema < 2) continue;
      const Json* mn = s.find("min_seconds");
      const Json* mx = s.find("max_seconds");
      if (mn != nullptr && mx != nullptr && mn->is_number() &&
          mx->is_number() && mn->as_double() > mx->as_double()) {
        errs.push_back("spans." + sname + ": min_seconds > max_seconds");
      }
      const Json* p50 = s.find("p50_seconds");
      const Json* p95 = s.find("p95_seconds");
      const Json* p99 = s.find("p99_seconds");
      if (p50 != nullptr && p95 != nullptr && p50->is_number() &&
          p95->is_number() && p50->as_double() > p95->as_double()) {
        errs.push_back("spans." + sname + ": p50_seconds > p95_seconds");
      }
      if (p95 != nullptr && p99 != nullptr && p95->is_number() &&
          p99->is_number() && p95->as_double() > p99->as_double()) {
        errs.push_back("spans." + sname + ": p95_seconds > p99_seconds");
      }
      if (const Json* imb = s.find("thread_imbalance");
          imb != nullptr && imb->is_number() && imb->as_double() < 1.0) {
        errs.push_back("spans." + sname + ".thread_imbalance < 1");
      }
    }
  }

  const Json* derived = doc.find("derived");
  if (derived == nullptr || !derived->is_object()) {
    errs.push_back("derived section missing");
  } else {
    const Json* ci = derived->find("measured_intensity_flops_per_elem");
    if (ci == nullptr || !ci->is_number()) {
      errs.push_back("derived.measured_intensity_flops_per_elem missing");
    }
    if (const Json* imb = derived->find("thread_imbalance");
        imb != nullptr && imb->is_number() && imb->as_double() < 1.0) {
      errs.push_back("derived.thread_imbalance < 1");
    }
  }

  const Json* hardware = doc.find("hardware");
  if (hardware == nullptr || !hardware->is_object()) {
    errs.push_back("hardware section missing");
  } else {
    const Json* avail = hardware->find("available");
    if (avail == nullptr || !avail->is_bool()) {
      errs.push_back("hardware.available missing or not a bool");
    } else if (avail->as_bool()) {
      for (const char* key : {"cycles", "instructions"}) {
        const Json* v = hardware->find(key);
        if (v == nullptr || !v->is_number()) {
          errs.push_back(std::string("hardware.") + key + " missing");
        }
      }
    }
  }

  const Json* timings = doc.find("timings");
  if (timings == nullptr || !timings->is_array() || timings->size() == 0) {
    errs.push_back("timings missing or empty");
  } else {
    for (std::size_t i = 0; i < timings->size(); ++i) {
      const Json& row = timings->at(i);
      const Json* label = row.find("label");
      const Json* seconds = row.find("seconds");
      if (!row.is_object() || label == nullptr || !label->is_string() ||
          seconds == nullptr || !seconds->is_number() ||
          seconds->as_double() < 0.0) {
        errs.push_back("timings[" + std::to_string(i) +
                       "] lacks string label / nonnegative seconds");
      }
    }
  }
  return errs;
}

}  // namespace rsketch::perf
