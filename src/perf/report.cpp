#include "perf/report.hpp"

#include <omp.h>
#include <unistd.h>

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "analysis/machine.hpp"
#include "analysis/roofline.hpp"
#include "support/env.hpp"

namespace rsketch::perf {

namespace {

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace

Json machine_info_json(bool probe_bandwidth) {
  Json m = Json::object();
  char host[256] = {0};
  if (gethostname(host, sizeof host - 1) != 0) host[0] = '\0';
  m["hostname"] = std::string(host);
  m["logical_cpus"] = static_cast<long long>(sysconf(_SC_NPROCESSORS_ONLN));
  m["omp_max_threads"] = static_cast<long long>(omp_get_max_threads());
  m["cache_bytes"] = static_cast<long long>(detect_cache_bytes());
#ifdef __VERSION__
  m["compiler"] = std::string(__VERSION__);
#endif
#ifdef __linux__
  m["os"] = "linux";
#endif
  if (probe_bandwidth || env_int("RSKETCH_PERF_MACHINE", 0) != 0) {
    // Small STREAM pass (cache-busting but quick) + the paper's h for the
    // default sampler, so reports carry what the roofline model needs.
    const StreamResult stream = stream_benchmark(1 << 21, 2);
    m["stream_copy_gbps"] = stream.copy_gbps;
    m["stream_triad_gbps"] = stream.triad_gbps;
    m["h_uniform_xoshiro_batch"] =
        measure_h(Dist::Uniform, RngBackend::XoshiroBatch, stream);
    m["h_pm1_xoshiro_batch"] =
        measure_h(Dist::PmOne, RngBackend::XoshiroBatch, stream);
  }
  return m;
}

ReportBuilder::ReportBuilder(std::string name)
    : active_(enabled()), name_(std::move(name)) {}

void ReportBuilder::config(const std::string& key, const std::string& value) {
  if (active_) config_[key] = value;
}
void ReportBuilder::config(const std::string& key, const char* value) {
  if (active_) config_[key] = std::string(value);
}
void ReportBuilder::config(const std::string& key, double value) {
  if (active_) config_[key] = value;
}
void ReportBuilder::config(const std::string& key, long long value) {
  if (active_) config_[key] = value;
}

void ReportBuilder::timing(const std::string& label, double seconds) {
  if (!active_) return;
  Json row = Json::object();
  row["label"] = label;
  row["seconds"] = seconds;
  timings_.push_back(std::move(row));
}

void ReportBuilder::timing(const std::string& label, double seconds,
                           const SketchStats& stats) {
  if (!active_) return;
  totals_.merge(stats.counters);
  Json row = Json::object();
  row["label"] = label;
  row["seconds"] = seconds;
  row["sample_seconds"] = stats.sample_seconds;
  row["convert_seconds"] = stats.convert_seconds;
  row["gflops"] = stats.gflops;
  row["rng_samples"] = stats.samples_generated;
  row["nnz_processed"] = stats.counters.nnz_processed;
  row["intensity_flops_per_elem"] = stats.counters.intensity_per_element();
  timings_.push_back(std::move(row));
}

void ReportBuilder::add_counters(const KernelCounters& kc) {
  if (active_) totals_.merge(kc);
}

void ReportBuilder::counter(const std::string& name, std::uint64_t value) {
  if (active_) extra_counters_[name] = static_cast<unsigned long long>(value);
}

void ReportBuilder::derived(const std::string& key, double value) {
  if (active_) extra_derived_[key] = value;
}

void ReportBuilder::hardware(const HwCounters& hw) {
  if (!active_) return;
  hw_ = hw;
  have_hw_ = true;
}

Json ReportBuilder::build() const {
  Json doc = Json::object();
  doc["schema_version"] = 1;
  doc["name"] = name_;
  doc["timestamp"] = iso8601_utc_now();
  const Json machine = machine_info_json();
  doc["machine"] = machine;
  doc["config"] = config_;

  // Counter totals: explicit per-run aggregates merged with the global
  // catalog snapshot (spans included) taken now.
  const Snapshot snap = snapshot();
  KernelCounters totals = totals_;
  if (totals.empty()) {
    // Benchmarks that never threaded SketchStats through timing() still get
    // the globally accumulated kernel counters.
    totals.rng_samples = snap.get(Counter::RngSamples);
    totals.nnz_processed = snap.get(Counter::NnzProcessed);
    totals.flops = snap.get(Counter::Flops);
    totals.elems_moved = snap.get(Counter::ElemsMoved);
    totals.bytes_moved = snap.get(Counter::BytesMoved);
    totals.bytes_generated = snap.get(Counter::BytesGenerated);
    totals.kernel_blocks = snap.get(Counter::KernelBlocks);
  }
  Json counters = Json::object();
  counters["rng_samples"] = totals.rng_samples;
  counters["nnz_processed"] = totals.nnz_processed;
  counters["flops"] = totals.flops;
  counters["elems_moved"] = totals.elems_moved;
  counters["bytes_moved"] = totals.bytes_moved;
  counters["bytes_generated"] = totals.bytes_generated;
  counters["kernel_blocks"] = totals.kernel_blocks;
  counters["sketch_calls"] = snap.get(Counter::SketchCalls);
  counters["tuner_cache_hits"] = snap.get(Counter::TunerCacheHits);
  counters["tuner_cache_misses"] = snap.get(Counter::TunerCacheMisses);
  counters["tuner_candidates_timed"] = snap.get(Counter::TunerCandidatesTimed);
  counters["kernel_dispatch"] = snap.get(Counter::KernelDispatches);
  for (const auto& [k, v] : extra_counters_.members()) counters[k] = v;
  doc["counters"] = std::move(counters);

  Json spans = Json::object();
  for (const auto& [name, st] : snap.spans) {
    Json s = Json::object();
    s["count"] = st.count;
    s["seconds"] = st.seconds;
    spans[name] = std::move(s);
  }
  doc["spans"] = std::move(spans);

  Json hardware = Json::object();
  hardware["available"] = have_hw_ && hw_.valid;
  if (have_hw_ && hw_.valid) {
    hardware["cycles"] = hw_.cycles;
    hardware["instructions"] = hw_.instructions;
    hardware["cache_references"] = hw_.cache_references;
    hardware["cache_misses"] = hw_.cache_misses;
    hardware["ipc"] = hw_.ipc();
    hardware["multiplex_scale"] = hw_.multiplex_scale;
  }
  doc["hardware"] = std::move(hardware);

  Json derived = Json::object();
  derived["measured_intensity_flops_per_elem"] = totals.intensity_per_element();
  derived["measured_intensity_flops_per_byte"] = totals.intensity_per_byte();
  if (totals.nnz_processed > 0) {
    derived["samples_per_nnz"] = static_cast<double>(totals.rng_samples) /
                                 static_cast<double>(totals.nnz_processed);
  }
  // When the machine probe measured h, put the modeled Eq. (5) intensity
  // 2M/(4+Mh) next to the measurement so measured-vs-modeled is one diff.
  if (const Json* h = machine.find("h_uniform_xoshiro_batch")) {
    const Json* cache = machine.find("cache_bytes");
    const double m_elems = cache != nullptr ? cache->as_double() / 4.0 : 0.0;
    if (m_elems > 0.0) {
      derived["modeled_ci_small_rho"] = ci_small_rho(m_elems, h->as_double());
    }
  }
  for (const auto& [k, v] : extra_derived_.members()) derived[k] = v;
  doc["derived"] = std::move(derived);

  doc["timings"] = timings_;
  return doc;
}

std::string ReportBuilder::write() const {
  if (!active_) return "";
  const std::string dir = env_string("RSKETCH_PERF_OUT", ".");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort; open reports
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "perf: cannot write %s\n", path.c_str());
    return "";
  }
  out << build().dump(2) << "\n";
  out.close();
  std::printf("perf report: %s\n", path.c_str());
  return path;
}

namespace {

void check_counter(const Json& counters, const char* key,
                   std::vector<std::string>& errs) {
  const Json* v = counters.find(key);
  if (v == nullptr || !v->is_number() || v->as_double() < 0.0) {
    errs.push_back(std::string("counters.") + key +
                   " missing or not a nonnegative number");
  }
}

}  // namespace

std::vector<std::string> validate_bench_report(const Json& doc) {
  std::vector<std::string> errs;
  if (!doc.is_object()) {
    errs.push_back("document is not a JSON object");
    return errs;
  }
  const Json* version = doc.find("schema_version");
  if (version == nullptr || !version->is_int() || version->as_int() != 1) {
    errs.push_back("schema_version missing or != 1");
  }
  const Json* name = doc.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    errs.push_back("name missing or empty");
  }

  const Json* machine = doc.find("machine");
  if (machine == nullptr || !machine->is_object()) {
    errs.push_back("machine section missing");
  } else {
    for (const char* key : {"logical_cpus", "omp_max_threads", "cache_bytes"}) {
      const Json* v = machine->find(key);
      if (v == nullptr || !v->is_number() || v->as_double() <= 0.0) {
        errs.push_back(std::string("machine.") + key +
                       " missing or not positive");
      }
    }
  }

  if (const Json* config = doc.find("config"); config == nullptr || !config->is_object()) {
    errs.push_back("config section missing");
  }

  const Json* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    errs.push_back("counters section missing");
  } else {
    check_counter(*counters, "rng_samples", errs);
    check_counter(*counters, "nnz_processed", errs);
    check_counter(*counters, "flops", errs);
    check_counter(*counters, "elems_moved", errs);
  }

  const Json* derived = doc.find("derived");
  if (derived == nullptr || !derived->is_object()) {
    errs.push_back("derived section missing");
  } else {
    const Json* ci = derived->find("measured_intensity_flops_per_elem");
    if (ci == nullptr || !ci->is_number()) {
      errs.push_back("derived.measured_intensity_flops_per_elem missing");
    }
  }

  const Json* hardware = doc.find("hardware");
  if (hardware == nullptr || !hardware->is_object()) {
    errs.push_back("hardware section missing");
  } else {
    const Json* avail = hardware->find("available");
    if (avail == nullptr || !avail->is_bool()) {
      errs.push_back("hardware.available missing or not a bool");
    } else if (avail->as_bool()) {
      for (const char* key : {"cycles", "instructions"}) {
        const Json* v = hardware->find(key);
        if (v == nullptr || !v->is_number()) {
          errs.push_back(std::string("hardware.") + key + " missing");
        }
      }
    }
  }

  const Json* timings = doc.find("timings");
  if (timings == nullptr || !timings->is_array() || timings->size() == 0) {
    errs.push_back("timings missing or empty");
  } else {
    for (std::size_t i = 0; i < timings->size(); ++i) {
      const Json& row = timings->at(i);
      const Json* label = row.find("label");
      const Json* seconds = row.find("seconds");
      if (!row.is_object() || label == nullptr || !label->is_string() ||
          seconds == nullptr || !seconds->is_number() ||
          seconds->as_double() < 0.0) {
        errs.push_back("timings[" + std::to_string(i) +
                       "] lacks string label / nonnegative seconds");
      }
    }
  }
  return errs;
}

}  // namespace rsketch::perf
