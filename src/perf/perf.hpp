// Scoped-counter / span telemetry core (RSKETCH_PERF).
//
// Design: every thread accumulates into a thread-local record (no atomics on
// the hot path); records are registered in a global registry and merged on
// snapshot() or when the thread exits (merge-on-join). With the toggle off,
// add()/Span compile down to one predictable branch on a cached flag, and the
// kernels skip counter collection entirely — tier-1 timings are unaffected.
//
// Enable with RSKETCH_PERF=1 (any value other than "" / "0"), or at runtime
// via set_enabled(true) (tests, tools). See docs/OBSERVABILITY.md for the
// counter catalog and the JSON report schema built on top of this.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "perf/counters.hpp"

namespace rsketch::perf {

/// Whether telemetry collection is on (RSKETCH_PERF env, overridable).
bool enabled();

/// Runtime override of the env toggle (tests and tools).
void set_enabled(bool on);

/// Global software-counter catalog. Keep counter_name() in sync.
enum class Counter : int {
  RngSamples = 0,  ///< entries of S generated on the fly
  NnzProcessed,    ///< entries of A streamed (once per block row of S)
  Flops,           ///< useful flops (2 per nonzero per sketch row)
  ElemsMoved,      ///< elements of A and Â read or written
  BytesMoved,      ///< the same traffic in bytes (values + indices)
  BytesGenerated,  ///< bytes of S produced (never stored)
  KernelBlocks,    ///< kernel invocations (outer block pairs)
  SketchCalls,     ///< top-level sketch_into / streaming_sketch calls
  TunerCacheHits,        ///< tuning-cache lookups answered without re-timing
  TunerCacheMisses,      ///< tuning-cache lookups that fell through
  TunerCandidatesTimed,  ///< pilot sub-sketches timed by the empirical tuner
  KernelDispatches,      ///< sketch calls routed through the micro-kernel ISA
                         ///< table; the chosen tier shows as a
                         ///< kernel_dispatch/<isa> span
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

/// Stable snake_case name used as the JSON key.
const char* counter_name(Counter c);

/// Add `v` to counter `c` in this thread's record. No-op when disabled.
void add(Counter c, std::uint64_t v);

/// Bulk-add a kernel-counter aggregate onto the global catalog.
void add(const KernelCounters& kc);

/// Aggregated statistics of one named span.
struct SpanStat {
  std::uint64_t count = 0;
  double seconds = 0.0;
};

/// Record `seconds` (over `count` executions) under span `name` directly —
/// used to fold externally measured intervals (e.g. the kernels' sample
/// timers) into the span table. No-op when disabled.
void add_span(const std::string& name, double seconds, std::uint64_t count = 1);

/// RAII wall-clock span: records elapsed time under `name` on destruction.
/// `name` must outlive the span (string literals).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time merge of every thread's record (live threads included).
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::map<std::string, SpanStat> spans;

  std::uint64_t get(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
};

Snapshot snapshot();

/// Zero every thread record and the retired accumulator. Only call when no
/// instrumented region is concurrently running.
void reset();

}  // namespace rsketch::perf
