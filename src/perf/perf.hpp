// Scoped-counter / span telemetry core (RSKETCH_PERF).
//
// Design: every thread accumulates into a thread-local record (no atomics on
// the hot path); records are registered in a global registry and merged on
// snapshot() or when the thread exits (merge-on-join). With the toggle off,
// add()/Span compile down to one predictable branch on a cached flag, and the
// kernels skip counter collection entirely — tier-1 timings are unaffected.
//
// Span names are routed through the trace interning table (perf/trace.hpp) at
// construction, so a span name can never dangle: the table owns every string,
// and dynamically built names are as legal as literals. When tracing is armed
// (RSKETCH_TRACE), Span and add_span additionally emit timeline events into
// the per-thread trace ring buffers.
//
// Enable with RSKETCH_PERF=1 (any value other than "" / "0"), or at runtime
// via set_enabled(true) (tests, tools). See docs/OBSERVABILITY.md for the
// counter catalog and the JSON report schema built on top of this.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "perf/counters.hpp"

namespace rsketch::perf {

/// Whether telemetry collection is on (RSKETCH_PERF env, overridable).
bool enabled();

/// Runtime override of the env toggle (tests and tools).
void set_enabled(bool on);

/// Global software-counter catalog. Keep counter_name() in sync.
enum class Counter : int {
  RngSamples = 0,  ///< entries of S generated on the fly
  NnzProcessed,    ///< entries of A streamed (once per block row of S)
  Flops,           ///< useful flops (2 per nonzero per sketch row)
  ElemsMoved,      ///< elements of A and Â read or written
  BytesMoved,      ///< the same traffic in bytes (values + indices)
  BytesGenerated,  ///< bytes of S produced (never stored)
  KernelBlocks,    ///< kernel invocations (outer block pairs)
  SketchCalls,     ///< top-level sketch_into / streaming_sketch calls
  TunerCacheHits,        ///< tuning-cache lookups answered without re-timing
  TunerCacheMisses,      ///< tuning-cache lookups that fell through
  TunerCandidatesTimed,  ///< pilot sub-sketches timed by the empirical tuner
  KernelDispatches,      ///< sketch calls routed through the micro-kernel ISA
                         ///< table; the chosen tier shows as a
                         ///< kernel_dispatch/<isa> span
  RunDegradations,       ///< degradation-ladder steps taken under budget
                         ///< pressure (support/run_control.hpp)
  RunCancelled,          ///< runs stopped by cooperative cancellation
  RunDeadlineHits,       ///< runs stopped by a wall-clock deadline
  RunBudgetHits,         ///< runs stopped by workspace-budget exhaustion
  BatchJobs,             ///< sketch jobs executed by a SketchBatch
                         ///< (sketch/batch.hpp)
  BatchSteals,           ///< executor tasks stolen from another worker's
                         ///< queue (support/executor.hpp)
  ScheduleBuilds,        ///< block schedules built for parallel sketch calls
                         ///< (sketch/schedule.hpp)
  ScheduleBlocks,        ///< outer blocks those schedules partitioned
  ScheduleImbalanceEstMilli,  ///< predicted max/mean thread cost, in
                              ///< thousandths, summed over builds (divide by
                              ///< schedule_builds for the mean prediction)
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

/// Stable snake_case name used as the JSON key.
const char* counter_name(Counter c);

/// Add `v` to counter `c` in this thread's record. No-op when disabled.
void add(Counter c, std::uint64_t v);

/// Bulk-add a kernel-counter aggregate onto the global catalog.
void add(const KernelCounters& kc);

/// Aggregated statistics of one named span: count/total plus a log-bucketed
/// latency histogram (power-of-two nanosecond buckets) from which min / max /
/// mean / p50 / p95 / p99 are derived. Bucket resolution bounds the
/// percentile error to one octave; estimates are additionally clamped to the
/// exact [min, max] envelope, so p50 <= p95 <= p99 and min <= mean <= max
/// hold by construction.
struct SpanStat {
  /// 2^0 .. 2^47 ns (~1.6 days) — wider than any span this library times.
  static constexpr int kHistogramBuckets = 48;

  std::uint64_t count = 0;
  double seconds = 0.0;
  double min_seconds = 0.0;  ///< exact; 0 until the first record
  double max_seconds = 0.0;  ///< exact
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Fold in `n` executions totalling `secs` seconds (each bucketed at the
  /// per-execution mean when n > 1).
  void record(double secs, std::uint64_t n = 1);

  void merge(const SpanStat& other);

  double mean_seconds() const {
    return count > 0 ? seconds / static_cast<double>(count) : 0.0;
  }

  /// Histogram-estimated q-quantile (q in [0, 1]) in seconds: linear
  /// interpolation inside the owning bucket, clamped to [min, max].
  double percentile(double q) const;
};

/// Per-parallel-region thread-busy aggregate: how evenly a named parallel
/// span's work spread across its thread team, folded over every call.
/// `max_imbalance` is the worst single call's max-thread-busy over
/// mean-thread-busy (1.0 = perfectly balanced; ~nthreads = one thread did
/// everything) — the derived.thread_imbalance the reports emit.
struct BusyStat {
  std::uint64_t calls = 0;
  std::uint64_t thread_slots = 0;  ///< sum over calls of team size
  double busy_seconds = 0.0;       ///< sum over calls and threads
  double max_thread_busy = 0.0;    ///< sum over calls of the per-call max
  double max_imbalance = 0.0;

  void merge(const BusyStat& other);
  double mean_thread_busy() const {
    return thread_slots > 0 ? busy_seconds / static_cast<double>(thread_slots)
                            : 0.0;
  }
};

/// Record one parallel region's per-thread busy seconds under span `name`
/// (team of `nthreads`, busy_seconds[t] = time thread t spent in kernel
/// work). Called once per region from the joining thread. No-op when
/// disabled.
void add_parallel_busy(const std::string& name, int nthreads,
                       const double* busy_seconds);

/// Record `seconds` (over `count` executions) under span `name` directly —
/// used to fold externally measured intervals (e.g. the kernels' sample
/// timers) into the span table. When tracing is armed, also emits a Chrome
/// "X" (complete) event of that duration ending now. No-op when disabled
/// and tracing is off.
void add_span(const std::string& name, double seconds, std::uint64_t count = 1);

/// RAII wall-clock span: records elapsed time under `name` on destruction,
/// and emits trace begin/end events when tracing is armed. The name is
/// interned on construction, so temporaries are safe.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::uint32_t name_id_;
  bool armed_;        ///< records into the span table (perf enabled)
  bool trace_armed_;  ///< emits trace events (tracing armed)
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time merge of every thread's record (live threads included).
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::map<std::string, SpanStat> spans;
  std::map<std::string, BusyStat> busy;

  std::uint64_t get(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
};

Snapshot snapshot();

/// Zero every thread record and the retired accumulator. Only call when no
/// instrumented region is concurrently running — debug builds assert that no
/// Span is live anywhere in the process.
void reset();

}  // namespace rsketch::perf
