#include "perf/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/common.hpp"

namespace rsketch::perf {

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::Null) type_ = Type::Object;
  require(type_ == Type::Object, "Json::operator[]: not an object");
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(key, Json());
  return obj_.back().second;
}

void Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  require(type_ == Type::Array, "Json::push_back: not an array");
  arr_.push_back(std::move(v));
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; emit null
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Int: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld", int_);
      out += buf;
      return;
    }
    case Type::Double: append_number(out, double_); return;
    case Type::String: append_escaped(out, str_); return;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw io_error("JSON parse error at offset " + std::to_string(pos_) +
                   ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      out[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (no surrogate-pair handling; the
          // emitter only writes \u for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      fail("invalid number");
    }
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end != nullptr && *end == '\0') return Json(v);
    }
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    return Json(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace rsketch::perf
