#include "perf/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/env.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define RSKETCH_TRACE_HAS_TSC 1
#endif

namespace rsketch::perf::trace {

namespace {

constexpr std::size_t kDefaultCapacity = 1u << 16;

std::atomic<bool> g_armed{false};

// ---- trace clock ----------------------------------------------------------
// steady_clock nanoseconds since a process-wide epoch by default. On x86-64,
// RSKETCH_TRACE_CLOCK=tsc switches the per-event read to rdtsc (cheaper and
// finer-grained than a vDSO clock call) with a ticks-per-nanosecond
// calibration taken at arm time; invariant-TSC hosts only — the steady
// default never misorders across frequency changes.

std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

#ifdef RSKETCH_TRACE_HAS_TSC
bool g_use_tsc = false;
std::uint64_t g_tsc_epoch = 0;
double g_ns_per_tick = 0.0;

void calibrate_tsc() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = __rdtsc();
  // ~2 ms busy window: long enough for a sub-percent rate estimate, short
  // enough that arming is imperceptible.
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(2)) {
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t c1 = __rdtsc();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  g_ns_per_tick = c1 > c0 ? ns / static_cast<double>(c1 - c0) : 0.0;
  g_tsc_epoch = c0;
  g_use_tsc = g_ns_per_tick > 0.0;
}
#endif

inline std::uint64_t now_ns() {
#ifdef RSKETCH_TRACE_HAS_TSC
  if (g_use_tsc) {
    const std::uint64_t ticks = __rdtsc() - g_tsc_epoch;
    return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                      g_ns_per_tick);
  }
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

// ---- string interning -----------------------------------------------------
// Ids index g_names; the deque-of-strings never moves a stored string, so
// name_of() references stay valid without holding the lock. Cold path only.

struct InternTable {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> ids;
  std::vector<std::unique_ptr<std::string>> names;

  static InternTable& instance() {
    static InternTable* t = new InternTable;  // intentionally leaked: events
    return *t;                                // may outlive static dtors
  }
};

const std::string& unknown_name() {
  static const std::string q = "?";
  return q;
}

// ---- per-thread ring buffers ----------------------------------------------

struct ThreadTrace {
  std::vector<Event> ring;  // capacity slots, allocated at registration
  std::uint64_t written = 0;
  int tid = 0;
  std::string thread_name;

  /// Events still in the ring, oldest first.
  void collect(std::vector<Event>& out) const {
    const std::size_t cap = ring.size();
    if (cap == 0) return;
    const std::uint64_t kept = std::min<std::uint64_t>(written, cap);
    for (std::uint64_t k = written - kept; k < written; ++k) {
      out.push_back(ring[static_cast<std::size_t>(k % cap)]);
    }
  }

  std::uint64_t dropped() const {
    const std::size_t cap = ring.size();
    return cap == 0 || written <= cap ? 0 : written - cap;
  }
};

/// A thread's trace preserved after exit: full event list in order.
struct RetiredTrace {
  std::vector<Event> events;
  std::uint64_t written = 0;
  std::uint64_t dropped = 0;
  int tid = 0;
  std::string thread_name;
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadTrace*> live;
  std::vector<RetiredTrace> retired;
  std::size_t capacity = 0;  // resolved at first registration or arm()
  int next_tid = 0;

  std::size_t resolve_capacity() {
    if (capacity == 0) {
      const long long env = env_int("RSKETCH_TRACE_BUF",
                                    static_cast<long long>(kDefaultCapacity));
      capacity = std::bit_ceil(static_cast<std::size_t>(
          std::max<long long>(8, env)));
    }
    return capacity;
  }

  static Registry& instance() {
    static Registry* r = new Registry;  // leaked: see InternTable
    return *r;
  }
};

/// Merge a live ring into the retired list (registry lock held) and reset
/// it. One RetiredTrace per tid: repeated retirements of the same thread —
/// a pool worker parking between batches, then finally exiting — append to
/// the same record instead of multiplying thread entries in the export.
void merge_retired_locked(Registry& reg, ThreadTrace& rec) {
  if (rec.written == 0 && rec.thread_name.empty()) return;
  RetiredTrace* dst = nullptr;
  for (RetiredTrace& rt : reg.retired) {
    if (rt.tid == rec.tid) {
      dst = &rt;
      break;
    }
  }
  if (dst == nullptr) {
    if (rec.written == 0 && rec.thread_name.empty()) return;
    reg.retired.emplace_back();
    dst = &reg.retired.back();
    dst->tid = rec.tid;
  }
  rec.collect(dst->events);
  dst->written += rec.written;
  dst->dropped += rec.dropped();
  if (!rec.thread_name.empty()) dst->thread_name = rec.thread_name;
  rec.written = 0;
}

struct ThreadTraceHolder {
  ThreadTrace rec;

  ThreadTraceHolder() {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    rec.ring.resize(reg.resolve_capacity());
    rec.tid = reg.next_tid++;
    reg.live.push_back(&rec);
  }

  ~ThreadTraceHolder() {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    merge_retired_locked(reg, rec);
    reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), &rec),
                   reg.live.end());
  }
};

ThreadTrace& local_trace() {
  thread_local ThreadTraceHolder holder;
  return holder.rec;
}

inline void record(EventType type, std::uint32_t name_id, double value) {
  ThreadTrace& tt = local_trace();
  const std::size_t cap = tt.ring.size();
  Event& e = tt.ring[static_cast<std::size_t>(tt.written % cap)];
  e.ts_ns = now_ns();
  e.name_id = name_id;
  e.type = type;
  e.value = value;
  ++tt.written;
}

// ---- at-exit export -------------------------------------------------------

std::string& output_path() {
  static std::string* p = new std::string;  // leaked: used from atexit
  return *p;
}

void write_at_exit() {
  if (!output_path().empty()) write(output_path());
}

std::once_flag g_atexit_once;

/// RSKETCH_TRACE=<path> arms tracing at startup and exports on exit.
const bool g_env_armed = [] {
  const char* v = std::getenv("RSKETCH_TRACE");
  if (v == nullptr || *v == '\0') return false;
  set_output(v);
  arm();
  return true;
}();

const char* phase_token(EventType t) {
  switch (t) {
    case EventType::Begin: return "B";
    case EventType::End: return "E";
    case EventType::Complete: return "X";
    case EventType::Instant: return "i";
    case EventType::Counter: return "C";
  }
  return "i";
}

}  // namespace

bool armed() { return g_armed.load(std::memory_order_relaxed); }

void arm(std::size_t capacity_events) {
  {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (capacity_events > 0 && reg.capacity == 0) {
      reg.capacity = std::bit_ceil(std::max<std::size_t>(8, capacity_events));
    }
    (void)reg.resolve_capacity();
  }
#ifdef RSKETCH_TRACE_HAS_TSC
  if (!armed() && env_string("RSKETCH_TRACE_CLOCK", "steady") == "tsc") {
    calibrate_tsc();
  }
#endif
  std::call_once(g_atexit_once, [] { std::atexit(write_at_exit); });
  g_armed.store(true, std::memory_order_relaxed);
}

void disarm() { g_armed.store(false, std::memory_order_relaxed); }

void clear() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired.clear();
  for (ThreadTrace* tt : reg.live) {
    tt->written = 0;
    tt->thread_name.clear();
  }
}

void set_output(const std::string& path) { output_path() = path; }

const std::string& output() { return output_path(); }

std::uint32_t intern(const std::string& name) {
  InternTable& t = InternTable::instance();
  std::lock_guard<std::mutex> lock(t.mu);
  const auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(t.names.size());
  t.names.push_back(std::make_unique<std::string>(name));
  t.ids.emplace(name, id);
  return id;
}

const std::string& name_of(std::uint32_t id) {
  InternTable& t = InternTable::instance();
  std::lock_guard<std::mutex> lock(t.mu);
  if (id >= t.names.size()) return unknown_name();
  return *t.names[id];  // stable address: entries are never moved or freed
}

void begin(std::uint32_t name_id) {
  if (!armed()) return;
  record(EventType::Begin, name_id, 0.0);
}

void end(std::uint32_t name_id) {
  if (!armed()) return;
  record(EventType::End, name_id, 0.0);
}

void complete(std::uint32_t name_id, double seconds) {
  if (!armed()) return;
  record(EventType::Complete, name_id, seconds * 1e9);
}

void instant(std::uint32_t name_id, double value) {
  if (!armed()) return;
  record(EventType::Instant, name_id, value);
}

void counter(std::uint32_t name_id, double value) {
  if (!armed()) return;
  record(EventType::Counter, name_id, value);
}

void set_thread_name(const std::string& name) {
  if (!armed()) return;
  local_trace().thread_name = name;
}

void set_thread_name_if_unset(const std::string& name) {
  if (!armed()) return;
  ThreadTrace& rec = local_trace();
  if (rec.thread_name.empty()) rec.thread_name = name;
}

void retire_current_thread() {
  if (!armed()) return;
  ThreadTrace& rec = local_trace();
  if (rec.written == 0) return;
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Keep the live record's name: the ring resets, the label must not. The
  // merge copies (not moves) thread_name, so both records stay labelled.
  merge_retired_locked(reg, rec);
}

std::uint64_t dropped_events() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t total = 0;
  for (const ThreadTrace* tt : reg.live) total += tt->dropped();
  for (const RetiredTrace& rt : reg.retired) total += rt.dropped;
  return total;
}

std::uint64_t recorded_events() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t total = 0;
  for (const ThreadTrace* tt : reg.live) total += tt->written;
  for (const RetiredTrace& rt : reg.retired) total += rt.written;
  return total;
}

Json chrome_trace_json() {
  // Snapshot every buffer under the registry lock, then build JSON unlocked.
  struct ThreadDump {
    std::vector<Event> events;
    std::uint64_t dropped = 0;
    int tid = 0;
    std::string thread_name;
  };
  std::vector<ThreadDump> dumps;
  {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const ThreadTrace* tt : reg.live) {
      if (tt->written == 0) {
        // A parked pool worker already flushed everything (events AND name)
        // into its retired record; emitting the empty live ring too would
        // double-count the thread.
        bool retired_has_tid = false;
        for (const RetiredTrace& rt : reg.retired) {
          if (rt.tid == tt->tid) {
            retired_has_tid = true;
            break;
          }
        }
        if (retired_has_tid) continue;
      }
      ThreadDump d;
      tt->collect(d.events);
      d.dropped = tt->dropped();
      d.tid = tt->tid;
      d.thread_name = tt->thread_name;
      dumps.push_back(std::move(d));
    }
    for (const RetiredTrace& rt : reg.retired) {
      ThreadDump d;
      d.events = rt.events;
      d.dropped = rt.dropped;
      d.tid = rt.tid;
      d.thread_name = rt.thread_name;
      dumps.push_back(std::move(d));
    }
  }

  const long long pid = static_cast<long long>(getpid());
  Json events = Json::array();
  std::uint64_t total_dropped = 0;
  for (const ThreadDump& d : dumps) {
    total_dropped += d.dropped;
    {
      Json meta = Json::object();
      meta["name"] = "thread_name";
      meta["ph"] = "M";
      meta["pid"] = pid;
      meta["tid"] = static_cast<long long>(d.tid);
      Json args = Json::object();
      args["name"] = d.thread_name.empty()
                         ? "thread-" + std::to_string(d.tid)
                         : d.thread_name;
      meta["args"] = std::move(args);
      events.push_back(std::move(meta));
    }
    if (d.dropped > 0) {
      // Perfetto renders this as a counter track; the summarizer reads it to
      // report per-thread loss next to otherData.dropped_events.
      Json c = Json::object();
      c["name"] = "dropped_events";
      c["ph"] = "C";
      c["ts"] = d.events.empty()
                    ? 0.0
                    : static_cast<double>(d.events.front().ts_ns) / 1e3;
      c["pid"] = pid;
      c["tid"] = static_cast<long long>(d.tid);
      Json args = Json::object();
      args["value"] = static_cast<unsigned long long>(d.dropped);
      c["args"] = std::move(args);
      events.push_back(std::move(c));
    }
    for (const Event& e : d.events) {
      Json j = Json::object();
      j["name"] = name_of(e.name_id);
      j["cat"] = "rsketch";
      j["ph"] = phase_token(e.type);
      // Chrome trace timestamps are microseconds (double).
      const double ts_us = static_cast<double>(e.ts_ns) / 1e3;
      switch (e.type) {
        case EventType::Complete:
          // The recorder stamps X events at their END; Chrome wants the start.
          j["ts"] = ts_us - e.value / 1e3;
          j["dur"] = e.value / 1e3;
          break;
        case EventType::Instant: {
          j["ts"] = ts_us;
          j["s"] = "t";
          Json args = Json::object();
          args["value"] = e.value;
          j["args"] = std::move(args);
          break;
        }
        case EventType::Counter: {
          j["ts"] = ts_us;
          Json args = Json::object();
          args["value"] = e.value;
          j["args"] = std::move(args);
          break;
        }
        default:
          j["ts"] = ts_us;
          break;
      }
      j["pid"] = pid;
      j["tid"] = static_cast<long long>(d.tid);
      events.push_back(std::move(j));
    }
  }

  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  Json other = Json::object();
  other["dropped_events"] = static_cast<unsigned long long>(total_dropped);
  other["threads"] = static_cast<long long>(dumps.size());
#ifdef RSKETCH_TRACE_HAS_TSC
  other["clock"] = g_use_tsc ? "tsc" : "steady";
#else
  other["clock"] = "steady";
#endif
  doc["otherData"] = std::move(other);
  return doc;
}

std::string write(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return "";
  }
  out << chrome_trace_json().dump(0) << "\n";
  out.close();
  std::printf("trace: %s\n", path.c_str());
  return path;
}

}  // namespace rsketch::perf::trace
