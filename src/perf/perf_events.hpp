// Hardware performance counters via Linux perf_event_open, with graceful
// fallback when the syscall is unavailable or forbidden (non-Linux builds,
// unprivileged containers, kernel.perf_event_paranoid >= 3, seccomp).
//
// The group counts this process on any CPU: cycles, retired instructions,
// last-level-cache references and misses (the DRAM-traffic proxy used to
// cross-check the roofline model). Counters may be multiplexed by the
// kernel; readings are scaled by time_enabled/time_running as usual.
#pragma once

#include <cstdint>
#include <string>

namespace rsketch::perf {

/// One reading of the hardware group. `valid` is false when the backend is
/// unavailable — consumers must treat every other field as meaningless then.
struct HwCounters {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;  ///< LLC references (DRAM-traffic proxy)
  std::uint64_t cache_misses = 0;      ///< LLC misses
  double multiplex_scale = 1.0;  ///< time_enabled/time_running of the leader

  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

/// A process-wide group of the four hardware events above.
///
/// Usage: construct, start() before the measured region, stop() after,
/// read() for scaled totals. Every method is safe to call when the backend
/// failed to open — they become no-ops and read() returns valid == false.
class PerfEventGroup {
 public:
  PerfEventGroup();
  ~PerfEventGroup();
  PerfEventGroup(const PerfEventGroup&) = delete;
  PerfEventGroup& operator=(const PerfEventGroup&) = delete;

  /// True when at least the cycle counter opened successfully.
  bool available() const { return leader_fd_ >= 0; }

  /// Human-readable reason the group is unavailable ("" when available).
  const std::string& error() const { return error_; }

  /// Reset and enable the group (no-op when unavailable).
  void start();

  /// Disable the group (no-op when unavailable).
  void stop();

  /// Scaled totals since the last start(). valid == available().
  HwCounters read() const;

 private:
  int leader_fd_ = -1;
  int fds_[4] = {-1, -1, -1, -1};  // cycles, instructions, llc refs, misses
  std::string error_;
};

}  // namespace rsketch::perf
