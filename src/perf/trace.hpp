// Per-thread trace timeline recorder (RSKETCH_TRACE) with Chrome-trace export.
//
// Design: each thread records begin/end/complete/instant/counter events into a
// private fixed-capacity ring buffer — zero allocation and no atomic
// read-modify-writes on the hot path; the only shared state touched per event
// is one relaxed load of the armed flag (the same one-branch-when-off
// discipline as perf::Span). When the ring wraps, the OLDEST events are
// overwritten (newest are kept) and the overwritten count is reported as
// dropped_events. Buffers are registered in a global registry and survive
// thread exit until export or clear(), so short-lived workers still appear in
// the timeline.
//
// Names are interned once into a process-wide string table and referenced by
// id, which (a) keeps events fixed-size, and (b) makes dynamically built span
// names legal — the table owns every string, so nothing recorded can dangle.
// Hot call sites intern once through a function-local static:
//
//   static const std::uint32_t id = perf::trace::intern("kernel_jki");
//   perf::trace::Scope scope(id);   // no-op branch when tracing is off
//
// Arm with RSKETCH_TRACE=<path> (export written on normal process exit), with
// `sketch_tool --trace <path>`, or at runtime via arm()/set_output() (tests).
// The export is Chrome trace-event JSON ("JSON object format"), loadable in
// Perfetto / chrome://tracing and summarized by tools/trace_summary.py. See
// docs/OBSERVABILITY.md for the event catalog and overhead notes.
#pragma once

#include <cstdint>
#include <string>

#include "perf/json.hpp"

namespace rsketch::perf::trace {

/// Event kinds, mapped to Chrome trace-event phases on export.
enum class EventType : std::uint8_t {
  Begin,     ///< ph "B": slice opens at ts
  End,       ///< ph "E": slice closes at ts
  Complete,  ///< ph "X": slice of `value` ns ending at ts (post-hoc spans)
  Instant,   ///< ph "i": point event, `value` rides along as args.value
  Counter    ///< ph "C": sampled counter track, args.value = `value`
};

/// One ring-buffer slot. Timestamps are nanoseconds on the trace clock
/// (steady_clock by default; see RSKETCH_TRACE_CLOCK).
struct Event {
  std::uint64_t ts_ns = 0;
  std::uint32_t name_id = 0;
  EventType type = EventType::Instant;
  double value = 0.0;
};

/// Whether tracing is armed (one relaxed atomic load; safe to call anywhere).
bool armed();

/// Arm tracing. `capacity_events` fixes the per-thread ring size (rounded up
/// to a power of two); 0 uses RSKETCH_TRACE_BUF or the 65536 default. Buffers
/// already registered keep their capacity. Idempotent.
void arm(std::size_t capacity_events = 0);

/// Stop recording. Buffered events are kept until clear() or export.
void disarm();

/// Drop every buffered event, retired buffers included, and reset thread ids
/// and drop counts. Only call when no traced region is concurrently running
/// (same contract as perf::reset()).
void clear();

/// Where the at-exit exporter writes ("" disables it). Set automatically from
/// RSKETCH_TRACE; sketch_tool --trace and tests set it explicitly.
void set_output(const std::string& path);
const std::string& output();

/// Intern `name`, returning its stable id. The table owns the string for the
/// life of the process, so callers may pass temporaries freely. Thread-safe;
/// cold path (mutex + hash lookup) — cache the id at hot call sites.
std::uint32_t intern(const std::string& name);

/// Reverse lookup; "?" for an id never handed out.
const std::string& name_of(std::uint32_t id);

/// Record one event in this thread's ring. No-ops (after one branch) when
/// tracing is not armed.
void begin(std::uint32_t name_id);
void end(std::uint32_t name_id);
/// Post-hoc slice: `seconds` long, ending now (Chrome "X" phase).
void complete(std::uint32_t name_id, double seconds);
void instant(std::uint32_t name_id, double value = 0.0);
void counter(std::uint32_t name_id, double value);

/// Label this thread in the exported timeline ("omp-worker-3"). Idempotent;
/// last call wins. No-op when tracing is not armed.
void set_thread_name(const std::string& name);

/// Like set_thread_name, but keeps an existing label. OMP regions use this:
/// an executor pool worker running a kernel sequentially must stay
/// "pool-worker-N" in the timeline, not be relabelled "omp-worker-0".
void set_thread_name_if_unset(const std::string& name);

/// Flush this thread's ring into the retired list and reset it, keeping the
/// thread_name so later events on the same thread stay labelled. Pool
/// workers call this before parking: a drained executor then holds no
/// buffered events hostage in live rings, and repeated park/unpark cycles
/// merge into ONE retired record per thread id (no duplicate thread_name
/// metadata, no per-cycle allocation of interned names). No-op when tracing
/// is not armed or the thread recorded nothing since the last flush.
void retire_current_thread();

/// Events overwritten by ring wraparound, summed over all threads.
std::uint64_t dropped_events();

/// Events successfully recorded (before any wraparound loss), all threads.
std::uint64_t recorded_events();

/// RAII begin/end pair. Captures the armed state once so a trace armed or
/// disarmed mid-scope cannot unbalance the event stream.
class Scope {
 public:
  explicit Scope(std::uint32_t name_id) : name_id_(name_id), armed_(armed()) {
    if (armed_) begin(name_id_);
  }
  ~Scope() {
    if (armed_) end(name_id_);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::uint32_t name_id_;
  bool armed_;
};

/// Build the Chrome trace-event document from everything buffered so far:
/// {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}.
/// Includes per-thread thread_name metadata and a dropped_events counter.
Json chrome_trace_json();

/// Serialize chrome_trace_json() to `path`. Returns the path written, or ""
/// on I/O failure (with one line on stderr).
std::string write(const std::string& path);

}  // namespace rsketch::perf::trace
