// Structured JSON benchmark reports (BENCH_<name>.json).
//
// A ReportBuilder collects config, timings, software counters, and hardware
// counters for one benchmark binary and serializes them under the schema
// documented in docs/OBSERVABILITY.md (schema_version 2: spans carry
// min/max/mean/p50/p95/p99 latency fields and parallel spans a per-thread
// busy/imbalance summary; the validator also accepts legacy schema_version 1
// documents). Builders are active only when perf::enabled() — with
// RSKETCH_PERF unset every method is a cheap no-op, so the bench binaries
// carry the reporting calls unconditionally.
//
// Output location: $RSKETCH_PERF_OUT (directory, created if missing) or the
// current working directory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perf/json.hpp"
#include "perf/perf.hpp"
#include "perf/perf_events.hpp"
#include "sketch/config.hpp"

namespace rsketch::perf {

/// Host description attached to every report. `probe_bandwidth` additionally
/// runs a small STREAM pass and the RNG-throughput probe to measure the
/// paper's h (adds ~100 ms); also triggered by RSKETCH_PERF_MACHINE=1.
Json machine_info_json(bool probe_bandwidth = false);

/// Accumulates one benchmark's telemetry and renders/writes the JSON report.
class ReportBuilder {
 public:
  explicit ReportBuilder(std::string name);

  /// False when RSKETCH_PERF is off: every mutator below no-ops and write()
  /// returns "".
  bool active() const { return active_; }

  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, const char* value);
  void config(const std::string& key, double value);
  void config(const std::string& key, long long value);

  /// Record a named timing (one row of the benchmark's table).
  void timing(const std::string& label, double seconds);

  /// Record a timing together with the sketch's software counters; the
  /// counters are merged into the report-level totals, and per-run derived
  /// rates ride along in the timings array.
  void timing(const std::string& label, double seconds,
              const SketchStats& stats);

  /// Merge a kernel-counter aggregate into the report totals.
  void add_counters(const KernelCounters& kc);

  /// Extra free-form counter (emitted under "counters").
  void counter(const std::string& name, std::uint64_t value);

  /// Extra derived metric (emitted under "derived").
  void derived(const std::string& key, double value);

  /// Attach one hardware-counter reading (emitted under "hardware").
  void hardware(const HwCounters& hw);

  /// Build the full document. Captures the global perf::snapshot() (spans +
  /// catalog counters) at call time.
  Json build() const;

  /// Serialize to $RSKETCH_PERF_OUT/BENCH_<name>.json (or ./BENCH_<name>.json)
  /// and return the path written; "" when inactive. Prints one status line to
  /// stdout on success.
  std::string write() const;

 private:
  bool active_;
  std::string name_;
  Json config_ = Json::object();
  Json timings_ = Json::array();
  Json extra_counters_ = Json::object();
  Json extra_derived_ = Json::object();
  KernelCounters totals_;
  HwCounters hw_;
  bool have_hw_ = false;
};

/// Validate a parsed BENCH_*.json document. Accepts schema_version 1 (legacy
/// {count, seconds} spans) and 2 (latency-histogram spans + thread-imbalance
/// fields, which are additionally checked for internal consistency:
/// min <= max, p50 <= p95 <= p99, imbalance >= 1). Returns an empty vector
/// when valid, else one message per violation.
std::vector<std::string> validate_bench_report(const Json& doc);

}  // namespace rsketch::perf
