// Minimal self-contained JSON document model: build, serialize, parse.
//
// Exists so the telemetry reports need no external dependency. Supports the
// subset the BENCH_*.json schema uses — objects (insertion-ordered), arrays,
// strings, numbers (with exact integer round-trip), booleans, null. The
// parser accepts standard JSON (it is the round-trip check for the emitter
// and the validator behind the `smoke` ctest label).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rsketch::perf {

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}  // NOLINT(runtime/explicit)
  Json(int v) : type_(Type::Int), int_(v) {}
  Json(unsigned int v) : type_(Type::Int), int_(v) {}
  Json(long v) : type_(Type::Int), int_(v) {}
  Json(unsigned long v) : type_(Type::Int), int_(static_cast<long long>(v)) {}
  Json(long long v) : type_(Type::Int), int_(v) {}
  Json(unsigned long long v)
      : type_(Type::Int), int_(static_cast<long long>(v)) {}
  Json(double v) : type_(Type::Double), double_(v) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Int || type_ == Type::Double; }
  bool is_int() const { return type_ == Type::Int; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  long long as_int() const {
    return type_ == Type::Double ? static_cast<long long>(double_) : int_;
  }
  double as_double() const {
    return type_ == Type::Int ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return str_; }

  /// Object access; inserts a null member when `key` is absent. Converts a
  /// Null value into an Object on first use (builder convenience).
  Json& operator[](const std::string& key);

  /// Array append. Converts a Null value into an Array on first use.
  void push_back(Json v);

  std::size_t size() const {
    return type_ == Type::Array ? arr_.size() : obj_.size();
  }
  bool contains(const std::string& key) const { return find(key) != nullptr; }

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;

  /// Array element access (valid index required).
  const Json& at(std::size_t i) const { return arr_[i]; }

  /// Insertion-ordered object members.
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Serialize. indent <= 0 renders compact single-line JSON.
  std::string dump(int indent = 2) const;

  /// Parse standard JSON. Throws rsketch::io_error on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace rsketch::perf
