#include "perf/perf_events.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace rsketch::perf {

#ifdef __linux__

namespace {

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int open_event(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 0;
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, 0));
}

/// Read one fd with multiplexing scaling; returns false on short read.
bool read_scaled(int fd, std::uint64_t* value, double* scale) {
  if (fd < 0) return false;
  std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
  const ssize_t got = ::read(fd, buf, sizeof buf);
  if (got != static_cast<ssize_t>(sizeof buf)) return false;
  double s = 1.0;
  if (buf[2] > 0 && buf[2] < buf[1]) {
    s = static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
  }
  *value = static_cast<std::uint64_t>(static_cast<double>(buf[0]) * s);
  if (scale != nullptr) *scale = s;
  return true;
}

}  // namespace

PerfEventGroup::PerfEventGroup() {
  fds_[0] = open_event(PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fds_[0] < 0) {
    error_ = std::string("perf_event_open(cycles): ") + std::strerror(errno);
    return;
  }
  leader_fd_ = fds_[0];
  // Siblings are best-effort: a PMU without an LLC event keeps the rest.
  fds_[1] = open_event(PERF_COUNT_HW_INSTRUCTIONS, leader_fd_);
  fds_[2] = open_event(PERF_COUNT_HW_CACHE_REFERENCES, leader_fd_);
  fds_[3] = open_event(PERF_COUNT_HW_CACHE_MISSES, leader_fd_);
}

PerfEventGroup::~PerfEventGroup() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void PerfEventGroup::start() {
  if (!available()) return;
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfEventGroup::stop() {
  if (!available()) return;
  ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

HwCounters PerfEventGroup::read() const {
  HwCounters out;
  if (!available()) return out;
  if (!read_scaled(fds_[0], &out.cycles, &out.multiplex_scale)) return out;
  read_scaled(fds_[1], &out.instructions, nullptr);
  read_scaled(fds_[2], &out.cache_references, nullptr);
  read_scaled(fds_[3], &out.cache_misses, nullptr);
  out.valid = true;
  return out;
}

#else  // !__linux__

PerfEventGroup::PerfEventGroup() : error_("perf_event_open: not Linux") {}
PerfEventGroup::~PerfEventGroup() = default;
void PerfEventGroup::start() {}
void PerfEventGroup::stop() {}
HwCounters PerfEventGroup::read() const { return HwCounters{}; }

#endif

}  // namespace rsketch::perf
