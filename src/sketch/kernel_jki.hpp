// Algorithm 4 of the paper: compute-kernel variant `jki` with on-the-fly
// random number generation and sample reuse.
//
// For one outer block pair (row block [i0, i0+d1) of Â, one vertical CSR
// block of A): walk the rows of the block; for every NONEMPTY row j,
// regenerate v = S[i0 : i0+d1, j] once and reuse it for every stored entry
// A[j, k] in the row via rank-1 updates Â[i0 : i0+d1, col0+k] += A[j,k]·v.
// Generates far fewer samples than kji (§III-B) at the price of
// sparsity-pattern-dependent column jumps in Â (§II-B2).
#pragma once

#include "dense/dense_matrix.hpp"
#include "perf/counters.hpp"
#include "rng/distributions.hpp"
#include "sparse/blocked_csr.hpp"
#include "support/timer.hpp"

namespace rsketch {

/// Apply the jki kernel for row block [i0, i0+d1) of Â against one vertical
/// block of A. `v` is caller scratch of at least d1 elements. When
/// `counters` is non-null the block's work/traffic totals are accumulated
/// into it (computed outside the nonzero loop; zero hot-path cost when null).
template <typename T>
void kernel_jki(DenseMatrix<T>& a_hat, index_t i0, index_t d1,
                const typename BlockedCsr<T>::Block& blk,
                SketchSampler<T>& sampler, T* v,
                AccumTimer* sample_timer = nullptr,
                perf::KernelCounters* counters = nullptr);

extern template void kernel_jki<float>(DenseMatrix<float>&, index_t, index_t,
                                       const BlockedCsr<float>::Block&,
                                       SketchSampler<float>&, float*,
                                       AccumTimer*, perf::KernelCounters*);
extern template void kernel_jki<double>(DenseMatrix<double>&, index_t, index_t,
                                        const BlockedCsr<double>::Block&,
                                        SketchSampler<double>&, double*,
                                        AccumTimer*, perf::KernelCounters*);

}  // namespace rsketch
