#include "sketch/sketch_right.hpp"

#include <omp.h>

#include <algorithm>

#include "dense/blas1.hpp"
#include "perf/perf.hpp"
#include "sketch/sketch.hpp"
#include "sparse/validate.hpp"
#include "support/aligned_buffer.hpp"
#include "support/timer.hpp"

namespace rsketch {

template <typename T>
SketchStats sketch_right_into(const SketchConfig& cfg, const CscMatrix<T>& a,
                              std::vector<T>& b_rowmajor) {
  cfg.validate(a.rows(), a.cols());
  if (cfg.check_inputs) {
    perf::Span span("validate_inputs");
    require_valid(a);
  }
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t d = cfg.d;
  b_rowmajor.assign(static_cast<std::size_t>(m * d), T{0});
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  const index_t n_cblocks = d == 0 ? 0 : ceil_div(d, bd);

  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : omp_get_max_threads();
  std::vector<std::uint64_t> samples(static_cast<std::size_t>(nthreads), 0);

  Timer timer;
#pragma omp parallel num_threads(nthreads) if (nthreads > 1)
  {
    // Per-thread sampler + scratch (the sampler is stateful).
    SketchSampler<T> sampler(cfg.seed, cfg.dist, cfg.backend);
    AlignedBuffer<T> v(bd);
#pragma omp for schedule(dynamic)
    for (index_t cb = 0; cb < n_cblocks; ++cb) {
      const index_t c0 = cb * bd;
      const index_t d1 = std::min(bd, d - c0);
      for (index_t k = 0; k < n; ++k) {
        const index_t lo = a.col_ptr()[static_cast<std::size_t>(k)];
        const index_t hi = a.col_ptr()[static_cast<std::size_t>(k) + 1];
        if (lo == hi) continue;  // column k of S never generated
        // v := S[c0 : c0+d1, k], generated once and reused for the whole
        // CSC column — the reuse Algorithm 4 needs blocked CSR to achieve.
        sampler.fill(c0, k, v.data(), d1);
        for (index_t p = lo; p < hi; ++p) {
          const index_t i = a.row_idx()[static_cast<std::size_t>(p)];
          axpy(d1, a.values()[static_cast<std::size_t>(p)], v.data(),
               b_rowmajor.data() + i * d + c0);
        }
      }
    }
    samples[static_cast<std::size_t>(omp_get_thread_num())] =
        sampler.samples_generated();
  }

  SketchStats stats;
  stats.total_seconds = timer.seconds();
  for (std::uint64_t s : samples) stats.samples_generated += s;
  const double flops = 2.0 * static_cast<double>(d) * a.nnz();
  stats.gflops =
      stats.total_seconds > 0 ? flops / stats.total_seconds / 1e9 : 0.0;

  const T scale = sketch_post_scale<T>(cfg);
  if (scale != T{1}) {
    scal(static_cast<index_t>(b_rowmajor.size()), scale, b_rowmajor.data());
  }
  return stats;
}

template <typename T>
DenseMatrix<T> materialize_right_S(const SketchConfig& cfg, index_t n) {
  DenseMatrix<T> s(cfg.d, n);
  const index_t d = cfg.d;
  const index_t bd = std::min(cfg.block_d, std::max<index_t>(d, 1));
  SketchSampler<T> sampler(cfg.seed, cfg.dist, cfg.backend);
  std::vector<T> v(static_cast<std::size_t>(bd));
  for (index_t k = 0; k < n; ++k) {
    for (index_t c0 = 0; c0 < d; c0 += bd) {
      const index_t d1 = std::min(bd, d - c0);
      sampler.fill(c0, k, v.data(), d1);
      for (index_t c = 0; c < d1; ++c) {
        s(c0 + c, k) = v[static_cast<std::size_t>(c)];
      }
    }
  }
  const T scale = sketch_post_scale<T>(cfg);
  if (scale != T{1}) {
    for (index_t k = 0; k < n; ++k) scal(d, scale, s.col(k));
  }
  return s;
}

template SketchStats sketch_right_into<float>(const SketchConfig&,
                                              const CscMatrix<float>&,
                                              std::vector<float>&);
template SketchStats sketch_right_into<double>(const SketchConfig&,
                                               const CscMatrix<double>&,
                                               std::vector<double>&);
template DenseMatrix<float> materialize_right_S<float>(const SketchConfig&,
                                                       index_t);
template DenseMatrix<double> materialize_right_S<double>(const SketchConfig&,
                                                         index_t);

}  // namespace rsketch
