#include "sketch/baselines.hpp"

#include <algorithm>

#include "dense/blas1.hpp"

namespace rsketch {

template <typename T>
void baseline_eigen_style(const DenseMatrix<T>& s, const CscMatrix<T>& a,
                          DenseMatrix<T>& out) {
  require(s.cols() == a.rows(), "baseline_eigen_style: S.cols != A.rows");
  if (out.rows() != s.rows() || out.cols() != a.cols()) {
    out.reset(s.rows(), a.cols());
  } else {
    out.set_zero();
  }
  const index_t d = s.rows();
  for (index_t k = 0; k < a.cols(); ++k) {
    // Eigen evaluates into the destination column after accumulating the
    // whole sparse column — same arithmetic as Julia-style but the write of
    // the destination happens once per column.
    T* ok = out.col(k);
    for (index_t p = a.col_ptr()[static_cast<std::size_t>(k)];
         p < a.col_ptr()[static_cast<std::size_t>(k) + 1]; ++p) {
      const index_t j = a.row_idx()[static_cast<std::size_t>(p)];
      axpy(d, a.values()[static_cast<std::size_t>(p)], s.col(j), ok);
    }
  }
}

template <typename T>
void baseline_julia_style(const DenseMatrix<T>& s, const CscMatrix<T>& a,
                          DenseMatrix<T>& out) {
  require(s.cols() == a.rows(), "baseline_julia_style: S.cols != A.rows");
  if (out.rows() != s.rows() || out.cols() != a.cols()) {
    out.reset(s.rows(), a.cols());
  } else {
    out.set_zero();
  }
  const index_t d = s.rows();
  // SparseArrays.jl mul!(C, X, A): nested loops col-of-A → nonzero → axpy.
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_idx();
  const auto& vv = a.values();
  for (index_t k = 0; k < a.cols(); ++k) {
    for (index_t p = cp[static_cast<std::size_t>(k)];
         p < cp[static_cast<std::size_t>(k) + 1]; ++p) {
      axpy(d, vv[static_cast<std::size_t>(p)],
           s.col(ri[static_cast<std::size_t>(p)]), out.col(k));
    }
  }
}

template <typename T>
void baseline_mkl_style(const std::vector<T>& s_t_rowmajor,
                        const CscMatrix<T>& a, index_t d,
                        std::vector<T>& out_t_rowmajor) {
  require(static_cast<index_t>(s_t_rowmajor.size()) == a.rows() * d,
          "baseline_mkl_style: S^T buffer must be m*d");
  out_t_rowmajor.assign(static_cast<std::size_t>(a.cols() * d), T{0});
  // Aᵀ in CSR has row k = column k of A; row-major output Âᵀ row k is the
  // contiguous d-vector Â[:, k]ᵀ. Standard inspector-executor CSR×dense.
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_idx();
  const auto& vv = a.values();
  for (index_t k = 0; k < a.cols(); ++k) {
    T* __restrict ok = out_t_rowmajor.data() + k * d;
    for (index_t p = cp[static_cast<std::size_t>(k)];
         p < cp[static_cast<std::size_t>(k) + 1]; ++p) {
      const index_t j = ri[static_cast<std::size_t>(p)];
      axpy(d, vv[static_cast<std::size_t>(p)], s_t_rowmajor.data() + j * d,
           ok);
    }
  }
}

template <typename T>
std::vector<T> pack_transposed_rowmajor(const DenseMatrix<T>& s) {
  std::vector<T> out(static_cast<std::size_t>(s.rows() * s.cols()));
  for (index_t j = 0; j < s.cols(); ++j) {
    const T* c = s.col(j);
    for (index_t i = 0; i < s.rows(); ++i) {
      out[static_cast<std::size_t>(j * s.rows() + i)] = c[i];
    }
  }
  return out;
}

#define RSKETCH_INSTANTIATE(T)                                            \
  template void baseline_eigen_style<T>(const DenseMatrix<T>&,           \
                                        const CscMatrix<T>&,             \
                                        DenseMatrix<T>&);                \
  template void baseline_julia_style<T>(const DenseMatrix<T>&,           \
                                        const CscMatrix<T>&,             \
                                        DenseMatrix<T>&);                \
  template void baseline_mkl_style<T>(const std::vector<T>&,             \
                                      const CscMatrix<T>&, index_t,      \
                                      std::vector<T>&);                  \
  template std::vector<T> pack_transposed_rowmajor<T>(const DenseMatrix<T>&);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
