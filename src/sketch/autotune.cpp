#include "sketch/autotune.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/machine.hpp"
#include "analysis/roofline.hpp"
#include "support/parallel.hpp"

namespace rsketch {

BlockSuggestion suggest_blocks(index_t m, index_t n, index_t d, double density,
                               std::size_t cache_bytes, double rng_cost_h,
                               std::size_t elem_bytes) {
  require(m >= 0 && n >= 1 && d >= 1, "suggest_blocks: bad dimensions");
  require(elem_bytes > 0, "suggest_blocks: bad element size");
  RooflineParams p;
  p.cache_elems = static_cast<double>(cache_bytes) /
                  static_cast<double>(elem_bytes);
  p.rng_cost = std::max(1e-6, rng_cost_h);
  p.density = std::clamp(density, 1e-12, 1.0);

  const double n1 = optimal_n1(p, static_cast<double>(n));
  const ModelBlocks mb = model_blocks(p, n1);

  BlockSuggestion s;
  // llround on a non-finite or out-of-range double is undefined; tiny inputs
  // (m below the probe sizes, degenerate caches) can push the model there.
  // Route every suggestion through explicit [1, n] / [1, d] clamps so the
  // kernels always get usable block sizes, never 0.
  const index_t n1_int =
      std::isfinite(n1) ? static_cast<index_t>(std::llround(n1)) : n;
  s.block_n = std::clamp<index_t>(n1_int, 1, n);
  // d₁ = M/(2n₁) from the balanced cache split, clamped to [min(64, d), d].
  const index_t d1_int =
      std::isfinite(mb.d1) ? static_cast<index_t>(std::llround(mb.d1)) : d;
  s.block_d = std::clamp<index_t>(d1_int, std::min<index_t>(64, d), d);
  s.block_d = std::clamp<index_t>(s.block_d, 1, d);
  s.model_ci = ci(p, n1);
  return s;
}

BlockSuggestion bias_blocks_for_skew(BlockSuggestion s,
                                     const RowDegreeStats& stats, index_t n,
                                     int nthreads) {
  if (n < 1 || nthreads < 2 || stats.mean <= 0.0) return s;
  const double max_degree = stats.max_fraction * static_cast<double>(n);
  if (max_degree < kSkewBiasRatio * stats.mean) return s;
  const index_t target_blocks =
      std::max<index_t>(8, 4 * static_cast<index_t>(nthreads));
  s.block_n = std::clamp<index_t>(ceil_div(n, target_blocks), 1, s.block_n);
  return s;
}

template <typename T>
void autotune_blocks(SketchConfig& cfg, const CscMatrix<T>& a) {
  // A short, cheap probe: one memoized STREAM pass + short-vector RNG timing.
  const double h = measure_h(cfg.dist, cfg.backend, cached_stream_result());
  BlockSuggestion s = suggest_blocks(a.rows(), a.cols(), cfg.d, a.density(),
                                     detect_cache_bytes(), h, sizeof(T));
  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : max_threads();
  s = bias_blocks_for_skew(s, row_degree_stats(a), a.cols(), nthreads);
  cfg.block_d = s.block_d;
  cfg.block_n = s.block_n;
}

template void autotune_blocks<float>(SketchConfig&, const CscMatrix<float>&);
template void autotune_blocks<double>(SketchConfig&, const CscMatrix<double>&);

}  // namespace rsketch
