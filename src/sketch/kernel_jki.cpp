#include "sketch/kernel_jki.hpp"

#include "dense/blas1.hpp"

namespace rsketch {

template <typename T>
void kernel_jki(DenseMatrix<T>& a_hat, index_t i0, index_t d1,
                const typename BlockedCsr<T>::Block& blk,
                SketchSampler<T>& sampler, T* v, AccumTimer* sample_timer,
                perf::KernelCounters* counters) {
  const CsrMatrix<T>& csr = blk.csr;
  const auto& row_ptr = csr.row_ptr();
  const auto& col_idx = csr.col_idx();
  const auto& values = csr.values();
  const index_t m = csr.rows();

  for (index_t j = 0; j < m; ++j) {
    const index_t lo = row_ptr[static_cast<std::size_t>(j)];
    const index_t hi = row_ptr[static_cast<std::size_t>(j) + 1];
    if (lo == hi) continue;  // empty row: column j of S is never generated
    // v := S[i0 : i0+d1, j], generated once and reused across the row.
    if (sample_timer != nullptr) {
      sample_timer->start();
      sampler.fill(i0, j, v, d1);
      sample_timer->stop();
    } else {
      sampler.fill(i0, j, v, d1);
    }
    for (index_t p = lo; p < hi; ++p) {
      const index_t k = blk.col0 + col_idx[static_cast<std::size_t>(p)];
      axpy(d1, values[static_cast<std::size_t>(p)], v, a_hat.col(k) + i0);
    }
  }

  if (counters != nullptr) {
    // Exact per-block accounting from the CSR structure alone — the hot loop
    // above carries no counter updates. One regenerated column of S serves
    // every nonzero of its row (the sample-reuse advantage of Algorithm 4);
    // each nonzero still moves d1 elements of Â twice plus its own value and
    // column index, and the row-pointer walk touches m+1 indices.
    std::uint64_t nonempty_rows = 0;
    for (index_t j = 0; j < m; ++j) {
      nonempty_rows += row_ptr[static_cast<std::size_t>(j) + 1] >
                               row_ptr[static_cast<std::size_t>(j)]
                           ? 1u
                           : 0u;
    }
    const std::uint64_t nnz =
        static_cast<std::uint64_t>(row_ptr[static_cast<std::size_t>(m)] -
                                   row_ptr[0]);
    const std::uint64_t du = static_cast<std::uint64_t>(d1);
    counters->rng_samples += nonempty_rows * du;
    counters->nnz_processed += nnz;
    counters->flops += 2 * nnz * du;
    counters->elems_moved += nnz * (2 * du + 1);
    counters->bytes_moved +=
        nnz * (2 * du * sizeof(T) + sizeof(T) + sizeof(index_t)) +
        (static_cast<std::uint64_t>(m) + 1) * sizeof(index_t);
    counters->bytes_generated += nonempty_rows * du * sizeof(T);
    counters->kernel_blocks += 1;
  }
}

template void kernel_jki<float>(DenseMatrix<float>&, index_t, index_t,
                                const BlockedCsr<float>::Block&,
                                SketchSampler<float>&, float*, AccumTimer*,
                                perf::KernelCounters*);
template void kernel_jki<double>(DenseMatrix<double>&, index_t, index_t,
                                 const BlockedCsr<double>::Block&,
                                 SketchSampler<double>&, double*, AccumTimer*,
                                 perf::KernelCounters*);

}  // namespace rsketch
