#include "sketch/kernel_jki.hpp"

#include <algorithm>

#include "dense/microkernel.hpp"
#include "perf/trace.hpp"

namespace rsketch {

template <typename T>
void kernel_jki(DenseMatrix<T>& a_hat, index_t i0, index_t d1,
                const typename BlockedCsr<T>::Block& blk,
                SketchSampler<T>& sampler, T* v, AccumTimer* sample_timer,
                perf::KernelCounters* counters) {
  // One trace slice per outer (i-block, vertical-block) pair — coarse enough
  // that tracing never intrudes on the nonzero loop below.
  static const std::uint32_t trace_id = perf::trace::intern("kernel_jki/block");
  perf::trace::Scope trace_scope(trace_id);
  const CsrMatrix<T>& csr = blk.csr;
  const auto& row_ptr = csr.row_ptr();
  const auto& col_idx = csr.col_idx();
  const auto& values = csr.values();
  const index_t m = csr.rows();
  const microkernel::Ops<T>& mk = sampler.mk();

  for (index_t j = 0; j < m; ++j) {
    const index_t lo = row_ptr[static_cast<std::size_t>(j)];
    const index_t hi = row_ptr[static_cast<std::size_t>(j) + 1];
    if (lo == hi) continue;  // empty row: column j of S is never generated
    // v := S[i0 : i0+d1, j], generated once and reused across the row.
    if (sample_timer != nullptr) {
      sample_timer->start();
      sampler.fill(i0, j, v, d1);
      sample_timer->stop();
    } else {
      sampler.fill(i0, j, v, d1);
    }
    // Unroll-and-jam: apply v to up to kMaxJam destination columns of Â per
    // sweep, so each vector load of v feeds several accumulators instead of
    // one — the row's reuse of the regenerated column carried into registers.
    index_t p = lo;
    while (p < hi) {
      const index_t jam = std::min<index_t>(microkernel::kMaxJam, hi - p);
      T alphas[microkernel::kMaxJam];
      T* ys[microkernel::kMaxJam];
      for (index_t q = 0; q < jam; ++q) {
        alphas[q] = values[static_cast<std::size_t>(p + q)];
        ys[q] = a_hat.col(blk.col0 +
                          col_idx[static_cast<std::size_t>(p + q)]) +
                i0;
      }
      mk.axpy_multi(d1, v, alphas, ys, jam);
      p += jam;
    }
  }

  if (counters != nullptr) {
    // Exact per-block accounting from metadata the blocked-CSR conversion
    // precomputed (Block::nonempty_rows / Block::nnz) — no structure walk
    // here, and the hot loop above carries no counter updates. One
    // regenerated column of S serves every nonzero of its row (the
    // sample-reuse advantage of Algorithm 4); each nonzero still moves d1
    // elements of Â twice plus its own value and column index, and the
    // row-pointer walk touches m+1 indices.
    const std::uint64_t nonempty_rows =
        static_cast<std::uint64_t>(blk.nonempty_rows);
    const std::uint64_t nnz = static_cast<std::uint64_t>(blk.nnz);
    const std::uint64_t du = static_cast<std::uint64_t>(d1);
    counters->rng_samples += nonempty_rows * du;
    counters->nnz_processed += nnz;
    counters->flops += 2 * nnz * du;
    counters->elems_moved += nnz * (2 * du + 1);
    counters->bytes_moved +=
        nnz * (2 * du * sizeof(T) + sizeof(T) + sizeof(index_t)) +
        (static_cast<std::uint64_t>(m) + 1) * sizeof(index_t);
    counters->bytes_generated += nonempty_rows * du * sizeof(T);
    counters->kernel_blocks += 1;
  }
}

template void kernel_jki<float>(DenseMatrix<float>&, index_t, index_t,
                                const BlockedCsr<float>::Block&,
                                SketchSampler<float>&, float*, AccumTimer*,
                                perf::KernelCounters*);
template void kernel_jki<double>(DenseMatrix<double>&, index_t, index_t,
                                 const BlockedCsr<double>::Block&,
                                 SketchSampler<double>&, double*, AccumTimer*,
                                 perf::KernelCounters*);

}  // namespace rsketch
