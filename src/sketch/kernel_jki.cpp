#include "sketch/kernel_jki.hpp"

#include "dense/blas1.hpp"

namespace rsketch {

template <typename T>
void kernel_jki(DenseMatrix<T>& a_hat, index_t i0, index_t d1,
                const typename BlockedCsr<T>::Block& blk,
                SketchSampler<T>& sampler, T* v, AccumTimer* sample_timer) {
  const CsrMatrix<T>& csr = blk.csr;
  const auto& row_ptr = csr.row_ptr();
  const auto& col_idx = csr.col_idx();
  const auto& values = csr.values();
  const index_t m = csr.rows();

  for (index_t j = 0; j < m; ++j) {
    const index_t lo = row_ptr[static_cast<std::size_t>(j)];
    const index_t hi = row_ptr[static_cast<std::size_t>(j) + 1];
    if (lo == hi) continue;  // empty row: column j of S is never generated
    // v := S[i0 : i0+d1, j], generated once and reused across the row.
    if (sample_timer != nullptr) {
      sample_timer->start();
      sampler.fill(i0, j, v, d1);
      sample_timer->stop();
    } else {
      sampler.fill(i0, j, v, d1);
    }
    for (index_t p = lo; p < hi; ++p) {
      const index_t k = blk.col0 + col_idx[static_cast<std::size_t>(p)];
      axpy(d1, values[static_cast<std::size_t>(p)], v, a_hat.col(k) + i0);
    }
  }
}

template void kernel_jki<float>(DenseMatrix<float>&, index_t, index_t,
                                const BlockedCsr<float>::Block&,
                                SketchSampler<float>&, float*, AccumTimer*);
template void kernel_jki<double>(DenseMatrix<double>&, index_t, index_t,
                                 const BlockedCsr<double>::Block&,
                                 SketchSampler<double>&, double*, AccumTimer*);

}  // namespace rsketch
