// AVX-512 micro-kernel tier: compiled with -mavx512f/vl/dq/bw,
// -mprefer-vector-width=512 and -ffp-contract=off (512-bit vectors, masked
// tails). Only built when the compiler supports the flags; only dispatched
// when cpuid agrees.
#define RSKETCH_SIMD_NS avx512_impl
#include "sketch/kernel_simd_impl.hpp"
