// Algorithm 3 of the paper: compute-kernel variant `kji` with on-the-fly
// random number generation.
//
// For one outer block pair (row block [i0, i0+d1) of Â, column block
// [j0, j0+n1) of A): walk the CSC columns of the block; for every stored
// entry A[j, k], re-generate v = S[i0 : i0+d1, j] via the sampler's O(1)
// block checkpoint and perform the contiguous update
// Â[i0 : i0+d1, k] += A[j, k] · v. All three operands are accessed with
// unit stride, which is why this variant is preferred on architectures that
// punish random access (§II-B1).
#pragma once

#include "dense/dense_matrix.hpp"
#include "perf/counters.hpp"
#include "rng/distributions.hpp"
#include "sparse/csc.hpp"
#include "support/timer.hpp"

namespace rsketch {

/// Apply the kji kernel to one outer block. `v` is caller-provided scratch
/// of at least d1 elements (one per thread). When `sample_timer` is non-null
/// every sampler fill is bracketed with it (adds the timer overhead the
/// paper notes for Tables III/V). When `counters` is non-null the block's
/// work/traffic totals are accumulated into it (computed outside the nonzero
/// loop; zero hot-path cost when null).
template <typename T>
void kernel_kji(DenseMatrix<T>& a_hat, index_t i0, index_t d1, index_t j0,
                index_t n1, const CscMatrix<T>& a, SketchSampler<T>& sampler,
                T* v, AccumTimer* sample_timer = nullptr,
                perf::KernelCounters* counters = nullptr);

extern template void kernel_kji<float>(DenseMatrix<float>&, index_t, index_t,
                                       index_t, index_t,
                                       const CscMatrix<float>&,
                                       SketchSampler<float>&, float*,
                                       AccumTimer*, perf::KernelCounters*);
extern template void kernel_kji<double>(DenseMatrix<double>&, index_t, index_t,
                                        index_t, index_t,
                                        const CscMatrix<double>&,
                                        SketchSampler<double>&, double*,
                                        AccumTimer*, perf::KernelCounters*);

}  // namespace rsketch
