#include "sketch/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <utility>

#include "analysis/machine.hpp"
#include "analysis/pattern.hpp"
#include "perf/json.hpp"
#include "perf/perf.hpp"
#include "perf/trace.hpp"
#include "sketch/autotune.hpp"
#include "sketch/schedule.hpp"
#include "sketch/sketch.hpp"
#include "support/env.hpp"
#include "support/parallel.hpp"
#include "support/run_control.hpp"
#include "support/timer.hpp"

namespace rsketch {

namespace {

/// Serializes load-modify-save cycles on the cache file within a process.
std::mutex g_cache_mutex;

const char* kernel_token(KernelVariant k) {
  return k == KernelVariant::Kji ? "kji" : "jki";
}

const char* backend_token(RngBackend b) {
  switch (b) {
    case RngBackend::Xoshiro: return "xoshiro";
    case RngBackend::XoshiroBatch: return "xoshiro_batch";
    case RngBackend::Philox: return "philox";
  }
  return "?";
}

bool parse_kernel_token(const std::string& s, KernelVariant* out) {
  if (s == "kji") *out = KernelVariant::Kji;
  else if (s == "jki") *out = KernelVariant::Jki;
  else return false;
  return true;
}

bool parse_backend_token(const std::string& s, RngBackend* out) {
  if (s == "xoshiro") *out = RngBackend::Xoshiro;
  else if (s == "xoshiro_batch") *out = RngBackend::XoshiroBatch;
  else if (s == "philox") *out = RngBackend::Philox;
  else return false;
  return true;
}

/// The paper's two backend families differ in how S is addressed (block
/// checkpoints vs. per-entry counters); the tuner crosses the model blocks
/// with the family the caller did not pick.
RngBackend alternate_backend(RngBackend b) {
  return b == RngBackend::Philox ? RngBackend::XoshiroBatch
                                 : RngBackend::Philox;
}

/// Model suggestion for cfg over `a`: one memoized STREAM pass + RNG probe,
/// like autotune_blocks(), but returning the suggestion instead of mutating
/// cfg. Skew-biased so the scheduler has enough blocks to balance.
template <typename T>
BlockSuggestion model_suggestion(const SketchConfig& cfg,
                                 const CscMatrix<T>& a) {
  const double h = measure_h(cfg.dist, cfg.backend, cached_stream_result());
  BlockSuggestion s = suggest_blocks(a.rows(), a.cols(), cfg.d, a.density(),
                                     detect_cache_bytes(), h, sizeof(T));
  const int nthreads =
      cfg.parallel == ParallelOver::Sequential ? 1 : max_threads();
  return bias_blocks_for_skew(s, row_degree_stats(a), a.cols(), nthreads);
}

void apply(SketchConfig& cfg, const TuneCandidate& cand) {
  cfg.kernel = cand.kernel;
  cfg.backend = cand.backend;
  cfg.block_d = cand.block_d;
  cfg.block_n = cand.block_n;
  cfg.isa = cand.isa;
  cfg.schedule = cand.schedule;
}

/// Leading-column slice A[:, 0:pilot_n) with d clamped — the pilot problem
/// every candidate is timed on. Correct by construction (prefix of a valid
/// CSC), hence adopt_unchecked.
template <typename T>
CscMatrix<T> pilot_slice(const CscMatrix<T>& a, index_t pilot_n) {
  const auto& cp = a.col_ptr();
  const index_t nnz = cp[static_cast<std::size_t>(pilot_n)];
  std::vector<index_t> col_ptr(cp.begin(), cp.begin() + pilot_n + 1);
  std::vector<index_t> row_idx(a.row_idx().begin(),
                               a.row_idx().begin() + nnz);
  std::vector<T> values(a.values().begin(), a.values().begin() + nnz);
  return CscMatrix<T>::adopt_unchecked(a.rows(), pilot_n, std::move(col_ptr),
                                       std::move(row_idx), std::move(values));
}

/// Time every candidate on the pilot problem; returns the index of the
/// fastest (first wins ties, so the order of tuner_candidates() is the
/// tiebreak) and its best-of-reps seconds. Returns best_secs >= 1e300 when
/// no candidate finished (the tuning sub-deadline fired before the first
/// pilot completed) — the caller falls back to the model.
template <typename T>
std::pair<std::size_t, double> time_candidates(
    const SketchConfig& cfg, const CscMatrix<T>& pilot, index_t pilot_d,
    const std::vector<TuneCandidate>& cands) {
  perf::Span span("tuner/empirical");
  const int reps = static_cast<int>(
      std::max<long long>(1, env_int("RSKETCH_TUNE_REPS", 2)));
  SketchConfig pcfg = cfg;
  pcfg.tune = TuneMode::Off;
  pcfg.check_inputs = false;  // the slice is internal, already validated
  pcfg.d = pilot_d;
  // Pilot runs inherit the caller's bounds through a chained child control
  // carrying a sliced sub-deadline: tuning may spend at most a quarter of
  // the wall-clock remaining on the outer deadline (floor 1 ms), so a tight
  // deadline degrades to fewer timed candidates instead of eating the whole
  // run before the real sketch starts. Deadline/budget fields are zeroed on
  // pcfg so the pilot call does not re-arm them afresh from "now".
  ResolvedRunControl outer(cfg.control, cfg.deadline_ms,
                           cfg.workspace_budget_bytes);
  RunControl* const parent = outer.get();
  RunControl child;
  pcfg.deadline_ms = 0.0;
  pcfg.workspace_budget_bytes = 0;
  pcfg.control = nullptr;
  if (parent != nullptr) {
    child.set_parent(parent);
    const double remaining = parent->deadline_remaining_ms();
    if (remaining != std::numeric_limits<double>::infinity()) {
      child.set_deadline_ms(std::max(1.0, remaining * 0.25));
    }
    pcfg.control = &child;
  }
  DenseMatrix<T> scratch(pilot_d, pilot.cols());
  std::size_t best = 0;
  double best_secs = 1e300;
  for (std::size_t c = 0; c < cands.size(); ++c) {
    apply(pcfg, cands[c]);
    // Label each pilot run with the candidate it timed, so the timeline shows
    // which (kernel, blocks, backend) combination each slice belongs to.
    // Interning the dynamic name is safe (the table owns it) and off the hot
    // path; skipped entirely when tracing is off.
    perf::trace::Scope cand_scope(
        perf::trace::armed()
            ? perf::trace::intern("tuner/candidate/" + cands[c].label())
            : 0);
    double secs = 1e300;
    bool sub_deadline_hit = false;
    for (int rep = 0; rep < reps; ++rep) {
      try {
        Timer t;
        sketch_into(pcfg, pilot, scratch);
        secs = std::min(secs, t.seconds());
      } catch (const run_stopped_error&) {
        // The caller's own bound fired: propagate, the whole run is over.
        // Only the pilot slice expired: stop timing, keep the best so far.
        if (parent != nullptr && parent->stop_cause() != StopCause::None) {
          throw;
        }
        sub_deadline_hit = true;
        break;
      }
    }
    if (secs < 1e300) {
      perf::add(perf::Counter::TunerCandidatesTimed, 1);
      perf::add_span("tuner/candidate", secs);
      if (secs < best_secs) {
        best = c;
        best_secs = secs;
      }
    }
    if (sub_deadline_hit) break;
  }
  return {best, best_secs};
}

/// Model fallback shared by TuneMode::Model and the corrupt-cache path.
template <typename T>
void resolve_model(const SketchConfig& cfg, const CscMatrix<T>& a,
                   SketchConfig& eff, TuneDecision& dec) {
  perf::Span span("tuner/model");
  const BlockSuggestion s = model_suggestion(cfg, a);
  eff.block_d = s.block_d;
  eff.block_n = s.block_n;
  dec.choice = {cfg.kernel, cfg.backend, s.block_d, s.block_n, cfg.isa,
                cfg.schedule};
  dec.source = TuneSource::Model;
}

/// Empirical search shared by TuneMode::Empirical and the cache-miss path.
/// Degrades to the model when the pilot slice carries no nonzeros (timing
/// noise would pick an arbitrary winner).
template <typename T>
void resolve_empirical(const SketchConfig& cfg, const CscMatrix<T>& a,
                       SketchConfig& eff, TuneDecision& dec) {
  const std::vector<TuneCandidate> cands = tuner_candidates(cfg, a);
  const index_t pilot_n = std::min<index_t>(
      a.cols(),
      std::max<long long>(1, env_int("RSKETCH_TUNE_PILOT_N", 1024)));
  const index_t pilot_d = std::min<index_t>(
      cfg.d, std::max<long long>(1, env_int("RSKETCH_TUNE_PILOT_D", 4096)));
  const CscMatrix<T> pilot = pilot_slice(a, pilot_n);
  if (pilot.nnz() == 0) {
    resolve_model(cfg, a, eff, dec);
    return;
  }
  const auto [best, best_secs] = time_candidates(cfg, pilot, pilot_d, cands);
  if (best_secs >= 1e300) {
    // The tuning sub-deadline fired before any candidate finished: the model
    // still costs only a machine probe, and the caller's own deadline is
    // re-checked the moment the real sketch dispatches.
    resolve_model(cfg, a, eff, dec);
    return;
  }
  apply(eff, cands[best]);
  dec.choice = cands[best];
  dec.source = TuneSource::Empirical;
  dec.pilot_seconds = best_secs;
  dec.candidates_timed = static_cast<int>(cands.size());
}

}  // namespace

std::string TuneCandidate::label() const {
  std::ostringstream os;
  os << kernel_token(kernel) << "/" << backend_token(backend) << "/"
     << block_d << "x" << block_n << "/" << microkernel::to_string(isa) << "/"
     << to_string(schedule);
  return os.str();
}

std::string to_string(TuneSource s) {
  switch (s) {
    case TuneSource::Caller: return "caller";
    case TuneSource::Model: return "model";
    case TuneSource::Empirical: return "empirical";
    case TuneSource::Cache: return "cache";
  }
  return "?";
}

TuneMode parse_tune_mode(const std::string& s) {
  if (s == "off") return TuneMode::Off;
  if (s == "model") return TuneMode::Model;
  if (s == "empirical") return TuneMode::Empirical;
  if (s == "cached") return TuneMode::Cached;
  throw invalid_argument_error("unknown tune mode '" + s +
                               "' (off|model|empirical|cached)");
}

template <typename T>
std::string matrix_fingerprint(const CscMatrix<T>& a, index_t d) {
  // Exact (m, n) — they set the loop bounds — and coarse buckets for what
  // only matters logarithmically: d (power of two), density (decade), and
  // the row-degree pattern (quarters of cv, tenths of the fractions). Two
  // problems sharing a fingerprint are expected to share a schedule.
  const double rho = a.density();
  const long long d_lg =
      d > 0 ? std::llround(std::log2(static_cast<double>(d))) : 0;
  const long long rho_lg =
      rho > 0.0 ? std::llround(std::log10(rho)) : -99;
  const RowDegreeStats st = row_degree_stats(a);
  std::ostringstream os;
  os << "m=" << a.rows() << ";n=" << a.cols() << ";w=" << sizeof(T)
     << ";dlg=" << d_lg << ";rlg=" << rho_lg
     << ";cv4=" << std::llround(st.cv * 4.0)
     << ";e10=" << std::llround(st.empty_fraction * 10.0)
     << ";x10=" << std::llround(st.max_fraction * 10.0);
  return os.str();
}

template <typename T>
std::vector<TuneCandidate> tuner_candidates(const SketchConfig& cfg,
                                            const CscMatrix<T>& a) {
  const BlockSuggestion s = model_suggestion(cfg, a);
  const index_t d = std::max<index_t>(1, cfg.d);
  const index_t n = std::max<index_t>(1, a.cols());
  std::vector<index_t> bds, bns;
  for (index_t bd : {s.block_d / 2, s.block_d, s.block_d * 2}) {
    bd = std::clamp<index_t>(bd, 1, d);
    if (std::find(bds.begin(), bds.end(), bd) == bds.end()) bds.push_back(bd);
  }
  for (index_t bn : {s.block_n / 2, s.block_n, s.block_n * 2}) {
    bn = std::clamp<index_t>(bn, 1, n);
    if (std::find(bns.begin(), bns.end(), bn) == bns.end()) bns.push_back(bn);
  }
  std::vector<TuneCandidate> out;
  const index_t model_bd = std::clamp<index_t>(s.block_d, 1, d);
  const index_t model_bn = std::clamp<index_t>(s.block_n, 1, n);
  for (KernelVariant k : {KernelVariant::Kji, KernelVariant::Jki}) {
    for (index_t bd : bds) {
      for (index_t bn : bns) {
        out.push_back({k, cfg.backend, bd, bn, cfg.isa});
      }
    }
    // The other backend family only at the model blocks: it changes the
    // per-sample cost h, not the blocking trade-off, so one point suffices.
    out.push_back({k, alternate_backend(cfg.backend), model_bd, model_bn,
                   cfg.isa});
    // The supported micro-kernel tiers below the auto pick, also only at
    // the model blocks. Auto already dispatches the widest tier, so only
    // the alternates need timing — narrower vectors do occasionally win
    // (e.g. where 512-bit turbo licensing bites), and then the pilot should
    // find it rather than anyone guessing.
    const microkernel::Isa resolved = microkernel::resolve(cfg.isa);
    for (microkernel::Isa isa :
         {microkernel::Isa::Scalar, microkernel::Isa::Avx2,
          microkernel::Isa::Avx512}) {
      if (isa == resolved || !microkernel::supported(isa)) continue;
      out.push_back({k, cfg.backend, model_bd, model_bn, isa});
    }
    // The schedule mode the env default does NOT resolve to, only at the
    // model blocks and only for parallel dispatch — sequential runs walk one
    // list regardless, so timing the axis would be pure noise.
    if (cfg.parallel != ParallelOver::Sequential) {
      const ScheduleMode other =
          resolve_schedule_mode(cfg.schedule) == ScheduleMode::Balanced
              ? ScheduleMode::Uniform
              : ScheduleMode::Balanced;
      out.push_back({k, cfg.backend, model_bd, model_bn, cfg.isa, other});
    }
  }
  return out;
}

std::string tuning_cache_path() {
  const std::string env = env_string("RSKETCH_TUNE_CACHE", "");
  if (!env.empty()) return env;
  const std::string xdg = env_string("XDG_CACHE_HOME", "");
  if (!xdg.empty()) return xdg + "/rsketch/tuning.json";
  const std::string home = env_string("HOME", "");
  if (!home.empty()) return home + "/.cache/rsketch/tuning.json";
  return "./rsketch_tuning.json";
}

TuningCache TuningCache::load(const std::string& path) {
  TuningCache cache;
  std::ifstream in(path);
  if (!in) return cache;  // absent file: empty cache, still ok()
  std::ostringstream buf;
  buf << in.rdbuf();
  perf::Json doc;
  try {
    doc = perf::Json::parse(buf.str());
  } catch (const io_error&) {
    cache.ok_ = false;
    return cache;
  }
  const perf::Json* version = doc.find("schema_version");
  const perf::Json* entries = doc.find("entries");
  if (version == nullptr || !version->is_int() || version->as_int() != 1 ||
      entries == nullptr || !entries->is_object()) {
    cache.ok_ = false;
    return cache;
  }
  for (const auto& [key, e] : entries->members()) {
    if (!e.is_object()) continue;  // stale entry: drop, re-tune on demand
    const perf::Json* kernel = e.find("kernel");
    const perf::Json* backend = e.find("backend");
    const perf::Json* bd = e.find("block_d");
    const perf::Json* bn = e.find("block_n");
    Entry entry;
    if (kernel == nullptr || !kernel->is_string() ||
        !parse_kernel_token(kernel->as_string(), &entry.cand.kernel)) {
      continue;
    }
    if (backend == nullptr || !backend->is_string() ||
        !parse_backend_token(backend->as_string(), &entry.cand.backend)) {
      continue;
    }
    if (bd == nullptr || !bd->is_number() || bd->as_int() < 1 ||
        bn == nullptr || !bn->is_number() || bn->as_int() < 1) {
      continue;
    }
    entry.cand.block_d = static_cast<index_t>(bd->as_int());
    entry.cand.block_n = static_cast<index_t>(bn->as_int());
    // Optional since the micro-kernel layer landed: absent (pre-ISA entry)
    // decodes to Auto — still schema_version 1, old caches stay valid.
    if (const perf::Json* isa = e.find("isa"); isa != nullptr) {
      if (!isa->is_string() ||
          !microkernel::parse_isa(isa->as_string(), &entry.cand.isa)) {
        continue;  // unknown tier token: stale entry, re-tune on demand
      }
    }
    // Optional since the block scheduler landed, same contract as "isa".
    if (const perf::Json* sched = e.find("schedule"); sched != nullptr) {
      if (!sched->is_string() ||
          !parse_schedule_mode(sched->as_string(), entry.cand.schedule)) {
        continue;  // unknown mode token: stale entry, re-tune on demand
      }
    }
    if (const perf::Json* ps = e.find("pilot_seconds");
        ps != nullptr && ps->is_number()) {
      entry.pilot_seconds = ps->as_double();
    }
    cache.entries_.emplace_back(key, entry);
  }
  return cache;
}

bool TuningCache::lookup(const std::string& key, TuneCandidate* out) const {
  for (const auto& [k, e] : entries_) {
    if (k == key) {
      *out = e.cand;
      return true;
    }
  }
  return false;
}

void TuningCache::store(const std::string& key, const TuneCandidate& cand,
                        double pilot_seconds) {
  for (auto& [k, e] : entries_) {
    if (k == key) {
      e = Entry{cand, pilot_seconds};
      return;
    }
  }
  entries_.emplace_back(key, Entry{cand, pilot_seconds});
}

bool TuningCache::save(const std::string& path) const {
  perf::Json doc = perf::Json::object();
  doc["schema_version"] = 1;
  perf::Json entries = perf::Json::object();
  for (const auto& [key, e] : entries_) {
    perf::Json j = perf::Json::object();
    j["kernel"] = kernel_token(e.cand.kernel);
    j["backend"] = backend_token(e.cand.backend);
    j["block_d"] = static_cast<long long>(e.cand.block_d);
    j["block_n"] = static_cast<long long>(e.cand.block_n);
    j["isa"] = microkernel::to_string(e.cand.isa);
    j["schedule"] = to_string(e.cand.schedule);
    j["pilot_seconds"] = e.pilot_seconds;
    entries[key] = std::move(j);
  }
  doc["entries"] = std::move(entries);
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  std::ofstream out(path);
  if (!out) return false;
  out << doc.dump(2) << "\n";
  return static_cast<bool>(out);
}

template <typename T>
SketchConfig resolve_tuning(const SketchConfig& cfg, const CscMatrix<T>& a,
                            TuneDecision* decision) {
  TuneDecision local;
  TuneDecision& dec = decision != nullptr ? *decision : local;
  dec = TuneDecision{};
  dec.choice = {cfg.kernel, cfg.backend, cfg.block_d, cfg.block_n, cfg.isa,
                cfg.schedule};
  SketchConfig eff = cfg;
  eff.tune = TuneMode::Off;
  // Degenerate problems (nothing to sketch, or nothing to tune over) are
  // dispatched verbatim — the kernels handle them in microseconds anyway.
  if (cfg.tune == TuneMode::Off || cfg.d < 1 || a.cols() < 1 ||
      a.nnz() == 0) {
    return eff;
  }
  perf::Span span("tuner/resolve");
  if (cfg.tune == TuneMode::Model) {
    resolve_model(cfg, a, eff, dec);
    return eff;
  }
  if (cfg.tune == TuneMode::Empirical) {
    resolve_empirical(cfg, a, eff, dec);
    return eff;
  }
  // TuneMode::Cached.
  dec.key = machine_signature() + "#" + matrix_fingerprint(a, cfg.d);
  const std::string path = tuning_cache_path();
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  TuningCache cache = TuningCache::load(path);
  if (!cache.ok()) {
    // A corrupt or stale cache must not take the sketch down, silently
    // mistune it, or get clobbered before someone can look at it.
    env_warn_once("RSKETCH_TUNE_CACHE", path.c_str(),
                  "corrupt or stale tuning cache; falling back to model "
                  "tuning");
    perf::add(perf::Counter::TunerCacheMisses, 1);
    resolve_model(cfg, a, eff, dec);
    return eff;
  }
  TuneCandidate cached;
  if (cache.lookup(dec.key, &cached)) {
    perf::add(perf::Counter::TunerCacheHits, 1);
    perf::add_span("tuner/cache_hit", 0.0);
    apply(eff, cached);
    dec.choice = cached;
    dec.source = TuneSource::Cache;
    return eff;
  }
  perf::add(perf::Counter::TunerCacheMisses, 1);
  resolve_empirical(cfg, a, eff, dec);
  if (dec.source == TuneSource::Empirical) {
    cache.store(dec.key, dec.choice, dec.pilot_seconds);
    cache.save(path);  // best effort, like the perf reports
  }
  return eff;
}

#define RSKETCH_INSTANTIATE(T)                                           \
  template std::string matrix_fingerprint<T>(const CscMatrix<T>&,        \
                                             index_t);                   \
  template std::vector<TuneCandidate> tuner_candidates<T>(               \
      const SketchConfig&, const CscMatrix<T>&);                         \
  template SketchConfig resolve_tuning<T>(const SketchConfig&,           \
                                          const CscMatrix<T>&,           \
                                          TuneDecision*);

RSKETCH_INSTANTIATE(float)
RSKETCH_INSTANTIATE(double)
#undef RSKETCH_INSTANTIATE

}  // namespace rsketch
