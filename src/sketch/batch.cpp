#include "sketch/batch.hpp"

#include "perf/perf.hpp"
#include "perf/trace.hpp"

namespace rsketch {

namespace {

std::uint32_t depth_trace_id() {
  // One interned id for every emission: per-job dynamic names would grow
  // the intern table without bound on a long-lived server.
  static const std::uint32_t id = perf::trace::intern("batch_queue_depth");
  return id;
}

}  // namespace

// ---- JobHandle -------------------------------------------------------------

void JobHandle::wait() const {
  detail::BatchJob& j = *job_;
  std::unique_lock<std::mutex> lock(j.mu);
  j.cv.wait(lock, [&j] { return j.finished; });
}

bool JobHandle::done() const {
  detail::BatchJob& j = *job_;
  std::lock_guard<std::mutex> lock(j.mu);
  return j.finished;
}

bool JobHandle::failed() const {
  wait();
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->error != nullptr;
}

std::exception_ptr JobHandle::error() const {
  wait();
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->error;
}

const SketchStats& JobHandle::stats() const {
  wait();
  std::lock_guard<std::mutex> lock(job_->mu);
  if (job_->error != nullptr) std::rethrow_exception(job_->error);
  return job_->stats;
}

// ---- SketchBatch -----------------------------------------------------------

SketchBatch::SketchBatch(BatchOptions options)
    : options_(options),
      cache_bytes_(detect_cache_bytes()),
      exec_(options.workers) {
  if (options_.deadline_ms > 0.0) control_.set_deadline_ms(options_.deadline_ms);
  if (options_.workspace_budget_bytes > 0) {
    control_.set_budget_bytes(options_.workspace_budget_bytes);
  }
  control_.set_parent(options_.control);
}

SketchBatch::~SketchBatch() {
  // Stop-then-drain: queued jobs fail their first poll in microseconds, so
  // destruction is prompt even with a deep queue. Callers who want the
  // results call wait_all() first.
  cancel();
  // exec_ (last member) drains and joins in its destructor, while the
  // arena, control, and mutexes above it are still alive.
}

std::size_t SketchBatch::wait_all() {
  std::vector<std::shared_ptr<detail::BatchJob>> snapshot;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    snapshot = jobs_;
  }
  std::size_t failed = 0;
  for (const auto& job : snapshot) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&job] { return job->finished; });
    if (job->error != nullptr) ++failed;
  }
  return failed;
}

std::uint64_t SketchBatch::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return next_id_;
}

JobHandle SketchBatch::enqueue(std::function<SketchStats(RunControl*)> body,
                               bool large) {
  auto job = std::make_shared<detail::BatchJob>();
  job->control.set_parent(&control_);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    job->id = next_id_++;
    jobs_.push_back(job);
  }
  perf::add(perf::Counter::BatchJobs, 1);
  auto task = [this, job, body = std::move(body), large] {
    SketchStats stats;
    std::exception_ptr error;
    {
      // One span per job: it lands in the span table (latency histogram)
      // AND, when tracing is armed, as a batch/job slice on the worker's
      // timeline. The span must close BEFORE finished is published: a
      // waiter may snapshot the trace the moment wait() returns, and the
      // end event has to already be in this worker's ring by then.
      perf::Span span("batch/job");
      try {
        // Fail fast on jobs that were cancelled (or missed the deadline)
        // while queued: the body never runs, the output is never touched,
        // and the stop surfaces on the handle exactly once.
        job->control.poll();
        if (large && options_.serialize_large_jobs) {
          std::lock_guard<std::mutex> omp_gate(large_mu_);
          stats = body(&job->control);
        } else {
          stats = body(&job->control);
        }
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->stats = stats;
      job->error = error;
      job->finished = true;
    }
    job->cv.notify_all();
    if (perf::trace::armed()) {
      perf::trace::counter(depth_trace_id(),
                           static_cast<double>(exec_.queue_depth()));
    }
  };
  if (options_.submit_worker >= 0) {
    exec_.submit_to(options_.submit_worker, std::move(task));
  } else {
    exec_.submit(std::move(task));
  }
  if (perf::trace::armed()) {
    perf::trace::counter(depth_trace_id(),
                         static_cast<double>(exec_.queue_depth()));
  }
  return JobHandle(job);
}

}  // namespace rsketch
