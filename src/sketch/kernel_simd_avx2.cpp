// AVX2 micro-kernel tier: compiled with -mavx2 -mfma -ffp-contract=off
// (256-bit vectors; FMA units are available to the integer/convert paths but
// float contraction stays off for bitwise-stable dispatch). Only built when
// the compiler supports the flags; only dispatched when cpuid agrees.
#define RSKETCH_SIMD_NS avx2_impl
#include "sketch/kernel_simd_impl.hpp"
