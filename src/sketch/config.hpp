// Public configuration and statistics types for the sketching API.
#pragma once

#include <cstdint>
#include <string>

#include "dense/microkernel.hpp"
#include "perf/counters.hpp"
#include "rng/distributions.hpp"
#include "support/common.hpp"

namespace rsketch {

class RunControl;
class ArenaHook;

/// Compute-kernel variant (paper §II-B).
enum class KernelVariant {
  Kji,  ///< Algorithm 3: CSC-driven, strided accesses, regenerates a column
        ///< of S per nonzero of A; pattern-oblivious, RNG-hungry.
  Jki   ///< Algorithm 4: blocked-CSR-driven, reuses one regenerated column
        ///< of S across a whole row of the vertical block; fewer samples,
        ///< sparsity-pattern-dependent access.
};

/// Which outer loop of Algorithm 1 is parallelized (§II-C).
enum class ParallelOver {
  Sequential,  ///< no threading
  DBlocks,     ///< threads split the d-dimension (rows of Â) — disjoint
               ///< row panels, no synchronization
  NBlocks      ///< threads split the n-dimension (columns of Â and A)
};

/// How sketch_into() chooses (kernel, blocks, backend) before dispatching
/// (sketch/tuner.hpp; see docs/AUTOTUNING.md).
enum class TuneMode {
  Off,        ///< use the caller's config verbatim (default; zero overhead)
  Model,      ///< §III-A model via suggest_blocks() — one cheap machine probe
  Empirical,  ///< time a candidate set on a pilot sub-sketch, pick the winner
  Cached      ///< empirical, with the winner persisted in the tuning cache
              ///< keyed by (machine signature, matrix fingerprint)
};

/// How outer blocks are assigned to threads (sketch/schedule.hpp; see
/// DESIGN.md §5b). Every mode executes each (i-block, j-block) pair exactly
/// once over disjoint output panels, so Â is bitwise identical across modes —
/// this is a pure load-balance knob.
enum class ScheduleMode {
  Auto,     ///< resolve via RSKETCH_SCHEDULE (default: balanced)
  Uniform,  ///< contiguous equal-count chunks, like omp schedule(static)
  Balanced  ///< LPT bin-packing over the nnz-aware per-block cost model
};

/// What a budget-bounded sketch does when the configured workspace does not
/// fit (docs/ROBUSTNESS.md "Run control").
enum class OnPressure {
  Fail,    ///< throw run_stopped_error(BudgetExceeded) at the first pressure
  Degrade  ///< walk the degradation ladder toward a config that fits
           ///< (bitwise-identical Â), throwing only when the ladder runs out
};

std::string to_string(KernelVariant k);
std::string to_string(ParallelOver p);
std::string to_string(TuneMode t);
std::string to_string(OnPressure p);
std::string to_string(ScheduleMode s);

/// Full specification of a sketch Â = S·A.
struct SketchConfig {
  index_t d = 0;                    ///< rows of S (sketch size), d = γ·n
  std::uint64_t seed = 0x5EEDBA5E;  ///< sketch seed; fixes S exactly
  Dist dist = Dist::Uniform;
  RngBackend backend = RngBackend::XoshiroBatch;
  KernelVariant kernel = KernelVariant::Kji;
  index_t block_d = 3000;  ///< b_d: row-block size of Â/S
  index_t block_n = 500;   ///< b_n: column-block size of Â/A
  ParallelOver parallel = ParallelOver::DBlocks;
  /// Scale Â by 1/sqrt(d·E[s²]) so S becomes a (near-)isometry on average —
  /// what the least-squares pipeline wants.
  bool normalize = false;
  /// Run the full structural + NaN/Inf validators (sparse/validate.hpp) on A
  /// before sketching, throwing validation_error on corrupt input. Off by
  /// default in the library hot path (one branch, zero scans); sketch_tool
  /// turns it on. See docs/ROBUSTNESS.md.
  bool check_inputs = false;
  /// Autotuning mode: when not Off, sketch_into() resolves (kernel, block_d,
  /// block_n, backend) through sketch/tuner.hpp before dispatching. The hot
  /// path pays one branch when Off. See docs/AUTOTUNING.md.
  TuneMode tune = TuneMode::Off;
  /// Micro-kernel ISA tier for the inner loops (dense/microkernel.hpp).
  /// Auto resolves to the best tier the build and CPU support, overridable
  /// via RSKETCH_ISA. Pinning a tier is for tests, tuning, and debugging —
  /// every tier produces bitwise-identical Â, so this is a pure speed knob.
  microkernel::Isa isa = microkernel::Isa::Auto;
  /// Block-to-thread schedule (sketch/schedule.hpp). Auto resolves through
  /// RSKETCH_SCHEDULE (balanced when unset). Like `isa`, this never changes
  /// a bit of Â — blocks are disjoint and S columns are seed-checkpointed —
  /// so pinning a mode is for experiments and regression harnesses.
  ScheduleMode schedule = ScheduleMode::Auto;

  // --- Run control (support/run_control.hpp; docs/ROBUSTNESS.md) ---------
  /// Wall-clock deadline in milliseconds for this call (0 = none; the
  /// RSKETCH_DEADLINE_MS env knob back-stops a zero here). A run past its
  /// deadline throws run_stopped_error(DeadlineExceeded) within one outer
  /// block, leaving the output untouched.
  double deadline_ms = 0.0;
  /// Workspace byte budget for this call's scratch allocations beyond the
  /// input and the output (0 = none; RSKETCH_BUDGET_MB back-stops). What
  /// happens on pressure is `on_pressure`.
  std::size_t workspace_budget_bytes = 0;
  OnPressure on_pressure = OnPressure::Degrade;
  /// Optional external handle for cooperative cancellation (and/or caller-
  /// managed deadline and budget). Not owned; must outlive the call. With
  /// this null and no deadline/budget set, the hot path pays one predictable
  /// branch per outer block.
  RunControl* control = nullptr;
  /// Optional workspace arena (support/arena.hpp) serving the kernels'
  /// scratch allocations — SketchBatch installs its shared recycling arena
  /// here so a stream of jobs reuses slabs instead of paying
  /// aligned_alloc/free per job. Not owned; must outlive the call. The
  /// staged OUTPUT is never arena-backed (it escapes to the caller).
  ArenaHook* arena = nullptr;

  /// Throws invalid_argument_error when structurally invalid.
  void validate(index_t m, index_t n) const {
    require(d >= 0, "SketchConfig: d must be nonnegative");
    require(block_d >= 1, "SketchConfig: block_d must be >= 1");
    require(block_n >= 1, "SketchConfig: block_n must be >= 1");
    require(deadline_ms >= 0.0, "SketchConfig: deadline_ms must be >= 0");
    (void)m;
    (void)n;
  }
};

/// Timing / counting breakdown of one sketch invocation (paper Tables III–V).
struct SketchStats {
  double total_seconds = 0.0;    ///< sample + multiply (excludes conversion)
  double sample_seconds = 0.0;   ///< time inside RNG fills (instrumented runs)
  double convert_seconds = 0.0;  ///< CSC → blocked CSR time (Alg. 4 only)
  std::uint64_t samples_generated = 0;  ///< entries of S produced
  double gflops = 0.0;  ///< 2·d·nnz(A) / total_seconds / 1e9
  /// Micro-kernel ISA tier the kernels actually dispatched (never Auto).
  microkernel::Isa isa = microkernel::Isa::Scalar;
  /// Thread team size of the parallel sketch region (0 = ran sequentially
  /// or uninstrumented).
  int threads_used = 0;
  /// Max-thread-busy over mean-thread-busy for the parallel region (1.0 =
  /// perfectly balanced, ~threads_used = one thread did all the work;
  /// 0 when sequential or uninstrumented). Populated only when RSKETCH_PERF
  /// or tracing is on — measuring it costs one timer pair per kernel call.
  double thread_imbalance = 0.0;
  /// Predicted max/mean per-thread cost of the block schedule the kernels
  /// executed (1.0 = model says perfectly balanced; 0 when the run was
  /// sequential or the uniform schedule skipped the cost model). Compare
  /// with `thread_imbalance` to judge the cost model: predicted vs measured.
  double schedule_imbalance_est = 0.0;

  /// Degradation-ladder steps taken by this call under budget pressure
  /// (0 = ran with the requested configuration). Each step is also visible
  /// as a run_control/degrade perf span. See docs/ROBUSTNESS.md.
  std::uint64_t degradations = 0;
  /// Stops observed by this stats object's run-control scope. On a stopped
  /// run the call throws instead of returning stats, so these are nonzero
  /// only in aggregates assembled from the global perf counters
  /// (run_cancelled / run_deadline_hits in BENCH_* reports); they are kept
  /// here so SketchStats mirrors the full observability surface.
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_hits = 0;

  /// Software work/traffic counters, populated when the run is instrumented
  /// or RSKETCH_PERF is on (all-zero otherwise). See perf/counters.hpp.
  perf::KernelCounters counters;

  /// Measured computational intensity (flops per element moved or
  /// generated) — comparable to the §III-A model in analysis/roofline.hpp.
  double measured_intensity() const { return counters.intensity_per_element(); }
};

}  // namespace rsketch
