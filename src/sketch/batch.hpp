// SketchBatch: the concurrent serving layer over sketch_into — many
// independent sketch jobs in flight on one persistent worker pool
// (support/executor.hpp), sharing one tuner memo and one recycling workspace
// arena so per-job setup is amortized across the stream.
//
// Scheduling model: each submitted job is classified through the
// roofline-style size test in classify_large() — cache-resident jobs run
// whole-job-per-worker with the kernel forced to ParallelOver::Sequential
// (bitwise-safe: thread count and parallel mode never change Â's bits, see
// sketch/sketch.cpp's ladder invariant), so N workers run N jobs
// concurrently with zero intra-job coordination; jobs too large for that
// keep their OpenMP-parallel kernel configuration and (by default) run one
// at a time under an internal lock so the pool and the OMP team never
// oversubscribe the machine.
//
// Run control fans out: every job gets a child RunControl chained to the
// batch-level control, so cancel()/deadline/budget at the batch stops every
// queued and running job — each exactly once, each with the library's
// complete-or-untouched output guarantee (queued jobs fail their first poll
// before touching anything; running jobs stage as always).
//
// Observability: batch_jobs / batch_steals counters, a batch/job span and
// trace slice per job, and a batch_queue_depth trace counter track. See
// docs/SERVING.md for the full model and docs/OBSERVABILITY.md for the
// counter catalog.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/machine.hpp"
#include "sketch/sketch.hpp"
#include "sketch/tuner.hpp"
#include "solvers/guarded.hpp"
#include "support/executor.hpp"
#include "support/run_control.hpp"

namespace rsketch {

struct BatchOptions {
  /// Pool size (0 = omp_get_max_threads()).
  int workers = 0;
  /// Batch-wide wall-clock deadline in ms (0 = none): every job still
  /// queued or running when it fires stops with DeadlineExceeded.
  double deadline_ms = 0.0;
  /// Batch-wide workspace byte budget (0 = none) covering the shared arena
  /// and every job's tracked scratch. Jobs that no longer fit walk the
  /// per-job degradation ladder (or fail, per their cfg.on_pressure).
  std::size_t workspace_budget_bytes = 0;
  /// Optional external control the batch control chains to. Not owned.
  RunControl* control = nullptr;
  /// Flop threshold (2·d·nnz) above which a job is "large" (0 = the
  /// built-in default, kLargeJobFlops).
  double large_job_flops = 0.0;
  /// Run large (OpenMP-parallel) jobs one at a time so the pool and the OMP
  /// team never oversubscribe. Turn off only when workers ≪ cores.
  bool serialize_large_jobs = true;
  /// TEST HOOK: pin every submit to this worker's queue (-1 = round-robin).
  /// A skewed placement forces the other workers to steal.
  int submit_worker = -1;
};

namespace detail {

/// Shared state behind a JobHandle. The job's RunControl chains to the
/// batch control; finished/stats/error are published under mu.
struct BatchJob {
  std::uint64_t id = 0;
  RunControl control;
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  SketchStats stats;
  std::exception_ptr error;
};

}  // namespace detail

/// Future-like handle to one submitted job. Copyable (shared state);
/// outliving the batch is fine — the batch drains before destruction, so a
/// handle held afterwards reads a finished job.
class JobHandle {
 public:
  /// Block until the job finished (successfully or not).
  void wait() const;

  /// Non-blocking completion check.
  bool done() const;

  /// Wait, then true when the job ended in an exception.
  bool failed() const;

  /// Wait, then the job's error (nullptr on success).
  std::exception_ptr error() const;

  /// Wait, then the job's stats — rethrowing the job's exception if it
  /// failed, so `h.stats()` behaves like a synchronous sketch_into call.
  const SketchStats& stats() const;

  std::uint64_t id() const { return job_->id; }

 private:
  friend class SketchBatch;
  explicit JobHandle(std::shared_ptr<detail::BatchJob> job)
      : job_(std::move(job)) {}
  std::shared_ptr<detail::BatchJob> job_;
};

class SketchBatch {
 public:
  /// Default flop threshold separating whole-job-per-worker jobs from
  /// OMP-parallel ones: ~1 GF is a few ms of kernel work — below that,
  /// parallel-region overhead beats any intra-job speedup.
  static constexpr double kLargeJobFlops = 1e9;

  explicit SketchBatch(BatchOptions options = {});

  /// Cancels whatever is still queued or running, then drains the pool.
  /// Call wait_all() first when the outputs matter.
  ~SketchBatch();

  SketchBatch(const SketchBatch&) = delete;
  SketchBatch& operator=(const SketchBatch&) = delete;

  /// Enqueue one sketch job: `out` receives Â = S·A exactly as a direct
  /// sketch_into(cfg, a, out) call would produce it, bit for bit. `a` and
  /// `out` are borrowed until the job finishes (wait on the handle or
  /// wait_all()). cfg.control/cfg.arena must be null — the batch owns both
  /// per-job wiring points; use BatchOptions for batch-level bounds.
  template <typename T>
  JobHandle submit(SketchConfig cfg, const CscMatrix<T>& a,
                   DenseMatrix<T>& out) {
    require(cfg.control == nullptr,
            "SketchBatch::submit: cfg.control is owned by the batch; set "
            "BatchOptions::control for an external handle");
    require(cfg.arena == nullptr,
            "SketchBatch::submit: cfg.arena is owned by the batch");
    if (cfg.tune != TuneMode::Off) cfg = resolve_shared(cfg, a);
    const bool large = classify_large(cfg, a);
    if (!large) cfg.parallel = ParallelOver::Sequential;
    const CscMatrix<T>* ap = &a;
    DenseMatrix<T>* outp = &out;
    return enqueue(
        [this, cfg, ap, outp](RunControl* run) {
          SketchConfig c = cfg;
          c.control = run;
          c.arena = &arena_;
          return sketch_into(c, *ap, *outp);
        },
        large);
  }

  /// Enqueue a guarded sketch-and-precondition solve (solvers/guarded.hpp)
  /// as a batch job: batch cancel/deadline/budget fan into its attempts via
  /// the same per-job control chain. Always scheduled as a large job (the
  /// SAP pipeline is parallel end to end). The handle's stats() are empty —
  /// the solve's telemetry lives in `out`.
  template <typename T>
  JobHandle submit_guarded_solve(GuardedSapOptions options,
                                 const CscMatrix<T>& a, const std::vector<T>& b,
                                 GuardedSapResult<T>& out) {
    require(options.control == nullptr,
            "SketchBatch::submit_guarded_solve: options.control is owned by "
            "the batch; set BatchOptions::control for an external handle");
    const CscMatrix<T>* ap = &a;
    const std::vector<T>* bp = &b;
    GuardedSapResult<T>* outp = &out;
    return enqueue(
        [options, ap, bp, outp](RunControl* run) mutable {
          options.control = run;
          *outp = guarded_sap_solve(*ap, *bp, options);
          return SketchStats{};
        },
        /*large=*/true);
  }

  /// Cooperatively stop every queued and running job (each fails with
  /// run_stopped_error(Cancelled), outputs complete-or-untouched).
  void cancel() { control_.request_cancel(); }

  /// Block until every job submitted so far finished; returns how many of
  /// them failed (their handles carry the exceptions).
  std::size_t wait_all();

  int workers() const { return exec_.workers(); }
  std::uint64_t jobs_submitted() const;
  std::uint64_t steals() const { return exec_.steals(); }
  std::size_t queue_depth() const { return exec_.queue_depth(); }

  /// Batch-level control (deadline/budget/cancel root). Exposed for tests
  /// and for callers that coordinate several batches.
  RunControl& control() { return control_; }
  /// The shared recycling arena (reuse_hits/slab_allocs/held_bytes).
  WorkspaceArena& arena() { return arena_; }

 private:
  /// Tuner choice shared across jobs with the same fingerprint+config —
  /// the expensive part (fingerprint pass, pilot timing or cache file read)
  /// runs once per distinct problem shape per batch.
  struct TunedChoice {
    KernelVariant kernel;
    RngBackend backend;
    index_t block_d;
    index_t block_n;
    microkernel::Isa isa;
    ScheduleMode schedule;
  };

  JobHandle enqueue(std::function<SketchStats(RunControl*)> body, bool large);

  template <typename T>
  bool classify_large(const SketchConfig& cfg, const CscMatrix<T>& a) const {
    const double flops = 2.0 * static_cast<double>(cfg.d) *
                         static_cast<double>(a.nnz());
    const double threshold =
        options_.large_job_flops > 0.0 ? options_.large_job_flops
                                       : kLargeJobFlops;
    if (flops > threshold) return true;
    // Footprint test: input + output + estimated scratch vs. the outermost
    // cache. A job that spills anyway gains more from the OMP kernels'
    // memory-level parallelism than from job-level concurrency.
    const std::size_t footprint =
        a.memory_bytes() +
        static_cast<std::size_t>(cfg.d) * static_cast<std::size_t>(a.cols()) *
            sizeof(T) +
        sketch_workspace_estimate<T>(cfg, a.rows(), a.cols(), a.nnz());
    return footprint > cache_bytes_;
  }

  template <typename T>
  SketchConfig resolve_shared(SketchConfig cfg, const CscMatrix<T>& a) {
    const std::string key =
        matrix_fingerprint(a, cfg.d) + "|" + std::to_string(int(cfg.tune)) +
        "|" + std::to_string(int(cfg.kernel)) + "|" +
        std::to_string(int(cfg.backend)) + "|" + std::to_string(cfg.block_d) +
        "x" + std::to_string(cfg.block_n) + "|" +
        std::to_string(int(cfg.isa)) + "|" + std::to_string(int(cfg.schedule));
    {
      std::lock_guard<std::mutex> lock(tuner_mu_);
      const auto it = tuner_memo_.find(key);
      if (it != tuner_memo_.end()) {
        apply_choice(cfg, it->second);
        return cfg;
      }
    }
    // Resolve outside the lock: a racing duplicate resolution is benign
    // (deterministic inputs, identical result) and never blocks submitters
    // behind a pilot-timing run.
    const SketchConfig resolved = resolve_tuning(cfg, a);
    const TunedChoice choice{resolved.kernel,  resolved.backend,
                             resolved.block_d, resolved.block_n,
                             resolved.isa,     resolved.schedule};
    {
      std::lock_guard<std::mutex> lock(tuner_mu_);
      tuner_memo_.emplace(key, choice);
    }
    apply_choice(cfg, choice);
    return cfg;
  }

  static void apply_choice(SketchConfig& cfg, const TunedChoice& c) {
    cfg.kernel = c.kernel;
    cfg.backend = c.backend;
    cfg.block_d = c.block_d;
    cfg.block_n = c.block_n;
    cfg.isa = c.isa;
    cfg.schedule = c.schedule;
    cfg.tune = TuneMode::Off;
  }

  BatchOptions options_;
  RunControl control_;
  WorkspaceArena arena_{&control_};
  std::size_t cache_bytes_ = 0;

  std::mutex tuner_mu_;
  std::map<std::string, TunedChoice> tuner_memo_;

  mutable std::mutex jobs_mu_;
  std::vector<std::shared_ptr<detail::BatchJob>> jobs_;
  std::uint64_t next_id_ = 0;

  std::mutex large_mu_;

  /// Last member: destroyed first, draining every task while the arena,
  /// control, and locks above are still alive.
  Executor exec_;
};

}  // namespace rsketch
