// Cost-model-driven block scheduler (DESIGN.md §5b).
//
// The outer-blocked kernels parallelize over (i-block, j-block) pairs whose
// per-block work varies wildly with the nnz distribution of A — a uniform
// omp-for split leaves threads idling behind whichever one drew the dense
// blocks (thread_imbalance 1.4 at 4 threads on the table7 skewed workload).
// This module closes the structure → cost → schedule loop: a per-block work
// estimator calibrated once per process from the machine probes feeds an LPT
// bin-packing partitioner that emits a deterministic static BlockSchedule —
// an explicit per-thread list of block ids each thread walks privately.
//
// Every mode executes every block exactly once and output blocks are
// disjoint, so Â is bitwise identical across schedules, kernels, ISA tiers
// and distributions; the schedule is a pure load-balance knob.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sketch/config.hpp"
#include "sparse/blocked_csr.hpp"
#include "sparse/csc.hpp"
#include "support/common.hpp"

namespace rsketch {

/// Deterministic static assignment of block ids to threads. Thread t owns
/// items[offsets[t] .. offsets[t+1]); each list is sorted ascending so a
/// thread walks its blocks in traversal order (locality), while the *set*
/// per thread comes from the partitioner.
struct BlockSchedule {
  std::vector<index_t> items;    ///< block ids, grouped by owning thread
  std::vector<index_t> offsets;  ///< size threads()+1; prefix offsets
  /// Predicted max/mean per-thread cost (1.0 = model says balanced; 0 when
  /// the uniform split skipped the cost model entirely).
  double imbalance_est = 0.0;

  int threads() const { return static_cast<int>(offsets.size()) - 1; }
};

/// Parse "auto" / "uniform" / "balanced" into `out`; false on anything else.
bool parse_schedule_mode(const std::string& s, ScheduleMode& out);

/// Resolve Auto using explicit env strings (pure; for tests). Precedence:
/// non-Auto `requested` wins; then RSKETCH_SCHEDULE (`env_value`); then the
/// deprecated RSKETCH_JKI_SCHEDULE alias (`legacy_value`, static → Uniform,
/// dynamic → Balanced, warned once); then Balanced — the default is on.
ScheduleMode resolve_schedule_mode(ScheduleMode requested,
                                   const std::string& env_value,
                                   const std::string& legacy_value);

/// Resolve Auto through the process environment (cached after first read).
ScheduleMode resolve_schedule_mode(ScheduleMode requested);

/// Calibrated cost of generating one entry of S relative to moving one
/// element, i.e. measured h from analysis/machine.hpp — memoized per
/// (dist, backend) so the stream + RNG probes run once per process.
double schedule_rng_cost(Dist dist, RngBackend backend);

/// Contiguous equal-count split of [0, n_items) over `nthreads` lists —
/// the moral equivalent of omp schedule(static). No cost model consulted.
BlockSchedule build_uniform_schedule(index_t n_items, int nthreads);

/// LPT (longest-processing-time-first) greedy bin packing: items sorted by
/// (cost desc, id asc) land in the currently lightest bin (lowest thread id
/// on ties). Deterministic for a fixed cost vector; max bin ≤ 4/3 · optimum
/// by the classic Graham bound.
BlockSchedule build_balanced_schedule(const std::vector<double>& costs,
                                      int nthreads);

/// Per-item cost vectors for the estimator. DBlocks items are (jb, ib) pairs
/// flattened jb-major (id = jb·n_iblocks + ib); NBlocks items are whole
/// j-block column slabs (id = jb). Units are element-traffic equivalents:
/// first-touch stores of the output panel, rng_cost per generated sample,
/// and 2 per flop-pair touched.
/// kji (Alg. 3): regenerates a d1-column of S per nonzero of the slab —
///   cost = d1·n1 + rng_cost·d1·nnz + 2·d1·nnz.
template <typename T>
std::vector<double> kji_item_costs(const CscMatrix<T>& a, index_t d,
                                   index_t bd, index_t bn, ParallelOver mode,
                                   double rng_cost);
/// jki (Alg. 4): regenerates one column per nonempty row of the slab and
///   reuses it across the row — cost = d1·width + rng_cost·d1·nonempty_rows
///   + 2·d1·nnz.
template <typename T>
std::vector<double> jki_item_costs(const BlockedCsr<T>& ab, index_t d,
                                   index_t bd, ParallelOver mode,
                                   double rng_cost);

/// Build the schedule for one kernel invocation: resolves nothing (pass the
/// resolved mode), times the build under the "schedule/build" span, bumps
/// the schedule_* counters and emits the predicted imbalance onto the trace
/// counter track. `costs` is only invoked for Balanced — Uniform never pays
/// the calibration probes. Sequential runs (nthreads <= 1) and degenerate
/// item counts short-circuit to a trivial split with no telemetry.
BlockSchedule build_block_schedule(
    ScheduleMode resolved, int nthreads, index_t n_items,
    const std::function<std::vector<double>()>& costs);

}  // namespace rsketch
