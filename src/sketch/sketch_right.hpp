// Right-sketching: B = A·Sᵀ with a virtual random S ∈ R^{d×n}, compressing
// the COLUMN dimension of A (row-space sketch). This is the mirror image of
// the paper's Â = S·A and the second primitive a sketching library needs
// (RandBLAS exposes both sides); it drives the randomized range finder in
// solvers/randomized_svd.
//
// CSC is the NATURAL format here: one regenerated column S[:, k] is reused
// across every nonzero of A's column k (the same reuse Algorithm 4 has to
// build blocked CSR to get), so the kernel generates only d·n samples and
// keeps all accesses contiguous when B is stored row-major.
#pragma once

#include <vector>

#include "dense/dense_matrix.hpp"
#include "sketch/config.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Compute B = A·Sᵀ into a row-major m×d buffer (resized by the callee;
/// element (i, c) at b_rowmajor[i·d + c]). Blocking over the d dimension
/// follows cfg.block_d with the same (seed, checkpoint) contract as the
/// left-sketch kernels: S[c0:c0+d1, k] is a pure function of (seed, c0, k).
/// cfg.parallel == DBlocks splits the d dimension across threads.
template <typename T>
SketchStats sketch_right_into(const SketchConfig& cfg, const CscMatrix<T>& a,
                              std::vector<T>& b_rowmajor);

/// Materialize the virtual right-sketch S (d×n, column-major) under the
/// same checkpointing — for tests and small problems.
template <typename T>
DenseMatrix<T> materialize_right_S(const SketchConfig& cfg, index_t n);

extern template SketchStats sketch_right_into<float>(const SketchConfig&,
                                                     const CscMatrix<float>&,
                                                     std::vector<float>&);
extern template SketchStats sketch_right_into<double>(
    const SketchConfig&, const CscMatrix<double>&, std::vector<double>&);
extern template DenseMatrix<float> materialize_right_S<float>(
    const SketchConfig&, index_t);
extern template DenseMatrix<double> materialize_right_S<double>(
    const SketchConfig&, index_t);

}  // namespace rsketch
