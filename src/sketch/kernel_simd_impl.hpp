// Shared template body of the micro-kernel ISA tiers (dense/microkernel.hpp).
//
// This header is compiled once per tier: kernel_simd_{scalar,avx2,avx512}.cpp
// each define RSKETCH_SIMD_NS and include it, and CMake gives each TU its own
// -m flags plus -ffp-contract=off. The loops are written so the compiler
// auto-vectorizes them at whatever width the flags allow; because contraction
// is pinned off, every tier performs the identical elementwise mul + add
// sequence and therefore produces bitwise-identical results — the dispatch
// contract tests/test_simd_equivalence.cpp enforces.
//
// The chunked distribution transforms mirror the batched sampler exactly
// (one 8x64-bit xoshiro batch -> 16 uniforms or 64 +-1 samples): the fused
// generate-and-axpy path consumes the stream in the same chunk layout as the
// buffered fill, so fusing never changes which random bits land where.
//
// Tracing granularity: nothing in this header emits perf::trace events. The
// loops here run per chunk / per nonzero — millions of times per sketch — so
// even one armed-flag branch per call would be measurable. The trace
// instrumentation floor is the kernel outer block (kernel_{jki,kji}.cpp),
// one Scope per (i-block, j-block) pair; keep it there.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#include "dense/microkernel.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro_batch.hpp"

#ifndef RSKETCH_SIMD_NS
#error "kernel_simd_impl.hpp must be included with RSKETCH_SIMD_NS defined"
#endif

namespace rsketch::microkernel {
namespace RSKETCH_SIMD_NS {
namespace {

constexpr float kInv31f = 1.0f / 2147483648.0f;  // 2^-31

// ---- register-blocked dense updates ---------------------------------------

template <typename T>
void axpy_one(index_t n, T a, const T* __restrict x, T* __restrict y) {
#pragma omp simd
  for (index_t i = 0; i < n; ++i) y[i] += a * x[i];
}

// The jam bodies keep one vector load of v per iteration feeding R
// independent accumulator columns — R-fold reuse of the regenerated column
// straight out of registers (Algorithm 4's reuse argument applied one level
// down the memory hierarchy).

template <typename T>
void jam2(index_t n, const T* __restrict v, T a0, T a1, T* __restrict y0,
          T* __restrict y1) {
#pragma omp simd
  for (index_t i = 0; i < n; ++i) {
    const T vi = v[i];
    y0[i] += a0 * vi;
    y1[i] += a1 * vi;
  }
}

template <typename T>
void jam3(index_t n, const T* __restrict v, T a0, T a1, T a2,
          T* __restrict y0, T* __restrict y1, T* __restrict y2) {
#pragma omp simd
  for (index_t i = 0; i < n; ++i) {
    const T vi = v[i];
    y0[i] += a0 * vi;
    y1[i] += a1 * vi;
    y2[i] += a2 * vi;
  }
}

template <typename T>
void jam4(index_t n, const T* __restrict v, T a0, T a1, T a2, T a3,
          T* __restrict y0, T* __restrict y1, T* __restrict y2,
          T* __restrict y3) {
#pragma omp simd
  for (index_t i = 0; i < n; ++i) {
    const T vi = v[i];
    y0[i] += a0 * vi;
    y1[i] += a1 * vi;
    y2[i] += a2 * vi;
    y3[i] += a3 * vi;
  }
}

template <typename T>
void axpy_multi(index_t n, const T* v, const T* alphas, T* const* ys,
                index_t ncols) {
  switch (ncols) {
    case 1:
      axpy_one(n, alphas[0], v, ys[0]);
      return;
    case 2:
      jam2(n, v, alphas[0], alphas[1], ys[0], ys[1]);
      return;
    case 3:
      jam3(n, v, alphas[0], alphas[1], alphas[2], ys[0], ys[1], ys[2]);
      return;
    case 4:
      jam4(n, v, alphas[0], alphas[1], alphas[2], alphas[3], ys[0], ys[1],
           ys[2], ys[3]);
      return;
    default:
      // Callers group by kMaxJam; anything wider degrades gracefully.
      for (index_t c = 0; c < ncols; ++c) axpy_one(n, alphas[c], v, ys[c]);
      return;
  }
}

// ---- chunked distribution transforms --------------------------------------
// One 8x64-bit batch -> a fixed-size chunk. Word order is identical across
// tiers and identical between the fill and fused variants below.

/// 16 uniforms per batch: the buffer viewed as 16 int32 words, converted and
/// scaled elementwise.
template <typename T>
inline void chunk_uniform(const std::uint64_t* buf, T* __restrict out) {
  std::int32_t w[16];
  std::memcpy(w, buf, sizeof w);
#pragma omp simd
  for (int k = 0; k < 16; ++k) {
    out[k] = static_cast<T>(w[k]) * static_cast<T>(kInv31f);
  }
}

/// 16 raw-int32 samples per batch (scaling trick; same word order as
/// chunk_uniform so trick * 2^-31 == uniform holds exactly).
template <typename T>
inline void chunk_uniform_scaled(const std::uint64_t* buf, T* __restrict out) {
  std::int32_t w[16];
  std::memcpy(w, buf, sizeof w);
#pragma omp simd
  for (int k = 0; k < 16; ++k) out[k] = static_cast<T>(w[k]);
}

/// 64 +-1 samples per batch: the random low bit of each byte becomes the
/// sign bit of the IEEE constant 1.0, branch-free and byte-parallel.
inline void chunk_pm1(const std::uint64_t* buf, float* __restrict out) {
  unsigned char bytes[64];
  std::memcpy(bytes, buf, sizeof bytes);
#pragma omp simd
  for (int k = 0; k < 64; ++k) {
    const std::uint32_t bit = bytes[k] & 1u;
    out[k] = std::bit_cast<float>(0x3F800000u | (bit << 31));
  }
}

inline void chunk_pm1(const std::uint64_t* buf, double* __restrict out) {
  unsigned char bytes[64];
  std::memcpy(bytes, buf, sizeof bytes);
#pragma omp simd
  for (int k = 0; k < 64; ++k) {
    const std::uint64_t bit = bytes[k] & 1u;
    out[k] = std::bit_cast<double>(0x3FF0000000000000ULL | (bit << 63));
  }
}

// ---- fused generate-and-axpy chunk bodies ---------------------------------
// Same transform as above, but the sample goes straight into the update:
// out[k] += a * s_k with s_k computed exactly as the buffered path computes
// v[k] (the inner multiply rounds first, then the outer one — never fused).

template <typename T>
inline void chunk_uniform_fma(const std::uint64_t* buf, T a,
                              T* __restrict out) {
  std::int32_t w[16];
  std::memcpy(w, buf, sizeof w);
#pragma omp simd
  for (int k = 0; k < 16; ++k) {
    out[k] += a * (static_cast<T>(w[k]) * static_cast<T>(kInv31f));
  }
}

template <typename T>
inline void chunk_uniform_scaled_fma(const std::uint64_t* buf, T a,
                                     T* __restrict out) {
  std::int32_t w[16];
  std::memcpy(w, buf, sizeof w);
#pragma omp simd
  for (int k = 0; k < 16; ++k) out[k] += a * static_cast<T>(w[k]);
}

inline void chunk_pm1_fma(const std::uint64_t* buf, float a,
                          float* __restrict out) {
  unsigned char bytes[64];
  std::memcpy(bytes, buf, sizeof bytes);
#pragma omp simd
  for (int k = 0; k < 64; ++k) {
    const std::uint32_t bit = bytes[k] & 1u;
    out[k] += a * std::bit_cast<float>(0x3F800000u | (bit << 31));
  }
}

inline void chunk_pm1_fma(const std::uint64_t* buf, double a,
                          double* __restrict out) {
  unsigned char bytes[64];
  std::memcpy(bytes, buf, sizeof bytes);
#pragma omp simd
  for (int k = 0; k < 64; ++k) {
    const std::uint64_t bit = bytes[k] & 1u;
    out[k] += a * std::bit_cast<double>(0x3FF0000000000000ULL | (bit << 63));
  }
}

// ---- chunked drivers ------------------------------------------------------

/// Full chunks straight into v, one spilled chunk for the tail, all inside
/// one register-resident generator sweep. The emitted stream is a pure
/// function of the checkpoint and the chunk layout, so prefixes agree across
/// different fill lengths.
template <typename T, int kChunk, typename Fn>
inline void fill_chunked(XoshiroBatch& g, T* v, index_t n, Fn&& transform) {
  const index_t batches = ceil_div(n, kChunk);
  const index_t full = n / kChunk;
  g.for_each_batch(batches, [&](const std::uint64_t* buf, index_t c) {
    if (c < full) {
      transform(buf, v + c * kChunk);
    } else {
      alignas(64) T tail[kChunk];
      transform(buf, tail);
      std::memcpy(v + c * kChunk, tail,
                  static_cast<std::size_t>(n - c * kChunk) * sizeof(T));
    }
  });
}

/// Fused driver: identical chunk walk, but each full chunk applies the
/// update in place. The spilled tail transforms into scratch and applies the
/// same per-element mul + add, so fused output is bitwise identical to
/// fill_chunked-then-axpy.
template <typename T, int kChunk, typename Fma, typename Transform>
inline void fused_chunked(XoshiroBatch& g, T a, T* out, index_t n,
                          Fma&& fma_chunk, Transform&& transform) {
  const index_t batches = ceil_div(n, kChunk);
  const index_t full = n / kChunk;
  g.for_each_batch(batches, [&](const std::uint64_t* buf, index_t c) {
    if (c < full) {
      fma_chunk(buf, a, out + c * kChunk);
    } else {
      alignas(64) T tail[kChunk];
      transform(buf, tail);
      T* __restrict o = out + c * kChunk;
      const index_t rem = n - c * kChunk;
      for (index_t i = 0; i < rem; ++i) o[i] += a * tail[i];
    }
  });
}

template <typename T>
void fill(XoshiroBatch& g, Dist dist, T* v, index_t n) {
  switch (dist) {
    case Dist::PmOne:
      fill_chunked<T, 64>(g, v, n, [](const std::uint64_t* buf, T* out) {
        chunk_pm1(buf, out);
      });
      return;
    case Dist::Uniform:
      fill_chunked<T, 16>(g, v, n, [](const std::uint64_t* buf, T* out) {
        chunk_uniform(buf, out);
      });
      return;
    case Dist::UniformScaled:
      fill_chunked<T, 16>(g, v, n, [](const std::uint64_t* buf, T* out) {
        chunk_uniform_scaled(buf, out);
      });
      return;
    default:
      // Gaussian/Junk never dispatch here (the sampler routes them through
      // its generic paths); a misuse is a library bug, not user error.
      require(false, "microkernel fill: distribution is not chunk-capable");
  }
}

template <typename T>
void fused_axpy(XoshiroBatch& g, Dist dist, T a, T* out, index_t n) {
  switch (dist) {
    case Dist::PmOne:
      fused_chunked<T, 64>(
          g, a, out, n,
          [](const std::uint64_t* buf, T aa, T* o) { chunk_pm1_fma(buf, aa, o); },
          [](const std::uint64_t* buf, T* o) { chunk_pm1(buf, o); });
      return;
    case Dist::Uniform:
      fused_chunked<T, 16>(
          g, a, out, n,
          [](const std::uint64_t* buf, T aa, T* o) {
            chunk_uniform_fma(buf, aa, o);
          },
          [](const std::uint64_t* buf, T* o) { chunk_uniform(buf, o); });
      return;
    case Dist::UniformScaled:
      fused_chunked<T, 16>(
          g, a, out, n,
          [](const std::uint64_t* buf, T aa, T* o) {
            chunk_uniform_scaled_fma(buf, aa, o);
          },
          [](const std::uint64_t* buf, T* o) { chunk_uniform_scaled(buf, o); });
      return;
    default:
      require(false, "microkernel fused_axpy: distribution is not "
                     "chunk-capable");
  }
}

}  // namespace

template <typename T>
Ops<T> make_ops() {
  Ops<T> t;
  t.axpy = &axpy_one<T>;
  t.axpy_multi = &axpy_multi<T>;
  t.fill = &fill<T>;
  t.fused_axpy = &fused_axpy<T>;
  return t;
}

template Ops<float> make_ops<float>();
template Ops<double> make_ops<double>();

}  // namespace RSKETCH_SIMD_NS
}  // namespace rsketch::microkernel
