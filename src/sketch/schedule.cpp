#include "sketch/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>

#include "analysis/machine.hpp"
#include "perf/perf.hpp"
#include "perf/trace.hpp"
#include "support/env.hpp"

namespace rsketch {

bool parse_schedule_mode(const std::string& s, ScheduleMode& out) {
  if (s == "auto") {
    out = ScheduleMode::Auto;
    return true;
  }
  if (s == "uniform") {
    out = ScheduleMode::Uniform;
    return true;
  }
  if (s == "balanced") {
    out = ScheduleMode::Balanced;
    return true;
  }
  return false;
}

ScheduleMode resolve_schedule_mode(ScheduleMode requested,
                                   const std::string& env_value,
                                   const std::string& legacy_value) {
  if (requested != ScheduleMode::Auto) return requested;
  if (!env_value.empty()) {
    ScheduleMode m = ScheduleMode::Auto;
    if (!parse_schedule_mode(env_value, m)) {
      env_warn_once("RSKETCH_SCHEDULE", env_value.c_str(),
                    "expected auto/uniform/balanced; using balanced");
    } else if (m != ScheduleMode::Auto) {
      return m;
    }
  }
  if (!legacy_value.empty()) {
    // Pre-scheduler knob (jki-only): static pinned i-blocks to threads,
    // dynamic let them float. Uniform reproduces the naive pinning the
    // imbalance experiments rely on; everything else gets the balancer.
    static std::once_flag warned;
    std::call_once(warned, [&] {
      std::fprintf(stderr,
                   "rsketch: RSKETCH_JKI_SCHEDULE is deprecated; use "
                   "RSKETCH_SCHEDULE=uniform|balanced (mapping '%s' -> %s)\n",
                   legacy_value.c_str(),
                   legacy_value == "static" ? "uniform" : "balanced");
    });
    if (legacy_value == "static") return ScheduleMode::Uniform;
    return ScheduleMode::Balanced;
  }
  return ScheduleMode::Balanced;
}

ScheduleMode resolve_schedule_mode(ScheduleMode requested) {
  if (requested != ScheduleMode::Auto) return requested;
  static const ScheduleMode from_env =
      resolve_schedule_mode(ScheduleMode::Auto,
                            env_string("RSKETCH_SCHEDULE", ""),
                            env_string("RSKETCH_JKI_SCHEDULE", ""));
  return from_env;
}

double schedule_rng_cost(Dist dist, RngBackend backend) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, double> memo;
  const auto key = std::make_pair(static_cast<int>(dist),
                                  static_cast<int>(backend));
  std::lock_guard<std::mutex> lock(mu);
  auto it = memo.find(key);
  if (it != memo.end()) return it->second;
  const double h = measure_h(dist, backend, cached_stream_result());
  // The estimator only needs a sane ratio; a probe gone sideways (throttled
  // box, zero-length timing window) must not poison every schedule after it.
  const double clamped = std::isfinite(h) ? std::min(std::max(h, 0.1), 1e4)
                                          : 1.0;
  memo.emplace(key, clamped);
  return clamped;
}

BlockSchedule build_uniform_schedule(index_t n_items, int nthreads) {
  const int nt = std::max(nthreads, 1);
  BlockSchedule s;
  s.items.resize(static_cast<std::size_t>(std::max<index_t>(n_items, 0)));
  std::iota(s.items.begin(), s.items.end(), index_t{0});
  s.offsets.resize(static_cast<std::size_t>(nt) + 1);
  const index_t base = n_items / nt;
  const index_t rem = n_items % nt;
  index_t off = 0;
  for (int t = 0; t <= nt; ++t) {
    s.offsets[static_cast<std::size_t>(t)] = off;
    if (t < nt) off += base + (t < rem ? 1 : 0);
  }
  return s;
}

BlockSchedule build_balanced_schedule(const std::vector<double>& costs,
                                      int nthreads) {
  const int nt = std::max(nthreads, 1);
  const index_t n = static_cast<index_t>(costs.size());
  std::vector<index_t> order(costs.size());
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return costs[static_cast<std::size_t>(a)] >
           costs[static_cast<std::size_t>(b)];
  });

  std::vector<double> load(static_cast<std::size_t>(nt), 0.0);
  std::vector<std::vector<index_t>> bins(static_cast<std::size_t>(nt));
  for (index_t id : order) {
    int best = 0;
    for (int t = 1; t < nt; ++t) {
      if (load[static_cast<std::size_t>(t)] <
          load[static_cast<std::size_t>(best)]) {
        best = t;
      }
    }
    bins[static_cast<std::size_t>(best)].push_back(id);
    load[static_cast<std::size_t>(best)] += costs[static_cast<std::size_t>(id)];
  }

  BlockSchedule s;
  s.items.reserve(static_cast<std::size_t>(n));
  s.offsets.resize(static_cast<std::size_t>(nt) + 1);
  s.offsets[0] = 0;
  for (int t = 0; t < nt; ++t) {
    auto& bin = bins[static_cast<std::size_t>(t)];
    std::sort(bin.begin(), bin.end());
    s.items.insert(s.items.end(), bin.begin(), bin.end());
    s.offsets[static_cast<std::size_t>(t) + 1] =
        static_cast<index_t>(s.items.size());
  }

  const double total = std::accumulate(load.begin(), load.end(), 0.0);
  const double mx = *std::max_element(load.begin(), load.end());
  const double mean = total / static_cast<double>(nt);
  s.imbalance_est = mean > 0.0 ? mx / mean : 1.0;
  return s;
}

template <typename T>
std::vector<double> kji_item_costs(const CscMatrix<T>& a, index_t d,
                                   index_t bd, index_t bn, ParallelOver mode,
                                   double rng_cost) {
  const index_t n = a.cols();
  const index_t n_i = d == 0 ? 0 : ceil_div(d, bd);
  const index_t n_j = n == 0 ? 0 : ceil_div(n, bn);
  const auto& col_ptr = a.col_ptr();
  std::vector<double> out;
  if (mode == ParallelOver::NBlocks) {
    out.resize(static_cast<std::size_t>(n_j));
    for (index_t jb = 0; jb < n_j; ++jb) {
      const index_t j0 = jb * bn;
      const index_t n1 = std::min(bn, n - j0);
      const double nnz = static_cast<double>(
          col_ptr[static_cast<std::size_t>(j0 + n1)] -
          col_ptr[static_cast<std::size_t>(j0)]);
      const double dd = static_cast<double>(d);
      out[static_cast<std::size_t>(jb)] =
          dd * static_cast<double>(n1) + (rng_cost + 2.0) * dd * nnz;
    }
    return out;
  }
  out.resize(static_cast<std::size_t>(n_i * n_j));
  for (index_t jb = 0; jb < n_j; ++jb) {
    const index_t j0 = jb * bn;
    const index_t n1 = std::min(bn, n - j0);
    const double nnz = static_cast<double>(
        col_ptr[static_cast<std::size_t>(j0 + n1)] -
        col_ptr[static_cast<std::size_t>(j0)]);
    for (index_t ib = 0; ib < n_i; ++ib) {
      const double d1 = static_cast<double>(std::min(bd, d - ib * bd));
      out[static_cast<std::size_t>(jb * n_i + ib)] =
          d1 * static_cast<double>(n1) + (rng_cost + 2.0) * d1 * nnz;
    }
  }
  return out;
}

template <typename T>
std::vector<double> jki_item_costs(const BlockedCsr<T>& ab, index_t d,
                                   index_t bd, ParallelOver mode,
                                   double rng_cost) {
  const index_t n_i = d == 0 ? 0 : ceil_div(d, bd);
  const index_t n_j = ab.num_blocks();
  std::vector<double> out;
  if (mode == ParallelOver::NBlocks) {
    out.resize(static_cast<std::size_t>(n_j));
    for (index_t jb = 0; jb < n_j; ++jb) {
      const double dd = static_cast<double>(d);
      out[static_cast<std::size_t>(jb)] =
          dd * static_cast<double>(ab.block_width(jb)) +
          rng_cost * dd * static_cast<double>(ab.block_nonempty_rows(jb)) +
          2.0 * dd * static_cast<double>(ab.block_nnz(jb));
    }
    return out;
  }
  out.resize(static_cast<std::size_t>(n_i * n_j));
  for (index_t jb = 0; jb < n_j; ++jb) {
    const double width = static_cast<double>(ab.block_width(jb));
    const double ner = static_cast<double>(ab.block_nonempty_rows(jb));
    const double nnz = static_cast<double>(ab.block_nnz(jb));
    for (index_t ib = 0; ib < n_i; ++ib) {
      const double d1 = static_cast<double>(std::min(bd, d - ib * bd));
      out[static_cast<std::size_t>(jb * n_i + ib)] =
          d1 * width + rng_cost * d1 * ner + 2.0 * d1 * nnz;
    }
  }
  return out;
}

BlockSchedule build_block_schedule(
    ScheduleMode resolved, int nthreads, index_t n_items,
    const std::function<std::vector<double>()>& costs) {
  if (nthreads <= 1 || n_items <= 1) {
    return build_uniform_schedule(n_items, nthreads);
  }
  perf::Span span("schedule/build");
  BlockSchedule s = resolved == ScheduleMode::Balanced
                        ? build_balanced_schedule(costs(), nthreads)
                        : build_uniform_schedule(n_items, nthreads);
  if (perf::enabled()) {
    perf::add(perf::Counter::ScheduleBuilds, 1);
    perf::add(perf::Counter::ScheduleBlocks,
              static_cast<std::uint64_t>(n_items));
    perf::add(perf::Counter::ScheduleImbalanceEstMilli,
              static_cast<std::uint64_t>(
                  std::llround(s.imbalance_est * 1000.0)));
  }
  if (perf::trace::armed()) {
    // Predicted imbalance next to the measured busy split in the timeline.
    perf::trace::counter(perf::trace::intern("schedule_imbalance_est"),
                         s.imbalance_est);
  }
  return s;
}

template std::vector<double> kji_item_costs<float>(const CscMatrix<float>&,
                                                   index_t, index_t, index_t,
                                                   ParallelOver, double);
template std::vector<double> kji_item_costs<double>(const CscMatrix<double>&,
                                                    index_t, index_t, index_t,
                                                    ParallelOver, double);
template std::vector<double> jki_item_costs<float>(const BlockedCsr<float>&,
                                                   index_t, index_t,
                                                   ParallelOver, double);
template std::vector<double> jki_item_costs<double>(const BlockedCsr<double>&,
                                                    index_t, index_t,
                                                    ParallelOver, double);

}  // namespace rsketch
