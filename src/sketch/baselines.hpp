// Library-style SpMM baselines with a pre-generated S — stand-ins for the
// Eigen, Julia SparseArrays, and Intel MKL comparisons in paper Tables II/IV.
// Each reproduces the defining property of its library: S is fully
// materialized in memory and the product uses that library's storage and
// traversal order. Timing is the caller's job (the paper excludes the cost
// of generating S for these baselines).
#pragma once

#include <vector>

#include "dense/dense_matrix.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Eigen-style dense×sparse: for each output column, accumulate the sparse
/// column's updates into a stack panel and write it back once (Eigen
/// evaluates products into a temporary before assignment).
template <typename T>
void baseline_eigen_style(const DenseMatrix<T>& s, const CscMatrix<T>& a,
                          DenseMatrix<T>& out);

/// Julia-style dense×sparse (SparseArrays mul!): in-place axpy accumulation
/// directly into the output, one sparse entry at a time.
template <typename T>
void baseline_julia_style(const DenseMatrix<T>& s, const CscMatrix<T>& a,
                          DenseMatrix<T>& out);

/// MKL-style: MKL sparse only supports sparse-times-dense, so the paper runs
/// the transposed operation Âᵀ = Aᵀ·Sᵀ with Aᵀ in CSR (whose arrays equal
/// A's CSC arrays) and Sᵀ in row-major layout.
///   `s_t_rowmajor`: m×d row-major (element (j,i) = S[i,j])
///   `out_t_rowmajor`: n×d row-major result Âᵀ (resized by the callee)
template <typename T>
void baseline_mkl_style(const std::vector<T>& s_t_rowmajor,
                        const CscMatrix<T>& a, index_t d,
                        std::vector<T>& out_t_rowmajor);

/// Pack S (column-major d×m) into the m×d row-major transposed layout the
/// MKL-style baseline consumes.
template <typename T>
std::vector<T> pack_transposed_rowmajor(const DenseMatrix<T>& s);

}  // namespace rsketch
