// Model-driven block-size selection (paper §III-A, §V-B).
//
// The heuristic: pick n₁ (= b_n) by minimizing the §III-A reciprocal
// computational intensity, then take b_d as large as the cache constraint
// allows — the paper's observation that "setting b_d to larger values and
// decreasing b_n" offloads memory traffic onto the regenerated S.
#pragma once

#include "analysis/pattern.hpp"
#include "sketch/config.hpp"
#include "sparse/csc.hpp"

namespace rsketch {

/// Suggested outer blocking for Algorithm 1.
struct BlockSuggestion {
  index_t block_d = 0;
  index_t block_n = 0;
  double model_ci = 0.0;  ///< predicted computational intensity at optimum
};

/// Suggest (b_d, b_n) for a d×m·m×n sketch over a matrix of the given
/// density, a cache of `cache_bytes`, element size `elem_bytes`, and RNG
/// cost h (relative to a memory access; measure with measure_h()).
BlockSuggestion suggest_blocks(index_t m, index_t n, index_t d, double density,
                               std::size_t cache_bytes, double rng_cost_h,
                               std::size_t elem_bytes);

/// Max-over-mean row degree above which a pattern counts as heavily skewed
/// and bias_blocks_for_skew() intervenes.
inline constexpr double kSkewBiasRatio = 8.0;

/// Skew guard for the block scheduler (DESIGN.md §5b): when the densest row
/// carries >= kSkewBiasRatio × the mean nnz-per-row, the §III-A suggestion
/// can hand back so few j-blocks that the LPT partitioner has nothing to
/// move — one dense slab pins one thread. Cap b_n so at least ~4 blocks
/// exist per thread (floor 8 total). No-op for balanced patterns or
/// sequential runs (nthreads < 2).
BlockSuggestion bias_blocks_for_skew(BlockSuggestion s,
                                     const RowDegreeStats& stats, index_t n,
                                     int nthreads);

/// Convenience: fill cfg.block_d / cfg.block_n for matrix `a` using the
/// detected cache size and a representative h for cfg.dist/backend.
template <typename T>
void autotune_blocks(SketchConfig& cfg, const CscMatrix<T>& a);

extern template void autotune_blocks<float>(SketchConfig&,
                                            const CscMatrix<float>&);
extern template void autotune_blocks<double>(SketchConfig&,
                                             const CscMatrix<double>&);

}  // namespace rsketch
